package model

import "testing"

func TestConfigIDKinds(t *testing.T) {
	reg := RegularID(7, "a")
	if !reg.IsRegular() || reg.IsTransitional() || reg.IsZero() {
		t.Fatalf("RegularID misclassified: %+v", reg)
	}
	tr := TransitionalID(RegularID(9, "a"), reg)
	if !tr.IsTransitional() || tr.IsRegular() {
		t.Fatalf("TransitionalID misclassified: %+v", tr)
	}
	var zero ConfigID
	if !zero.IsZero() {
		t.Fatal("zero ConfigID should report IsZero")
	}
}

func TestConfigIDPrev(t *testing.T) {
	reg := RegularID(7, "a")
	// reg_p(c) = c for a regular configuration.
	if reg.Prev() != reg {
		t.Fatalf("Prev of regular = %v, want itself", reg.Prev())
	}
	next := RegularID(9, "a")
	tr := TransitionalID(next, reg)
	if tr.Prev() != reg {
		t.Fatalf("Prev of transitional = %v, want %v", tr.Prev(), reg)
	}
}

func TestConfigIDSameRegular(t *testing.T) {
	reg := RegularID(7, "a")
	next := RegularID(9, "a")
	tr := TransitionalID(next, reg)
	if !tr.SameRegular(reg) {
		t.Error("transitional should share regular with its predecessor")
	}
	if tr.SameRegular(next) {
		t.Error("transitional should not share regular with its successor")
	}
}

func TestTransitionalIDsDistinctPerOrigin(t *testing.T) {
	// Two components with different prior regular configurations merging
	// into the same next regular configuration must produce distinct
	// transitional configuration identifiers (trans_p(c) != trans_q(c)).
	next := RegularID(12, "a")
	t1 := TransitionalID(next, RegularID(7, "a"))
	t2 := TransitionalID(next, RegularID(8, "s"))
	if t1 == t2 {
		t.Fatal("transitional IDs from different origins must differ")
	}
}

func TestConfigIDString(t *testing.T) {
	reg := RegularID(7, "a")
	if got := reg.String(); got != "reg(7@a)" {
		t.Errorf("String() = %q", got)
	}
	tr := TransitionalID(RegularID(9, "b"), reg)
	if got := tr.String(); got != "trans(9@b<-7@a)" {
		t.Errorf("String() = %q", got)
	}
}

func TestConfigurationString(t *testing.T) {
	c := Configuration{ID: RegularID(1, "p"), Members: NewProcessSet("p", "q")}
	if got := c.String(); got != "reg(1@p){p,q}" {
		t.Errorf("String() = %q", got)
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{
			Event{Type: EventSend, Proc: "p", Msg: MessageID{"p", 1}, Config: RegularID(1, "p")},
			"send_p(p:1, reg(1@p))",
		},
		{
			Event{Type: EventDeliver, Proc: "q", Msg: MessageID{"p", 1}, Config: RegularID(1, "p")},
			"deliver_q(p:1, reg(1@p))",
		},
		{
			Event{Type: EventDeliverConf, Proc: "q", Config: RegularID(1, "p"), Members: NewProcessSet("p", "q")},
			"deliver_conf_q(reg(1@p){p,q})",
		},
		{
			Event{Type: EventDeliverConf, Proc: "q", Config: RegularID(1, "p"), Members: NewProcessSet("q"), Primary: true},
			"deliver_conf_q(reg(1@p){q} primary)",
		},
		{
			Event{Type: EventFail, Proc: "r", Config: RegularID(2, "p")},
			"fail_r(reg(2@p))",
		},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("Event.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEventTypeString(t *testing.T) {
	if EventSend.String() != "send" || EventDeliver.String() != "deliver" ||
		EventDeliverConf.String() != "deliver_conf" || EventFail.String() != "fail" {
		t.Error("unexpected event type names")
	}
}

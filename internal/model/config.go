package model

import "fmt"

// ConfigKind distinguishes the two kinds of configuration the EVS algorithm
// presents to the application (Section 2): in a regular configuration new
// messages are broadcast and delivered; in a transitional configuration no
// new messages are broadcast but the remaining messages of the prior regular
// configuration are delivered.
type ConfigKind int

const (
	// Regular marks a regular configuration.
	Regular ConfigKind = iota + 1
	// Transitional marks a transitional configuration.
	Transitional
)

// String returns "regular" or "transitional".
func (k ConfigKind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Transitional:
		return "transitional"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ConfigID uniquely identifies a configuration.
//
// A regular configuration is identified by the pair (Seq, Rep): Seq is the
// ring sequence number chosen by the membership algorithm (strictly larger
// than any ring sequence known to any member) and Rep is the representative
// (lowest member ID). This is the standard Totem ring identifier.
//
// A transitional configuration follows exactly one regular configuration and
// precedes exactly one regular configuration, so it is identified by the
// regular configuration it leads to (Seq, Rep) plus the regular
// configuration it comes from (PrevSeq, PrevRep). Two transitional
// configurations formed out of different prior regular configurations during
// the same merge therefore receive distinct identifiers, as the model
// requires: trans_p(c) need not equal trans_q(c).
type ConfigID struct {
	Kind ConfigKind
	Seq  uint64
	Rep  ProcessID
	// PrevSeq and PrevRep identify the preceding regular configuration
	// and are set only when Kind == Transitional.
	PrevSeq uint64
	PrevRep ProcessID
}

// IsZero reports whether the ID is the zero value (no configuration).
func (c ConfigID) IsZero() bool { return c.Kind == 0 }

// IsRegular reports whether the configuration is regular.
func (c ConfigID) IsRegular() bool { return c.Kind == Regular }

// IsTransitional reports whether the configuration is transitional.
func (c ConfigID) IsTransitional() bool { return c.Kind == Transitional }

// Prev returns the identifier of the regular configuration preceding a
// transitional configuration. Calling Prev on a regular configuration
// returns the configuration itself: reg_p(c) = c when c is regular.
func (c ConfigID) Prev() ConfigID {
	if c.Kind != Transitional {
		return c
	}
	return ConfigID{Kind: Regular, Seq: c.PrevSeq, Rep: c.PrevRep}
}

// SameRegular reports whether two identifiers denote the same regular
// configuration after resolving transitional identifiers through Prev.
func (c ConfigID) SameRegular(d ConfigID) bool { return c.Prev() == d.Prev() }

// String renders the identifier, e.g. "reg(7@a)" or "trans(9@a<-7@c)".
func (c ConfigID) String() string {
	switch c.Kind {
	case Regular:
		return fmt.Sprintf("reg(%d@%s)", c.Seq, c.Rep)
	case Transitional:
		return fmt.Sprintf("trans(%d@%s<-%d@%s)", c.Seq, c.Rep, c.PrevSeq, c.PrevRep)
	default:
		return "config(?)"
	}
}

// RegularID constructs the identifier of a regular configuration.
func RegularID(seq uint64, rep ProcessID) ConfigID {
	return ConfigID{Kind: Regular, Seq: seq, Rep: rep}
}

// TransitionalID constructs the identifier of the transitional configuration
// that bridges from the regular configuration prev to the regular
// configuration next.
func TransitionalID(next, prev ConfigID) ConfigID {
	return ConfigID{
		Kind:    Transitional,
		Seq:     next.Seq,
		Rep:     next.Rep,
		PrevSeq: prev.Seq,
		PrevRep: prev.Rep,
	}
}

// Configuration is a configuration identifier together with its agreed
// membership. The membership algorithm guarantees that all processes in a
// configuration agree on the membership of that configuration.
type Configuration struct {
	ID      ConfigID
	Members ProcessSet
}

// String renders the configuration with its membership.
func (c Configuration) String() string {
	return fmt.Sprintf("%s%s", c.ID, c.Members)
}

package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewProcessSetSortsAndDedups(t *testing.T) {
	s := NewProcessSet("c", "a", "b", "a", "c")
	want := []ProcessID{"a", "b", "c"}
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	if s.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", s.Size())
	}
}

func TestProcessSetZeroValue(t *testing.T) {
	var s ProcessSet
	if !s.IsEmpty() {
		t.Fatal("zero ProcessSet should be empty")
	}
	if s.Contains("a") {
		t.Fatal("zero ProcessSet should contain nothing")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("zero ProcessSet should have no minimum")
	}
	if s.String() != "{}" {
		t.Fatalf("String() = %q, want {}", s.String())
	}
}

func TestProcessSetContains(t *testing.T) {
	s := NewProcessSet("p", "q", "r")
	for _, id := range []ProcessID{"p", "q", "r"} {
		if !s.Contains(id) {
			t.Errorf("Contains(%q) = false, want true", id)
		}
	}
	for _, id := range []ProcessID{"a", "s", ""} {
		if s.Contains(id) {
			t.Errorf("Contains(%q) = true, want false", id)
		}
	}
}

func TestProcessSetMin(t *testing.T) {
	s := NewProcessSet("q", "p", "t")
	min, ok := s.Min()
	if !ok || min != "p" {
		t.Fatalf("Min() = %q,%v, want p,true", min, ok)
	}
}

func TestProcessSetOperations(t *testing.T) {
	pqr := NewProcessSet("p", "q", "r")
	qrs := NewProcessSet("q", "r", "s")

	tests := []struct {
		name string
		got  ProcessSet
		want ProcessSet
	}{
		{"union", pqr.Union(qrs), NewProcessSet("p", "q", "r", "s")},
		{"intersect", pqr.Intersect(qrs), NewProcessSet("q", "r")},
		{"subtract", pqr.Subtract(qrs), NewProcessSet("p")},
		{"add new", pqr.Add("z"), NewProcessSet("p", "q", "r", "z")},
		{"add existing", pqr.Add("q"), pqr},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Equal(tt.want) {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestProcessSetRelations(t *testing.T) {
	pq := NewProcessSet("p", "q")
	pqr := NewProcessSet("p", "q", "r")
	st := NewProcessSet("s", "t")

	if !pq.IsSubsetOf(pqr) {
		t.Error("pq should be a subset of pqr")
	}
	if pqr.IsSubsetOf(pq) {
		t.Error("pqr should not be a subset of pq")
	}
	if !pq.Intersects(pqr) {
		t.Error("pq should intersect pqr")
	}
	if pq.Intersects(st) {
		t.Error("pq should not intersect st")
	}
	if pq.Equal(pqr) {
		t.Error("pq should not equal pqr")
	}
}

func TestProcessSetMembersIsACopy(t *testing.T) {
	s := NewProcessSet("p", "q")
	m := s.Members()
	m[0] = "zzz"
	if !s.Contains("p") {
		t.Fatal("mutating Members() result must not affect the set")
	}
}

func TestProcessSetString(t *testing.T) {
	s := NewProcessSet("q", "p")
	if got := s.String(); got != "{p,q}" {
		t.Fatalf("String() = %q, want {p,q}", got)
	}
}

// genSet produces a random small process set for property tests.
func genSet(r *rand.Rand) ProcessSet {
	n := r.Intn(6)
	ids := make([]ProcessID, n)
	for i := range ids {
		ids[i] = ProcessID('a' + rune(r.Intn(8)))
	}
	return NewProcessSet(ids...)
}

func TestProcessSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	t.Run("union commutative", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genSet(r), genSet(r)
			return a.Union(b).Equal(b.Union(a))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("intersect subset of both", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genSet(r), genSet(r)
			i := a.Intersect(b)
			return i.IsSubsetOf(a) && i.IsSubsetOf(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("subtract disjoint from subtrahend", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genSet(r), genSet(r)
			return !a.Subtract(b).Intersects(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("partition identity", func(t *testing.T) {
		// (a∩b) ∪ (a\b) == a
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genSet(r), genSet(r)
			return a.Intersect(b).Union(a.Subtract(b)).Equal(a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("members sorted unique", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a := genSet(r)
			m := a.Members()
			for i := 1; i < len(m); i++ {
				if m[i-1] >= m[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestMessageID(t *testing.T) {
	var zero MessageID
	if !zero.IsZero() {
		t.Error("zero MessageID should report IsZero")
	}
	m := MessageID{Sender: "p", SenderSeq: 3}
	if m.IsZero() {
		t.Error("non-zero MessageID should not report IsZero")
	}
	if m.String() != "p:3" {
		t.Errorf("String() = %q, want p:3", m.String())
	}
}

func TestServiceString(t *testing.T) {
	if Agreed.String() != "agreed" || Safe.String() != "safe" {
		t.Errorf("unexpected service names: %v %v", Agreed, Safe)
	}
	if Service(99).String() != "service(99)" {
		t.Errorf("unexpected fallback: %v", Service(99))
	}
}

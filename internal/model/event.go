package model

import "fmt"

// EventType enumerates the four event types over which extended virtual
// synchrony is specified (Section 2 of the paper).
type EventType int

const (
	// EventSend is send_p(m,c): process p sends (originates) message m
	// while a member of configuration c.
	EventSend EventType = iota + 1
	// EventDeliver is deliver_p(m,c): process p delivers message m while
	// a member of configuration c.
	EventDeliver
	// EventDeliverConf is deliver_conf_p(c): process p delivers a
	// configuration change message initiating configuration c.
	EventDeliverConf
	// EventFail is fail_p(c): the actual failure of process p while a
	// member of configuration c (distinct from another process's
	// delivery of a configuration change removing p).
	EventFail
)

// String names the event type in the paper's notation.
func (t EventType) String() string {
	switch t {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventDeliverConf:
		return "deliver_conf"
	case EventFail:
		return "fail"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one event of a system history. The specification checker
// consumes sequences of Events; the protocol harnesses produce them.
type Event struct {
	Type EventType
	// Proc is the process at which the event occurs.
	Proc ProcessID
	// Config is the configuration of the event: for Send/Deliver/Fail
	// the configuration the process is a member of when the event
	// occurs; for DeliverConf the configuration being initiated.
	Config ConfigID
	// Members is the membership of Config; recorded on every event so
	// the checker can resolve membership without global knowledge.
	Members ProcessSet
	// Msg identifies the message for Send and Deliver events.
	Msg MessageID
	// Service is the requested delivery service for Send and Deliver.
	Service Service
	// Primary records, on DeliverConf events for regular
	// configurations, whether the primary-component algorithm
	// determined this configuration to be the primary component.
	Primary bool
}

// String renders the event in the paper's notation, e.g.
// "deliver_q(p:3, reg(7@a))".
func (e Event) String() string {
	switch e.Type {
	case EventSend, EventDeliver:
		return fmt.Sprintf("%s_%s(%s, %s)", e.Type, e.Proc, e.Msg, e.Config)
	case EventDeliverConf:
		p := ""
		if e.Primary {
			p = " primary"
		}
		return fmt.Sprintf("deliver_conf_%s(%s%s%s)", e.Proc, e.Config, e.Members, p)
	case EventFail:
		return fmt.Sprintf("fail_%s(%s)", e.Proc, e.Config)
	default:
		return fmt.Sprintf("event?_%s", e.Proc)
	}
}

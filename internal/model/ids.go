// Package model defines the shared vocabulary of the extended virtual
// synchrony (EVS) reproduction: process, configuration and message
// identifiers, delivery service levels, and the trace events over which the
// formal model of Moser, Amir, Melliar-Smith and Agarwal (ICDCS 1994) is
// specified.
//
// Every layer of the stack (network simulator, total ordering, membership,
// EVS recovery, virtual-synchrony filter, specification checker) speaks in
// these types; the package itself contains no protocol logic.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID uniquely identifies a process in the distributed system. A
// process that fails and recovers with its stable storage intact keeps the
// same ProcessID, exactly as the EVS model requires (Section 2 of the
// paper). IDs are ordered lexicographically; the ordering determines ring
// position and the membership representative (lowest ID).
type ProcessID string

// Less reports whether p orders before q in the canonical process order.
func (p ProcessID) Less(q ProcessID) bool { return p < q }

// ProcessSet is an immutable-by-convention, sorted, duplicate-free set of
// process identifiers. The zero value is the empty set.
type ProcessSet struct {
	ids []ProcessID
}

// NewProcessSet builds a set from the given identifiers, sorting and
// de-duplicating them. The input slice is not retained.
func NewProcessSet(ids ...ProcessID) ProcessSet {
	sorted := make([]ProcessID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || sorted[i-1] != id {
			out = append(out, id)
		}
	}
	return ProcessSet{ids: out}
}

// Size returns the number of members.
func (s ProcessSet) Size() int { return len(s.ids) }

// IsEmpty reports whether the set has no members.
func (s ProcessSet) IsEmpty() bool { return len(s.ids) == 0 }

// Contains reports whether id is a member of the set.
func (s ProcessSet) Contains(id ProcessID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// Members returns a fresh copy of the sorted member list.
func (s ProcessSet) Members() []ProcessID {
	out := make([]ProcessID, len(s.ids))
	copy(out, s.ids)
	return out
}

// Min returns the smallest member and true, or "" and false if empty. The
// minimum member acts as the representative in the membership protocol.
func (s ProcessSet) Min() (ProcessID, bool) {
	if len(s.ids) == 0 {
		return "", false
	}
	return s.ids[0], true
}

// Equal reports whether two sets have identical membership.
func (s ProcessSet) Equal(t ProcessSet) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// Union returns the set union of s and t.
func (s ProcessSet) Union(t ProcessSet) ProcessSet {
	merged := make([]ProcessID, 0, len(s.ids)+len(t.ids))
	merged = append(merged, s.ids...)
	merged = append(merged, t.ids...)
	return NewProcessSet(merged...)
}

// Intersect returns the set intersection of s and t.
func (s ProcessSet) Intersect(t ProcessSet) ProcessSet {
	var out []ProcessID
	for _, id := range s.ids {
		if t.Contains(id) {
			out = append(out, id)
		}
	}
	return ProcessSet{ids: out}
}

// Subtract returns the members of s that are not in t.
func (s ProcessSet) Subtract(t ProcessSet) ProcessSet {
	var out []ProcessID
	for _, id := range s.ids {
		if !t.Contains(id) {
			out = append(out, id)
		}
	}
	return ProcessSet{ids: out}
}

// Add returns a new set with id included.
func (s ProcessSet) Add(id ProcessID) ProcessSet {
	if s.Contains(id) {
		return s
	}
	return NewProcessSet(append(s.Members(), id)...)
}

// IsSubsetOf reports whether every member of s is also in t.
func (s ProcessSet) IsSubsetOf(t ProcessSet) bool {
	for _, id := range s.ids {
		if !t.Contains(id) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one member.
func (s ProcessSet) Intersects(t ProcessSet) bool {
	for _, id := range s.ids {
		if t.Contains(id) {
			return true
		}
	}
	return false
}

// String renders the set as "{a,b,c}".
func (s ProcessSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(id))
	}
	b.WriteByte('}')
	return b.String()
}

// MessageID uniquely identifies an application message system-wide. It is
// the pair (originating process, per-sender sequence number); because a
// process never reuses a sender sequence number — even across failure and
// recovery, the counter is held in stable storage — Specification 1.4's
// requirement that two different processes never send the same message and
// that one process never sends a message twice holds by construction, and
// the specification checker verifies it on traces anyway.
type MessageID struct {
	Sender    ProcessID
	SenderSeq uint64
}

// IsZero reports whether the ID is the zero value (no message).
func (m MessageID) IsZero() bool { return m.Sender == "" && m.SenderSeq == 0 }

// String renders the ID as "sender:seq".
func (m MessageID) String() string {
	return fmt.Sprintf("%s:%d", m.Sender, m.SenderSeq)
}

// Service is the delivery service level requested for a message, mirroring
// Section 2 of the paper: agreed delivery guarantees a total order within
// each component and delivers a message as soon as its predecessors have
// been delivered; safe delivery additionally guarantees that if any process
// in a component delivers the message, every other process in that component
// has received it and will deliver it unless it fails. (Causal delivery is
// subsumed: the total order maintained by the ring protocol preserves
// causality, and the checker verifies Specification 5 independently.)
type Service int

const (
	// Agreed requests totally ordered delivery (abcast in Isis terms).
	Agreed Service = iota + 1
	// Safe requests all-stable totally ordered delivery (all-stable
	// abcast in Isis terms).
	Safe
)

// String returns "agreed" or "safe".
func (s Service) String() string {
	switch s {
	case Agreed:
		return "agreed"
	case Safe:
		return "safe"
	default:
		return fmt.Sprintf("service(%d)", int(s))
	}
}

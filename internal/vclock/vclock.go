// Package vclock implements Lamport clocks and vector clocks.
//
// The ring total-ordering protocol preserves causality by construction, but
// the specification checker and the causal-delivery conformance experiments
// (Specification 5, Figure 5) need an independent witness of the causal
// precedes relation. Vector clocks provide that witness: a message m
// causally precedes m' within a configuration exactly when VC(m) < VC(m').
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Lamport is a Lamport logical clock. The zero value is ready to use.
type Lamport struct {
	t uint64
}

// Tick advances the clock for a local event and returns the new time.
func (l *Lamport) Tick() uint64 {
	l.t++
	return l.t
}

// Observe merges an observed remote timestamp and advances the clock,
// returning the new time.
func (l *Lamport) Observe(remote uint64) uint64 {
	if remote > l.t {
		l.t = remote
	}
	l.t++
	return l.t
}

// Now returns the current time without advancing the clock.
func (l *Lamport) Now() uint64 { return l.t }

// VC is a vector clock: a map from process identifier to event count. A nil
// VC is the zero clock.
type VC map[model.ProcessID]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Clone returns a deep copy of the clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for k, t := range v {
		out[k] = t
	}
	return out
}

// Tick increments the component of process p and returns the clock.
func (v VC) Tick(p model.ProcessID) VC {
	v[p]++
	return v
}

// Get returns the component of process p (zero if absent).
func (v VC) Get(p model.ProcessID) uint64 { return v[p] }

// Merge sets each component of v to the maximum of v and w.
func (v VC) Merge(w VC) VC {
	for k, t := range w {
		if t > v[k] {
			v[k] = t
		}
	}
	return v
}

// Compare classifies the relationship between two vector clocks.
type Ordering int

const (
	// Equal means the clocks are identical.
	Equal Ordering = iota + 1
	// Before means v happened-before w (v < w).
	Before
	// After means w happened-before v (v > w).
	After
	// Concurrent means neither happened before the other.
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Compare returns the causal relationship of v to w.
func (v VC) Compare(w VC) Ordering {
	vLess, wLess := false, false
	for k, t := range v {
		switch wt := w[k]; {
		case t < wt:
			vLess = true
		case t > wt:
			wLess = true
		}
	}
	for k, wt := range w {
		if _, ok := v[k]; !ok && wt > 0 {
			vLess = true
		}
	}
	switch {
	case vLess && wLess:
		return Concurrent
	case vLess:
		return Before
	case wLess:
		return After
	default:
		return Equal
	}
}

// HappenedBefore reports whether v strictly precedes w causally.
func (v VC) HappenedBefore(w VC) bool { return v.Compare(w) == Before }

// Universe is a fixed, dense enumeration of a process set, assigning each
// process a small integer index. It is the coordinate system for Dense
// vector timestamps: when the process universe is known up front (as it is
// for a recorded history), a vector timestamp is a flat array of P
// counters instead of a map, and merging two timestamps is a tight loop
// over int32 components with no hashing and no allocation. The
// specification checker stamps every event of an n-event history with a
// Dense timestamp, turning precedes queries into one array comparison and
// keeping memory at O(n·P) where the transitive-closure bitset
// representation needed O(n²).
type Universe struct {
	ids   []model.ProcessID
	index map[model.ProcessID]int
}

// NewUniverse builds a universe over the given processes, sorted and
// de-duplicated, so the index assignment is deterministic.
func NewUniverse(ids []model.ProcessID) *Universe {
	sorted := make([]model.ProcessID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	u := &Universe{index: make(map[model.ProcessID]int, len(sorted))}
	for i, id := range sorted {
		if i > 0 && sorted[i-1] == id {
			continue
		}
		u.index[id] = len(u.ids)
		u.ids = append(u.ids, id)
	}
	return u
}

// Len returns the number of processes in the universe.
func (u *Universe) Len() int { return len(u.ids) }

// Index returns the dense index of p, or -1 if p is not in the universe.
func (u *Universe) Index(p model.ProcessID) int {
	if i, ok := u.index[p]; ok {
		return i
	}
	return -1
}

// ID returns the process at dense index i.
func (u *Universe) ID(i int) model.ProcessID { return u.ids[i] }

// NewDense returns a zero Dense timestamp sized for the universe.
func (u *Universe) NewDense() Dense { return make(Dense, len(u.ids)) }

// ToVC converts a Dense timestamp back to a sparse VC (for display and
// interop); zero components are omitted.
func (u *Universe) ToVC(d Dense) VC {
	v := New()
	for i, t := range d {
		if t > 0 {
			v[u.ids[i]] = uint64(t)
		}
	}
	return v
}

// Dense is a fixed-width vector timestamp over a Universe: component i
// counts events of the process with dense index i. Unlike VC it performs
// no hashing and allocates nothing during Merge, which makes it suitable
// for stamping every event of a large history. A Dense value is only
// comparable with others from the same universe.
type Dense []int32

// Merge raises each component of d to the maximum of d and o.
func (d Dense) Merge(o Dense) {
	for i, t := range o {
		if t > d[i] {
			d[i] = t
		}
	}
}

// Covers reports whether every component of d is at least the matching
// component of o — i.e. o's causal history is contained in d's.
func (d Dense) Covers(o Dense) bool {
	for i, t := range o {
		if d[i] < t {
			return false
		}
	}
	return true
}

// HappenedBefore reports whether d strictly precedes o: o covers d and
// they differ in at least one component.
func (d Dense) HappenedBefore(o Dense) bool {
	if !o.Covers(d) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return true
		}
	}
	return false
}

// Stamp is an immutable vector timestamp: a Dense vector paired with the
// Universe giving its coordinate system. It is the wire representation of a
// causality witness. Where a sparse VC costs a map allocation plus hashing
// per clone, a Stamp is one small array copy — and because the Universe is
// shared by every stamp of a configuration, producing one per sent message
// costs O(P) bytes with no hashing (the ring amortises even the array
// allocation through an arena). The zero Stamp is the zero clock.
//
// A Stamp must never be mutated after construction: stamps may share
// backing storage with other stamps from the same arena.
type Stamp struct {
	U *Universe
	D Dense
}

// IsZero reports whether the stamp is the zero clock.
func (s Stamp) IsZero() bool { return s.U == nil }

// Get returns the component of process p (zero if absent).
func (s Stamp) Get(p model.ProcessID) uint64 {
	if s.U == nil {
		return 0
	}
	if i := s.U.Index(p); i >= 0 && i < len(s.D) {
		return uint64(s.D[i])
	}
	return 0
}

// VC converts the stamp to a sparse clock (zero components omitted).
func (s Stamp) VC() VC {
	if s.U == nil {
		return nil
	}
	return s.U.ToVC(s.D)
}

// Clone deep-copies the stamp's counters (the Universe is immutable and
// shared). Used at the simulated disk boundary, where persisted state must
// not alias volatile state.
func (s Stamp) Clone() Stamp {
	if s.U == nil {
		return Stamp{}
	}
	d := make(Dense, len(s.D))
	copy(d, s.D)
	return Stamp{U: s.U, D: d}
}

// Compare classifies the causal relationship of s to o. Stamps from the
// same Universe compare component-wise; stamps from different universes
// (e.g. across a crash-recovery boundary) fall back to the sparse form.
func (s Stamp) Compare(o Stamp) Ordering {
	if s.U != nil && s.U == o.U {
		sLess, oLess := false, false
		for i := range s.D {
			switch {
			case s.D[i] < o.D[i]:
				sLess = true
			case s.D[i] > o.D[i]:
				oLess = true
			}
		}
		switch {
		case sLess && oLess:
			return Concurrent
		case sLess:
			return Before
		case oLess:
			return After
		default:
			return Equal
		}
	}
	return s.VC().Compare(o.VC())
}

// HappenedBefore reports whether s strictly precedes o causally.
func (s Stamp) HappenedBefore(o Stamp) bool { return s.Compare(o) == Before }

// String renders the stamp like the equivalent sparse clock.
func (s Stamp) String() string { return s.VC().String() }

// NewStamp builds a self-contained stamp from a sparse clock (tests and
// interop; the hot path stamps from a shared per-ring Universe instead).
func NewStamp(v VC) Stamp {
	ids := make([]model.ProcessID, 0, len(v))
	for id := range v {
		//lint:allow determinism NewUniverse sorts and dedupes the id set; accumulation order is irrelevant
		ids = append(ids, id)
	}
	u := NewUniverse(ids)
	d := u.NewDense()
	for id, t := range v {
		d[u.Index(id)] = int32(t)
	}
	return Stamp{U: u, D: d}
}

// String renders the clock deterministically, e.g. "[p:1 q:3]".
func (v VC) String() string {
	keys := make([]model.ProcessID, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte(']')
	return b.String()
}

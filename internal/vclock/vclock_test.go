package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestLamportTick(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Fatal("zero Lamport clock should read 0")
	}
	if l.Tick() != 1 || l.Tick() != 2 {
		t.Fatal("Tick should increment by one")
	}
}

func TestLamportObserve(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	if got := l.Observe(10); got != 11 {
		t.Fatalf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Fatalf("Observe(3) after 11 = %d, want 12", got)
	}
}

func TestVCBasics(t *testing.T) {
	v := New()
	v.Tick("p")
	v.Tick("p")
	v.Tick("q")
	if v.Get("p") != 2 || v.Get("q") != 1 || v.Get("r") != 0 {
		t.Fatalf("unexpected components: %v", v)
	}
	if got := v.String(); got != "[p:2 q:1]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestVCClone(t *testing.T) {
	v := New().Tick("p")
	w := v.Clone()
	w.Tick("p")
	if v.Get("p") != 1 || w.Get("p") != 2 {
		t.Fatal("Clone must be independent")
	}
}

func TestVCCompare(t *testing.T) {
	mk := func(p, q uint64) VC {
		v := New()
		v["p"] = p
		v["q"] = q
		return v
	}
	tests := []struct {
		name string
		a, b VC
		want Ordering
	}{
		{"equal", mk(1, 2), mk(1, 2), Equal},
		{"before", mk(1, 2), mk(1, 3), Before},
		{"after", mk(2, 2), mk(1, 2), After},
		{"concurrent", mk(2, 1), mk(1, 2), Concurrent},
		{"empty vs nonempty", New(), mk(1, 0), Before},
		{"both empty", New(), New(), Equal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Fatalf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVCCompareMissingEntryTreatedAsZero(t *testing.T) {
	a := VC{"p": 1, "q": 0}
	b := VC{"p": 1}
	if got := a.Compare(b); got != Equal {
		t.Fatalf("explicit zero should equal missing entry, got %v", got)
	}
}

func TestVCMerge(t *testing.T) {
	a := VC{"p": 3, "q": 1}
	b := VC{"q": 5, "r": 2}
	a.Merge(b)
	want := VC{"p": 3, "q": 5, "r": 2}
	if a.Compare(want) != Equal {
		t.Fatalf("Merge = %v, want %v", a, want)
	}
}

func TestHappenedBefore(t *testing.T) {
	a := New().Tick("p")
	b := a.Clone().Tick("q")
	if !a.HappenedBefore(b) {
		t.Error("a should happen before b")
	}
	if b.HappenedBefore(a) {
		t.Error("b should not happen before a")
	}
	if a.HappenedBefore(a) {
		t.Error("a clock does not happen before itself")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

func TestUniverseDeterministicIndexing(t *testing.T) {
	u := NewUniverse([]model.ProcessID{"q", "p", "r", "p", "q"})
	if u.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", u.Len())
	}
	for i, want := range []model.ProcessID{"p", "q", "r"} {
		if u.ID(i) != want || u.Index(want) != i {
			t.Fatalf("universe order wrong at %d: ID=%s Index(%s)=%d", i, u.ID(i), want, u.Index(want))
		}
	}
	if u.Index("z") != -1 {
		t.Fatal("unknown process must index to -1")
	}
}

func TestDenseMergeCovers(t *testing.T) {
	u := NewUniverse([]model.ProcessID{"p", "q", "r"})
	a, b := u.NewDense(), u.NewDense()
	a[0], a[1] = 3, 1
	b[1], b[2] = 5, 2
	a.Merge(b)
	if a[0] != 3 || a[1] != 5 || a[2] != 2 {
		t.Fatalf("Merge = %v, want [3 5 2]", a)
	}
	if !a.Covers(b) || b.Covers(a) {
		t.Fatal("merged timestamp must cover both inputs, not vice versa")
	}
	if !b.HappenedBefore(a) || a.HappenedBefore(a) {
		t.Fatal("HappenedBefore must be strict")
	}
}

// TestDenseAgreesWithVC: Dense over a universe behaves exactly like the
// sparse VC on Merge and happened-before, for random timestamps.
func TestDenseAgreesWithVC(t *testing.T) {
	procs := []model.ProcessID{"p", "q", "r", "s"}
	u := NewUniverse(procs)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a, b := u.NewDense(), u.NewDense()
		for i := range a {
			a[i], b[i] = int32(rng.Intn(4)), int32(rng.Intn(4))
		}
		va, vb := u.ToVC(a), u.ToVC(b)
		if got, want := a.HappenedBefore(b), va.HappenedBefore(vb); got != want {
			t.Fatalf("HappenedBefore(%v,%v): dense=%v sparse=%v", a, b, got, want)
		}
		m := u.NewDense()
		copy(m, a)
		m.Merge(b)
		vm := va.Clone().Merge(vb)
		if u.ToVC(m).Compare(vm) != Equal {
			t.Fatalf("Merge disagrees: dense=%v sparse=%v", u.ToVC(m), vm)
		}
	}
}

// genVC builds a random vector clock over a small universe.
func genVC(r *rand.Rand) VC {
	v := New()
	for _, p := range []model.ProcessID{"p", "q", "r", "s"} {
		if r.Intn(2) == 1 {
			v[p] = uint64(r.Intn(4))
		}
	}
	return v
}

func TestVCProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}

	t.Run("compare antisymmetry", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genVC(r), genVC(r)
			x, y := a.Compare(b), b.Compare(a)
			switch x {
			case Equal:
				return y == Equal
			case Before:
				return y == After
			case After:
				return y == Before
			case Concurrent:
				return y == Concurrent
			}
			return false
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("merge is upper bound", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := genVC(r), genVC(r)
			m := a.Clone().Merge(b)
			ra, rb := a.Compare(m), b.Compare(m)
			return (ra == Before || ra == Equal) && (rb == Before || rb == Equal)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("tick advances strictly", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a := genVC(r)
			before := a.Clone()
			a.Tick("p")
			return before.HappenedBefore(a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

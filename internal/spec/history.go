// Package spec makes the formal model of extended virtual synchrony
// executable: it consumes event histories — send_p(m,c), deliver_p(m,c),
// deliver_conf_p(c), fail_p(c) — produced by the protocol harness (or
// constructed by hand) and checks them against Specifications 1-7 of the
// paper, the primary-component properties of Section 2.2, and the virtual
// synchrony legality conditions of Section 4.
//
// # The precedes relation and the ord function
//
// The paper axiomatizes a global partial order, the precedes relation "→",
// and a logical total order function ord. A trace only exhibits the
// generating edges of "→": the single-thread order of each process
// (Specification 1.2) and the send-before-deliver edges (Specification
// 1.3). Specifications 2.3, 2.4, 6.1 and 6.2 then constrain how "→" and
// ord may be extended: deliveries of the same message occur at the same
// logical time everywhere, as do configuration change deliveries of the
// same configuration. The executable content of that constraint set is a
// graph condensation: merge all deliver events of one message into one
// node and all deliver_conf events of one configuration into one node,
// lift the generating edges, and demand that the result is acyclic. If it
// is, a topological numbering of the condensation is a witness for ord
// (and for the barrier behaviour 2.3/2.4 require); if it is cyclic, no
// legal ord exists and the specifications are violated.
//
// # Scale
//
// The closure of "→" is never materialized. Every event carries a dense
// vector timestamp over the generating edges (vclock.Dense), so
// precedes(i,j) is one O(1) array probe and the whole relation costs
// O(n·P) memory for n events and P processes — the n×n bitset closure of
// the original checker is kept only as a differential-testing oracle in
// package refcheck. On top of the timestamps the index precomputes the
// lookup tables the checks share (per-process configuration sequences,
// per-(process,message) delivery lists, per-(process,configuration)
// delivered sets, installation and failure tables, com-zone caches), so
// each specification check runs in near-linear time on conforming
// histories and CheckAll runs the seven checks concurrently.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/vclock"
)

// History is an append-only event trace. Events must be appended in an
// order consistent with real time at a hypothetical global observer; the
// deterministic simulation harness guarantees this. The zero value is an
// empty history.
type History struct {
	events []model.Event
}

// Append records one event.
func (h *History) Append(e model.Event) {
	h.events = append(h.events, e)
}

// Events returns the underlying event slice (not a copy; callers must not
// mutate).
func (h *History) Events() []model.Event { return h.events }

// Len returns the number of recorded events.
func (h *History) Len() int { return len(h.events) }

// Violation is one specification breach found in a history.
type Violation struct {
	// Spec identifies the clause, e.g. "1.3", "6.2", "primary-unique",
	// "vs-L4".
	Spec string
	// Msg is a human-readable description.
	Msg string
	// Events are indices into the history of the offending events,
	// where identifiable.
	Events []int
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[spec %s] %s (events %v)", v.Spec, v.Msg, v.Events)
}

// Options tune which checks run.
type Options struct {
	// Settled declares that the history ends in a quiet period: client
	// traffic stopped and the protocol was given ample time to finish
	// delivering. Liveness-flavoured clauses (self-delivery in the
	// final configuration, safe-delivery completeness in the final
	// configuration, final-configuration agreement 2.1) are enforced
	// only on settled histories.
	Settled bool
}

// procMsg keys per-(process,message) tables.
type procMsg struct {
	p model.ProcessID
	m model.MessageID
}

// procCfg keys per-(process,configuration) tables.
type procCfg struct {
	p model.ProcessID
	c model.ConfigID
}

// index holds the derived structures every check shares. It is built once
// by NewChecker and read-only afterwards, which is what makes the
// concurrent CheckAll safe: no check mutates the index.
type index struct {
	events []model.Event
	// byProc lists event indices per process in history order, which is
	// per-process order (Specification 1.2).
	byProc map[model.ProcessID][]int
	// sends maps message ID to the indices of its send events
	// (Specification 1.4 demands exactly one).
	sends map[model.MessageID][]int
	// delivers maps message ID to indices of its deliver events.
	delivers map[model.MessageID][]int
	// confs maps configuration ID to indices of its deliver_conf
	// events.
	confs map[model.ConfigID][]int
	// members caches the membership recorded for each configuration.
	members map[model.ConfigID]model.ProcessSet

	// Vector-timestamp representation of the precedes closure. uni
	// enumerates the processes appearing in the history; procOf and
	// local give each event its (dense process, 1-based per-process
	// position); vt is the flat n×P timestamp array: row i (a
	// vclock.Dense) is the componentwise maximum over event i's causal
	// past, with vt[i][procOf[i]] = local[i].
	uni    *vclock.Universe
	procOf []int32
	local  []int32
	vt     []int32

	// confSeqs caches, per process, the indices of its deliver_conf
	// events in order: the process's configuration sequence.
	confSeqs map[model.ProcessID][]int
	// procDelivers lists, per (process,message), the indices of that
	// process's deliveries of the message in history order. Conforming
	// histories have at most one entry; duplicates are kept so the
	// duplicate-delivery check and zone lookups see them.
	procDelivers map[procMsg][]int
	// installedBy records which processes delivered a configuration
	// change for each configuration.
	installedBy map[procCfg]bool
	// failCfgs lists, per process, the configurations of its fail
	// events in history order.
	failCfgs map[model.ProcessID][]model.ConfigID
	// zones caches com_p(c) per (process, regular configuration): the
	// regular configuration itself followed by the process's installed
	// transitional successors of it, in installation order. Regular
	// configurations with no transitional successor have no entry;
	// comZone synthesizes the singleton zone on the fly.
	zones map[procCfg][]model.ConfigID
	// cfgDelivered is the per-(process,configuration) delivered message
	// set (failure atomicity compares these across processes).
	cfgDelivered map[procCfg]map[model.MessageID]bool
	// famDelivered is the per-(process, regular family) delivered set
	// restricted to the process's com zone of the family: exactly the
	// messages deliveredIn(p, ·, comZone(p, reg)) would accept.
	famDelivered map[procCfg]map[model.MessageID]bool
}

func buildIndex(events []model.Event) *index {
	ix := &index{
		events:       events,
		byProc:       make(map[model.ProcessID][]int),
		sends:        make(map[model.MessageID][]int),
		delivers:     make(map[model.MessageID][]int),
		confs:        make(map[model.ConfigID][]int),
		members:      make(map[model.ConfigID]model.ProcessSet),
		confSeqs:     make(map[model.ProcessID][]int),
		procDelivers: make(map[procMsg][]int),
		installedBy:  make(map[procCfg]bool),
		failCfgs:     make(map[model.ProcessID][]model.ConfigID),
		zones:        make(map[procCfg][]model.ConfigID),
		cfgDelivered: make(map[procCfg]map[model.MessageID]bool),
		famDelivered: make(map[procCfg]map[model.MessageID]bool),
	}
	for i, e := range events {
		ix.byProc[e.Proc] = append(ix.byProc[e.Proc], i)
		switch e.Type {
		case model.EventSend:
			ix.sends[e.Msg] = append(ix.sends[e.Msg], i)
		case model.EventDeliver:
			ix.delivers[e.Msg] = append(ix.delivers[e.Msg], i)
			ix.procDelivers[procMsg{e.Proc, e.Msg}] = append(ix.procDelivers[procMsg{e.Proc, e.Msg}], i)
			k := procCfg{e.Proc, e.Config}
			if ix.cfgDelivered[k] == nil {
				ix.cfgDelivered[k] = make(map[model.MessageID]bool)
			}
			ix.cfgDelivered[k][e.Msg] = true
		case model.EventDeliverConf:
			ix.confs[e.Config] = append(ix.confs[e.Config], i)
			if _, ok := ix.members[e.Config]; !ok {
				ix.members[e.Config] = e.Members
			}
			ix.confSeqs[e.Proc] = append(ix.confSeqs[e.Proc], i)
			ix.installedBy[procCfg{e.Proc, e.Config}] = true
			if e.Config.IsTransitional() {
				zk := procCfg{e.Proc, e.Config.Prev()}
				if ix.zones[zk] == nil {
					ix.zones[zk] = []model.ConfigID{e.Config.Prev()}
				}
				ix.zones[zk] = append(ix.zones[zk], e.Config)
			}
		case model.EventFail:
			ix.failCfgs[e.Proc] = append(ix.failCfgs[e.Proc], e.Config)
		}
	}
	ix.buildTimestamps()
	ix.buildFamDelivered()
	return ix
}

// buildTimestamps stamps every event with a dense vector timestamp over
// the generating edges: each event inherits the timestamp of its
// per-process predecessor, a deliver event additionally merges the
// timestamp of its message's (first) send when that send comes earlier in
// the history — the same edge set the reference closure uses; a deliver
// preceding its send simply lacks the edge and Check 1.3 reports it.
func (ix *index) buildTimestamps() {
	n := len(ix.events)
	procs := make([]model.ProcessID, 0, len(ix.byProc))
	for p := range ix.byProc {
		//lint:allow determinism NewUniverse sorts and dedupes the id set; accumulation order is irrelevant
		procs = append(procs, p)
	}
	ix.uni = vclock.NewUniverse(procs)
	P := ix.uni.Len()
	ix.procOf = make([]int32, n)
	ix.local = make([]int32, n)
	ix.vt = make([]int32, n*P)

	prev := make([]int32, P) // last event index per process, or -1
	for i := range prev {
		prev[i] = -1
	}
	counts := make([]int32, P)
	for i, e := range ix.events {
		p := int32(ix.uni.Index(e.Proc))
		ix.procOf[i] = p
		counts[p]++
		ix.local[i] = counts[p]

		row := vclock.Dense(ix.vt[i*P : (i+1)*P])
		if pr := prev[p]; pr >= 0 {
			copy(row, ix.vt[int(pr)*P:(int(pr)+1)*P])
		}
		if e.Type == model.EventDeliver {
			if sIdxs := ix.sends[e.Msg]; len(sIdxs) > 0 && sIdxs[0] < i {
				row.Merge(ix.vt[sIdxs[0]*P : (sIdxs[0]+1)*P])
			}
		}
		row[p] = ix.local[i]
		prev[p] = int32(i)
	}
}

// buildFamDelivered fills the per-(process, regular family) delivered
// sets. A delivery by p in configuration c contributes to family reg =
// c.Prev() exactly when c lies in com_p(reg): always for c == reg, and
// for a transitional c only when p installed it (the zone follows the
// process's own configuration sequence).
func (ix *index) buildFamDelivered() {
	for _, e := range ix.events {
		if e.Type != model.EventDeliver {
			continue
		}
		c := e.Config
		reg := c.Prev()
		if c.IsTransitional() {
			inZone := false
			for _, z := range ix.zones[procCfg{e.Proc, reg}] {
				if z == c {
					inZone = true
					break
				}
			}
			if !inZone {
				continue
			}
		}
		k := procCfg{e.Proc, reg}
		if ix.famDelivered[k] == nil {
			ix.famDelivered[k] = make(map[model.MessageID]bool)
		}
		ix.famDelivered[k][e.Msg] = true
	}
}

// vtOf returns event i's dense vector timestamp (a view, not a copy).
func (ix *index) vtOf(i int) vclock.Dense {
	P := ix.uni.Len()
	return vclock.Dense(ix.vt[i*P : (i+1)*P])
}

// precedes reports whether event i precedes event j in the closure of the
// generating edges (irreflexive: precedes(i,i) is false). All generating
// edges point forward in history order, so i ≥ j is an immediate no; for
// i < j, i precedes j exactly when j's timestamp covers i's position in
// i's own process component — because each process's events form a chain,
// covering the count implies covering the event.
func (ix *index) precedes(i, j int) bool {
	if i >= j {
		return false
	}
	return ix.vt[j*ix.uni.Len()+int(ix.procOf[i])] >= ix.local[i]
}

// confSeq returns, for process p, the indices of its deliver_conf events in
// order: p's configuration sequence.
func (ix *index) confSeq(p model.ProcessID) []int {
	return ix.confSeqs[p]
}

// comZone returns the configurations forming com_p(c): the regular
// configuration c plus p's installed transitional successors of c, if
// any. For a transitional c the zone is c alone. The returned slice is
// shared; callers must not mutate it.
func (ix *index) comZone(p model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	if cfg.IsTransitional() {
		return []model.ConfigID{cfg}
	}
	if z, ok := ix.zones[procCfg{p, cfg}]; ok {
		return z
	}
	return []model.ConfigID{cfg}
}

// comZoneOf returns com_q(c') as a zone: for a regular configuration, the
// configuration plus q's transitional successor; for a transitional
// configuration, the underlying regular configuration plus q's own
// transitional successor of it — which need not be c' itself. A member
// that announced recovery completion and was then partitioned away from
// the others carries its obligations into a later recovery and delivers
// them in its own transitional configuration arising from the same
// regular one; the zone must follow the member, not the observer.
func (ix *index) comZoneOf(q model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	return ix.comZone(q, cfg.Prev())
}

// failedIn reports whether p has a fail event in any of the zone's
// configurations.
func (ix *index) failedIn(p model.ProcessID, zone []model.ConfigID) bool {
	for _, fc := range ix.failCfgs[p] {
		for _, z := range zone {
			if fc == z {
				return true
			}
		}
	}
	return false
}

// deliveredIn reports whether p delivered m in one of the zone's
// configurations.
func (ix *index) deliveredIn(p model.ProcessID, m model.MessageID, zone []model.ConfigID) bool {
	for _, d := range ix.procDelivers[procMsg{p, m}] {
		c := ix.events[d].Config
		for _, z := range zone {
			if c == z {
				return true
			}
		}
	}
	return false
}

// deliveryIndex returns the index of p's (first) delivery of m, or -1.
func (ix *index) deliveryIndex(p model.ProcessID, m model.MessageID) int {
	if ds := ix.procDelivers[procMsg{p, m}]; len(ds) > 0 {
		return ds[0]
	}
	return -1
}

// leftZone reports whether p delivered a configuration change outside the
// zone after event idx.
func (ix *index) leftZone(p model.ProcessID, idx int, zone []model.ConfigID) bool {
	seq := ix.confSeqs[p]
	// First configuration change strictly after idx.
	k := sort.SearchInts(seq, idx+1)
	for ; k < len(seq); k++ {
		c := ix.events[seq[k]].Config
		inZone := false
		for _, z := range zone {
			if c == z {
				inZone = true
				break
			}
		}
		if !inZone {
			return true
		}
	}
	return false
}

// installed reports whether q delivered a configuration change for cfg.
func (ix *index) installed(q model.ProcessID, cfg model.ConfigID) bool {
	return ix.installedBy[procCfg{q, cfg}]
}

// inFinalZone reports whether q's last configuration belongs to the zone.
func (ix *index) inFinalZone(q model.ProcessID, zone []model.ConfigID) bool {
	seq := ix.confSeqs[q]
	if len(seq) == 0 {
		// q never installed anything; its whole (empty) history is
		// final.
		return true
	}
	last := ix.events[seq[len(seq)-1]].Config
	for _, z := range zone {
		if last == z {
			return true
		}
	}
	return false
}

// Package spec makes the formal model of extended virtual synchrony
// executable: it consumes event histories — send_p(m,c), deliver_p(m,c),
// deliver_conf_p(c), fail_p(c) — produced by the protocol harness (or
// constructed by hand) and checks them against Specifications 1-7 of the
// paper, the primary-component properties of Section 2.2, and the virtual
// synchrony legality conditions of Section 4.
//
// # The precedes relation and the ord function
//
// The paper axiomatizes a global partial order, the precedes relation "→",
// and a logical total order function ord. A trace only exhibits the
// generating edges of "→": the single-thread order of each process
// (Specification 1.2) and the send-before-deliver edges (Specification
// 1.3). Specifications 2.3, 2.4, 6.1 and 6.2 then constrain how "→" and
// ord may be extended: deliveries of the same message occur at the same
// logical time everywhere, as do configuration change deliveries of the
// same configuration. The executable content of that constraint set is a
// graph condensation: merge all deliver events of one message into one
// node and all deliver_conf events of one configuration into one node,
// lift the generating edges, and demand that the result is acyclic. If it
// is, a topological numbering of the condensation is a witness for ord
// (and for the barrier behaviour 2.3/2.4 require); if it is cyclic, no
// legal ord exists and the specifications are violated.
package spec

import (
	"fmt"

	"repro/internal/model"
)

// History is an append-only event trace. Events must be appended in an
// order consistent with real time at a hypothetical global observer; the
// deterministic simulation harness guarantees this. The zero value is an
// empty history.
type History struct {
	events []model.Event
}

// Append records one event.
func (h *History) Append(e model.Event) {
	h.events = append(h.events, e)
}

// Events returns the underlying event slice (not a copy; callers must not
// mutate).
func (h *History) Events() []model.Event { return h.events }

// Len returns the number of recorded events.
func (h *History) Len() int { return len(h.events) }

// Violation is one specification breach found in a history.
type Violation struct {
	// Spec identifies the clause, e.g. "1.3", "6.2", "primary-unique",
	// "vs-L4".
	Spec string
	// Msg is a human-readable description.
	Msg string
	// Events are indices into the history of the offending events,
	// where identifiable.
	Events []int
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("[spec %s] %s (events %v)", v.Spec, v.Msg, v.Events)
}

// Options tune which checks run.
type Options struct {
	// Settled declares that the history ends in a quiet period: client
	// traffic stopped and the protocol was given ample time to finish
	// delivering. Liveness-flavoured clauses (self-delivery in the
	// final configuration, safe-delivery completeness in the final
	// configuration, final-configuration agreement 2.1) are enforced
	// only on settled histories.
	Settled bool
}

// index holds the derived structures every check shares.
type index struct {
	events []model.Event
	// byProc lists event indices per process in history order, which is
	// per-process order (Specification 1.2).
	byProc map[model.ProcessID][]int
	// sends maps message ID to the indices of its send events
	// (Specification 1.4 demands exactly one).
	sends map[model.MessageID][]int
	// delivers maps message ID to indices of its deliver events.
	delivers map[model.MessageID][]int
	// confs maps configuration ID to indices of its deliver_conf
	// events.
	confs map[model.ConfigID][]int
	// members caches the membership recorded for each configuration.
	members map[model.ConfigID]model.ProcessSet
	// reach is the transitive closure over the generating edges:
	// reach[i] bit j set means event i precedes event j (i < j always,
	// since generating edges respect history order).
	reach []bitset
}

func buildIndex(events []model.Event) *index {
	ix := &index{
		events:   events,
		byProc:   make(map[model.ProcessID][]int),
		sends:    make(map[model.MessageID][]int),
		delivers: make(map[model.MessageID][]int),
		confs:    make(map[model.ConfigID][]int),
		members:  make(map[model.ConfigID]model.ProcessSet),
	}
	for i, e := range events {
		ix.byProc[e.Proc] = append(ix.byProc[e.Proc], i)
		switch e.Type {
		case model.EventSend:
			ix.sends[e.Msg] = append(ix.sends[e.Msg], i)
		case model.EventDeliver:
			ix.delivers[e.Msg] = append(ix.delivers[e.Msg], i)
		case model.EventDeliverConf:
			ix.confs[e.Config] = append(ix.confs[e.Config], i)
			if _, ok := ix.members[e.Config]; !ok {
				ix.members[e.Config] = e.Members
			}
		}
	}
	ix.buildReach()
	return ix
}

// buildReach computes the transitive closure of the generating edges. All
// generating edges point forward in history order, so a single backward
// sweep suffices. Events whose generating edges would point backward
// (deliver before send) simply lack the edge; Check 1.3 reports them.
func (ix *index) buildReach() {
	n := len(ix.events)
	ix.reach = make([]bitset, n)
	words := (n + 63) / 64
	// successors in the generating relation.
	succ := make([][]int32, n)
	for _, idxs := range ix.byProc {
		for k := 0; k+1 < len(idxs); k++ {
			succ[idxs[k]] = append(succ[idxs[k]], int32(idxs[k+1]))
		}
	}
	for m, sIdxs := range ix.sends {
		if len(sIdxs) == 0 {
			continue
		}
		s := sIdxs[0]
		for _, d := range ix.delivers[m] {
			if s < d {
				succ[s] = append(succ[s], int32(d))
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		b := newBitset(words)
		for _, j := range succ[i] {
			b.set(int(j))
			b.orInto(ix.reach[j])
		}
		ix.reach[i] = b
	}
}

// precedes reports whether event i precedes event j in the closure of the
// generating edges (irreflexive: precedes(i,i) is false).
func (ix *index) precedes(i, j int) bool {
	if i == j {
		return false
	}
	return ix.reach[i].get(j)
}

// confSeq returns, for process p, the indices of its deliver_conf events in
// order: p's configuration sequence.
func (ix *index) confSeq(p model.ProcessID) []int {
	var out []int
	for _, i := range ix.byProc[p] {
		if ix.events[i].Type == model.EventDeliverConf {
			out = append(out, i)
		}
	}
	return out
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) get(i int) bool {
	w := i / 64
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%64)) != 0
}

func (b bitset) orInto(o bitset) {
	for w := range o {
		b[w] |= o[w]
	}
}

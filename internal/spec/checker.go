package spec

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Checker validates a history against the extended virtual synchrony
// specifications.
type Checker struct {
	ix   *index
	opts Options
}

// NewChecker builds a checker over the given events.
func NewChecker(events []model.Event, opts Options) *Checker {
	return &Checker{ix: buildIndex(events), opts: opts}
}

// CheckAll runs every specification check and returns all violations.
func (c *Checker) CheckAll() []Violation {
	var out []Violation
	out = append(out, c.CheckBasicDelivery()...)
	out = append(out, c.CheckConfigChanges()...)
	out = append(out, c.CheckSelfDelivery()...)
	out = append(out, c.CheckFailureAtomicity()...)
	out = append(out, c.CheckCausalDelivery()...)
	out = append(out, c.CheckTotalOrder()...)
	out = append(out, c.CheckSafeDelivery()...)
	return out
}

// ---------------------------------------------------------------------------
// Specification 1: basic delivery.

// CheckBasicDelivery verifies Specifications 1.3 and 1.4 (1.1 and 1.2 are
// structural: the generating edges are acyclic by construction and each
// process's events are totally ordered by their position in the history).
func (c *Checker) CheckBasicDelivery() []Violation {
	var out []Violation
	ix := c.ix

	// 1.4: a message is sent exactly once, in a regular configuration,
	// and no process delivers it twice.
	for m, sIdxs := range ix.sends {
		if len(sIdxs) > 1 {
			out = append(out, Violation{
				Spec:   "1.4",
				Msg:    fmt.Sprintf("message %s sent %d times", m, len(sIdxs)),
				Events: sIdxs,
			})
		}
		for _, s := range sIdxs {
			if !ix.events[s].Config.IsRegular() {
				out = append(out, Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("message %s sent in non-regular configuration %s", m, ix.events[s].Config),
					Events: []int{s},
				})
			}
		}
	}
	perProcDeliver := make(map[model.ProcessID]map[model.MessageID]int)
	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			p := ix.events[d].Proc
			if perProcDeliver[p] == nil {
				perProcDeliver[p] = make(map[model.MessageID]int)
			}
			if prev, dup := perProcDeliver[p][m]; dup {
				out = append(out, Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("process %s delivered message %s twice", p, m),
					Events: []int{prev, d},
				})
			}
			perProcDeliver[p][m] = d
		}
	}

	// 1.3: every delivery has a preceding send in the regular
	// configuration underlying the delivery configuration.
	for m, dIdxs := range ix.delivers {
		sIdxs := ix.sends[m]
		for _, d := range dIdxs {
			de := ix.events[d]
			if len(sIdxs) == 0 {
				out = append(out, Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("message %s delivered by %s but never sent", m, de.Proc),
					Events: []int{d},
				})
				continue
			}
			s := sIdxs[0]
			se := ix.events[s]
			if se.Config != de.Config.Prev() {
				out = append(out, Violation{
					Spec: "1.3",
					Msg: fmt.Sprintf("message %s sent in %s but delivered by %s in %s",
						m, se.Config, de.Proc, de.Config),
					Events: []int{s, d},
				})
			}
			if !ix.precedes(s, d) {
				out = append(out, Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("delivery of %s by %s does not follow its send", m, de.Proc),
					Events: []int{s, d},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 2: delivery of configuration changes.

// CheckConfigChanges verifies Specifications 2.1 (on settled histories) and
// 2.2; 2.3 and 2.4 are verified jointly with 6.1/6.2 by CheckTotalOrder via
// the condensation argument (see the package comment).
func (c *Checker) CheckConfigChanges() []Violation {
	var out []Violation
	ix := c.ix

	// A configuration must be delivered at most once per process, with
	// consistent membership, and the process must be a member.
	for cfg, idxs := range ix.confs {
		seen := make(map[model.ProcessID]int)
		for _, i := range idxs {
			e := ix.events[i]
			if prev, dup := seen[e.Proc]; dup {
				out = append(out, Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("process %s delivered configuration %s twice", e.Proc, cfg),
					Events: []int{prev, i},
				})
			}
			seen[e.Proc] = i
			if !e.Members.Equal(ix.members[cfg]) {
				out = append(out, Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("configuration %s has inconsistent membership: %s vs %s", cfg, e.Members, ix.members[cfg]),
					Events: []int{i},
				})
			}
			if !e.Members.Contains(e.Proc) {
				out = append(out, Violation{
					Spec:   "2.2",
					Msg:    fmt.Sprintf("process %s installed configuration %s it is not a member of", e.Proc, cfg),
					Events: []int{i},
				})
			}
		}
	}

	// 2.2: every send/deliver/fail occurs in the configuration initiated
	// by the most recent configuration change of that process, with no
	// intervening failure.
	for p, idxs := range ix.byProc {
		var current model.ConfigID
		failed := false
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				current = e.Config
				failed = false
			case model.EventFail:
				if e.Config != current {
					out = append(out, Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s failed in %s while its configuration is %s", p, e.Config, current),
						Events: []int{i},
					})
				}
				failed = true
			case model.EventSend, model.EventDeliver:
				if failed {
					out = append(out, Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s has %s after failing without recovering", p, e.Type),
						Events: []int{i},
					})
				}
				if e.Config != current {
					out = append(out, Violation{
						Spec: "2.2",
						Msg: fmt.Sprintf("process %s has %s event in %s while its configuration is %s",
							p, e.Type, e.Config, current),
						Events: []int{i},
					})
				}
			}
		}
	}

	// 2.1 on settled histories: if p's final configuration is c and p
	// did not fail, every member of c finishes in c without failing.
	if c.opts.Settled {
		out = append(out, c.checkFinalAgreement()...)
	}
	return out
}

// checkFinalAgreement enforces the settled-history reading of 2.1.
func (c *Checker) checkFinalAgreement() []Violation {
	var out []Violation
	ix := c.ix
	finals := make(map[model.ProcessID]model.ConfigID)
	failedIn := make(map[model.ProcessID]bool)
	for p, idxs := range ix.byProc {
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				finals[p] = e.Config
				failedIn[p] = false
			case model.EventFail:
				failedIn[p] = true
			}
		}
	}
	for p, cfg := range finals {
		if failedIn[p] {
			continue
		}
		for _, q := range ix.members[cfg].Members() {
			if failedIn[q] {
				continue
			}
			if finals[q] != cfg {
				out = append(out, Violation{
					Spec: "2.1",
					Msg: fmt.Sprintf("process %s finished in %s but member %s finished in %s",
						p, cfg, q, finals[q]),
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 3: self-delivery.

// CheckSelfDelivery verifies that each process delivers its own messages
// unless it fails in the sending configuration or its transitional
// successor. Sends in a process's final configuration are checked only on
// settled histories.
func (c *Checker) CheckSelfDelivery() []Violation {
	var out []Violation
	ix := c.ix
	for m, sIdxs := range ix.sends {
		for _, s := range sIdxs {
			se := ix.events[s]
			p := se.Proc
			zone := c.comZone(p, se.Config)
			if c.failedIn(p, zone) {
				continue
			}
			movedOn := c.leftZone(p, s, zone)
			if !movedOn && !c.opts.Settled {
				continue
			}
			if !c.deliveredIn(p, m, zone) {
				out = append(out, Violation{
					Spec:   "3",
					Msg:    fmt.Sprintf("process %s never delivered its own message %s sent in %s", p, m, se.Config),
					Events: []int{s},
				})
			}
		}
	}
	return out
}

// comZone returns the configurations forming com_p(c): the regular
// configuration c plus p's transitional configuration following c, if any.
func (c *Checker) comZone(p model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	zone := []model.ConfigID{cfg}
	if cfg.IsTransitional() {
		return zone
	}
	for _, i := range c.ix.confSeq(p) {
		e := c.ix.events[i]
		if e.Config.IsTransitional() && e.Config.Prev() == cfg {
			zone = append(zone, e.Config)
		}
	}
	return zone
}

// failedIn reports whether p has a fail event in any of the zone's
// configurations.
func (c *Checker) failedIn(p model.ProcessID, zone []model.ConfigID) bool {
	for _, i := range c.ix.byProc[p] {
		e := c.ix.events[i]
		if e.Type == model.EventFail {
			for _, z := range zone {
				if e.Config == z {
					return true
				}
			}
		}
	}
	return false
}

// leftZone reports whether p delivered a configuration change outside the
// zone after event idx.
func (c *Checker) leftZone(p model.ProcessID, idx int, zone []model.ConfigID) bool {
	for _, i := range c.ix.byProc[p] {
		if i <= idx {
			continue
		}
		e := c.ix.events[i]
		if e.Type != model.EventDeliverConf {
			continue
		}
		inZone := false
		for _, z := range zone {
			if e.Config == z {
				inZone = true
			}
		}
		if !inZone {
			return true
		}
	}
	return false
}

// deliveredIn reports whether p delivered m in one of the zone's
// configurations.
func (c *Checker) deliveredIn(p model.ProcessID, m model.MessageID, zone []model.ConfigID) bool {
	for _, d := range c.ix.delivers[m] {
		e := c.ix.events[d]
		if e.Proc != p {
			continue
		}
		for _, z := range zone {
			if e.Config == z {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Specification 4: failure atomicity.

// CheckFailureAtomicity verifies that two processes proceeding together
// from configuration c to the same next configuration delivered the same
// set of messages in c.
func (c *Checker) CheckFailureAtomicity() []Violation {
	var out []Violation
	ix := c.ix

	type procConf struct {
		p   model.ProcessID
		cfg model.ConfigID
	}
	next := make(map[procConf]model.ConfigID)
	for p := range ix.byProc {
		seq := ix.confSeq(p)
		for k := 0; k+1 < len(seq); k++ {
			cur := ix.events[seq[k]].Config
			nxt := ix.events[seq[k+1]].Config
			next[procConf{p, cur}] = nxt
		}
	}
	delivered := make(map[procConf]map[model.MessageID]bool)
	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			e := ix.events[d]
			k := procConf{e.Proc, e.Config}
			if delivered[k] == nil {
				delivered[k] = make(map[model.MessageID]bool)
			}
			delivered[k][m] = true
		}
	}

	for cfg, idxs := range ix.confs {
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				p := ix.events[idxs[a]].Proc
				q := ix.events[idxs[b]].Proc
				np, okp := next[procConf{p, cfg}]
				nq, okq := next[procConf{q, cfg}]
				if !okp || !okq || np != nq {
					continue
				}
				dp := delivered[procConf{p, cfg}]
				dq := delivered[procConf{q, cfg}]
				if diff := setDiff(dp, dq); diff != "" {
					out = append(out, Violation{
						Spec: "4",
						Msg: fmt.Sprintf("processes %s and %s proceeded from %s to %s but delivered different sets: %s",
							p, q, cfg, np, diff),
					})
				}
			}
		}
	}
	return out
}

// setDiff describes the symmetric difference of two message sets ("" when
// equal).
func setDiff(a, b map[model.MessageID]bool) string {
	var onlyA, onlyB []string
	for m := range a {
		if !b[m] {
			onlyA = append(onlyA, m.String())
		}
	}
	for m := range b {
		if !a[m] {
			onlyB = append(onlyB, m.String())
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return fmt.Sprintf("first-only=%v second-only=%v", onlyA, onlyB)
}

// ---------------------------------------------------------------------------
// Specification 5: causal delivery.

// CheckCausalDelivery verifies that when send(m) precedes send(m') within a
// configuration, any process delivering m' (in the configuration or its
// transitional successor) also delivered m, earlier.
func (c *Checker) CheckCausalDelivery() []Violation {
	var out []Violation
	ix := c.ix

	// Group send events by regular configuration.
	sendsByCfg := make(map[model.ConfigID][]int)
	for _, sIdxs := range ix.sends {
		for _, s := range sIdxs {
			sendsByCfg[ix.events[s].Config] = append(sendsByCfg[ix.events[s].Config], s)
		}
	}
	for _, sends := range sendsByCfg {
		sort.Ints(sends)
		for a := 0; a < len(sends); a++ {
			for b := 0; b < len(sends); b++ {
				if a == b || !ix.precedes(sends[a], sends[b]) {
					continue
				}
				m := ix.events[sends[a]].Msg
				m2 := ix.events[sends[b]].Msg
				for _, d2 := range ix.delivers[m2] {
					r := ix.events[d2].Proc
					d1 := c.deliveryIndex(r, m)
					if d1 < 0 {
						out = append(out, Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s but not its causal predecessor %s",
								r, m2, m),
							Events: []int{sends[a], sends[b], d2},
						})
						continue
					}
					if d1 > d2 {
						out = append(out, Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s before its causal predecessor %s",
								r, m2, m),
							Events: []int{d1, d2},
						})
					}
				}
			}
		}
	}
	return out
}

// deliveryIndex returns the index of p's delivery of m, or -1.
func (c *Checker) deliveryIndex(p model.ProcessID, m model.MessageID) int {
	for _, d := range c.ix.delivers[m] {
		if c.ix.events[d].Proc == p {
			return d
		}
	}
	return -1
}

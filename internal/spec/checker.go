package spec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Checker validates a history against the extended virtual synchrony
// specifications.
type Checker struct {
	ix   *index
	opts Options
}

// NewChecker builds a checker over the given events.
func NewChecker(events []model.Event, opts Options) *Checker {
	return &Checker{ix: buildIndex(events), opts: opts}
}

// Precedes reports whether event i precedes event j in the closure of the
// generating edges. Exported for differential testing against the
// reference bitset closure (package refcheck).
func (c *Checker) Precedes(i, j int) bool { return c.ix.precedes(i, j) }

// CheckAll runs every specification check and returns all violations.
// The index is fully precomputed and read-only, so the seven checks run
// concurrently; the combined result is sorted into a deterministic order
// (the individual checks inherit map-iteration order, as they always
// did).
func (c *Checker) CheckAll() []Violation {
	checks := []func() []Violation{
		c.CheckBasicDelivery,
		c.CheckConfigChanges,
		c.CheckSelfDelivery,
		c.CheckFailureAtomicity,
		c.CheckCausalDelivery,
		c.CheckTotalOrder,
		c.CheckSafeDelivery,
	}
	results := make([][]Violation, len(checks))
	var wg sync.WaitGroup
	for i, f := range checks {
		wg.Add(1)
		go func(i int, f func() []Violation) {
			defer wg.Done()
			results[i] = f()
		}(i, f)
	}
	wg.Wait()
	var out []Violation
	for _, r := range results {
		out = append(out, r...)
	}
	sortViolations(out)
	return out
}

// sortViolations orders violations deterministically: by clause, then by
// the offending event indices, then by message text.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Spec != b.Spec {
			return a.Spec < b.Spec
		}
		for k := 0; k < len(a.Events) && k < len(b.Events); k++ {
			if a.Events[k] != b.Events[k] {
				return a.Events[k] < b.Events[k]
			}
		}
		if len(a.Events) != len(b.Events) {
			return len(a.Events) < len(b.Events)
		}
		return a.Msg < b.Msg
	})
}

// ---------------------------------------------------------------------------
// Specification 1: basic delivery.

// CheckBasicDelivery verifies Specifications 1.3 and 1.4 (1.1 and 1.2 are
// structural: the generating edges are acyclic by construction and each
// process's events are totally ordered by their position in the history).
func (c *Checker) CheckBasicDelivery() []Violation {
	var out []Violation
	ix := c.ix

	// 1.4: a message is sent exactly once, in a regular configuration,
	// and no process delivers it twice.
	for m, sIdxs := range ix.sends {
		if len(sIdxs) > 1 {
			//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
			out = append(out, Violation{
				Spec:   "1.4",
				Msg:    fmt.Sprintf("message %s sent %d times", m, len(sIdxs)),
				Events: sIdxs,
			})
		}
		for _, s := range sIdxs {
			if !ix.events[s].Config.IsRegular() {
				out = append(out, Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("message %s sent in non-regular configuration %s", m, ix.events[s].Config),
					Events: []int{s},
				})
			}
		}
	}
	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			p := ix.events[d].Proc
			mine := ix.procDelivers[procMsg{p, m}]
			k := sort.SearchInts(mine, d)
			if k > 0 {
				//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
				out = append(out, Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("process %s delivered message %s twice", p, m),
					Events: []int{mine[k-1], d},
				})
			}
		}
	}

	// 1.3: every delivery has a preceding send in the regular
	// configuration underlying the delivery configuration.
	for m, dIdxs := range ix.delivers {
		sIdxs := ix.sends[m]
		for _, d := range dIdxs {
			de := ix.events[d]
			if len(sIdxs) == 0 {
				//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
				out = append(out, Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("message %s delivered by %s but never sent", m, de.Proc),
					Events: []int{d},
				})
				continue
			}
			s := sIdxs[0]
			se := ix.events[s]
			if se.Config != de.Config.Prev() {
				out = append(out, Violation{
					Spec: "1.3",
					Msg: fmt.Sprintf("message %s sent in %s but delivered by %s in %s",
						m, se.Config, de.Proc, de.Config),
					Events: []int{s, d},
				})
			}
			if !ix.precedes(s, d) {
				out = append(out, Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("delivery of %s by %s does not follow its send", m, de.Proc),
					Events: []int{s, d},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 2: delivery of configuration changes.

// CheckConfigChanges verifies Specifications 2.1 (on settled histories) and
// 2.2; 2.3 and 2.4 are verified jointly with 6.1/6.2 by CheckTotalOrder via
// the condensation argument (see the package comment).
func (c *Checker) CheckConfigChanges() []Violation {
	var out []Violation
	ix := c.ix

	// A configuration must be delivered at most once per process, with
	// consistent membership, and the process must be a member.
	for cfg, idxs := range ix.confs {
		seen := make(map[model.ProcessID]int)
		for _, i := range idxs {
			e := ix.events[i]
			if prev, dup := seen[e.Proc]; dup {
				//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
				out = append(out, Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("process %s delivered configuration %s twice", e.Proc, cfg),
					Events: []int{prev, i},
				})
			}
			seen[e.Proc] = i
			if !e.Members.Equal(ix.members[cfg]) {
				out = append(out, Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("configuration %s has inconsistent membership: %s vs %s", cfg, e.Members, ix.members[cfg]),
					Events: []int{i},
				})
			}
			if !e.Members.Contains(e.Proc) {
				out = append(out, Violation{
					Spec:   "2.2",
					Msg:    fmt.Sprintf("process %s installed configuration %s it is not a member of", e.Proc, cfg),
					Events: []int{i},
				})
			}
		}
	}

	// 2.2: every send/deliver/fail occurs in the configuration initiated
	// by the most recent configuration change of that process, with no
	// intervening failure.
	for p, idxs := range ix.byProc {
		var current model.ConfigID
		failed := false
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				current = e.Config
				failed = false
			case model.EventFail:
				if e.Config != current {
					//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
					out = append(out, Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s failed in %s while its configuration is %s", p, e.Config, current),
						Events: []int{i},
					})
				}
				failed = true
			case model.EventSend, model.EventDeliver:
				if failed {
					out = append(out, Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s has %s after failing without recovering", p, e.Type),
						Events: []int{i},
					})
				}
				if e.Config != current {
					out = append(out, Violation{
						Spec: "2.2",
						Msg: fmt.Sprintf("process %s has %s event in %s while its configuration is %s",
							p, e.Type, e.Config, current),
						Events: []int{i},
					})
				}
			}
		}
	}

	// 2.1 on settled histories: if p's final configuration is c and p
	// did not fail, every member of c finishes in c without failing.
	if c.opts.Settled {
		out = append(out, c.checkFinalAgreement()...)
	}
	return out
}

// checkFinalAgreement enforces the settled-history reading of 2.1.
func (c *Checker) checkFinalAgreement() []Violation {
	var out []Violation
	ix := c.ix
	finals := make(map[model.ProcessID]model.ConfigID)
	failedIn := make(map[model.ProcessID]bool)
	for p, idxs := range ix.byProc {
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				finals[p] = e.Config
				failedIn[p] = false
			case model.EventFail:
				failedIn[p] = true
			}
		}
	}
	for p, cfg := range finals {
		if failedIn[p] {
			continue
		}
		for _, q := range ix.members[cfg].Members() {
			if failedIn[q] {
				continue
			}
			if finals[q] != cfg {
				//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
				out = append(out, Violation{
					Spec: "2.1",
					Msg: fmt.Sprintf("process %s finished in %s but member %s finished in %s",
						p, cfg, q, finals[q]),
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 3: self-delivery.

// CheckSelfDelivery verifies that each process delivers its own messages
// unless it fails in the sending configuration or its transitional
// successor. Sends in a process's final configuration are checked only on
// settled histories.
func (c *Checker) CheckSelfDelivery() []Violation {
	var out []Violation
	ix := c.ix
	for m, sIdxs := range ix.sends {
		for _, s := range sIdxs {
			se := ix.events[s]
			p := se.Proc
			zone := ix.comZone(p, se.Config)
			if ix.failedIn(p, zone) {
				continue
			}
			movedOn := ix.leftZone(p, s, zone)
			if !movedOn && !c.opts.Settled {
				continue
			}
			if !ix.deliveredIn(p, m, zone) {
				//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
				out = append(out, Violation{
					Spec:   "3",
					Msg:    fmt.Sprintf("process %s never delivered its own message %s sent in %s", p, m, se.Config),
					Events: []int{s},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 4: failure atomicity.

// CheckFailureAtomicity verifies that two processes proceeding together
// from configuration c to the same next configuration delivered the same
// set of messages in c.
//
// The quadratic all-pairs set comparison is replaced by an equivalence
// grouping: within each (configuration, next-configuration) group the
// installers' delivered sets are bucketed by comparing to class
// representatives, and only configurations where more than one class
// exists — i.e. an actual violation — fall back to the original pairwise
// loop, reproducing the reference violations exactly.
func (c *Checker) CheckFailureAtomicity() []Violation {
	var out []Violation
	ix := c.ix

	// next[p,cfg] = the configuration p installed after cfg, from the
	// cached configuration sequences.
	next := make(map[procCfg]model.ConfigID)
	for p := range ix.byProc {
		seq := ix.confSeq(p)
		for k := 0; k+1 < len(seq); k++ {
			cur := ix.events[seq[k]].Config
			nxt := ix.events[seq[k+1]].Config
			next[procCfg{p, cur}] = nxt
		}
	}

	sameSet := func(a, b map[model.MessageID]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for m := range a {
			if !b[m] {
				return false
			}
		}
		return true
	}

	var slow []model.ConfigID
	slowSeen := make(map[model.ConfigID]bool)
	for cfg, idxs := range ix.confs {
		// Group installers by their next configuration and bucket the
		// delivered sets into equivalence classes per group.
		type group struct {
			reps []map[model.MessageID]bool
		}
		groups := make(map[model.ConfigID]*group)
		for _, i := range idxs {
			p := ix.events[i].Proc
			nxt, ok := next[procCfg{p, cfg}]
			if !ok {
				continue
			}
			g := groups[nxt]
			if g == nil {
				g = &group{}
				groups[nxt] = g
			}
			dp := ix.cfgDelivered[procCfg{p, cfg}]
			matched := false
			for _, rep := range g.reps {
				if sameSet(dp, rep) {
					matched = true
					break
				}
			}
			if !matched {
				g.reps = append(g.reps, dp)
			}
		}
		for _, g := range groups {
			if len(g.reps) > 1 && !slowSeen[cfg] {
				slowSeen[cfg] = true
				slow = append(slow, cfg)
			}
		}
	}

	// Fallback: re-run the reference pairwise comparison for the
	// configurations where classes diverged, producing the exact
	// reference violations. Order the configurations by their first
	// installation event for determinism.
	sort.Slice(slow, func(a, b int) bool {
		return ix.confs[slow[a]][0] < ix.confs[slow[b]][0]
	})
	for _, cfg := range slow {
		idxs := ix.confs[cfg]
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				p := ix.events[idxs[a]].Proc
				q := ix.events[idxs[b]].Proc
				np, okp := next[procCfg{p, cfg}]
				nq, okq := next[procCfg{q, cfg}]
				if !okp || !okq || np != nq {
					continue
				}
				dp := ix.cfgDelivered[procCfg{p, cfg}]
				dq := ix.cfgDelivered[procCfg{q, cfg}]
				if diff := setDiff(dp, dq); diff != "" {
					out = append(out, Violation{
						Spec: "4",
						Msg: fmt.Sprintf("processes %s and %s proceeded from %s to %s but delivered different sets: %s",
							p, q, cfg, np, diff),
					})
				}
			}
		}
	}
	return out
}

// setDiff describes the symmetric difference of two message sets ("" when
// equal).
func setDiff(a, b map[model.MessageID]bool) string {
	var onlyA, onlyB []string
	for m := range a {
		if !b[m] {
			onlyA = append(onlyA, m.String())
		}
	}
	for m := range b {
		if !a[m] {
			onlyB = append(onlyB, m.String())
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return fmt.Sprintf("first-only=%v second-only=%v", onlyA, onlyB)
}

// ---------------------------------------------------------------------------
// Specification 5: causal delivery.

// CheckCausalDelivery verifies that when send(m) precedes send(m') within a
// configuration, any process delivering m' also delivered m, earlier.
//
// Instead of enumerating all ordered send pairs (quadratic) times their
// deliveries (cubic), a single pass over the history certifies each
// delivery directly: for a delivery of m' with send s, the causal
// predecessors of s among the configuration's sends form, per sending
// process, a prefix of that process's send list — the prefix of length
// vt(s)[p] in local coordinates. The receiver is certified when, for
// every sender, it has first-delivered that whole prefix strictly before
// this delivery. Certification fails exactly when a reference violation
// exists, and then the configuration falls back to the original
// triple loop, reproducing the reference violations verbatim.
func (c *Checker) CheckCausalDelivery() []Violation {
	var out []Violation
	ix := c.ix
	P := ix.uni.Len()

	// Per configuration, the send events grouped by sending process, in
	// history order (so local indices are ascending).
	type cfgSends struct {
		all    []int         // every send in the configuration, ascending
		procs  []int32       // dense process ids with sends here
		slot   map[int32]int // dense process id -> index into procs/lists
		lists  [][]int       // per slot: send event indices, ascending
		locals [][]int32     // per slot: matching local indices, ascending
	}
	byCfg := make(map[model.ConfigID]*cfgSends)
	for i, e := range ix.events {
		if e.Type != model.EventSend {
			continue
		}
		cs := byCfg[e.Config]
		if cs == nil {
			cs = &cfgSends{slot: make(map[int32]int)}
			byCfg[e.Config] = cs
		}
		cs.all = append(cs.all, i)
		p := ix.procOf[i]
		t, ok := cs.slot[p]
		if !ok {
			t = len(cs.procs)
			cs.slot[p] = t
			cs.procs = append(cs.procs, p)
			cs.lists = append(cs.lists, nil)
			cs.locals = append(cs.locals, nil)
		}
		cs.lists[t] = append(cs.lists[t], i)
		cs.locals[t] = append(cs.locals[t], ix.local[i])
	}

	slow := make(map[model.ConfigID]bool)
	// Multiply-sent messages (a 1.4 violation) have no single send to
	// certify against; route their configurations through the fallback.
	for _, sIdxs := range ix.sends {
		if len(sIdxs) > 1 {
			for _, s := range sIdxs {
				slow[ix.events[s].Config] = true
			}
		}
	}

	// prefixDone[r, cfg] = per sender slot, how many of that sender's
	// sends the receiver has first-delivered strictly before the event
	// currently being certified. Monotone in the scan, so each position
	// is verified at most once plus one failed probe per certification.
	type rcKey struct {
		r   model.ProcessID
		cfg model.ConfigID
	}
	prefixDone := make(map[rcKey][]int32)

	for i, e := range ix.events {
		if e.Type != model.EventDeliver {
			continue
		}
		sIdxs := ix.sends[e.Msg]
		if len(sIdxs) != 1 {
			continue // no send: no pairs; multi-send: already slow
		}
		s := sIdxs[0]
		cfg := ix.events[s].Config
		if slow[cfg] {
			continue
		}
		cs := byCfg[cfg]
		r := e.Proc
		key := rcKey{r, cfg}
		done := prefixDone[key]
		if done == nil {
			done = make([]int32, len(cs.procs))
			prefixDone[key] = done
		}
		svt := ix.vt[s*P : (s+1)*P]
		for t, p := range cs.procs {
			locals := cs.locals[t]
			// Sends by p causally preceding s: the prefix with
			// local index <= vt(s)[p]; s itself is excluded when
			// p is s's own process (its component equals s's
			// local index).
			k := int32(sort.Search(len(locals), func(x int) bool {
				return locals[x] > svt[p]
			}))
			if p == ix.procOf[s] {
				k--
			}
			for done[t] < k {
				m := ix.events[cs.lists[t][done[t]]].Msg
				d1 := ix.deliveryIndex(r, m)
				if d1 >= 0 && d1 < i {
					done[t]++
				} else {
					break
				}
			}
			if done[t] < k {
				slow[cfg] = true
				break
			}
		}
	}

	// Fallback: the reference triple loop, restricted to the slow
	// configurations (exactly those containing a violation), ordered by
	// first send for determinism.
	slowCfgs := make([]model.ConfigID, 0, len(slow))
	for cfg := range slow {
		if byCfg[cfg] != nil {
			slowCfgs = append(slowCfgs, cfg)
		}
	}
	sort.Slice(slowCfgs, func(a, b int) bool {
		return byCfg[slowCfgs[a]].all[0] < byCfg[slowCfgs[b]].all[0]
	})
	for _, cfg := range slowCfgs {
		sends := byCfg[cfg].all
		for a := 0; a < len(sends); a++ {
			for b := 0; b < len(sends); b++ {
				if a == b || !ix.precedes(sends[a], sends[b]) {
					continue
				}
				m := ix.events[sends[a]].Msg
				m2 := ix.events[sends[b]].Msg
				for _, d2 := range ix.delivers[m2] {
					r := ix.events[d2].Proc
					d1 := ix.deliveryIndex(r, m)
					if d1 < 0 {
						out = append(out, Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s but not its causal predecessor %s",
								r, m2, m),
							Events: []int{sends[a], sends[b], d2},
						})
						continue
					}
					if d1 > d2 {
						out = append(out, Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s before its causal predecessor %s",
								r, m2, m),
							Events: []int{d1, d2},
						})
					}
				}
			}
		}
	}
	return out
}

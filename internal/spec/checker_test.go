package spec

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// Trace-building helpers. The scenarios mirror Figures 1-5 of the paper:
// each specification gets a conforming trace and a violating trace, and the
// checker must accept the former and flag the latter.

var (
	cfg1  = model.RegularID(1, "p")
	cfg2  = model.RegularID(2, "p")
	trans = model.TransitionalID(cfg2, cfg1)
	pqr   = model.NewProcessSet("p", "q", "r")
	pq    = model.NewProcessSet("p", "q")
)

func msg(sender model.ProcessID, n uint64) model.MessageID {
	return model.MessageID{Sender: sender, SenderSeq: n}
}

func conf(p model.ProcessID, c model.ConfigID, members model.ProcessSet) model.Event {
	return model.Event{Type: model.EventDeliverConf, Proc: p, Config: c, Members: members}
}

func send(p model.ProcessID, m model.MessageID, c model.ConfigID, svc model.Service) model.Event {
	return model.Event{Type: model.EventSend, Proc: p, Msg: m, Config: c, Service: svc}
}

func deliver(p model.ProcessID, m model.MessageID, c model.ConfigID, svc model.Service) model.Event {
	ev := model.Event{Type: model.EventDeliver, Proc: p, Msg: m, Config: c, Service: svc}
	switch c {
	case cfg1:
		ev.Members = pqr
	case cfg2, trans:
		ev.Members = pq
	}
	return ev
}

func fail(p model.ProcessID, c model.ConfigID) model.Event {
	return model.Event{Type: model.EventFail, Proc: p, Config: c}
}

func check(t *testing.T, events []model.Event, opts Options) []Violation {
	t.Helper()
	return NewChecker(events, opts).CheckAll()
}

func wantClean(t *testing.T, events []model.Event, opts Options) {
	t.Helper()
	if vs := check(t, events, opts); len(vs) != 0 {
		t.Fatalf("expected conforming trace, got violations:\n%v", vs)
	}
}

func wantSpec(t *testing.T, events []model.Event, opts Options, spec string) {
	t.Helper()
	for _, v := range check(t, events, opts) {
		if strings.Contains(v.Spec, spec) {
			return
		}
	}
	t.Fatalf("expected a violation of spec %s, got %v", spec, check(t, events, opts))
}

// baseline is a clean single-configuration history.
func baseline() []model.Event {
	m1, m2 := msg("p", 1), msg("q", 1)
	return []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		deliver("p", m1, cfg1, model.Agreed),
		deliver("q", m1, cfg1, model.Agreed),
		deliver("r", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Safe),
		deliver("p", m2, cfg1, model.Safe),
		deliver("q", m2, cfg1, model.Safe),
		deliver("r", m2, cfg1, model.Safe),
	}
}

func TestCleanBaselinePasses(t *testing.T) {
	wantClean(t, baseline(), Options{Settled: true})
}

func TestSpec13DeliveryWithoutSend(t *testing.T) {
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		deliver("q", msg("p", 1), cfg1, model.Agreed),
	}
	wantSpec(t, events, Options{}, "1.3")
}

func TestSpec13DeliveryInWrongConfiguration(t *testing.T) {
	other := model.RegularID(9, "z")
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		conf("z", other, model.NewProcessSet("z")),
		send("p", m, cfg1, model.Agreed),
		deliver("p", m, cfg1, model.Agreed),
		{Type: model.EventDeliver, Proc: "z", Msg: m, Config: other, Members: model.NewProcessSet("z")},
	}
	wantSpec(t, events, Options{}, "1.3")
}

func TestSpec13DeliveryInTransitionalOfSendConfigAllowed(t *testing.T) {
	// q partitions away alone and delivers p's message in its
	// transitional configuration; p and r deliver it in the regular
	// configuration and never install q's transitional configuration.
	m := msg("p", 1)
	qOnly := model.NewProcessSet("q")
	transQ := model.TransitionalID(model.RegularID(3, "q"), cfg1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		deliver("p", m, cfg1, model.Agreed),
		deliver("r", m, cfg1, model.Agreed),
		{Type: model.EventDeliverConf, Proc: "q", Config: transQ, Members: qOnly},
		{Type: model.EventDeliver, Proc: "q", Msg: m, Config: transQ, Members: qOnly, Service: model.Agreed},
	}
	if vs := check(t, events, Options{}); len(vs) != 0 {
		t.Fatalf("transitional delivery should conform, got %v", vs)
	}
}

func TestSpec14DuplicateSend(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		send("p", m, cfg1, model.Agreed),
	}
	wantSpec(t, events, Options{}, "1.4")
}

func TestSpec14SendInTransitionalConfiguration(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr),
		conf("p", trans, pq),
		send("p", m, trans, model.Agreed),
	}
	wantSpec(t, events, Options{}, "1.4")
}

func TestSpec14DuplicateDelivery(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		deliver("q", m, cfg1, model.Agreed),
		deliver("q", m, cfg1, model.Agreed),
	}
	wantSpec(t, events, Options{}, "1.4")
}

func TestSpec22EventOutsideCurrentConfiguration(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg2, model.Agreed), // p never installed cfg2
	}
	wantSpec(t, events, Options{}, "2.2")
}

func TestSpec22EventAfterFailWithoutRecovery(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		fail("p", cfg1),
		send("p", m, cfg1, model.Agreed),
	}
	wantSpec(t, events, Options{}, "2.2")
}

func TestSpec21FinalConfigurationDisagreement(t *testing.T) {
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		conf("p", cfg2, pq), // p moved on; q did not, and q never failed
	}
	// p's final config cfg2 has members {p,q} but q finished in cfg1.
	wantSpec(t, events, Options{Settled: true}, "2.1")
}

func TestSpec21InconsistentMembership(t *testing.T) {
	events := []model.Event{
		conf("p", cfg1, pqr),
		conf("q", cfg1, pq), // same configuration, different membership
	}
	wantSpec(t, events, Options{}, "2.1")
}

func TestSpec3SelfDeliveryViolation(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		// p moves on to cfg2 without ever delivering m and without
		// failing.
		conf("p", cfg2, pq),
	}
	wantSpec(t, events, Options{}, "3")
}

func TestSpec3FailureExemptsSelfDelivery(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		fail("p", cfg1),
		// q and r deliver it; p is excused by its failure.
		deliver("q", m, cfg1, model.Agreed),
		deliver("r", m, cfg1, model.Agreed),
	}
	wantClean(t, events, Options{})
}

func TestSpec3SelfDeliveryInSingletonTransitional(t *testing.T) {
	singleton := model.TransitionalID(cfg2, cfg1)
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		{Type: model.EventDeliverConf, Proc: "p", Config: singleton, Members: model.NewProcessSet("p")},
		{Type: model.EventDeliver, Proc: "p", Msg: m, Config: singleton, Members: model.NewProcessSet("p"), Service: model.Agreed},
		conf("p", cfg2, pq), // moved on after delivering in transitional
	}
	// q and r keep cfg1 as final configuration; unsettled history.
	wantClean(t, events, Options{})
}

func TestSpec4FailureAtomicityViolation(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		deliver("p", m, cfg1, model.Agreed),
		// q proceeds to the same next configuration without m.
		conf("p", cfg2, pq),
		conf("q", cfg2, pq),
	}
	wantSpec(t, events, Options{}, "4")
}

func TestSpec4DifferentSuccessorsNoConstraint(t *testing.T) {
	otherNext := model.RegularID(3, "q")
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Agreed),
		deliver("p", m, cfg1, model.Agreed),
		conf("p", cfg2, model.NewProcessSet("p")),
		conf("q", otherNext, model.NewProcessSet("q")),
	}
	// Different successors: spec 4 imposes nothing. (Unsettled so 2.1
	// is quiet; spec 3 satisfied since p delivered m... wait, p
	// delivered in cfg1 before moving: fine.)
	for _, v := range check(t, events, Options{}) {
		if v.Spec == "4" {
			t.Fatalf("unexpected spec 4 violation: %v", v)
		}
	}
}

func TestSpec5CausalViolationMissingPredecessor(t *testing.T) {
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		deliver("q", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed), // causally after m1
		deliver("r", m2, cfg1, model.Agreed),
		// r never delivers m1.
	}
	wantSpec(t, events, Options{}, "5")
}

func TestSpec5CausalViolationWrongOrder(t *testing.T) {
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		deliver("q", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed),
		deliver("r", m2, cfg1, model.Agreed),
		deliver("r", m1, cfg1, model.Agreed), // after m2: violation
	}
	wantSpec(t, events, Options{}, "5")
}

func TestSpec5ConcurrentSendsUnconstrained(t *testing.T) {
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed), // concurrent with m1
		deliver("r", m2, cfg1, model.Agreed),
		deliver("r", m1, cfg1, model.Agreed),
		deliver("p", m1, cfg1, model.Agreed),
		deliver("p", m2, cfg1, model.Agreed),
		deliver("q", m2, cfg1, model.Agreed),
		deliver("q", m1, cfg1, model.Agreed),
	}
	// Deliveries of m1 and m2 disagree in order across processes: fine
	// causally but a total order (6.2) violation.
	for _, v := range check(t, events, Options{}) {
		if v.Spec == "5" {
			t.Fatalf("unexpected spec 5 violation: %v", v)
		}
	}
}

func TestSpec62ConflictingDeliveryOrdersCycle(t *testing.T) {
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed),
		deliver("p", m1, cfg1, model.Agreed),
		deliver("p", m2, cfg1, model.Agreed),
		deliver("q", m2, cfg1, model.Agreed),
		deliver("q", m1, cfg1, model.Agreed), // opposite order: cycle
	}
	wantSpec(t, events, Options{}, "6.1/6.2")
}

func TestSpec63DeliveryPrefixViolation(t *testing.T) {
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed),
		deliver("p", m1, cfg1, model.Agreed),
		deliver("p", m2, cfg1, model.Agreed),
		// r delivers m2 but not m1, although m1's sender p is a member
		// of cfg1 and p delivered m1 before m2.
		deliver("r", m2, cfg1, model.Agreed),
	}
	wantSpec(t, events, Options{}, "6.3")
}

func TestSpec63TransitionalExemption(t *testing.T) {
	// In a transitional configuration there is no obligation to deliver
	// messages sent by processes outside it.
	m1, m2 := msg("r", 1), msg("q", 1)
	qOnly := model.NewProcessSet("q")
	transQ := model.TransitionalID(cfg2, cfg1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("r", m1, cfg1, model.Agreed),
		send("q", m2, cfg1, model.Agreed),
		deliver("p", m1, cfg1, model.Agreed),
		deliver("p", m2, cfg1, model.Agreed),
		// q partitions alone: transitional configuration {q}; it
		// delivers its own m2 but not r's m1 (r outside transitional).
		{Type: model.EventDeliverConf, Proc: "q", Config: transQ, Members: qOnly},
		{Type: model.EventDeliver, Proc: "q", Msg: m2, Config: transQ, Members: qOnly, Service: model.Agreed},
	}
	for _, v := range check(t, events, Options{}) {
		if v.Spec == "6.3" {
			t.Fatalf("unexpected 6.3 violation: %v", v)
		}
	}
}

func TestSpec71SafeDeliveryViolation(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Safe),
		deliver("p", m, cfg1, model.Safe),
		deliver("q", m, cfg1, model.Safe),
		// r neither delivers nor fails, and moves to a new
		// configuration (so its cfg1 zone is not final).
		conf("r", model.RegularID(5, "r"), model.NewProcessSet("r")),
	}
	wantSpec(t, events, Options{}, "7.1")
}

func TestSpec71FailureExcuses(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Safe),
		fail("r", cfg1),
		deliver("p", m, cfg1, model.Safe),
		deliver("q", m, cfg1, model.Safe),
	}
	wantClean(t, events, Options{})
}

func TestSpec71TransitionalDeliverySatisfies(t *testing.T) {
	m := msg("p", 1)
	transQ := model.TransitionalID(cfg2, cfg1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		send("p", m, cfg1, model.Safe),
		deliver("p", m, cfg1, model.Safe),
		deliver("r", m, cfg1, model.Safe),
		// q delivers in its transitional configuration instead.
		{Type: model.EventDeliverConf, Proc: "q", Config: transQ, Members: model.NewProcessSet("q")},
		{Type: model.EventDeliver, Proc: "q", Msg: m, Config: transQ, Members: model.NewProcessSet("q"), Service: model.Safe},
	}
	for _, v := range check(t, events, Options{}) {
		if v.Spec == "7.1" {
			t.Fatalf("unexpected 7.1 violation: %v", v)
		}
	}
}

func TestSpec72SafeDeliveryRequiresInstallation(t *testing.T) {
	m := msg("p", 1)
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr),
		// r never installs cfg1.
		send("p", m, cfg1, model.Safe),
		deliver("p", m, cfg1, model.Safe),
	}
	wantSpec(t, events, Options{}, "7.2")
}

func TestPrimaryUniquenessViolation(t *testing.T) {
	// Two concurrent primary components with disjoint members and no
	// connecting events.
	a := model.RegularID(2, "p")
	b := model.RegularID(2, "r")
	events := []model.Event{
		conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr),
		{Type: model.EventDeliverConf, Proc: "p", Config: a, Members: pq, Primary: true},
		{Type: model.EventDeliverConf, Proc: "q", Config: a, Members: pq, Primary: true},
		{Type: model.EventDeliverConf, Proc: "r", Config: b, Members: model.NewProcessSet("r"), Primary: true},
	}
	c := NewChecker(events, Options{})
	found := false
	for _, v := range c.CheckPrimary() {
		if v.Spec == "primary-unique" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected primary uniqueness violation")
	}
}

func TestPrimaryChainPasses(t *testing.T) {
	// cfg1 primary at {p,q,r}, then cfg2 primary at {p,q}: p's process
	// order supplies the chain, and they intersect.
	events := []model.Event{
		{Type: model.EventDeliverConf, Proc: "p", Config: cfg1, Members: pqr, Primary: true},
		{Type: model.EventDeliverConf, Proc: "q", Config: cfg1, Members: pqr, Primary: true},
		{Type: model.EventDeliverConf, Proc: "r", Config: cfg1, Members: pqr, Primary: true},
		{Type: model.EventDeliverConf, Proc: "p", Config: cfg2, Members: pq, Primary: true},
		{Type: model.EventDeliverConf, Proc: "q", Config: cfg2, Members: pq, Primary: true},
	}
	c := NewChecker(events, Options{})
	if vs := c.CheckPrimary(); len(vs) != 0 {
		t.Fatalf("expected clean primary history, got %v", vs)
	}
}

func TestPrimaryContinuityViolation(t *testing.T) {
	// Ordered but disjoint primaries: q bridges the order via a message
	// chain... simplest: r observed both but is member of neither.
	a := model.RegularID(2, "p")
	b := model.RegularID(3, "s")
	st := model.NewProcessSet("s", "t")
	m := msg("p", 1)
	events := []model.Event{
		{Type: model.EventDeliverConf, Proc: "p", Config: a, Members: model.NewProcessSet("p"), Primary: true},
		{Type: model.EventSend, Proc: "p", Msg: m, Config: a, Service: model.Agreed},
		{Type: model.EventDeliverConf, Proc: "s", Config: b, Members: st, Primary: true},
		{Type: model.EventDeliverConf, Proc: "t", Config: b, Members: st, Primary: true},
	}
	// Give the order a witness: p's send delivered by s after s's conf?
	// Delivery must follow conf at s. Append delivery at s in b... that
	// violates 1.3 but CheckPrimary runs standalone.
	events = append(events, model.Event{Type: model.EventDeliver, Proc: "s", Msg: m, Config: b, Members: st})
	c := NewChecker(events, Options{})
	found := false
	for _, v := range c.CheckPrimary() {
		if v.Spec == "primary-continuity" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected continuity violation, got %v", c.CheckPrimary())
	}
}

func TestBuildOrdAssignsEqualTimesToSharedDeliveries(t *testing.T) {
	events := baseline()
	c := NewChecker(events, Options{})
	ord, cyclic := c.BuildOrd()
	if cyclic {
		t.Fatal("baseline should have a legal ord")
	}
	// Deliveries of m1 (indices 4,5,6) share a time; conf deliveries of
	// cfg1 (0,1,2) share a time; send (3) strictly between confs and
	// deliveries.
	if ord[4] != ord[5] || ord[5] != ord[6] {
		t.Fatalf("deliveries of one message must share ord: %v %v %v", ord[4], ord[5], ord[6])
	}
	if ord[0] != ord[1] || ord[1] != ord[2] {
		t.Fatal("configuration changes of one configuration must share ord")
	}
	if !(ord[0] < ord[3] && ord[3] < ord[4]) {
		t.Fatalf("ord must respect precedes: conf=%d send=%d deliver=%d", ord[0], ord[3], ord[4])
	}
}

func TestHistoryAppendAndLen(t *testing.T) {
	var h History
	if h.Len() != 0 {
		t.Fatal("zero history should be empty")
	}
	h.Append(model.Event{Type: model.EventFail, Proc: "p", Config: cfg1})
	if h.Len() != 1 || len(h.Events()) != 1 {
		t.Fatal("append should record the event")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Spec: "1.3", Msg: "boom", Events: []int{1, 2}}
	if got := v.String(); !strings.Contains(got, "1.3") || !strings.Contains(got, "boom") {
		t.Fatalf("String() = %q", got)
	}
}

// Package refcheck is the reference implementation of the specification
// checker: the original O(n²)-memory bitset transitive closure over the
// generating edges of the precedes relation, and the original
// nested-loop forms of every check. It exists solely as a differential
// testing oracle for the scalable checker in package spec — the two must
// agree violation-for-violation on every history — and is imported only
// from test files and the inline-soak oracle (chaos.RunStream samples
// certification windows through it; the windows are pruned and hence
// bounded). Do not use it in other production paths: checking a history
// of n events allocates n²/8 bytes here versus O(n·P) in package spec.
package refcheck

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/spec"
)

// CheckAll runs every specification check of spec.Checker.CheckAll in its
// original serial order and returns the violations found. The order of
// violations within one check follows Go map iteration and is therefore
// not deterministic; compare results as multisets.
func CheckAll(events []model.Event, opts spec.Options) []spec.Violation {
	c := &checker{ix: buildIndex(events), opts: opts}
	var out []spec.Violation
	out = append(out, c.checkBasicDelivery()...)
	out = append(out, c.checkConfigChanges()...)
	out = append(out, c.checkSelfDelivery()...)
	out = append(out, c.checkFailureAtomicity()...)
	out = append(out, c.checkCausalDelivery()...)
	out = append(out, c.checkTotalOrder()...)
	out = append(out, c.checkSafeDelivery()...)
	return out
}

// Closure computes the bitset transitive closure of the generating edges
// and returns the precedes predicate over event indices. It is the oracle
// for spec's vector-timestamp precedes.
func Closure(events []model.Event) func(i, j int) bool {
	ix := buildIndex(events)
	return ix.precedes
}

// index holds the derived structures every check shares.
type index struct {
	events   []model.Event
	byProc   map[model.ProcessID][]int
	sends    map[model.MessageID][]int
	delivers map[model.MessageID][]int
	confs    map[model.ConfigID][]int
	members  map[model.ConfigID]model.ProcessSet
	// reach is the transitive closure over the generating edges:
	// reach[i] bit j set means event i precedes event j.
	reach []bitset
}

func buildIndex(events []model.Event) *index {
	ix := &index{
		events:   events,
		byProc:   make(map[model.ProcessID][]int),
		sends:    make(map[model.MessageID][]int),
		delivers: make(map[model.MessageID][]int),
		confs:    make(map[model.ConfigID][]int),
		members:  make(map[model.ConfigID]model.ProcessSet),
	}
	for i, e := range events {
		ix.byProc[e.Proc] = append(ix.byProc[e.Proc], i)
		switch e.Type {
		case model.EventSend:
			ix.sends[e.Msg] = append(ix.sends[e.Msg], i)
		case model.EventDeliver:
			ix.delivers[e.Msg] = append(ix.delivers[e.Msg], i)
		case model.EventDeliverConf:
			ix.confs[e.Config] = append(ix.confs[e.Config], i)
			if _, ok := ix.members[e.Config]; !ok {
				ix.members[e.Config] = e.Members
			}
		}
	}
	ix.buildReach()
	return ix
}

// buildReach computes the transitive closure of the generating edges. All
// generating edges point forward in history order, so a single backward
// sweep suffices.
func (ix *index) buildReach() {
	n := len(ix.events)
	ix.reach = make([]bitset, n)
	words := (n + 63) / 64
	succ := make([][]int32, n)
	for _, idxs := range ix.byProc {
		for k := 0; k+1 < len(idxs); k++ {
			//lint:allow determinism successor lists feed an order-insensitive bitset closure
			succ[idxs[k]] = append(succ[idxs[k]], int32(idxs[k+1]))
		}
	}
	for m, sIdxs := range ix.sends {
		if len(sIdxs) == 0 {
			continue
		}
		s := sIdxs[0]
		for _, d := range ix.delivers[m] {
			if s < d {
				//lint:allow determinism successor lists feed an order-insensitive bitset closure
				succ[s] = append(succ[s], int32(d))
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		b := newBitset(words)
		for _, j := range succ[i] {
			b.set(int(j))
			b.orInto(ix.reach[j])
		}
		ix.reach[i] = b
	}
}

// precedes reports whether event i precedes event j in the closure.
func (ix *index) precedes(i, j int) bool {
	if i == j {
		return false
	}
	return ix.reach[i].get(j)
}

// confSeq returns the indices of p's deliver_conf events in order.
func (ix *index) confSeq(p model.ProcessID) []int {
	var out []int
	for _, i := range ix.byProc[p] {
		if ix.events[i].Type == model.EventDeliverConf {
			out = append(out, i)
		}
	}
	return out
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

func (b bitset) get(i int) bool {
	w := i / 64
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%64)) != 0
}

func (b bitset) orInto(o bitset) {
	for w := range o {
		b[w] |= o[w]
	}
}

type checker struct {
	ix   *index
	opts spec.Options
}

// ---------------------------------------------------------------------------
// Specification 1: basic delivery.

func (c *checker) checkBasicDelivery() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	for m, sIdxs := range ix.sends {
		if len(sIdxs) > 1 {
			//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
			out = append(out, spec.Violation{
				Spec:   "1.4",
				Msg:    fmt.Sprintf("message %s sent %d times", m, len(sIdxs)),
				Events: sIdxs,
			})
		}
		for _, s := range sIdxs {
			if !ix.events[s].Config.IsRegular() {
				out = append(out, spec.Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("message %s sent in non-regular configuration %s", m, ix.events[s].Config),
					Events: []int{s},
				})
			}
		}
	}
	perProcDeliver := make(map[model.ProcessID]map[model.MessageID]int)
	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			p := ix.events[d].Proc
			if perProcDeliver[p] == nil {
				perProcDeliver[p] = make(map[model.MessageID]int)
			}
			if prev, dup := perProcDeliver[p][m]; dup {
				//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
				out = append(out, spec.Violation{
					Spec:   "1.4",
					Msg:    fmt.Sprintf("process %s delivered message %s twice", p, m),
					Events: []int{prev, d},
				})
			}
			perProcDeliver[p][m] = d
		}
	}

	for m, dIdxs := range ix.delivers {
		sIdxs := ix.sends[m]
		for _, d := range dIdxs {
			de := ix.events[d]
			if len(sIdxs) == 0 {
				//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
				out = append(out, spec.Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("message %s delivered by %s but never sent", m, de.Proc),
					Events: []int{d},
				})
				continue
			}
			s := sIdxs[0]
			se := ix.events[s]
			if se.Config != de.Config.Prev() {
				out = append(out, spec.Violation{
					Spec: "1.3",
					Msg: fmt.Sprintf("message %s sent in %s but delivered by %s in %s",
						m, se.Config, de.Proc, de.Config),
					Events: []int{s, d},
				})
			}
			if !ix.precedes(s, d) {
				out = append(out, spec.Violation{
					Spec:   "1.3",
					Msg:    fmt.Sprintf("delivery of %s by %s does not follow its send", m, de.Proc),
					Events: []int{s, d},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 2: delivery of configuration changes.

func (c *checker) checkConfigChanges() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	for cfg, idxs := range ix.confs {
		seen := make(map[model.ProcessID]int)
		for _, i := range idxs {
			e := ix.events[i]
			if prev, dup := seen[e.Proc]; dup {
				//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
				out = append(out, spec.Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("process %s delivered configuration %s twice", e.Proc, cfg),
					Events: []int{prev, i},
				})
			}
			seen[e.Proc] = i
			if !e.Members.Equal(ix.members[cfg]) {
				out = append(out, spec.Violation{
					Spec:   "2.1",
					Msg:    fmt.Sprintf("configuration %s has inconsistent membership: %s vs %s", cfg, e.Members, ix.members[cfg]),
					Events: []int{i},
				})
			}
			if !e.Members.Contains(e.Proc) {
				out = append(out, spec.Violation{
					Spec:   "2.2",
					Msg:    fmt.Sprintf("process %s installed configuration %s it is not a member of", e.Proc, cfg),
					Events: []int{i},
				})
			}
		}
	}

	for p, idxs := range ix.byProc {
		var current model.ConfigID
		failed := false
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				current = e.Config
				failed = false
			case model.EventFail:
				if e.Config != current {
					//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
					out = append(out, spec.Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s failed in %s while its configuration is %s", p, e.Config, current),
						Events: []int{i},
					})
				}
				failed = true
			case model.EventSend, model.EventDeliver:
				if failed {
					out = append(out, spec.Violation{
						Spec:   "2.2",
						Msg:    fmt.Sprintf("process %s has %s after failing without recovering", p, e.Type),
						Events: []int{i},
					})
				}
				if e.Config != current {
					out = append(out, spec.Violation{
						Spec: "2.2",
						Msg: fmt.Sprintf("process %s has %s event in %s while its configuration is %s",
							p, e.Type, e.Config, current),
						Events: []int{i},
					})
				}
			}
		}
	}

	if c.opts.Settled {
		out = append(out, c.checkFinalAgreement()...)
	}
	return out
}

func (c *checker) checkFinalAgreement() []spec.Violation {
	var out []spec.Violation
	ix := c.ix
	finals := make(map[model.ProcessID]model.ConfigID)
	failedIn := make(map[model.ProcessID]bool)
	for p, idxs := range ix.byProc {
		for _, i := range idxs {
			e := ix.events[i]
			switch e.Type {
			case model.EventDeliverConf:
				finals[p] = e.Config
				failedIn[p] = false
			case model.EventFail:
				failedIn[p] = true
			}
		}
	}
	for p, cfg := range finals {
		if failedIn[p] {
			continue
		}
		for _, q := range ix.members[cfg].Members() {
			if failedIn[q] {
				continue
			}
			if finals[q] != cfg {
				//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
				out = append(out, spec.Violation{
					Spec: "2.1",
					Msg: fmt.Sprintf("process %s finished in %s but member %s finished in %s",
						p, cfg, q, finals[q]),
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 3: self-delivery.

func (c *checker) checkSelfDelivery() []spec.Violation {
	var out []spec.Violation
	ix := c.ix
	for m, sIdxs := range ix.sends {
		for _, s := range sIdxs {
			se := ix.events[s]
			p := se.Proc
			zone := c.comZone(p, se.Config)
			if c.failedIn(p, zone) {
				continue
			}
			movedOn := c.leftZone(p, s, zone)
			if !movedOn && !c.opts.Settled {
				continue
			}
			if !c.deliveredIn(p, m, zone) {
				//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
				out = append(out, spec.Violation{
					Spec:   "3",
					Msg:    fmt.Sprintf("process %s never delivered its own message %s sent in %s", p, m, se.Config),
					Events: []int{s},
				})
			}
		}
	}
	return out
}

func (c *checker) comZone(p model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	zone := []model.ConfigID{cfg}
	if cfg.IsTransitional() {
		return zone
	}
	for _, i := range c.ix.confSeq(p) {
		e := c.ix.events[i]
		if e.Config.IsTransitional() && e.Config.Prev() == cfg {
			zone = append(zone, e.Config)
		}
	}
	return zone
}

func (c *checker) failedIn(p model.ProcessID, zone []model.ConfigID) bool {
	for _, i := range c.ix.byProc[p] {
		e := c.ix.events[i]
		if e.Type == model.EventFail {
			for _, z := range zone {
				if e.Config == z {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) leftZone(p model.ProcessID, idx int, zone []model.ConfigID) bool {
	for _, i := range c.ix.byProc[p] {
		if i <= idx {
			continue
		}
		e := c.ix.events[i]
		if e.Type != model.EventDeliverConf {
			continue
		}
		inZone := false
		for _, z := range zone {
			if e.Config == z {
				inZone = true
			}
		}
		if !inZone {
			return true
		}
	}
	return false
}

func (c *checker) deliveredIn(p model.ProcessID, m model.MessageID, zone []model.ConfigID) bool {
	for _, d := range c.ix.delivers[m] {
		e := c.ix.events[d]
		if e.Proc != p {
			continue
		}
		for _, z := range zone {
			if e.Config == z {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Specification 4: failure atomicity.

func (c *checker) checkFailureAtomicity() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	type procConf struct {
		p   model.ProcessID
		cfg model.ConfigID
	}
	next := make(map[procConf]model.ConfigID)
	for p := range ix.byProc {
		seq := ix.confSeq(p)
		for k := 0; k+1 < len(seq); k++ {
			cur := ix.events[seq[k]].Config
			nxt := ix.events[seq[k+1]].Config
			next[procConf{p, cur}] = nxt
		}
	}
	delivered := make(map[procConf]map[model.MessageID]bool)
	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			e := ix.events[d]
			k := procConf{e.Proc, e.Config}
			if delivered[k] == nil {
				delivered[k] = make(map[model.MessageID]bool)
			}
			delivered[k][m] = true
		}
	}

	for cfg, idxs := range ix.confs {
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				p := ix.events[idxs[a]].Proc
				q := ix.events[idxs[b]].Proc
				np, okp := next[procConf{p, cfg}]
				nq, okq := next[procConf{q, cfg}]
				if !okp || !okq || np != nq {
					continue
				}
				dp := delivered[procConf{p, cfg}]
				dq := delivered[procConf{q, cfg}]
				if diff := setDiff(dp, dq); diff != "" {
					//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
					out = append(out, spec.Violation{
						Spec: "4",
						Msg: fmt.Sprintf("processes %s and %s proceeded from %s to %s but delivered different sets: %s",
							p, q, cfg, np, diff),
					})
				}
			}
		}
	}
	return out
}

func setDiff(a, b map[model.MessageID]bool) string {
	var onlyA, onlyB []string
	for m := range a {
		if !b[m] {
			onlyA = append(onlyA, m.String())
		}
	}
	for m := range b {
		if !a[m] {
			onlyB = append(onlyB, m.String())
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return fmt.Sprintf("first-only=%v second-only=%v", onlyA, onlyB)
}

// ---------------------------------------------------------------------------
// Specification 5: causal delivery.

func (c *checker) checkCausalDelivery() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	sendsByCfg := make(map[model.ConfigID][]int)
	for _, sIdxs := range ix.sends {
		for _, s := range sIdxs {
			//lint:allow determinism each per-config send list is sorted with sort.Ints before use
			sendsByCfg[ix.events[s].Config] = append(sendsByCfg[ix.events[s].Config], s)
		}
	}
	for _, sends := range sendsByCfg {
		sort.Ints(sends)
		for a := 0; a < len(sends); a++ {
			for b := 0; b < len(sends); b++ {
				if a == b || !ix.precedes(sends[a], sends[b]) {
					continue
				}
				m := ix.events[sends[a]].Msg
				m2 := ix.events[sends[b]].Msg
				for _, d2 := range ix.delivers[m2] {
					r := ix.events[d2].Proc
					d1 := c.deliveryIndex(r, m)
					if d1 < 0 {
						//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
						out = append(out, spec.Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s but not its causal predecessor %s",
								r, m2, m),
							Events: []int{sends[a], sends[b], d2},
						})
						continue
					}
					if d1 > d2 {
						out = append(out, spec.Violation{
							Spec: "5",
							Msg: fmt.Sprintf("%s delivered %s before its causal predecessor %s",
								r, m2, m),
							Events: []int{d1, d2},
						})
					}
				}
			}
		}
	}
	return out
}

func (c *checker) deliveryIndex(p model.ProcessID, m model.MessageID) int {
	for _, d := range c.ix.delivers[m] {
		if c.ix.events[d].Proc == p {
			return d
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Specification 6: total order.

func (c *checker) checkTotalOrder() []spec.Violation {
	var out []spec.Violation
	if _, cyclic := c.buildOrd(); cyclic {
		out = append(out, spec.Violation{
			Spec: "6.1/6.2",
			Msg:  "no legal ord exists: the condensed event graph is cyclic",
		})
	}
	out = append(out, c.checkDeliveryPrefix()...)
	return out
}

func (c *checker) buildOrd() (map[int]uint64, bool) {
	ix := c.ix
	n := len(ix.events)

	super := make([]int, n)
	for i := range super {
		super[i] = -1
	}
	nextSuper := 0
	alloc := func(idxs []int) {
		s := nextSuper
		nextSuper++
		for _, i := range idxs {
			super[i] = s
		}
	}
	for _, dIdxs := range ix.delivers {
		alloc(dIdxs)
	}
	for _, cIdxs := range ix.confs {
		alloc(cIdxs)
	}
	for i := range super {
		if super[i] == -1 {
			alloc([]int{i})
		}
	}

	adj := make(map[int]map[int]bool, nextSuper)
	addEdge := func(a, b int) {
		sa, sb := super[a], super[b]
		if sa == sb {
			return
		}
		if adj[sa] == nil {
			adj[sa] = make(map[int]bool)
		}
		adj[sa][sb] = true
	}
	for _, idxs := range ix.byProc {
		for k := 0; k+1 < len(idxs); k++ {
			addEdge(idxs[k], idxs[k+1])
		}
	}
	for m, sIdxs := range ix.sends {
		if len(sIdxs) == 0 {
			continue
		}
		for _, d := range ix.delivers[m] {
			addEdge(sIdxs[0], d)
		}
	}

	indeg := make([]int, nextSuper)
	for _, ss := range adj {
		for b := range ss {
			indeg[b]++
		}
	}
	var queue []int
	for s := 0; s < nextSuper; s++ {
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	rank := make([]uint64, nextSuper)
	var done int
	var t uint64
	for len(queue) > 0 {
		min := 0
		for k := 1; k < len(queue); k++ {
			if queue[k] < queue[min] {
				min = k
			}
		}
		s := queue[min]
		queue = append(queue[:min], queue[min+1:]...)
		t++
		rank[s] = t
		done++
		for b := range adj[s] {
			indeg[b]--
			if indeg[b] == 0 {
				//lint:allow determinism the topological sort extracts the minimum element each step; queue insertion order is irrelevant
				queue = append(queue, b)
			}
		}
	}
	if done != nextSuper {
		return nil, true
	}
	ord := make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		ord[i] = rank[super[i]]
	}
	return ord, false
}

func (c *checker) checkDeliveryPrefix() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	type famKey struct {
		p   model.ProcessID
		reg model.ConfigID
	}
	famDeliveries := make(map[famKey][]int)
	for p, idxs := range ix.byProc {
		for _, i := range idxs {
			e := ix.events[i]
			if e.Type != model.EventDeliver {
				continue
			}
			k := famKey{p, e.Config.Prev()}
			//lint:allow determinism each famDeliveries key is owned by one process; entries arrive in idxs slice order
			famDeliveries[k] = append(famDeliveries[k], i)
		}
	}

	for key, dels := range famDeliveries {
		for a := 0; a < len(dels); a++ {
			for b := a + 1; b < len(dels); b++ {
				m := ix.events[dels[a]].Msg
				m2 := ix.events[dels[b]].Msg
				sender := m.Sender
				for _, d2 := range ix.delivers[m2] {
					q := ix.events[d2].Proc
					if q == key.p {
						continue
					}
					cPrime := ix.events[d2].Config
					if !ix.events[d2].Members.Contains(sender) {
						continue
					}
					if !c.deliveredIn(q, m, c.comZoneOf(q, cPrime)) {
						//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
						out = append(out, spec.Violation{
							Spec: "6.3",
							Msg: fmt.Sprintf("%s delivered %s (after %s at %s) in %s whose membership includes %s, but never delivered %s",
								q, m2, m, key.p, cPrime, sender, m),
							Events: []int{dels[a], dels[b], d2},
						})
					}
				}
			}
		}
	}
	return out
}

func (c *checker) comZoneOf(q model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	if cfg.IsTransitional() {
		return c.comZone(q, cfg.Prev())
	}
	return c.comZone(q, cfg)
}

// ---------------------------------------------------------------------------
// Specification 7: safe delivery.

func (c *checker) checkSafeDelivery() []spec.Violation {
	var out []spec.Violation
	ix := c.ix

	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			e := ix.events[d]
			if e.Service != model.Safe {
				continue
			}
			members := e.Members

			if e.Config.IsRegular() {
				for _, q := range members.Members() {
					if !c.installed(q, e.Config) {
						//lint:allow determinism reference checker contract is multiset output (sorted by the differential harness); kept verbatim as the oracle
						out = append(out, spec.Violation{
							Spec: "7.2",
							Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s never installed it",
								e.Proc, m, e.Config, q),
							Events: []int{d},
						})
					}
				}
			}

			for _, q := range members.Members() {
				if q == e.Proc {
					continue
				}
				zone := c.comZoneOf(q, e.Config)
				if c.deliveredIn(q, m, zone) || c.failedIn(q, zone) {
					continue
				}
				if !c.opts.Settled && c.inFinalZone(q, zone) {
					continue
				}
				out = append(out, spec.Violation{
					Spec: "7.1",
					Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s neither delivered nor failed",
						e.Proc, m, e.Config, q),
					Events: []int{d},
				})
			}
		}
	}
	return out
}

func (c *checker) installed(q model.ProcessID, cfg model.ConfigID) bool {
	for _, i := range c.ix.confs[cfg] {
		if c.ix.events[i].Proc == q {
			return true
		}
	}
	return false
}

func (c *checker) inFinalZone(q model.ProcessID, zone []model.ConfigID) bool {
	seq := c.ix.confSeq(q)
	if len(seq) == 0 {
		return true
	}
	last := c.ix.events[seq[len(seq)-1]].Config
	for _, z := range zone {
		if last == z {
			return true
		}
	}
	return false
}

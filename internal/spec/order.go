package spec

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/model"
)

// CheckTotalOrder verifies Specifications 6.1-6.3 together with the barrier
// requirements 2.3/2.4, via the condensation argument described in the
// package comment: a legal ord function exists exactly when the condensed
// event graph — deliveries of one message merged, configuration change
// deliveries of one configuration merged — is acyclic.
func (c *Checker) CheckTotalOrder() []Violation {
	var out []Violation
	if _, cyclic := c.BuildOrd(); cyclic {
		out = append(out, Violation{
			Spec: "6.1/6.2",
			Msg:  "no legal ord exists: the condensed event graph is cyclic",
		})
	}
	out = append(out, c.checkDeliveryPrefix()...)
	return out
}

// intHeap is a plain min-heap of supernode ids for the Kahn loop.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BuildOrd constructs a witness ord assignment: a map from event index to
// logical time such that ord respects the generating edges (6.1), gives
// deliveries of one message — and configuration changes of one
// configuration — the same time (6.2), and gives distinct times otherwise.
// The second result reports whether the condensation is cyclic, in which
// case the assignment is nil.
//
// Supernodes are numbered by first occurrence in the history (so the
// assignment is deterministic), edges live in a compact sorted slice
// instead of nested maps, and the Kahn loop picks the smallest ready
// supernode with a container/heap min-heap instead of an O(q) scan.
func (c *Checker) BuildOrd() (map[int]uint64, bool) {
	ix := c.ix
	n := len(ix.events)

	// Assign each event to a supernode, numbering supernodes in order
	// of their first event.
	super := make([]int, n)
	nextSuper := 0
	msgSuper := make(map[model.MessageID]int)
	cfgSuper := make(map[model.ConfigID]int)
	for i, e := range ix.events {
		switch e.Type {
		case model.EventDeliver:
			s, ok := msgSuper[e.Msg]
			if !ok {
				s = nextSuper
				nextSuper++
				msgSuper[e.Msg] = s
			}
			super[i] = s
		case model.EventDeliverConf:
			s, ok := cfgSuper[e.Config]
			if !ok {
				s = nextSuper
				nextSuper++
				cfgSuper[e.Config] = s
			}
			super[i] = s
		default:
			super[i] = nextSuper
			nextSuper++
		}
	}

	// Lift generating edges to supernodes, packed as (from,to) pairs,
	// then sort and dedup into CSR form.
	var edges []uint64
	addEdge := func(a, b int) {
		sa, sb := super[a], super[b]
		if sa == sb {
			return
		}
		edges = append(edges, uint64(sa)<<32|uint64(sb))
	}
	for _, idxs := range ix.byProc {
		for k := 0; k+1 < len(idxs); k++ {
			addEdge(idxs[k], idxs[k+1])
		}
	}
	for m, sIdxs := range ix.sends {
		if len(sIdxs) == 0 {
			continue
		}
		for _, d := range ix.delivers[m] {
			addEdge(sIdxs[0], d)
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	uniq := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	edges = uniq
	start := make([]int32, nextSuper+1)
	dst := make([]int32, len(edges))
	indeg := make([]int32, nextSuper)
	for _, e := range edges {
		start[int(e>>32)+1]++
		indeg[uint32(e)]++
	}
	for s := 0; s < nextSuper; s++ {
		start[s+1] += start[s]
	}
	for _, e := range edges {
		fill := e >> 32
		dst[start[fill]] = int32(uint32(e))
		start[fill]++
	}
	// start was consumed as a fill cursor; shift it back.
	for s := nextSuper; s > 0; s-- {
		start[s] = start[s-1]
	}
	start[0] = 0

	// Topologically sort the supernode graph (Kahn), always taking the
	// smallest ready supernode.
	var ready intHeap
	for s := 0; s < nextSuper; s++ {
		if indeg[s] == 0 {
			ready = append(ready, s)
		}
	}
	heap.Init(&ready)
	rank := make([]uint64, nextSuper)
	var done int
	var t uint64
	for ready.Len() > 0 {
		s := heap.Pop(&ready).(int)
		t++
		rank[s] = t
		done++
		for k := start[s]; k < start[s+1]; k++ {
			b := int(dst[k])
			indeg[b]--
			if indeg[b] == 0 {
				heap.Push(&ready, b)
			}
		}
	}
	if done != nextSuper {
		return nil, true
	}
	ord := make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		ord[i] = rank[super[i]]
	}
	return ord, false
}

// famKey identifies a per-process delivery family: a regular
// configuration together with its transitional successors.
type famKey struct {
	p   model.ProcessID
	reg model.ConfigID
}

// checkDeliveryPrefix verifies Specification 6.3: if p delivered m before
// m' within com_p(c), and q delivered m' in configuration c' whose
// membership includes m's sender, then q delivered m within com_q(c').
//
// The reference enumerates every delivery pair of every family times
// every co-delivery — quartic in the worst case. Here each co-delivery is
// certified directly: q delivering m' in c' must hold, in its own com
// zone of c'.Prev(), every message p delivered before m' in p's family.
// Because q's zone-delivered set is precomputed (famDelivered), that is a
// monotone prefix pointer per (q, family). Certification is conservative
// — it ignores the sender-membership escape clause and zone mismatches —
// so a failed family falls back to the reference pair loop, emitting
// exactly the reference violations (or none, when the escape clause
// applies).
func (c *Checker) checkDeliveryPrefix() []Violation {
	var out []Violation
	ix := c.ix

	// Per-process delivery order per regular family, in history order,
	// plus each delivery's position in its family list.
	famDeliveries := make(map[famKey][]int)
	famPos := make(map[int]int32)
	for i, e := range ix.events {
		if e.Type != model.EventDeliver {
			continue
		}
		k := famKey{e.Proc, e.Config.Prev()}
		famPos[i] = int32(len(famDeliveries[k]))
		famDeliveries[k] = append(famDeliveries[k], i)
	}

	// prefixDone[q, fam] = how many leading deliveries of
	// famDeliveries[fam] the process q has delivered within its own com
	// zone of fam.reg. Monotone; amortized linear.
	type qFam struct {
		q model.ProcessID
		k famKey
	}
	prefixDone := make(map[qFam]int32)
	slow := make(map[famKey]bool)

	for _, dIdxs := range ix.delivers {
		for _, dp := range dIdxs {
			k := famKey{ix.events[dp].Proc, ix.events[dp].Config.Prev()}
			if slow[k] {
				continue
			}
			b := famPos[dp]
			if b == 0 {
				continue
			}
			m2 := ix.events[dp].Msg
			for _, d2 := range ix.delivers[m2] {
				q := ix.events[d2].Proc
				if q == k.p {
					continue
				}
				cPrime := ix.events[d2].Config
				if cPrime.Prev() != k.reg {
					// q delivered m' under a different family;
					// its com zone does not line up with the
					// prefix set. Resolve by reference.
					slow[k] = true
					break
				}
				qk := qFam{q, k}
				done := prefixDone[qk]
				dels := famDeliveries[k]
				got := ix.famDelivered[procCfg{q, k.reg}]
				for done < b && got[ix.events[dels[done]].Msg] {
					done++
				}
				prefixDone[qk] = done
				if done < b {
					slow[k] = true
					break
				}
			}
		}
	}

	// Fallback: the reference double loop for the families that failed
	// certification, ordered by first family delivery for determinism.
	slowKeys := make([]famKey, 0, len(slow))
	for k := range slow {
		slowKeys = append(slowKeys, k)
	}
	sort.Slice(slowKeys, func(a, b int) bool {
		return famDeliveries[slowKeys[a]][0] < famDeliveries[slowKeys[b]][0]
	})
	for _, key := range slowKeys {
		dels := famDeliveries[key]
		for a := 0; a < len(dels); a++ {
			for b := a + 1; b < len(dels); b++ {
				m := ix.events[dels[a]].Msg  // delivered first
				m2 := ix.events[dels[b]].Msg // delivered later
				sender := m.Sender           // = r in the spec
				for _, d2 := range ix.delivers[m2] {
					q := ix.events[d2].Proc
					if q == key.p {
						continue
					}
					cPrime := ix.events[d2].Config
					if !ix.events[d2].Members.Contains(sender) {
						continue
					}
					if !ix.deliveredIn(q, m, ix.comZoneOf(q, cPrime)) {
						out = append(out, Violation{
							Spec: "6.3",
							Msg: fmt.Sprintf("%s delivered %s (after %s at %s) in %s whose membership includes %s, but never delivered %s",
								q, m2, m, key.p, cPrime, sender, m),
							Events: []int{dels[a], dels[b], d2},
						})
					}
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Specification 7: safe delivery.

// CheckSafeDelivery verifies Specifications 7.1 and 7.2 for messages sent
// with the safe service. Deliveries within a process's final configuration
// zone are enforced only on settled histories. All membership, zone,
// failure and delivery lookups hit the precomputed index tables.
func (c *Checker) CheckSafeDelivery() []Violation {
	var out []Violation
	ix := c.ix

	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			e := ix.events[d]
			if e.Service != model.Safe {
				continue
			}
			members := e.Members

			// 7.2: a safe delivery in a regular configuration
			// requires every member to have installed it.
			if e.Config.IsRegular() {
				for _, q := range members.Members() {
					if !ix.installed(q, e.Config) {
						//lint:allow determinism violation order is canonicalised by sortViolations in CheckAll
						out = append(out, Violation{
							Spec: "7.2",
							Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s never installed it",
								e.Proc, m, e.Config, q),
							Events: []int{d},
						})
					}
				}
			}

			// 7.1: every member delivers m in its own com zone or
			// fails there.
			for _, q := range members.Members() {
				if q == e.Proc {
					continue
				}
				zone := ix.comZoneOf(q, e.Config)
				if ix.deliveredIn(q, m, zone) || ix.failedIn(q, zone) {
					continue
				}
				if !c.opts.Settled && ix.inFinalZone(q, zone) {
					continue
				}
				out = append(out, Violation{
					Spec: "7.1",
					Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s neither delivered nor failed",
						e.Proc, m, e.Config, q),
					Events: []int{d},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Section 2.2: the primary component model.

// CheckPrimary verifies Uniqueness — the primary components are totally
// ordered by the precedes relation — and Continuity — consecutive primary
// components share at least one member.
func (c *Checker) CheckPrimary() []Violation {
	var out []Violation
	ix := c.ix

	// Collect primary configurations with their deliver_conf indices.
	prim := make(map[model.ConfigID][]int)
	for cfg, idxs := range ix.confs {
		for _, i := range idxs {
			if ix.events[i].Primary {
				//lint:allow determinism each prim[cfg] list fills from the slice-ordered idxs of one key; map order only permutes independent keys
				prim[cfg] = append(prim[cfg], i)
			}
		}
	}
	ids := make([]model.ConfigID, 0, len(prim))
	for cfg := range prim {
		ids = append(ids, cfg)
	}
	// Canonical enumeration order: the uniqueness pass below names the
	// pair inside the violation message, so ids must not carry map order.
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Seq != ids[b].Seq {
			return ids[a].Seq < ids[b].Seq
		}
		return ids[a].Rep < ids[b].Rep
	})
	// Order primaries: C before C' when some deliver_conf of C precedes
	// some deliver_conf of C' in the closure (continuity's shared
	// member supplies the path in conforming histories).
	before := func(a, b model.ConfigID) bool {
		for _, i := range prim[a] {
			for _, j := range prim[b] {
				if ix.precedes(i, j) {
					return true
				}
			}
		}
		return false
	}
	// Uniqueness: every pair must be ordered one way, not both.
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			ab, ba := before(ids[a], ids[b]), before(ids[b], ids[a])
			if ab == ba {
				out = append(out, Violation{
					Spec: "primary-unique",
					Msg: fmt.Sprintf("primary components %s and %s are not totally ordered (both=%v)",
						ids[a], ids[b], ab),
				})
			}
		}
	}
	// Continuity: sort by the order and require adjacent intersection.
	ordered := make([]model.ConfigID, len(ids))
	copy(ordered, ids)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if before(ordered[j], ordered[i]) {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for k := 0; k+1 < len(ordered); k++ {
		a, b := ordered[k], ordered[k+1]
		if !ix.members[a].Intersects(ix.members[b]) {
			out = append(out, Violation{
				Spec: "primary-continuity",
				Msg: fmt.Sprintf("consecutive primary components %s%s and %s%s share no member",
					a, ix.members[a], b, ix.members[b]),
			})
		}
	}
	return out
}

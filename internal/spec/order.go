package spec

import (
	"fmt"

	"repro/internal/model"
)

// CheckTotalOrder verifies Specifications 6.1-6.3 together with the barrier
// requirements 2.3/2.4, via the condensation argument described in the
// package comment: a legal ord function exists exactly when the condensed
// event graph — deliveries of one message merged, configuration change
// deliveries of one configuration merged — is acyclic.
func (c *Checker) CheckTotalOrder() []Violation {
	var out []Violation
	if _, cyclic := c.BuildOrd(); cyclic {
		out = append(out, Violation{
			Spec: "6.1/6.2",
			Msg:  "no legal ord exists: the condensed event graph is cyclic",
		})
	}
	out = append(out, c.checkDeliveryPrefix()...)
	return out
}

// BuildOrd constructs a witness ord assignment: a map from event index to
// logical time such that ord respects the generating edges (6.1), gives
// deliveries of one message — and configuration changes of one
// configuration — the same time (6.2), and gives distinct times otherwise.
// The second result reports whether the condensation is cyclic, in which
// case the assignment is nil.
func (c *Checker) BuildOrd() (map[int]uint64, bool) {
	ix := c.ix
	n := len(ix.events)

	// Assign each event to a supernode.
	super := make([]int, n)
	for i := range super {
		super[i] = -1
	}
	nextSuper := 0
	alloc := func(idxs []int) {
		s := nextSuper
		nextSuper++
		for _, i := range idxs {
			super[i] = s
		}
	}
	for _, dIdxs := range ix.delivers {
		alloc(dIdxs)
	}
	for _, cIdxs := range ix.confs {
		alloc(cIdxs)
	}
	for i := range super {
		if super[i] == -1 {
			alloc([]int{i})
		}
	}

	// Lift generating edges to supernodes.
	adj := make(map[int]map[int]bool, nextSuper)
	addEdge := func(a, b int) {
		sa, sb := super[a], super[b]
		if sa == sb {
			return
		}
		if adj[sa] == nil {
			adj[sa] = make(map[int]bool)
		}
		adj[sa][sb] = true
	}
	for _, idxs := range ix.byProc {
		for k := 0; k+1 < len(idxs); k++ {
			addEdge(idxs[k], idxs[k+1])
		}
	}
	for m, sIdxs := range ix.sends {
		if len(sIdxs) == 0 {
			continue
		}
		for _, d := range ix.delivers[m] {
			addEdge(sIdxs[0], d)
		}
	}

	// Topologically sort the supernode graph (Kahn).
	indeg := make([]int, nextSuper)
	for _, ss := range adj {
		for b := range ss {
			indeg[b]++
		}
	}
	var queue []int
	for s := 0; s < nextSuper; s++ {
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	rank := make([]uint64, nextSuper)
	var done int
	var t uint64
	for len(queue) > 0 {
		// Deterministic: pick the smallest ready supernode.
		min := 0
		for k := 1; k < len(queue); k++ {
			if queue[k] < queue[min] {
				min = k
			}
		}
		s := queue[min]
		queue = append(queue[:min], queue[min+1:]...)
		t++
		rank[s] = t
		done++
		for b := range adj[s] {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	if done != nextSuper {
		return nil, true
	}
	ord := make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		ord[i] = rank[super[i]]
	}
	return ord, false
}

// checkDeliveryPrefix verifies Specification 6.3: if p delivered m before
// m' within com_p(c), and q delivered m' in configuration c' whose
// membership includes m's sender, then q delivered m within com_q(c').
func (c *Checker) checkDeliveryPrefix() []Violation {
	var out []Violation
	ix := c.ix

	// Per-process delivery order per regular family (regular
	// configuration and its transitional successors share a family
	// keyed by the regular configuration's ID).
	type famKey struct {
		p   model.ProcessID
		reg model.ConfigID
	}
	famDeliveries := make(map[famKey][]int)
	for p, idxs := range ix.byProc {
		for _, i := range idxs {
			e := ix.events[i]
			if e.Type != model.EventDeliver {
				continue
			}
			k := famKey{p, e.Config.Prev()}
			famDeliveries[k] = append(famDeliveries[k], i)
		}
	}

	for key, dels := range famDeliveries {
		for a := 0; a < len(dels); a++ {
			for b := a + 1; b < len(dels); b++ {
				m := ix.events[dels[a]].Msg  // delivered first
				m2 := ix.events[dels[b]].Msg // delivered later
				sender := m.Sender           // = r in the spec
				for _, d2 := range ix.delivers[m2] {
					q := ix.events[d2].Proc
					if q == key.p {
						continue
					}
					cPrime := ix.events[d2].Config
					if !ix.events[d2].Members.Contains(sender) {
						continue
					}
					if !c.deliveredIn(q, m, c.comZoneOf(q, cPrime)) {
						out = append(out, Violation{
							Spec: "6.3",
							Msg: fmt.Sprintf("%s delivered %s (after %s at %s) in %s whose membership includes %s, but never delivered %s",
								q, m2, m, key.p, cPrime, sender, m),
							Events: []int{dels[a], dels[b], d2},
						})
					}
				}
			}
		}
	}
	return out
}

// comZoneOf returns com_q(c') as a zone: for a regular configuration, the
// configuration plus q's transitional successor; for a transitional
// configuration, the underlying regular configuration plus q's own
// transitional successor of it — which need not be c' itself. A member
// that announced recovery completion and was then partitioned away from
// the others carries its obligations into a later recovery and delivers
// them in its own transitional configuration arising from the same
// regular one; the zone must follow the member, not the observer.
func (c *Checker) comZoneOf(q model.ProcessID, cfg model.ConfigID) []model.ConfigID {
	if cfg.IsTransitional() {
		return c.comZone(q, cfg.Prev())
	}
	return c.comZone(q, cfg)
}

// ---------------------------------------------------------------------------
// Specification 7: safe delivery.

// CheckSafeDelivery verifies Specifications 7.1 and 7.2 for messages sent
// with the safe service. Deliveries within a process's final configuration
// zone are enforced only on settled histories.
func (c *Checker) CheckSafeDelivery() []Violation {
	var out []Violation
	ix := c.ix

	for m, dIdxs := range ix.delivers {
		for _, d := range dIdxs {
			e := ix.events[d]
			if e.Service != model.Safe {
				continue
			}
			members := e.Members

			// 7.2: a safe delivery in a regular configuration
			// requires every member to have installed it.
			if e.Config.IsRegular() {
				for _, q := range members.Members() {
					if !c.installed(q, e.Config) {
						out = append(out, Violation{
							Spec: "7.2",
							Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s never installed it",
								e.Proc, m, e.Config, q),
							Events: []int{d},
						})
					}
				}
			}

			// 7.1: every member delivers m in its own com zone or
			// fails there.
			for _, q := range members.Members() {
				if q == e.Proc {
					continue
				}
				zone := c.comZoneOf(q, e.Config)
				if c.deliveredIn(q, m, zone) || c.failedIn(q, zone) {
					continue
				}
				if !c.opts.Settled && c.inFinalZone(q, zone) {
					continue
				}
				out = append(out, Violation{
					Spec: "7.1",
					Msg: fmt.Sprintf("%s delivered safe message %s in %s but member %s neither delivered nor failed",
						e.Proc, m, e.Config, q),
					Events: []int{d},
				})
			}
		}
	}
	return out
}

// installed reports whether q delivered a configuration change for cfg.
func (c *Checker) installed(q model.ProcessID, cfg model.ConfigID) bool {
	for _, i := range c.ix.confs[cfg] {
		if c.ix.events[i].Proc == q {
			return true
		}
	}
	return false
}

// inFinalZone reports whether q's last configuration belongs to the zone.
func (c *Checker) inFinalZone(q model.ProcessID, zone []model.ConfigID) bool {
	seq := c.ix.confSeq(q)
	if len(seq) == 0 {
		// q never installed anything; its whole (empty) history is
		// final.
		return true
	}
	last := c.ix.events[seq[len(seq)-1]].Config
	for _, z := range zone {
		if last == z {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Section 2.2: the primary component model.

// CheckPrimary verifies Uniqueness — the primary components are totally
// ordered by the precedes relation — and Continuity — consecutive primary
// components share at least one member.
func (c *Checker) CheckPrimary() []Violation {
	var out []Violation
	ix := c.ix

	// Collect primary configurations with their deliver_conf indices.
	prim := make(map[model.ConfigID][]int)
	for cfg, idxs := range ix.confs {
		for _, i := range idxs {
			if ix.events[i].Primary {
				prim[cfg] = append(prim[cfg], i)
			}
		}
	}
	ids := make([]model.ConfigID, 0, len(prim))
	for cfg := range prim {
		ids = append(ids, cfg)
	}
	// Order primaries: C before C' when some deliver_conf of C precedes
	// some deliver_conf of C' in the closure (continuity's shared
	// member supplies the path in conforming histories).
	before := func(a, b model.ConfigID) bool {
		for _, i := range prim[a] {
			for _, j := range prim[b] {
				if ix.precedes(i, j) {
					return true
				}
			}
		}
		return false
	}
	// Uniqueness: every pair must be ordered one way, not both.
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			ab, ba := before(ids[a], ids[b]), before(ids[b], ids[a])
			if ab == ba {
				out = append(out, Violation{
					Spec: "primary-unique",
					Msg: fmt.Sprintf("primary components %s and %s are not totally ordered (both=%v)",
						ids[a], ids[b], ab),
				})
			}
		}
	}
	// Continuity: sort by the order and require adjacent intersection.
	ordered := make([]model.ConfigID, len(ids))
	copy(ordered, ids)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if before(ordered[j], ordered[i]) {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for k := 0; k+1 < len(ordered); k++ {
		a, b := ordered[k], ordered[k+1]
		if !ix.members[a].Intersects(ix.members[b]) {
			out = append(out, Violation{
				Spec: "primary-continuity",
				Msg: fmt.Sprintf("consecutive primary components %s%s and %s%s share no member",
					a, ix.members[a], b, ix.members[b]),
			})
		}
	}
	return out
}

package spec

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// syntheticHistory builds a conforming single-configuration history with
// msgs messages delivered by procs processes.
func syntheticHistory(procs, msgs int) []model.Event {
	ids := make([]model.ProcessID, procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	members := model.NewProcessSet(ids...)
	cfg := model.RegularID(1, ids[0])
	var events []model.Event
	for _, id := range ids {
		events = append(events, model.Event{
			Type: model.EventDeliverConf, Proc: id, Config: cfg, Members: members,
		})
	}
	for m := 0; m < msgs; m++ {
		sender := ids[m%procs]
		msg := model.MessageID{Sender: sender, SenderSeq: uint64(m/procs + 1)}
		events = append(events, model.Event{
			Type: model.EventSend, Proc: sender, Config: cfg, Members: members,
			Msg: msg, Service: model.Safe,
		})
		for _, id := range ids {
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: id, Config: cfg, Members: members,
				Msg: msg, Service: model.Safe,
			})
		}
	}
	return events
}

// BenchmarkCheckAll measures full-model checking cost versus history size.
func BenchmarkCheckAll(b *testing.B) {
	for _, msgs := range []int{50, 200, 800} {
		msgs := msgs
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			events := syntheticHistory(4, msgs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := NewChecker(events, Options{Settled: true})
				if vs := c.CheckAll(); len(vs) != 0 {
					b.Fatalf("synthetic history flagged: %v", vs)
				}
			}
			b.ReportMetric(float64(len(events)), "events")
		})
	}
}

// BenchmarkBuildOrd isolates the condensation/topological-sort cost.
func BenchmarkBuildOrd(b *testing.B) {
	events := syntheticHistory(4, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker(events, Options{})
		if _, cyclic := c.BuildOrd(); cyclic {
			b.Fatal("unexpected cycle")
		}
	}
}

func TestSyntheticHistoryConforms(t *testing.T) {
	events := syntheticHistory(3, 30)
	if vs := NewChecker(events, Options{Settled: true}).CheckAll(); len(vs) != 0 {
		t.Fatalf("synthetic history flagged: %v", vs)
	}
}

package spec

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
)

// syntheticHistory builds a conforming single-configuration history with
// msgs messages delivered by procs processes.
func syntheticHistory(procs, msgs int) []model.Event {
	ids := make([]model.ProcessID, procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	members := model.NewProcessSet(ids...)
	cfg := model.RegularID(1, ids[0])
	var events []model.Event
	for _, id := range ids {
		events = append(events, model.Event{
			Type: model.EventDeliverConf, Proc: id, Config: cfg, Members: members,
		})
	}
	for m := 0; m < msgs; m++ {
		sender := ids[m%procs]
		msg := model.MessageID{Sender: sender, SenderSeq: uint64(m/procs + 1)}
		events = append(events, model.Event{
			Type: model.EventSend, Proc: sender, Config: cfg, Members: members,
			Msg: msg, Service: model.Safe,
		})
		for _, id := range ids {
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: id, Config: cfg, Members: members,
				Msg: msg, Service: model.Safe,
			})
		}
	}
	return events
}

// BenchmarkCheckAll measures full-model checking cost versus history size.
func BenchmarkCheckAll(b *testing.B) {
	for _, msgs := range []int{50, 200, 800} {
		msgs := msgs
		b.Run(fmt.Sprintf("msgs=%d", msgs), func(b *testing.B) {
			events := syntheticHistory(4, msgs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := NewChecker(events, Options{Settled: true})
				if vs := c.CheckAll(); len(vs) != 0 {
					b.Fatalf("synthetic history flagged: %v", vs)
				}
			}
			b.ReportMetric(float64(len(events)), "events")
		})
	}
}

// BenchmarkBuildOrd isolates the condensation/topological-sort cost.
func BenchmarkBuildOrd(b *testing.B) {
	events := syntheticHistory(4, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker(events, Options{})
		if _, cyclic := c.BuildOrd(); cyclic {
			b.Fatal("unexpected cycle")
		}
	}
}

// churnHistory builds a conforming history that marches every process
// through cfgs regular configurations, with msgsPerCfg messages fully
// delivered inside each — a membership-churn workload exercising the
// configuration-sequence, zone and atomicity paths at scale.
func churnHistory(procs, cfgs, msgsPerCfg int) []model.Event {
	ids := make([]model.ProcessID, procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	members := model.NewProcessSet(ids...)
	seqs := make(map[model.ProcessID]uint64)
	var events []model.Event
	for k := 0; k < cfgs; k++ {
		cfg := model.RegularID(uint64(k+1), ids[0])
		for _, id := range ids {
			events = append(events, model.Event{
				Type: model.EventDeliverConf, Proc: id, Config: cfg, Members: members,
			})
		}
		for m := 0; m < msgsPerCfg; m++ {
			sender := ids[m%procs]
			seqs[sender]++
			msg := model.MessageID{Sender: sender, SenderSeq: seqs[sender]}
			events = append(events, model.Event{
				Type: model.EventSend, Proc: sender, Config: cfg, Members: members,
				Msg: msg, Service: model.Agreed,
			})
			for _, id := range ids {
				events = append(events, model.Event{
					Type: model.EventDeliver, Proc: id, Config: cfg, Members: members,
					Msg: msg, Service: model.Agreed,
				})
			}
		}
	}
	return events
}

// benchScaling runs CheckAll over a prebuilt history, reporting ns/event
// and allocated bytes/event so the scaling trend (and the absence of an
// n² closure) is visible in the bench trajectory.
func benchScaling(b *testing.B, events []model.Event) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewChecker(events, Options{Settled: true})
		if vs := c.CheckAll(); len(vs) != 0 {
			b.Fatalf("synthetic history flagged: %v", vs)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(len(events))
	b.ReportMetric(n, "events")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*n), "ns/event")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/(float64(b.N)*n), "bytes/event")
}

// BenchmarkCheckerScaling is the headline scaling series: single
// configuration, history sizes up to >50k events.
func BenchmarkCheckerScaling(b *testing.B) {
	for _, msgs := range []int{200, 1000, 4000, 10000} {
		msgs := msgs
		b.Run(fmt.Sprintf("procs=4/msgs=%d", msgs), func(b *testing.B) {
			benchScaling(b, syntheticHistory(4, msgs))
		})
	}
}

// BenchmarkCheckerScalingChurn measures the same metrics on a
// configuration-churn workload (many small configurations instead of one
// big one).
func BenchmarkCheckerScalingChurn(b *testing.B) {
	for _, cfgs := range []int{10, 100} {
		cfgs := cfgs
		b.Run(fmt.Sprintf("procs=5/cfgs=%d/msgs=100", cfgs), func(b *testing.B) {
			benchScaling(b, churnHistory(5, cfgs, 100))
		})
	}
}

func TestChurnHistoryConforms(t *testing.T) {
	events := churnHistory(3, 4, 10)
	if vs := NewChecker(events, Options{Settled: true}).CheckAll(); len(vs) != 0 {
		t.Fatalf("churn history flagged: %v", vs)
	}
}

func TestSyntheticHistoryConforms(t *testing.T) {
	events := syntheticHistory(3, 30)
	if vs := NewChecker(events, Options{Settled: true}).CheckAll(); len(vs) != 0 {
		t.Fatalf("synthetic history flagged: %v", vs)
	}
}

// Streaming certification of Specifications 1-7.
//
// The batch Checker is post-hoc: it indexes a complete history, so the
// length of a chaos soak is capped by the memory needed to retain every
// event until the run ends. Stream removes that cap. Events are ingested
// as the harness emits them; every CheckEvery events the retained window
// is certified by running the full seven-check suite over it, and state
// belonging to provably closed prefixes is then pruned, keeping the
// window (and therefore checker memory) bounded on conforming runs no
// matter how long the execution grows.
//
// # Certified prefix and the prune rule
//
// After a certification the entire retained window has been checked, so
// the certified prefix is simply "everything ingested so far". Pruning
// then removes events that can no longer participate in a *new*
// violation, under an explicit safe bound argued per specification:
//
//   - A message m sent in regular configuration c is closed once every
//     member of c has either delivered m somewhere in c's configuration
//     family (c or a transitional successor) or departed — installed a
//     strictly later regular configuration. Failure is NOT discharge
//     evidence: a failed member may recover and deliver m arbitrarily
//     late (recovery Step 6.b), so only departure proves it is done.
//     Closure of m drops its send event and every deliver event of it,
//     but only when those account for every retained event of m (a
//     cross-family stray delivery keeps the message open), so no check
//     ever sees a delivery without its send.
//   - A configuration family is closed once every member has departed
//     it. Closure drops the family's remaining send,
//     deliver, deliver_conf and fail events — except each process's
//     latest deliver_conf, which is always retained so the process
//     keeps its current-configuration context (Specification 2.2 and
//     final-agreement checks read it), and fail events of processes
//     with no later deliver_conf, so a process that died and never
//     recovered is still seen as dead by the settled checks.
//
// Pruning is sound for new violations on conforming suffixes: every
// check's verdict over the retained window is unchanged by removing a
// closed message from all processes at once (delivered sets and
// per-configuration delivery sequences lose the same elements
// everywhere, so prefix and atomicity comparisons are preserved).
// Violations that were visible before the prune are recorded by the
// certification that precedes it. The one approximation: a violation
// *re-detected* after its supporting events were pruned may surface
// under a different clause (for example a late delivery of a pruned
// message reports as "never sent" rather than out-of-order). The
// windowed oracle shares the same window, so the differential
// comparison is exact.
//
// # Windowed differential oracle
//
// Every OracleEvery-th certification (and at Finish) the Oracle hook
// receives a copy of the retained window together with the fast
// checker's window-local violations; the caller runs the seed refcheck
// bitset oracle over the same window and compares. Stream cannot import
// refcheck (refcheck imports spec), hence the callback.
package spec

import (
	"unsafe"

	"repro/internal/model"
)

// StreamOptions configure a Stream.
type StreamOptions struct {
	// CheckEvery is the number of ingested events between incremental
	// certifications (default 4096). Smaller windows certify — and
	// prune — more eagerly at higher amortized cost.
	CheckEvery int
	// OracleEvery runs the differential Oracle on every OracleEvery-th
	// certification; zero disables sampling (Finish still invokes the
	// Oracle once when set, so a stream with an Oracle is always
	// cross-checked at least once).
	OracleEvery int
	// Oracle receives a copy of the retained window, the options the
	// certification ran with, and the fast checker's window-local
	// violations. The callback owns both slices.
	Oracle func(window []model.Event, opts Options, fast []Violation)
}

// StreamStats expose the memory-boundedness evidence of a stream: a
// soak asserts that PeakRetained stays ~flat while Ingested grows.
type StreamStats struct {
	// Ingested is the total number of events added.
	Ingested uint64
	// Certified is the number of events covered by the last
	// certification (the certified prefix length).
	Certified uint64
	// Retained is the current window length; PeakRetained its maximum
	// over the run and PeakBytes the corresponding event storage.
	Retained     int
	PeakRetained int
	PeakBytes    uint64
	// Pruned counts events dropped from the window.
	Pruned uint64
	// Certifications counts incremental check passes, OracleWindows
	// the differential samples taken.
	Certifications uint64
	OracleWindows  uint64
}

// famMsg tracks one message within its sending configuration family.
type famMsg struct {
	sent bool
	// refs counts retained send+deliver events of the message that
	// belong to this family; the message is only prunable when they
	// account for every retained event of the message globally.
	refs      int
	delivered map[model.ProcessID]bool
}

// family tracks one regular configuration family for the prune rule.
type family struct {
	// members is zero until a deliver_conf for the regular
	// configuration itself is seen; a family with unknown membership
	// is never considered closed.
	members model.ProcessSet
	msgs    map[model.MessageID]*famMsg
}

// Stream is the incremental checker. The zero value is not usable; use
// NewStream.
type Stream struct {
	opts StreamOptions

	events []model.Event
	gidx   []int // global history index per retained event

	total     uint64
	certified uint64

	seen       map[string]bool
	violations []Violation

	families map[model.ConfigID]*family
	procCur  map[model.ProcessID]model.ConfigID
	lastConf map[model.ProcessID]int // global index of latest deliver_conf
	msgRefs  map[model.MessageID]int // retained send+deliver events per message

	peakRetained  int
	pruned        uint64
	certs         uint64
	oracleWindows uint64
}

// NewStream returns a stream ready to ingest events.
func NewStream(opts StreamOptions) *Stream {
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 4096
	}
	return &Stream{
		opts:     opts,
		seen:     make(map[string]bool),
		families: make(map[model.ConfigID]*family),
		procCur:  make(map[model.ProcessID]model.ConfigID),
		lastConf: make(map[model.ProcessID]int),
		msgRefs:  make(map[model.MessageID]int),
	}
}

// fam returns (creating on demand) the family record of regular
// configuration c.
func (s *Stream) fam(c model.ConfigID) *family {
	f := s.families[c]
	if f == nil {
		f = &family{msgs: make(map[model.MessageID]*famMsg)}
		s.families[c] = f
	}
	return f
}

func (f *family) msg(m model.MessageID) *famMsg {
	fm := f.msgs[m]
	if fm == nil {
		fm = &famMsg{delivered: make(map[model.ProcessID]bool)}
		f.msgs[m] = fm
	}
	return fm
}

// Add ingests one event; every CheckEvery events it certifies the
// retained window and prunes closed state.
func (s *Stream) Add(e model.Event) {
	g := int(s.total)
	s.total++
	s.events = append(s.events, e)
	s.gidx = append(s.gidx, g)

	switch e.Type {
	case model.EventSend:
		fm := s.fam(e.Config.Prev()).msg(e.Msg)
		fm.sent = true
		fm.refs++
		s.msgRefs[e.Msg]++
	case model.EventDeliver:
		fm := s.fam(e.Config.Prev()).msg(e.Msg)
		fm.refs++
		fm.delivered[e.Proc] = true
		s.msgRefs[e.Msg]++
	case model.EventDeliverConf:
		s.procCur[e.Proc] = e.Config
		s.lastConf[e.Proc] = g
		f := s.fam(e.Config.Prev())
		if e.Config.IsRegular() && f.members.Size() == 0 {
			f.members = e.Members
		}
	}

	if len(s.events) > s.peakRetained {
		s.peakRetained = len(s.events)
	}
	if s.total%uint64(s.opts.CheckEvery) == 0 {
		s.certify(Options{}, false)
	}
}

// departed reports whether p's current configuration is regular-family
// evidence that p moved strictly past family c: p installed a regular
// configuration with a higher sequence number. A process that is merely
// behind (still recovering toward c, or down) keeps the family open.
func (s *Stream) departed(p model.ProcessID, c model.ConfigID) bool {
	cur, ok := s.procCur[p]
	if !ok {
		return false
	}
	reg := cur.Prev()
	return reg != c && reg.Seq > c.Seq
}

// closed reports whether family c can accept no further legal events:
// every member departed past it. Failure is deliberately NOT discharge
// evidence — a failed process may recover and, per the recovery
// algorithm's Step 6.b, still deliver this family's messages long after
// everyone else moved on; only installing a later regular configuration
// proves a process is done with the family.
func (s *Stream) closed(c model.ConfigID, f *family) bool {
	if f.members.Size() == 0 {
		return false
	}
	for _, q := range f.members.Members() {
		if !s.departed(q, c) {
			return false
		}
	}
	return true
}

// msgPrunable reports whether message m of family c is closed: it was
// sent, every family member is discharged for it, and this family
// accounts for every retained event of the message.
func (s *Stream) msgPrunable(c model.ConfigID, f *family, m model.MessageID) bool {
	fm := f.msgs[m]
	if fm == nil || !fm.sent || f.members.Size() == 0 {
		return false
	}
	if fm.refs != s.msgRefs[m] {
		return false
	}
	for _, q := range f.members.Members() {
		if !fm.delivered[q] && !s.departed(q, c) {
			return false
		}
	}
	return true
}

// certify runs the batch checker over the retained window, records
// violations not seen before (deduplicated by their rendering with
// globalized event indices), samples the differential oracle, and —
// except on the final pass — prunes closed state.
func (s *Stream) certify(opts Options, final bool) {
	s.certs++
	fast := NewChecker(s.events, opts).CheckAll()
	for _, v := range fast {
		gv := v
		if len(v.Events) > 0 {
			gv.Events = make([]int, len(v.Events))
			for i, li := range v.Events {
				gv.Events[i] = s.gidx[li]
			}
		}
		key := gv.String()
		if !s.seen[key] {
			s.seen[key] = true
			s.violations = append(s.violations, gv)
		}
	}
	s.certified = s.total

	if s.opts.Oracle != nil && (final || (s.opts.OracleEvery > 0 && s.certs%uint64(s.opts.OracleEvery) == 0)) {
		s.oracleWindows++
		win := append([]model.Event(nil), s.events...)
		fv := append([]Violation(nil), fast...)
		s.opts.Oracle(win, opts, fv)
	}

	if !final {
		s.prune()
	}
}

// prune drops closed events from the window. It runs only immediately
// after a certification, so everything it removes has been checked.
func (s *Stream) prune() {
	closed := make(map[model.ConfigID]bool)
	for c, f := range s.families {
		if s.closed(c, f) {
			closed[c] = true
		}
	}

	kept := s.events[:0]
	kgidx := s.gidx[:0]
	for i, e := range s.events {
		g := s.gidx[i]
		if s.keep(e, g, closed) {
			kept = append(kept, e)
			kgidx = append(kgidx, g)
			continue
		}
		s.pruned++
		if e.Type == model.EventSend || e.Type == model.EventDeliver {
			s.dropMsgRef(e.Config.Prev(), e.Msg, closed)
		}
	}
	// Zero the tail so pruned events do not pin payload memory.
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = model.Event{}
	}
	s.events = kept
	s.gidx = kgidx

	for c := range closed {
		f := s.families[c]
		if f != nil {
			for m := range f.msgs {
				delete(s.msgRefs, m)
			}
		}
		delete(s.families, c)
	}
}

// dropMsgRef unaccounts one pruned send/deliver event of m in family c.
// Families being deleted wholesale settle their refs in prune.
func (s *Stream) dropMsgRef(c model.ConfigID, m model.MessageID, closedFams map[model.ConfigID]bool) {
	if closedFams[c] {
		return
	}
	f := s.families[c]
	if f == nil {
		return
	}
	fm := f.msgs[m]
	if fm == nil {
		return
	}
	fm.refs--
	if n := s.msgRefs[m] - 1; n > 0 {
		s.msgRefs[m] = n
	} else {
		delete(s.msgRefs, m)
	}
	if fm.refs <= 0 {
		delete(f.msgs, m)
	}
}

// keep decides whether one certified event must stay in the window.
func (s *Stream) keep(e model.Event, g int, closedFams map[model.ConfigID]bool) bool {
	switch e.Type {
	case model.EventSend, model.EventDeliver:
		c := e.Config.Prev()
		f := s.families[c]
		if f == nil {
			return true
		}
		return !closedFams[c] && !s.msgPrunable(c, f, e.Msg)
	case model.EventDeliverConf:
		if !closedFams[e.Config.Prev()] {
			return true
		}
		// Always carry each process's latest configuration change: it
		// is the process's current-configuration context.
		return s.lastConf[e.Proc] == g
	case model.EventFail:
		if !e.Config.IsZero() && !closedFams[e.Config.Prev()] {
			return true
		}
		// A fail is obsolete only once the process demonstrably came
		// back: it has a later configuration change. Otherwise the
		// settled checks still need to see the process as dead.
		lc, ok := s.lastConf[e.Proc]
		return !ok || lc < g
	}
	return true
}

// Finish runs a final certification over the retained window with the
// caller's options (typically Settled) and returns all violations
// recorded over the life of the stream, sorted deterministically.
func (s *Stream) Finish(opts Options) []Violation {
	s.certify(opts, true)
	return s.Violations()
}

// Violations returns a sorted copy of every violation recorded so far.
// Event indices are global history positions, not window positions.
func (s *Stream) Violations() []Violation {
	out := append([]Violation(nil), s.violations...)
	sortViolations(out)
	return out
}

// Stats returns a snapshot of the stream's progress and memory metrics.
func (s *Stream) Stats() StreamStats {
	return StreamStats{
		Ingested:       s.total,
		Certified:      s.certified,
		Retained:       len(s.events),
		PeakRetained:   s.peakRetained,
		PeakBytes:      uint64(s.peakRetained) * uint64(unsafe.Sizeof(model.Event{})),
		Pruned:         s.pruned,
		Certifications: s.certs,
		OracleWindows:  s.oracleWindows,
	}
}

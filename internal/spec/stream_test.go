package spec_test

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/spec/refcheck"
)

// feed pushes a history through a fresh stream and returns it.
func feed(events []model.Event, opts spec.StreamOptions) *spec.Stream {
	s := spec.NewStream(opts)
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// TestStreamConformingBounded: on a conforming history the stream
// certifies everything violation-free while pruning keeps the retained
// window far below the ingested total — the memory-boundedness claim the
// soak rests on.
func TestStreamConformingBounded(t *testing.T) {
	events := fullDeliveryHistory(4, 5000) // ~25k events, one configuration
	s := feed(events, spec.StreamOptions{CheckEvery: 512})
	if vs := s.Finish(spec.Options{Settled: true}); len(vs) != 0 {
		t.Fatalf("conforming history flagged: %v", vs)
	}
	st := s.Stats()
	if st.Ingested != uint64(len(events)) {
		t.Fatalf("ingested %d, want %d", st.Ingested, len(events))
	}
	if st.Certified != st.Ingested {
		t.Fatalf("certified prefix %d does not cover the %d ingested events", st.Certified, st.Ingested)
	}
	if st.Pruned == 0 {
		t.Fatal("nothing was pruned on a 25k-event conforming run")
	}
	// The window must stay bounded by protocol concurrency (messages in
	// flight within a certification interval), not by run length.
	if st.PeakRetained > 4*512 {
		t.Fatalf("peak retained window %d events; pruning is not bounding memory (ingested %d)",
			st.PeakRetained, st.Ingested)
	}
	if st.PeakBytes == 0 || st.PeakBytes < uint64(st.PeakRetained) {
		t.Fatalf("implausible PeakBytes %d for PeakRetained %d", st.PeakBytes, st.PeakRetained)
	}
}

// TestStreamSingleCertificationMatchesBatch: with CheckEvery larger than
// the history, Finish is one batch certification — the stream must agree
// with the batch checker violation-for-violation on arbitrary histories,
// settled and unsettled. The comparison is as sets of rendered
// violations: the stream deduplicates by rendering, and the batch
// checker can legitimately emit two identical violations (duplicate
// sends produce duplicate causal edges).
func TestStreamSingleCertificationMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		events := randomHistory(rng)
		for _, settled := range []bool{false, true} {
			opts := spec.Options{Settled: settled}
			want := spec.NewChecker(events, opts).CheckAll()
			s := feed(events, spec.StreamOptions{CheckEvery: len(events) + 1})
			got := s.Finish(opts)
			diffViolationSets(t, "stream single-window", got, want)
			if t.Failed() {
				t.Logf("trial %d settled=%v events: %+v", trial, settled, events)
				return
			}
		}
	}
}

// diffViolationSets compares violations as sets of rendered strings.
func diffViolationSets(t *testing.T, label string, got, want []spec.Violation) {
	t.Helper()
	gs, ws := make(map[string]bool), make(map[string]bool)
	for _, v := range got {
		gs[v.String()] = true
	}
	for _, v := range want {
		ws[v.String()] = true
	}
	for k := range gs {
		if !ws[k] {
			t.Errorf("%s: stream-only violation: %s", label, k)
		}
	}
	for k := range ws {
		if !gs[k] {
			t.Errorf("%s: batch-only violation: %s", label, k)
		}
	}
}

// TestStreamWindowedOracleAgrees: on aggressively pruned random
// histories, every sampled certification window must produce identical
// verdicts from the fast checker and the reference bitset checker — the
// inline differential oracle the soak runs.
func TestStreamWindowedOracleAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		windows := 0
		oracle := func(window []model.Event, opts spec.Options, fast []spec.Violation) {
			windows++
			ref := refcheck.CheckAll(window, opts)
			diffViolations(t, "oracle window", fast, ref)
		}
		events := randomHistory(rng)
		s := feed(events, spec.StreamOptions{CheckEvery: 8, OracleEvery: 1, Oracle: oracle})
		s.Finish(spec.Options{Settled: true})
		if t.Failed() {
			t.Logf("trial %d events: %+v", trial, events)
			return
		}
		if windows == 0 {
			t.Fatal("oracle never sampled a window")
		}
		if got := s.Stats().OracleWindows; got != uint64(windows) {
			t.Fatalf("stats report %d oracle windows, callback saw %d", got, windows)
		}
	}
}

// TestStreamAnchorsAreGlobal: a violation detected after earlier events
// were pruned must anchor to global history indices, not window-local
// ones. A duplicate delivery appended after a long pruned run reports
// (under the documented class conversion) as a delivery without a send,
// anchored exactly at its global position.
func TestStreamAnchorsAreGlobal(t *testing.T) {
	events := fullDeliveryHistory(4, 2000)
	dup := events[5] // the first message's first delivery
	if dup.Type != model.EventDeliver {
		t.Fatalf("test setup: event 5 is %v, want a delivery", dup.Type)
	}
	events = append(events, dup)
	s := feed(events, spec.StreamOptions{CheckEvery: 256})
	vs := s.Finish(spec.Options{Settled: true})
	if len(vs) == 0 {
		t.Fatal("duplicate delivery of a pruned message went undetected")
	}
	want := len(events) - 1
	found := false
	for _, v := range vs {
		for _, g := range v.Events {
			if g == want {
				found = true
			}
			if g < 0 || g >= len(events) {
				t.Fatalf("violation anchored outside the history: %v (len %d)", v, len(events))
			}
		}
	}
	if !found {
		t.Fatalf("no violation anchored at the duplicate's global index %d: %v", want, vs)
	}
}

// TestStreamDedupAcrossWindows: a violation visible in several
// certification windows is reported once.
func TestStreamDedupAcrossWindows(t *testing.T) {
	events := fullDeliveryHistory(3, 40)
	dup := events[4]
	if dup.Type != model.EventDeliver {
		t.Fatalf("test setup: event 4 is %v, want a delivery", dup.Type)
	}
	events = append(events, dup)
	// Tiny windows: the duplicate is re-detected by every subsequent
	// certification until its supporting events age out.
	s := feed(events, spec.StreamOptions{CheckEvery: 16})
	vs := s.Finish(spec.Options{Settled: true})
	seen := make(map[string]int)
	for _, v := range vs {
		seen[v.String()]++
		if seen[v.String()] > 1 {
			t.Fatalf("violation reported twice: %s", v)
		}
	}
	if len(vs) == 0 {
		t.Fatal("duplicate delivery went undetected")
	}
}

package spec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/spec/refcheck"
)

// randomHistory generates a small history with deliberately mixed quality:
// mostly well-formed traffic, plus (depending on the rng) duplicate sends,
// missing sends, deliveries in the wrong configuration, wrong membership,
// failures, and safe-service messages — enough variety to drive every
// check down both its conforming and its violating paths.
func randomHistory(rng *rand.Rand) []model.Event {
	nProcs := 3 + rng.Intn(3)
	procs := make([]model.ProcessID, nProcs)
	for i := range procs {
		procs[i] = model.ProcessID('a' + rune(i))
	}
	all := model.NewProcessSet(procs...)

	reg1 := model.RegularID(1, procs[0])
	reg2 := model.RegularID(2, procs[0])
	tr12 := model.TransitionalID(reg2, reg1)
	configs := []model.ConfigID{reg1, reg2, tr12}
	memberOf := func(cfg model.ConfigID) model.ProcessSet {
		// Occasionally record inconsistent membership.
		if rng.Intn(12) == 0 {
			return model.NewProcessSet(procs[:1+rng.Intn(nProcs)]...)
		}
		return all
	}

	var events []model.Event
	seqs := make(map[model.ProcessID]uint64)

	// Most processes install reg1 up front; some histories leave a
	// process uninstalled to probe the empty-confSeq paths.
	for _, p := range procs {
		if rng.Intn(10) == 0 {
			continue
		}
		events = append(events, model.Event{
			Type: model.EventDeliverConf, Proc: p, Config: reg1, Members: memberOf(reg1),
		})
	}

	n := 10 + rng.Intn(50)
	var sent []model.Event // send events, for generating deliveries
	for len(events) < n {
		p := procs[rng.Intn(nProcs)]
		switch k := rng.Intn(10); {
		case k < 4: // send
			seqs[p]++
			m := model.MessageID{Sender: p, SenderSeq: seqs[p]}
			svc := model.Agreed
			if rng.Intn(4) == 0 {
				svc = model.Safe
			}
			cfg := reg1
			if rng.Intn(8) == 0 {
				cfg = configs[rng.Intn(len(configs))] // maybe non-regular
			}
			e := model.Event{
				Type: model.EventSend, Proc: p, Config: cfg,
				Members: memberOf(cfg), Msg: m, Service: svc,
			}
			events = append(events, e)
			sent = append(sent, e)
			if rng.Intn(15) == 0 { // duplicate send
				events = append(events, e)
			}
		case k < 8 && len(sent) > 0: // deliver a sent message
			s := sent[rng.Intn(len(sent))]
			cfg := s.Config
			if rng.Intn(6) == 0 {
				cfg = configs[rng.Intn(len(configs))] // wrong family
			} else if rng.Intn(3) == 0 {
				cfg = model.TransitionalID(reg2, s.Config) // transitional of the family
			}
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: p, Config: cfg,
				Members: memberOf(cfg), Msg: s.Msg, Service: s.Service,
			})
		case k == 8: // deliver a never-sent message
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: p, Config: reg1,
				Members: all, Msg: model.MessageID{Sender: p, SenderSeq: 900 + uint64(rng.Intn(9))},
				Service: model.Agreed,
			})
		default: // configuration change or failure
			cfg := configs[rng.Intn(len(configs))]
			typ := model.EventDeliverConf
			if rng.Intn(4) == 0 {
				typ = model.EventFail
			}
			events = append(events, model.Event{
				Type: typ, Proc: p, Config: cfg, Members: memberOf(cfg),
			})
		}
	}
	return events
}

// TestPrecedesMatchesClosure: the vector-timestamp precedes relation is
// identical to the reference bitset transitive closure on random
// histories, over the full i×j matrix.
func TestPrecedesMatchesClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 250; trial++ {
		events := randomHistory(rng)
		ck := spec.NewChecker(events, spec.Options{})
		ref := refcheck.Closure(events)
		for i := range events {
			for j := range events {
				if got, want := ck.Precedes(i, j), ref(i, j); got != want {
					t.Fatalf("trial %d: precedes(%d,%d)=%v, reference closure says %v\nevents: %+v",
						trial, i, j, got, want, events)
				}
			}
		}
	}
}

// renderSorted renders violations as sorted strings for order-insensitive
// comparison (the reference checker's output order follows map iteration).
func renderSorted(vs []spec.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

func diffViolations(t *testing.T, label string, got, want []spec.Violation) {
	t.Helper()
	g, w := renderSorted(got), renderSorted(want)
	if len(g) != len(w) {
		t.Errorf("%s: %d violations, reference found %d\n got: %v\nwant: %v",
			label, len(g), len(w), g, w)
		return
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: violation %d differs\n got: %s\nwant: %s", label, i, g[i], w[i])
		}
	}
}

// TestCheckAllMatchesReference: the rewritten checks report exactly the
// violations of the reference implementation — as multisets — on random
// histories, settled and unsettled.
func TestCheckAllMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 250; trial++ {
		events := randomHistory(rng)
		for _, settled := range []bool{false, true} {
			opts := spec.Options{Settled: settled}
			got := spec.NewChecker(events, opts).CheckAll()
			want := refcheck.CheckAll(events, opts)
			if t.Failed() {
				return
			}
			diffViolations(t, "random history", got, want)
			if t.Failed() {
				t.Logf("trial %d settled=%v events: %+v", trial, settled, events)
				return
			}
		}
	}
}

// fullDeliveryHistory mirrors syntheticHistory in bench_test.go (that
// builder lives in package spec and is not importable from this external
// test package): a conforming single-configuration history with msgs
// messages delivered by procs processes.
func fullDeliveryHistory(procs, msgs int) []model.Event {
	ids := make([]model.ProcessID, procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	members := model.NewProcessSet(ids...)
	cfg := model.RegularID(1, ids[0])
	var events []model.Event
	for _, id := range ids {
		events = append(events, model.Event{
			Type: model.EventDeliverConf, Proc: id, Config: cfg, Members: members,
		})
	}
	for m := 0; m < msgs; m++ {
		sender := ids[m%procs]
		msg := model.MessageID{Sender: sender, SenderSeq: uint64(m/procs + 1)}
		events = append(events, model.Event{
			Type: model.EventSend, Proc: sender, Config: cfg, Members: members,
			Msg: msg, Service: model.Safe,
		})
		for _, id := range ids {
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: id, Config: cfg, Members: members,
				Msg: msg, Service: model.Safe,
			})
		}
	}
	return events
}

// BenchmarkCheckerScalingRef runs the seed (bitset-closure) checker on the
// small end of the scaling series, so the speedup of the vector-timestamp
// checker is visible by comparing against BenchmarkCheckerScaling at the
// same sizes. The reference is quadratic-and-worse; larger sizes are
// deliberately absent.
func BenchmarkCheckerScalingRef(b *testing.B) {
	for _, msgs := range []int{200, 1000} {
		msgs := msgs
		b.Run(fmt.Sprintf("procs=4/msgs=%d", msgs), func(b *testing.B) {
			events := fullDeliveryHistory(4, msgs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if vs := refcheck.CheckAll(events, spec.Options{Settled: true}); len(vs) != 0 {
					b.Fatalf("synthetic history flagged: %v", vs)
				}
			}
			n := float64(len(events))
			b.ReportMetric(n, "events")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*n), "ns/event")
		})
	}
}

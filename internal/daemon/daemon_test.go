package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/node"
)

// testNetConfig is the deployment timing profile scaled down for tests:
// real sockets on loopback are fast, and CI shouldn't wait 400ms to
// detect a kill — but the margins stay wide enough that scheduler
// hiccups under -race don't read as token loss.
func testNetConfig() *node.Config {
	cfg := DefaultNetConfig()
	cfg.TokenLoss = 150 * time.Millisecond
	cfg.TokenRetrans = 25 * time.Millisecond
	cfg.JoinRetry = 40 * time.Millisecond
	cfg.CommitTimeout = 100 * time.Millisecond
	cfg.RecoveryRetry = 30 * time.Millisecond
	cfg.RecoveryTimeout = 500 * time.Millisecond
	return &cfg
}

// reserveAddrs picks free loopback ports for each process.
func reserveAddrs(t *testing.T, ids []model.ProcessID, network string) map[model.ProcessID]string {
	t.Helper()
	addrs := make(map[model.ProcessID]string, len(ids))
	for _, id := range ids {
		switch network {
		case "udp":
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatalf("reserve udp addr: %v", err)
			}
			addrs[id] = conn.LocalAddr().String()
			conn.Close()
		case "tcp":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("reserve tcp addr: %v", err)
			}
			addrs[id] = ln.Addr().String()
			ln.Close()
		}
	}
	return addrs
}

func startCluster(t *testing.T, network string, n int, traceDir string) ([]model.ProcessID, map[model.ProcessID]*Daemon, []string) {
	t.Helper()
	var ids []model.ProcessID
	for i := 0; i < n; i++ {
		ids = append(ids, model.ProcessID(fmt.Sprintf("p%02d", i+1)))
	}
	addrs := reserveAddrs(t, ids, network)
	daemons := make(map[model.ProcessID]*Daemon, n)
	var traces []string
	for _, id := range ids {
		trace := ""
		if traceDir != "" {
			trace = filepath.Join(traceDir, string(id)+".jsonl")
			traces = append(traces, trace)
		}
		d, err := New(Config{
			Self: id, Peers: addrs, Network: network,
			Node: testNetConfig(), TracePath: trace,
		})
		if err != nil {
			t.Fatalf("start %s: %v", id, err)
		}
		daemons[id] = d
	}
	return ids, daemons, traces
}

func waitAllOperational(t *testing.T, daemons map[model.ProcessID]*Daemon, want []model.ProcessID, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for id, d := range daemons {
		left := time.Until(deadline)
		if left <= 0 || !d.WaitOperational(want, left) {
			t.Fatalf("%s never became operational with members %v; status %+v",
				id, want, d.Status())
		}
	}
}

func waitDeliveries(t *testing.T, daemons map[model.ProcessID]*Daemon, min uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, d := range daemons {
			if d.Deliveries() < min {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for id, d := range daemons {
				t.Logf("%s: %d deliveries, status %+v", id, d.Deliveries(), d.Status())
			}
			t.Fatalf("timed out waiting for %d deliveries everywhere", min)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFourDaemonKillCertified is the deployment scenario from the issue:
// a 4-daemon ring over loopback UDP carries agreed and safe traffic, one
// process is killed (transport torn down, no Fail event — as SIGKILL
// would leave it), the survivors deliver a configuration change and keep
// delivering traffic, and the merged per-process traces certify against
// the EVS specifications.
func TestFourDaemonKillCertified(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ring timing test")
	}
	dir := t.TempDir()
	ids, daemons, traces := startCluster(t, "udp", 4, dir)
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()

	waitAllOperational(t, daemons, ids, 20*time.Second)

	// Traffic in the full ring: one agreed and one safe message per
	// process; every process delivers all eight.
	for i, id := range ids {
		if err := daemons[id].Submit([]byte(fmt.Sprintf("agreed-%d", i)), model.Agreed); err != nil {
			t.Fatalf("%s submit agreed: %v", id, err)
		}
		if err := daemons[id].Submit([]byte(fmt.Sprintf("safe-%d", i)), model.Safe); err != nil {
			t.Fatalf("%s submit safe: %v", id, err)
		}
	}
	waitDeliveries(t, daemons, 8, 20*time.Second)

	// Kill p04: transport down, no protocol goodbye, no Fail event.
	victim := ids[3]
	daemons[victim].Close()
	survivors := make(map[model.ProcessID]*Daemon)
	for _, id := range ids[:3] {
		survivors[id] = daemons[id]
	}
	waitAllOperational(t, survivors, ids[:3], 30*time.Second)

	// Every survivor saw a configuration change to the 3-member ring.
	want := model.NewProcessSet(ids[:3]...)
	for id, d := range survivors {
		confs := d.Configs()
		found := false
		for _, c := range confs {
			if c.ID.IsRegular() && c.Members.Equal(want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s never delivered the 3-member regular configuration; saw %v", id, confs)
		}
	}

	// Traffic still flows in the shrunken ring.
	before := map[model.ProcessID]uint64{}
	for id, d := range survivors {
		before[id] = d.Deliveries()
	}
	for _, id := range ids[:3] {
		if err := daemons[id].Submit([]byte("after-kill-"+string(id)), model.Agreed); err != nil {
			t.Fatalf("%s submit after kill: %v", id, err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for id, d := range survivors {
			if d.Deliveries() < before[id]+3 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never delivered post-kill traffic")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stop everything, merge the traces, certify.
	for _, d := range daemons {
		d.Close()
	}
	events, err := MergeTraces(traces...)
	if err != nil {
		t.Fatalf("merge traces: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("merged trace is empty")
	}
	if vs := Certify(events); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("spec violation %s: %s", v.Spec, v.Msg)
		}
	}
}

// TestTCPRingFormsAndDelivers runs the same stack over the TCP mesh:
// ring forms, traffic delivers, trace certifies.
func TestTCPRingFormsAndDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ring timing test")
	}
	dir := t.TempDir()
	ids, daemons, traces := startCluster(t, "tcp", 3, dir)
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()
	waitAllOperational(t, daemons, ids, 20*time.Second)
	for i, id := range ids {
		if err := daemons[id].Submit([]byte(fmt.Sprintf("m-%d", i)), model.Agreed); err != nil {
			t.Fatalf("%s submit: %v", id, err)
		}
	}
	waitDeliveries(t, daemons, 3, 20*time.Second)
	for _, d := range daemons {
		d.Close()
	}
	events, err := MergeTraces(traces...)
	if err != nil {
		t.Fatalf("merge traces: %v", err)
	}
	if vs := Certify(events); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("spec violation %s: %s", v.Spec, v.Msg)
		}
	}
}

// TestStatusEndpoint checks the HTTP surface: /status and /metrics both
// answer while the daemon runs.
func TestStatusEndpoint(t *testing.T) {
	ids, daemons, _ := startCluster(t, "udp", 1, "")
	defer daemons[ids[0]].Close()
	addr, err := daemons[ids[0]].Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != string(ids[0]) {
		t.Fatalf("status ID = %q, want %q", st.ID, ids[0])
	}
	resp2, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp2.StatusCode)
	}
}

// TestTraceRoundTrip checks the JSONL codec for every event shape.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	w, err := NewTraceWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	members := model.NewProcessSet("p01", "p02")
	events := []model.Event{
		{Type: model.EventSend, Proc: "p01",
			Config:  model.ConfigID{Kind: model.Regular, Seq: 4, Rep: "p01"},
			Members: members,
			Msg:     model.MessageID{Sender: "p01", SenderSeq: 9},
			Service: model.Agreed},
		{Type: model.EventDeliver, Proc: "p02",
			Config:  model.ConfigID{Kind: model.Transitional, Seq: 5, Rep: "p01", PrevSeq: 4, PrevRep: "p01"},
			Members: members,
			Msg:     model.MessageID{Sender: "p01", SenderSeq: 9},
			Service: model.Safe},
		{Type: model.EventDeliverConf, Proc: "p01",
			Config:  model.ConfigID{Kind: model.Regular, Seq: 6, Rep: "p01"},
			Members: members, Primary: true},
		{Type: model.EventFail, Proc: "p02",
			Config: model.ConfigID{Kind: model.Regular, Seq: 6, Rep: "p01"}},
	}
	for i, e := range events {
		if err := w.Append(int64(i+1), e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeTraces(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		e, g := events[i], got[i]
		if e.Type != g.Type || e.Proc != g.Proc || e.Config != g.Config ||
			!e.Members.Equal(g.Members) || e.Msg != g.Msg ||
			e.Service != g.Service || e.Primary != g.Primary {
			t.Errorf("event %d: got %+v, want %+v", i, g, e)
		}
	}
}

// TestMergeOrdersByTimestamp interleaves two files.
func TestMergeOrdersByTimestamp(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	wa, err := NewTraceWriter(a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewTraceWriter(b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := model.ConfigID{Kind: model.Regular, Seq: 1, Rep: "pa"}
	mk := func(p model.ProcessID, seq uint64) model.Event {
		return model.Event{Type: model.EventSend, Proc: p, Config: cfg,
			Members: model.NewProcessSet("pa", "pb"),
			Msg:     model.MessageID{Sender: p, SenderSeq: seq}, Service: model.Agreed}
	}
	wa.Append(10, mk("pa", 1))
	wa.Append(30, mk("pa", 2))
	wb.Append(20, mk("pb", 1))
	wb.Append(40, mk("pb", 2))
	wa.Close()
	wb.Close()
	got, err := MergeTraces(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []string
	for _, e := range got {
		seqs = append(seqs, e.Msg.String())
	}
	want := []string{"pa:1", "pb:1", "pa:2", "pb:2"}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("merged order %v, want %v", seqs, want)
		}
	}
}

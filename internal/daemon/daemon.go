// Package daemon runs one EVS ring process over a real network
// transport: the deployable unit behind cmd/evsd. A Daemon wires the
// protocol state machine (internal/node) to a UDP or TCP transport
// (internal/transport), drives its timers from the wall clock, exposes
// the process's metrics over HTTP, and persists the formal-model event
// trace to disk as JSONL — so a multi-process run can be certified
// post-hoc by merging every process's trace and running the
// specification checker over the interleaving (Certify).
//
// The package is importable so deployments can be assembled in-process
// for tests (a 4-daemon cluster over loopback sockets) exactly as
// cmd/evsd assembles one per OS process.
package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config assembles one daemon.
type Config struct {
	// Self is this process; Peers maps every ring member — including
	// Self — to its transport address.
	Self  model.ProcessID
	Peers map[model.ProcessID]string
	// Network selects the medium: "udp" (default) or "tcp".
	Network string
	// Node overrides protocol timing; nil uses DefaultNetConfig.
	Node *node.Config
	// TracePath, when non-empty, persists the formal-model event trace
	// as JSONL for post-hoc certification.
	TracePath string

	// OnDeliver, OnConfig and TraceSink are in-process hooks for
	// embedding the daemon (the root package's net-backed Cluster, or a
	// test). They run on the protocol path under the daemon's lock:
	// don't block, don't call back into the daemon. TraceSink receives
	// each formal-model event with its unix-nano timestamp, in addition
	// to (and independent of) TracePath.
	OnDeliver func(node.Delivery)
	OnConfig  func(node.ConfigChange)
	TraceSink func(int64, model.Event)
}

// DefaultNetConfig returns protocol timing suited to real sockets on a
// possibly loaded machine: an order of magnitude slower than the
// simulator profile, so scheduling hiccups don't masquerade as token
// loss and trigger spurious membership changes.
func DefaultNetConfig() node.Config {
	cfg := node.DefaultConfig()
	cfg.TokenLoss = 400 * time.Millisecond
	cfg.TokenRetrans = 60 * time.Millisecond
	cfg.JoinRetry = 100 * time.Millisecond
	cfg.CommitTimeout = 250 * time.Millisecond
	cfg.RecoveryRetry = 80 * time.Millisecond
	cfg.RecoveryTimeout = 1200 * time.Millisecond
	return cfg
}

// Daemon is one ring process over a real transport.
type Daemon struct {
	id    model.ProcessID
	start time.Time
	met   *obs.Metrics
	tr    transport.Transport
	trace *TraceWriter

	onDeliver func(node.Delivery)
	onConfig  func(node.ConfigChange)
	traceSink func(int64, model.Event)

	mu     sync.Mutex // guards node entry points, timers, state below
	n      *node.Node
	timers map[node.TimerKind]*time.Timer
	dead   bool

	deliveries uint64
	confs      []model.Configuration

	srvMu sync.Mutex
	srv   *http.Server
	wg    sync.WaitGroup
}

var _ node.Host = (*Daemon)(nil)

// New assembles and starts a daemon: transport bound, node started, ring
// formation under way.
func New(cfg Config) (*Daemon, error) {
	d := &Daemon{
		id:        cfg.Self,
		start:     time.Now(), //lint:allow determinism daemon uptime anchor; feeds metrics labels only, never protocol state
		timers:    make(map[node.TimerKind]*time.Timer),
		onDeliver: cfg.OnDeliver,
		onConfig:  cfg.OnConfig,
		traceSink: cfg.TraceSink,
	}
	//lint:allow determinism metrics clock measures daemon uptime for observability; protocol timers go through node.Host
	d.met = obs.New(string(cfg.Self), func() time.Duration { return time.Since(d.start) })
	if cfg.TracePath != "" {
		tw, err := NewTraceWriter(cfg.TracePath)
		if err != nil {
			return nil, err
		}
		d.trace = tw
	}
	handler := func(from model.ProcessID, msg wire.Message) {
		d.mu.Lock()
		if !d.dead {
			d.n.OnMessage(from, msg)
		}
		d.mu.Unlock()
	}
	var (
		tr  transport.Transport
		err error
	)
	switch cfg.Network {
	case "", "udp":
		tr, err = transport.NewUDP(transport.UDPConfig{
			Self: cfg.Self, Peers: cfg.Peers, Handler: handler, Met: d.met,
		})
	case "tcp":
		tr, err = transport.NewTCP(transport.TCPConfig{
			Self: cfg.Self, Peers: cfg.Peers, Handler: handler, Met: d.met,
		})
	default:
		err = fmt.Errorf("daemon: unknown network %q", cfg.Network)
	}
	if err != nil {
		if d.trace != nil {
			d.trace.Close()
		}
		return nil, err
	}
	d.tr = tr
	nodeCfg := DefaultNetConfig()
	if cfg.Node != nil {
		nodeCfg = *cfg.Node
	}
	d.n = node.New(cfg.Self, nodeCfg, tr, d, &stable.Store{})
	d.n.SetMetrics(d.met)
	d.mu.Lock()
	d.n.Start()
	d.mu.Unlock()
	return d, nil
}

// ID returns the process identifier.
func (d *Daemon) ID() model.ProcessID { return d.id }

// Addr returns the transport's bound address.
func (d *Daemon) Addr() string {
	type addresser interface{ Addr() string }
	if a, ok := d.tr.(addresser); ok {
		return a.Addr()
	}
	return ""
}

// Metrics returns the daemon's observability scope.
func (d *Daemon) Metrics() *obs.Metrics { return d.met }

// SetTimer implements node.Host with wall-clock timers. Called with d.mu
// held (every node entry point runs under it).
func (d *Daemon) SetTimer(kind node.TimerKind, dur time.Duration) {
	if t, ok := d.timers[kind]; ok {
		t.Stop()
	}
	//lint:allow determinism the daemon IS the real-time node.Host implementation; the simulator provides the deterministic one
	d.timers[kind] = time.AfterFunc(dur, func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if !d.dead {
			d.n.OnTimer(kind)
		}
	})
}

// CancelTimer implements node.Host.
func (d *Daemon) CancelTimer(kind node.TimerKind) {
	if t, ok := d.timers[kind]; ok {
		t.Stop()
		delete(d.timers, kind)
	}
}

// Deliver implements node.Host: count the delivery (visible in /status
// and metrics) and fan out to the embedding application's hook, if any.
func (d *Daemon) Deliver(del node.Delivery) {
	d.deliveries++
	if d.onDeliver != nil {
		d.onDeliver(del)
	}
}

// DeliverConfig implements node.Host.
func (d *Daemon) DeliverConfig(c node.ConfigChange) {
	d.confs = append(d.confs, c.Config)
	if d.onConfig != nil {
		d.onConfig(c)
	}
}

// Trace implements node.Host: events go to the JSONL trace file stamped
// with wall-clock time, for post-hoc merge and certification, and to the
// in-process sink when one is registered.
func (d *Daemon) Trace(e model.Event) {
	if d.trace == nil && d.traceSink == nil {
		return
	}
	t := time.Now().UnixNano() //lint:allow determinism trace timestamps exist for post-hoc cross-daemon merge, not protocol decisions
	if d.trace != nil {
		_ = d.trace.Append(t, e)
	}
	if d.traceSink != nil {
		d.traceSink(t, e)
	}
}

// Submit originates an application message on the ring.
func (d *Daemon) Submit(payload []byte, svc model.Service) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return transport.ErrClosed
	}
	return d.n.Submit(payload, svc)
}

// Status is a point-in-time view of the daemon, also served as JSON on
// the HTTP endpoint.
type Status struct {
	ID         string   `json:"id"`
	Mode       string   `json:"mode"`
	Config     string   `json:"config"`
	Members    []string `json:"members"`
	Deliveries uint64   `json:"deliveries"`
	Configs    int      `json:"configs"`
}

// Status snapshots the daemon's protocol state.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	cfg := d.n.CurrentConfig()
	st := Status{
		ID:         string(d.id),
		Mode:       d.n.Mode().String(),
		Config:     cfg.ID.String(),
		Deliveries: d.deliveries,
		Configs:    len(d.confs),
	}
	for _, m := range cfg.Members.Members() {
		st.Members = append(st.Members, string(m))
	}
	return st
}

// Operational reports whether the daemon has a regular configuration
// installed whose membership is exactly want (nil: any membership).
func (d *Daemon) Operational(want []model.ProcessID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n.Mode() != node.Operational {
		return false
	}
	if want == nil {
		return true
	}
	return d.n.CurrentConfig().Members.Equal(model.NewProcessSet(want...))
}

// WaitOperational blocks until Operational(want) holds or the timeout
// elapses; it reports success.
func (d *Daemon) WaitOperational(want []model.ProcessID, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout) //lint:allow determinism ops/test polling helper; wall time never reaches the node state machine
	for time.Now().Before(deadline) { //lint:allow determinism ops/test polling helper; wall time never reaches the node state machine
		if d.Operational(want) {
			return true
		}
		time.Sleep(5 * time.Millisecond) //lint:allow determinism ops/test polling helper; wall time never reaches the node state machine
	}
	return d.Operational(want)
}

// Deliveries returns how many application messages the daemon has
// delivered.
func (d *Daemon) Deliveries() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deliveries
}

// Configs snapshots the configuration changes delivered so far.
func (d *Daemon) Configs() []model.Configuration {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]model.Configuration, len(d.confs))
	copy(out, d.confs)
	return out
}

// Handler returns the daemon's HTTP handler: Prometheus metrics on
// /metrics (JSON with ?format=json or /metrics.json), status on /status.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		cs := obs.Cluster(d.met)
		if r.URL.Query().Get("format") == "json" || strings.HasSuffix(r.URL.Path, ".json") {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(obs.ExpvarMap(cs))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, cs)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(obs.ExpvarMap(obs.Cluster(d.met)))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Status())
	})
	return mux
}

// Serve starts the HTTP endpoint on addr (":0" picks a port) and returns
// the bound address. The server stops when the daemon closes.
func (d *Daemon) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	d.srvMu.Lock()
	if d.srv != nil {
		d.srvMu.Unlock()
		ln.Close()
		return "", fmt.Errorf("daemon: HTTP endpoint already running on %s", d.srv.Addr)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: d.Handler()}
	d.srv = srv
	d.wg.Add(1)
	d.srvMu.Unlock()
	go func() {
		defer d.wg.Done()
		_ = srv.Serve(ln)
	}()
	return srv.Addr, nil
}

// Close stops the daemon: protocol silenced, timers stopped, transport
// and HTTP endpoint closed, trace flushed. Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return nil
	}
	d.dead = true
	for k, t := range d.timers {
		t.Stop()
		delete(d.timers, k)
	}
	d.mu.Unlock()

	d.srvMu.Lock()
	srv := d.srv
	d.srvMu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	err := d.tr.Close()
	d.wg.Wait()
	if d.trace != nil {
		if terr := d.trace.Close(); err == nil {
			err = terr
		}
	}
	return err
}

package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/spec"
)

// traceRecord is one formal-model event on disk: a flat JSON line with a
// wall-clock timestamp, so traces from separate processes on one machine
// can be merged into a plausible global order post-hoc. model.Event
// itself is not JSON-marshalable (ProcessSet hides its members), and the
// on-disk form should stay stable even if the in-memory types move.
type traceRecord struct {
	T       int64    `json:"t"` // unix nanoseconds
	Type    int      `json:"type"`
	Proc    string   `json:"proc"`
	CfgKind int      `json:"cfg_kind,omitempty"`
	CfgSeq  uint64   `json:"cfg_seq,omitempty"`
	CfgRep  string   `json:"cfg_rep,omitempty"`
	PrevSeq uint64   `json:"prev_seq,omitempty"`
	PrevRep string   `json:"prev_rep,omitempty"`
	Members []string `json:"members,omitempty"`
	Sender  string   `json:"sender,omitempty"`
	SendSeq uint64   `json:"send_seq,omitempty"`
	Service int      `json:"service,omitempty"`
	Primary bool     `json:"primary,omitempty"`
}

func toRecord(t int64, e model.Event) traceRecord {
	rec := traceRecord{
		T:       t,
		Type:    int(e.Type),
		Proc:    string(e.Proc),
		CfgKind: int(e.Config.Kind),
		CfgSeq:  e.Config.Seq,
		CfgRep:  string(e.Config.Rep),
		PrevSeq: e.Config.PrevSeq,
		PrevRep: string(e.Config.PrevRep),
		Sender:  string(e.Msg.Sender),
		SendSeq: e.Msg.SenderSeq,
		Service: int(e.Service),
		Primary: e.Primary,
	}
	for _, m := range e.Members.Members() {
		rec.Members = append(rec.Members, string(m))
	}
	return rec
}

func (rec traceRecord) event() model.Event {
	members := make([]model.ProcessID, len(rec.Members))
	for i, m := range rec.Members {
		members[i] = model.ProcessID(m)
	}
	return model.Event{
		Type: model.EventType(rec.Type),
		Proc: model.ProcessID(rec.Proc),
		Config: model.ConfigID{
			Kind:    model.ConfigKind(rec.CfgKind),
			Seq:     rec.CfgSeq,
			Rep:     model.ProcessID(rec.CfgRep),
			PrevSeq: rec.PrevSeq,
			PrevRep: model.ProcessID(rec.PrevRep),
		},
		Members: model.NewProcessSet(members...),
		Msg:     model.MessageID{Sender: model.ProcessID(rec.Sender), SenderSeq: rec.SendSeq},
		Service: model.Service(rec.Service),
		Primary: rec.Primary,
	}
}

// TraceWriter appends formal-model events to a JSONL file. Safe for
// concurrent use; Close flushes.
type TraceWriter struct {
	mu  sync.Mutex
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewTraceWriter creates (truncating) the trace file.
func NewTraceWriter(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("daemon: create trace %s: %w", path, err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	return &TraceWriter{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

// Append records one event at the given wall-clock time (unix nanos).
func (w *TraceWriter) Append(t int64, e model.Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(toRecord(t, e))
}

// Close flushes and closes the file.
func (w *TraceWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		w.f.Close() //lint:allow lockheld teardown must serialize with concurrent Append writers; Close is the final write
		return err
	}
	return w.f.Close() //lint:allow lockheld teardown must serialize with concurrent Append writers; Close is the final write
}

// timedEvent pairs an event with its on-disk timestamp for merging.
type timedEvent struct {
	t int64
	e model.Event
}

// readTrace loads one trace file.
func readTrace(path string) ([]timedEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("daemon: open trace %s: %w", path, err)
	}
	defer f.Close()
	var out []timedEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("daemon: trace %s line %d: %w", path, line, err)
		}
		out = append(out, timedEvent{t: rec.T, e: rec.event()})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("daemon: read trace %s: %w", path, err)
	}
	return out, nil
}

// MergeTraces loads per-process trace files and interleaves them by
// wall-clock timestamp (stable, so each file's own order is preserved on
// ties). On one machine — the loopback deployment — timestamps give a
// plausible global order; the EVS specifications themselves are
// order-robust per process, which is what the checker verifies.
func MergeTraces(paths ...string) ([]model.Event, error) {
	var all []timedEvent
	for _, p := range paths {
		evs, err := readTrace(p)
		if err != nil {
			return nil, err
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	out := make([]model.Event, len(all))
	for i, te := range all {
		out[i] = te.e
	}
	return out, nil
}

// Certify runs the specification checker over a merged multi-process
// trace. Settledness is off: a deployment trace ends whenever the
// operator stopped collecting (or SIGKILLed a daemon, which records no
// Fail event), so only the safety clauses — the ones a partial history
// can witness — are checked.
func Certify(events []model.Event) []spec.Violation {
	return spec.NewChecker(events, spec.Options{Settled: false}).CheckAll()
}

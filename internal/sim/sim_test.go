package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFiresInTimeOrder(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	s.At(10*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	for s.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Millisecond, func(time.Duration) { got = append(got, i) })
	}
	for s.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order %v, want FIFO", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var firedAt time.Duration
	s.At(5*time.Millisecond, func(now time.Duration) {
		s.After(10*time.Millisecond, func(now time.Duration) { firedAt = now })
	})
	for s.Step() {
	}
	if firedAt != 15*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 15ms", firedAt)
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	fired := false
	e := s.At(time.Millisecond, func(time.Duration) { fired = true })
	e.Cancel()
	for s.Step() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", s.Fired())
	}
	// Cancelling again (and cancelling a zero handle) must be safe.
	e.Cancel()
	var zero Timer
	zero.Cancel()
	// A handle must not cancel a later event that reuses the pooled slot.
	refired := false
	s.At(2*time.Millisecond, func(time.Duration) { refired = true })
	e.Cancel()
	for s.Step() {
	}
	if !refired {
		t.Fatal("stale handle cancelled a reused pool slot")
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	var s Scheduler
	s.At(10*time.Millisecond, func(time.Duration) {})
	s.Step()
	var at time.Duration
	s.At(time.Millisecond, func(now time.Duration) { at = now })
	s.Step()
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", at)
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(10*time.Millisecond, func(time.Duration) { got = append(got, 1) })
	s.At(20*time.Millisecond, func(time.Duration) { got = append(got, 2) })
	s.At(30*time.Millisecond, func(time.Duration) { got = append(got, 3) })
	s.RunUntil(20 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("RunUntil fired %v, want first two (inclusive boundary)", got)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestRunUntilIdle(t *testing.T) {
	var s Scheduler
	n := 0
	s.At(time.Millisecond, func(time.Duration) {
		n++
		if n < 5 {
			s.After(time.Millisecond, func(time.Duration) { n++ })
		}
	})
	quiesced := s.RunUntilIdle(time.Second)
	if !quiesced {
		t.Fatal("should quiesce before horizon")
	}
	if n != 2 {
		// First callback increments and schedules one more chain link;
		// the chain self-limits.
		t.Fatalf("n = %d, want 2", n)
	}

	var s2 Scheduler
	var reschedule func(time.Duration)
	reschedule = func(time.Duration) { s2.After(time.Millisecond, reschedule) }
	s2.After(time.Millisecond, reschedule)
	if s2.RunUntilIdle(50 * time.Millisecond) {
		t.Fatal("perpetual chain should hit the horizon")
	}
	if s2.Now() != 50*time.Millisecond {
		t.Fatalf("clock = %v, want horizon", s2.Now())
	}
}

func TestDeterministicUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []int {
		r := rand.New(rand.NewSource(seed))
		var s Scheduler
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			s.At(time.Duration(r.Intn(50))*time.Millisecond, func(time.Duration) {
				got = append(got, i)
			})
		}
		for s.Step() {
		}
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Scheduler
		ok := true
		last := time.Duration(-1)
		for i := 0; i < 50; i++ {
			s.At(time.Duration(r.Intn(20))*time.Millisecond, func(now time.Duration) {
				if now < last {
					ok = false
				}
				last = now
				if r.Intn(3) == 0 {
					s.After(time.Duration(r.Intn(5))*time.Millisecond, func(time.Duration) {})
				}
			})
		}
		for s.Step() {
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package sim provides a deterministic discrete-event scheduler.
//
// All protocol logic in this repository is written as event-driven state
// machines with no direct use of wall-clock time; the scheduler advances a
// virtual clock and fires callbacks in a deterministic order (time, then
// insertion order), so that every execution — including adversarial
// partition/crash schedules — replays exactly from a seed.
//
// The event store is pooled: entries live in a flat slice threaded with a
// free list and are addressed by index, so steady-state scheduling performs
// no heap allocation. Hot callers avoid even the closure allocation by
// scheduling a typed Op (a small value dispatched through an OpTarget)
// instead of a Callback. Ordering is kept by a 4-ary index heap keyed on
// (time, insertion sequence); a bucketed calendar queue was considered for
// the constant-delay common case, but after pooling, Push/Pop no longer
// register in the ordering-path profile (see DESIGN.md §13), so the simpler
// structure stands.
package sim

import (
	"time"
)

// Callback is invoked when a scheduled event fires; now is the virtual time
// at which it fires.
type Callback func(now time.Duration)

// OpTarget executes typed events. Implementations switch on Op.Kind; kinds
// are private to each target, so distinct targets may reuse the same values.
type OpTarget interface {
	RunOp(op Op, now time.Duration)
}

// Op is a typed event payload: a closure-free alternative to Callback for
// hot paths. Target must be pointer-shaped (a pointer receiver) so that
// storing it in the entry pool does not allocate. A and B carry small
// operands (e.g. link endpoints); Msg carries the payload, if any.
type Op struct {
	Target OpTarget
	Kind   uint8
	A, B   string
	Msg    any
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and cancels nothing. Timers are values: copying one copies the
// handle, not the event.
type Timer struct {
	s   *Scheduler
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-cancelled or zero Timer is a no-op.
func (t Timer) Cancel() {
	if t.s == nil || int(t.idx) >= len(t.s.events) {
		return
	}
	e := t.s.at(t.idx)
	if e.gen != t.gen || e.canceled {
		return
	}
	e.canceled = true
	e.fn = nil
	e.op = Op{}
	t.s.size--
}

// event is one pooled entry. A fired or cancelled entry returns to the free
// list with its generation bumped, invalidating outstanding Timers.
type event struct {
	at       time.Duration
	seq      uint64
	gen      uint32
	canceled bool
	fn       Callback
	op       Op
	next     int32 // free-list link
}

// at returns a pooled entry's slot. The pointer is valid only until the
// slot is released back to the free list (release bumps the generation
// and the next alloc reuses it) — never retain it across a Step.
//
//evs:arena
//evs:noalloc
func (s *Scheduler) at(idx int32) *event {
	return &s.events[idx]
}

// Scheduler is a virtual-time event queue. The zero value is ready to use
// with the clock at zero.
type Scheduler struct {
	now    time.Duration
	events []event
	free   int32 // free-list head + 1; 0 means empty
	heap   []int32
	seq    uint64
	ran    uint64
	size   int
	peak   int
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Fired returns the number of events fired so far (cancelled entries do not
// count).
func (s *Scheduler) Fired() uint64 { return s.ran }

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int { return s.size }

// PeakPending returns the high-water mark of Pending over the scheduler's
// lifetime: the event-population blowup detector for benchmarks.
func (s *Scheduler) PeakPending() int { return s.peak }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs at the current time (never rewinds the clock).
func (s *Scheduler) At(t time.Duration, fn Callback) Timer {
	return s.schedule(t, fn, Op{})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Callback) Timer {
	return s.schedule(s.now+d, fn, Op{})
}

// AtOp schedules a typed event at absolute virtual time t.
//
//evs:noalloc
func (s *Scheduler) AtOp(t time.Duration, op Op) Timer {
	return s.schedule(t, nil, op)
}

// AfterOp schedules a typed event d after the current virtual time.
//
//evs:noalloc
func (s *Scheduler) AfterOp(d time.Duration, op Op) Timer {
	return s.schedule(s.now+d, nil, op)
}

// schedule pools an entry and pushes it on the index heap.
//
//evs:noalloc
func (s *Scheduler) schedule(t time.Duration, fn Callback, op Op) Timer {
	if t < s.now {
		t = s.now
	}
	idx := s.alloc()
	e := s.at(idx)
	e.at = t
	e.seq = s.seq
	e.canceled = false
	e.fn = fn
	e.op = op
	s.seq++
	s.size++
	if s.size > s.peak {
		s.peak = s.size
	}
	s.push(idx)
	return Timer{s: s, idx: idx, gen: e.gen}
}

// alloc takes an entry off the free list, growing the pool only when empty.
//
//evs:noalloc
func (s *Scheduler) alloc() int32 {
	if s.free != 0 {
		idx := s.free - 1
		s.free = s.events[idx].next
		return idx
	}
	s.events = append(s.events, event{})
	return int32(len(s.events) - 1)
}

// release returns a popped entry to the free list, dropping payload
// references and invalidating outstanding Timers.
//
//evs:noalloc
func (s *Scheduler) release(idx int32) {
	e := s.at(idx)
	e.gen++
	e.fn = nil
	e.op = Op{}
	e.next = s.free
	s.free = idx + 1
}

// Step fires the next event, advancing the clock to its time. It returns
// false when no events remain.
//
//evs:noalloc
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		idx := s.popMin()
		e := s.at(idx)
		if e.canceled {
			s.release(idx)
			continue
		}
		at, fn, op := e.at, e.fn, e.op
		s.release(idx)
		s.size--
		s.now = at
		s.ran++
		if fn != nil {
			fn(at)
		} else {
			op.Target.RunOp(op, at)
		}
		return true
	}
	return false
}

// RunUntil fires events in order until the virtual clock would pass t, then
// sets the clock to t. Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		at, ok := s.peekAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunUntilIdle fires events until none remain or the clock passes horizon,
// whichever comes first. It returns true if the queue drained (the system
// quiesced) and false if the horizon cut the run short.
func (s *Scheduler) RunUntilIdle(horizon time.Duration) bool {
	for {
		at, ok := s.peekAt()
		if !ok {
			return true
		}
		if at > horizon {
			s.now = horizon
			return false
		}
		s.Step()
	}
}

// peekAt returns the next uncancelled event's time without firing it,
// discarding cancelled entries as it goes.
//
//evs:noalloc
func (s *Scheduler) peekAt() (time.Duration, bool) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		e := s.at(idx)
		if e.canceled {
			s.popMin()
			s.release(idx)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// less orders entries by (time, insertion sequence): the determinism
// contract of the whole simulator.
//
//evs:noalloc
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := s.at(a), s.at(b)
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push appends idx and restores the 4-ary heap invariant upward.
//
//evs:noalloc
func (s *Scheduler) push(idx int32) {
	s.heap = append(s.heap, idx)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !s.less(idx, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = idx
}

// popMin removes and returns the least entry's index.
//
//evs:noalloc
func (s *Scheduler) popMin() int32 {
	min := s.heap[0]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if n == 0 {
		return min
	}
	// Sift last down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.less(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !s.less(s.heap[m], last) {
			break
		}
		s.heap[i] = s.heap[m]
		i = m
	}
	s.heap[i] = last
	return min
}

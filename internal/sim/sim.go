// Package sim provides a deterministic discrete-event scheduler.
//
// All protocol logic in this repository is written as event-driven state
// machines with no direct use of wall-clock time; the scheduler advances a
// virtual clock and fires callbacks in a deterministic order (time, then
// insertion order), so that every execution — including adversarial
// partition/crash schedules — replays exactly from a seed.
package sim

import (
	"container/heap"
	"time"
)

// Callback is invoked when a scheduled event fires; now is the virtual time
// at which it fires.
type Callback func(now time.Duration)

// Entry is a handle to a scheduled event that can be cancelled.
type Entry struct {
	at       time.Duration
	seq      uint64
	fn       Callback
	canceled bool
	index    int // heap index, -1 when popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled entry is a no-op.
func (e *Entry) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Scheduler is a virtual-time event queue. The zero value is ready to use
// with the clock at zero.
type Scheduler struct {
	now  time.Duration
	h    entryHeap
	seq  uint64
	ran  uint64
	size int
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Fired returns the number of events fired so far (cancelled entries do not
// count).
func (s *Scheduler) Fired() uint64 { return s.ran }

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int { return s.size }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs at the current time (never rewinds the clock).
func (s *Scheduler) At(t time.Duration, fn Callback) *Entry {
	if t < s.now {
		t = s.now
	}
	e := &Entry{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.size++
	heap.Push(&s.h, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Callback) *Entry {
	return s.At(s.now+d, fn)
}

// Step fires the next event, advancing the clock to its time. It returns
// false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.h) > 0 {
		e, ok := heap.Pop(&s.h).(*Entry)
		if !ok {
			return false
		}
		if e.canceled {
			continue
		}
		s.size--
		s.now = e.at
		s.ran++
		e.fn(s.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the virtual clock would pass t, then
// sets the clock to t. Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		e := s.peek()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunUntilIdle fires events until none remain or the clock passes horizon,
// whichever comes first. It returns true if the queue drained (the system
// quiesced) and false if the horizon cut the run short.
func (s *Scheduler) RunUntilIdle(horizon time.Duration) bool {
	for {
		e := s.peek()
		if e == nil {
			return true
		}
		if e.at > horizon {
			s.now = horizon
			return false
		}
		s.Step()
	}
}

// peek returns the next uncancelled entry without firing it.
func (s *Scheduler) peek() *Entry {
	for len(s.h) > 0 {
		if e := s.h[0]; e.canceled {
			heap.Pop(&s.h)
			continue
		}
		return s.h[0]
	}
	return nil
}

// entryHeap orders entries by (time, insertion sequence).
type entryHeap []*Entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *entryHeap) Push(x any) {
	e, ok := x.(*Entry)
	if !ok {
		return
	}
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Package membership implements the low-level membership algorithm beneath
// the EVS recovery algorithm: agreement, within each network component, on
// the membership and identifier of the next regular configuration.
//
// The algorithm is a gather/commit consensus in the style of the Totem and
// Transis membership protocols:
//
//   - Gather: every reconfiguring process broadcasts a Join carrying the set
//     of processes it has heard from this round (Alive), the set it has
//     given up on (Failed), and the highest ring sequence number it knows.
//     Consensus is reached when every process in the candidate set
//     Alive\Failed proposes exactly that set.
//   - Commit: the representative (lowest candidate) proposes a new ring with
//     a fresh identifier; members acknowledge; when every member has
//     acknowledged, the representative broadcasts Install and every member
//     proceeds to the EVS recovery algorithm for the new ring.
//
// Timeouts guarantee the bounded termination the paper requires of the
// underlying membership algorithm (Section 3): if the proposed
// configuration is not installed within a bounded time, silent processes
// are moved to Failed and the proposed membership shrinks.
//
// The Protocol type is a pure state machine: the node supplies received
// messages and timer expirations and transmits the returned messages.
package membership

import (
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// staleStrikes is the number of consecutive silent-and-disagreeing join
// timeouts after which a previously-heard process is declared failed.
const staleStrikes = 3

// Phase is the membership protocol phase.
type Phase int

const (
	// Idle means no reconfiguration is in progress.
	Idle Phase = iota + 1
	// Gather means the process is collecting Joins toward consensus.
	Gather
	// Commit means a ring has been proposed and acknowledgments are
	// being collected (at the representative) or awaited (elsewhere).
	Commit
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Idle:
		return "idle"
	case Gather:
		return "gather"
	case Commit:
		return "commit"
	default:
		return "phase(?)"
	}
}

// Action is the sealed union of protocol outputs.
type Action interface{ isAction() }

// Send instructs the node to broadcast a message.
type Send struct{ Msg wire.Message }

func (Send) isAction() {}

// Form instructs the node to begin the EVS recovery algorithm for the
// agreed new ring.
type Form struct{ Ring model.Configuration }

func (Form) isAction() {}

// Protocol is the membership state machine for one process.
type Protocol struct {
	self       model.ProcessID
	phase      Phase
	attempt    uint64 // monotone join-broadcast counter (persisted by node)
	maxRingSeq uint64

	current model.Configuration // current regular ring, for stale-join tests

	// Gather state.
	joins    map[model.ProcessID]wire.Join
	lastSeen map[model.ProcessID]uint64 // highest join attempt accepted per sender
	failed   model.ProcessSet
	// aloneOK permits singleton consensus; it is granted only by a join
	// timeout, so a process never concludes it is alone before waiting
	// for peers to speak up.
	aloneOK bool
	// heard records processes whose traffic (of any kind) has been seen
	// since the previous join timeout, and strikes counts consecutive
	// timeouts a process spent silent while its join still disagreed
	// with the candidate. After staleStrikes such timeouts the process
	// is presumed failed: it spoke once and died, and its final join may
	// even have been lost in flight. Requiring several strikes keeps
	// ordinary phase misalignment and packet loss from triggering false
	// exclusions.
	heard   map[model.ProcessID]bool
	strikes map[model.ProcessID]int

	// Commit state.
	proposed model.Configuration
	acks     map[model.ProcessID]bool
	isRep    bool

	// lastFormed suppresses re-processing of our own or duplicated
	// Install messages for a ring we already formed.
	lastFormed model.ConfigID

	// met is the process's observability scope (nil disables).
	met *obs.Metrics
}

// New creates the protocol. attempt and maxRingSeq come from stable storage
// so that joins and ring identifiers stay fresh across process recoveries.
func New(self model.ProcessID, attempt, maxRingSeq uint64) *Protocol {
	return &Protocol{
		self:       self,
		phase:      Idle,
		attempt:    attempt,
		maxRingSeq: maxRingSeq,
		lastSeen:   make(map[model.ProcessID]uint64),
	}
}

// SetMetrics attaches the process's observability scope (nil disables).
func (m *Protocol) SetMetrics(met *obs.Metrics) { m.met = met }

// Phase returns the current phase.
func (m *Protocol) Phase() Phase { return m.phase }

// Attempt returns the join-broadcast counter, persisted by the node.
func (m *Protocol) Attempt() uint64 { return m.attempt }

// MaxRingSeq returns the highest ring sequence number seen, persisted by
// the node.
func (m *Protocol) MaxRingSeq() uint64 { return m.maxRingSeq }

// CorruptMaxRingSeq is a chaos fault surface: it regresses the live
// freshness counter to half its value, simulating transient in-memory
// corruption between token visits. The checkConsensus clamp and peers'
// join adoption must heal it before the next configuration identifier
// is minted. It reports whether anything changed.
func (m *Protocol) CorruptMaxRingSeq() bool {
	if m.maxRingSeq == 0 {
		return false
	}
	m.maxRingSeq /= 2
	return true
}

// Proposed returns the ring currently proposed (Commit phase).
func (m *Protocol) Proposed() model.Configuration { return m.proposed }

// SetCurrent tells the protocol which regular ring is installed, for
// stale-join suppression and ring-sequence freshness.
func (m *Protocol) SetCurrent(cfg model.Configuration) {
	m.current = cfg
	if cfg.ID.Seq > m.maxRingSeq {
		m.maxRingSeq = cfg.ID.Seq
	}
	m.phase = Idle
	m.joins = nil
	m.acks = nil
	m.failed = model.NewProcessSet()
}

// StartGather begins (or restarts) the gather phase. It is safe to call in
// any phase; in Gather it re-seeds nothing and simply rebroadcasts.
func (m *Protocol) StartGather() []Action {
	if m.phase != Gather {
		m.phase = Gather
		m.joins = make(map[model.ProcessID]wire.Join)
		m.acks = nil
		m.failed = model.NewProcessSet()
		m.isRep = false
		m.proposed = model.Configuration{}
		m.aloneOK = false
		m.heard = make(map[model.ProcessID]bool)
		m.strikes = make(map[model.ProcessID]int)
	}
	return m.broadcastJoin()
}

// broadcastJoin emits this process's current Join and records it locally.
func (m *Protocol) broadcastJoin() []Action {
	m.attempt++
	j := wire.Join{
		Sender:     m.self,
		Alive:      m.candidate().Members(),
		Failed:     m.failed.Members(),
		MaxRingSeq: m.maxRingSeq,
		Attempt:    m.attempt,
	}
	m.joins[m.self] = j
	m.lastSeen[m.self] = m.attempt
	m.met.Inc(obs.CMemJoinsSent)
	return append([]Action{Send{Msg: j}}, m.checkConsensus()...)
}

// candidate returns the membership this process currently proposes: all
// processes heard from this gather round, minus the failed set, plus self.
func (m *Protocol) candidate() model.ProcessSet {
	ids := make([]model.ProcessID, 0, len(m.joins)+1)
	ids = append(ids, m.self)
	for id := range m.joins {
		if !m.failed.Contains(id) {
			ids = append(ids, id)
		}
	}
	return model.NewProcessSet(ids...)
}

// NoteTraffic records that any wire traffic from p has been observed; the
// node calls it for every received message, so the join-timeout staleness
// rule only fires for processes that are truly silent.
func (m *Protocol) NoteTraffic(p model.ProcessID) {
	if m.heard != nil {
		m.heard[p] = true
	}
}

// Stale reports whether a join is old news from a member of the installed
// ring: the member proposed it before it helped install the current ring.
func (m *Protocol) Stale(j wire.Join) bool {
	return !m.current.ID.IsZero() &&
		m.current.Members.Contains(j.Sender) &&
		j.MaxRingSeq < m.current.ID.Seq
}

// OnJoin ingests a Join. In Idle it starts a gather (someone is
// reconfiguring); the node is responsible for filtering joins through
// Stale first if it wants suppression.
func (m *Protocol) OnJoin(j wire.Join) []Action {
	if j.Attempt <= m.lastSeen[j.Sender] {
		return nil
	}
	m.lastSeen[j.Sender] = j.Attempt
	m.met.Inc(obs.CMemJoinsRecv)
	if j.MaxRingSeq > m.maxRingSeq {
		m.maxRingSeq = j.MaxRingSeq
	}

	var out []Action
	switch m.phase {
	case Commit:
		// Joins from proposed members whose view is contained in the
		// proposal are echoes of the consensus round still in flight;
		// restarting gather on them would livelock. Only joins that
		// genuinely conflict — an outside sender, or a view naming
		// processes outside the proposal — abort the commitment.
		theirs := model.NewProcessSet(j.Alive...).Subtract(model.NewProcessSet(j.Failed...))
		if m.proposed.Members.Contains(j.Sender) && theirs.IsSubsetOf(m.proposed.Members) {
			return nil
		}
		// Conflicting join: fall back to gathering, keeping the joins
		// already heard so consensus can re-form without waiting for
		// every member to rebroadcast.
		m.phase = Gather
		m.isRep = false
		m.proposed = model.Configuration{}
		m.acks = nil
	case Idle:
		out = append(out, m.StartGather()...)
	}
	// A fresh join from a process marked failed is first-hand testimony
	// that it is alive, and overrides failure hearsay. Without this,
	// failure rumors self-sustain after partitions heal: every
	// component's joins carry "the others failed" claims, receivers
	// adopt the claims and then ignore the allegedly-failed senders, so
	// no evidence can ever rebut the rumor and the membership churns
	// through small configurations forever.
	if m.failed.Contains(j.Sender) {
		m.failed = m.failed.Subtract(model.NewProcessSet(j.Sender))
		delete(m.strikes, j.Sender)
	}
	prev := m.candidate()
	prevFailed := m.failed
	m.joins[j.Sender] = j
	// Failure hearsay is adopted only about processes with no direct
	// evidence this round: a process that has sent us a join is known
	// alive first-hand, and first-hand testimony outranks rumor. (It can
	// still be excluded by our own strikes if it goes silent.) Adopting
	// hearsay unconditionally lets stale failure rumors re-poison every
	// fresh gather after a partition heals — faster than installs can
	// clear them — degenerating the membership into endlessly churning
	// micro-configurations.
	hearsay := model.NewProcessSet(j.Failed...)
	for q := range m.joins {
		hearsay = hearsay.Subtract(model.NewProcessSet(q))
	}
	m.failed = m.failed.Union(hearsay)
	// Never mark self failed on hearsay.
	m.failed = m.failed.Subtract(model.NewProcessSet(m.self))

	if !m.candidate().Equal(prev) || !m.failed.Equal(prevFailed) {
		out = append(out, m.broadcastJoin()...)
	} else {
		out = append(out, m.checkConsensus()...)
	}
	return out
}

// checkConsensus tests whether every candidate proposes the candidate set;
// if so the representative proposes a ring.
func (m *Protocol) checkConsensus() []Action {
	if m.phase != Gather {
		return nil
	}
	cand := m.candidate()
	if cand.Size() == 1 && !m.aloneOK {
		// Never conclude we are alone before a join timeout confirms
		// nobody else is speaking.
		return nil
	}
	for _, q := range cand.Members() {
		j, ok := m.joins[q]
		if !ok {
			return nil
		}
		theirs := model.NewProcessSet(j.Alive...).Subtract(model.NewProcessSet(j.Failed...))
		if !theirs.Equal(cand) {
			return nil
		}
	}
	rep, ok := cand.Min()
	if !ok {
		return nil
	}
	m.phase = Commit
	m.met.Inc(obs.CMemConsensus)
	if rep != m.self {
		// Wait for the representative's Commit.
		return nil
	}
	m.isRep = true
	m.met.Inc(obs.CMemCommits)
	// Self-stabilization guard: a transiently regressed freshness
	// counter must never mint a configuration identifier at or below
	// one this process already installed — the installed configuration
	// is participation evidence that lower-bounds the counter. Peers'
	// joins heal the multi-process case (OnJoin adopts their maxima).
	if cur := m.current.ID.Seq; m.maxRingSeq < cur {
		m.maxRingSeq = cur
		m.met.Inc(obs.CRingSeqHeals)
	}
	m.maxRingSeq++
	m.proposed = model.Configuration{
		ID:      model.RegularID(m.maxRingSeq, rep),
		Members: cand,
	}
	m.acks = map[model.ProcessID]bool{m.self: true}
	c := wire.Commit{
		NewRing: m.proposed.ID,
		Members: cand.Members(),
		Attempt: m.attempt,
	}
	out := []Action{Send{Msg: c}}
	return append(out, m.maybeInstall()...)
}

// OnCommit ingests a ring proposal from a representative.
func (m *Protocol) OnCommit(c wire.Commit) []Action {
	members := model.NewProcessSet(c.Members...)
	if !members.Contains(m.self) || c.NewRing == m.lastFormed {
		return nil
	}
	if c.NewRing.Seq > m.maxRingSeq {
		m.maxRingSeq = c.NewRing.Seq
	}
	// Ack at most one proposal per gather episode: once committed to a
	// proposal, ignore others until a timeout resets to Gather.
	if m.phase == Commit && !m.proposed.ID.IsZero() && m.proposed.ID != c.NewRing {
		return nil
	}
	if m.phase == Idle {
		// A commit implies a gather we missed; join it rather than
		// silently acking.
		return m.StartGather()
	}
	m.phase = Commit
	m.proposed = model.Configuration{ID: c.NewRing, Members: members}
	return []Action{Send{Msg: wire.CommitAck{
		Ring:    c.NewRing,
		Sender:  m.self,
		Attempt: c.Attempt,
	}}}
}

// OnCommitAck ingests a member's acknowledgment (representative only).
func (m *Protocol) OnCommitAck(a wire.CommitAck) []Action {
	if !m.isRep || m.phase != Commit || a.Ring != m.proposed.ID {
		return nil
	}
	m.acks[a.Sender] = true
	return m.maybeInstall()
}

// maybeInstall broadcasts Install once every proposed member has
// acknowledged.
func (m *Protocol) maybeInstall() []Action {
	for _, q := range m.proposed.Members.Members() {
		if !m.acks[q] {
			return nil
		}
	}
	inst := wire.Install{
		NewRing: m.proposed.ID,
		Members: m.proposed.Members.Members(),
		Attempt: m.attempt,
	}
	ring := m.proposed
	m.phase = Idle
	m.lastFormed = ring.ID
	m.met.Inc(obs.CMemInstalls)
	return []Action{Send{Msg: inst}, Form{Ring: ring}}
}

// OnInstall ingests the representative's Install.
func (m *Protocol) OnInstall(i wire.Install) []Action {
	members := model.NewProcessSet(i.Members...)
	if !members.Contains(m.self) || i.NewRing == m.lastFormed {
		return nil
	}
	if i.NewRing.Seq > m.maxRingSeq {
		m.maxRingSeq = i.NewRing.Seq
	}
	if m.phase != Commit || m.proposed.ID != i.NewRing {
		// Install for a ring we did not commit to: if we are mid
		// reconfiguration, let timeouts sort it out; if idle, gather.
		if m.phase == Idle {
			return m.StartGather()
		}
		return nil
	}
	ring := m.proposed
	m.phase = Idle
	m.lastFormed = ring.ID
	m.met.Inc(obs.CMemInstalls)
	return []Action{Form{Ring: ring}}
}

// OnJoinTimeout handles expiry of the gather retry timer: processes that
// appear in somebody's Alive set but have not sent a Join are declared
// failed, and the Join is rebroadcast.
func (m *Protocol) OnJoinTimeout() []Action {
	if m.phase != Gather {
		return nil
	}
	expected := model.NewProcessSet()
	for _, j := range m.joins {
		expected = expected.Union(model.NewProcessSet(j.Alive...))
	}
	var newlyFailed []model.ProcessID
	for _, q := range expected.Members() {
		if q == m.self {
			continue
		}
		if _, heard := m.joins[q]; !heard {
			newlyFailed = append(newlyFailed, q)
		}
	}
	// A member that has been completely silent across several whole
	// timeouts is presumed failed: it spoke once and died, and its final
	// join may even claim a view that agrees with ours — an agreeing
	// corpse still deadlocks consensus whenever any live member has
	// excluded it, because the round then needs the corpse to shrink its
	// view. Any live reachable process generates traffic well within one
	// strike period (gather rebroadcasts every JoinRetry; the commit
	// phase falls back to gather within CommitTimeout), so several whole
	// silent periods are real evidence, not phase misalignment.
	if m.strikes == nil {
		m.strikes = make(map[model.ProcessID]int)
	}
	for q := range m.joins {
		if q == m.self || m.failed.Contains(q) {
			continue
		}
		if m.heard[q] {
			m.strikes[q] = 0
			continue
		}
		m.strikes[q]++
		if m.strikes[q] >= staleStrikes {
			newlyFailed = append(newlyFailed, q)
		}
	}
	m.heard = make(map[model.ProcessID]bool)
	m.met.Inc(obs.CMemJoinTimeouts)
	if len(newlyFailed) > 0 {
		sort.Slice(newlyFailed, func(i, j int) bool { return newlyFailed[i] < newlyFailed[j] })
		before := m.failed.Size()
		m.failed = m.failed.Union(model.NewProcessSet(newlyFailed...))
		m.met.Add(obs.CMemFailuresDeclared, uint64(m.failed.Size()-before))
	}
	m.aloneOK = true
	return m.broadcastJoin()
}

// OnCommitTimeout handles expiry of the commit timer: the proposal is
// abandoned and gathering restarts, with unresponsive members (at the
// representative) declared failed.
func (m *Protocol) OnCommitTimeout() []Action {
	if m.phase != Commit {
		return nil
	}
	var silent []model.ProcessID
	if m.isRep {
		for _, q := range m.proposed.Members.Members() {
			if !m.acks[q] {
				silent = append(silent, q)
			}
		}
	}
	m.phase = Idle
	out := m.StartGather()
	if len(silent) > 0 {
		before := m.failed.Size()
		m.failed = m.failed.Union(model.NewProcessSet(silent...))
		m.met.Add(obs.CMemFailuresDeclared, uint64(m.failed.Size()-before))
		out = append(out, m.broadcastJoin()...)
	}
	return out
}

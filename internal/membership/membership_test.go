package membership

import (
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// net is a tiny synchronous test network: it pumps every Send action to all
// protocols (including the sender's loopback) until no new actions appear,
// collecting Form actions per process.
type net struct {
	t      *testing.T
	procs  map[model.ProcessID]*Protocol
	formed map[model.ProcessID][]model.Configuration
	// cut(from, to) drops a message.
	cut func(from, to model.ProcessID) bool
}

func newNet(t *testing.T, ids ...model.ProcessID) *net {
	n := &net{
		t:      t,
		procs:  make(map[model.ProcessID]*Protocol),
		formed: make(map[model.ProcessID][]model.Configuration),
	}
	for _, id := range ids {
		n.procs[id] = New(id, 0, 0)
	}
	return n
}

func (n *net) ids() []model.ProcessID {
	s := model.NewProcessSet()
	for id := range n.procs {
		s = s.Add(id)
	}
	return s.Members()
}

// dispatch routes one message to one protocol and returns follow-up actions.
func (n *net) dispatch(to model.ProcessID, from model.ProcessID, msg wire.Message) []Action {
	p := n.procs[to]
	switch m := msg.(type) {
	case wire.Join:
		if p.Stale(m) {
			return nil
		}
		return p.OnJoin(m)
	case wire.Commit:
		return p.OnCommit(m)
	case wire.CommitAck:
		return p.OnCommitAck(m)
	case wire.Install:
		return p.OnInstall(m)
	default:
		n.t.Fatalf("unexpected message %T", msg)
		return nil
	}
}

// pump runs actions from each process to quiescence.
func (n *net) pump(pending map[model.ProcessID][]Action) {
	type env struct {
		from model.ProcessID
		msg  wire.Message
	}
	var queue []env
	drain := func(from model.ProcessID, acts []Action) {
		for _, a := range acts {
			switch act := a.(type) {
			case Send:
				queue = append(queue, env{from: from, msg: act.Msg})
			case Form:
				n.formed[from] = append(n.formed[from], act.Ring)
			}
		}
	}
	for id, acts := range pending {
		drain(id, acts)
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, to := range n.ids() {
			if n.cut != nil && n.cut(e.from, to) {
				continue
			}
			drain(to, n.dispatch(to, e.from, e.msg))
		}
	}
}

func (n *net) gatherAll() {
	pending := make(map[model.ProcessID][]Action)
	for id, p := range n.procs {
		pending[id] = p.StartGather()
	}
	n.pump(pending)
	// Fire join timeouts for any process still gathering (e.g. alone in
	// its component), as the node's timer would.
	pending = make(map[model.ProcessID][]Action)
	for id, p := range n.procs {
		if p.Phase() == Gather {
			pending[id] = p.OnJoinTimeout()
		}
	}
	n.pump(pending)
}

func TestAllProcessesFormSameRing(t *testing.T) {
	n := newNet(t, "p", "q", "r")
	n.gatherAll()
	var ring model.Configuration
	for _, id := range n.ids() {
		fs := n.formed[id]
		if len(fs) != 1 {
			t.Fatalf("%s formed %d rings, want 1", id, len(fs))
		}
		if ring.ID.IsZero() {
			ring = fs[0]
		} else if fs[0].ID != ring.ID || !fs[0].Members.Equal(ring.Members) {
			t.Fatalf("%s formed %v, others formed %v", id, fs[0], ring)
		}
	}
	if !ring.Members.Equal(model.NewProcessSet("p", "q", "r")) {
		t.Fatalf("ring members %v", ring.Members)
	}
	if ring.ID.Rep != "p" {
		t.Fatalf("representative %s, want p (lowest)", ring.ID.Rep)
	}
}

func TestSingletonForms(t *testing.T) {
	n := newNet(t, "p")
	n.gatherAll()
	if len(n.formed["p"]) != 1 {
		t.Fatalf("singleton formed %v", n.formed["p"])
	}
	if !n.formed["p"][0].Members.Equal(model.NewProcessSet("p")) {
		t.Fatalf("singleton ring %v", n.formed["p"][0])
	}
}

func TestPartitionedComponentsFormSeparateRings(t *testing.T) {
	n := newNet(t, "p", "q", "r", "s")
	left := model.NewProcessSet("p", "q")
	n.cut = func(from, to model.ProcessID) bool {
		return left.Contains(from) != left.Contains(to)
	}
	n.gatherAll()
	if !n.formed["p"][0].Members.Equal(left) {
		t.Fatalf("p's ring %v, want {p,q}", n.formed["p"][0])
	}
	if !n.formed["r"][0].Members.Equal(model.NewProcessSet("r", "s")) {
		t.Fatalf("r's ring %v, want {r,s}", n.formed["r"][0])
	}
	if n.formed["p"][0].ID == n.formed["r"][0].ID {
		t.Fatal("two components must form rings with distinct identifiers")
	}
}

func TestRingSeqAdvancesAcrossGathers(t *testing.T) {
	n := newNet(t, "p", "q")
	n.gatherAll()
	first := n.formed["p"][0]
	for _, p := range n.procs {
		p.SetCurrent(first)
	}
	n.formed = make(map[model.ProcessID][]model.Configuration)
	n.gatherAll()
	second := n.formed["p"][0]
	if second.ID.Seq <= first.ID.Seq {
		t.Fatalf("second ring seq %d not above first %d", second.ID.Seq, first.ID.Seq)
	}
}

func TestJoinTimeoutExcludesSilentProcess(t *testing.T) {
	n := newNet(t, "p", "q")
	p := n.procs["p"]
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 1})
	// Now q goes silent: never acks, never re-joins. Timeout should
	// drop q... q *did* join. Drop scenario: r appears in q's Alive but
	// never joins.
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 2})
	acts := p.OnJoinTimeout()
	// r is expected but silent: p must declare r failed and rebroadcast.
	foundJoin := false
	for _, a := range acts {
		if s, ok := a.(Send); ok {
			if j, ok := s.Msg.(wire.Join); ok {
				foundJoin = true
				if !model.NewProcessSet(j.Failed...).Contains("r") {
					t.Fatalf("timeout join %v should fail r", j)
				}
			}
		}
	}
	if !foundJoin {
		t.Fatal("timeout should rebroadcast join")
	}
}

func TestStaleJoinSuppressed(t *testing.T) {
	p := New("p", 0, 0)
	ring := model.Configuration{ID: model.RegularID(5, "p"), Members: model.NewProcessSet("p", "q")}
	p.SetCurrent(ring)
	stale := wire.Join{Sender: "q", MaxRingSeq: 3, Attempt: 9}
	if !p.Stale(stale) {
		t.Fatal("join from member with old ring seq should be stale")
	}
	fresh := wire.Join{Sender: "q", MaxRingSeq: 5, Attempt: 9}
	if p.Stale(fresh) {
		t.Fatal("join with current ring seq is not stale")
	}
	foreign := wire.Join{Sender: "z", MaxRingSeq: 0, Attempt: 1}
	if p.Stale(foreign) {
		t.Fatal("join from non-member is never stale")
	}
}

func TestDuplicateJoinIgnored(t *testing.T) {
	p := New("p", 0, 0)
	p.StartGather()
	j := wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 3}
	first := p.OnJoin(j)
	if len(first) == 0 {
		t.Fatal("first join should produce actions")
	}
	if again := p.OnJoin(j); again != nil {
		t.Fatalf("duplicate join produced %v", again)
	}
}

func TestCommitTimeoutRestartsGather(t *testing.T) {
	n := newNet(t, "p", "q")
	p := n.procs["p"]
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 1})
	if p.Phase() != Commit {
		t.Fatalf("phase %v, want commit after consensus", p.Phase())
	}
	acts := p.OnCommitTimeout()
	if p.Phase() != Gather {
		t.Fatalf("phase %v after commit timeout, want gather", p.Phase())
	}
	if len(acts) == 0 {
		t.Fatal("commit timeout should rebroadcast join")
	}
}

func TestHearsayCannotFailSelf(t *testing.T) {
	p := New("p", 0, 0)
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"q"}, Failed: []model.ProcessID{"p"}, Attempt: 1})
	// p must still propose itself.
	found := false
	for _, a := range p.broadcastJoin() {
		if s, ok := a.(Send); ok {
			if j, ok := s.Msg.(wire.Join); ok {
				if model.NewProcessSet(j.Alive...).Contains("p") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("process removed itself on hearsay")
	}
}

func TestOwnInstallLoopbackIgnored(t *testing.T) {
	n := newNet(t, "p")
	n.gatherAll()
	p := n.procs["p"]
	ring := n.formed["p"][0]
	// A duplicated Install for the formed ring must not restart gather.
	acts := p.OnInstall(wire.Install{NewRing: ring.ID, Members: ring.Members.Members()})
	if len(acts) != 0 {
		t.Fatalf("duplicate install produced %v", acts)
	}
	if p.Phase() != Idle {
		t.Fatalf("phase %v, want idle", p.Phase())
	}
}

func TestDistinctRepsProposeDistinctRingIDs(t *testing.T) {
	// Same seq from different representatives must still differ.
	a := model.RegularID(6, "a")
	b := model.RegularID(6, "s")
	if a == b {
		t.Fatal("ring IDs must incorporate the representative")
	}
}

func TestConsensusRequiresExactSetMatch(t *testing.T) {
	p := New("p", 0, 0)
	p.StartGather()
	// q proposes {p,q,r}; p has only heard q. No consensus yet.
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 1})
	if p.Phase() != Gather {
		t.Fatalf("phase %v, want still gather", p.Phase())
	}
	// r joins with the matching view; q re-joins with matching view.
	p.OnJoin(wire.Join{Sender: "r", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 1})
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 2})
	if p.Phase() != Commit {
		t.Fatalf("phase %v, want commit", p.Phase())
	}
	if p.Proposed().ID.Rep != "p" {
		t.Fatalf("proposed rep %v, want p", p.Proposed().ID)
	}
}

func TestMergeAfterInstallTriggersNewGather(t *testing.T) {
	n := newNet(t, "p", "q")
	n.cut = func(from, to model.ProcessID) bool { return from != to }
	n.gatherAll() // each forms singleton
	for id, p := range n.procs {
		p.SetCurrent(n.formed[id][0])
	}
	n.formed = make(map[model.ProcessID][]model.Configuration)
	n.cut = nil
	// q's join reaches p: p should gather and both should form {p,q}.
	n.pump(map[model.ProcessID][]Action{"q": n.procs["q"].StartGather()})
	if len(n.formed["p"]) != 1 || len(n.formed["q"]) != 1 {
		t.Fatalf("merge formed p=%v q=%v", n.formed["p"], n.formed["q"])
	}
	if !n.formed["p"][0].Members.Equal(model.NewProcessSet("p", "q")) {
		t.Fatalf("merged ring %v", n.formed["p"][0])
	}
}

func TestStaleJoinerExcludedAfterStrikes(t *testing.T) {
	// q joins once with a view that can never reach consensus (it names
	// r, which does not exist) and then falls silent — e.g. it crashed
	// right after its join. After staleStrikes silent timeouts, p must
	// declare q failed and move on.
	p := New("p", 0, 0)
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 1})
	var excluded bool
	for i := 0; i < staleStrikes+1 && !excluded; i++ {
		for _, a := range p.OnJoinTimeout() {
			if s, ok := a.(Send); ok {
				if j, ok := s.Msg.(wire.Join); ok {
					if model.NewProcessSet(j.Failed...).Contains("q") {
						excluded = true
					}
				}
			}
		}
	}
	if !excluded {
		t.Fatal("silent disagreeing joiner was never excluded")
	}
}

func TestLiveTrafficPreventsStaleExclusion(t *testing.T) {
	p := New("p", 0, 0)
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q", "r"}, Attempt: 1})
	for i := 0; i < staleStrikes*2; i++ {
		p.NoteTraffic("q") // q is alive: its acks/tokens keep flowing
		for _, a := range p.OnJoinTimeout() {
			if s, ok := a.(Send); ok {
				if j, ok := s.Msg.(wire.Join); ok {
					if model.NewProcessSet(j.Failed...).Contains("q") {
						t.Fatal("live process excluded despite traffic")
					}
				}
			}
		}
	}
}

func TestAgreeingQuietJoinerNotExcluded(t *testing.T) {
	// q's view matches the candidate: even if silent, it does not block
	// consensus and must not be excluded.
	p := New("p", 0, 0)
	p.StartGather()
	p.OnJoin(wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 1})
	for i := 0; i < staleStrikes*2; i++ {
		for _, a := range p.OnJoinTimeout() {
			if s, ok := a.(Send); ok {
				if j, ok := s.Msg.(wire.Join); ok {
					if model.NewProcessSet(j.Failed...).Contains("q") {
						t.Fatal("agreeing quiet joiner excluded")
					}
				}
			}
		}
	}
}

package chaos

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/node"
)

// TestChaosSmoke is the fixed-seed battery run by CI (including under the
// race detector): a spread of adversarial schedules across cluster sizes,
// every one of which the current stack must survive without a single
// specification violation.
func TestChaosSmoke(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, GenConfig{})
			res := Run(p)
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d violates the specifications:\n%s\nprogram:\n%s",
					seed, renderViolations(res.Violations), p)
			}
			if res.Events == 0 {
				t.Fatalf("seed %d produced an empty history; the schedule exercised nothing", seed)
			}
		})
	}
}

// TestChaosSoak is the long battery, gated behind CHAOS_SOAK so ordinary
// test runs stay fast: CHAOS_SOAK=200 runs seeds 1..200.
func TestChaosSoak(t *testing.T) {
	n := 0
	fmt.Sscanf(os.Getenv("CHAOS_SOAK"), "%d", &n)
	if n <= 0 {
		t.Skip("set CHAOS_SOAK=<seeds> to run the chaos soak")
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, GenConfig{})
			if res := Run(p); len(res.Violations) != 0 {
				t.Fatalf("seed %d violates the specifications:\n%s\nprogram:\n%s",
					seed, renderViolations(res.Violations), p)
			}
		})
	}
}

// TestGenerateDeterministic: the same seed yields the identical program.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(99, GenConfig{})
	b := Generate(99, GenConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}
	if a.FaultCount() == 0 {
		t.Fatal("generated program contains no fault events")
	}
}

// TestRunDeterministicReplay: executing a program twice produces identical
// results — the property every minimized reproducer relies on.
func TestRunDeterministicReplay(t *testing.T) {
	p := Generate(7, GenConfig{})
	res, same := Replay(p)
	if !same {
		t.Fatal("two executions of the same program diverged")
	}
	if res.Events == 0 {
		t.Fatal("replay produced an empty history")
	}
}

// TestProgramJSONRoundTrip: programs survive the serialisation used by
// evschaos -replay.
func TestProgramJSONRoundTrip(t *testing.T) {
	p := Generate(13, GenConfig{})
	b, err := p.EncodeJSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeJSON(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("program changed across the JSON round trip")
	}
	if _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Fatal("malformed JSON decoded without error")
	}
}

// plantOrderingBug installs a deliberate protocol bug via the test-only
// hook: once any process has failed, the first subsequent application
// delivery at the lowest process is traced twice — a duplicate delivery,
// violating Specification 1.4. The bug fires only in schedules containing
// a crash, so minimization must retain a crash and a send.
func plantOrderingBug() (restore func()) {
	prev := BugHook
	BugHook = func(c *harness.Cluster) {
		victim := c.IDs()[0]
		injected := false
		c.OnDeliver = func(p model.ProcessID, d node.Delivery) {
			if injected || p != victim {
				return
			}
			crashed := false
			for _, e := range c.History.Events() {
				if e.Type == model.EventFail {
					crashed = true
					break
				}
			}
			if !crashed {
				return
			}
			injected = true
			c.History.Append(model.Event{
				Type:    model.EventDeliver,
				Proc:    p,
				Config:  d.Config.ID,
				Members: d.Config.Members,
				Msg:     d.Msg,
				Service: d.Service,
			})
		}
	}
	return func() { BugHook = prev }
}

// TestChaosCatchesAndMinimizesInjectedBug is the end-to-end acceptance
// test for the engine: an intentionally injected ordering bug must be
// caught by some generated schedule, minimized by delta debugging to a
// reproducer of at most 10 fault events, and the reproducer must replay
// deterministically, still exhibiting the violation.
func TestChaosCatchesAndMinimizesInjectedBug(t *testing.T) {
	defer plantOrderingBug()()

	var failing Program
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed, GenConfig{})
		if res := Run(p); len(res.Violations) != 0 {
			failing, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no generated schedule triggered the injected bug within 20 seeds")
	}

	minimized := Minimize(failing, MinimizeOptions{})
	if got := minimized.FaultCount(); got > 10 {
		t.Fatalf("minimized reproducer has %d fault events, want <= 10:\n%s", got, minimized)
	}
	if len(minimized.Events) >= len(failing.Events) {
		t.Fatalf("minimization removed nothing (%d -> %d events)",
			len(failing.Events), len(minimized.Events))
	}
	// The reproducer must still need a crash (the bug's trigger) and a
	// send (the duplicated delivery).
	haveCrash, haveSend := false, false
	for _, e := range minimized.Events {
		switch e.Op {
		case OpCrash:
			haveCrash = true
		case OpSend:
			haveSend = true
		}
	}
	if !haveCrash || !haveSend {
		t.Fatalf("minimized reproducer lost the bug's trigger (crash=%v send=%v):\n%s",
			haveCrash, haveSend, minimized)
	}

	res, same := Replay(minimized)
	if !same {
		t.Fatalf("minimized reproducer is not deterministic:\n%s", minimized)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("minimized reproducer no longer violates the specifications:\n%s", minimized)
	}
}

// TestMinimizeLeavesConformingProgramAlone: a clean program comes back
// unchanged.
func TestMinimizeLeavesConformingProgramAlone(t *testing.T) {
	p := Generate(3, GenConfig{})
	if res := Run(p); len(res.Violations) != 0 {
		t.Skip("seed 3 unexpectedly failing; covered by TestChaosSmoke")
	}
	q := Minimize(p, MinimizeOptions{MaxRuns: 10})
	if !reflect.DeepEqual(p, q) {
		t.Fatal("Minimize altered a conforming program")
	}
}

// TestMinimizeRespectsRunBudget: the search stops at MaxRuns.
func TestMinimizeRespectsRunBudget(t *testing.T) {
	defer plantOrderingBug()()
	var failing Program
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed, GenConfig{})
		if res := Run(p); len(res.Violations) != 0 {
			failing = p
			break
		}
	}
	if len(failing.Events) == 0 {
		t.Skip("no failing schedule found")
	}
	runs := 0
	Minimize(failing, MinimizeOptions{
		MaxRuns: 5,
		Failing: func(q Program) bool {
			runs++
			return len(Run(q).Violations) > 0
		},
	})
	if runs > 5 {
		t.Fatalf("minimizer executed %d runs, budget was 5", runs)
	}
}

// TestHealTailSettlesEveryPrefix: any prefix of a generated schedule (as
// the minimizer produces) still ends with a settled, checkable execution —
// the invariant minimization correctness rests on.
func TestHealTailSettlesEveryPrefix(t *testing.T) {
	p := Generate(11, GenConfig{})
	for _, cut := range []int{0, 1, len(p.Events) / 2} {
		q := p
		q.Events = p.Events[:cut]
		res := Run(q)
		if len(res.Violations) != 0 {
			t.Fatalf("prefix of %d events violates the specifications:\n%s",
				cut, renderViolations(res.Violations))
		}
	}
}

// TestStableFaultsActuallyInjected: across the smoke seeds, at least one
// schedule must exercise the stable-storage corruption path, or the fault
// model is dead code. Corruption must both be scheduled (a crash with a
// corrupt mode) and materialize (an uncommitted record above the safe
// bound), so the sweep is wider than the other smoke tests.
func TestStableFaultsActuallyInjected(t *testing.T) {
	var corruptions uint64
	var filtered, blocked uint64
	for seed := int64(1); seed <= 30; seed++ {
		res := Run(Generate(seed, GenConfig{}))
		corruptions += res.Harness.Corruptions
		filtered += res.Net.Filtered
		blocked += res.Net.Blocked
	}
	if corruptions == 0 {
		t.Error("no stable-storage corruption was injected across 12 seeds")
	}
	if filtered == 0 {
		t.Error("no message-class loss occurred across 12 seeds")
	}
	if blocked == 0 {
		t.Error("no one-way cut dropped a packet across 12 seeds")
	}
}

package chaos

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/node"
)

// soakSeeds returns the soak seed count from CHAOS_SOAK — the single
// environment gate for every long battery in the repo (this package and
// internal/harness share it; see internal/harness/soak_test.go). Unset
// means def; def <= 0 marks the soak opt-in and skips the test. A
// malformed value fails loudly instead of silently running nothing, which
// is what the old fmt.Sscanf parsing did on typos like CHAOS_SOAK=2OO.
func soakSeeds(t *testing.T, def int) int {
	t.Helper()
	raw := os.Getenv("CHAOS_SOAK")
	if raw == "" {
		if def <= 0 {
			t.Skip("set CHAOS_SOAK=<seeds> to run this soak")
		}
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		t.Fatalf("CHAOS_SOAK=%q: want a positive integer seed count", raw)
	}
	return n
}

// TestChaosSmoke is the fixed-seed battery run by CI (including under the
// race detector): a spread of adversarial schedules across cluster sizes,
// every one of which the current stack must survive without a single
// specification violation.
func TestChaosSmoke(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, GenConfig{})
			res := Run(p)
			if len(res.Violations) != 0 {
				t.Fatalf("seed %d violates the specifications:\n%s\nprogram:\n%s",
					seed, renderViolations(res.Violations), p)
			}
			if res.Events == 0 {
				t.Fatalf("seed %d produced an empty history; the schedule exercised nothing", seed)
			}
		})
	}
}

// TestChaosSoak is the long battery, gated behind CHAOS_SOAK so ordinary
// test runs stay fast: CHAOS_SOAK=200 runs seeds 1..200.
func TestChaosSoak(t *testing.T) {
	n := soakSeeds(t, 0)
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := Generate(seed, GenConfig{})
			if res := Run(p); len(res.Violations) != 0 {
				t.Fatalf("seed %d violates the specifications:\n%s\nprogram:\n%s",
					seed, renderViolations(res.Violations), p)
			}
		})
	}
}

// TestGenerateDeterministic: the same seed yields the identical program.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(99, GenConfig{})
	b := Generate(99, GenConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}
	if a.FaultCount() == 0 {
		t.Fatal("generated program contains no fault events")
	}
}

// TestRunDeterministicReplay: executing a program twice produces identical
// results — the property every minimized reproducer relies on.
func TestRunDeterministicReplay(t *testing.T) {
	p := Generate(7, GenConfig{})
	res, same := Replay(p)
	if !same {
		t.Fatal("two executions of the same program diverged")
	}
	if res.Events == 0 {
		t.Fatal("replay produced an empty history")
	}
}

// TestProgramJSONRoundTrip: programs survive the serialisation used by
// evschaos -replay.
func TestProgramJSONRoundTrip(t *testing.T) {
	p := Generate(13, GenConfig{})
	b, err := p.EncodeJSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeJSON(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("program changed across the JSON round trip")
	}
	if _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Fatal("malformed JSON decoded without error")
	}
}

// plantOrderingBug installs a deliberate protocol bug via the test-only
// hook: once any process has failed, the first subsequent application
// delivery at the lowest process is traced twice — a duplicate delivery,
// violating Specification 1.4. The bug fires only in schedules containing
// a crash, so minimization must retain a crash and a send.
func plantOrderingBug() (restore func()) {
	prev := BugHook
	BugHook = func(c *harness.Cluster) {
		victim := c.IDs()[0]
		injected := false
		c.OnDeliver = func(p model.ProcessID, d node.Delivery) {
			if injected || p != victim {
				return
			}
			crashed := false
			for _, e := range c.History.Events() {
				if e.Type == model.EventFail {
					crashed = true
					break
				}
			}
			if !crashed {
				return
			}
			injected = true
			c.History.Append(model.Event{
				Type:    model.EventDeliver,
				Proc:    p,
				Config:  d.Config.ID,
				Members: d.Config.Members,
				Msg:     d.Msg,
				Service: d.Service,
			})
		}
	}
	return func() { BugHook = prev }
}

// TestChaosCatchesAndMinimizesInjectedBug is the end-to-end acceptance
// test for the engine: an intentionally injected ordering bug must be
// caught by some generated schedule, minimized by delta debugging to a
// reproducer of at most 10 fault events, and the reproducer must replay
// deterministically, still exhibiting the violation.
func TestChaosCatchesAndMinimizesInjectedBug(t *testing.T) {
	defer plantOrderingBug()()

	var failing Program
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed, GenConfig{})
		if res := Run(p); len(res.Violations) != 0 {
			failing, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no generated schedule triggered the injected bug within 20 seeds")
	}

	minimized := Minimize(failing, MinimizeOptions{})
	if got := minimized.FaultCount(); got > 10 {
		t.Fatalf("minimized reproducer has %d fault events, want <= 10:\n%s", got, minimized)
	}
	if len(minimized.Events) >= len(failing.Events) {
		t.Fatalf("minimization removed nothing (%d -> %d events)",
			len(failing.Events), len(minimized.Events))
	}
	// The reproducer must still need a crash (the bug's trigger) and a
	// send (the duplicated delivery).
	haveCrash, haveSend := false, false
	for _, e := range minimized.Events {
		switch e.Op {
		case OpCrash:
			haveCrash = true
		case OpSend:
			haveSend = true
		}
	}
	if !haveCrash || !haveSend {
		t.Fatalf("minimized reproducer lost the bug's trigger (crash=%v send=%v):\n%s",
			haveCrash, haveSend, minimized)
	}

	res, same := Replay(minimized)
	if !same {
		t.Fatalf("minimized reproducer is not deterministic:\n%s", minimized)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("minimized reproducer no longer violates the specifications:\n%s", minimized)
	}
}

// TestMinimizeLeavesConformingProgramAlone: a clean program comes back
// unchanged.
func TestMinimizeLeavesConformingProgramAlone(t *testing.T) {
	p := Generate(3, GenConfig{})
	if res := Run(p); len(res.Violations) != 0 {
		t.Skip("seed 3 unexpectedly failing; covered by TestChaosSmoke")
	}
	q := Minimize(p, MinimizeOptions{MaxRuns: 10})
	if !reflect.DeepEqual(p, q) {
		t.Fatal("Minimize altered a conforming program")
	}
}

// TestMinimizeRespectsRunBudget: the search stops at MaxRuns.
func TestMinimizeRespectsRunBudget(t *testing.T) {
	defer plantOrderingBug()()
	var failing Program
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed, GenConfig{})
		if res := Run(p); len(res.Violations) != 0 {
			failing = p
			break
		}
	}
	if len(failing.Events) == 0 {
		t.Skip("no failing schedule found")
	}
	runs := 0
	Minimize(failing, MinimizeOptions{
		MaxRuns: 5,
		Failing: func(q Program) bool {
			runs++
			return len(Run(q).Violations) > 0
		},
	})
	if runs > 5 {
		t.Fatalf("minimizer executed %d runs, budget was 5", runs)
	}
}

// TestHealTailSettlesEveryPrefix: any prefix of a generated schedule (as
// the minimizer produces) still ends with a settled, checkable execution —
// the invariant minimization correctness rests on.
func TestHealTailSettlesEveryPrefix(t *testing.T) {
	p := Generate(11, GenConfig{})
	for _, cut := range []int{0, 1, len(p.Events) / 2} {
		q := p
		q.Events = p.Events[:cut]
		res := Run(q)
		if len(res.Violations) != 0 {
			t.Fatalf("prefix of %d events violates the specifications:\n%s",
				cut, renderViolations(res.Violations))
		}
	}
}

// TestStableFaultsActuallyInjected: across the smoke seeds, at least one
// schedule must exercise the stable-storage corruption path, or the fault
// model is dead code. Corruption must both be scheduled (a crash with a
// corrupt mode) and materialize (an uncommitted record above the safe
// bound), so the sweep is wider than the other smoke tests.
func TestStableFaultsActuallyInjected(t *testing.T) {
	var corruptions uint64
	var filtered, blocked uint64
	for seed := int64(1); seed <= 30; seed++ {
		res := Run(Generate(seed, GenConfig{}))
		corruptions += res.Harness.Corruptions
		filtered += res.Net.Filtered
		blocked += res.Net.Blocked
	}
	if corruptions == 0 {
		t.Error("no stable-storage corruption was injected across 30 seeds")
	}
	if filtered == 0 {
		t.Error("no message-class loss occurred across 30 seeds")
	}
	if blocked == 0 {
		t.Error("no one-way cut dropped a packet across 30 seeds")
	}
}

// TestSelfStabilizationFaultsMaterialize: across the default seed
// battery, every transient-corruption mode of the self-stabilization
// fault model must not only be scheduled by the generator but actually
// materialize (change state), per the harness's per-mode counters —
// otherwise a mode is dead code and the convergence verdicts prove
// nothing about it.
func TestSelfStabilizationFaultsMaterialize(t *testing.T) {
	var sum harness.Stats
	for seed := int64(1); seed <= 40; seed++ {
		s := Run(Generate(seed, GenConfig{})).Harness
		sum.SeqWraps += s.SeqWraps
		sum.RingRegressions += s.RingRegressions
		sum.ObligationPoisons += s.ObligationPoisons
		sum.LogFlips += s.LogFlips
		sum.Perturbations += s.Perturbations
	}
	if sum.SeqWraps == 0 {
		t.Error("no sender-sequence wrap materialized across 40 seeds")
	}
	if sum.RingRegressions == 0 {
		t.Error("no ring-sequence regression materialized across 40 seeds")
	}
	if sum.ObligationPoisons == 0 {
		t.Error("no obligation poisoning materialized across 40 seeds")
	}
	if sum.LogFlips == 0 {
		t.Error("no log bit flip materialized across 40 seeds")
	}
	if sum.Perturbations == 0 {
		t.Error("no live perturbation materialized across 40 seeds")
	}
}

// TestRunStreamMatchesRun: the streaming execution is the same execution —
// attaching the inline checker and dropping the history must not perturb
// the schedule. Event counts and activity counters must match the batch
// runner exactly, and a conforming run must be certified violation-free
// with zero streaming-vs-reference disagreements.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			// Heavy traffic so the run spans many certification windows
			// (the default smoke programs emit only ~100 events, which a
			// single final certification would cover).
			p := Generate(seed, GenConfig{Sends: 600})
			batch := Run(p)
			stream := RunStream(p, StreamConfig{CheckEvery: 64, OracleEvery: 2})
			if stream.Events != uint64(batch.Events) {
				t.Errorf("event counts diverged: stream %d, batch %d", stream.Events, batch.Events)
			}
			if stream.Net != batch.Net || stream.Harness != batch.Harness {
				t.Error("activity counters diverged between stream and batch execution")
			}
			if len(batch.Violations) != 0 {
				t.Skipf("seed %d not conforming under batch checking; covered by TestChaosSmoke", seed)
			}
			if len(stream.Violations) != 0 {
				t.Errorf("streaming checker reported violations on a conforming run:\n%s",
					renderViolations(stream.Violations))
			}
			if len(stream.Disagreements) != 0 {
				t.Errorf("streaming and reference checkers disagreed:\n%v", stream.Disagreements)
			}
			if stream.Stream.OracleWindows == 0 {
				t.Error("no oracle window was sampled; the differential oracle is dead code")
			}
			if stream.Stream.PeakRetained == 0 || stream.Stream.Pruned == 0 {
				t.Errorf("stream accounting implausible: %+v", stream.Stream)
			}
		})
	}
}

// TestRunStreamConverges: every seed of the default battery — all of
// which schedule transient corruption with positive probability — must
// reach a converged verdict: a single final configuration, no oracle
// disagreement, and any violation anchored before the convergence
// boundary.
func TestRunStreamConverges(t *testing.T) {
	sawFault, sawInstalls := false, false
	for seed := int64(1); seed <= 8; seed++ {
		p := Generate(seed, GenConfig{})
		res := RunStream(p, StreamConfig{})
		if !res.Converged {
			t.Errorf("seed %d did not converge: %s\nprogram:\n%s", seed, res, p)
		}
		if res.LastFault > 0 {
			sawFault = true
			if res.Installs > 0 {
				sawInstalls = true
			}
		}
	}
	if !sawFault {
		t.Error("no seed recorded a corrupting fault; the convergence machinery is untested")
	}
	if !sawInstalls {
		t.Error("no seed installed a configuration after its last fault")
	}
}

// TestStreamMillionEvents is the memory-boundedness acceptance run:
// one continuous heavy-traffic chaos program whose history exceeds a
// million events, certified entirely inline. The peak retained window
// must stay bounded by protocol concurrency within a certification
// interval — not grow with run length — and the verdict must converge.
// At roughly ninety seconds of wall clock it is soak-gated like
// TestChaosSoak (set CHAOS_SOAK to enable; the count is ignored beyond
// gating — one program is the claim). The same run is reproducible from
// the command line:
//
//	evschaos -stream -seed 1 -sends 160000 -duration 80s -heal-every 2s \
//	         -check-every 4096 -oracle-every 32
//
// The heal boundaries are what make the memory claim testable at this
// scale: without them a single unlucky crash holds configuration
// families open for the rest of the run and the retained window grows
// with run length (see GenConfig.HealEvery). The long virtual window
// keeps the submission rate near what the ring sustains.
func TestStreamMillionEvents(t *testing.T) {
	soakSeeds(t, 0)
	p := Generate(1, GenConfig{
		Sends: 160000, Duration: 80 * time.Second, HealEvery: 2 * time.Second,
	})
	res := RunStream(p, StreamConfig{CheckEvery: 4096, OracleEvery: 32})
	t.Logf("million-event soak: %s", res)
	if res.Events < 1_000_000 {
		t.Fatalf("run produced %d events, want >= 1M (generator drift?)", res.Events)
	}
	if !res.Converged {
		t.Fatalf("million-event run did not converge: %s", res)
	}
	// ~Flat memory: the window must hold a few certification intervals
	// at most, regardless of the million-event total.
	if res.Stream.PeakRetained > 8*4096 {
		t.Fatalf("peak retained window %d events on a %d-event run; pruning is not bounding memory",
			res.Stream.PeakRetained, res.Events)
	}
	if res.Stream.OracleWindows == 0 {
		t.Fatal("the reference oracle never sampled a window")
	}
}

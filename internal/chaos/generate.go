package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
)

// GenConfig tunes the schedule generator. The zero value is replaced by
// Defaults.
type GenConfig struct {
	// Procs is the cluster size (default 4-6, seed-dependent).
	Procs int
	// Duration is the fault-injection window (default 1s).
	Duration time.Duration
	// Settle is the post-heal quiet period (default 2.5s).
	Settle time.Duration
	// Faults is the number of fault events to inject (default
	// seed-dependent, 8-20).
	Faults int
	// Sends is the number of client submissions (default 16).
	Sends int
	// HealEvery, when positive, inserts a full heal boundary (merge,
	// heal links, clear drops, recover everyone) every HealEvery of
	// virtual time. Faults then damage the system only in bounded
	// episodes — the transient-fault shape the self-stabilization model
	// assumes — which in turn bounds how long the streaming checker's
	// configuration families stay open, and with them its retained
	// window: without boundaries a single unlucky crash can hold
	// families open for the rest of the run, growing the window with
	// run length instead of protocol concurrency.
	HealEvery time.Duration
}

// withDefaults fills unset fields; seed-dependent defaults come from rng.
func (g GenConfig) withDefaults(rng *rand.Rand) GenConfig {
	if g.Procs <= 0 {
		g.Procs = 4 + rng.Intn(3)
	}
	if g.Duration <= 0 {
		g.Duration = time.Second
	}
	if g.Settle <= 0 {
		g.Settle = 2500 * time.Millisecond
	}
	if g.Faults <= 0 {
		g.Faults = 8 + rng.Intn(13)
	}
	if g.Sends <= 0 {
		g.Sends = 16
	}
	return g
}

// kindTargets are the wire message classes the generator aims loss at:
// the ordering token, the membership protocol, and the recovery exchange —
// each one a distinct liveness artery of the stack.
var kindTargets = [][]string{
	{"token"},
	{"join"},
	{"commit", "commit_ack"},
	{"install"},
	{"exchange"},
	{"recovery_done"},
	{"token", "join"},
	{"data"},
	{"data_batch"},
}

// Generate derives a deterministic adversarial program from the seed. The
// same (seed, cfg) pair always yields the same program.
func Generate(seed int64, cfg GenConfig) Program {
	rng := rand.New(rand.NewSource(seed))
	cfg = cfg.withDefaults(rng)

	ids := make([]model.ProcessID, cfg.Procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i+1))
	}
	p := Program{
		Seed:    seed,
		Procs:   cfg.Procs,
		Horizon: cfg.Duration,
		Settle:  cfg.Settle,
	}

	// Fault events. The generator tracks which processes it has crashed
	// so recoveries target down processes and crash storms cannot
	// silently no-op, but the executor is robust to any event sequence
	// (the minimizer produces arbitrary subsets).
	var down []model.ProcessID
	at := func() time.Duration {
		// Faults start after the first membership has formed (~100ms)
		// and stop at the horizon.
		return 100*time.Millisecond + time.Duration(rng.Int63n(int64(cfg.Duration-100*time.Millisecond)))
	}
	pick := func() model.ProcessID { return ids[rng.Intn(len(ids))] }
	for i := 0; i < cfg.Faults; i++ {
		switch rng.Intn(11) {
		case 0, 1: // crash, sometimes with storage corruption
			id := pick()
			e := Event{At: at(), Op: OpCrash, Proc: id}
			switch rng.Intn(8) {
			case 0:
				e.Mode = harness.CorruptTornWrite
			case 1:
				e.Mode = harness.CorruptLostSuffix
				e.N = 1 + rng.Intn(4)
			case 2:
				e.Mode = harness.CorruptSeqWrap
			case 3:
				e.Mode = harness.CorruptRingSeqRegress
			case 4:
				e.Mode = harness.CorruptObligations
				e.N = 1 + rng.Intn(3)
			case 5:
				e.Mode = harness.CorruptLogFlip
				e.N = 1 + rng.Intn(3)
			}
			down = append(down, id)
			p.Events = append(p.Events, e)
		case 2, 3: // recover a crashed process (or a random one)
			id := pick()
			if len(down) > 0 {
				id = down[0]
				down = down[1:]
			}
			p.Events = append(p.Events, Event{At: at(), Op: OpRecover, Proc: id})
		case 4: // symmetric partition into 2-3 groups
			p.Events = append(p.Events, Event{At: at(), Op: OpPartition, Groups: split(rng, ids)})
		case 5: // merge (flapping pressure together with partitions)
			p.Events = append(p.Events, Event{At: at(), Op: OpMerge})
		case 6: // asymmetric one-way cut
			from, to := bisect(rng, ids)
			p.Events = append(p.Events, Event{At: at(), Op: OpOneWay, From: from, To: to})
		case 7: // targeted message-class loss, sometimes sender-scoped
			e := Event{At: at(), Op: OpDropKinds, Kinds: kindTargets[rng.Intn(len(kindTargets))]}
			if rng.Intn(2) == 0 {
				e.Proc = pick()
			}
			p.Events = append(p.Events, e)
			// Class loss is lifted later in the window so the run can
			// make progress before the heal tail.
			p.Events = append(p.Events, Event{At: at(), Op: OpClearDrops})
		case 8: // latency/reorder burst, healed later
			p.Events = append(p.Events, Event{
				At: at(), Op: OpDelaySpike,
				Delay:  time.Duration(1+rng.Intn(10)) * time.Millisecond,
				Jitter: time.Duration(1+rng.Intn(20)) * time.Millisecond,
			})
			p.Events = append(p.Events, Event{At: at(), Op: OpHealLinks})
		case 9: // heal everything mid-run
			p.Events = append(p.Events, Event{At: at(), Op: OpMerge})
			p.Events = append(p.Events, Event{At: at(), Op: OpHealLinks})
		case 10: // live in-memory perturbation (self-stabilization model)
			e := Event{At: at(), Op: OpPerturb, Proc: pick()}
			switch rng.Intn(3) {
			case 0:
				e.Mode = harness.CorruptSeqWrap
			case 1:
				e.Mode = harness.CorruptRingSeqRegress
			case 2:
				e.Mode = harness.CorruptObligations
				e.N = 1 + rng.Intn(3)
			}
			p.Events = append(p.Events, e)
		}
	}

	// Periodic heal boundaries (see GenConfig.HealEvery). Recovering an
	// already-operational process is a no-op, so boundaries compose with
	// whatever fault subset survives minimization.
	if cfg.HealEvery > 0 {
		for t := cfg.HealEvery; t < cfg.Duration; t += cfg.HealEvery {
			p.Events = append(p.Events,
				Event{At: t, Op: OpMerge},
				Event{At: t, Op: OpHealLinks},
				Event{At: t, Op: OpClearDrops})
			for _, id := range ids {
				p.Events = append(p.Events, Event{At: t, Op: OpRecover, Proc: id})
			}
		}
	}

	// Client traffic throughout the window, alternating services.
	for i := 0; i < cfg.Sends; i++ {
		svc := model.Safe
		if i%3 == 2 {
			svc = model.Agreed
		}
		p.Events = append(p.Events, Event{
			At:      at(),
			Op:      OpSend,
			Proc:    pick(),
			Payload: fmt.Sprintf("m%d", i),
			Service: svc,
		})
	}

	sortEvents(p.Events)
	return p
}

// split partitions ids into 2 or 3 random non-empty groups.
func split(rng *rand.Rand, ids []model.ProcessID) [][]model.ProcessID {
	k := 2 + rng.Intn(2)
	if k > len(ids) {
		k = len(ids)
	}
	groups := make([][]model.ProcessID, k)
	perm := rng.Perm(len(ids))
	// Guarantee non-empty groups, then scatter the rest.
	for i := 0; i < k; i++ {
		groups[i] = append(groups[i], ids[perm[i]])
	}
	for _, j := range perm[k:] {
		g := rng.Intn(k)
		groups[g] = append(groups[g], ids[j])
	}
	return groups
}

// bisect draws two disjoint non-empty process sets for a one-way cut.
func bisect(rng *rand.Rand, ids []model.ProcessID) (from, to []model.ProcessID) {
	perm := rng.Perm(len(ids))
	cut := 1 + rng.Intn(len(ids)-1)
	for i, j := range perm {
		if i < cut {
			from = append(from, ids[j])
		} else {
			to = append(to, ids[j])
		}
	}
	return from, to
}

// sortEvents orders events by time, breaking ties by generation order
// (stable sort), so the program listing reads chronologically and the
// executor's scheduling is independent of slice order.
func sortEvents(events []Event) {
	// Insertion sort keeps the dependency surface small and is stable.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j-1].At > events[j].At; j-- {
			events[j-1], events[j] = events[j], events[j-1]
		}
	}
}

package chaos

// Schedule minimization by delta debugging (Zeller & Hildebrandt's ddmin)
// over the fault-event list: given a failing program, find a small subset
// of its events that still violates the specifications. Because every
// program subset is itself a complete deterministic program (the executor
// appends the heal tail unconditionally), the reproducer replays exactly.

// MinimizeOptions tune the search.
type MinimizeOptions struct {
	// MaxRuns bounds the number of candidate executions (default 400).
	MaxRuns int
	// Failing overrides the failure predicate; the default is "Run
	// reports at least one violation".
	Failing func(Program) bool
}

// Minimize shrinks a failing program to a 1-minimal event subset: removing
// any single remaining event makes the failure disappear (or the run
// budget was exhausted first). The returned program shares the original's
// seed, size and horizon, so it replays deterministically.
func Minimize(p Program, opts MinimizeOptions) Program {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 400
	}
	failing := opts.Failing
	if failing == nil {
		failing = func(q Program) bool { return len(Run(q).Violations) > 0 }
	}
	runs := 0
	tryFail := func(events []Event) bool {
		if runs >= opts.MaxRuns {
			return false
		}
		runs++
		q := p
		q.Events = events
		return failing(q)
	}

	events := p.Events
	if !tryFail(events) {
		// Not failing (or budget exhausted immediately): nothing to do.
		return p
	}

	// ddmin: try removing chunks at granularity n, doubling granularity
	// when no chunk (or complement) can be removed.
	n := 2
	for len(events) >= 2 && runs < opts.MaxRuns {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			complement := make([]Event, 0, len(events)-(end-start))
			complement = append(complement, events[:start]...)
			complement = append(complement, events[end:]...)
			if len(complement) > 0 && tryFail(complement) {
				events = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(events) {
				break
			}
			n = min(2*n, len(events))
		}
	}

	// Final 1-minimality pass: greedily drop single events to a fixed
	// point. ddmin alone can leave removable events behind when chunks
	// straddle independent faults.
	for changed := true; changed && runs < opts.MaxRuns; {
		changed = false
		for i := 0; i < len(events); i++ {
			candidate := make([]Event, 0, len(events)-1)
			candidate = append(candidate, events[:i]...)
			candidate = append(candidate, events[i+1:]...)
			if len(candidate) == 0 {
				continue
			}
			if tryFail(candidate) {
				events = candidate
				changed = true
				i--
			}
		}
	}

	p.Events = events
	return p
}

// Package chaos is a randomized adversarial fault injector for the EVS
// stack. The paper's correctness claims (Specifications 1-7, the recovery
// algorithm of Section 3) are quantified over *all* network schedules;
// hand-scripted scenarios exercise only the gentle ones. This package
// generates seeded adversarial schedules — crash/recover storms, flapping
// and asymmetric (one-way) partitions, targeted loss of specific wire
// message classes, latency/reorder bursts, and stable-storage faults at
// crash time — executes them against a deterministic harness.Cluster, and
// judges every execution with the specification checker. When an execution
// violates the specifications, the failing schedule is minimized by delta
// debugging (Minimize) into a small deterministic reproducer.
//
// A Program is pure data (JSON-serialisable), so any failure found by the
// generator can be saved, replayed bit-for-bit, shrunk, and committed as a
// regression scenario.
package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/spec"
)

// Op enumerates schedule event operations.
type Op string

const (
	// OpSend submits a client message at Proc (Payload, Service).
	OpSend Op = "send"
	// OpCrash fails Proc; Mode/N optionally corrupt its stable storage.
	OpCrash Op = "crash"
	// OpRecover restarts Proc with its (possibly corrupted) storage.
	OpRecover Op = "recover"
	// OpPartition splits the network into Groups (symmetric).
	OpPartition Op = "partition"
	// OpMerge reunites all components.
	OpMerge Op = "merge"
	// OpOneWay cuts links From → To directionally.
	OpOneWay Op = "oneway"
	// OpHealLinks removes every directional link rule.
	OpHealLinks Op = "heal_links"
	// OpDropKinds starts dropping wire message classes in Kinds sent by
	// Proc ("" = every sender).
	OpDropKinds Op = "drop_kinds"
	// OpClearDrops removes every message-class loss rule.
	OpClearDrops Op = "clear_drops"
	// OpDelaySpike adds Delay fixed latency plus Jitter reorder spread
	// to every link (heal with OpHealLinks).
	OpDelaySpike Op = "delay_spike"
	// OpPerturb corrupts the in-memory state of the live process Proc
	// between token visits (Mode selects the transient fault, N sizes
	// it) — the self-stabilization fault model, as opposed to the
	// crash-time storage corruption of OpCrash.
	OpPerturb Op = "perturb"
)

// Event is one scheduled fault or traffic action.
type Event struct {
	At time.Duration `json:"at"`
	Op Op            `json:"op"`

	Proc    model.ProcessID     `json:"proc,omitempty"`
	Groups  [][]model.ProcessID `json:"groups,omitempty"`
	From    []model.ProcessID   `json:"from,omitempty"`
	To      []model.ProcessID   `json:"to,omitempty"`
	Kinds   []string            `json:"kinds,omitempty"`
	Mode    harness.Corruption  `json:"mode,omitempty"`
	N       int                 `json:"n,omitempty"`
	Payload string              `json:"payload,omitempty"`
	Service model.Service       `json:"service,omitempty"`
	Delay   time.Duration       `json:"delay,omitempty"`
	Jitter  time.Duration       `json:"jitter,omitempty"`
}

// String renders the event as one line of a runnable scenario.
func (e Event) String() string {
	at := fmt.Sprintf("%8s", e.At)
	switch e.Op {
	case OpSend:
		return fmt.Sprintf("%s send    %s %q %s", at, e.Proc, e.Payload, e.Service)
	case OpCrash:
		if e.Mode != harness.CorruptNone {
			return fmt.Sprintf("%s crash   %s corrupt=%s n=%d", at, e.Proc, e.Mode, e.N)
		}
		return fmt.Sprintf("%s crash   %s", at, e.Proc)
	case OpRecover:
		return fmt.Sprintf("%s recover %s", at, e.Proc)
	case OpPartition:
		var gs []string
		for _, g := range e.Groups {
			gs = append(gs, fmt.Sprintf("%v", g))
		}
		return fmt.Sprintf("%s partition %s", at, strings.Join(gs, " | "))
	case OpMerge:
		return fmt.Sprintf("%s merge", at)
	case OpOneWay:
		return fmt.Sprintf("%s oneway  %v -/-> %v", at, e.From, e.To)
	case OpHealLinks:
		return fmt.Sprintf("%s heal_links", at)
	case OpDropKinds:
		from := string(e.Proc)
		if from == "" {
			from = "*"
		}
		return fmt.Sprintf("%s drop    kinds=%v from=%s", at, e.Kinds, from)
	case OpClearDrops:
		return fmt.Sprintf("%s clear_drops", at)
	case OpDelaySpike:
		return fmt.Sprintf("%s delay_spike +%s jitter=%s", at, e.Delay, e.Jitter)
	case OpPerturb:
		return fmt.Sprintf("%s perturb %s mode=%s n=%d", at, e.Proc, e.Mode, e.N)
	default:
		return fmt.Sprintf("%s %s?", at, e.Op)
	}
}

// Program is a complete deterministic chaos schedule. Executing the same
// program always produces the same history: the cluster, network and
// generator all derive their randomness from Seed, and every action fires
// at a fixed virtual time.
type Program struct {
	// Seed drives the simulated network (and names the program).
	Seed int64 `json:"seed"`
	// Procs is the cluster size.
	Procs int `json:"procs"`
	// Horizon is when fault injection stops: the executor heals every
	// fault and recovers every process at this time.
	Horizon time.Duration `json:"horizon"`
	// Settle is the quiet period after Horizon before the history is
	// judged with Settled specification checks.
	Settle time.Duration `json:"settle"`
	// Events are the scheduled fault and traffic actions.
	Events []Event `json:"events"`
}

// FaultCount returns the number of fault events (everything but traffic).
func (p Program) FaultCount() int {
	n := 0
	for _, e := range p.Events {
		if e.Op != OpSend {
			n++
		}
	}
	return n
}

// String renders the program as a runnable scenario listing.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# chaos program: seed=%d procs=%d horizon=%s settle=%s\n",
		p.Seed, p.Procs, p.Horizon, p.Settle)
	fmt.Fprintf(&b, "# replay: evschaos -replay <this file as JSON>  (or Run in internal/chaos)\n")
	for _, e := range p.Events {
		fmt.Fprintf(&b, "%s\n", e)
	}
	fmt.Fprintf(&b, "%8s heal_links + clear_drops + merge + recover all (executor tail)\n", p.Horizon)
	return b.String()
}

// MarshalJSON/Unmarshal round-trip the program through encoding/json; the
// default struct codecs are sufficient, these named helpers just keep the
// CLI honest about the format.

// EncodeJSON serialises the program.
func (p Program) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodeJSON parses a program.
func DecodeJSON(b []byte) (Program, error) {
	var p Program
	if err := json.Unmarshal(b, &p); err != nil {
		return Program{}, fmt.Errorf("chaos: decode program: %w", err)
	}
	return p, nil
}

// Result is the outcome of executing one program.
type Result struct {
	// Violations are the specification breaches found, empty when the
	// execution conforms.
	Violations []spec.Violation
	// Events is the history length (a cheap execution fingerprint).
	Events int
	// Net and Harness are the activity counters of the run.
	Net     netsim.Stats
	Harness harness.Stats
	// Metrics is the cluster-wide observability snapshot (the cross-scope
	// total), letting reports quantify what protocol work a schedule
	// caused. It is informational and deliberately excluded from
	// determinism comparison (sameResult), which stays pinned to the
	// original fingerprint fields.
	Metrics obs.Snapshot
}

// BugHook, when non-nil, is invoked with every newly built cluster before
// its schedule runs. It exists so tests can plant a deliberate protocol
// bug and verify that the engine detects and minimizes it; it must never
// be set outside tests.
var BugHook func(c *harness.Cluster)

// Run executes the program and judges the resulting history.
func Run(p Program) Result {
	_, r := RunHistory(p)
	return r
}

// RunHistory executes the program and returns both the raw event history
// and the judged result. The history is what the specification checker
// consumed; differential tests feed it to alternative checker
// implementations.
func RunHistory(p Program) ([]model.Event, Result) {
	c, ids := build(p)
	apply(c, ids, p)
	c.Run(p.Horizon + p.Settle)
	return c.History.Events(), Result{
		Violations: c.Check(spec.Options{Settled: true}),
		Events:     c.History.Len(),
		Net:        c.Net.Stats(),
		Harness:    c.Stats(),
		Metrics:    c.MetricsSnapshot().Total,
	}
}

// build constructs the cluster for a program.
func build(p Program) (*harness.Cluster, []model.ProcessID) {
	procs := p.Procs
	if procs <= 0 {
		procs = 4
	}
	c := harness.New(harness.Options{Procs: procs, Seed: p.Seed})
	if BugHook != nil {
		BugHook(c)
	}
	return c, c.IDs()
}

// apply schedules every event plus the heal tail. Event times are clamped
// into [0, Horizon] so a subset produced by the minimizer always settles.
func apply(c *harness.Cluster, ids []model.ProcessID, p Program) {
	valid := make(map[model.ProcessID]bool, len(ids))
	for _, id := range ids {
		valid[id] = true
	}
	for _, e := range p.Events {
		e := e
		at := e.At
		if at < 0 {
			at = 0
		}
		if at > p.Horizon {
			at = p.Horizon
		}
		switch e.Op {
		case OpSend:
			if valid[e.Proc] {
				c.Send(at, e.Proc, e.Payload, e.Service)
			}
		case OpCrash:
			if valid[e.Proc] {
				c.CrashCorrupt(at, e.Proc, e.Mode, e.N)
			}
		case OpRecover:
			if valid[e.Proc] {
				c.Recover(at, e.Proc)
			}
		case OpPartition:
			c.Partition(at, e.Groups...)
		case OpMerge:
			c.Merge(at)
		case OpOneWay:
			c.OneWay(at, e.From, e.To)
		case OpHealLinks:
			c.HealLinks(at)
		case OpDropKinds:
			c.DropKinds(at, e.Proc, netsim.Wildcard, e.Kinds...)
		case OpClearDrops:
			c.ClearKindDrops(at)
		case OpDelaySpike:
			c.DelaySpike(at, e.Delay, e.Jitter)
		case OpPerturb:
			if valid[e.Proc] {
				c.Perturb(at, e.Proc, e.Mode, e.N)
			}
		}
	}
	// Heal tail: whatever subset of events ran, the execution ends with
	// every fault lifted and every process up, so Settled checks apply.
	c.HealLinks(p.Horizon)
	c.ClearKindDrops(p.Horizon)
	c.Merge(p.Horizon)
	for _, id := range ids {
		c.Recover(p.Horizon, id)
	}
}

// Replay returns an independent second execution of the program together
// with whether it matched the first bit-for-bit (violations, history
// length and network counters), which guards reproducers against hidden
// nondeterminism.
func Replay(p Program) (Result, bool) {
	a := Run(p)
	b := Run(p)
	return b, sameResult(a, b)
}

// sameResult compares two results for deterministic equality.
func sameResult(a, b Result) bool {
	if a.Events != b.Events || a.Net != b.Net || a.Harness != b.Harness {
		return false
	}
	if len(a.Violations) != len(b.Violations) {
		return false
	}
	av, bv := renderViolations(a.Violations), renderViolations(b.Violations)
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// renderViolations renders and sorts violations for stable comparison.
func renderViolations(vs []spec.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

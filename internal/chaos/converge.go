// Streaming execution and convergence judgment.
//
// Run executes a program, retains the full history, and judges it post
// hoc — fine for bounded runs, impossible for soaks whose histories
// outgrow memory. RunStream is the inline alternative: the cluster drops
// its history (harness.Options.DropHistory) and every traced event feeds
// a spec.Stream that certifies the run incrementally over a pruned
// window, so memory stays bounded by protocol concurrency rather than
// run length. On sampled certification windows the stream invokes the
// seed reference checker (package refcheck) as a differential oracle;
// any streaming-vs-reference disagreement is itself a verdict failure.
//
// RunStream additionally judges *convergence*, the self-stabilization
// claim: after the last transient fault (a corrupting crash or a live
// perturbation), the execution must re-enter the legal-history set
// within a bounded number of configuration changes. Concretely, the
// verdict marks the global event index of the last corrupting fault,
// counts the distinct regular configurations installed after it, and
// derives a boundary: the event index of the Bound-th distinct
// post-fault install (or the last one, if fewer happen). The run
// converged iff
//
//  1. the cluster ends in a single operational regular configuration
//     containing every process (the heal tail guarantees the network
//     allows this),
//  2. the streaming checker and the reference oracle never disagreed,
//     and
//  3. every violation is anchored to events at or before the boundary —
//     damage attributable to the faulty prefix is expected and legal
//     under the specifications' conditional form; damage *after* the
//     system had its budget of configuration changes to stabilize is a
//     convergence failure.
package chaos

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/spec/refcheck"
)

// StreamConfig tunes the inline checker and the convergence judgment.
// The zero value gets defaults.
type StreamConfig struct {
	// CheckEvery is the incremental certification cadence in events
	// (default spec.Stream's own default, 4096).
	CheckEvery int
	// OracleEvery runs the reference-checker oracle on every k-th
	// certification window (default 16; 0 keeps the default). The final
	// settled window is always oracle-checked.
	OracleEvery int
	// Bound is the number of distinct post-fault regular configuration
	// installs the system is allowed before it must be legal again
	// (default 8).
	Bound int
}

func (sc StreamConfig) withDefaults() StreamConfig {
	if sc.OracleEvery <= 0 {
		sc.OracleEvery = 16
	}
	if sc.Bound <= 0 {
		sc.Bound = 8
	}
	return sc
}

// StreamResult is the verdict of one streaming execution.
type StreamResult struct {
	// Violations are the specification breaches certified inline
	// (deduplicated across windows, anchored to global event indices).
	Violations []spec.Violation
	// Events is the total history length (counted, not retained).
	Events uint64
	// Stream reports the inline checker's window accounting, including
	// peak retained events/bytes — the soak's memory-boundedness claim.
	Stream spec.StreamStats
	// Disagreements lists streaming-vs-reference oracle mismatches;
	// empty on a healthy run.
	Disagreements []string

	// LastFault is the global event index when the last corrupting
	// fault (crash-with-corruption or live perturbation) executed; zero
	// when the program schedules none.
	LastFault uint64
	// Installs is the number of distinct regular configurations
	// installed after LastFault.
	Installs int
	// Boundary is the event index by which the execution must be legal
	// again (see the package comment on convergence).
	Boundary uint64
	// FinalConfigs is the number of distinct operational regular
	// configurations at the end of the run (1 on a converged run).
	FinalConfigs int
	// Converged reports the overall self-stabilization verdict.
	Converged bool

	// Net and Harness are the activity counters of the run.
	Net     netsim.Stats
	Harness harness.Stats
	// Metrics is the cluster-wide observability snapshot.
	Metrics obs.Snapshot
}

// RunStream executes the program with the inline streaming checker and
// judges both specification conformance and convergence. The cluster
// retains no history: memory is bounded by the checker's pruned window.
func RunStream(p Program, sc StreamConfig) StreamResult {
	sc = sc.withDefaults()
	var res StreamResult

	oracle := func(window []model.Event, opts spec.Options, fast []spec.Violation) {
		ref := refcheck.CheckAll(window, opts)
		a, b := renderViolations(fast), renderViolations(ref)
		if d := firstDiff(a, b); d != "" {
			res.Disagreements = append(res.Disagreements, fmt.Sprintf(
				"oracle window %d (%d events, settled=%v): streaming found %d, reference %d: %s",
				res.Stream.OracleWindows+1, len(window), opts.Settled, len(a), len(b), d))
		}
	}

	procs := p.Procs
	if procs <= 0 {
		procs = 4
	}
	c := harness.New(harness.Options{
		Procs: procs,
		Seed:  p.Seed,
		Stream: &spec.StreamOptions{
			CheckEvery:  sc.CheckEvery,
			OracleEvery: sc.OracleEvery,
			Oracle:      oracle,
		},
		DropHistory: true,
	})
	if BugHook != nil {
		BugHook(c)
	}
	ids := c.IDs()

	// Install tracking for the convergence judgment: every regular
	// install is recorded with the event index it happened at, and the
	// post-fault distinct ones are extracted after the run.
	type install struct {
		at uint64
		id model.ConfigID
	}
	var installs []install
	c.OnConfig = func(q model.ProcessID, cc node.ConfigChange) {
		if cc.Config.ID.IsRegular() {
			installs = append(installs, install{at: c.EventCount(), id: cc.Config.ID})
		}
	}

	apply(c, ids, p)

	// Fault markers: one callback per corrupting event, scheduled after
	// apply so the scheduler's same-time FIFO order fires it right after
	// the fault itself — it reads the event count the fault landed at.
	// A fault that no-ops (perturbing a down process, wrapping a zero
	// counter) still marks: the boundary only moves later, which keeps
	// the judgment conservative.
	valid := make(map[model.ProcessID]bool, len(ids))
	for _, id := range ids {
		valid[id] = true
	}
	var lastFault uint64
	for _, e := range p.Events {
		corrupting := (e.Op == OpCrash && e.Mode != harness.CorruptNone) || e.Op == OpPerturb
		if !corrupting || !valid[e.Proc] {
			continue
		}
		at := e.At
		if at < 0 {
			at = 0
		}
		if at > p.Horizon {
			at = p.Horizon
		}
		c.At(at, func() { lastFault = c.EventCount() })
	}

	c.Run(p.Horizon + p.Settle)

	res.Violations = c.Stream().Finish(spec.Options{Settled: true})
	res.Events = c.EventCount()
	res.Stream = c.Stream().Stats()
	res.Net = c.Net.Stats()
	res.Harness = c.Stats()
	res.Metrics = c.MetricsSnapshot().Total
	res.LastFault = lastFault

	// Distinct post-fault regular installs, in install order.
	seen := make(map[model.ConfigID]bool)
	var distinct []uint64
	for _, in := range installs {
		if in.at <= lastFault || seen[in.id] {
			continue
		}
		seen[in.id] = true
		distinct = append(distinct, in.at)
	}
	res.Installs = len(distinct)
	res.Boundary = res.Events
	if len(distinct) >= sc.Bound {
		res.Boundary = distinct[sc.Bound-1]
	} else if len(distinct) > 0 {
		res.Boundary = distinct[len(distinct)-1]
	}

	ops := c.OperationalConfigIDs()
	res.FinalConfigs = len(ops)
	covered := false
	if len(ops) == 1 {
		for _, members := range ops {
			covered = members.Size() == len(ids)
		}
	}
	res.Converged = covered && len(res.Disagreements) == 0 && anchoredBy(res.Violations, res.Boundary)
	return res
}

// anchoredBy reports whether every violation is anchored to events at or
// before the boundary. A violation with no event anchors cannot be
// attributed to the faulty prefix and therefore fails the test.
func anchoredBy(vs []spec.Violation, boundary uint64) bool {
	for _, v := range vs {
		if len(v.Events) == 0 {
			return false
		}
		for _, e := range v.Events {
			if uint64(e) > boundary {
				return false
			}
		}
	}
	return true
}

// firstDiff returns a description of the first element where the two
// sorted string slices differ, or "" when they are equal.
func firstDiff(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("streaming %q vs reference %q", a[i], b[i])
		}
	}
	switch {
	case len(a) > len(b):
		return fmt.Sprintf("streaming extra %q", a[len(b)])
	case len(b) > len(a):
		return fmt.Sprintf("reference extra %q", b[len(a)])
	}
	return ""
}

// String renders the verdict as a one-line report entry.
func (r StreamResult) String() string {
	verdict := "CONVERGED"
	if !r.Converged {
		verdict = "NOT CONVERGED"
	}
	return fmt.Sprintf(
		"%s events=%d violations=%d disagreements=%d last_fault=%d installs=%d boundary=%d final_configs=%d peak_window=%d events (%d bytes)",
		verdict, r.Events, len(r.Violations), len(r.Disagreements),
		r.LastFault, r.Installs, r.Boundary, r.FinalConfigs,
		r.Stream.PeakRetained, r.Stream.PeakBytes)
}

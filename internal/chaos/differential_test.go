package chaos

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/spec/refcheck"
)

// compareCheckers judges the same history with the production checker and
// the reference implementation and fails the test on any difference in
// the violation multisets.
func compareCheckers(t *testing.T, label string, events []model.Event, opts spec.Options) {
	t.Helper()
	got := render(spec.NewChecker(events, opts).CheckAll())
	want := render(refcheck.CheckAll(events, opts))
	if len(got) != len(want) {
		t.Fatalf("%s: checker found %d violations, reference found %d\n got: %v\nwant: %v",
			label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: violation %d differs\n got: %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

func render(vs []spec.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

// mutate corrupts a chaos-generated history so the checkers have real
// violations to agree on: drop an event, duplicate a delivery, swap two
// adjacent events, or relabel a delivery's configuration.
func mutate(rng *rand.Rand, events []model.Event) []model.Event {
	out := append([]model.Event(nil), events...)
	if len(out) < 4 {
		return out
	}
	for k := 0; k < 1+rng.Intn(3); k++ {
		switch rng.Intn(4) {
		case 0: // drop
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		case 1: // duplicate a delivery
			for try := 0; try < 20; try++ {
				i := rng.Intn(len(out))
				if out[i].Type == model.EventDeliver {
					dup := out[i]
					out = append(out[:i+1], append([]model.Event{dup}, out[i+1:]...)...)
					break
				}
			}
		case 2: // swap adjacent
			i := rng.Intn(len(out) - 1)
			out[i], out[i+1] = out[i+1], out[i]
		case 3: // relabel a delivery's configuration
			for try := 0; try < 20; try++ {
				i := rng.Intn(len(out))
				if out[i].Type == model.EventDeliver {
					out[i].Config = model.RegularID(77, out[i].Proc)
					break
				}
			}
		}
	}
	return out
}

// TestChaosHistoriesMatchReference: on real protocol executions — clean
// and deliberately corrupted — the rewritten checker reports exactly the
// reference implementation's violations.
func TestChaosHistoriesMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential comparison is slow")
	}
	for seed := int64(1); seed <= 4; seed++ {
		p := Generate(seed, GenConfig{
			Duration: 400 * time.Millisecond,
			Settle:   1500 * time.Millisecond,
		})
		events, res := RunHistory(p)
		if res.Events != len(events) {
			t.Fatalf("seed %d: RunHistory returned %d events but result counted %d", seed, len(events), res.Events)
		}
		for _, opts := range []spec.Options{{Settled: true}, {}} {
			compareCheckers(t, "clean", events, opts)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 5; trial++ {
			bad := mutate(rng, events)
			compareCheckers(t, "mutated", bad, spec.Options{Settled: true})
		}
	}
}

// Package atm implements the paper's second motivating application
// (Section 1): an ATM network that authorises withdrawals while the system
// is partitioned.
//
// Fully connected, an ATM records each transaction in the replicated
// database, checking that cumulative withdrawals do not exceed the account
// balance. While operating in a non-primary (or any shrunken) component,
// it instead consults a small local policy — a per-account offline limit —
// to authorise withdrawals without checking for cumulative withdrawals at
// other locations, and delays posting the transactions until the system
// reconnects. On remerge, the pending transactions are reposted into the
// replicated database, where overdrafts caused by concurrent offline
// authorisations become visible.
//
// The replica is a deterministic state machine over the EVS delivery
// stream.
package atm

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// MsgKind distinguishes replicated payloads.
type MsgKind string

const (
	// KindWithdraw requests a withdrawal (online authorisation).
	KindWithdraw MsgKind = "withdraw"
	// KindPost posts a batch of offline-authorised withdrawals.
	KindPost MsgKind = "post"
)

// Tx is one withdrawal.
type Tx struct {
	Account string `json:"account"`
	Amount  int    `json:"amount"`
	// ATM is the authorising replica (for offline posting).
	ATM model.ProcessID `json:"atm"`
}

// Msg is a replicated ATM message.
type Msg struct {
	Kind MsgKind `json:"kind"`
	Tx   Tx      `json:"tx,omitempty"`
	// Batch carries offline transactions being posted (KindPost).
	Batch []Tx `json:"batch,omitempty"`
}

// Encode serialises a message for broadcast.
func Encode(m Msg) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("atm: marshal: %w", err)
	}
	return b, nil
}

// Decode parses a message.
func Decode(b []byte) (Msg, error) {
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return Msg{}, fmt.Errorf("atm: unmarshal: %w", err)
	}
	return m, nil
}

// Decision is the outcome of a withdrawal authorisation.
type Decision struct {
	Tx Tx
	// Approved reports whether cash was dispensed.
	Approved bool
	// Offline reports whether the decision used the offline policy.
	Offline bool
}

// account holds replicated and local account state.
type account struct {
	balance      int // replicated balance
	offlineLimit int // per-partition offline allowance
	offlineUsed  int // consumed offline allowance (local)
}

// Replica is one ATM replica.
type Replica struct {
	self model.ProcessID
	full model.ProcessSet

	accounts map[string]*account

	partitioned bool
	// pending are offline-approved transactions awaiting posting.
	pending []Tx
	// decisions made at this replica, in order.
	decisions []Decision
	// overdrafts counts posted transactions that drove an account
	// negative.
	overdrafts int
}

// New creates a replica with the given opening balances and a uniform
// offline limit per account per partition episode.
func New(self model.ProcessID, full model.ProcessSet, balances map[string]int, offlineLimit int) *Replica {
	r := &Replica{
		self:     self,
		full:     full,
		accounts: make(map[string]*account, len(balances)),
	}
	for acct, bal := range balances {
		r.accounts[acct] = &account{balance: bal, offlineLimit: offlineLimit}
	}
	return r
}

// OnConfig ingests a configuration change. On reconnection to the full
// membership it returns the posting batch to broadcast (nil otherwise).
// If the batch cannot be encoded the pending transactions are retained
// for the next reconnection and the error is returned.
func (r *Replica) OnConfig(cfg model.Configuration) ([]byte, error) {
	if cfg.ID.IsTransitional() {
		return nil, nil
	}
	was := r.partitioned
	r.partitioned = !r.full.IsSubsetOf(cfg.Members)
	if r.partitioned && !was {
		// New partition episode: refresh the offline allowance.
		for _, a := range r.accounts {
			a.offlineUsed = 0
		}
	}
	if !r.partitioned && len(r.pending) > 0 {
		b, err := Encode(Msg{Kind: KindPost, Batch: r.pending})
		if err != nil {
			return nil, err
		}
		r.pending = nil
		return b, nil
	}
	return nil, nil
}

// Withdraw is called at the authorising ATM when a customer requests cash.
// Online (fully connected), it returns a message to broadcast and defers
// the decision to delivery order. Offline, it decides immediately against
// the local policy, queues an approved transaction for posting, and
// returns a nil message. An encoding error declines the request without
// dispensing cash or mutating any state.
func (r *Replica) Withdraw(acct string, amount int) ([]byte, *Decision, error) {
	tx := Tx{Account: acct, Amount: amount, ATM: r.self}
	if !r.partitioned {
		b, err := Encode(Msg{Kind: KindWithdraw, Tx: tx})
		if err != nil {
			return nil, nil, err
		}
		return b, nil, nil
	}
	a, ok := r.accounts[acct]
	d := Decision{Tx: tx, Offline: true}
	if ok && amount > 0 && a.offlineUsed+amount <= a.offlineLimit {
		a.offlineUsed += amount
		d.Approved = true
		r.pending = append(r.pending, tx)
	}
	r.decisions = append(r.decisions, d)
	return nil, &d, nil
}

// OnDeliver applies a replicated message in delivery order.
func (r *Replica) OnDeliver(payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return
	}
	switch m.Kind {
	case KindWithdraw:
		r.applyOnline(m.Tx)
	case KindPost:
		for _, tx := range m.Batch {
			r.post(tx)
		}
	}
}

// applyOnline decides an online withdrawal deterministically at every
// replica: approved iff the balance covers it.
func (r *Replica) applyOnline(tx Tx) {
	a, ok := r.accounts[tx.Account]
	approved := ok && tx.Amount > 0 && a.balance >= tx.Amount
	if approved {
		a.balance -= tx.Amount
	}
	if tx.ATM == r.self {
		r.decisions = append(r.decisions, Decision{Tx: tx, Approved: approved})
	}
}

// post applies an offline-approved transaction unconditionally (the cash
// is already dispensed), recording an overdraft if the balance goes
// negative.
func (r *Replica) post(tx Tx) {
	a, ok := r.accounts[tx.Account]
	if !ok {
		return
	}
	a.balance -= tx.Amount
	if a.balance < 0 {
		r.overdrafts++
	}
}

// Balance returns the replicated balance of an account.
func (r *Replica) Balance(acct string) int {
	if a, ok := r.accounts[acct]; ok {
		return a.balance
	}
	return 0
}

// PendingCount returns the number of offline transactions awaiting posting.
func (r *Replica) PendingCount() int { return len(r.pending) }

// Decisions returns the authorisation outcomes decided at this replica.
func (r *Replica) Decisions() []Decision { return r.decisions }

// Overdrafts returns the number of posted transactions that drove an
// account negative at this replica's view of the database.
func (r *Replica) Overdrafts() int { return r.overdrafts }

// Approved counts approved decisions at this replica.
func (r *Replica) Approved() int {
	n := 0
	for _, d := range r.decisions {
		if d.Approved {
			n++
		}
	}
	return n
}

package atm

import (
	"testing"

	"repro/internal/model"
)

// FuzzReplica feeds arbitrary payloads into an ATM replica: no panic, and
// the balance only changes through well-formed messages.
func FuzzReplica(f *testing.F) {
	f.Add([]byte(`{"kind":"withdraw","tx":{"account":"a","amount":10,"atm":"x"}}`))
	f.Add([]byte(`{"kind":"post","batch":[{"account":"a","amount":5,"atm":"x"}]}`))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := New("x", model.NewProcessSet("x", "y"), map[string]int{"a": 100}, 40)
		r.OnDeliver(data)
		_ = r.Balance("a")
		_ = r.Overdrafts()
	})
}

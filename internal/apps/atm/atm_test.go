package atm

import (
	"testing"

	"repro/internal/model"
)

var full = model.NewProcessSet("a", "b", "c")

func regCfg(members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(1, members[0]), Members: model.NewProcessSet(members...)}
}

// onConfig fails the test if the replica cannot encode its posting batch.
func onConfig(t *testing.T, r *Replica, cfg model.Configuration) []byte {
	t.Helper()
	b, err := r.OnConfig(cfg)
	if err != nil {
		t.Fatalf("OnConfig: %v", err)
	}
	return b
}

// withdraw fails the test if the replica cannot encode the withdrawal.
func withdraw(t *testing.T, r *Replica, acct string, amount int) ([]byte, *Decision) {
	t.Helper()
	msg, d, err := r.Withdraw(acct, amount)
	if err != nil {
		t.Fatalf("Withdraw: %v", err)
	}
	return msg, d
}

func TestOnlineWithdrawalAppliesAtAllReplicas(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	b := New("b", full, map[string]int{"acct": 100}, 40)
	msg, d := withdraw(t, a, "acct", 30)
	if d != nil {
		t.Fatal("online withdrawal must defer to delivery order")
	}
	a.OnDeliver(msg)
	b.OnDeliver(msg)
	if a.Balance("acct") != 70 || b.Balance("acct") != 70 {
		t.Fatalf("balances %d/%d, want 70/70", a.Balance("acct"), b.Balance("acct"))
	}
	if a.Approved() != 1 {
		t.Fatalf("authorising ATM approved %d, want 1", a.Approved())
	}
	if b.Approved() != 0 {
		t.Fatal("non-authorising replica should not record a decision")
	}
}

func TestOnlineDeclinesInsufficientFunds(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 20}, 40)
	msg, _ := withdraw(t, a, "acct", 30)
	a.OnDeliver(msg)
	if a.Balance("acct") != 20 {
		t.Fatalf("balance %d, want unchanged 20", a.Balance("acct"))
	}
	ds := a.Decisions()
	if len(ds) != 1 || ds[0].Approved {
		t.Fatalf("decisions %+v", ds)
	}
}

func TestOfflineAuthorisationWithinLimit(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	a.OnConfig(regCfg("a"))
	msg, d := withdraw(t, a, "acct", 30)
	if msg != nil {
		t.Fatal("offline withdrawal must not broadcast")
	}
	if d == nil || !d.Approved || !d.Offline {
		t.Fatalf("offline decision %+v", d)
	}
	// Second withdrawal exceeds the remaining offline allowance.
	_, d2 := withdraw(t, a, "acct", 20)
	if d2.Approved {
		t.Fatal("offline limit must cap cumulative offline withdrawals")
	}
	if a.PendingCount() != 1 {
		t.Fatalf("pending %d, want 1", a.PendingCount())
	}
	// The replicated balance is untouched until posting.
	if a.Balance("acct") != 100 {
		t.Fatalf("balance %d, want 100 until posting", a.Balance("acct"))
	}
}

func TestPostingOnReconnection(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	b := New("b", full, map[string]int{"acct": 100}, 40)
	a.OnConfig(regCfg("a"))
	a.Withdraw("acct", 30)
	batch := onConfig(t, a, regCfg("a", "b", "c"))
	if batch == nil {
		t.Fatal("reconnection must produce a posting batch")
	}
	a.OnDeliver(batch)
	b.OnDeliver(batch)
	if a.Balance("acct") != 70 || b.Balance("acct") != 70 {
		t.Fatalf("post-merge balances %d/%d, want 70/70", a.Balance("acct"), b.Balance("acct"))
	}
	if a.PendingCount() != 0 {
		t.Fatal("pending should be cleared after posting")
	}
	if a.Overdrafts() != 0 {
		t.Fatalf("overdrafts %d, want 0", a.Overdrafts())
	}
}

func TestConcurrentOfflineWithdrawalsOverdraft(t *testing.T) {
	// Balance 50, offline limit 40 per ATM: two partitioned ATMs can
	// jointly dispense 80 — the overdraft becomes visible at posting.
	a := New("a", full, map[string]int{"acct": 50}, 40)
	b := New("b", full, map[string]int{"acct": 50}, 40)
	a.OnConfig(regCfg("a"))
	b.OnConfig(regCfg("b", "c"))
	a.Withdraw("acct", 40)
	b.Withdraw("acct", 40)
	batchA := onConfig(t, a, regCfg("a", "b", "c"))
	batchB := onConfig(t, b, regCfg("a", "b", "c"))
	for _, r := range []*Replica{a, b} {
		r.OnDeliver(batchA)
		r.OnDeliver(batchB)
	}
	if a.Balance("acct") != -30 || b.Balance("acct") != -30 {
		t.Fatalf("balances %d/%d, want -30/-30", a.Balance("acct"), b.Balance("acct"))
	}
	if a.Overdrafts() != 1 {
		t.Fatalf("overdrafts %d, want 1 (the second posting)", a.Overdrafts())
	}
}

func TestOfflineAllowanceResetsPerEpisode(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 1000}, 40)
	a.OnConfig(regCfg("a"))
	a.Withdraw("acct", 40)
	a.OnConfig(regCfg("a", "b", "c")) // merge
	a.OnConfig(regCfg("a"))           // partition again
	_, d := withdraw(t, a, "acct", 40)
	if !d.Approved {
		t.Fatal("fresh partition episode should refresh the offline allowance")
	}
}

func TestTransitionalIgnored(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	tr := model.Configuration{
		ID:      model.TransitionalID(model.RegularID(2, "a"), model.RegularID(1, "a")),
		Members: model.NewProcessSet("a"),
	}
	if out := onConfig(t, a, tr); out != nil {
		t.Fatal("transitional configuration should not trigger posting")
	}
	if a.partitioned {
		t.Fatal("transitional configuration must not change partition state")
	}
}

func TestUnknownAccountAndGarbage(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	msg, _ := withdraw(t, a, "nope", 30)
	a.OnDeliver(msg)
	if len(a.Decisions()) != 1 || a.Decisions()[0].Approved {
		t.Fatalf("unknown account decisions %+v", a.Decisions())
	}
	a.OnDeliver([]byte("{bad"))
	if a.Balance("acct") != 100 {
		t.Fatal("garbage must not change state")
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestNegativeAmountRejectedOffline(t *testing.T) {
	a := New("a", full, map[string]int{"acct": 100}, 40)
	a.OnConfig(regCfg("a"))
	_, d := withdraw(t, a, "acct", -5)
	if d.Approved {
		t.Fatal("negative withdrawal must be declined")
	}
}

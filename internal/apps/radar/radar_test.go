package radar

import (
	"testing"

	"repro/internal/model"
)

var sensors = model.NewProcessSet("s1", "s2", "s3")

func regCfg(members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(1, members[0]), Members: model.NewProcessSet(members...)}
}

// enc fails the test on an encoding error.
func enc(t *testing.T, r Reading) []byte {
	t.Helper()
	b, err := Encode(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func TestBestPicksHighestQualityConnectedSensor(t *testing.T) {
	d := NewDisplay("d1", sensors)
	s1 := NewSensor("s1", 0.9)
	s2 := NewSensor("s2", 0.5)
	d.OnDeliver(enc(t, s1.Observe("T1", 1, 2)))
	d.OnDeliver(enc(t, s2.Observe("T1", 1.1, 2.1)))
	best, ok := d.Best("T1")
	if !ok || best.Sensor != "s1" {
		t.Fatalf("best %+v ok=%v, want s1's high quality reading", best, ok)
	}
}

func TestPartitionDegradesToConnectedSensor(t *testing.T) {
	d := NewDisplay("d1", sensors)
	s1 := NewSensor("s1", 0.9)
	s2 := NewSensor("s2", 0.5)
	d.OnDeliver(enc(t, s1.Observe("T1", 1, 2)))
	d.OnDeliver(enc(t, s2.Observe("T1", 1.1, 2.1)))
	// The display lands in a component without the best sensor s1.
	d.OnConfig(regCfg("d1", "s2"))
	best, ok := d.Best("T1")
	if !ok || best.Sensor != "s2" {
		t.Fatalf("partitioned best %+v ok=%v, want degraded s2", best, ok)
	}
	// Remerge restores the best sensor.
	d.OnConfig(regCfg("d1", "s1", "s2", "s3"))
	best, _ = d.Best("T1")
	if best.Sensor != "s1" {
		t.Fatalf("post-merge best from %s, want s1", best.Sensor)
	}
}

func TestBlankWhenNoConnectedSensorHasTrack(t *testing.T) {
	d := NewDisplay("d1", sensors)
	s1 := NewSensor("s1", 0.9)
	d.OnDeliver(enc(t, s1.Observe("T1", 1, 2)))
	d.OnConfig(regCfg("d1")) // alone
	if _, ok := d.Best("T1"); ok {
		t.Fatal("no connected sensor: picture should blank")
	}
	if d.Blanks() != 1 {
		t.Fatalf("blanks %d, want 1", d.Blanks())
	}
}

func TestFreshnessBySensorSeq(t *testing.T) {
	d := NewDisplay("d1", sensors)
	s1 := NewSensor("s1", 0.9)
	first := s1.Observe("T1", 1, 1)
	second := s1.Observe("T1", 5, 5)
	// Deliver out of order: the stale reading must not overwrite.
	d.OnDeliver(enc(t, second))
	d.OnDeliver(enc(t, first))
	best, _ := d.Best("T1")
	if best.X != 5 {
		t.Fatalf("best position %v, want the fresher reading", best.X)
	}
}

func TestQualityTieBreaksDeterministically(t *testing.T) {
	d := NewDisplay("d1", sensors)
	a := NewSensor("s1", 0.7)
	b := NewSensor("s2", 0.7)
	d.OnDeliver(enc(t, b.Observe("T1", 2, 2)))
	d.OnDeliver(enc(t, a.Observe("T1", 1, 1)))
	best, _ := d.Best("T1")
	if best.Sensor != "s1" {
		t.Fatalf("tie broke to %s, want lexicographically first s1", best.Sensor)
	}
}

func TestTracksSorted(t *testing.T) {
	d := NewDisplay("d1", sensors)
	s := NewSensor("s1", 0.9)
	d.OnDeliver(enc(t, s.Observe("B", 0, 0)))
	d.OnDeliver(enc(t, s.Observe("A", 0, 0)))
	got := d.Tracks()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("tracks %v", got)
	}
}

func TestTransitionalIgnoredAndGarbage(t *testing.T) {
	d := NewDisplay("d1", sensors)
	tr := model.Configuration{
		ID:      model.TransitionalID(model.RegularID(2, "d1"), model.RegularID(1, "d1")),
		Members: model.NewProcessSet("d1"),
	}
	d.OnConfig(tr)
	if !d.component.Equal(sensors) {
		t.Fatal("transitional configuration must not change the component")
	}
	d.OnDeliver([]byte("{bad"))
	if len(d.Tracks()) != 0 {
		t.Fatal("garbage must not create tracks")
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

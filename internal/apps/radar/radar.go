// Package radar implements the paper's third motivating application
// (Section 1): a radar system combining a number of sensors and displays
// in different locations. The most accurate available information —
// obtained from the sensor with the best view — should be shown to the
// operator; when the network partitions, it is better to display lower
// quality information from the connected sensors than to display nothing.
//
// Sensors broadcast readings (track position estimates with a quality
// figure) as agreed messages; displays fuse the readings delivered within
// their component and show, per track, the highest quality reading among
// the sensors currently in their configuration. A reading from a sensor
// that has left the component goes stale and is discarded, so a display in
// a minority component degrades to its best connected sensor instead of
// freezing or blanking — exactly the behaviour the paper motivates.
package radar

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/model"
)

// Reading is one sensor observation of one track.
type Reading struct {
	Sensor  model.ProcessID `json:"sensor"`
	Track   string          `json:"track"`
	X       float64         `json:"x"`
	Y       float64         `json:"y"`
	Quality float64         `json:"quality"` // higher is better
	Seq     uint64          `json:"seq"`     // sensor-local freshness
}

// Encode serialises a reading for broadcast.
func Encode(r Reading) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("radar: marshal: %w", err)
	}
	return b, nil
}

// Decode parses a reading.
func Decode(b []byte) (Reading, error) {
	var r Reading
	if err := json.Unmarshal(b, &r); err != nil {
		return Reading{}, fmt.Errorf("radar: unmarshal: %w", err)
	}
	return r, nil
}

// Display fuses delivered readings into a per-track picture.
type Display struct {
	self model.ProcessID
	// component is the sensor set currently reachable.
	component model.ProcessSet
	// latest holds the freshest reading per (track, sensor).
	latest map[string]map[model.ProcessID]Reading
	// blanks counts picture requests that found no usable reading.
	blanks int
}

// NewDisplay creates a display; initially every sensor is considered
// reachable.
func NewDisplay(self model.ProcessID, sensors model.ProcessSet) *Display {
	return &Display{
		self:      self,
		component: sensors,
		latest:    make(map[string]map[model.ProcessID]Reading),
	}
}

// OnConfig ingests a configuration change: the display's usable sensors
// are those in its component.
func (d *Display) OnConfig(cfg model.Configuration) {
	if cfg.ID.IsTransitional() {
		return
	}
	d.component = cfg.Members
}

// OnDeliver ingests a delivered sensor reading.
func (d *Display) OnDeliver(payload []byte) {
	r, err := Decode(payload)
	if err != nil {
		return
	}
	per := d.latest[r.Track]
	if per == nil {
		per = make(map[model.ProcessID]Reading)
		d.latest[r.Track] = per
	}
	if prev, ok := per[r.Sensor]; !ok || r.Seq > prev.Seq {
		per[r.Sensor] = r
	}
}

// Best returns the highest quality reading for a track among sensors in
// the current component, and whether one exists. When no connected sensor
// has reported the track, ok is false (counted as a blank).
func (d *Display) Best(track string) (Reading, bool) {
	per := d.latest[track]
	var best Reading
	found := false
	// Deterministic iteration for tie-breaking by sensor ID.
	sensors := make([]model.ProcessID, 0, len(per))
	for s := range per {
		sensors = append(sensors, s)
	}
	sort.Slice(sensors, func(i, j int) bool { return sensors[i] < sensors[j] })
	for _, s := range sensors {
		r := per[s]
		if !d.component.Contains(s) {
			continue
		}
		if !found || r.Quality > best.Quality {
			best = r
			found = true
		}
	}
	if !found {
		d.blanks++
	}
	return best, found
}

// Blanks returns how many Best calls found no usable reading.
func (d *Display) Blanks() int { return d.blanks }

// Tracks returns the known track names, sorted.
func (d *Display) Tracks() []string {
	out := make([]string, 0, len(d.latest))
	for t := range d.latest {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Sensor produces readings with a fixed quality figure (its "view").
type Sensor struct {
	self    model.ProcessID
	quality float64
	seq     uint64
}

// NewSensor creates a sensor with the given view quality.
func NewSensor(self model.ProcessID, quality float64) *Sensor {
	return &Sensor{self: self, quality: quality}
}

// Observe produces the next reading of a track at the given position.
func (s *Sensor) Observe(track string, x, y float64) Reading {
	s.seq++
	return Reading{
		Sensor:  s.self,
		Track:   track,
		X:       x,
		Y:       y,
		Quality: s.quality,
		Seq:     s.seq,
	}
}

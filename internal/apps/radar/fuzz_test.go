package radar

import (
	"testing"

	"repro/internal/model"
)

// FuzzDisplay feeds arbitrary payloads into a display: no panic, Best
// stays total.
func FuzzDisplay(f *testing.F) {
	s := NewSensor("s1", 0.5)
	if b, err := Encode(s.Observe("T", 1, 2)); err == nil {
		f.Add(b)
	}
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDisplay("d", model.NewProcessSet("s1"))
		d.OnDeliver(data)
		_, _ = d.Best("T")
		_ = d.Tracks()
	})
}

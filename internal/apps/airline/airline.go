// Package airline implements the paper's first motivating application
// (Section 1): an airline reservation system that continues to sell
// tickets while the network is partitioned.
//
// Every replica holds a seat ledger replicated as safe messages over
// extended virtual synchrony. Sales are recorded per selling replica
// (a grow-only counter vector), so that when components remerge the
// ledgers reconcile by pointwise maximum: each component's sales were
// totally ordered within it and counters are monotone, so every replica of
// the merged component converges to the true totals. Reconciliation rides
// the same transport: on every regular configuration change each replica
// broadcasts its counter vector.
//
// While partitioned, a component decides sales under a selectable policy,
// mirroring the paper's remark that "airlines have devised heuristics for
// use in non-primary components, based only on local data, that aim to
// maximize the number of tickets that can be sold while minimizing the
// risk of overbooking":
//
//   - PolicyAllocation freezes, at partition time, a disjoint share of the
//     remaining seats proportional to the component's size; components can
//     never jointly overbook.
//   - PolicyOptimistic keeps selling while the locally known total is
//     below capacity; concurrent components may overbook, which the
//     benchmarks quantify.
package airline

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
)

// Policy selects the partition-mode sales heuristic.
type Policy int

const (
	// PolicyAllocation sells against a frozen proportional seat budget.
	PolicyAllocation Policy = iota + 1
	// PolicyOptimistic sells against local knowledge only.
	PolicyOptimistic
)

// MsgKind distinguishes replicated payloads.
type MsgKind string

const (
	// KindSell requests one seat.
	KindSell MsgKind = "sell"
	// KindState carries a counter-vector reconciliation.
	KindState MsgKind = "state"
)

// Msg is a replicated airline message.
type Msg struct {
	Kind   MsgKind `json:"kind"`
	Flight string  `json:"flight,omitempty"`
	// SoldBy is the sender's counter vector (KindState).
	SoldBy map[string]map[model.ProcessID]int `json:"soldBy,omitempty"`
}

// Encode serialises a message for broadcast.
func Encode(m Msg) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("airline: marshal: %w", err)
	}
	return b, nil
}

// Decode parses a message.
func Decode(b []byte) (Msg, error) {
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return Msg{}, fmt.Errorf("airline: unmarshal: %w", err)
	}
	return m, nil
}

// Result is the outcome of a sale as decided by a replica.
type Result struct {
	Flight string
	Seller model.ProcessID
	// Confirmed reports whether the seat was granted.
	Confirmed bool
	// Partitioned reports whether the decision used a partition
	// heuristic.
	Partitioned bool
}

// flight is the per-flight ledger.
type flight struct {
	capacity int
	// soldBy counts confirmed sales per selling replica.
	soldBy map[model.ProcessID]int
	// allocation is the component's remaining budget while partitioned
	// under PolicyAllocation (-1 = unlimited).
	allocation int
}

func (f *flight) sold() int {
	n := 0
	for _, c := range f.soldBy {
		n += c
	}
	return n
}

// Replica is one airline replica: a deterministic state machine over the
// EVS delivery stream.
type Replica struct {
	self    model.ProcessID
	full    model.ProcessSet
	policy  Policy
	flights map[string]*flight

	partitioned bool
	results     []Result
}

// New creates a replica for the given flight capacities.
func New(self model.ProcessID, full model.ProcessSet, policy Policy, capacities map[string]int) *Replica {
	r := &Replica{
		self:    self,
		full:    full,
		policy:  policy,
		flights: make(map[string]*flight, len(capacities)),
	}
	for name, cap := range capacities {
		r.flights[name] = &flight{
			capacity:   cap,
			soldBy:     make(map[model.ProcessID]int),
			allocation: -1,
		}
	}
	return r
}

// OnConfig ingests a configuration change. It returns a reconciliation
// state message to broadcast in the new configuration (nil for transitional
// configurations). An encoding error leaves the ledger updated but skips
// reconciliation for this configuration; the caller decides whether to
// surface or count it.
func (r *Replica) OnConfig(cfg model.Configuration) ([]byte, error) {
	if cfg.ID.IsTransitional() {
		return nil, nil
	}
	wasPartitioned := r.partitioned
	r.partitioned = !r.full.IsSubsetOf(cfg.Members)
	if r.policy == PolicyAllocation {
		switch {
		case r.partitioned && !wasPartitioned:
			for _, f := range r.flights {
				remaining := f.capacity - f.sold()
				if remaining < 0 {
					remaining = 0
				}
				f.allocation = remaining * cfg.Members.Size() / r.full.Size()
			}
		case r.partitioned && wasPartitioned:
			// Cascaded partition: shrink the remaining budget
			// proportionally, never grow it.
			for _, f := range r.flights {
				if f.allocation > 0 {
					f.allocation = f.allocation * cfg.Members.Size() / r.full.Size()
				}
			}
		default:
			for _, f := range r.flights {
				f.allocation = -1
			}
		}
	}
	return Encode(Msg{Kind: KindState, SoldBy: r.export()})
}

// export snapshots the counter vectors.
func (r *Replica) export() map[string]map[model.ProcessID]int {
	out := make(map[string]map[model.ProcessID]int, len(r.flights))
	for name, f := range r.flights {
		m := make(map[model.ProcessID]int, len(f.soldBy))
		for p, c := range f.soldBy {
			m[p] = c
		}
		out[name] = m
	}
	return out
}

// OnDeliver applies a replicated message in delivery order. The seller is
// the message's originating process.
func (r *Replica) OnDeliver(seller model.ProcessID, payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return
	}
	switch m.Kind {
	case KindSell:
		r.applySell(seller, m.Flight)
	case KindState:
		for name, vec := range m.SoldBy {
			f, ok := r.flights[name]
			if !ok {
				continue
			}
			for p, c := range vec {
				if c > f.soldBy[p] {
					f.soldBy[p] = c
				}
			}
		}
	}
}

// applySell decides one sale deterministically.
func (r *Replica) applySell(seller model.ProcessID, name string) {
	f, ok := r.flights[name]
	if !ok {
		r.results = append(r.results, Result{Flight: name, Seller: seller, Partitioned: r.partitioned})
		return
	}
	confirmed := false
	switch {
	case !r.partitioned || r.policy == PolicyOptimistic:
		confirmed = f.sold() < f.capacity
	default: // partitioned under PolicyAllocation
		confirmed = f.allocation != 0 && f.sold() < f.capacity
		if confirmed && f.allocation > 0 {
			f.allocation--
		}
	}
	if confirmed {
		f.soldBy[seller]++
	}
	r.results = append(r.results, Result{
		Flight:      name,
		Seller:      seller,
		Confirmed:   confirmed,
		Partitioned: r.partitioned,
	})
}

// Sold returns the replica's known sold count for a flight.
func (r *Replica) Sold(name string) int {
	if f, ok := r.flights[name]; ok {
		return f.sold()
	}
	return 0
}

// Overbooked returns how many seats beyond capacity this replica knows to
// have been sold for a flight.
func (r *Replica) Overbooked(name string) int {
	f, ok := r.flights[name]
	if !ok {
		return 0
	}
	if over := f.sold() - f.capacity; over > 0 {
		return over
	}
	return 0
}

// Results returns the sale outcomes decided at this replica, in order.
func (r *Replica) Results() []Result { return r.results }

// Confirmed counts confirmed sales observed at this replica.
func (r *Replica) Confirmed() int {
	n := 0
	for _, res := range r.results {
		if res.Confirmed {
			n++
		}
	}
	return n
}

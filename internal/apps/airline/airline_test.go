package airline

import (
	"testing"

	"repro/internal/model"
)

var full = model.NewProcessSet("a", "b", "c", "d")

func regCfg(members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(1, members[0]), Members: model.NewProcessSet(members...)}
}

func sell(r *Replica, seller model.ProcessID, flight string) {
	b, err := Encode(Msg{Kind: KindSell, Flight: flight})
	if err != nil {
		panic(err)
	}
	r.OnDeliver(seller, b)
}

// onConfig drives a configuration change, failing the test on error.
func onConfig(t *testing.T, r *Replica, cfg model.Configuration) []byte {
	t.Helper()
	b, err := r.OnConfig(cfg)
	if err != nil {
		t.Fatalf("OnConfig: %v", err)
	}
	return b
}

func TestSellWithinCapacity(t *testing.T) {
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 3})
	for i := 0; i < 5; i++ {
		sell(r, "a", "F1")
	}
	if r.Sold("F1") != 3 {
		t.Fatalf("sold %d, want capacity 3", r.Sold("F1"))
	}
	res := r.Results()
	if len(res) != 5 || !res[0].Confirmed || res[3].Confirmed || res[4].Confirmed {
		t.Fatalf("results %+v", res)
	}
	if r.Confirmed() != 3 {
		t.Fatalf("confirmed %d, want 3", r.Confirmed())
	}
}

func TestAllocationPolicyLimitsPartitionSales(t *testing.T) {
	// 8 remaining seats, component of 2 out of 4: allocation 4.
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 8})
	onConfig(t, r, regCfg("a", "b"))
	for i := 0; i < 8; i++ {
		sell(r, "a", "F1")
	}
	if r.Sold("F1") != 4 {
		t.Fatalf("partitioned sold %d, want allocation of 4", r.Sold("F1"))
	}
}

func TestAllocationDisjointAcrossComponents(t *testing.T) {
	// Two components of 2 from a universe of 4: each gets half of the
	// remaining seats, so combined sales never exceed capacity.
	left := New("a", full, PolicyAllocation, map[string]int{"F1": 9})
	right := New("c", full, PolicyAllocation, map[string]int{"F1": 9})
	onConfig(t, left, regCfg("a", "b"))
	onConfig(t, right, regCfg("c", "d"))
	for i := 0; i < 9; i++ {
		sell(left, "a", "F1")
		sell(right, "c", "F1")
	}
	total := left.Sold("F1") + right.Sold("F1")
	if total > 9 {
		t.Fatalf("allocation policy overbooked: %d sold of 9", total)
	}
	if left.Sold("F1") != 4 || right.Sold("F1") != 4 {
		t.Fatalf("allocations %d/%d, want 4/4 (floor of 9*2/4)", left.Sold("F1"), right.Sold("F1"))
	}
}

func TestOptimisticPolicyOverbooks(t *testing.T) {
	left := New("a", full, PolicyOptimistic, map[string]int{"F1": 5})
	right := New("c", full, PolicyOptimistic, map[string]int{"F1": 5})
	onConfig(t, left, regCfg("a", "b"))
	onConfig(t, right, regCfg("c", "d"))
	for i := 0; i < 5; i++ {
		sell(left, "a", "F1")
		sell(right, "c", "F1")
	}
	// Each side sold 5 against its local view: 10 total for 5 seats.
	if left.Sold("F1")+right.Sold("F1") != 10 {
		t.Fatalf("optimistic sales %d+%d", left.Sold("F1"), right.Sold("F1"))
	}
}

func TestReconciliationByStateExchange(t *testing.T) {
	left := New("a", full, PolicyAllocation, map[string]int{"F1": 8})
	right := New("c", full, PolicyAllocation, map[string]int{"F1": 8})
	onConfig(t, left, regCfg("a", "b"))
	onConfig(t, right, regCfg("c", "d"))
	sell(left, "a", "F1")
	sell(left, "b", "F1")
	sell(right, "c", "F1")

	// Merge: both install the full configuration and exchange state.
	stateL := onConfig(t, left, regCfg("a", "b", "c", "d"))
	stateR := onConfig(t, right, regCfg("a", "b", "c", "d"))
	left.OnDeliver("c", stateR)
	left.OnDeliver("a", stateL)
	right.OnDeliver("a", stateL)
	right.OnDeliver("c", stateR)

	if left.Sold("F1") != 3 || right.Sold("F1") != 3 {
		t.Fatalf("reconciled totals %d/%d, want 3/3", left.Sold("F1"), right.Sold("F1"))
	}
	if left.Overbooked("F1") != 0 {
		t.Fatalf("overbooked %d, want 0", left.Overbooked("F1"))
	}
}

func TestOverbookedDetectedAfterOptimisticMerge(t *testing.T) {
	left := New("a", full, PolicyOptimistic, map[string]int{"F1": 4})
	right := New("c", full, PolicyOptimistic, map[string]int{"F1": 4})
	onConfig(t, left, regCfg("a", "b"))
	onConfig(t, right, regCfg("c", "d"))
	for i := 0; i < 4; i++ {
		sell(left, "a", "F1")
		sell(right, "c", "F1")
	}
	stateL := onConfig(t, left, regCfg("a", "b", "c", "d"))
	stateR := onConfig(t, right, regCfg("a", "b", "c", "d"))
	left.OnDeliver("c", stateR)
	right.OnDeliver("a", stateL)
	if left.Overbooked("F1") != 4 || right.Overbooked("F1") != 4 {
		t.Fatalf("overbooked %d/%d, want 4/4", left.Overbooked("F1"), right.Overbooked("F1"))
	}
}

func TestStateExchangeIdempotent(t *testing.T) {
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 5})
	sell(r, "a", "F1")
	state := onConfig(t, r, regCfg("a", "b", "c", "d"))
	for i := 0; i < 3; i++ {
		r.OnDeliver("a", state)
	}
	if r.Sold("F1") != 1 {
		t.Fatalf("sold %d after redundant state messages, want 1", r.Sold("F1"))
	}
}

func TestTransitionalConfigIgnored(t *testing.T) {
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 5})
	tr := model.Configuration{
		ID:      model.TransitionalID(model.RegularID(2, "a"), model.RegularID(1, "a")),
		Members: model.NewProcessSet("a"),
	}
	if out := onConfig(t, r, tr); out != nil {
		t.Fatal("transitional configuration should produce no state message")
	}
	if r.partitioned {
		t.Fatal("transitional configuration should not change partition state")
	}
}

func TestUnknownFlightDeclined(t *testing.T) {
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 5})
	sell(r, "a", "F9")
	res := r.Results()
	if len(res) != 1 || res[0].Confirmed {
		t.Fatalf("unknown flight results %+v", res)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("garbage must not decode")
	}
	r := New("a", full, PolicyAllocation, map[string]int{"F1": 1})
	r.OnDeliver("a", []byte("{bad"))
	if len(r.Results()) != 0 {
		t.Fatal("garbage delivery should be ignored")
	}
}

func TestDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas of the same component fed the same delivery stream
	// must agree exactly.
	a := New("a", full, PolicyAllocation, map[string]int{"F1": 6, "F2": 2})
	b := New("b", full, PolicyAllocation, map[string]int{"F1": 6, "F2": 2})
	cfg := regCfg("a", "b")
	onConfig(t, a, cfg)
	onConfig(t, b, cfg)
	stream := []struct {
		seller model.ProcessID
		flight string
	}{
		{"a", "F1"}, {"b", "F2"}, {"a", "F2"}, {"b", "F1"}, {"a", "F2"},
	}
	for _, s := range stream {
		sell(a, s.seller, s.flight)
		sell(b, s.seller, s.flight)
	}
	for _, fl := range []string{"F1", "F2"} {
		if a.Sold(fl) != b.Sold(fl) {
			t.Fatalf("replicas diverged on %s: %d vs %d", fl, a.Sold(fl), b.Sold(fl))
		}
	}
	ra, rb := a.Results(), b.Results()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d diverged: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

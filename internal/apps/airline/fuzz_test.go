package airline

import (
	"testing"

	"repro/internal/model"
)

// FuzzReplica feeds arbitrary payloads into a replica: no panic, and state
// stays internally consistent (sold never exceeds what results record).
func FuzzReplica(f *testing.F) {
	f.Add([]byte(`{"kind":"sell","flight":"F1"}`))
	f.Add([]byte(`{"kind":"state","soldBy":{"F1":{"a":2}}}`))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := New("a", model.NewProcessSet("a", "b"), PolicyAllocation, map[string]int{"F1": 3})
		r.OnDeliver("b", data)
		r.OnDeliver("a", data)
		if r.Confirmed() > len(r.Results()) {
			t.Fatal("confirmed exceeds decisions")
		}
	})
}

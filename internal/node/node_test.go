package node

import (
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/stable"
	"repro/internal/wire"
)

// mockEnv records the node's outputs and lets tests fire timers manually.
type mockEnv struct {
	sent    []wire.Message
	timers  map[TimerKind]time.Duration
	deliver []Delivery
	confs   []ConfigChange
	trace   []model.Event
}

var _ Env = (*mockEnv)(nil)

func newMockEnv() *mockEnv {
	return &mockEnv{timers: make(map[TimerKind]time.Duration)}
}

func (m *mockEnv) Broadcast(msg wire.Message)            { m.sent = append(m.sent, msg) }
func (m *mockEnv) SetTimer(k TimerKind, d time.Duration) { m.timers[k] = d }
func (m *mockEnv) CancelTimer(k TimerKind)               { delete(m.timers, k) }
func (m *mockEnv) Deliver(d Delivery)                    { m.deliver = append(m.deliver, d) }
func (m *mockEnv) DeliverConfig(c ConfigChange)          { m.confs = append(m.confs, c) }
func (m *mockEnv) Trace(e model.Event)                   { m.trace = append(m.trace, e) }

func (m *mockEnv) take() []wire.Message {
	out := m.sent
	m.sent = nil
	return out
}

func newNode(id model.ProcessID) (*Node, *mockEnv, *stable.Store) {
	env := newMockEnv()
	store := &stable.Store{}
	n := New(id, DefaultConfig(), env, env, store)
	return n, env, store
}

func TestStartBeginsGathering(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	if n.Mode() != Gathering {
		t.Fatalf("mode %v, want gathering", n.Mode())
	}
	msgs := env.take()
	if len(msgs) == 0 {
		t.Fatal("start should broadcast a join")
	}
	if _, ok := msgs[0].(wire.Join); !ok {
		t.Fatalf("first message %T, want join", msgs[0])
	}
	if _, ok := env.timers[TimerJoin]; !ok {
		t.Fatal("join timer should be armed")
	}
}

func TestSubmitWhileDownFails(t *testing.T) {
	n, _, _ := newNode("p")
	n.Start()
	n.Crash()
	if err := n.Submit([]byte("x"), model.Safe); err != ErrDown {
		t.Fatalf("Submit on down node: %v, want ErrDown", err)
	}
}

func TestCrashEmitsFailEventAndClearsTimers(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	n.Crash()
	if n.Mode() != Down {
		t.Fatalf("mode %v, want down", n.Mode())
	}
	found := false
	for _, e := range env.trace {
		if e.Type == model.EventFail && e.Proc == "p" {
			found = true
		}
	}
	if !found {
		t.Fatal("crash should emit a fail event")
	}
	if len(env.timers) != 0 {
		t.Fatalf("timers after crash: %v", env.timers)
	}
	// Idempotent: a second crash emits nothing new.
	before := len(env.trace)
	n.Crash()
	if len(env.trace) != before {
		t.Fatal("double crash should be a no-op")
	}
}

func TestSenderSeqSurvivesCrash(t *testing.T) {
	n, _, store := newNode("p")
	n.Start()
	_ = n.Submit([]byte("a"), model.Agreed)
	_ = n.Submit([]byte("b"), model.Agreed)
	if store.Load().SenderSeq != 2 {
		t.Fatalf("persisted sender seq %d, want 2", store.Load().SenderSeq)
	}
	n.Crash()
	n.Recover()
	_ = n.Submit([]byte("c"), model.Agreed)
	if store.Load().SenderSeq != 3 {
		t.Fatalf("post-recovery sender seq %d, want 3 (no reuse)", store.Load().SenderSeq)
	}
}

func TestDownNodeIgnoresMessagesAndTimers(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	n.Crash()
	env.take()
	n.OnMessage("q", wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 1})
	n.OnTimer(TimerJoin)
	if len(env.take()) != 0 {
		t.Fatal("down node must not transmit")
	}
}

// driveToSingleton pushes a lone node through gather timeout to a singleton
// ring, looping messages back to it (loopback of the broadcast medium).
func driveToSingleton(t *testing.T, n *Node, env *mockEnv) {
	t.Helper()
	loop := func() {
		for _, msg := range env.take() {
			n.OnMessage(n.ID(), msg)
		}
	}
	loop()
	// Join timeout authorises singleton consensus.
	for i := 0; i < 5 && n.Mode() != Operational; i++ {
		n.OnTimer(TimerJoin)
		loop()
		loop()
		loop()
	}
	if n.Mode() != Operational {
		t.Fatalf("singleton did not form: mode %v", n.Mode())
	}
}

func TestSingletonFormsAndDeliversOwnSafeMessage(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	cfg := n.CurrentConfig()
	if !cfg.Members.Equal(model.NewProcessSet("p")) {
		t.Fatalf("singleton config %v", cfg)
	}
	if len(env.confs) == 0 {
		t.Fatal("configuration change should reach the application")
	}

	_ = n.Submit([]byte("mine"), model.Safe)
	// Loop tokens and data back (singleton ring: self-successor).
	for i := 0; i < 6 && len(env.deliver) == 0; i++ {
		for _, msg := range env.take() {
			n.OnMessage("p", msg)
		}
	}
	if len(env.deliver) != 1 || string(env.deliver[0].Payload) != "mine" {
		t.Fatalf("deliveries %v", env.deliver)
	}
	if env.deliver[0].Service != model.Safe {
		t.Fatal("service level lost")
	}
}

func TestTraceSendEmittedAtSequencing(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	_ = n.Submit([]byte("x"), model.Agreed)
	for i := 0; i < 6; i++ {
		for _, msg := range env.take() {
			n.OnMessage("p", msg)
		}
	}
	var sends, delivers int
	for _, e := range env.trace {
		switch e.Type {
		case model.EventSend:
			sends++
			if e.Config != n.CurrentConfig().ID {
				t.Fatalf("send traced in %v, want %v", e.Config, n.CurrentConfig().ID)
			}
		case model.EventDeliver:
			delivers++
		}
	}
	if sends != 1 || delivers != 1 {
		t.Fatalf("trace sends=%d delivers=%d, want 1/1", sends, delivers)
	}
}

func TestRecoveredNodeRedeliversNothing(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	_ = n.Submit([]byte("once"), model.Safe)
	for i := 0; i < 6; i++ {
		for _, msg := range env.take() {
			n.OnMessage("p", msg)
		}
	}
	if len(env.deliver) != 1 {
		t.Fatalf("deliveries before crash: %d", len(env.deliver))
	}
	n.Crash()
	n.Recover()
	driveToSingleton(t, n, env)
	for i := 0; i < 6; i++ {
		for _, msg := range env.take() {
			n.OnMessage("p", msg)
		}
	}
	if len(env.deliver) != 1 {
		t.Fatalf("recovered node re-delivered: %v", env.deliver)
	}
}

func TestTokenLossTriggersGather(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	env.take()
	n.OnTimer(TimerTokenLoss)
	if n.Mode() != Gathering {
		t.Fatalf("mode %v after token loss, want gathering", n.Mode())
	}
	joins := 0
	for _, m := range env.take() {
		if _, ok := m.(wire.Join); ok {
			joins++
		}
	}
	if joins == 0 {
		t.Fatal("token loss should broadcast a join")
	}
}

func TestForeignTrafficTriggersGather(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	env.take()
	foreign := wire.Token{Ring: model.RegularID(9, "z"), TokenID: 3}
	n.OnMessage("z", foreign)
	if n.Mode() != Gathering {
		t.Fatalf("mode %v after foreign token, want gathering", n.Mode())
	}
}

func TestStaleJoinFromMemberIgnored(t *testing.T) {
	n, env, _ := newNode("p")
	n.Start()
	driveToSingleton(t, n, env)
	env.take()
	// A stale join from p itself (member, old ring knowledge).
	n.OnMessage("p", wire.Join{Sender: "p", Alive: []model.ProcessID{"p"}, MaxRingSeq: 0, Attempt: 999})
	if n.Mode() != Operational {
		t.Fatalf("mode %v, stale join must not disturb the ring", n.Mode())
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		Operational: "operational", Gathering: "gathering",
		Recovering: "recovering", Down: "down",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestMembershipPhaseVisibleThroughMode(t *testing.T) {
	n, _, _ := newNode("p")
	n.Start()
	// Another process joins: consensus on {p,q} reaches commit, p being
	// the representative broadcasts Commit.
	n.OnMessage("q", wire.Join{Sender: "q", Alive: []model.ProcessID{"p", "q"}, Attempt: 1})
	if n.Mode() != Gathering {
		t.Fatalf("mode %v, want gathering while commit pending", n.Mode())
	}
	if n.mem.Phase() != membership.Commit {
		t.Fatalf("membership phase %v, want commit", n.mem.Phase())
	}
}

func TestBroadcastDataChunksIntoBatches(t *testing.T) {
	env := newMockEnv()
	cfg := DefaultConfig()
	cfg.MaxBatch = 2
	n := New("p", cfg, env, env, &stable.Store{})
	ds := make([]wire.Data, 5)
	for i := range ds {
		ds[i] = wire.Data{Seq: uint64(i + 1)}
	}
	n.broadcastData(ds)
	msgs := env.take()
	if len(msgs) != 3 {
		t.Fatalf("sent %d packets, want 3 (2+2+1)", len(msgs))
	}
	for i, want := range []int{2, 2} {
		b, ok := msgs[i].(wire.DataBatch)
		if !ok || len(b.Msgs) != want {
			t.Fatalf("packet %d = %v, want batch of %d", i, msgs[i], want)
		}
	}
	if d, ok := msgs[2].(wire.Data); !ok || d.Seq != 5 {
		t.Fatalf("trailing packet = %v, want single data seq 5", msgs[2])
	}

	// A full chunk at the end stays one batch; a lone message is sent bare.
	n.broadcastData(ds[:2])
	if msgs = env.take(); len(msgs) != 1 {
		t.Fatalf("sent %d packets for exact chunk, want 1", len(msgs))
	}
	if b, ok := msgs[0].(wire.DataBatch); !ok || len(b.Msgs) != 2 {
		t.Fatalf("packet = %v, want batch of 2", msgs[0])
	}
	n.broadcastData(ds[:1])
	if msgs = env.take(); len(msgs) != 1 {
		t.Fatalf("sent %d packets for one message, want 1", len(msgs))
	}
	if _, ok := msgs[0].(wire.Data); !ok {
		t.Fatalf("packet = %T, want bare data", msgs[0])
	}
}

func TestBroadcastDataDisabledBatchingSendsSingles(t *testing.T) {
	env := newMockEnv()
	cfg := DefaultConfig()
	cfg.MaxBatch = 1
	n := New("p", cfg, env, env, &stable.Store{})
	n.broadcastData([]wire.Data{{Seq: 1}, {Seq: 2}, {Seq: 3}})
	msgs := env.take()
	if len(msgs) != 3 {
		t.Fatalf("sent %d packets, want 3 singles", len(msgs))
	}
	for i, m := range msgs {
		if _, ok := m.(wire.Data); !ok {
			t.Fatalf("packet %d = %T, want bare data", i, m)
		}
	}
}

func TestSubmitBacklogBounded(t *testing.T) {
	env := newMockEnv()
	cfg := DefaultConfig()
	cfg.MaxPending = 2
	n := New("p", cfg, env, env, &stable.Store{})
	n.Start()
	for i := 0; i < 2; i++ {
		if err := n.Submit([]byte("x"), model.Safe); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := n.Submit([]byte("x"), model.Safe); err != ErrBacklog {
		t.Fatalf("submit over bound returned %v, want ErrBacklog", err)
	}
	if got := n.PendingDepth(); got != 2 {
		t.Fatalf("PendingDepth = %d, want 2", got)
	}
}

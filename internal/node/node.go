// Package node composes the protocol stack into a complete EVS process:
// the Totem-style total ordering ring (internal/totem), the membership
// algorithm (internal/membership), the EVS recovery algorithm
// (internal/evs) and stable storage (internal/stable).
//
// A Node is a single-threaded state machine driven by its environment: the
// harness (deterministic simulation or live transport) calls OnMessage,
// OnTimer, Submit, Crash and Recover, and the node calls back through Env
// to transmit messages, manage timers, deliver to the application and
// record trace events for the specification checker.
package node

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/evs"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/totem"
	"repro/internal/wire"
)

// Mode is the node's protocol mode.
type Mode int

const (
	// Operational: a regular configuration is installed and the token
	// circulates (Step 1 of the EVS algorithm).
	Operational Mode = iota + 1
	// Gathering: the membership algorithm is reconfiguring.
	Gathering
	// Recovering: the EVS recovery algorithm (Steps 2-6) is running for
	// a proposed new configuration.
	Recovering
	// Down: the process has failed.
	Down
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Operational:
		return "operational"
	case Gathering:
		return "gathering"
	case Recovering:
		return "recovering"
	case Down:
		return "down"
	default:
		return "mode(?)"
	}
}

// TimerKind identifies the node's timers.
type TimerKind int

const (
	// TimerTokenLoss fires when the token has not arrived in time:
	// evidence of failure or partition.
	TimerTokenLoss TimerKind = iota + 1
	// TimerTokenRetrans re-sends the last forwarded token.
	TimerTokenRetrans
	// TimerJoin retries the membership join and eventually declares
	// silent processes failed.
	TimerJoin
	// TimerCommit bounds the membership commit phase.
	TimerCommit
	// TimerRecoveryRetry re-sends recovery state to mask message loss.
	TimerRecoveryRetry
	// TimerRecoveryTimeout bounds a recovery attempt; on expiry the
	// membership algorithm restarts with a reduced view.
	TimerRecoveryTimeout
)

// Delivery is an application-facing message delivery.
type Delivery struct {
	Msg     model.MessageID
	Payload []byte
	Service model.Service
	Config  model.Configuration // configuration in which delivered
}

// ConfigChange is an application-facing configuration change delivery.
type ConfigChange struct {
	Config model.Configuration
}

// Transport is the medium half of the node's environment: how messages
// leave the process. It is implemented by the deterministic simulator,
// the in-process live hub, and the real network transports
// (internal/transport), all interchangeably.
type Transport interface {
	// Broadcast transmits a message on the medium, to be received by
	// every process in the sender's component, including the sender
	// (self-delivery arrives back through OnMessage like any other
	// receipt — the transport must not call into the node
	// synchronously).
	//
	// Ownership contract: the message and everything it references
	// (payloads, member lists, counter vectors) are immutable from the
	// moment they are handed to Broadcast. The transport may hand the
	// same value to many receivers, serialise it later from another
	// goroutine, or both; neither the caller nor any receiver may
	// mutate it. The wireown analyzer mechanises this convention at the
	// sites where aliases are created.
	Broadcast(msg wire.Message)
}

// Host is the local half of the node's environment: timers, application
// delivery and trace recording. Unlike Transport implementations, a Host
// is always process-local and its callbacks run on the node's event
// path.
type Host interface {
	// SetTimer (re)arms a timer; CancelTimer disarms it.
	SetTimer(kind TimerKind, d time.Duration)
	CancelTimer(kind TimerKind)
	// Deliver hands a message to the application. The Delivery's
	// payload is immutable: it may alias a received wire message (and
	// therefore a transport buffer) under the Transport ownership
	// contract.
	Deliver(d Delivery)
	// DeliverConfig hands a configuration change to the application.
	DeliverConfig(c ConfigChange)
	// Trace records a formal-model event for the specification checker.
	Trace(e model.Event)
}

// Env is the node's complete environment: one value implementing both
// halves. Single-object harnesses (the simulator's env, a live process)
// satisfy it directly; split deployments pass a Transport and a Host to
// New separately.
type Env interface {
	Transport
	Host
}

// composedEnv glues a Transport and a Host into one Env value for the
// node's internal call sites.
type composedEnv struct {
	Transport
	Host
}

// Config tunes the node's protocol timing.
type Config struct {
	TokenLoss       time.Duration
	TokenRetrans    time.Duration
	TokenRetransMax int
	JoinRetry       time.Duration
	CommitTimeout   time.Duration
	RecoveryRetry   time.Duration
	RecoveryTimeout time.Duration
	Totem           totem.Options
	// MaxBatch bounds how many data messages one broadcast packet
	// (wire.DataBatch) may carry; values ≤ 1 disable batching.
	MaxBatch int
	// MaxPending bounds the send backlog (messages submitted but not yet
	// sequenced); Submit returns ErrBacklog beyond it. Zero means
	// unbounded.
	MaxPending int
}

// DefaultConfig returns timing suited to the simulated network's
// sub-millisecond delays.
func DefaultConfig() Config {
	return Config{
		TokenLoss:       40 * time.Millisecond,
		TokenRetrans:    6 * time.Millisecond,
		TokenRetransMax: 4,
		JoinRetry:       10 * time.Millisecond,
		CommitTimeout:   25 * time.Millisecond,
		RecoveryRetry:   8 * time.Millisecond,
		RecoveryTimeout: 120 * time.Millisecond,
		Totem:           totem.DefaultOptions(),
		MaxBatch:        64,
		MaxPending:      2048,
	}
}

// bufferedMsg is a message for the proposed new configuration received
// during recovery (Step 2 buffering).
type bufferedMsg struct {
	from model.ProcessID
	msg  wire.Message
}

// Node is one EVS process.
type Node struct {
	id    model.ProcessID
	cfg   Config
	env   composedEnv
	store *stable.Store

	mode    Mode
	mem     *membership.Protocol
	ring    *totem.Ring
	ringCfg model.Configuration // current (last installed) regular configuration
	rec     *evs.Recovery
	newRing model.Configuration

	// Old-configuration state carried between operational mode and
	// recovery attempts.
	oldLog      map[uint64]wire.Data
	oldState    totem.State
	obligations model.ProcessSet
	pending     []totem.Pending
	senderSeq   uint64
	// seenSeqs is the highest sender sequence observed per originator
	// (including self): redundant evidence that heals a transiently
	// wrapped senderSeq, locally at Submit/Start and from peers'
	// exchanges at configuration installation (Specification 1.4
	// forbids reusing a message identifier).
	seenSeqs     map[model.ProcessID]uint64
	buffered     []bufferedMsg
	preBuffer    []bufferedMsg // proposed-ring messages received before Install
	lastToken    *wire.Token
	retransLeft  int
	everInstalld bool

	// met is this process's observability scope (nil disables). Recovery
	// step timings are taken against the scope's clock: recStart marks
	// Step 2 (ring formed), recPlanAt marks Step 4 (plan computed).
	met       *obs.Metrics
	recStart  time.Duration
	recPlanAt time.Duration
	recPlan   bool
	recDone   bool
}

// ErrDown is returned by Submit when the process has failed.
var ErrDown = errors.New("process is down")

// ErrBacklog is returned by Submit when the send backlog is full
// (Config.MaxPending messages are already queued for sequencing): the
// offered load exceeds what the ring's flow control is draining, and the
// submitter must back off instead of growing the queue without bound.
var ErrBacklog = errors.New("send backlog full")

// New creates a node over a transport (the medium) and a host (timers,
// delivery, tracing). Harnesses implementing both halves on one value
// pass it twice. The store may contain a prior incarnation's state
// (recovery with stable storage intact); Start consults it.
func New(id model.ProcessID, cfg Config, tr Transport, host Host, store *stable.Store) *Node {
	return &Node{
		id:    id,
		cfg:   cfg,
		env:   composedEnv{Transport: tr, Host: host},
		store: store,
	}
}

// SetMetrics attaches the process's observability scope (nil disables).
// Call before Start; the scope is threaded into each layer as it is built.
func (n *Node) SetMetrics(m *obs.Metrics) { n.met = m }

// Metrics returns the process's observability scope (nil when disabled).
func (n *Node) Metrics() *obs.Metrics { return n.met }

// ID returns the process identifier.
func (n *Node) ID() model.ProcessID { return n.id }

// Mode returns the current protocol mode.
func (n *Node) Mode() Mode { return n.mode }

// CurrentConfig returns the last installed regular configuration (zero
// before the first installation).
func (n *Node) CurrentConfig() model.Configuration { return n.ringCfg }

// Start boots the process: it loads stable storage (a recovering process
// resumes its identity and obligations) and begins gathering a membership.
// The load is integrity-checked: corrupted log entries are rejected with
// propagated errors (the recovery machinery re-requests the gaps), and
// regressed counters are healed from redundant evidence before any of
// them can mint a duplicate identifier.
func (n *Node) Start() {
	rec, loadErrs := n.store.LoadChecked()
	for range loadErrs {
		n.met.Inc(obs.CStateRejects)
	}
	n.senderSeq = rec.SenderSeq
	n.seenSeqs = rec.SeenSeqs
	if n.seenSeqs == nil {
		n.seenSeqs = make(map[model.ProcessID]uint64)
	}
	if seen := n.seenSeqs[n.id]; seen > n.senderSeq {
		// The persisted sender counter regressed below our own recorded
		// observations of it: a transient wrap. Heal from the evidence.
		n.senderSeq = seen
		n.met.Inc(obs.CSeqHeals)
	}
	n.ringCfg = rec.LastRegular
	n.oldLog = rec.Log
	if n.oldLog == nil {
		n.oldLog = make(map[uint64]wire.Data)
	}
	n.oldState = totem.State{
		DeliveredUpTo: rec.DeliveredUpTo,
		SafeBound:     rec.SafeBound,
		HighestSeen:   rec.HighestSeen,
		Trimmed:       rec.TrimmedUpTo,
	}
	n.obligations = rec.Obligations
	n.mem = membership.New(n.id, rec.JoinAttempt, rec.MaxRingSeq)
	if !n.ringCfg.ID.IsZero() {
		// Resume knowledge of the prior configuration for staleness
		// checks, without resetting gather state.
		n.mem.SetCurrent(n.ringCfg)
	}
	n.mem.SetMetrics(n.met)
	n.mode = Gathering
	n.met.Inc(obs.CGatherStart)
	n.met.Event(obs.KGatherEnter, uint64(obs.CauseStart), 0)
	n.applyMemActions(n.mem.StartGather())
	n.reconcileMemTimers()
}

// Submit queues an application message for sending with the given service.
// Messages submitted while no regular configuration is installed are
// buffered and sent — in the formal model's sense — once one is.
//
//evs:noalloc
func (n *Node) Submit(payload []byte, svc model.Service) error {
	if n.mode == Down {
		return ErrDown
	}
	if n.cfg.MaxPending > 0 && n.PendingDepth() >= n.cfg.MaxPending {
		n.met.Inc(obs.CSubmitBacklog)
		return ErrBacklog
	}
	if seen := n.seenSeqs[n.id]; seen > n.senderSeq {
		// A live perturbation wrapped the counter since the last send;
		// heal from the observation record before minting an identifier
		// (Specification 1.4).
		n.senderSeq = seen
		n.met.Inc(obs.CSeqHeals)
	}
	n.senderSeq++
	if n.seenSeqs == nil {
		n.seenSeqs = make(map[model.ProcessID]uint64)
	}
	n.seenSeqs[n.id] = n.senderSeq
	p := totem.Pending{
		ID:      model.MessageID{Sender: n.id, SenderSeq: n.senderSeq},
		Service: svc,
		Payload: payload,
	}
	if n.mode == Operational && n.ring != nil {
		n.ring.Submit(p)
	} else {
		n.pending = append(n.pending, p)
	}
	n.met.Inc(obs.CSubmits)
	n.met.Set(obs.GPendingDepth, int64(n.PendingDepth()))
	n.persist()
	return nil
}

// PendingDepth returns the send backlog: messages submitted but not yet
// sequenced on a ring (the queue Submit sheds against via ErrBacklog).
func (n *Node) PendingDepth() int {
	d := len(n.pending)
	if n.ring != nil {
		d += n.ring.PendingCount()
	}
	return d
}

// Crash fails the process: volatile state is lost, stable storage remains.
func (n *Node) Crash() {
	if n.mode == Down {
		return
	}
	n.env.Trace(model.Event{
		Type:    model.EventFail,
		Proc:    n.id,
		Config:  n.ringCfg.ID,
		Members: n.ringCfg.Members,
	})
	n.met.Event(obs.KCrash, 0, 0)
	n.mode = Down
	n.ring = nil
	n.rec = nil
	n.mem = nil
	n.oldLog = nil
	n.pending = nil
	n.buffered = nil
	n.lastToken = nil
	n.seenSeqs = nil
	n.cancelAllTimers()
}

// Recover restarts a failed process with its stable storage intact and the
// same identifier.
func (n *Node) Recover() {
	if n.mode != Down {
		return
	}
	n.met.Event(obs.KRecover, 0, 0)
	n.mode = Gathering
	n.Start()
}

// cancelAllTimers disarms every timer.
func (n *Node) cancelAllTimers() {
	for _, k := range []TimerKind{
		TimerTokenLoss, TimerTokenRetrans, TimerJoin,
		TimerCommit, TimerRecoveryRetry, TimerRecoveryTimeout,
	} {
		n.env.CancelTimer(k)
	}
}

// persist saves the hot-path protocol scalars: watermarks, counters and
// the obligation set. Message-log persistence is incremental (persistLog)
// and full snapshots happen only at configuration boundaries
// (persistSnapshot), so the per-event cost is independent of log size.
//
//evs:noalloc
func (n *Node) persist() {
	var st totem.State
	switch {
	case n.mode == Operational && n.ring != nil:
		st = n.ring.Watermarks()
	case n.rec != nil:
		st = n.rec.Watermarks()
	default:
		st = n.oldState
	}
	obligations := n.obligations
	if n.rec != nil {
		obligations = n.rec.Obligations()
	}
	n.store.SetScalars(stable.Record{
		SenderSeq:     n.senderSeq,
		JoinAttempt:   n.memAttempt(),
		MaxRingSeq:    n.memMaxRingSeq(),
		LastRegular:   n.ringCfg,
		DeliveredUpTo: st.DeliveredUpTo,
		SafeBound:     st.SafeBound,
		HighestSeen:   st.HighestSeen,
		TrimmedUpTo:   st.Trimmed,
		Obligations:   obligations,
		SeenSeqs:      n.seenSeqs,
	})
}

// noteSeen records observation evidence for an originator's sender
// sequence counter (the healing source for transient counter wraps).
//
//evs:noalloc
func (n *Node) noteSeen(id model.MessageID) {
	if n.seenSeqs == nil {
		n.seenSeqs = make(map[model.ProcessID]uint64)
	}
	if id.SenderSeq > n.seenSeqs[id.Sender] {
		n.seenSeqs[id.Sender] = id.SenderSeq
	}
}

// ---------------------------------------------------------------------------
// Live perturbation surface (self-stabilization fault model).
//
// The chaos harness calls these between token visits to corrupt the
// volatile state of a running node — the transient faults of the
// Practically-Self-Stabilizing Virtual Synchrony model, as opposed to
// the crash-time stable-storage faults. Each reports whether state
// actually changed, so the harness can count materialized faults.

// PerturbSenderSeq wraps the live sender sequence counter to half its
// value. The Submit-time heal must restore it from seenSeqs before the
// next identifier is minted.
func (n *Node) PerturbSenderSeq() bool {
	if n.mode == Down || n.senderSeq == 0 {
		return false
	}
	n.senderSeq /= 2
	return true
}

// PerturbObligations plants k ghost processes in the live obligation
// set. Recovery-start validation must reject them.
func (n *Node) PerturbObligations(k int) bool {
	if n.mode == Down || k <= 0 {
		return false
	}
	for i := 0; i < k; i++ {
		n.obligations = n.obligations.Add(model.ProcessID(fmt.Sprintf("ghost-%d", i+1)))
	}
	return true
}

// PerturbRingSeq regresses the live membership freshness counter to
// half its value. The consensus-time clamp and peer join adoption must
// heal it.
func (n *Node) PerturbRingSeq() bool {
	if n.mode == Down || n.mem == nil {
		return false
	}
	return n.mem.CorruptMaxRingSeq()
}

// persistLog persists one received message before it is acknowledged, so a
// recovered process can still rebroadcast and deliver what it acknowledged.
//
//evs:noalloc
func (n *Node) persistLog(d wire.Data) {
	n.store.PutLog(d)
}

// persistLogBatch persists every message of one packet or token visit as a
// single stable-storage write.
//
//evs:noalloc
func (n *Node) persistLogBatch(ds []wire.Data) {
	n.store.PutLogBatch(ds)
}

// persistSnapshot rewrites the whole log (configuration boundaries).
func (n *Node) persistSnapshot(log map[uint64]wire.Data) {
	n.store.ClearLog()
	for _, d := range log {
		n.store.PutLog(d)
	}
	n.persist()
}

// memMaxRingSeq returns the membership protocol's ring-sequence watermark.
func (n *Node) memMaxRingSeq() uint64 {
	if n.mem == nil {
		return 0
	}
	return n.mem.MaxRingSeq()
}

// memAttempt returns the membership protocol's join counter.
func (n *Node) memAttempt() uint64 {
	if n.mem == nil {
		return n.store.Load().JoinAttempt
	}
	return n.mem.Attempt()
}

package node

import (
	"testing"

	"repro/internal/model"
	"repro/internal/stable"
)

// pairWorld connects two (or more) nodes through synchronous loopback
// broadcast, exercising the full lifecycle — gather, commit, install,
// recovery, operational — without the simulation harness, so this package
// covers its own composition logic.
type pairWorld struct {
	t     *testing.T
	ids   []model.ProcessID
	nodes map[model.ProcessID]*Node
	envs  map[model.ProcessID]*mockEnv
	// cut(from,to) drops the message when true.
	cut func(from, to model.ProcessID) bool
}

func newPairWorld(t *testing.T, ids ...model.ProcessID) *pairWorld {
	w := &pairWorld{
		t:     t,
		ids:   ids,
		nodes: make(map[model.ProcessID]*Node),
		envs:  make(map[model.ProcessID]*mockEnv),
	}
	for _, id := range ids {
		env := newMockEnv()
		w.envs[id] = env
		w.nodes[id] = New(id, DefaultConfig(), env, env, &stable.Store{})
	}
	return w
}

// pump delivers queued broadcasts for a bounded number of rounds. It
// cannot wait for quiescence: once a ring is operational the token
// circulates forever by design.
func (w *pairWorld) pump() {
	for round := 0; round < 50; round++ {
		moved := false
		for _, from := range w.ids {
			for _, msg := range w.envs[from].take() {
				moved = true
				for _, to := range w.ids {
					if w.cut != nil && w.cut(from, to) {
						continue
					}
					w.nodes[to].OnMessage(from, msg)
				}
			}
		}
		if !moved {
			return
		}
	}
}

// fireJoinTimeouts triggers gather timeouts where armed.
func (w *pairWorld) fireJoinTimeouts() {
	for _, id := range w.ids {
		if _, ok := w.envs[id].timers[TimerJoin]; ok {
			w.nodes[id].OnTimer(TimerJoin)
		}
	}
	w.pump()
}

// rotateTokens processes pending token traffic a few rounds (tokens are in
// the broadcast stream already; this just pumps).
func (w *pairWorld) spin(n int) {
	for i := 0; i < n; i++ {
		w.pump()
	}
}

func (w *pairWorld) startAll() {
	for _, id := range w.ids {
		w.nodes[id].Start()
	}
	w.pump()
	w.fireJoinTimeouts()
	w.spin(4)
}

func TestPairFormsSharedRing(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	for _, id := range w.ids {
		n := w.nodes[id]
		if n.Mode() != Operational {
			t.Fatalf("%s mode %v, want operational", id, n.Mode())
		}
		if !n.CurrentConfig().Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s config %v", id, n.CurrentConfig())
		}
	}
	if w.nodes["a"].CurrentConfig().ID != w.nodes["b"].CurrentConfig().ID {
		t.Fatal("nodes installed different rings")
	}
}

func TestPairSafeDeliveryBothSides(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	if err := w.nodes["a"].Submit([]byte("x"), model.Safe); err != nil {
		t.Fatal(err)
	}
	w.spin(8)
	for _, id := range w.ids {
		ds := w.envs[id].deliver
		if len(ds) != 1 || string(ds[0].Payload) != "x" {
			t.Fatalf("%s deliveries %v", id, ds)
		}
	}
}

func TestPairRecoveryDeliversTransitionalConfigs(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	// Partition: all cross traffic cut; both should reform singletons
	// after token loss and join timeout.
	w.cut = func(from, to model.ProcessID) bool { return from != to }
	w.nodes["a"].OnTimer(TimerTokenLoss)
	w.nodes["b"].OnTimer(TimerTokenLoss)
	w.pump()
	for i := 0; i < 4; i++ {
		w.fireJoinTimeouts()
		w.spin(2)
	}
	for _, id := range w.ids {
		n := w.nodes[id]
		if n.Mode() != Operational {
			t.Fatalf("%s mode %v after partition, want operational singleton", id, n.Mode())
		}
		if !n.CurrentConfig().Members.Equal(model.NewProcessSet(id)) {
			t.Fatalf("%s config %v, want singleton", id, n.CurrentConfig())
		}
	}
	// The configuration stream at a must contain a transitional config
	// whose membership is {a} bridging the pair ring to the singleton.
	foundTrans := false
	for _, cc := range w.envs["a"].confs {
		if cc.Config.ID.IsTransitional() && cc.Config.Members.Equal(model.NewProcessSet("a")) {
			foundTrans = true
		}
	}
	if !foundTrans {
		t.Fatalf("no singleton transitional configuration at a: %v", w.envs["a"].confs)
	}

	// Heal: foreign traffic triggers remerge into a shared ring.
	w.cut = nil
	// b's next token broadcast will reach a as foreign traffic; force
	// some activity.
	_ = w.nodes["b"].Submit([]byte("wake"), model.Agreed)
	for i := 0; i < 6; i++ {
		w.fireJoinTimeouts()
		w.spin(3)
	}
	if w.nodes["a"].CurrentConfig().ID != w.nodes["b"].CurrentConfig().ID {
		t.Fatalf("remerge failed: %v vs %v",
			w.nodes["a"].CurrentConfig(), w.nodes["b"].CurrentConfig())
	}
	if !w.nodes["a"].CurrentConfig().Members.Equal(model.NewProcessSet("a", "b")) {
		t.Fatalf("merged config %v", w.nodes["a"].CurrentConfig())
	}
}

func TestPairPendingMessagesCarriedAcrossReconfiguration(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	// Submit while operational but suppress token processing by cutting
	// everything, then reconfigure: the message must be re-sequenced in
	// the next configuration and delivered (self-delivery).
	w.cut = func(from, to model.ProcessID) bool { return true }
	if err := w.nodes["a"].Submit([]byte("carried"), model.Safe); err != nil {
		t.Fatal(err)
	}
	w.envs["a"].take() // drop whatever was broadcast
	w.nodes["a"].OnTimer(TimerTokenLoss)
	w.cut = func(from, to model.ProcessID) bool { return from != to }
	for i := 0; i < 4; i++ {
		w.fireJoinTimeouts()
		w.spin(2)
	}
	found := false
	for _, d := range w.envs["a"].deliver {
		if string(d.Payload) == "carried" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pending message lost across reconfiguration: %v", w.envs["a"].deliver)
	}
}

func TestPairCrashRecoverRejoins(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	_ = w.nodes["a"].Submit([]byte("pre"), model.Safe)
	w.spin(8)
	w.nodes["b"].Crash()
	w.envs["b"].take()
	// b recovers; joins flow; they reform a shared ring.
	w.nodes["b"].Recover()
	for i := 0; i < 6; i++ {
		w.fireJoinTimeouts()
		w.spin(3)
	}
	if w.nodes["a"].CurrentConfig().ID != w.nodes["b"].CurrentConfig().ID {
		t.Fatalf("rejoin failed: %v vs %v",
			w.nodes["a"].CurrentConfig(), w.nodes["b"].CurrentConfig())
	}
	// b must not re-deliver "pre" after recovery (watermark persisted).
	count := 0
	for _, d := range w.envs["b"].deliver {
		if string(d.Payload) == "pre" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("b delivered 'pre' %d times, want once", count)
	}
}

func TestPairStateMachineTraceConforms(t *testing.T) {
	w := newPairWorld(t, "a", "b")
	w.startAll()
	_ = w.nodes["a"].Submit([]byte("m1"), model.Safe)
	_ = w.nodes["b"].Submit([]byte("m2"), model.Agreed)
	w.spin(8)
	var events []model.Event
	// Interleave the two traces by replaying env traces in rough
	// causal order: alternate small batches. The checker's generating
	// edges only need per-process order and send-before-deliver, which
	// loopback pumping preserved in each env's slice; merge by simple
	// round-robin while keeping per-process order (take from the env
	// whose next event is a send/conf first).
	a, b := w.envs["a"].trace, w.envs["b"].trace
	// Conservative merge: all of a's events before b's would break
	// send/deliver ordering, so interleave by type priority per step.
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		takeA := ai < len(a)
		if takeA && bi < len(b) {
			// Prefer the event that is a send or conf, they come
			// earliest in protocol order; otherwise alternate.
			if b[bi].Type == model.EventSend && a[ai].Type == model.EventDeliver {
				takeA = false
			}
		}
		if takeA {
			events = append(events, a[ai])
			ai++
		} else {
			events = append(events, b[bi])
			bi++
		}
	}
	_ = events
	// The merged trace ordering above is heuristic; assert only
	// per-process invariants via the per-env traces instead.
	for _, id := range w.ids {
		var sends, delivers int
		for _, e := range w.envs[id].trace {
			switch e.Type {
			case model.EventSend:
				sends++
			case model.EventDeliver:
				delivers++
			}
		}
		if sends != 1 {
			t.Fatalf("%s traced %d sends, want 1", id, sends)
		}
		if delivers != 2 {
			t.Fatalf("%s traced %d deliveries, want 2", id, delivers)
		}
	}
}

package node

import (
	"sort"

	"repro/internal/evs"
	"repro/internal/membership"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/totem"
	"repro/internal/wire"
)

// OnMessage routes a received wire message through the protocol stack.
func (n *Node) OnMessage(from model.ProcessID, msg wire.Message) {
	if n.mode == Down {
		return
	}
	if n.mem != nil && from != n.id {
		n.mem.NoteTraffic(from)
	}
	switch m := msg.(type) {
	case wire.Data:
		n.onData(from, m)
	case wire.DataBatch:
		// A batch is pure transport packing: each element is processed
		// exactly as if it had arrived in its own packet. The
		// operational same-ring case — the hot path — ingests the whole
		// batch in one pass: one delivery scan, one log write and one
		// scalar persist per packet instead of one per message.
		if n.mode == Operational && n.ring != nil && m.Ring == n.ringCfg.ID {
			n.onDataBatch(m)
			return
		}
		for _, d := range m.Msgs {
			if n.mode == Down {
				return
			}
			n.onData(from, d)
		}
	case wire.Token:
		n.onToken(from, m)
	case wire.Join:
		n.onJoin(m)
	case wire.Commit:
		n.maybeForeign(from, m.NewRing)
		n.applyMemActions(n.mem.OnCommit(m))
		n.reconcileMemTimers()
	case wire.CommitAck:
		n.applyMemActions(n.mem.OnCommitAck(m))
		n.reconcileMemTimers()
	case wire.Install:
		n.maybeForeign(from, m.NewRing)
		n.applyMemActions(n.mem.OnInstall(m))
		n.reconcileMemTimers()
	case wire.Exchange:
		if n.mode == Recovering && m.Ring == n.newRing.ID {
			n.applyRecActions(n.rec.OnExchange(m))
			return
		}
		if n.preBufferable(m.Ring) {
			n.preBuffer = append(n.preBuffer, bufferedMsg{from: from, msg: m})
			return
		}
		n.maybeForeign(from, m.Ring)
	case wire.RecoveryDone:
		if n.mode == Recovering && m.Ring == n.newRing.ID {
			n.applyRecActions(n.rec.OnDone(m))
			return
		}
		if n.preBufferable(m.Ring) {
			n.preBuffer = append(n.preBuffer, bufferedMsg{from: from, msg: m})
			return
		}
		n.maybeForeign(from, m.Ring)
	}
}

// preBufferable reports whether a message belongs to the ring this node has
// committed to but not yet been told to install: the representative's
// recovery traffic can overtake its Install on the medium, and dropping it
// would stall the recovery until a timeout.
func (n *Node) preBufferable(ring model.ConfigID) bool {
	return n.mode == Gathering &&
		n.mem != nil &&
		n.mem.Phase() == membership.Commit &&
		ring == n.mem.Proposed().ID
}

// maybeForeign starts a reconfiguration when traffic for an unknown ring
// arrives from a process outside the current (or proposed) configuration:
// evidence that components have merged.
func (n *Node) maybeForeign(from model.ProcessID, ring model.ConfigID) {
	switch n.mode {
	case Operational:
		if ring != n.ringCfg.ID && !n.ringCfg.Members.Contains(from) {
			n.enterGather(obs.CauseForeign)
			n.applyMemActions(n.mem.StartGather())
			n.reconcileMemTimers()
		}
	case Recovering:
		if ring != n.newRing.ID && ring != n.ringCfg.ID &&
			!n.newRing.Members.Contains(from) {
			n.abortRecovery()
			n.enterGather(obs.CauseForeign)
			n.applyMemActions(n.mem.StartGather())
			n.reconcileMemTimers()
		}
	}
}

// onDataBatch ingests an operational same-ring data batch in one pass.
// Semantically identical to routing each element through onData — the same
// messages are stored, persisted and delivered in the same total order —
// but the per-packet cost is flat: receipt bookkeeping per element, then
// one delivery collection, one batched log write and one scalar persist.
//
//evs:noalloc
func (n *Node) onDataBatch(m wire.DataBatch) {
	for _, d := range m.Msgs {
		n.noteSeen(d.ID)
	}
	deliveries, fresh := n.ring.OnDataBatch(m.Msgs)
	if len(fresh) == 0 {
		return
	}
	n.persistLogBatch(fresh)
	n.deliverAll(deliveries, n.ringCfg)
	n.persist()
}

// onData routes a data message by ring.
func (n *Node) onData(from model.ProcessID, d wire.Data) {
	n.noteSeen(d.ID)
	switch {
	case n.mode == Operational && n.ring != nil && d.Ring == n.ringCfg.ID:
		before := n.ring.Len()
		deliveries := n.ring.OnData(d)
		if n.ring.Len() > before {
			n.persistLog(d)
		}
		n.deliverAll(deliveries, n.ringCfg)
		n.persist()
	case n.mode == Recovering && d.Ring == n.newRing.ID:
		// Step 2: buffer messages for the proposed configuration.
		n.buffered = append(n.buffered, bufferedMsg{from: from, msg: d})
	case n.preBufferable(d.Ring):
		n.preBuffer = append(n.preBuffer, bufferedMsg{from: from, msg: d})
	case n.mode == Recovering && d.Ring == n.ringCfg.ID:
		// Rebroadcast (or straggler) of the old configuration.
		before := len(n.rec.Log())
		acts := n.rec.OnData(d)
		if n.rec != nil && len(n.rec.Log()) > before {
			n.persistLog(d)
		}
		n.applyRecActions(acts)
		if n.mode == Recovering {
			n.persist()
		}
	case n.mode == Gathering && d.Ring == n.ringCfg.ID:
		// Straggler while reconfiguring: merge into the carried log
		// (deliveries resume via the recovery algorithm). Sequence
		// numbers inside the trimmed prefix were already delivered and
		// certified safe; re-storing them would be dead weight.
		if _, ok := n.oldLog[d.Seq]; !ok && d.Seq > n.oldState.Trimmed {
			d.Retrans = false
			n.oldLog[d.Seq] = d
			if d.Seq > n.oldState.HighestSeen {
				n.oldState.HighestSeen = d.Seq
			}
			n.persistLog(d)
			n.persist()
		}
	default:
		n.maybeForeign(from, d.Ring)
	}
}

// onToken routes a token. Tokens travel on the broadcast medium; the
// successor of the sender processes it, everyone else observes it only for
// foreign-traffic detection.
func (n *Node) onToken(from model.ProcessID, t wire.Token) {
	switch {
	case n.mode == Operational && n.ring != nil && t.Ring == n.ringCfg.ID:
		// The token is broadcast on the medium; only the sender's ring
		// successor processes it.
		if n.successorOf(from, n.ringCfg.Members) == n.id {
			n.processToken(t)
		}
	case n.mode == Recovering && t.Ring == n.newRing.ID:
		if n.successorOf(from, n.newRing.Members) == n.id {
			n.buffered = append(n.buffered, bufferedMsg{from: from, msg: t})
		}
	case n.preBufferable(t.Ring):
		n.preBuffer = append(n.preBuffer, bufferedMsg{from: from, msg: t})
	default:
		n.maybeForeign(from, t.Ring)
	}
}

// successorOf returns the ring successor of p within members.
func (n *Node) successorOf(p model.ProcessID, members model.ProcessSet) model.ProcessID {
	m := members.Members()
	for i, id := range m {
		if id == p {
			return m[(i+1)%len(m)]
		}
	}
	return ""
}

// processToken runs a token visit through the ordering protocol.
//
//evs:noalloc
func (n *Node) processToken(t wire.Token) {
	res := n.ring.OnToken(t)
	if !res.Accepted {
		return
	}
	// Trace sends before their broadcast so history order respects the
	// formal model (send precedes every receipt).
	for _, d := range res.Sent {
		n.env.Trace(model.Event{
			Type:    model.EventSend,
			Proc:    n.id,
			Config:  n.ringCfg.ID,
			Members: n.ringCfg.Members,
			Msg:     d.ID,
			Service: d.Service,
		})
	}
	if len(res.Sent) > 0 {
		n.persistLogBatch(res.Sent)
	}
	n.broadcastData(res.Broadcasts)
	n.deliverAll(res.Deliveries, n.ringCfg)
	n.met.Set(obs.GPendingDepth, int64(n.PendingDepth()))
	fwd := res.Forward
	n.env.Broadcast(fwd) //lint:allow noalloc the medium API takes wire.Message; one boxed token per visit is the audited cost
	n.lastToken = &fwd
	n.retransLeft = n.cfg.TokenRetransMax
	n.env.SetTimer(TimerTokenRetrans, n.cfg.TokenRetrans)
	n.env.SetTimer(TimerTokenLoss, n.cfg.TokenLoss)
	n.persist()
}

// broadcastData transmits one token visit's data messages, packing them
// into wire.DataBatch packets of at most MaxBatch messages so the medium
// carries one packet per visit instead of one per message. A lone message
// travels unbatched.
//
// The input slice is the ring's per-visit scratch buffer, reused on the
// next token visit, while the medium retains each packet until its
// (delayed) delivery: every batch therefore carries a fresh copy of its
// window — one allocation per packet, amortised over up to MaxBatch
// messages, and the only way the handoff is sound.
//
//evs:noalloc
func (n *Node) broadcastData(ds []wire.Data) {
	max := n.cfg.MaxBatch
	if max <= 1 {
		for _, d := range ds {
			n.env.Broadcast(d) //lint:allow noalloc the medium API takes wire.Message; one boxed packet header per visit is the audited cost
			n.met.Inc(obs.CBatchesSent)
			n.met.Observe(obs.HBatchFill, 1)
		}
		return
	}
	for len(ds) > 0 {
		k := len(ds)
		if k > max {
			k = max
		}
		if k == 1 && len(ds) == 1 {
			n.env.Broadcast(ds[0]) //lint:allow noalloc the medium API takes wire.Message; one boxed packet header per visit is the audited cost
		} else {
			msgs := make([]wire.Data, k) // fresh per packet: the medium retains the batch past the visit
			copy(msgs, ds[:k])
			n.env.Broadcast(wire.DataBatch{Ring: n.ringCfg.ID, Msgs: msgs}) //lint:allow noalloc the medium API takes wire.Message; one boxed packet header per visit is the audited cost
		}
		n.met.Inc(obs.CBatchesSent)
		n.met.Observe(obs.HBatchFill, uint64(k))
		ds = ds[k:]
	}
}

// deliverAll delivers ordered messages to the application and the trace.
//
//evs:noalloc
func (n *Node) deliverAll(ds []wire.Data, cfg model.Configuration) {
	for _, d := range ds {
		n.env.Trace(model.Event{
			Type:    model.EventDeliver,
			Proc:    n.id,
			Config:  cfg.ID,
			Members: cfg.Members,
			Msg:     d.ID,
			Service: d.Service,
		})
		n.env.Deliver(Delivery{
			Msg:     d.ID,
			Payload: d.Payload,
			Service: d.Service,
			Config:  cfg,
		})
	}
}

// onJoin routes a membership join, filtering stale echoes.
func (n *Node) onJoin(j wire.Join) {
	if n.mem.Stale(j) {
		return
	}
	if n.mode == Recovering {
		// Echo of the gather that formed the configuration being
		// recovered: ignore rather than aborting the recovery.
		if n.newRing.Members.Contains(j.Sender) && j.MaxRingSeq < n.newRing.ID.Seq {
			return
		}
		n.abortRecovery()
		n.enterGather(obs.CauseJoin)
	} else if n.mode == Operational {
		n.enterGather(obs.CauseJoin)
	}
	n.applyMemActions(n.mem.OnJoin(j))
	n.reconcileMemTimers()
}

// OnTimer handles a timer expiry.
func (n *Node) OnTimer(kind TimerKind) {
	if n.mode == Down {
		return
	}
	switch kind {
	case TimerTokenLoss:
		if n.mode == Operational {
			n.enterGather(obs.CauseTokenLoss)
			n.applyMemActions(n.mem.StartGather())
			n.reconcileMemTimers()
		}
	case TimerTokenRetrans:
		if n.mode == Operational && n.lastToken != nil && n.retransLeft > 0 {
			n.retransLeft--
			n.env.Broadcast(*n.lastToken)
			n.env.SetTimer(TimerTokenRetrans, n.cfg.TokenRetrans)
		}
	case TimerJoin:
		if n.mode != Recovering && n.mem.Phase() == membership.Gather {
			n.applyMemActions(n.mem.OnJoinTimeout())
			n.reconcileMemTimers()
		}
	case TimerCommit:
		if n.mode != Recovering && n.mem.Phase() == membership.Commit {
			n.applyMemActions(n.mem.OnCommitTimeout())
			n.reconcileMemTimers()
		}
	case TimerRecoveryRetry:
		if n.mode == Recovering {
			n.applyRecActions(n.rec.OnRetry())
			if n.mode == Recovering {
				n.env.SetTimer(TimerRecoveryRetry, n.cfg.RecoveryRetry)
			}
		}
	case TimerRecoveryTimeout:
		if n.mode == Recovering {
			n.abortRecovery()
			n.enterGather(obs.CauseRecoveryTimeout)
			n.applyMemActions(n.mem.StartGather())
			n.reconcileMemTimers()
		}
	}
}

// enterGather leaves operational mode, carrying the ring's receipt state
// into the reconfiguration (the ring itself stops: no deliveries occur
// until the recovery algorithm's Step 6). cause records why, for the
// membership-transition metrics.
func (n *Node) enterGather(cause obs.GatherCause) {
	n.met.Inc(cause.GatherCounter())
	n.met.Event(obs.KGatherEnter, uint64(cause), 0)
	if n.mode == Operational && n.ring != nil {
		n.oldState = n.ring.Snapshot()
		n.oldLog = n.ring.Messages()
		n.pending = append(n.ring.TakePending(), n.pending...)
		n.ring = nil
	}
	n.mode = Gathering
	n.lastToken = nil
	n.preBuffer = nil
	n.env.CancelTimer(TimerTokenLoss)
	n.env.CancelTimer(TimerTokenRetrans)
	n.env.CancelTimer(TimerRecoveryRetry)
	n.env.CancelTimer(TimerRecoveryTimeout)
}

// abortRecovery discards the current recovery attempt, keeping the merged
// log, receipt state and obligation set (Step 5.c obligations survive; the
// algorithm restarts at Step 2).
func (n *Node) abortRecovery() {
	if n.rec == nil {
		return
	}
	n.met.Inc(obs.CRecoveryAborted)
	n.met.Event(obs.KRecoveryAbort, n.newRing.ID.Seq, 0)
	n.oldState = n.rec.State()
	n.oldLog = n.rec.Log()
	n.obligations = n.rec.Obligations()
	n.rec = nil
	n.newRing = model.Configuration{}
	n.buffered = nil
	n.mode = Gathering
	n.persist()
}

// applyMemActions transmits membership messages and reacts to ring
// formation.
func (n *Node) applyMemActions(acts []membership.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case membership.Send:
			n.env.Broadcast(act.Msg)
		case membership.Form:
			n.startRecovery(act.Ring)
		}
	}
	n.persist()
}

// reconcileMemTimers aligns the join/commit timers with the membership
// phase.
func (n *Node) reconcileMemTimers() {
	if n.mode == Recovering || n.mode == Down || n.mem == nil {
		n.env.CancelTimer(TimerJoin)
		n.env.CancelTimer(TimerCommit)
		return
	}
	switch n.mem.Phase() {
	case membership.Gather:
		n.env.SetTimer(TimerJoin, n.cfg.JoinRetry)
		n.env.CancelTimer(TimerCommit)
	case membership.Commit:
		n.env.SetTimer(TimerCommit, n.cfg.CommitTimeout)
		n.env.CancelTimer(TimerJoin)
	default:
		n.env.CancelTimer(TimerJoin)
		n.env.CancelTimer(TimerCommit)
	}
}

// startRecovery begins the EVS recovery algorithm (Step 2) for the agreed
// new ring.
func (n *Node) startRecovery(ring model.Configuration) {
	n.mode = Recovering
	n.newRing = ring
	n.buffered = nil
	n.met.Inc(obs.CRecoveryStarted)
	n.met.Event(obs.KRecoveryStart, ring.ID.Seq, uint64(ring.Members.Size()))
	n.recStart = n.met.Now()
	n.recPlan = false
	n.recDone = false
	n.env.CancelTimer(TimerJoin)
	n.env.CancelTimer(TimerCommit)
	// Obligation validation: obligations only ever name processes of the
	// old or proposed configuration or observed originators (Section 3,
	// Step 5.c builds them from transitional sets and their carried
	// obligations; an obligation can only bind us to messages we hold,
	// and holding a message implies having observed its originator). A
	// poisoned set — ghosts planted by transient corruption — is
	// rejected here, with the rejection counted and propagated rather
	// than trusted or panicked over.
	if dropped := n.validateObligations(ring); dropped > 0 {
		for i := 0; i < dropped; i++ {
			n.met.Inc(obs.CStateRejects)
		}
	}
	n.rec = evs.New(n.id, ring, n.ringCfg, n.recoveryState(), n.oldLog, n.obligations, n.seenSeqs)
	n.applyRecActions(n.rec.Start())
	if n.mode == Recovering {
		n.env.SetTimer(TimerRecoveryRetry, n.cfg.RecoveryRetry)
		n.env.SetTimer(TimerRecoveryTimeout, n.cfg.RecoveryTimeout)
	}
	// Replay recovery traffic that overtook the Install.
	pre := n.preBuffer
	n.preBuffer = nil
	for _, b := range pre {
		if n.mode != Recovering {
			break
		}
		n.OnMessage(b.from, b.msg)
	}
}

// validateObligations filters the obligation set against the universe of
// processes this node can legitimately owe anything to: members of the
// old and proposed configurations plus every originator it has observed
// messages from. It returns the number of ghosts rejected.
func (n *Node) validateObligations(ring model.Configuration) int {
	before := n.obligations.Size()
	if before == 0 {
		return 0
	}
	universe := n.ringCfg.Members.Union(ring.Members)
	kept := make([]model.ProcessID, 0, before)
	for _, p := range n.obligations.Members() {
		_, observed := n.seenSeqs[p]
		if observed || universe.Contains(p) {
			kept = append(kept, p)
		}
	}
	if len(kept) == before {
		return 0
	}
	n.obligations = model.NewProcessSet(kept...)
	return before - len(kept)
}

// recoveryState derives the exchange state from the carried log and
// watermarks.
func (n *Node) recoveryState() totem.State {
	st := n.oldState
	// Recompute receipt watermarks from the merged log. The contiguity
	// probe starts at the trimmed prefix: entries at or below it were
	// discarded as safe-and-delivered, not lost, so the receipt claim
	// must still cover them.
	derived := totem.State{}
	for seq := range n.oldLog {
		if seq > derived.HighestSeen {
			derived.HighestSeen = seq
		}
	}
	st.MyAru = st.Trimmed
	for {
		if _, ok := n.oldLog[st.MyAru+1]; !ok {
			break
		}
		st.MyAru++
	}
	st.Have = nil
	for seq := range n.oldLog {
		if seq > st.MyAru {
			st.Have = append(st.Have, seq)
		}
	}
	// Canonical order: the Have set rides recovery messages, so its
	// layout must not depend on map iteration.
	sort.Slice(st.Have, func(i, j int) bool { return st.Have[i] < st.Have[j] })
	if derived.HighestSeen > st.HighestSeen {
		st.HighestSeen = derived.HighestSeen
	}
	return st
}

// applyRecActions transmits recovery messages and applies the final result.
func (n *Node) applyRecActions(acts []evs.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case evs.Send:
			n.env.Broadcast(act.Msg)
		case evs.Finished:
			n.finishRecovery(act.Result)
		}
	}
	if n.mode == Recovering {
		n.noteRecoveryProgress()
		n.persist()
	}
}

// noteRecoveryProgress observes recovery step transitions after each batch
// of recovery actions: Step 4 (plan computed, closing the exchange phase)
// and Step 5 (this process announced completion).
func (n *Node) noteRecoveryProgress() {
	if n.met == nil || n.rec == nil {
		return
	}
	if !n.recPlan && n.rec.Planned() {
		n.recPlan = true
		n.recPlanAt = n.met.Now()
		n.met.ObserveSince(obs.HRecoveryExchangeUs, n.recStart)
		n.met.Event(obs.KRecoveryPlan, uint64(n.rec.NeededCount()), 0)
	}
	if !n.recDone && n.rec.SentDone() {
		n.recDone = true
		n.met.Event(obs.KRecoveryDone, 0, 0)
	}
}

// finishRecovery applies Step 6 atomically: old-configuration deliveries,
// the transitional configuration change and its deliveries, then the
// installation of the new regular configuration (Step 6.e), after which
// pending application messages are sequenced on the new ring and buffered
// messages for it are processed.
func (n *Node) finishRecovery(res evs.Result) {
	// The plan and done transitions may complete in the same action batch
	// that finishes: record them before the attempt state is cleared.
	n.noteRecoveryProgress()
	old := n.ringCfg

	// 6.b: remaining old-configuration messages, delivered in the old
	// regular configuration.
	n.deliverAll(res.OldRegular, old)

	// 6.c: the configuration change initiating the transitional
	// configuration.
	if !res.Transitional.ID.IsZero() {
		n.met.Inc(obs.CConfigsTransitional)
		n.met.Event(obs.KConfigTransitional, res.Transitional.ID.Seq,
			uint64(res.Transitional.Members.Size()))
		n.traceConf(res.Transitional, false)
		n.env.DeliverConfig(ConfigChange{Config: res.Transitional})
		// 6.d: transitional deliveries.
		n.deliverAll(res.Trans, res.Transitional)
	}

	// Adopt the attempt's merged counter-observation evidence: peers'
	// exchanged SeenSeqs heal a transiently wrapped sender counter that
	// local evidence alone could not (defense in depth — on conforming
	// runs local evidence already dominates).
	// Per-entry max-merge: the result does not depend on iteration order.
	for p, v := range n.rec.SeenSeqs() {
		if n.seenSeqs == nil {
			n.seenSeqs = make(map[model.ProcessID]uint64)
		}
		if v > n.seenSeqs[p] {
			n.seenSeqs[p] = v
		}
	}
	if seen := n.seenSeqs[n.id]; seen > n.senderSeq {
		n.senderSeq = seen
		n.met.Inc(obs.CSeqHeals)
	}

	// 6.e: install the new regular configuration; obligations are
	// discharged (Step 1: no obligations in a regular configuration).
	newCfg := n.newRing
	n.ringCfg = newCfg
	n.obligations = model.NewProcessSet()
	n.oldLog = make(map[uint64]wire.Data)
	n.oldState = totem.State{}
	n.rec = nil
	n.newRing = model.Configuration{}
	n.mode = Operational
	n.everInstalld = true
	n.mem.SetCurrent(newCfg)
	n.env.CancelTimer(TimerRecoveryRetry)
	n.env.CancelTimer(TimerRecoveryTimeout)

	n.met.Inc(obs.CRecoveryFinished)
	n.met.ObserveSince(obs.HRecoveryTotalUs, n.recStart)
	if n.recPlan {
		n.met.ObserveSince(obs.HRecoveryFlushUs, n.recPlanAt)
	}
	n.met.Event(obs.KRecoveryFinish, newCfg.ID.Seq, uint64(newCfg.Members.Size()))
	n.met.Inc(obs.CConfigsRegular)
	n.met.Event(obs.KConfigRegular, newCfg.ID.Seq, uint64(newCfg.Members.Size()))

	n.traceConf(newCfg, false)
	n.env.DeliverConfig(ConfigChange{Config: newCfg})

	n.ring = totem.New(n.id, newCfg, n.cfg.Totem)
	n.ring.SetMetrics(n.met)
	for _, p := range n.pending {
		n.ring.Submit(p)
	}
	n.pending = nil
	n.persistSnapshot(nil)

	// The representative originates the first token, with
	// retransmission: losing the only copy would leave the ring dead
	// until the token-loss timeout forces another reconfiguration.
	if n.ring.IsRepresentative() {
		tok := n.ring.InitialToken()
		n.env.Broadcast(tok)
		n.lastToken = &tok
		n.retransLeft = n.cfg.TokenRetransMax
		n.env.SetTimer(TimerTokenRetrans, n.cfg.TokenRetrans)
	}
	// Allow extra slack before declaring token loss: peers may still be
	// finishing their recovery.
	n.env.SetTimer(TimerTokenLoss, 2*n.cfg.TokenLoss)

	// Process messages buffered for the new configuration (Step 2).
	buffered := n.buffered
	n.buffered = nil
	for _, b := range buffered {
		n.OnMessage(b.from, b.msg)
	}
}

// traceConf records a configuration change event.
func (n *Node) traceConf(cfg model.Configuration, primary bool) {
	n.env.Trace(model.Event{
		Type:    model.EventDeliverConf,
		Proc:    n.id,
		Config:  cfg.ID,
		Members: cfg.Members,
		Primary: primary,
	})
}

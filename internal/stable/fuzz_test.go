package stable

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// fuzzRecord builds a deterministic record from the fuzz arguments:
// entries log records with payloads derived from seed, plus every scalar,
// set and map field populated so aliasing anywhere is visible.
func fuzzRecord(seed uint64, entries int) Record {
	cfg := model.Configuration{
		ID:      model.RegularID(3+seed%5, "p"),
		Members: model.NewProcessSet("p", "q", "r"),
	}
	log := make(map[uint64]wire.Data, entries)
	for i := 0; i < entries; i++ {
		seq := uint64(i + 1)
		log[seq] = wire.Data{
			ID:      model.MessageID{Sender: model.ProcessID(fmt.Sprintf("p%d", i%3)), SenderSeq: seq + seed%7},
			Ring:    cfg.ID,
			Seq:     seq,
			Service: model.Agreed,
			Payload: []byte{byte(seed >> 8), byte(seq), byte(seed)},
		}
	}
	return Record{
		SenderSeq:     seed % 1000,
		JoinAttempt:   seed % 17,
		MaxRingSeq:    3 + seed%5,
		LastRegular:   cfg,
		DeliveredUpTo: uint64(entries / 2),
		SafeBound:     uint64(entries / 2),
		HighestSeen:   uint64(entries),
		Log:           log,
		Obligations:   model.NewProcessSet("p", "q"),
		SeenSeqs:      map[model.ProcessID]uint64{"p": seed % 100, "q": 1 + seed%3},
	}
}

// corrupt applies one corruption mode to the store, mirroring the
// harness's crash-time fault switch.
func corrupt(s *Store, mode uint8, n int) {
	switch mode % 7 {
	case 1:
		s.TearLastWrite()
	case 2:
		s.LoseLogSuffix(n)
	case 3:
		s.WrapSenderSeq()
	case 4:
		s.RegressRingSeq()
	case 5:
		s.PoisonObligations(n)
	case 6:
		s.FlipLogBits(n)
	}
}

// mutateDeep writes through every reachable reference of a loaded record;
// if any of them aliases store-owned memory, the next load changes.
func mutateDeep(r *Record) {
	for seq, d := range r.Log {
		if len(d.Payload) > 0 {
			d.Payload[0] ^= 0xff
		}
		d.ID.SenderSeq += 1000
		r.Log[seq] = d
	}
	r.Log[99999] = wire.Data{Seq: 99999}
	for p := range r.SeenSeqs {
		r.SeenSeqs[p] += 1000
	}
	r.SeenSeqs["intruder"] = 1
	r.SenderSeq += 1000
}

// FuzzStoreRoundTrip checks the store's read-after-write isolation
// invariant under every corruption mode: loading is a deep copy (no
// loaded record aliases store memory), loads are repeatable, and
// LoadChecked is self-healing — persisting its cleaned output yields a
// record that re-loads with no further rejections.
func FuzzStoreRoundTrip(f *testing.F) {
	for mode := uint8(0); mode <= 6; mode++ {
		f.Add(uint64(42), mode, uint8(1))
		f.Add(uint64(7777), mode, uint8(3))
	}
	f.Add(uint64(0), uint8(6), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, mode uint8, n uint8) {
		entries := int(2 + seed%9)
		var s Store
		s.Save(fuzzRecord(seed, entries))
		// Half the corpus also exercises the incremental write path so
		// tear/flip have a last-put record to hit.
		if seed%2 == 1 {
			s.PutLog(wire.Data{
				ID:  model.MessageID{Sender: "q", SenderSeq: seed},
				Seq: uint64(entries + 1), Payload: []byte{byte(seed)},
			})
		}
		corrupt(&s, mode, int(n%8))

		pristine := s.Load()
		loaded := s.Load()
		mutateDeep(&loaded)
		if got := s.Load(); !reflect.DeepEqual(got, pristine) {
			t.Fatalf("mutating a loaded record changed the store (mode %d):\nbefore: %+v\nafter:  %+v",
				mode%7, pristine, got)
		}

		recA, errsA := s.LoadChecked()
		mutateDeep(&recA)
		recB, errsB := s.LoadChecked()
		if len(errsA) != len(errsB) {
			t.Fatalf("LoadChecked not repeatable: %d then %d errors", len(errsA), len(errsB))
		}
		for i := range errsA {
			if errsA[i].Error() != errsB[i].Error() {
				t.Fatalf("LoadChecked error order unstable: %q vs %q", errsA[i], errsB[i])
			}
		}

		// Self-healing: a record cleaned by LoadChecked re-persists and
		// re-loads with zero rejections.
		var s2 Store
		s2.Save(recB)
		if rec2, errs2 := s2.LoadChecked(); len(errs2) != 0 {
			t.Fatalf("cleaned record rejected again: %v (record %+v)", errs2, rec2)
		}
	})
}

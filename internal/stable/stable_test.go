package stable

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/vclock"
	"repro/internal/wire"
)

func TestZeroStoreLoadsEmptyRecord(t *testing.T) {
	var s Store
	r := s.Load()
	if r.SenderSeq != 0 || r.Log != nil || !r.LastRegular.ID.IsZero() {
		t.Fatalf("zero store should load zero record, got %+v", r)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var s Store
	rec := Record{
		SenderSeq:     5,
		MaxRingSeq:    3,
		LastRegular:   model.Configuration{ID: model.RegularID(3, "p"), Members: model.NewProcessSet("p", "q")},
		DeliveredUpTo: 9,
		SafeBound:     7,
		HighestSeen:   12,
		Log: map[uint64]wire.Data{
			10: {ID: model.MessageID{Sender: "q", SenderSeq: 2}, Seq: 10, Payload: []byte("x"), VC: vclock.NewStamp(vclock.VC{"q": 2})},
		},
		Obligations: model.NewProcessSet("q"),
	}
	s.Save(rec)
	got := s.Load()
	if got.SenderSeq != 5 || got.DeliveredUpTo != 9 || got.SafeBound != 7 || got.HighestSeen != 12 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.Obligations.Contains("q") {
		t.Fatal("obligations lost")
	}
	if got.Log[10].ID.SenderSeq != 2 || string(got.Log[10].Payload) != "x" {
		t.Fatalf("log lost: %+v", got.Log)
	}
}

func TestSaveIsDeepCopyIn(t *testing.T) {
	var s Store
	log := map[uint64]wire.Data{1: {Seq: 1, Payload: []byte("a")}}
	s.Save(Record{Log: log})
	// Mutate the caller's map and payload after Save.
	log[2] = wire.Data{Seq: 2}
	log1 := log[1]
	log1.Payload[0] = 'z'
	got := s.Load()
	if len(got.Log) != 1 {
		t.Fatal("Save must deep-copy the log map")
	}
	if string(got.Log[1].Payload) != "a" {
		t.Fatal("Save must deep-copy payloads")
	}
}

func TestLoadIsDeepCopyOut(t *testing.T) {
	var s Store
	s.Save(Record{Log: map[uint64]wire.Data{1: {Seq: 1, Payload: []byte("a"), VC: vclock.NewStamp(vclock.VC{"p": 1})}}})
	got := s.Load()
	got.Log[2] = wire.Data{Seq: 2}
	g1 := got.Log[1]
	g1.Payload[0] = 'z'
	g1.VC.D[0] = 99
	again := s.Load()
	if len(again.Log) != 1 || string(again.Log[1].Payload) != "a" || again.Log[1].VC.Get("p") != 1 {
		t.Fatal("Load must deep-copy so callers cannot mutate the store")
	}
}

func TestWritesCounter(t *testing.T) {
	var s Store
	if s.Writes() != 0 {
		t.Fatal("fresh store should report zero writes")
	}
	s.Save(Record{})
	s.Save(Record{})
	if s.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2", s.Writes())
	}
}

func TestSaveReplacesWholeRecord(t *testing.T) {
	var s Store
	s.Save(Record{SenderSeq: 5, Obligations: model.NewProcessSet("q")})
	s.Save(Record{SenderSeq: 6})
	got := s.Load()
	if got.SenderSeq != 6 || !got.Obligations.IsEmpty() {
		t.Fatalf("Save should replace, got %+v", got)
	}
}

func TestSetScalarsPreservesLogAndPrimary(t *testing.T) {
	var s Store
	s.Save(Record{
		Log:            map[uint64]wire.Data{1: {Seq: 1, Payload: []byte("x")}},
		LastPrimary:    model.Configuration{ID: model.RegularID(2, "p"), Members: model.NewProcessSet("p")},
		PrimaryAttempt: model.Configuration{ID: model.RegularID(3, "p"), Members: model.NewProcessSet("p")},
	})
	s.SetScalars(Record{
		SenderSeq:     7,
		JoinAttempt:   9,
		MaxRingSeq:    4,
		DeliveredUpTo: 1,
		SafeBound:     1,
		HighestSeen:   2,
		Obligations:   model.NewProcessSet("q"),
		// These must be ignored by SetScalars:
		Log:         map[uint64]wire.Data{99: {Seq: 99}},
		LastPrimary: model.Configuration{ID: model.RegularID(9, "z")},
	})
	got := s.Load()
	if got.SenderSeq != 7 || got.JoinAttempt != 9 || got.MaxRingSeq != 4 {
		t.Fatalf("scalars not persisted: %+v", got)
	}
	if len(got.Log) != 1 || got.Log[1].Seq != 1 {
		t.Fatalf("SetScalars must not touch the log: %v", got.Log)
	}
	if got.LastPrimary.ID != model.RegularID(2, "p") || got.PrimaryAttempt.ID != model.RegularID(3, "p") {
		t.Fatalf("SetScalars must not touch primary records: %+v", got)
	}
	if !got.Obligations.Contains("q") {
		t.Fatal("obligations lost")
	}
}

func TestPutLogDeepCopiesAndAccumulates(t *testing.T) {
	var s Store
	payload := []byte("abc")
	s.PutLog(wire.Data{Seq: 5, Payload: payload, VC: vclock.NewStamp(vclock.VC{"p": 1})})
	payload[0] = 'z'
	s.PutLog(wire.Data{Seq: 6})
	got := s.Load()
	if len(got.Log) != 2 {
		t.Fatalf("log size %d, want 2", len(got.Log))
	}
	if string(got.Log[5].Payload) != "abc" {
		t.Fatal("PutLog must deep-copy the payload")
	}
	if got.Log[5].VC.Get("p") != 1 {
		t.Fatal("PutLog must keep the vector clock")
	}
}

func TestClearLog(t *testing.T) {
	var s Store
	s.PutLog(wire.Data{Seq: 1})
	s.SetScalars(Record{SenderSeq: 3})
	s.ClearLog()
	got := s.Load()
	if got.Log != nil {
		t.Fatalf("log not cleared: %v", got.Log)
	}
	if got.SenderSeq != 3 {
		t.Fatal("ClearLog must not touch scalars")
	}
	if s.Writes() != 3 {
		t.Fatalf("Writes() = %d, want 3", s.Writes())
	}
}

// ---------------------------------------------------------------------------
// Injectable corruption model.

func logWith(seqs ...uint64) *Store {
	s := &Store{}
	for _, q := range seqs {
		s.PutLog(wire.Data{Seq: q, Payload: []byte("x")})
	}
	return s
}

func logSeqs(s *Store) []uint64 {
	var out []uint64
	for q := range s.Load().Log {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestTearLastWriteDestroysMostRecentPut(t *testing.T) {
	s := logWith(1, 2, 3)
	if !s.TearLastWrite() {
		t.Fatal("tear should destroy the last put")
	}
	if got := logSeqs(s); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("log after tear = %v, want [1 2]", got)
	}
	// A second tear has nothing torn to destroy: the surviving entries
	// all committed before the racing write.
	if s.TearLastWrite() {
		t.Fatal("second tear destroyed a committed record")
	}
	if s.Corruptions() != 1 {
		t.Fatalf("Corruptions = %d, want 1", s.Corruptions())
	}
}

func TestTearLastWriteRespectsSafeBound(t *testing.T) {
	s := logWith(1, 2)
	rec := s.Load()
	rec.SafeBound = 2
	s.SetScalars(rec)
	if s.TearLastWrite() {
		t.Fatal("tear destroyed a record at or below SafeBound")
	}
	if got := logSeqs(s); len(got) != 2 {
		t.Fatalf("log = %v, want intact", got)
	}
}

func TestLoseLogSuffixDropsHighestAboveSafeBound(t *testing.T) {
	s := logWith(1, 2, 3, 4, 5)
	rec := s.Load()
	rec.SafeBound = 2
	s.SetScalars(rec)
	if n := s.LoseLogSuffix(2); n != 2 {
		t.Fatalf("lost %d records, want 2", n)
	}
	if got := logSeqs(s); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Fatalf("log after suffix loss = %v, want [1 2 3]", got)
	}
	// Asking for more than remains above the bound stops at the bound.
	if n := s.LoseLogSuffix(10); n != 1 {
		t.Fatalf("lost %d records, want 1 (only seq 3 above bound)", n)
	}
	if got := logSeqs(s); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("log = %v, want safe prefix [1 2]", got)
	}
}

func TestLoseLogSuffixOnEmptyLog(t *testing.T) {
	s := &Store{}
	if n := s.LoseLogSuffix(3); n != 0 {
		t.Fatalf("lost %d from empty log", n)
	}
	if s.TearLastWrite() {
		t.Fatal("tear on empty log")
	}
}

func TestClearLogInvalidatesTear(t *testing.T) {
	s := logWith(7)
	s.ClearLog()
	if s.TearLastWrite() {
		t.Fatal("tear after ClearLog destroyed something")
	}
}

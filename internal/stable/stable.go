// Package stable simulates per-process stable storage.
//
// The EVS model's failure model lets a process fail and later recover "with
// its stable storage intact" and with the same identifier (Section 2). The
// Store holds exactly the protocol state that must survive such a failure:
// the sender sequence counter (so message identifiers are never reused), the
// last regular configuration and the receipt/delivery state for it (so a
// recovered process can rejoin consistently and honour its obligations), the
// obligation set itself, and the primary-component history used by the
// primary component algorithm.
//
// Reads and writes deep-copy the record, simulating the disk boundary: no
// aliasing between volatile protocol state and persisted state is possible.
package stable

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Record is the persistent state of one process.
type Record struct {
	// SenderSeq is the last per-sender sequence number used for an
	// originated message; never reused across recoveries
	// (Specification 1.4).
	SenderSeq uint64
	// JoinAttempt is the membership join counter; persisting it keeps a
	// recovered process's joins fresh so peers do not discard them as
	// duplicates of its previous incarnation.
	JoinAttempt uint64
	// MaxRingSeq is the highest ring sequence number this process has
	// ever observed, keeping configuration identifiers fresh across
	// recoveries.
	MaxRingSeq uint64
	// LastRegular is the last regular configuration this process
	// installed (delivered a configuration change for).
	LastRegular model.Configuration
	// DeliveredUpTo is the delivery watermark within LastRegular's
	// total order.
	DeliveredUpTo uint64
	// SafeBound is the highest sequence number known received by every
	// member of LastRegular.
	SafeBound uint64
	// HighestSeen is the highest sequence number known assigned in
	// LastRegular.
	HighestSeen uint64
	// Log holds received messages of LastRegular by sequence number,
	// persisted before acknowledging receipt so that a recovered
	// process can still rebroadcast and deliver what it acknowledged.
	Log map[uint64]wire.Data
	// TrimmedUpTo is the discarded log prefix within LastRegular:
	// sequence numbers at or below it were delivered locally and
	// certified safe (received by every member), mirroring the ring's
	// in-memory trim so the persisted log stays bounded by the
	// flow-control window rather than the run length. It only advances
	// within a configuration; ClearLog resets it.
	TrimmedUpTo uint64
	// Obligations is the obligation set (Section 3, Steps 1 and 5.c).
	Obligations model.ProcessSet
	// SeenSeqs records the highest sender sequence number this process
	// has observed per originator, including itself. It is redundant
	// observation evidence for the self-stabilization fault model: a
	// transient corruption that wraps SenderSeq is healed from
	// SeenSeqs[self] (and from peers' SeenSeqs exchanged during
	// recovery), because reusing a message identifier violates
	// Specification 1.4. A fault that destroys the counter *and* every
	// observation of it — local and remote — is indistinguishable from
	// Byzantine storage, which the protocol does not claim to survive.
	SeenSeqs map[model.ProcessID]uint64
	// LastPrimary is the most recent primary component this process
	// installed or learned of, with its sequence for recency.
	LastPrimary model.Configuration
	// PrimaryAttempt marks a primary installation this process agreed
	// to attempt but has not confirmed completed; used by the primary
	// component algorithm to preserve uniqueness across interrupted
	// installations.
	PrimaryAttempt model.Configuration
}

// clone deep-copies a record.
func (r Record) clone() Record {
	out := r
	if r.Log != nil {
		out.Log = make(map[uint64]wire.Data, len(r.Log))
		for k, v := range r.Log {
			c := v
			if v.Payload != nil {
				c.Payload = append([]byte(nil), v.Payload...)
			}
			c.VC = v.VC.Clone()
			out.Log[k] = c
		}
	}
	out.SeenSeqs = cloneSeen(r.SeenSeqs)
	// model.ProcessSet and model.Configuration are immutable by
	// convention; sharing is safe.
	return out
}

func cloneSeen(m map[model.ProcessID]uint64) map[model.ProcessID]uint64 {
	if m == nil {
		return nil
	}
	out := make(map[model.ProcessID]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Store is the stable storage device of one process. The zero value is an
// empty store ready for use.
type Store struct {
	rec    Record
	writes uint64
	// lastPut is the sequence number of the most recent PutLog, the
	// record a torn write would destroy; lastPutValid marks whether it
	// still names a live log entry.
	lastPut      uint64
	lastPutValid bool
	corruptions  uint64
	// sums holds a per-entry checksum computed at write time, the
	// device-level integrity metadata real storage keeps per block. It
	// lives in the Store, not the Record, so in-place bit rot of an
	// entry (FlipLogBits) is detectable at the next LoadChecked.
	sums map[uint64]uint64
	// seen is the store-owned copy of Record.SeenSeqs maintained by
	// SetScalars: merging into it in place keeps the hot-path write free
	// of a map clone while still never aliasing the caller's live map.
	seen map[model.ProcessID]uint64
	// log is the device-internal log representation. wire.Data is larger
	// than the runtime's inline map-element limit, so a
	// map[uint64]wire.Data insert heap-allocates an indirect element per
	// message; storing 8-byte pointers into arena-carved entries keeps
	// PutLog allocation-free in steady state. Record.Log remains the
	// snapshot type: Load materialises it, Save ingests it.
	log map[uint64]*wire.Data
	// payArena, vcArena and entryArena amortise the deep copies PutLog
	// makes at the simulated disk boundary: payload bytes, vector-clock
	// counters and log-entry structs are carved from chunked arenas (one
	// allocation per chunk) instead of one allocation each per message.
	payArena   []byte
	vcArena    vclock.Dense
	entryArena []wire.Data
}

// arenaChunk sizes the persistence arenas (bytes for payloads, counters
// for clocks); entryArenaChunk is the entry-struct arena granularity.
const (
	arenaChunk      = 16 << 10
	entryArenaChunk = 128
)

// newEntry carves one log-entry struct from the entry arena. Carved
// entries live as long as their s.log slot: dropLogPrefix releases the
// slot, and the chunk is reused only once every entry in it is gone.
//
//evs:arena
func (s *Store) newEntry() *wire.Data {
	if len(s.entryArena) == 0 {
		s.entryArena = make([]wire.Data, entryArenaChunk)
	}
	e := &s.entryArena[0]
	s.entryArena = s.entryArena[1:]
	return e
}

// carvePayload deep-copies payload bytes into the payload arena and
// returns the carved region, full to capacity so appends cannot bleed
// into the next tenant.
//
//evs:arena
//evs:noalloc
func (s *Store) carvePayload(src []byte) []byte {
	n := len(src)
	if len(s.payArena) < n {
		grow := arenaChunk
		if grow < n {
			grow = n
		}
		s.payArena = make([]byte, grow)
	}
	out := s.payArena[:n:n]
	s.payArena = s.payArena[n:]
	copy(out, src)
	return out
}

// carveClock deep-copies vector-clock counters into the clock arena.
//
//evs:arena
//evs:noalloc
func (s *Store) carveClock(src vclock.Dense) vclock.Dense {
	n := len(src)
	if len(s.vcArena) < n {
		grow := arenaChunk
		if grow < n {
			grow = n
		}
		s.vcArena = make(vclock.Dense, grow)
	}
	out := s.vcArena[:n:n]
	s.vcArena = s.vcArena[n:]
	copy(out, src)
	return out
}

// logSnapshot deep-copies the internal log into the Record.Log snapshot
// form (cold path: Load/LoadChecked only).
func (s *Store) logSnapshot() map[uint64]wire.Data {
	if s.log == nil {
		return nil
	}
	out := make(map[uint64]wire.Data, len(s.log))
	for k, v := range s.log {
		c := *v
		if v.Payload != nil {
			c.Payload = append([]byte(nil), v.Payload...)
		}
		c.VC = v.VC.Clone()
		out[k] = c
	}
	return out
}

// checksum is FNV-1a over the fields of a log entry the delivery and
// recovery paths interpret: the message identity, ring position,
// service level and payload.
func checksum(d wire.Data) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for i := 0; i < len(d.ID.Sender); i++ {
		h ^= uint64(d.ID.Sender[i])
		h *= prime
	}
	mix(d.ID.SenderSeq)
	mix(d.Seq)
	mix(d.Ring.Seq)
	mix(uint64(d.Service))
	for _, b := range d.Payload {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Load returns a deep copy of the persisted record.
func (s *Store) Load() Record {
	out := s.rec.clone()
	out.Log = s.logSnapshot()
	return out
}

// Save persists a deep copy of the record, replacing the previous contents
// atomically (simulating an atomic disk commit).
func (s *Store) Save(r Record) {
	s.rec = r.clone()
	s.log = nil
	s.sums = nil
	s.seen = nil
	if len(s.rec.Log) > 0 {
		s.log = make(map[uint64]*wire.Data, len(s.rec.Log))
		s.sums = make(map[uint64]uint64, len(s.rec.Log))
		for seq, d := range s.rec.Log {
			e := s.newEntry()
			*e = d
			s.log[seq] = e
			s.sums[seq] = checksum(d)
		}
		s.rec.Log = nil
	}
	s.writes++
}

// Writes returns the number of persistence operations, a proxy for
// stable-storage I/O cost in the benchmark harness.
func (s *Store) Writes() uint64 { return s.writes }

// SetScalars persists every field of r except the message log and the
// primary-component records (Log, LastPrimary, PrimaryAttempt are left as
// stored). It is the hot-path persistence operation: cost independent of
// the log size, and free of allocations in steady state (the one mutable
// map scalar, SeenSeqs, is merged into a store-owned map in place).
// A TrimmedUpTo that advanced past the stored watermark discards the
// corresponding log prefix, mirroring the ring's in-memory trim.
//
//evs:noalloc
func (s *Store) SetScalars(r Record) {
	lp := s.rec.LastPrimary
	pa := s.rec.PrimaryAttempt
	trimmed := s.rec.TrimmedUpTo
	s.rec = r
	// The internal log (s.log) is untouched; the record's snapshot field
	// stays unmaterialised.
	s.rec.Log = nil
	s.rec.LastPrimary = lp
	s.rec.PrimaryAttempt = pa
	// SeenSeqs must never alias the caller's live map (disk boundary);
	// rebuild the store-owned copy rather than allocating a fresh clone.
	if s.seen == nil && len(r.SeenSeqs) > 0 {
		s.seen = make(map[model.ProcessID]uint64, len(r.SeenSeqs))
	}
	for k := range s.seen {
		delete(s.seen, k)
	}
	for k, v := range r.SeenSeqs {
		s.seen[k] = v
	}
	s.rec.SeenSeqs = s.seen
	switch {
	case r.TrimmedUpTo < trimmed:
		// The watermark is monotone within a configuration; lower
		// inputs (e.g. scalars persisted mid-recovery, which carry no
		// trim knowledge) keep the stored value.
		s.rec.TrimmedUpTo = trimmed
	case r.TrimmedUpTo > trimmed:
		s.dropLogPrefix(r.TrimmedUpTo)
	}
	s.writes++
}

// dropLogPrefix deletes persisted log entries at or below upTo.
func (s *Store) dropLogPrefix(upTo uint64) {
	for seq := range s.log {
		if seq <= upTo {
			delete(s.log, seq)
			delete(s.sums, seq)
			if s.lastPutValid && s.lastPut == seq {
				s.lastPutValid = false
			}
		}
	}
	s.rec.TrimmedUpTo = upTo
}

// putOne writes one log entry, deep-copying it across the disk boundary
// (payload bytes and clock counters are carved from the store's arenas:
// the make calls below refill a chunk, amortised over many entries).
//
//evs:noalloc
func (s *Store) putOne(d wire.Data) {
	if d.Seq <= s.rec.TrimmedUpTo {
		return
	}
	if s.log == nil {
		s.log = make(map[uint64]*wire.Data)
	}
	c := d
	if d.Payload != nil {
		c.Payload = s.carvePayload(d.Payload)
	}
	if d.VC.U != nil {
		c.VC = vclock.Stamp{U: d.VC.U, D: s.carveClock(d.VC.D)}
	}
	e := s.newEntry()
	*e = c
	s.log[d.Seq] = e
	if s.sums == nil {
		s.sums = make(map[uint64]uint64)
	}
	s.sums[d.Seq] = checksum(c)
	s.lastPut = d.Seq
	s.lastPutValid = true
}

// PutLog persists one received message (deep-copied once).
//
//evs:noalloc
func (s *Store) PutLog(d wire.Data) {
	s.putOne(d)
	s.writes++
}

// PutLogBatch persists every message of one received packet or token visit
// as a single write: the per-message persistence cost of a batch is one
// deep copy, not one I/O commit each.
//
//evs:noalloc
func (s *Store) PutLogBatch(ds []wire.Data) {
	for _, d := range ds {
		s.putOne(d)
	}
	s.writes++
}

// ClearLog drops the persisted message log (a new configuration starts an
// empty log and an untrimmed prefix).
func (s *Store) ClearLog() {
	s.log = nil
	s.sums = nil
	s.lastPutValid = false
	s.rec.TrimmedUpTo = 0
	s.writes++
}

// ---------------------------------------------------------------------------
// Injectable corruption model.
//
// The EVS failure model promises recovery "with stable storage intact"
// (Section 2); real disks keep that promise only approximately. The chaos
// harness injects the two classic crash-consistency faults at the moment a
// process fails, and the recovery algorithm's behaviour under them is then
// judged by the specification checker:
//
//   - a torn last record: the write that raced the crash never committed,
//     so the most recently appended log entry vanishes;
//   - a lost suffix: the tail of the log above the known-safe watermark is
//     gone (e.g. unflushed cache pages), but everything the process has
//     told its peers is durable survives.
//
// Both faults are deliberately bounded by SafeBound: entries at or below
// it are known received by every member of the last regular configuration,
// and a fault model that destroys *acknowledged-safe* state is
// indistinguishable from Byzantine storage, which the protocol (and the
// paper) explicitly does not claim to survive.

// TearLastWrite removes the most recently PutLog-ed record, simulating a
// torn write racing the crash, unless that record is already required to
// be durable (at or below SafeBound) or no tearable record exists. It
// reports whether a record was destroyed.
func (s *Store) TearLastWrite() bool {
	if !s.lastPutValid || s.log == nil {
		return false
	}
	if s.lastPut <= s.rec.SafeBound {
		return false
	}
	if _, ok := s.log[s.lastPut]; !ok {
		return false
	}
	delete(s.log, s.lastPut)
	delete(s.sums, s.lastPut)
	s.lastPutValid = false
	s.corruptions++
	return true
}

// LoseLogSuffix removes up to n of the highest-sequence log records above
// the SafeBound watermark, simulating unflushed tail pages lost in a
// crash. It returns the number of records destroyed.
func (s *Store) LoseLogSuffix(n int) int {
	if n <= 0 || len(s.log) == 0 {
		return 0
	}
	seqs := make([]uint64, 0, len(s.log))
	for seq := range s.log {
		if seq > s.rec.SafeBound {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	if n > len(seqs) {
		n = len(seqs)
	}
	for _, seq := range seqs[:n] {
		delete(s.log, seq)
		delete(s.sums, seq)
		if s.lastPutValid && s.lastPut == seq {
			s.lastPutValid = false
		}
	}
	if n > 0 {
		s.corruptions++
	}
	return n
}

// Corruptions returns the number of injected corruption operations that
// destroyed at least one record.
func (s *Store) Corruptions() uint64 { return s.corruptions }

// ---------------------------------------------------------------------------
// Transient state corruption (self-stabilization fault model).
//
// The Practically-Self-Stabilizing Virtual Synchrony line of work asks a
// harder question than crash consistency: does the stack return to legal
// executions after *arbitrary transient corruption* of its state? These
// faults perturb counters and sets rather than destroy log records. Each
// is paired with redundant evidence the recovery path heals from:
//
//   - WrapSenderSeq regresses the sender counter; healed from
//     SeenSeqs[self] and from peers' SeenSeqs (Specification 1.4 evidence).
//   - RegressRingSeq regresses the configuration freshness counter;
//     healed from LastRegular (an installed configuration's sequence is a
//     lower bound the process itself participated in) and from peers'
//     join messages.
//   - PoisonObligations plants ghost processes in the obligation set;
//     rejected at recovery start by intersecting with the known process
//     universe (obligations only ever name members of the old or new
//     configuration, Section 3 Step 5.c).
//   - FlipLogBits rots stored log entries in place; detected by the
//     write-time checksums and dropped by LoadChecked, leaving gaps the
//     recovery retransmission machinery re-requests. Unlike the crash
//     faults above, rot may touch entries at or below SafeBound: those
//     faults destroy records *silently*, so damaging acknowledged-safe
//     state would be Byzantine, while rot is *detected* — a dropped safe
//     entry is certified universally received (that is what the
//     watermark means), so it is re-requestable from any peer and needed
//     for retransmission by none.

// WrapSenderSeq wraps the persisted sender sequence counter back to half
// its value, simulating a transient counter corruption. It reports
// whether anything changed.
func (s *Store) WrapSenderSeq() bool {
	if s.rec.SenderSeq == 0 {
		return false
	}
	s.rec.SenderSeq /= 2
	s.corruptions++
	return true
}

// RegressRingSeq regresses the persisted MaxRingSeq freshness counter to
// half its value. It reports whether anything changed.
func (s *Store) RegressRingSeq() bool {
	if s.rec.MaxRingSeq == 0 {
		return false
	}
	s.rec.MaxRingSeq /= 2
	s.corruptions++
	return true
}

// PoisonObligations plants n ghost process identifiers in the persisted
// obligation set and returns how many were added.
func (s *Store) PoisonObligations(n int) int {
	if n <= 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		s.rec.Obligations = s.rec.Obligations.Add(model.ProcessID(fmt.Sprintf("ghost-%d", i+1)))
	}
	s.corruptions++
	return n
}

// FlipLogBits flips one bit in up to n stored log entries (highest
// sequence numbers first, with no watermark restriction — see the fault
// model comment above), simulating in-place media rot. The write-time
// checksums are deliberately left stale so LoadChecked detects the
// damage. Returns the number of entries corrupted.
func (s *Store) FlipLogBits(n int) int {
	if n <= 0 || len(s.log) == 0 {
		return 0
	}
	seqs := make([]uint64, 0, len(s.log))
	for seq := range s.log {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	if n > len(seqs) {
		n = len(seqs)
	}
	for _, seq := range seqs[:n] {
		d := s.log[seq]
		if len(d.Payload) > 0 {
			d.Payload[0] ^= 0x80
		} else {
			d.ID.SenderSeq ^= 1
		}
	}
	if n > 0 {
		s.corruptions++
	}
	return n
}

// LoadChecked returns a deep copy of the persisted record after
// integrity validation, together with one error per rejected or healed
// element. Log entries whose checksum no longer matches are dropped
// (the resulting gaps are re-requested by the recovery retransmission
// machinery), and a MaxRingSeq below the process's own last installed
// configuration is clamped back up. Corrupted state is thus rejected
// with propagated errors, never trusted and never fatal.
func (s *Store) LoadChecked() (Record, []error) {
	rec := s.rec.clone()
	rec.Log = s.logSnapshot()
	var errs []error
	if len(rec.Log) > 0 {
		bad := make([]uint64, 0)
		for seq, d := range rec.Log {
			want, ok := s.sums[seq]
			if !ok || checksum(d) != want {
				bad = append(bad, seq)
			}
		}
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		for _, seq := range bad {
			delete(rec.Log, seq)
			errs = append(errs, fmt.Errorf("stable: log entry seq=%d failed checksum; dropped", seq))
		}
	}
	if last := rec.LastRegular.ID.Seq; rec.MaxRingSeq < last {
		errs = append(errs, fmt.Errorf("stable: MaxRingSeq=%d below last installed configuration seq=%d; healed", rec.MaxRingSeq, last))
		rec.MaxRingSeq = last
	}
	return rec, errs
}

// Package stable simulates per-process stable storage.
//
// The EVS model's failure model lets a process fail and later recover "with
// its stable storage intact" and with the same identifier (Section 2). The
// Store holds exactly the protocol state that must survive such a failure:
// the sender sequence counter (so message identifiers are never reused), the
// last regular configuration and the receipt/delivery state for it (so a
// recovered process can rejoin consistently and honour its obligations), the
// obligation set itself, and the primary-component history used by the
// primary component algorithm.
//
// Reads and writes deep-copy the record, simulating the disk boundary: no
// aliasing between volatile protocol state and persisted state is possible.
package stable

import (
	"sort"

	"repro/internal/model"
	"repro/internal/wire"
)

// Record is the persistent state of one process.
type Record struct {
	// SenderSeq is the last per-sender sequence number used for an
	// originated message; never reused across recoveries
	// (Specification 1.4).
	SenderSeq uint64
	// JoinAttempt is the membership join counter; persisting it keeps a
	// recovered process's joins fresh so peers do not discard them as
	// duplicates of its previous incarnation.
	JoinAttempt uint64
	// MaxRingSeq is the highest ring sequence number this process has
	// ever observed, keeping configuration identifiers fresh across
	// recoveries.
	MaxRingSeq uint64
	// LastRegular is the last regular configuration this process
	// installed (delivered a configuration change for).
	LastRegular model.Configuration
	// DeliveredUpTo is the delivery watermark within LastRegular's
	// total order.
	DeliveredUpTo uint64
	// SafeBound is the highest sequence number known received by every
	// member of LastRegular.
	SafeBound uint64
	// HighestSeen is the highest sequence number known assigned in
	// LastRegular.
	HighestSeen uint64
	// Log holds received messages of LastRegular by sequence number,
	// persisted before acknowledging receipt so that a recovered
	// process can still rebroadcast and deliver what it acknowledged.
	Log map[uint64]wire.Data
	// Obligations is the obligation set (Section 3, Steps 1 and 5.c).
	Obligations model.ProcessSet
	// LastPrimary is the most recent primary component this process
	// installed or learned of, with its sequence for recency.
	LastPrimary model.Configuration
	// PrimaryAttempt marks a primary installation this process agreed
	// to attempt but has not confirmed completed; used by the primary
	// component algorithm to preserve uniqueness across interrupted
	// installations.
	PrimaryAttempt model.Configuration
}

// clone deep-copies a record.
func (r Record) clone() Record {
	out := r
	if r.Log != nil {
		out.Log = make(map[uint64]wire.Data, len(r.Log))
		for k, v := range r.Log {
			c := v
			if v.Payload != nil {
				c.Payload = append([]byte(nil), v.Payload...)
			}
			c.VC = v.VC.Clone()
			out.Log[k] = c
		}
	}
	// model.ProcessSet and model.Configuration are immutable by
	// convention; sharing is safe.
	return out
}

// Store is the stable storage device of one process. The zero value is an
// empty store ready for use.
type Store struct {
	rec    Record
	writes uint64
	// lastPut is the sequence number of the most recent PutLog, the
	// record a torn write would destroy; lastPutValid marks whether it
	// still names a live log entry.
	lastPut      uint64
	lastPutValid bool
	corruptions  uint64
}

// Load returns a deep copy of the persisted record.
func (s *Store) Load() Record { return s.rec.clone() }

// Save persists a deep copy of the record, replacing the previous contents
// atomically (simulating an atomic disk commit).
func (s *Store) Save(r Record) {
	s.rec = r.clone()
	s.writes++
}

// Writes returns the number of persistence operations, a proxy for
// stable-storage I/O cost in the benchmark harness.
func (s *Store) Writes() uint64 { return s.writes }

// SetScalars persists every field of r except the message log and the
// primary-component records (Log, LastPrimary, PrimaryAttempt are left as
// stored). It is the hot-path persistence operation: cost independent of
// the log size.
func (s *Store) SetScalars(r Record) {
	log := s.rec.Log
	lp := s.rec.LastPrimary
	pa := s.rec.PrimaryAttempt
	s.rec = r
	s.rec.Log = log
	s.rec.LastPrimary = lp
	s.rec.PrimaryAttempt = pa
	s.writes++
}

// PutLog persists one received message (deep-copied once).
func (s *Store) PutLog(d wire.Data) {
	if s.rec.Log == nil {
		s.rec.Log = make(map[uint64]wire.Data)
	}
	c := d
	if d.Payload != nil {
		c.Payload = append([]byte(nil), d.Payload...)
	}
	c.VC = d.VC.Clone()
	s.rec.Log[d.Seq] = c
	s.lastPut = d.Seq
	s.lastPutValid = true
	s.writes++
}

// ClearLog drops the persisted message log (a new configuration starts an
// empty log).
func (s *Store) ClearLog() {
	s.rec.Log = nil
	s.lastPutValid = false
	s.writes++
}

// ---------------------------------------------------------------------------
// Injectable corruption model.
//
// The EVS failure model promises recovery "with stable storage intact"
// (Section 2); real disks keep that promise only approximately. The chaos
// harness injects the two classic crash-consistency faults at the moment a
// process fails, and the recovery algorithm's behaviour under them is then
// judged by the specification checker:
//
//   - a torn last record: the write that raced the crash never committed,
//     so the most recently appended log entry vanishes;
//   - a lost suffix: the tail of the log above the known-safe watermark is
//     gone (e.g. unflushed cache pages), but everything the process has
//     told its peers is durable survives.
//
// Both faults are deliberately bounded by SafeBound: entries at or below
// it are known received by every member of the last regular configuration,
// and a fault model that destroys *acknowledged-safe* state is
// indistinguishable from Byzantine storage, which the protocol (and the
// paper) explicitly does not claim to survive.

// TearLastWrite removes the most recently PutLog-ed record, simulating a
// torn write racing the crash, unless that record is already required to
// be durable (at or below SafeBound) or no tearable record exists. It
// reports whether a record was destroyed.
func (s *Store) TearLastWrite() bool {
	if !s.lastPutValid || s.rec.Log == nil {
		return false
	}
	if s.lastPut <= s.rec.SafeBound {
		return false
	}
	if _, ok := s.rec.Log[s.lastPut]; !ok {
		return false
	}
	delete(s.rec.Log, s.lastPut)
	s.lastPutValid = false
	s.corruptions++
	return true
}

// LoseLogSuffix removes up to n of the highest-sequence log records above
// the SafeBound watermark, simulating unflushed tail pages lost in a
// crash. It returns the number of records destroyed.
func (s *Store) LoseLogSuffix(n int) int {
	if n <= 0 || len(s.rec.Log) == 0 {
		return 0
	}
	seqs := make([]uint64, 0, len(s.rec.Log))
	for seq := range s.rec.Log {
		if seq > s.rec.SafeBound {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	if n > len(seqs) {
		n = len(seqs)
	}
	for _, seq := range seqs[:n] {
		delete(s.rec.Log, seq)
		if s.lastPutValid && s.lastPut == seq {
			s.lastPutValid = false
		}
	}
	if n > 0 {
		s.corruptions++
	}
	return n
}

// Corruptions returns the number of injected corruption operations that
// destroyed at least one record.
func (s *Store) Corruptions() uint64 { return s.corruptions }

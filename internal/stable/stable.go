// Package stable simulates per-process stable storage.
//
// The EVS model's failure model lets a process fail and later recover "with
// its stable storage intact" and with the same identifier (Section 2). The
// Store holds exactly the protocol state that must survive such a failure:
// the sender sequence counter (so message identifiers are never reused), the
// last regular configuration and the receipt/delivery state for it (so a
// recovered process can rejoin consistently and honour its obligations), the
// obligation set itself, and the primary-component history used by the
// primary component algorithm.
//
// Reads and writes deep-copy the record, simulating the disk boundary: no
// aliasing between volatile protocol state and persisted state is possible.
package stable

import (
	"repro/internal/model"
	"repro/internal/wire"
)

// Record is the persistent state of one process.
type Record struct {
	// SenderSeq is the last per-sender sequence number used for an
	// originated message; never reused across recoveries
	// (Specification 1.4).
	SenderSeq uint64
	// JoinAttempt is the membership join counter; persisting it keeps a
	// recovered process's joins fresh so peers do not discard them as
	// duplicates of its previous incarnation.
	JoinAttempt uint64
	// MaxRingSeq is the highest ring sequence number this process has
	// ever observed, keeping configuration identifiers fresh across
	// recoveries.
	MaxRingSeq uint64
	// LastRegular is the last regular configuration this process
	// installed (delivered a configuration change for).
	LastRegular model.Configuration
	// DeliveredUpTo is the delivery watermark within LastRegular's
	// total order.
	DeliveredUpTo uint64
	// SafeBound is the highest sequence number known received by every
	// member of LastRegular.
	SafeBound uint64
	// HighestSeen is the highest sequence number known assigned in
	// LastRegular.
	HighestSeen uint64
	// Log holds received messages of LastRegular by sequence number,
	// persisted before acknowledging receipt so that a recovered
	// process can still rebroadcast and deliver what it acknowledged.
	Log map[uint64]wire.Data
	// Obligations is the obligation set (Section 3, Steps 1 and 5.c).
	Obligations model.ProcessSet
	// LastPrimary is the most recent primary component this process
	// installed or learned of, with its sequence for recency.
	LastPrimary model.Configuration
	// PrimaryAttempt marks a primary installation this process agreed
	// to attempt but has not confirmed completed; used by the primary
	// component algorithm to preserve uniqueness across interrupted
	// installations.
	PrimaryAttempt model.Configuration
}

// clone deep-copies a record.
func (r Record) clone() Record {
	out := r
	if r.Log != nil {
		out.Log = make(map[uint64]wire.Data, len(r.Log))
		for k, v := range r.Log {
			c := v
			if v.Payload != nil {
				c.Payload = append([]byte(nil), v.Payload...)
			}
			if v.VC != nil {
				c.VC = v.VC.Clone()
			}
			out.Log[k] = c
		}
	}
	// model.ProcessSet and model.Configuration are immutable by
	// convention; sharing is safe.
	return out
}

// Store is the stable storage device of one process. The zero value is an
// empty store ready for use.
type Store struct {
	rec    Record
	writes uint64
}

// Load returns a deep copy of the persisted record.
func (s *Store) Load() Record { return s.rec.clone() }

// Save persists a deep copy of the record, replacing the previous contents
// atomically (simulating an atomic disk commit).
func (s *Store) Save(r Record) {
	s.rec = r.clone()
	s.writes++
}

// Writes returns the number of persistence operations, a proxy for
// stable-storage I/O cost in the benchmark harness.
func (s *Store) Writes() uint64 { return s.writes }

// SetScalars persists every field of r except the message log and the
// primary-component records (Log, LastPrimary, PrimaryAttempt are left as
// stored). It is the hot-path persistence operation: cost independent of
// the log size.
func (s *Store) SetScalars(r Record) {
	log := s.rec.Log
	lp := s.rec.LastPrimary
	pa := s.rec.PrimaryAttempt
	s.rec = r
	s.rec.Log = log
	s.rec.LastPrimary = lp
	s.rec.PrimaryAttempt = pa
	s.writes++
}

// PutLog persists one received message (deep-copied once).
func (s *Store) PutLog(d wire.Data) {
	if s.rec.Log == nil {
		s.rec.Log = make(map[uint64]wire.Data)
	}
	c := d
	if d.Payload != nil {
		c.Payload = append([]byte(nil), d.Payload...)
	}
	if d.VC != nil {
		c.VC = d.VC.Clone()
	}
	s.rec.Log[d.Seq] = c
	s.writes++
}

// ClearLog drops the persisted message log (a new configuration starts an
// empty log).
func (s *Store) ClearLog() {
	s.rec.Log = nil
	s.writes++
}

package vsfilter

import (
	"fmt"

	"repro/internal/model"
)

// EventType enumerates virtual-synchrony trace events (Section 4).
type EventType int

const (
	// EventView is view_i(g^x).
	EventView EventType = iota + 1
	// EventSend is a send of a multicast message (recorded when the
	// application submits while unblocked).
	EventSend
	// EventDeliver is deliver_i(m) within a view.
	EventDeliver
	// EventStop is the distinguished final failure event.
	EventStop
)

// TraceEvent is one event of a virtual-synchrony history.
type TraceEvent struct {
	Type    EventType
	Proc    model.ProcessID
	View    ViewID           // View/Deliver: the view
	Members model.ProcessSet // View: membership
	Msg     model.MessageID  // Send/Deliver
}

// String renders the event.
func (e TraceEvent) String() string {
	switch e.Type {
	case EventView:
		return fmt.Sprintf("view_%s(%s%s)", e.Proc, e.View, e.Members)
	case EventSend:
		return fmt.Sprintf("send_%s(%s)", e.Proc, e.Msg)
	case EventDeliver:
		return fmt.Sprintf("deliver_%s(%s, %s)", e.Proc, e.Msg, e.View)
	case EventStop:
		return fmt.Sprintf("stop_%s", e.Proc)
	default:
		return "vsevent(?)"
	}
}

// Violation is a breach of the virtual synchrony model.
type Violation struct {
	Cond string // "C2", "C3", "L1-L5", "L4"
	Msg  string
}

// String renders the violation.
func (v Violation) String() string { return fmt.Sprintf("[vs %s] %s", v.Cond, v.Msg) }

// Check validates a virtual-synchrony history (events in global
// observation order) against the completeness conditions C1-C3 and the
// legality conditions L1-L5 of Section 4 of the paper, applying the
// paper's extend mechanism: processes that stopped, or whose history ends
// mid-view, are excused from missing deliveries (their histories are
// conceptually extended).
//
// The settled flag enforces the completeness conditions on processes that
// are still running at the end of the history.
func Check(events []TraceEvent, settled bool) []Violation {
	var out []Violation

	stopped := make(map[model.ProcessID]bool)
	byProc := make(map[model.ProcessID][]int)
	sends := make(map[model.MessageID]int)
	delivers := make(map[model.MessageID][]int)
	viewEvents := make(map[ViewID][]int)
	viewMembers := make(map[ViewID]model.ProcessSet)
	lastView := make(map[model.ProcessID]ViewID)
	deliveredIn := make(map[model.MessageID]map[model.ProcessID]ViewID)

	for i, e := range events {
		byProc[e.Proc] = append(byProc[e.Proc], i)
		switch e.Type {
		case EventStop:
			stopped[e.Proc] = true
		case EventSend:
			if _, dup := sends[e.Msg]; dup {
				out = append(out, Violation{
					Cond: "C1",
					Msg:  fmt.Sprintf("message %s sent twice", e.Msg),
				})
			}
			sends[e.Msg] = i
		case EventDeliver:
			delivers[e.Msg] = append(delivers[e.Msg], i)
			if deliveredIn[e.Msg] == nil {
				deliveredIn[e.Msg] = make(map[model.ProcessID]ViewID)
			}
			if prev, dup := deliveredIn[e.Msg][e.Proc]; dup {
				out = append(out, Violation{
					Cond: "C1",
					Msg:  fmt.Sprintf("%s delivered %s twice (views %s, %s)", e.Proc, e.Msg, prev, e.View),
				})
			}
			deliveredIn[e.Msg][e.Proc] = e.View
			if e.View != lastView[e.Proc] {
				out = append(out, Violation{
					Cond: "L4",
					Msg: fmt.Sprintf("%s delivered %s tagged %s while its current view is %s",
						e.Proc, e.Msg, e.View, lastView[e.Proc]),
				})
			}
		case EventView:
			viewEvents[e.View] = append(viewEvents[e.View], i)
			if m, ok := viewMembers[e.View]; ok && !m.Equal(e.Members) {
				out = append(out, Violation{
					Cond: "L3",
					Msg:  fmt.Sprintf("view %s has inconsistent memberships %s and %s", e.View, m, e.Members),
				})
			}
			viewMembers[e.View] = e.Members
			lastView[e.Proc] = e.View
		}
	}

	// L4: deliveries of one message occur in the same view everywhere.
	for m, per := range deliveredIn {
		var first ViewID
		set := false
		for _, v := range per {
			if !set {
				first, set = v, true
				continue
			}
			if v != first {
				out = append(out, Violation{
					Cond: "L4",
					Msg:  fmt.Sprintf("message %s delivered in different views %s and %s", m, first, v),
				})
				break
			}
		}
	}

	// C2: every send is delivered by someone, unless the sender stopped
	// (extend imputes the delivery) or the history is not settled.
	if settled {
		for m, si := range sends {
			if len(delivers[m]) == 0 && !stopped[events[si].Proc] {
				out = append(out, Violation{
					Cond: "C2",
					Msg:  fmt.Sprintf("message %s was sent but never delivered", m),
				})
			}
		}
	}

	// C3: a message delivered in view v is delivered by every member of
	// v, unless that member stopped or its history ends inside v
	// (extend).
	for m, per := range deliveredIn {
		var v ViewID
		for _, vv := range per {
			v = vv
			break
		}
		members, ok := viewMembers[v]
		if !ok {
			continue
		}
		for _, q := range members.Members() {
			if _, has := per[q]; has || stopped[q] {
				continue
			}
			if !settled && lastView[q] == v {
				continue
			}
			if settled && lastView[q] == v {
				out = append(out, Violation{
					Cond: "C3",
					Msg:  fmt.Sprintf("member %s of view %s never delivered %s", q, v, m),
				})
				continue
			}
			if lastView[q] != v {
				// q moved to another view without delivering m:
				// the extend mechanism cannot repair this.
				out = append(out, Violation{
					Cond: "C3",
					Msg:  fmt.Sprintf("member %s of view %s moved on without delivering %s", q, v, m),
				})
			}
		}
	}

	// L1/L2/L3/L5: a legal global time assignment exists iff the
	// condensation (same-message deliveries merged, same-view events
	// merged) of the per-process orders plus send→deliver edges is
	// acyclic.
	if cyclic := condensationCyclic(events, byProc, sends, delivers, viewEvents); cyclic {
		out = append(out, Violation{
			Cond: "L1-L5",
			Msg:  "no legal time assignment exists: the condensed event graph is cyclic",
		})
	}
	return out
}

// condensationCyclic builds the condensed event graph and reports cycles.
func condensationCyclic(
	events []TraceEvent,
	byProc map[model.ProcessID][]int,
	sends map[model.MessageID]int,
	delivers map[model.MessageID][]int,
	viewEvents map[ViewID][]int,
) bool {
	n := len(events)
	super := make([]int, n)
	for i := range super {
		super[i] = -1
	}
	next := 0
	alloc := func(idxs []int) {
		for _, i := range idxs {
			super[i] = next
		}
		next++
	}
	for _, idxs := range delivers {
		alloc(idxs)
	}
	for _, idxs := range viewEvents {
		alloc(idxs)
	}
	for i := range super {
		if super[i] == -1 {
			alloc([]int{i})
		}
	}
	adj := make(map[int]map[int]bool)
	addEdge := func(a, b int) {
		sa, sb := super[a], super[b]
		if sa == sb {
			return
		}
		if adj[sa] == nil {
			adj[sa] = make(map[int]bool)
		}
		adj[sa][sb] = true
	}
	for _, idxs := range byProc {
		for k := 0; k+1 < len(idxs); k++ {
			addEdge(idxs[k], idxs[k+1])
		}
	}
	for m, s := range sends {
		for _, d := range delivers[m] {
			addEdge(s, d)
		}
	}
	// Kahn's algorithm.
	indeg := make([]int, next)
	for _, ss := range adj {
		for b := range ss {
			indeg[b]++
		}
	}
	var queue []int
	for s := 0; s < next; s++ {
		if indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	done := 0
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		done++
		for b := range adj[s] {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	return done != next
}

// Package vsfilter implements the filter of Section 5 of the paper, which
// runs on top of extended virtual synchrony (plus the primary component
// algorithm) and presents Birman's virtual synchrony model to the
// application — thereby demonstrating that extended virtual synchrony does
// extend virtual synchrony (Figure 7).
//
// The filter's four rules:
//
//  1. Configuration changes for transitional configurations are masked, and
//     deliveries in trans_p(c) are re-tagged as deliveries in reg_p(c).
//  2. On a regular configuration that is not the primary component, the
//     process blocks: sends are refused, deliveries and configuration
//     changes are discarded, until the process is merged into the primary
//     component again.
//  3. A primary configuration that merges several processes at once is
//     split into a sequence of view events, each merging one process, in a
//     deterministic (lexicographic) order.
//  4. A process returning from a non-primary component generates the same
//     view events as the incumbent members when it is merged back in.
//
// Views are identified deterministically by (configuration, step) so that
// every process emits identical view events for the same logical view — the
// property Birman's legality condition L3 requires.
package vsfilter

import (
	"fmt"

	"repro/internal/model"
)

// ViewID identifies a virtual synchrony view: a primary regular
// configuration plus the step index of the Rule 3 split.
type ViewID struct {
	Cfg  model.ConfigID
	Step int
}

// IsZero reports whether the ID is empty.
func (v ViewID) IsZero() bool { return v.Cfg.IsZero() }

// String renders the view identifier.
func (v ViewID) String() string {
	return fmt.Sprintf("view(%s#%d)", v.Cfg, v.Step)
}

// View is a view identifier with its membership.
type View struct {
	ID      ViewID
	Members model.ProcessSet
}

// String renders the view.
func (v View) String() string { return fmt.Sprintf("%s%s", v.ID, v.Members) }

// Output is the sealed union of filter outputs.
type Output interface{ isOutput() }

// ViewChange is a virtual synchrony view event (view_i(g^x) in Section 4).
type ViewChange struct{ View View }

func (ViewChange) isOutput() {}

// Deliver is a message delivery within a view.
type Deliver struct {
	Msg     model.MessageID
	Payload []byte
	Service model.Service
	View    ViewID
}

func (Deliver) isOutput() {}

// Filter is the per-process transformation from the EVS event stream to the
// virtual synchrony event stream.
type Filter struct {
	self model.ProcessID

	view    View // current view (zero when never yet in a primary)
	blocked bool // Rule 2: true while outside the primary component

	// pending is the regular configuration awaiting a primary decision;
	// deliveries in it are buffered until the decision arrives.
	pending    model.ConfigID
	pendingBuf []Deliver
}

// New creates a filter. A fresh process starts blocked: it has never been
// part of the primary component.
func New(self model.ProcessID) *Filter {
	return &Filter{self: self, blocked: true}
}

// Blocked reports whether the process is currently outside the primary
// component (Rule 2) or awaiting a primary decision.
func (f *Filter) Blocked() bool { return f.blocked || !f.pending.IsZero() }

// CurrentView returns the current view (zero while blocked).
func (f *Filter) CurrentView() View { return f.view }

// OnConfig ingests an EVS configuration change.
func (f *Filter) OnConfig(cfg model.Configuration) []Output {
	if cfg.ID.IsTransitional() {
		// Rule 1: mask; deliveries that follow are re-tagged into the
		// current view (which corresponds to reg_p(c)).
		return nil
	}
	// A regular configuration: await the primary decision; in the
	// meantime buffer deliveries (they are emitted into the new view if
	// it turns out primary).
	f.pending = cfg.ID
	f.pendingBuf = nil
	return nil
}

// OnDeliver ingests an EVS message delivery (application messages only;
// the primary layer's own messages are consumed before the filter).
func (f *Filter) OnDeliver(msg model.MessageID, payload []byte, svc model.Service) []Output {
	d := Deliver{Msg: msg, Payload: payload, Service: svc}
	if !f.pending.IsZero() {
		f.pendingBuf = append(f.pendingBuf, d)
		return nil
	}
	if f.blocked {
		// Rule 2: discard.
		return nil
	}
	// Rule 1: deliveries in the transitional configuration land here and
	// are tagged with the current (regular) view.
	d.View = f.view.ID
	return []Output{d}
}

// OnPrimaryDecision ingests the primary component algorithm's verdict for
// the configuration awaiting a decision. prev is the previous primary
// component (identical at every member by construction).
func (f *Filter) OnPrimaryDecision(cfg model.Configuration, isPrimary bool, prev model.Configuration) []Output {
	if cfg.ID != f.pending {
		return nil
	}
	buf := f.pendingBuf
	f.pending = model.ConfigID{}
	f.pendingBuf = nil

	if !isPrimary {
		// Rule 2: block; buffered deliveries are discarded.
		f.blocked = true
		f.view = View{}
		return nil
	}

	// Rules 3 and 4: split the installation into deterministic view
	// events. The base is the carried-over membership: members of the
	// previous primary still present; each remaining member is merged
	// one at a time in lexicographic order.
	base := prev.Members.Intersect(cfg.Members)
	if base.IsEmpty() {
		// First primary ever (or no surviving member): the base is
		// the lexicographically first member.
		first, _ := cfg.Members.Min()
		base = model.NewProcessSet(first)
	}
	var out []Output
	step := 0
	emit := func(members model.ProcessSet) {
		v := View{ID: ViewID{Cfg: cfg.ID, Step: step}, Members: members}
		step++
		f.view = v
		// Rule 4: a process emits only the views it belongs to.
		if members.Contains(f.self) {
			out = append(out, ViewChange{View: v})
		}
	}
	emit(base)
	for _, q := range cfg.Members.Subtract(base).Members() {
		base = base.Add(q)
		emit(base)
	}
	f.blocked = false

	// Deliveries buffered while the decision was pending belong to the
	// final view.
	for _, d := range buf {
		d.View = f.view.ID
		out = append(out, d)
	}
	return out
}

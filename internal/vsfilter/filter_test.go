package vsfilter

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

func reg(seq uint64, rep model.ProcessID, members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(seq, rep), Members: model.NewProcessSet(members...)}
}

func trans(next, prev model.Configuration, members ...model.ProcessID) model.Configuration {
	return model.Configuration{
		ID:      model.TransitionalID(next.ID, prev.ID),
		Members: model.NewProcessSet(members...),
	}
}

func msg(p model.ProcessID, n uint64) model.MessageID {
	return model.MessageID{Sender: p, SenderSeq: n}
}

func TestFreshProcessStartsBlocked(t *testing.T) {
	f := New("p")
	if !f.Blocked() {
		t.Fatal("fresh process should be blocked until it joins a primary")
	}
	if out := f.OnDeliver(msg("q", 1), nil, model.Agreed); out != nil {
		t.Fatalf("blocked delivery produced %v", out)
	}
}

func TestPrimaryInstallEmitsSplitViews(t *testing.T) {
	// Previous primary {p,q}; new primary {p,q,r,s}: Rule 3 demands the
	// merge be split one process at a time in lexicographic order.
	f := New("p")
	c := reg(5, "p", "p", "q", "r", "s")
	prev := reg(3, "p", "p", "q")
	f.OnConfig(c)
	out := f.OnPrimaryDecision(c, true, prev)
	var views []View
	for _, o := range out {
		if vc, ok := o.(ViewChange); ok {
			views = append(views, vc.View)
		}
	}
	if len(views) != 3 {
		t.Fatalf("views %v, want base {p,q} then +r then +s", views)
	}
	if !views[0].Members.Equal(model.NewProcessSet("p", "q")) ||
		!views[1].Members.Equal(model.NewProcessSet("p", "q", "r")) ||
		!views[2].Members.Equal(model.NewProcessSet("p", "q", "r", "s")) {
		t.Fatalf("split views %v", views)
	}
	for i, v := range views {
		if v.ID.Cfg != c.ID || v.ID.Step != i {
			t.Fatalf("view id %v, want (%v,%d)", v.ID, c.ID, i)
		}
	}
	if f.Blocked() {
		t.Fatal("primary member should be unblocked")
	}
}

func TestJoinerEmitsOnlyItsViews(t *testing.T) {
	// Rule 4: r, returning from a non-primary component, emits only the
	// views that include it — with the same identifiers as incumbents.
	fp := New("p")
	fr := New("r")
	c := reg(5, "p", "p", "q", "r", "s")
	prev := reg(3, "p", "p", "q")
	fp.OnConfig(c)
	fr.OnConfig(c)
	outP := fp.OnPrimaryDecision(c, true, prev)
	outR := fr.OnPrimaryDecision(c, true, prev)
	countViews := func(out []Output) []View {
		var vs []View
		for _, o := range out {
			if vc, ok := o.(ViewChange); ok {
				vs = append(vs, vc.View)
			}
		}
		return vs
	}
	vp, vr := countViews(outP), countViews(outR)
	if len(vp) != 3 || len(vr) != 2 {
		t.Fatalf("p emitted %d views, r emitted %d; want 3 and 2", len(vp), len(vr))
	}
	// r's first view must be p's second (same identifier): L3.
	if vr[0].ID != vp[1].ID {
		t.Fatalf("r's first view %v != p's second view %v", vr[0].ID, vp[1].ID)
	}
}

func TestNonPrimaryBlocksAndDiscards(t *testing.T) {
	f := New("p")
	c1 := reg(1, "p", "p", "q", "r")
	f.OnConfig(c1)
	f.OnPrimaryDecision(c1, true, model.Configuration{})
	if f.Blocked() {
		t.Fatal("should be unblocked in primary")
	}
	// Partition: non-primary configuration.
	c2 := reg(2, "p", "p")
	f.OnConfig(c2)
	// A delivery while the decision is pending is buffered...
	if out := f.OnDeliver(msg("p", 1), []byte("x"), model.Agreed); out != nil {
		t.Fatalf("pending delivery emitted %v", out)
	}
	// ...and discarded when the verdict is non-primary (Rule 2).
	if out := f.OnPrimaryDecision(c2, false, reg(1, "p", "p", "q", "r")); out != nil {
		t.Fatalf("non-primary decision emitted %v", out)
	}
	if !f.Blocked() {
		t.Fatal("should be blocked in non-primary component")
	}
	if out := f.OnDeliver(msg("p", 2), nil, model.Agreed); out != nil {
		t.Fatalf("blocked delivery emitted %v", out)
	}
}

func TestTransitionalMaskedAndRetagged(t *testing.T) {
	f := New("p")
	c1 := reg(1, "p", "p", "q")
	f.OnConfig(c1)
	f.OnPrimaryDecision(c1, true, model.Configuration{})
	view := f.CurrentView()

	// Rule 1: a transitional configuration change is masked...
	tr := trans(reg(2, "p", "p"), c1, "p")
	if out := f.OnConfig(tr); out != nil {
		t.Fatalf("transitional configuration emitted %v", out)
	}
	// ...and deliveries within it are re-tagged to the regular view.
	out := f.OnDeliver(msg("q", 1), []byte("x"), model.Safe)
	if len(out) != 1 {
		t.Fatalf("transitional delivery emitted %v", out)
	}
	d, ok := out[0].(Deliver)
	if !ok || d.View != view.ID {
		t.Fatalf("delivery %v, want tagged with view %v", out[0], view.ID)
	}
}

func TestBufferedDeliveriesEmittedIntoNewView(t *testing.T) {
	f := New("p")
	c := reg(1, "p", "p", "q")
	f.OnConfig(c)
	f.OnDeliver(msg("q", 1), []byte("early"), model.Agreed)
	out := f.OnPrimaryDecision(c, true, model.Configuration{})
	var delivered []Deliver
	for _, o := range out {
		if d, ok := o.(Deliver); ok {
			delivered = append(delivered, d)
		}
	}
	if len(delivered) != 1 || string(delivered[0].Payload) != "early" {
		t.Fatalf("buffered deliveries %v", delivered)
	}
	if delivered[0].View != f.CurrentView().ID {
		t.Fatalf("buffered delivery tagged %v, want %v", delivered[0].View, f.CurrentView().ID)
	}
}

func TestCheckCleanHistory(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	members := model.NewProcessSet("p", "q")
	m := msg("p", 1)
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: members},
		{Type: EventView, Proc: "q", View: v0, Members: members},
		{Type: EventSend, Proc: "p", Msg: m},
		{Type: EventDeliver, Proc: "p", Msg: m, View: v0},
		{Type: EventDeliver, Proc: "q", Msg: m, View: v0},
	}
	if vs := Check(events, true); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestCheckC2SendWithoutDelivery(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	members := model.NewProcessSet("p")
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: members},
		{Type: EventSend, Proc: "p", Msg: msg("p", 1)},
	}
	wantCond(t, Check(events, true), "C2")
	// The sender stopped: the extend mechanism imputes the delivery.
	events = append(events, TraceEvent{Type: EventStop, Proc: "p"})
	for _, v := range Check(events, true) {
		if v.Cond == "C2" {
			t.Fatalf("stopped sender should be excused: %v", v)
		}
	}
}

func TestCheckC3MemberMovedOnWithoutDelivering(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	v1 := ViewID{Cfg: model.RegularID(2, "p"), Step: 0}
	members := model.NewProcessSet("p", "q")
	m := msg("p", 1)
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: members},
		{Type: EventView, Proc: "q", View: v0, Members: members},
		{Type: EventSend, Proc: "p", Msg: m},
		{Type: EventDeliver, Proc: "p", Msg: m, View: v0},
		{Type: EventView, Proc: "q", View: v1, Members: members},
	}
	wantCond(t, Check(events, false), "C3")
}

func TestCheckL4DifferentViews(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	v1 := ViewID{Cfg: model.RegularID(2, "p"), Step: 0}
	members := model.NewProcessSet("p", "q")
	m := msg("p", 1)
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: members},
		{Type: EventView, Proc: "q", View: v0, Members: members},
		{Type: EventView, Proc: "q", View: v1, Members: members},
		{Type: EventSend, Proc: "p", Msg: m},
		{Type: EventDeliver, Proc: "p", Msg: m, View: v0},
		{Type: EventDeliver, Proc: "q", Msg: m, View: v1},
	}
	wantCond(t, Check(events, false), "L4")
}

func TestCheckL5ConflictingOrdersCycle(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	members := model.NewProcessSet("p", "q")
	m1, m2 := msg("p", 1), msg("q", 1)
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: members},
		{Type: EventView, Proc: "q", View: v0, Members: members},
		{Type: EventSend, Proc: "p", Msg: m1},
		{Type: EventSend, Proc: "q", Msg: m2},
		{Type: EventDeliver, Proc: "p", Msg: m1, View: v0},
		{Type: EventDeliver, Proc: "p", Msg: m2, View: v0},
		{Type: EventDeliver, Proc: "q", Msg: m2, View: v0},
		{Type: EventDeliver, Proc: "q", Msg: m1, View: v0},
	}
	wantCond(t, Check(events, false), "L1-L5")
}

func TestCheckL3InconsistentMembership(t *testing.T) {
	v0 := ViewID{Cfg: model.RegularID(1, "p"), Step: 0}
	events := []TraceEvent{
		{Type: EventView, Proc: "p", View: v0, Members: model.NewProcessSet("p", "q")},
		{Type: EventView, Proc: "q", View: v0, Members: model.NewProcessSet("q")},
	}
	wantCond(t, Check(events, false), "L3")
}

func wantCond(t *testing.T, vs []Violation, cond string) {
	t.Helper()
	for _, v := range vs {
		if v.Cond == cond {
			return
		}
	}
	t.Fatalf("expected %s violation, got %v", cond, vs)
}

func TestViewStrings(t *testing.T) {
	v := View{ID: ViewID{Cfg: model.RegularID(1, "p"), Step: 2}, Members: model.NewProcessSet("p")}
	if got := fmt.Sprint(v); got != "view(reg(1@p)#2){p}" {
		t.Fatalf("View.String() = %q", got)
	}
	var zero ViewID
	if !zero.IsZero() {
		t.Fatal("zero ViewID should report IsZero")
	}
}

package netsim

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

type recorder struct {
	got []string
}

func (r *recorder) handler(id model.ProcessID) Handler {
	return func(from model.ProcessID, payload any, _ time.Duration) {
		s, _ := payload.(string)
		r.got = append(r.got, string(id)+"<-"+string(from)+":"+s)
	}
}

func setup(cfg Config, ids ...model.ProcessID) (*sim.Scheduler, *Network, *recorder) {
	sched := &sim.Scheduler{}
	net := New(sched, cfg)
	rec := &recorder{}
	for _, id := range ids {
		net.Register(id, rec.handler(id))
	}
	return sched, net, rec
}

func TestBroadcastReachesComponentIncludingSelf(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r")
	net.Broadcast("p", "hello")
	sched.RunUntilIdle(time.Second)
	want := map[string]bool{"p<-p:hello": true, "q<-p:hello": true, "r<-p:hello": true}
	if len(rec.got) != 3 {
		t.Fatalf("delivered %v, want 3 deliveries", rec.got)
	}
	for _, g := range rec.got {
		if !want[g] {
			t.Fatalf("unexpected delivery %q", g)
		}
	}
}

func TestPartitionBlocksCrossComponentTraffic(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r", "s")
	net.Partition([]model.ProcessID{"p", "q"}, []model.ProcessID{"r", "s"})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("delivered %v, want only p and q", rec.got)
	}
	for _, g := range rec.got {
		if g != "p<-p:x" && g != "q<-p:x" {
			t.Fatalf("leaked across partition: %q", g)
		}
	}
	if net.Stats().Cut != 2 {
		t.Fatalf("Cut = %d, want 2", net.Stats().Cut)
	}
}

func TestPartitionIsolatesUnmentionedProcesses(t *testing.T) {
	_, net, _ := setup(Config{Seed: 1}, "p", "q", "r")
	net.Partition([]model.ProcessID{"p", "q"})
	if net.Connected("p", "r") || net.Connected("q", "r") {
		t.Fatal("unmentioned process should be isolated")
	}
	if !net.Connected("p", "q") {
		t.Fatal("grouped processes should stay connected")
	}
	if !net.Connected("r", "r") {
		t.Fatal("a process is always connected to itself")
	}
}

func TestMergeRestoresConnectivity(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.Partition([]model.ProcessID{"p"}, []model.ProcessID{"q"})
	net.Merge()
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("after merge delivered %v, want both", rec.got)
	}
}

func TestInFlightPacketsCutByPartition(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	// Partition before the 10ms delivery fires.
	sched.RunUntil(time.Millisecond)
	net.Partition([]model.ProcessID{"p"}, []model.ProcessID{"q"})
	sched.RunUntilIdle(time.Second)
	for _, g := range rec.got {
		if g == "q<-p:x" {
			t.Fatal("in-flight packet crossed a partition")
		}
	}
}

func TestDownProcessSendsAndReceivesNothing(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.SetDown("q", true)
	net.Broadcast("p", "x")
	net.Broadcast("q", "y")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 1 || rec.got[0] != "p<-p:x" {
		t.Fatalf("deliveries %v, want only p's loopback", rec.got)
	}
	net.SetDown("q", false)
	net.Broadcast("p", "z")
	sched.RunUntilIdle(time.Second)
	found := false
	for _, g := range rec.got {
		if g == "q<-p:z" {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered process should receive again")
	}
}

func TestUnicast(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r")
	net.Unicast("p", "q", "tok")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 1 || rec.got[0] != "q<-p:tok" {
		t.Fatalf("unicast deliveries %v", rec.got)
	}
}

func TestDropRateLosesPackets(t *testing.T) {
	sched, net, _ := setup(Config{DropRate: 1.0, Seed: 1}, "p", "q")
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	st := net.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (q's copy)", st.Dropped)
	}
	if st.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1 (loopback is reliable)", st.Delivered)
	}
}

func TestDupRateDuplicates(t *testing.T) {
	sched, net, rec := setup(Config{DupRate: 1.0, Seed: 1}, "p", "q")
	net.Unicast("p", "q", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("deliveries %v, want duplicate pair", rec.got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		sched, net, rec := setup(Config{
			MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
			DropRate: 0.3, DupRate: 0.1, Seed: 99,
		}, "p", "q", "r")
		for i := 0; i < 50; i++ {
			net.Broadcast("p", "m")
			net.Broadcast("q", "n")
		}
		sched.RunUntilIdle(time.Second)
		return rec.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestComponentOf(t *testing.T) {
	_, net, _ := setup(Config{Seed: 1}, "p", "q", "r")
	net.Partition([]model.ProcessID{"p", "q"})
	if got := net.ComponentOf("p"); !got.Equal(model.NewProcessSet("p", "q")) {
		t.Fatalf("ComponentOf(p) = %v", got)
	}
	if got := net.ComponentOf("r"); !got.Equal(model.NewProcessSet("r")) {
		t.Fatalf("ComponentOf(r) = %v", got)
	}
}

func TestMaxDelayClampedToMin(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 5 * time.Millisecond, MaxDelay: time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if sched.Now() != 5*time.Millisecond {
		t.Fatalf("delivery at %v, want clamped 5ms", sched.Now())
	}
}

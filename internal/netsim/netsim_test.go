package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

type recorder struct {
	got []string
}

func (r *recorder) handler(id model.ProcessID) Handler {
	return func(from model.ProcessID, payload any, _ time.Duration) {
		s, _ := payload.(string)
		r.got = append(r.got, string(id)+"<-"+string(from)+":"+s)
	}
}

func setup(cfg Config, ids ...model.ProcessID) (*sim.Scheduler, *Network, *recorder) {
	sched := &sim.Scheduler{}
	net := New(sched, cfg)
	rec := &recorder{}
	for _, id := range ids {
		net.Register(id, rec.handler(id))
	}
	return sched, net, rec
}

func TestBroadcastReachesComponentIncludingSelf(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r")
	net.Broadcast("p", "hello")
	sched.RunUntilIdle(time.Second)
	want := map[string]bool{"p<-p:hello": true, "q<-p:hello": true, "r<-p:hello": true}
	if len(rec.got) != 3 {
		t.Fatalf("delivered %v, want 3 deliveries", rec.got)
	}
	for _, g := range rec.got {
		if !want[g] {
			t.Fatalf("unexpected delivery %q", g)
		}
	}
}

func TestPartitionBlocksCrossComponentTraffic(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r", "s")
	net.Partition([]model.ProcessID{"p", "q"}, []model.ProcessID{"r", "s"})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("delivered %v, want only p and q", rec.got)
	}
	for _, g := range rec.got {
		if g != "p<-p:x" && g != "q<-p:x" {
			t.Fatalf("leaked across partition: %q", g)
		}
	}
	if net.Stats().Cut != 2 {
		t.Fatalf("Cut = %d, want 2", net.Stats().Cut)
	}
}

func TestPartitionIsolatesUnmentionedProcesses(t *testing.T) {
	_, net, _ := setup(Config{Seed: 1}, "p", "q", "r")
	net.Partition([]model.ProcessID{"p", "q"})
	if net.Connected("p", "r") || net.Connected("q", "r") {
		t.Fatal("unmentioned process should be isolated")
	}
	if !net.Connected("p", "q") {
		t.Fatal("grouped processes should stay connected")
	}
	if !net.Connected("r", "r") {
		t.Fatal("a process is always connected to itself")
	}
}

func TestMergeRestoresConnectivity(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.Partition([]model.ProcessID{"p"}, []model.ProcessID{"q"})
	net.Merge()
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("after merge delivered %v, want both", rec.got)
	}
}

func TestInFlightPacketsCutByPartition(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	// Partition before the 10ms delivery fires.
	sched.RunUntil(time.Millisecond)
	net.Partition([]model.ProcessID{"p"}, []model.ProcessID{"q"})
	sched.RunUntilIdle(time.Second)
	for _, g := range rec.got {
		if g == "q<-p:x" {
			t.Fatal("in-flight packet crossed a partition")
		}
	}
}

func TestDownProcessSendsAndReceivesNothing(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.SetDown("q", true)
	net.Broadcast("p", "x")
	net.Broadcast("q", "y")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 1 || rec.got[0] != "p<-p:x" {
		t.Fatalf("deliveries %v, want only p's loopback", rec.got)
	}
	net.SetDown("q", false)
	net.Broadcast("p", "z")
	sched.RunUntilIdle(time.Second)
	found := false
	for _, g := range rec.got {
		if g == "q<-p:z" {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered process should receive again")
	}
}

func TestUnicast(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r")
	net.Unicast("p", "q", "tok")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 1 || rec.got[0] != "q<-p:tok" {
		t.Fatalf("unicast deliveries %v", rec.got)
	}
}

func TestDropRateLosesPackets(t *testing.T) {
	sched, net, _ := setup(Config{DropRate: 1.0, Seed: 1}, "p", "q")
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	st := net.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (q's copy)", st.Dropped)
	}
	if st.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1 (loopback is reliable)", st.Delivered)
	}
}

func TestDupRateDuplicates(t *testing.T) {
	sched, net, rec := setup(Config{DupRate: 1.0, Seed: 1}, "p", "q")
	net.Unicast("p", "q", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("deliveries %v, want duplicate pair", rec.got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		sched, net, rec := setup(Config{
			MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
			DropRate: 0.3, DupRate: 0.1, Seed: 99,
		}, "p", "q", "r")
		for i := 0; i < 50; i++ {
			net.Broadcast("p", "m")
			net.Broadcast("q", "n")
		}
		sched.RunUntilIdle(time.Second)
		return rec.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestComponentOf(t *testing.T) {
	_, net, _ := setup(Config{Seed: 1}, "p", "q", "r")
	net.Partition([]model.ProcessID{"p", "q"})
	if got := net.ComponentOf("p"); !got.Equal(model.NewProcessSet("p", "q")) {
		t.Fatalf("ComponentOf(p) = %v", got)
	}
	if got := net.ComponentOf("r"); !got.Equal(model.NewProcessSet("r")) {
		t.Fatalf("ComponentOf(r) = %v", got)
	}
}

func TestMaxDelayClampedToMin(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 5 * time.Millisecond, MaxDelay: time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if sched.Now() != 5*time.Millisecond {
		t.Fatalf("delivery at %v, want clamped 5ms", sched.Now())
	}
}

// ---------------------------------------------------------------------------
// Edge cases around delivery-time state changes.

func TestDeliveryTimePartitionCountsCut(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	sched.RunUntil(time.Millisecond)
	before := net.Stats().Cut
	net.Partition([]model.ProcessID{"p"}, []model.ProcessID{"q"})
	sched.RunUntilIdle(time.Second)
	if got := net.Stats().Cut - before; got != 1 {
		t.Fatalf("delivery-time cut counted %d, want 1", got)
	}
	if got := net.Stats().Delivered; got != 1 { // p's loopback only
		t.Fatalf("Delivered = %d, want 1", got)
	}
}

func TestDuplicatedPacketsHaveIndependentDelays(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{
		MinDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond,
		DupRate: 1, Seed: 7,
	})
	var times []time.Duration
	net.Register("p", func(model.ProcessID, any, time.Duration) {})
	net.Register("q", func(_ model.ProcessID, _ any, now time.Duration) {
		times = append(times, now)
	})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(times) != 2 {
		t.Fatalf("q received %d copies, want 2", len(times))
	}
	if times[0] == times[1] {
		t.Fatalf("duplicate copies arrived at the same instant %v; delays should be drawn independently", times[0])
	}
	if net.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", net.Stats().Duplicated)
	}
}

func TestDownSenderDropsInFlightAtDelivery(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	// Crash the sender while its packet is in flight: the EVS failure
	// model says a crashed process's traffic does not outlive it.
	sched.RunUntil(time.Millisecond)
	net.SetDown("p", true)
	before := net.Stats().Cut
	sched.RunUntilIdle(time.Second)
	for _, g := range rec.got {
		if g == "q<-p:x" {
			t.Fatal("packet from a crashed sender was delivered")
		}
	}
	// Both the copy to q and p's own loopback are cut (p is down too).
	if got := net.Stats().Cut - before; got != 2 {
		t.Fatalf("cut %d packets at delivery, want 2", got)
	}
}

func TestReRegisterAfterRecoveryReplacesHandler(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{Seed: 1})
	var old, fresh int
	net.Register("p", func(model.ProcessID, any, time.Duration) {})
	net.Register("q", func(model.ProcessID, any, time.Duration) { old++ })
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if old != 1 {
		t.Fatalf("old handler saw %d packets, want 1", old)
	}
	// Crash, recover with a fresh protocol instance (new handler).
	net.SetDown("q", true)
	net.SetDown("q", false)
	net.Register("q", func(model.ProcessID, any, time.Duration) { fresh++ })
	net.Broadcast("p", "y")
	sched.RunUntilIdle(time.Second)
	if old != 1 || fresh != 1 {
		t.Fatalf("old=%d fresh=%d after re-register, want 1 and 1", old, fresh)
	}
	// Registration order must not duplicate q: exactly one copy arrives.
	if net.Stats().Delivered != 4 { // 2 broadcasts × (p loopback + q)
		t.Fatalf("Delivered = %d, want 4", net.Stats().Delivered)
	}
}

// ---------------------------------------------------------------------------
// Config validation.

func TestConfigClamping(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{
		MinDelay: -time.Second,
		MaxDelay: -2 * time.Second,
		DropRate: 1.7,
		DupRate:  -0.3,
		Seed:     1,
	})
	if net.cfg.MinDelay != 0 || net.cfg.MaxDelay != 0 {
		t.Fatalf("negative delays not clamped: %v..%v", net.cfg.MinDelay, net.cfg.MaxDelay)
	}
	if net.cfg.DropRate != 1 {
		t.Fatalf("DropRate = %v, want clamped to 1", net.cfg.DropRate)
	}
	if net.cfg.DupRate != 0 {
		t.Fatalf("DupRate = %v, want clamped to 0", net.cfg.DupRate)
	}
	nan := math.NaN()
	if got := clampRate(nan); got != 0 {
		t.Fatalf("clampRate(NaN) = %v, want 0", got)
	}
}

// ---------------------------------------------------------------------------
// Directional link rules and the message filter.

func TestOneWayBlockIsAsymmetric(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.SetLinkRule("p", "q", LinkRule{Block: true})
	net.Broadcast("p", "x")
	net.Broadcast("q", "y")
	sched.RunUntilIdle(time.Second)
	got := map[string]bool{}
	for _, g := range rec.got {
		got[g] = true
	}
	if got["q<-p:x"] {
		t.Fatal("blocked direction p→q leaked")
	}
	if !got["p<-q:y"] {
		t.Fatal("reverse direction q→p should be unaffected")
	}
	if net.Stats().Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", net.Stats().Blocked)
	}
	net.SetLinkRule("p", "q", LinkRule{}) // zero rule clears
	if net.LinkRules() != 0 {
		t.Fatalf("zero rule did not clear the entry (%d rules)", net.LinkRules())
	}
	net.Broadcast("p", "z")
	sched.RunUntilIdle(time.Second)
	found := false
	for _, g := range rec.got {
		if g == "q<-p:z" {
			found = true
		}
	}
	if !found {
		t.Fatal("healed link should deliver again")
	}
}

func TestWildcardRuleBlocksWholeRow(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q", "r")
	net.SetLinkRule("p", Wildcard, LinkRule{Block: true})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if len(rec.got) != 1 || rec.got[0] != "p<-p:x" {
		t.Fatalf("deliveries %v, want only p's loopback", rec.got)
	}
}

func TestInFlightPacketCutByOneWayBlock(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1})
	rec := &recorder{}
	net.Register("p", rec.handler("p"))
	net.Register("q", rec.handler("q"))
	net.Broadcast("p", "x")
	sched.RunUntil(time.Millisecond)
	net.SetLinkRule("p", "q", LinkRule{Block: true})
	sched.RunUntilIdle(time.Second)
	for _, g := range rec.got {
		if g == "q<-p:x" {
			t.Fatal("in-flight packet crossed a one-way cut")
		}
	}
}

func TestLinkRuleDelayAndJitter(t *testing.T) {
	sched := &sim.Scheduler{}
	net := New(sched, Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 3})
	var at time.Duration
	net.Register("p", func(model.ProcessID, any, time.Duration) {})
	net.Register("q", func(_ model.ProcessID, _ any, now time.Duration) { at = now })
	net.SetLinkRule("p", "q", LinkRule{Delay: 20 * time.Millisecond, Jitter: 5 * time.Millisecond})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	if at < 21*time.Millisecond || at >= 26*time.Millisecond {
		t.Fatalf("delivery at %v, want within [21ms, 26ms)", at)
	}
}

func TestLinkRuleDropLosesPackets(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 5}, "p", "q")
	net.SetLinkRule("p", "q", LinkRule{Drop: 1})
	net.Broadcast("p", "x")
	sched.RunUntilIdle(time.Second)
	for _, g := range rec.got {
		if g == "q<-p:x" {
			t.Fatal("Drop=1 rule delivered anyway")
		}
	}
	if net.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", net.Stats().Dropped)
	}
}

func TestFilterTargetsMessageClass(t *testing.T) {
	sched, net, rec := setup(Config{Seed: 1}, "p", "q")
	net.SetFilter(func(_, _ model.ProcessID, payload any) bool {
		s, _ := payload.(string)
		return s != "token"
	})
	net.Broadcast("p", "token")
	net.Broadcast("p", "data")
	sched.RunUntilIdle(time.Second)
	got := map[string]bool{}
	for _, g := range rec.got {
		got[g] = true
	}
	if got["q<-p:token"] {
		t.Fatal("filtered class leaked to q")
	}
	if !got["p<-p:token"] {
		t.Fatal("loopback must never be filtered")
	}
	if !got["q<-p:data"] {
		t.Fatal("unfiltered class should pass")
	}
	if net.Stats().Filtered != 1 {
		t.Fatalf("Filtered = %d, want 1", net.Stats().Filtered)
	}
	net.SetFilter(nil)
	net.Broadcast("p", "token")
	sched.RunUntilIdle(time.Second)
	if net.Stats().Filtered != 1 {
		t.Fatal("cleared filter still dropping")
	}
}

func TestRegisterKeepsOrderSorted(t *testing.T) {
	_, net, rec := setup(Config{Seed: 1})
	// Register out of order, with a duplicate re-registration mixed in.
	for _, id := range []model.ProcessID{"m", "c", "x", "a", "c", "q", "b"} {
		net.Register(id, rec.handler(id))
	}
	want := []model.ProcessID{"a", "b", "c", "m", "q", "x"}
	if len(net.order) != len(want) {
		t.Fatalf("order = %v, want %v", net.order, want)
	}
	for i, id := range want {
		if net.order[i] != id {
			t.Fatalf("order = %v, want %v", net.order, want)
		}
	}
}

// Package netsim simulates the broadcast medium beneath the protocol stack.
//
// The EVS model assumes only that processes within a network component can
// receive each other's broadcasts and that processes in different components
// cannot communicate (Section 2 of the paper). This simulator implements
// exactly that: a component assignment that Partition/Merge rearrange at
// runtime, per-packet loss, duplication and bounded random delay, all driven
// from a deterministic seeded RNG over the discrete-event scheduler. It is
// the substitute for the physical LAN broadcast hardware the Totem and
// Transis implementations ran on; the substitution is faithful because the
// protocol's correctness argument uses no property of the medium beyond
// component-scoped, unreliable, unordered packet receipt.
package netsim

import (
	"hash/crc32"
	"math/rand"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Handler receives a packet at a registered process.
type Handler func(from model.ProcessID, payload any, now time.Duration)

// Filter inspects a packet about to be transmitted from one process to
// another and reports whether the medium should carry it. Returning false
// drops the packet (counted in Stats.Filtered). Loopback (self) deliveries
// are never filtered. Filters model targeted faults — for example losing
// every token, or every membership join from one process — that uniform
// DropRate loss cannot express.
type Filter func(from, to model.ProcessID, payload any) bool

// LinkRule overrides behaviour of one directed link (from → to). Rules are
// directional: installing a rule for (p,q) leaves (q,p) untouched, which is
// what makes asymmetric (one-way) partitions expressible.
type LinkRule struct {
	// Block cuts the link entirely (counted in Stats.Blocked).
	Block bool
	// Drop is an additional independent loss probability in [0,1],
	// applied on top of Config.DropRate.
	Drop float64
	// Delay is added to the configured per-packet latency.
	Delay time.Duration
	// Jitter adds a further uniformly distributed latency in [0,Jitter),
	// re-drawn per packet; with Jitter larger than the packet spacing,
	// packets reorder aggressively.
	Jitter time.Duration
}

// zero reports whether the rule changes nothing.
func (r LinkRule) zero() bool {
	return !r.Block && r.Drop == 0 && r.Delay == 0 && r.Jitter == 0
}

// link is a directed process pair; the zero ProcessID "" is a wildcard
// matching any process, so rules can target a whole row or column of the
// connectivity matrix.
type link struct {
	from, to model.ProcessID
}

// Config controls link behaviour. The zero value is a perfect network with
// zero delay; Default returns a more realistic profile.
type Config struct {
	// MinDelay and MaxDelay bound the uniformly distributed per-packet
	// latency.
	MinDelay time.Duration
	MaxDelay time.Duration
	// DropRate is the independent probability that a given receiver
	// loses a given packet. Self-delivery of broadcasts is never
	// dropped (local loopback).
	DropRate float64
	// DupRate is the probability a packet is delivered twice.
	DupRate float64
	// Seed drives the deterministic RNG.
	Seed int64

	// Codec routes every packet through the wire binary codec exactly as
	// the real transports (internal/transport) do: wire.Message payloads
	// are encoded once at send time and decoded at each receiver. With
	// both fault rates zero this changes no history — the codec consumes
	// no RNG draws — so a differential run certifies the encoded path
	// against the struct-handoff path.
	Codec bool
	// CorruptRate is the per-receiver probability (Codec mode only) that
	// a non-loopback encoded frame has one bit flipped in transit;
	// TruncateRate the probability it is cut short. Faulted frames fail
	// the modeled link-layer checksum (or the decoder itself), are
	// counted (Stats.DecodeErrors, wire_decode_errors_total) and
	// dropped — corruption is loss, exactly as on a checksummed
	// network; the protocol's retransmission machinery recovers, and
	// nothing panics.
	CorruptRate  float64
	TruncateRate float64
}

// Default returns a LAN-like configuration: sub-millisecond delays, no loss.
func Default(seed int64) Config {
	return Config{
		MinDelay: 50 * time.Microsecond,
		MaxDelay: 300 * time.Microsecond,
		Seed:     seed,
	}
}

// Stats counts network activity for the benchmark harness.
type Stats struct {
	Broadcasts uint64
	Unicasts   uint64
	Delivered  uint64
	Dropped    uint64 // lost to DropRate or a link rule's Drop
	Cut        uint64 // lost to partition or down receiver
	Duplicated uint64
	Filtered   uint64 // lost to the message filter
	Blocked    uint64 // lost to a blocking link rule

	// Codec-mode counters.
	Corrupted    uint64 // frames bit-flipped in transit
	Truncated    uint64 // frames cut short in transit
	EncodeErrors uint64 // sends rejected by the wire codec
	DecodeErrors uint64 // frames the receiver's decoder rejected (dropped)
}

// Network is the simulated medium. It is not safe for concurrent use; the
// discrete-event harness is single-threaded by design.
type Network struct {
	sched *sim.Scheduler
	rng   *rand.Rand
	cfg   Config

	handlers  map[model.ProcessID]Handler
	order     []model.ProcessID // registration order of handler keys, sorted
	component map[model.ProcessID]int
	down      map[model.ProcessID]bool
	nextComp  int
	stats     Stats
	rules     map[link]LinkRule
	filter    Filter

	// met is the cluster-level observability scope for the medium (nil
	// disables); it mirrors the Stats counters into the metric catalog.
	met *obs.Metrics

	// dec decodes frames in Codec mode. One decoder for the whole
	// medium: interning is deterministic and decoded messages are
	// immutable, so receivers can share its arenas.
	dec *wire.Decoder
}

// frame is an encoded packet in flight (Codec mode). sum is the
// checksum computed over the bytes the sender put on the wire — the
// simulator's stand-in for the UDP/link-layer checksum that makes real
// networks discard corrupted datagrams rather than deliver them.
// Transit faults mutate b but never sum, so the receiver detects them.
type frame struct {
	b   []byte
	sum uint32
}

// clampRate forces a probability into [0,1]; NaN becomes 0.
func clampRate(r float64) float64 {
	if !(r > 0) { // also catches NaN
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// validate clamps a configuration to sane values instead of letting
// negative delays or out-of-range probabilities silently misbehave (a
// negative delay would schedule deliveries "in the past", which the
// scheduler coerces to now, destroying the configured ordering pressure;
// a DropRate above 1 would mask DupRate draws from the shared RNG stream).
func validate(cfg Config) Config {
	if cfg.MinDelay < 0 {
		cfg.MinDelay = 0
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	cfg.DropRate = clampRate(cfg.DropRate)
	cfg.DupRate = clampRate(cfg.DupRate)
	cfg.CorruptRate = clampRate(cfg.CorruptRate)
	cfg.TruncateRate = clampRate(cfg.TruncateRate)
	if !cfg.Codec {
		cfg.CorruptRate, cfg.TruncateRate = 0, 0
	}
	return cfg
}

// New creates a network over the given scheduler. All processes start in a
// single component. The configuration is validated: negative delays clamp
// to zero, MaxDelay below MinDelay clamps to MinDelay, and rates clamp to
// [0,1].
func New(sched *sim.Scheduler, cfg Config) *Network {
	cfg = validate(cfg)
	var dec *wire.Decoder
	if cfg.Codec {
		dec = wire.NewDecoder()
	}
	return &Network{
		dec:       dec,
		sched:     sched,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cfg:       cfg,
		handlers:  make(map[model.ProcessID]Handler),
		component: make(map[model.ProcessID]int),
		down:      make(map[model.ProcessID]bool),
		nextComp:  1,
		rules:     make(map[link]LinkRule),
	}
}

// Register attaches a process to the medium. Re-registering replaces the
// handler (used when a process recovers with a fresh protocol instance).
func (n *Network) Register(id model.ProcessID, h Handler) {
	if _, ok := n.handlers[id]; !ok {
		// Insert in place: the slice is already sorted, so a full
		// re-sort per registration is wasted work.
		i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
		n.order = append(n.order, "")
		copy(n.order[i+1:], n.order[i:])
		n.order[i] = id
	}
	n.handlers[id] = h
	if _, ok := n.component[id]; !ok {
		n.component[id] = 0
	}
}

// SetDown marks a process as crashed (true) or up (false). A down process
// receives nothing; its outbound calls are ignored.
func (n *Network) SetDown(id model.ProcessID, down bool) {
	n.down[id] = down
}

// Partition splits the network into the given components. Registered
// processes not mentioned in any group are each isolated into a singleton
// component. Packets in flight are lost if the sender and receiver are in
// different components at delivery time.
func (n *Network) Partition(groups ...[]model.ProcessID) {
	assigned := make(map[model.ProcessID]bool, len(n.component))
	for _, g := range groups {
		comp := n.nextComp
		n.nextComp++
		for _, id := range g {
			n.component[id] = comp
			assigned[id] = true
		}
	}
	for id := range n.component {
		if !assigned[id] {
			n.component[id] = n.nextComp
			n.nextComp++
		}
	}
}

// Merge reunites all processes into a single component.
func (n *Network) Merge() {
	comp := n.nextComp
	n.nextComp++
	for id := range n.component {
		n.component[id] = comp
	}
}

// Connected reports whether p and q are currently in the same component and
// both up.
func (n *Network) Connected(p, q model.ProcessID) bool {
	return !n.down[p] && !n.down[q] && n.component[p] == n.component[q]
}

// ComponentOf returns the identifiers currently sharing a component with p
// (including p itself), in sorted order.
func (n *Network) ComponentOf(p model.ProcessID) model.ProcessSet {
	ids := make([]model.ProcessID, 0, len(n.component))
	comp := n.component[p]
	for id, c := range n.component {
		if c == comp {
			ids = append(ids, id)
		}
	}
	return model.NewProcessSet(ids...)
}

// SetMetrics attaches the cluster-level observability scope (nil disables).
func (n *Network) SetMetrics(m *obs.Metrics) { n.met = m }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// Wildcard, as a LinkRule endpoint, matches every process.
const Wildcard = model.ProcessID("")

// SetLinkRule installs a directional fault rule on the from → to link,
// replacing any previous rule for that pair. Either endpoint may be
// Wildcard. A zero rule removes the entry.
func (n *Network) SetLinkRule(from, to model.ProcessID, r LinkRule) {
	k := link{from, to}
	if r.zero() {
		delete(n.rules, k)
		return
	}
	n.rules[k] = r
}

// ClearLinkRules removes every directional fault rule.
func (n *Network) ClearLinkRules() {
	n.rules = make(map[link]LinkRule)
}

// LinkRules returns the number of installed rules (for fault accounting).
func (n *Network) LinkRules() int { return len(n.rules) }

// SetFilter installs (or with nil removes) the message filter.
func (n *Network) SetFilter(f Filter) { n.filter = f }

// ruleFor combines every rule matching the directed pair: exact, sender
// wildcard, receiver wildcard and global. Block is OR-ed, Drop takes the
// maximum, Delay and Jitter add, so a global delay spike composes with a
// one-way block instead of being shadowed by it.
func (n *Network) ruleFor(from, to model.ProcessID) LinkRule {
	if len(n.rules) == 0 {
		return LinkRule{}
	}
	var out LinkRule
	for _, k := range [4]link{{from, to}, {from, Wildcard}, {Wildcard, to}, {Wildcard, Wildcard}} {
		r, ok := n.rules[k]
		if !ok {
			continue
		}
		out.Block = out.Block || r.Block
		if r.Drop > out.Drop {
			out.Drop = r.Drop
		}
		out.Delay += r.Delay
		out.Jitter += r.Jitter
	}
	return out
}

// Broadcast sends payload from the given process to every process in its
// component, including itself. Self-delivery is reliable (loopback); other
// receivers are subject to loss, duplication and delay.
//
//evs:noalloc
func (n *Network) Broadcast(from model.ProcessID, payload any) {
	if n.down[from] {
		return
	}
	n.stats.Broadcasts++
	n.met.Inc(obs.CNetBroadcasts)
	if n.cfg.Codec {
		var ok bool
		// Encoded once, shared by every receiver — the real transports'
		// economy, and sound for the same reason (frames in flight are
		// never mutated; corruption copies first).
		//lint:allow noalloc Codec is a diagnostic mode that pays for encoding; the default configuration never reaches this call
		if payload, ok = n.encodeFrame(payload); !ok {
			return
		}
	}
	// The sender's component and down-map lookups are hoisted out of the
	// per-receiver loop: with data batching one Broadcast often carries a
	// whole token visit's worth of messages, so this loop is the
	// simulator's hottest path.
	comp := n.component[from]
	for _, id := range n.order {
		if id == from {
			n.transmitLink(from, id, payload, true)
			continue
		}
		if comp != n.component[id] || n.down[id] {
			n.stats.Cut++
			n.met.Inc(obs.CNetCut)
			continue
		}
		n.transmitLink(from, id, payload, false)
	}
}

// Unicast sends payload from one process to another. Delivery requires the
// two processes to share a component at delivery time.
func (n *Network) Unicast(from, to model.ProcessID, payload any) {
	if n.down[from] {
		return
	}
	n.stats.Unicasts++
	if n.cfg.Codec {
		var ok bool
		if payload, ok = n.encodeFrame(payload); !ok {
			return
		}
	}
	n.transmit(from, to, payload, from == to)
}

// encodeFrame runs a payload through the wire codec (Codec mode).
// Non-message payloads pass through untouched; unencodable messages are
// counted and dropped. No RNG draws happen here — Codec mode with zero
// fault rates replays the exact schedule of a run without it.
func (n *Network) encodeFrame(payload any) (any, bool) {
	msg, ok := payload.(wire.Message)
	if !ok {
		return payload, true
	}
	b, err := wire.Encode(msg)
	if err != nil {
		n.stats.EncodeErrors++
		n.met.Inc(obs.CWireEncodeErrors)
		return nil, false
	}
	return frame{b: b, sum: crc32.ChecksumIEEE(b)}, true
}

// faultFrame applies Codec-mode transit faults to one receiver's view of
// a frame: a single flipped bit (on a private copy — the original is
// shared with other receivers) or a truncation (a shorter view of the
// shared bytes, no copy needed). Guarded by rate checks so the
// fault-free configuration draws nothing from the RNG.
func (n *Network) faultFrame(payload any) any {
	fr, ok := payload.(frame)
	if !ok || len(fr.b) == 0 {
		return payload
	}
	if n.cfg.CorruptRate > 0 && n.rng.Float64() < n.cfg.CorruptRate {
		b := make([]byte, len(fr.b))
		copy(b, fr.b)
		b[n.rng.Intn(len(b))] ^= 1 << uint(n.rng.Intn(8))
		n.stats.Corrupted++
		return frame{b: b, sum: fr.sum}
	}
	if n.cfg.TruncateRate > 0 && n.rng.Float64() < n.cfg.TruncateRate {
		n.stats.Truncated++
		return frame{b: fr.b[:n.rng.Intn(len(fr.b))], sum: fr.sum}
	}
	return payload
}

// transmit schedules the delivery of one packet copy (possibly two, on
// duplication) to one receiver.
func (n *Network) transmit(from, to model.ProcessID, payload any, loopback bool) {
	if !loopback {
		if n.component[from] != n.component[to] || n.down[to] {
			n.stats.Cut++
			n.met.Inc(obs.CNetCut)
			return
		}
	}
	n.transmitLink(from, to, payload, loopback)
}

// transmitLink applies link rules, filters, and loss to a send whose
// partition/down reachability has already been established by the caller.
//
//evs:noalloc
func (n *Network) transmitLink(from, to model.ProcessID, payload any, loopback bool) {
	var rule LinkRule
	if !loopback {
		// Drop decision is made at send time from the deterministic
		// stream; partition checks happen again at delivery time.
		rule = n.ruleFor(from, to)
		if rule.Block {
			n.stats.Blocked++
			return
		}
		if n.filter != nil && !n.filter(from, to, payload) {
			n.stats.Filtered++
			return
		}
		if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
			n.stats.Dropped++
			n.met.Inc(obs.CNetDropped)
			return
		}
		if rule.Drop > 0 && n.rng.Float64() < rule.Drop {
			n.stats.Dropped++
			n.met.Inc(obs.CNetDropped)
			return
		}
	}
	if !loopback && (n.cfg.CorruptRate > 0 || n.cfg.TruncateRate > 0) {
		payload = n.faultFrame(payload)
	}
	copies := 1
	if !loopback && n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		copies = 2
		n.stats.Duplicated++
		n.met.Inc(obs.CNetDuplicated)
	}
	for i := 0; i < copies; i++ {
		d := n.delay() + rule.Delay
		if rule.Jitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(rule.Jitter)))
		}
		// The in-flight packet is a typed event in the scheduler's entry
		// pool — no closure, no envelope allocation. The send-time rule
		// was consumed above (Drop/Delay/Jitter are send-time decisions);
		// only Block and partition state are re-read live at delivery.
		n.sched.AfterOp(d, sim.Op{
			Target: n, Kind: opDeliver,
			A: string(from), B: string(to), Msg: payload,
		})
	}
}

// opDeliver is the Network's only typed event kind: one packet copy
// arriving at one receiver.
const opDeliver = 1

// RunOp dispatches a scheduled packet delivery.
//
//evs:noalloc
func (n *Network) RunOp(op sim.Op, now time.Duration) {
	n.deliver(model.ProcessID(op.A), model.ProcessID(op.B), op.Msg, now)
}

// deliver hands a packet to the receiver if connectivity still holds.
//
//evs:noalloc
func (n *Network) deliver(from, to model.ProcessID, payload any, now time.Duration) {
	if from != to && (n.component[from] != n.component[to] || n.down[from]) {
		n.stats.Cut++
		n.met.Inc(obs.CNetCut)
		return
	}
	if from != to && n.blocked(from, to) {
		// A one-way cut installed while the packet was in flight
		// behaves like a partition: the packet is lost at delivery.
		n.stats.Blocked++
		return
	}
	if n.down[to] {
		n.stats.Cut++
		n.met.Inc(obs.CNetCut)
		return
	}
	h, ok := n.handlers[to]
	if !ok {
		return
	}
	if fr, isFrame := payload.(frame); isFrame {
		// The checksum gate models the network stack's own integrity
		// check: a bit flip that happens to leave the frame decodable
		// must still be discarded, or it would silently corrupt protocol
		// state in a way no real deployment over UDP ever sees.
		if crc32.ChecksumIEEE(fr.b) != fr.sum {
			n.stats.DecodeErrors++
			n.met.Inc(obs.CWireDecodeErrors)
			return
		}
		msg, err := n.dec.Decode(fr.b)
		if err != nil {
			// A frame the codec rejects is the medium's loss, not the
			// receiver's problem: counted, dropped, never panicked.
			n.stats.DecodeErrors++
			n.met.Inc(obs.CWireDecodeErrors)
			return
		}
		payload = msg
	}
	n.stats.Delivered++
	n.met.Inc(obs.CNetDelivered)
	h(from, payload, now)
}

// blocked reports whether any matching rule currently blocks the directed
// link. Unlike ruleFor it folds nothing: Drop/Delay/Jitter were already
// applied from the send-time rule, so delivery pays at most four map probes
// — and none at all on a rule-free network.
//
//evs:noalloc
func (n *Network) blocked(from, to model.ProcessID) bool {
	if len(n.rules) == 0 {
		return false
	}
	return n.rules[link{from, to}].Block ||
		n.rules[link{from, Wildcard}].Block ||
		n.rules[link{Wildcard, to}].Block ||
		n.rules[link{Wildcard, Wildcard}].Block
}

// delay draws a packet latency from the configured range.
func (n *Network) delay() time.Duration {
	if n.cfg.MaxDelay == n.cfg.MinDelay {
		return n.cfg.MinDelay
	}
	return n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay-n.cfg.MinDelay)))
}

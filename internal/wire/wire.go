// Package wire defines the messages exchanged by the protocol stack: data
// messages sequenced on the ring, the circulating token of the total
// ordering protocol, the join/commit/install messages of the membership
// algorithm, and the exchange/done messages of the EVS recovery algorithm
// (Step 3 and Step 5 of Section 3 of the paper).
//
// Messages are immutable after handoff: the medium hands one message
// value to every receiver of a broadcast without deep-copying, so a
// message must not share backing arrays with memory its builder or a
// receiver goes on mutating. The wireown analyzer mechanises that
// convention here and for the group layer's binary envelopes
// (internal/groups), which ride inside Data payloads under the same
// discipline.
package wire

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/vclock"
)

// Message is the sealed union of all wire message types.
type Message interface {
	isWire()
	// Kind returns a short human-readable tag for tracing.
	Kind() string
}

// Data is an application message broadcast on a ring. Seq is the position in
// the total order of the ring identified by Ring; it is assigned from the
// token when the originator broadcasts the message, which is the send event
// of the formal model.
type Data struct {
	ID      model.MessageID
	Ring    model.ConfigID // regular configuration in which sequenced
	Seq     uint64         // total-order position within Ring
	Service model.Service
	Payload []byte
	// VC is the originator's vector clock at the send, an independent
	// causality witness consumed by the specification checker. It is a
	// dense stamp over the ring's member universe so that producing one
	// per sequenced message is a flat array copy, not a map clone.
	VC vclock.Stamp
	// Retrans marks operational retransmissions and recovery
	// rebroadcasts (Step 5.a).
	Retrans bool
}

func (Data) isWire() {}

// Kind returns "data".
func (Data) Kind() string { return "data" }

// String renders the message for traces.
func (d Data) String() string {
	r := ""
	if d.Retrans {
		r = " retrans"
	}
	return fmt.Sprintf("data(%s seq=%d %s %s%s)", d.ID, d.Seq, d.Service, d.Ring, r)
}

// DataBatch packs every data message one token visit broadcasts — newly
// sequenced messages and retransmissions alike — into a single wire
// message, so the medium carries one packet per visit instead of one per
// message (the packet packing that gives Totem and Transis their
// LAN-saturating throughput). A batch has no protocol meaning of its own:
// receivers process each element exactly as if it had arrived alone, and
// the fault-injection surface treats a batch as a packet of the "data"
// class (dropping the class drops the batch).
type DataBatch struct {
	Ring model.ConfigID
	Msgs []Data
}

func (DataBatch) isWire() {}

// Kind returns "data_batch".
func (DataBatch) Kind() string { return "data_batch" }

// String renders the batch for traces.
func (b DataBatch) String() string {
	lo, hi := uint64(0), uint64(0)
	if len(b.Msgs) > 0 {
		lo, hi = b.Msgs[0].Seq, b.Msgs[len(b.Msgs)-1].Seq
	}
	return fmt.Sprintf("data_batch(%s n=%d seq=%d..%d)", b.Ring, len(b.Msgs), lo, hi)
}

// SeqRange is a closed range [Lo, Hi] of sequence numbers. Token
// retransmission requests travel as ranges: a receive log missing a
// contiguous run of n messages costs two words on the wire instead of n.
type SeqRange struct {
	Lo, Hi uint64
}

// Count returns the number of sequence numbers in the range.
func (r SeqRange) Count() uint64 { return r.Hi - r.Lo + 1 }

// Token is the circulating token of the single-ring total ordering protocol.
// Seq is the highest sequence number assigned to any message broadcast on
// the ring; Aru ("all received up to") is the lowest contiguous-receipt
// watermark around the ring, lowered by any process missing messages and
// raised only by the process that lowered it (AruID). A message is safe —
// known received by every ring member — once a process has observed
// token.Aru at or above its sequence number on two successive token visits.
type Token struct {
	Ring    model.ConfigID
	TokenID uint64 // increments on every forward; receivers drop stale tokens
	Seq     uint64
	Aru     uint64
	AruID   model.ProcessID
	// Rtr carries retransmission requests as sorted, disjoint, non-empty
	// ranges of missing sequence numbers (mirroring the requester's
	// internal gap list).
	Rtr []SeqRange
}

func (Token) isWire() {}

// Kind returns "token".
func (Token) Kind() string { return "token" }

// RtrCount returns the number of sequence numbers requested for
// retransmission.
func (t Token) RtrCount() uint64 {
	var n uint64
	for _, g := range t.Rtr {
		n += g.Count()
	}
	return n
}

// String renders the token for traces.
func (t Token) String() string {
	return fmt.Sprintf("token(%s id=%d seq=%d aru=%d rtr=%d)", t.Ring, t.TokenID, t.Seq, t.Aru, t.RtrCount())
}

// Join is broadcast by a process in the Gather state of the membership
// algorithm. Alive is the set of processes the sender currently proposes as
// the new membership (those it has heard from this gather round), Failed the
// set it has given up on. Consensus is reached when every proposed member
// proposes the same Alive\Failed set.
type Join struct {
	Sender     model.ProcessID
	Alive      []model.ProcessID
	Failed     []model.ProcessID
	MaxRingSeq uint64 // highest ring sequence number the sender has seen
	Attempt    uint64 // gather round, monotone per process
}

func (Join) isWire() {}

// Kind returns "join".
func (Join) Kind() string { return "join" }

// String renders the join for traces.
func (j Join) String() string {
	return fmt.Sprintf("join(%s alive=%v failed=%v max=%d att=%d)",
		j.Sender, j.Alive, j.Failed, j.MaxRingSeq, j.Attempt)
}

// Commit is broadcast by the representative (lowest proposed member) once
// join consensus is reached: it proposes installing the new ring.
type Commit struct {
	NewRing model.ConfigID
	Members []model.ProcessID
	Attempt uint64
}

func (Commit) isWire() {}

// Kind returns "commit".
func (Commit) Kind() string { return "commit" }

// String renders the commit for traces.
func (c Commit) String() string {
	return fmt.Sprintf("commit(%s %v att=%d)", c.NewRing, c.Members, c.Attempt)
}

// CommitAck is each member's acknowledgment of a Commit.
type CommitAck struct {
	Ring    model.ConfigID
	Sender  model.ProcessID
	Attempt uint64
}

func (CommitAck) isWire() {}

// Kind returns "commit_ack".
func (CommitAck) Kind() string { return "commit_ack" }

// String renders the ack for traces.
func (c CommitAck) String() string {
	return fmt.Sprintf("commit_ack(%s from %s att=%d)", c.Ring, c.Sender, c.Attempt)
}

// Install is broadcast by the representative when every member has
// acknowledged the Commit; receivers proceed to the recovery algorithm for
// the new ring.
type Install struct {
	NewRing model.ConfigID
	Members []model.ProcessID
	Attempt uint64
}

func (Install) isWire() {}

// Kind returns "install".
func (Install) Kind() string { return "install" }

// String renders the install for traces.
func (i Install) String() string {
	return fmt.Sprintf("install(%s %v att=%d)", i.NewRing, i.Members, i.Attempt)
}

// Exchange is Step 3 of the EVS recovery algorithm: each process of the
// proposed new configuration supplies the identifier of its last regular
// configuration, its receipt state for that configuration, the best safe
// bound it knows, and its obligation set.
type Exchange struct {
	Ring       model.ConfigID // proposed new ring
	Sender     model.ProcessID
	OldRing    model.ConfigID // sender's last regular configuration
	OldMembers []model.ProcessID
	// MyAru is the contiguous-receipt watermark in OldRing's total
	// order; Have lists sequence numbers received beyond MyAru.
	MyAru uint64
	Have  []uint64
	// SafeBound is the highest sequence number the sender knows to have
	// been received by every member of OldRing (from the token's aru,
	// by the two-visit rule). It is the acknowledgment information the
	// paper's Step 1 describes.
	SafeBound uint64
	// HighestSeen is the highest sequence number the sender knows to
	// have been assigned in OldRing.
	HighestSeen uint64
	// DeliveredUpTo is the sender's delivery watermark in OldRing.
	DeliveredUpTo uint64
	Obligations   []model.ProcessID
	// SeenSeqs is the sender's record of the highest sender sequence
	// number it has observed per originator — redundant counter
	// evidence exchanged so a peer whose sender counter suffered a
	// transient wrap can heal it during recovery (Specification 1.4:
	// message identifiers are never reused). Sorted by Proc; freshly
	// built by the sender, never aliasing its live state.
	SeenSeqs []SeenSeq
}

// SeenSeq is one (originator, highest observed sender sequence) pair.
type SeenSeq struct {
	Proc model.ProcessID
	Seq  uint64
}

func (Exchange) isWire() {}

// Kind returns "exchange".
func (Exchange) Kind() string { return "exchange" }

// String renders the exchange for traces.
func (e Exchange) String() string {
	return fmt.Sprintf("exchange(%s from %s old=%s aru=%d have=%d safe=%d high=%d)",
		e.Ring, e.Sender, e.OldRing, e.MyAru, len(e.Have), e.SafeBound, e.HighestSeen)
}

// RecoveryDone announces (Step 5.b) that the sender has received every
// message required within its proposed transitional configuration.
type RecoveryDone struct {
	Ring   model.ConfigID
	Sender model.ProcessID
	// OldRing scopes the announcement to the sender's transitional set.
	OldRing model.ConfigID
}

func (RecoveryDone) isWire() {}

// Kind returns "recovery_done".
func (RecoveryDone) Kind() string { return "recovery_done" }

// String renders the announcement for traces.
func (r RecoveryDone) String() string {
	return fmt.Sprintf("recovery_done(%s from %s old=%s)", r.Ring, r.Sender, r.OldRing)
}

package wire

import "testing"

// FuzzWireRoundTrip feeds arbitrary bytes to the decoder. Any input the
// decoder accepts must re-encode and decode to the same message (the
// codec is canonical up to varint minimality, which strict decode
// enforces by comparing decodes, not bytes), and no input — accepted or
// rejected — may panic or over-read.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		if b, err := Encode(m); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{byte(FrameToken), 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		d := NewDecoder()
		m1, err := d.Decode(b)
		if err != nil {
			return
		}
		enc, err := AppendMessage(nil, m1)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\ninput %x\nmsg %#v", err, b, m1)
		}
		m2, err := NewDecoder().Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v\ninput %x\nencoded %x", err, b, enc)
		}
		if !messagesEqual(m1, m2) {
			t.Fatalf("round trip disagreement:\ninput  %x\nfirst  %#v\nsecond %#v", b, m1, m2)
		}
	})
}

// Binary codec for the protocol messages.
//
// Until this codec existed, protocol traffic never left the process:
// the simulator and the live hub hand shared Go structs to every
// receiver. A real transport needs bytes, and the encode/decode pair
// sits on the same per-message hot path the batching and arena work
// flattened — so the codec follows the internal/groups envelope style:
// a kind byte, unsigned varints for every integer, length-prefixed
// identifiers, and the data payload aliasing the input buffer rather
// than being copied out of it.
//
// Layouts (all integers unsigned varints; proc = len-prefixed process
// identifier; cfg = configuration identifier as documented at
// appendConfigID; vc = vector-clock stamp as documented at appendStamp):
//
//	data         k=1  | body
//	data_batch   k=2  | cfg ring | n body*
//	token        k=3  | cfg ring | tokenID seq aru | proc aruID | n (lo hi-lo)*
//	join         k=4  | proc sender | n proc* alive | n proc* failed | maxRingSeq attempt
//	commit       k=5  | cfg newRing | n proc* members | attempt
//	commit_ack   k=6  | cfg ring | proc sender | attempt
//	install      k=7  | cfg newRing | n proc* members | attempt
//	exchange     k=8  | cfg ring | proc sender | cfg oldRing | n proc* oldMembers
//	             | myAru | n have* | safeBound highestSeen deliveredUpTo
//	             | n proc* obligations | n (proc seq)* seenSeqs
//	done         k=9  | cfg ring | proc sender | cfg oldRing
//
//	body = proc sender | senderSeq | cfg ring | seq | service | flags
//	       | vc | len payload
//
// Decoding is strict and total: truncated or corrupt input yields an
// error, never a panic (the nopanic analyzer polices this package), never
// an allocation proportional to a length field the input cannot back, and
// — because varints and stamp member lists are validated to canonical
// form — decode(encode(decode(b))) always agrees with decode(b)
// (FuzzWireRoundTrip pins this).
//
// A Decoder amortises the two allocations a naive stamp decode would
// pay per message: the member universe is interned keyed by its raw
// encoded byte region (a repeat stamp over the same ring resolves with
// one map probe and zero allocations), and the dense counter vectors are
// carved from a chunked arena exactly like the receive-log arenas in
// internal/stable. Decoded messages alias the input buffer (payloads)
// and the decoder's arena (counter vectors); both are immutable after
// handoff, per the package contract above.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/vclock"
)

// FrameKind tags the message type (byte 0 of every encoded message).
type FrameKind byte

const (
	// FrameData is a Data message.
	FrameData FrameKind = 1
	// FrameDataBatch is a DataBatch.
	FrameDataBatch FrameKind = 2
	// FrameToken is a Token.
	FrameToken FrameKind = 3
	// FrameJoin is a Join.
	FrameJoin FrameKind = 4
	// FrameCommit is a Commit.
	FrameCommit FrameKind = 5
	// FrameCommitAck is a CommitAck.
	FrameCommitAck FrameKind = 6
	// FrameInstall is an Install.
	FrameInstall FrameKind = 7
	// FrameExchange is an Exchange.
	FrameExchange FrameKind = 8
	// FrameRecoveryDone is a RecoveryDone.
	FrameRecoveryDone FrameKind = 9

	frameMax = FrameRecoveryDone
)

// Codec limits. Honest encoders never approach them; they bound what a
// decoder will allocate for input it has not yet validated.
const (
	// MaxProcIDLen bounds a process identifier on the wire.
	MaxProcIDLen = 256
	// MaxMembers bounds every member list (stamp universes, join sets,
	// ring memberships, obligation sets).
	MaxMembers = 4096
)

// Codec errors.
var (
	// ErrTruncated reports input that ends inside a field.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrCorrupt reports input that decodes to an impossible value
	// (unknown kind, oversized identifier, count the input cannot back,
	// non-canonical stamp, trailing bytes).
	ErrCorrupt = errors.New("wire: corrupt message")
	// ErrUnencodable reports an encode of a message that violates the
	// wire limits (oversized process identifier or member list, unknown
	// configuration kind). Propagated, never panicked: a bad message
	// must surface as a dropped (counted) packet, not a crash.
	ErrUnencodable = errors.New("wire: unencodable message")
)

// appendUvarint appends v as an unsigned varint.
//
//evs:noalloc
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// takeUvarint decodes a varint from b, returning the value, the rest of
// the buffer, and false on truncation or a varint longer than 10 bytes.
//
//evs:noalloc
func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// appendProc appends a length-prefixed process identifier.
//
//evs:noalloc
func appendProc(b []byte, p model.ProcessID) ([]byte, error) {
	if len(p) > MaxProcIDLen {
		return nil, ErrUnencodable
	}
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...), nil
}

// takeProcBytes splits off a length-prefixed identifier without
// converting it to a string (the interning fast path).
//
//evs:noalloc
func takeProcBytes(b []byte) ([]byte, []byte, error) {
	n, rest, ok := takeUvarint(b)
	if !ok {
		return nil, nil, ErrTruncated
	}
	if n > MaxProcIDLen {
		return nil, nil, ErrCorrupt
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrTruncated
	}
	return rest[:n], rest[n:], nil
}

// appendConfigID appends a configuration identifier:
//
//	kind byte (0 zero, 1 regular, 2 transitional)
//	| if regular/transitional: seq, proc rep
//	| if transitional: prevSeq, proc prevRep
//
//evs:noalloc
func appendConfigID(b []byte, c model.ConfigID) ([]byte, error) {
	switch c.Kind {
	case 0:
		return append(b, 0), nil
	case model.Regular, model.Transitional:
	default:
		return nil, ErrUnencodable
	}
	b = append(b, byte(c.Kind))
	b = appendUvarint(b, c.Seq)
	var err error
	if b, err = appendProc(b, c.Rep); err != nil {
		return nil, err
	}
	if c.Kind == model.Transitional {
		b = appendUvarint(b, c.PrevSeq)
		if b, err = appendProc(b, c.PrevRep); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendMembers appends a count-prefixed process list.
//
//evs:noalloc
func appendMembers(b []byte, ids []model.ProcessID) ([]byte, error) {
	if len(ids) > MaxMembers {
		return nil, ErrUnencodable
	}
	b = appendUvarint(b, uint64(len(ids)))
	var err error
	for _, id := range ids {
		if b, err = appendProc(b, id); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendStamp appends a vector-clock stamp:
//
//	n | n × proc (the universe, strictly ascending) | n × counter
//
// The zero stamp (and a stamp over an empty universe) encodes as n=0.
// Counters are int32 cast through uint32, a bijection.
//
//evs:noalloc
func appendStamp(b []byte, s vclock.Stamp) ([]byte, error) {
	if s.U == nil || s.U.Len() == 0 {
		return appendUvarint(b, 0), nil
	}
	n := s.U.Len()
	if n > MaxMembers {
		return nil, ErrUnencodable
	}
	b = appendUvarint(b, uint64(n))
	var err error
	for i := 0; i < n; i++ {
		if b, err = appendProc(b, s.U.ID(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		var c int32
		if i < len(s.D) {
			c = s.D[i]
		}
		b = appendUvarint(b, uint64(uint32(c)))
	}
	return b, nil
}

// appendDataBody appends a Data message without its kind byte (the form
// batch elements share with standalone data messages).
//
//evs:noalloc
func appendDataBody(b []byte, d *Data) ([]byte, error) {
	var err error
	if b, err = appendProc(b, d.ID.Sender); err != nil {
		return nil, err
	}
	b = appendUvarint(b, d.ID.SenderSeq)
	if b, err = appendConfigID(b, d.Ring); err != nil {
		return nil, err
	}
	b = appendUvarint(b, d.Seq)
	b = appendUvarint(b, uint64(d.Service))
	var flags byte
	if d.Retrans {
		flags = 1
	}
	b = append(b, flags)
	if b, err = appendStamp(b, d.VC); err != nil {
		return nil, err
	}
	b = appendUvarint(b, uint64(len(d.Payload)))
	return append(b, d.Payload...), nil
}

// AppendData encodes a Data message into dst: the send-side hot path,
// callable without boxing the message into the Message interface.
//
//evs:noalloc
func AppendData(dst []byte, d *Data) ([]byte, error) {
	dst = append(dst, byte(FrameData))
	return appendDataBody(dst, d)
}

// AppendMessage encodes any wire message into dst. Encode failures
// (identifiers or member lists beyond the wire limits) are propagated,
// never panicked.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	var err error
	switch v := m.(type) {
	case Data:
		return AppendData(dst, &v)
	case DataBatch:
		dst = append(dst, byte(FrameDataBatch))
		if dst, err = appendConfigID(dst, v.Ring); err != nil {
			return nil, err
		}
		if len(v.Msgs) > MaxMembers {
			return nil, ErrUnencodable
		}
		dst = appendUvarint(dst, uint64(len(v.Msgs)))
		for i := range v.Msgs {
			if dst, err = appendDataBody(dst, &v.Msgs[i]); err != nil {
				return nil, err
			}
		}
	case Token:
		dst = append(dst, byte(FrameToken))
		if dst, err = appendConfigID(dst, v.Ring); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.TokenID)
		dst = appendUvarint(dst, v.Seq)
		dst = appendUvarint(dst, v.Aru)
		if dst, err = appendProc(dst, v.AruID); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, uint64(len(v.Rtr)))
		for _, r := range v.Rtr {
			if r.Hi < r.Lo {
				return nil, ErrUnencodable
			}
			dst = appendUvarint(dst, r.Lo)
			dst = appendUvarint(dst, r.Hi-r.Lo)
		}
	case Join:
		dst = append(dst, byte(FrameJoin))
		if dst, err = appendProc(dst, v.Sender); err != nil {
			return nil, err
		}
		if dst, err = appendMembers(dst, v.Alive); err != nil {
			return nil, err
		}
		if dst, err = appendMembers(dst, v.Failed); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.MaxRingSeq)
		dst = appendUvarint(dst, v.Attempt)
	case Commit:
		dst = append(dst, byte(FrameCommit))
		if dst, err = appendConfigID(dst, v.NewRing); err != nil {
			return nil, err
		}
		if dst, err = appendMembers(dst, v.Members); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.Attempt)
	case CommitAck:
		dst = append(dst, byte(FrameCommitAck))
		if dst, err = appendConfigID(dst, v.Ring); err != nil {
			return nil, err
		}
		if dst, err = appendProc(dst, v.Sender); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.Attempt)
	case Install:
		dst = append(dst, byte(FrameInstall))
		if dst, err = appendConfigID(dst, v.NewRing); err != nil {
			return nil, err
		}
		if dst, err = appendMembers(dst, v.Members); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.Attempt)
	case Exchange:
		dst = append(dst, byte(FrameExchange))
		if dst, err = appendConfigID(dst, v.Ring); err != nil {
			return nil, err
		}
		if dst, err = appendProc(dst, v.Sender); err != nil {
			return nil, err
		}
		if dst, err = appendConfigID(dst, v.OldRing); err != nil {
			return nil, err
		}
		if dst, err = appendMembers(dst, v.OldMembers); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, v.MyAru)
		dst = appendUvarint(dst, uint64(len(v.Have)))
		for _, h := range v.Have {
			dst = appendUvarint(dst, h)
		}
		dst = appendUvarint(dst, v.SafeBound)
		dst = appendUvarint(dst, v.HighestSeen)
		dst = appendUvarint(dst, v.DeliveredUpTo)
		if dst, err = appendMembers(dst, v.Obligations); err != nil {
			return nil, err
		}
		dst = appendUvarint(dst, uint64(len(v.SeenSeqs)))
		for _, ss := range v.SeenSeqs {
			if dst, err = appendProc(dst, ss.Proc); err != nil {
				return nil, err
			}
			dst = appendUvarint(dst, ss.Seq)
		}
	case RecoveryDone:
		dst = append(dst, byte(FrameRecoveryDone))
		if dst, err = appendConfigID(dst, v.Ring); err != nil {
			return nil, err
		}
		if dst, err = appendProc(dst, v.Sender); err != nil {
			return nil, err
		}
		if dst, err = appendConfigID(dst, v.OldRing); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown message type %T", ErrUnencodable, m)
	}
	return dst, nil
}

// Encode serialises a message into a fresh buffer.
func Encode(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, 128), m)
}

// Decoder decodes wire messages, amortising allocations across calls: it
// interns process identifiers and stamp universes (keyed by their raw
// encoded bytes, so a repeat lookup allocates nothing) and carves dense
// counter vectors from a chunked arena. Carved and interned memory is
// never reused or mutated, so decoded messages can be retained freely.
// A Decoder is not safe for concurrent use; each transport reader owns
// one.
type Decoder struct {
	unis  map[string]*vclock.Universe
	procs map[string]model.ProcessID
	dense []int32
}

// internCap bounds the interning tables: input naming more distinct
// universes or processes than any honest run still decodes correctly, it
// just stops being amortised.
const internCap = 1 << 14

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{
		unis:  make(map[string]*vclock.Universe),
		procs: make(map[string]model.ProcessID),
	}
}

// takeProc decodes a length-prefixed process identifier, interned so the
// steady state allocates nothing.
//
//evs:noalloc
func (d *Decoder) takeProc(b []byte) (model.ProcessID, []byte, error) {
	nb, rest, err := takeProcBytes(b)
	if err != nil {
		return "", nil, err
	}
	if p, ok := d.procs[string(nb)]; ok {
		return p, rest, nil
	}
	p := model.ProcessID(nb)
	if len(d.procs) < internCap {
		d.procs[string(nb)] = p
	}
	return p, rest, nil
}

// takeConfigID decodes a configuration identifier.
//
//evs:noalloc
func (d *Decoder) takeConfigID(b []byte) (model.ConfigID, []byte, error) {
	if len(b) == 0 {
		return model.ConfigID{}, nil, ErrTruncated
	}
	kind, rest := b[0], b[1:]
	if kind == 0 {
		return model.ConfigID{}, rest, nil
	}
	if kind != byte(model.Regular) && kind != byte(model.Transitional) {
		return model.ConfigID{}, nil, ErrCorrupt
	}
	var c model.ConfigID
	c.Kind = model.ConfigKind(kind)
	var ok bool
	if c.Seq, rest, ok = takeUvarint(rest); !ok {
		return model.ConfigID{}, nil, ErrTruncated
	}
	var err error
	if c.Rep, rest, err = d.takeProc(rest); err != nil {
		return model.ConfigID{}, nil, err
	}
	if c.Kind == model.Transitional {
		if c.PrevSeq, rest, ok = takeUvarint(rest); !ok {
			return model.ConfigID{}, nil, ErrTruncated
		}
		if c.PrevRep, rest, err = d.takeProc(rest); err != nil {
			return model.ConfigID{}, nil, err
		}
	}
	return c, rest, nil
}

// takeMembers decodes a count-prefixed process list (nil when empty).
func (d *Decoder) takeMembers(b []byte) ([]model.ProcessID, []byte, error) {
	n, rest, ok := takeUvarint(b)
	if !ok {
		return nil, nil, ErrTruncated
	}
	// Each member needs at least its length byte.
	if n > MaxMembers || n > uint64(len(rest)) {
		return nil, nil, ErrCorrupt
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]model.ProcessID, 0, n)
	var err error
	for i := uint64(0); i < n; i++ {
		var p model.ProcessID
		if p, rest, err = d.takeProc(rest); err != nil {
			return nil, nil, err
		}
		out = append(out, p)
	}
	return out, rest, nil
}

// carve cuts an n-counter vector out of the decoder's arena. Carved
// regions are never reused, so the vector is immutable-by-construction
// once filled.
//
//evs:arena
//evs:noalloc
func (d *Decoder) carve(n int) vclock.Dense {
	if n > len(d.dense) {
		size := 4096
		if n > size {
			size = n
		}
		d.dense = make([]int32, size)
	}
	out := d.dense[:n:n]
	//lint:allow wireown Decoder is arena state, not a wire message: carve advances the arena cursor over memory the decoder itself owns
	d.dense = d.dense[n:]
	return vclock.Dense(out)
}

// takeStamp decodes a vector-clock stamp. The member list must be in
// canonical form — strictly ascending, so it round-trips through
// vclock.NewUniverse unchanged — which is also what lets the universe be
// interned by its raw encoded bytes: region equality implies universe
// equality.
//
//evs:arena
func (d *Decoder) takeStamp(b []byte) (vclock.Stamp, []byte, error) {
	n, rest, ok := takeUvarint(b)
	if !ok {
		return vclock.Stamp{}, nil, ErrTruncated
	}
	if n == 0 {
		return vclock.Stamp{}, rest, nil
	}
	// Each member needs its length byte and each counter one byte.
	if n > MaxMembers || 2*n > uint64(len(rest)) {
		return vclock.Stamp{}, nil, ErrCorrupt
	}
	region := rest
	var prev []byte
	for i := uint64(0); i < n; i++ {
		var nb []byte
		var err error
		if nb, rest, err = takeProcBytes(rest); err != nil {
			return vclock.Stamp{}, nil, err
		}
		if i > 0 && bytes.Compare(prev, nb) >= 0 {
			return vclock.Stamp{}, nil, ErrCorrupt
		}
		prev = nb
	}
	region = region[:len(region)-len(rest)]
	u, ok := d.unis[string(region)]
	if !ok {
		ids := make([]model.ProcessID, 0, n)
		mb := region
		for i := uint64(0); i < n; i++ {
			var nb []byte
			var err error
			if nb, mb, err = takeProcBytes(mb); err != nil {
				return vclock.Stamp{}, nil, err
			}
			ids = append(ids, model.ProcessID(nb))
		}
		u = vclock.NewUniverse(ids)
		if len(d.unis) < internCap {
			d.unis[string(region)] = u
		}
	}
	dv := d.carve(int(n))
	for i := uint64(0); i < n; i++ {
		var c uint64
		if c, rest, ok = takeUvarint(rest); !ok {
			return vclock.Stamp{}, nil, ErrTruncated
		}
		if c > 0xffffffff {
			return vclock.Stamp{}, nil, ErrCorrupt
		}
		dv[i] = int32(uint32(c))
	}
	return vclock.Stamp{U: u, D: dv}, rest, nil
}

// takeDataBody decodes a Data message body into out, returning the rest
// of the buffer. The payload aliases b.
//
//evs:arena
//evs:noalloc
func (d *Decoder) takeDataBody(b []byte, out *Data) ([]byte, error) {
	var err error
	if out.ID.Sender, b, err = d.takeProc(b); err != nil {
		return nil, err
	}
	var ok bool
	if out.ID.SenderSeq, b, ok = takeUvarint(b); !ok {
		return nil, ErrTruncated
	}
	if out.Ring, b, err = d.takeConfigID(b); err != nil {
		return nil, err
	}
	if out.Seq, b, ok = takeUvarint(b); !ok {
		return nil, ErrTruncated
	}
	var svc uint64
	if svc, b, ok = takeUvarint(b); !ok {
		return nil, ErrTruncated
	}
	out.Service = model.Service(int64(svc))
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	switch b[0] {
	case 0:
		out.Retrans = false
	case 1:
		out.Retrans = true
	default:
		return nil, ErrCorrupt
	}
	b = b[1:]
	if out.VC, b, err = d.takeStamp(b); err != nil {
		return nil, err
	}
	var plen uint64
	if plen, b, ok = takeUvarint(b); !ok {
		return nil, ErrTruncated
	}
	if plen > uint64(len(b)) {
		return nil, ErrTruncated
	}
	if plen == 0 {
		out.Payload = nil
	} else {
		//lint:allow wireown decode output views the input buffer's payload bytes; transports hand each receiver its own buffer and never mutate it after decode
		out.Payload = b[:plen:plen]
	}
	return b[plen:], nil
}

// DecodeData decodes a standalone Data message into out without boxing:
// the receive-side hot path. The payload and counter vector alias the
// input buffer and the decoder's arena respectively.
//
//evs:arena
//evs:noalloc
func (d *Decoder) DecodeData(b []byte, out *Data) error {
	if len(b) == 0 {
		return ErrTruncated
	}
	if FrameKind(b[0]) != FrameData {
		return ErrCorrupt
	}
	rest, err := d.takeDataBody(b[1:], out)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrCorrupt
	}
	return nil
}

// Decode parses any wire message. Input must be consumed exactly;
// payloads of data messages alias b, counter vectors alias the
// decoder's arena — both valid until the decoder's next message.
//
//evs:arena
func (d *Decoder) Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	kind := FrameKind(b[0])
	rest := b[1:]
	var err error
	var ok bool
	var m Message
	switch kind {
	case FrameData:
		var v Data
		if err = d.DecodeData(b, &v); err != nil {
			return nil, err
		}
		return v, nil
	case FrameDataBatch:
		var v DataBatch
		if v.Ring, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		var n uint64
		if n, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		// A body is at least 8 bytes (empty identifiers, zero fields).
		if n > MaxMembers || n > uint64(len(rest))/8+1 {
			return nil, ErrCorrupt
		}
		if n > 0 {
			v.Msgs = make([]Data, n)
			for i := uint64(0); i < n; i++ {
				if rest, err = d.takeDataBody(rest, &v.Msgs[i]); err != nil {
					return nil, err
				}
			}
		}
		m = v
	case FrameToken:
		var v Token
		if v.Ring, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		if v.TokenID, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.Seq, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.Aru, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.AruID, rest, err = d.takeProc(rest); err != nil {
			return nil, err
		}
		var n uint64
		if n, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		// Each range needs at least two bytes.
		if 2*n > uint64(len(rest)) {
			return nil, ErrCorrupt
		}
		if n > 0 {
			v.Rtr = make([]SeqRange, 0, n)
			var prevHi uint64
			for i := uint64(0); i < n; i++ {
				var lo, delta uint64
				if lo, rest, ok = takeUvarint(rest); !ok {
					return nil, ErrTruncated
				}
				if delta, rest, ok = takeUvarint(rest); !ok {
					return nil, ErrTruncated
				}
				hi := lo + delta
				if hi < lo {
					return nil, ErrCorrupt // overflow
				}
				// Ranges are sorted and disjoint (the requester's gap list).
				if i > 0 && lo <= prevHi {
					return nil, ErrCorrupt
				}
				prevHi = hi
				v.Rtr = append(v.Rtr, SeqRange{Lo: lo, Hi: hi})
			}
		}
		m = v
	case FrameJoin:
		var v Join
		if v.Sender, rest, err = d.takeProc(rest); err != nil {
			return nil, err
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.Alive, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.Failed, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		if v.MaxRingSeq, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.Attempt, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		m = v
	case FrameCommit:
		var v Commit
		if v.NewRing, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.Members, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		if v.Attempt, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		m = v
	case FrameCommitAck:
		var v CommitAck
		if v.Ring, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		if v.Sender, rest, err = d.takeProc(rest); err != nil {
			return nil, err
		}
		if v.Attempt, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		m = v
	case FrameInstall:
		var v Install
		if v.NewRing, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.Members, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		if v.Attempt, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		m = v
	case FrameExchange:
		var v Exchange
		if v.Ring, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		if v.Sender, rest, err = d.takeProc(rest); err != nil {
			return nil, err
		}
		if v.OldRing, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.OldMembers, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		if v.MyAru, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		var n uint64
		if n, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if n > uint64(len(rest)) {
			return nil, ErrCorrupt
		}
		if n > 0 {
			v.Have = make([]uint64, 0, n)
			for i := uint64(0); i < n; i++ {
				var h uint64
				if h, rest, ok = takeUvarint(rest); !ok {
					return nil, ErrTruncated
				}
				v.Have = append(v.Have, h)
			}
		}
		if v.SafeBound, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.HighestSeen, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		if v.DeliveredUpTo, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		//lint:allow wireown decoded membership views the decoder's intern tables until the next Decode; callers copy before retaining
		if v.Obligations, rest, err = d.takeMembers(rest); err != nil {
			return nil, err
		}
		if n, rest, ok = takeUvarint(rest); !ok {
			return nil, ErrTruncated
		}
		// Each pair needs at least two bytes.
		if n > MaxMembers || 2*n > uint64(len(rest)) {
			return nil, ErrCorrupt
		}
		if n > 0 {
			v.SeenSeqs = make([]SeenSeq, 0, n)
			for i := uint64(0); i < n; i++ {
				var ss SeenSeq
				if ss.Proc, rest, err = d.takeProc(rest); err != nil {
					return nil, err
				}
				if ss.Seq, rest, ok = takeUvarint(rest); !ok {
					return nil, ErrTruncated
				}
				v.SeenSeqs = append(v.SeenSeqs, ss)
			}
		}
		m = v
	case FrameRecoveryDone:
		var v RecoveryDone
		if v.Ring, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		if v.Sender, rest, err = d.takeProc(rest); err != nil {
			return nil, err
		}
		if v.OldRing, rest, err = d.takeConfigID(rest); err != nil {
			return nil, err
		}
		m = v
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, b[0])
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return m, nil
}

// Decode parses a message with a throwaway decoder (tests, one-shot
// tools; transports hold a Decoder to amortise).
func Decode(b []byte) (Message, error) {
	//lint:allow arenaesc the throwaway decoder is never reused, so its arena has no reset point for the result to outlive
	return NewDecoder().Decode(b)
}

// PeekKind returns the frame kind of an encoded message, or 0 for empty
// or unknown input: the class tag fault filters and metrics key on
// without decoding.
//
//evs:noalloc
func PeekKind(b []byte) FrameKind {
	if len(b) == 0 {
		return 0
	}
	k := FrameKind(b[0])
	if k == 0 || k > frameMax {
		return 0
	}
	return k
}

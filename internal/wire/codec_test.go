package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/vclock"
)

// mkStamp builds a stamp over the given members with the given counters.
func mkStamp(ids []model.ProcessID, counters []int32) vclock.Stamp {
	u := vclock.NewUniverse(ids)
	d := u.NewDense()
	copy(d, counters)
	return vclock.Stamp{U: u, D: d}
}

var (
	testRing  = model.RegularID(7, "p01")
	testTrans = model.TransitionalID(model.RegularID(9, "p01"), model.RegularID(7, "p03"))
)

// sampleMessages covers every kind, with both populated and edge-shaped
// values; it doubles as the fuzz seed corpus.
func sampleMessages() []Message {
	procs := []model.ProcessID{"p01", "p02", "p03"}
	return []Message{
		Data{
			ID:      model.MessageID{Sender: "p02", SenderSeq: 41},
			Ring:    testRing,
			Seq:     129,
			Service: model.Agreed,
			Payload: []byte("hello world"),
			VC:      mkStamp(procs, []int32{3, 41, 7}),
		},
		Data{
			ID:      model.MessageID{Sender: "p01", SenderSeq: 1},
			Ring:    testTrans,
			Seq:     1,
			Service: model.Safe,
			Retrans: true,
		},
		Data{}, // zero message round-trips too
		DataBatch{
			Ring: testRing,
			Msgs: []Data{
				{
					ID:      model.MessageID{Sender: "p01", SenderSeq: 9},
					Ring:    testRing,
					Seq:     10,
					Service: model.Agreed,
					Payload: []byte("a"),
					VC:      mkStamp(procs, []int32{9, 0, 0}),
				},
				{
					ID:      model.MessageID{Sender: "p03", SenderSeq: 2},
					Ring:    testRing,
					Seq:     11,
					Service: model.Safe,
					Retrans: true,
					VC:      mkStamp(procs, []int32{9, 0, 2}),
				},
			},
		},
		DataBatch{Ring: testRing},
		Token{
			Ring:    testRing,
			TokenID: 88,
			Seq:     1029,
			Aru:     1017,
			AruID:   "p02",
			Rtr:     []SeqRange{{Lo: 1018, Hi: 1020}, {Lo: 1025, Hi: 1025}},
		},
		Token{Ring: testRing, TokenID: 1},
		Join{
			Sender:     "p02",
			Alive:      []model.ProcessID{"p01", "p02"},
			Failed:     []model.ProcessID{"p03"},
			MaxRingSeq: 12,
			Attempt:    3,
		},
		Join{Sender: "p01"},
		Commit{NewRing: model.RegularID(13, "p01"), Members: procs, Attempt: 4},
		CommitAck{Ring: model.RegularID(13, "p01"), Sender: "p03", Attempt: 4},
		Install{NewRing: model.RegularID(13, "p01"), Members: procs, Attempt: 4},
		Exchange{
			Ring:          model.RegularID(13, "p01"),
			Sender:        "p02",
			OldRing:       testRing,
			OldMembers:    procs,
			MyAru:         1017,
			Have:          []uint64{1019, 1022},
			SafeBound:     1011,
			HighestSeen:   1029,
			DeliveredUpTo: 1015,
			Obligations:   []model.ProcessID{"p01", "p03"},
			SeenSeqs:      []SeenSeq{{Proc: "p01", Seq: 40}, {Proc: "p02", Seq: 41}},
		},
		Exchange{Ring: model.RegularID(2, "p09"), Sender: "p09", OldRing: model.ConfigID{}},
		RecoveryDone{Ring: model.RegularID(13, "p01"), Sender: "p01", OldRing: testRing},
	}
}

// stampEqual compares stamps semantically: same member universe, same
// counters (Universe pointers differ across decoders).
func stampEqual(a, b vclock.Stamp) bool {
	if a.IsZero() != b.IsZero() {
		return false
	}
	if a.IsZero() {
		return true
	}
	if a.U.Len() != b.U.Len() || len(a.D) != len(b.D) {
		return false
	}
	for i := 0; i < a.U.Len(); i++ {
		if a.U.ID(i) != b.U.ID(i) || a.D[i] != b.D[i] {
			return false
		}
	}
	return true
}

// dataEqual compares Data messages semantically (stamp by value,
// payload by bytes).
func dataEqual(a, b Data) bool {
	return a.ID == b.ID && a.Ring == b.Ring && a.Seq == b.Seq &&
		a.Service == b.Service && a.Retrans == b.Retrans &&
		bytes.Equal(a.Payload, b.Payload) && stampEqual(a.VC, b.VC)
}

// messagesEqual compares any two wire messages semantically.
func messagesEqual(a, b Message) bool {
	switch av := a.(type) {
	case Data:
		bv, ok := b.(Data)
		return ok && dataEqual(av, bv)
	case DataBatch:
		bv, ok := b.(DataBatch)
		if !ok || av.Ring != bv.Ring || len(av.Msgs) != len(bv.Msgs) {
			return false
		}
		for i := range av.Msgs {
			if !dataEqual(av.Msgs[i], bv.Msgs[i]) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%v): %v", m, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", m, err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
		}
	}
}

func TestDecoderInternsAcrossMessages(t *testing.T) {
	d := NewDecoder()
	msg := sampleMessages()[0].(Data)
	b, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	var m1, m2 Data
	if err := d.DecodeData(b, &m1); err != nil {
		t.Fatal(err)
	}
	if err := d.DecodeData(b, &m2); err != nil {
		t.Fatal(err)
	}
	if m1.VC.U != m2.VC.U {
		t.Fatalf("universe not interned: %p vs %p", m1.VC.U, m2.VC.U)
	}
	if !dataEqual(m1, msg) || !dataEqual(m2, msg) {
		t.Fatalf("interned decode mismatch")
	}
}

func TestDecodeErrorsNotPanics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},            // zero kind
		{42},           // unknown kind
		{byte(FrameData)},
		{byte(FrameToken), 1}, // truncated config
		{byte(FrameJoin), 0, 0xff, 0xff, 0xff, 0xff, 0xff}, // huge count
	}
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		// Every truncation of every valid message must error cleanly
		// or decode to something (prefix happens to be valid) — never
		// panic.
		for i := 0; i < len(b); i++ {
			cases = append(cases, b[:i])
		}
		// And a few single-byte corruptions.
		for i := 0; i < len(b); i += 3 {
			c := append([]byte(nil), b...)
			c[i] ^= 0x41
			cases = append(cases, c)
		}
	}
	d := NewDecoder()
	for _, c := range cases {
		if _, err := d.Decode(c); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode %x: unexpected error class %v", c, err)
			}
		}
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	long := model.ProcessID(strings.Repeat("x", MaxProcIDLen+1))
	cases := []Message{
		Data{ID: model.MessageID{Sender: long}},
		Token{AruID: long},
		Join{Sender: "p", Alive: make([]model.ProcessID, MaxMembers+1)},
		CommitAck{Ring: model.ConfigID{Kind: 9}},
	}
	for _, m := range cases {
		if _, err := AppendMessage(nil, m); !errors.Is(err, ErrUnencodable) {
			t.Fatalf("AppendMessage(%T) err = %v, want ErrUnencodable", m, err)
		}
	}
}

func TestDecodeRejectsNonCanonicalStamp(t *testing.T) {
	// Hand-build a data message whose stamp members are out of order:
	// decode must reject it rather than silently re-sorting (which would
	// detach counters from their processes).
	b := []byte{byte(FrameData)}
	b = appendUvarint(b, 1)
	b = append(b, 'p')
	b = appendUvarint(b, 1)    // senderSeq
	b = append(b, 0)           // zero ring
	b = appendUvarint(b, 1)    // seq
	b = appendUvarint(b, 1)    // service
	b = append(b, 0)           // flags
	b = appendUvarint(b, 2)    // stamp: 2 members
	b = appendUvarint(b, 1)
	b = append(b, 'q')
	b = appendUvarint(b, 1)
	b = append(b, 'p')         // q before p: not ascending
	b = appendUvarint(b, 3)
	b = appendUvarint(b, 4)
	b = appendUvarint(b, 0) // payload
	if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsorted stamp: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := Encode(Token{Ring: testRing, TokenID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(b, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestPayloadAliasesInput(t *testing.T) {
	msg := Data{ID: model.MessageID{Sender: "p", SenderSeq: 1}, Payload: []byte("abcd")}
	b, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	var out Data
	if err := NewDecoder().DecodeData(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 4 || &out.Payload[0] != &b[len(b)-4] {
		t.Fatalf("payload was copied, want alias of the input tail")
	}
}

func TestPeekKind(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if k := PeekKind(b); k != FrameKind(b[0]) {
			t.Fatalf("PeekKind = %d, want %d", k, b[0])
		}
	}
	if PeekKind(nil) != 0 || PeekKind([]byte{99}) != 0 {
		t.Fatalf("PeekKind on junk should be 0")
	}
}

// TestWireDataCodecZeroAlloc is the noalloc gate for the Data hot path:
// steady-state encode and decode of a Data message must not allocate
// (the decoder's universe interning and dense arena amortise to zero;
// AllocsPerRun averages out the rare arena chunk refill).
func TestWireDataCodecZeroAlloc(t *testing.T) {
	msg := sampleMessages()[0].(Data)
	buf := make([]byte, 0, 256)
	var err error
	if allocs := testing.AllocsPerRun(2000, func() {
		buf, err = AppendData(buf[:0], &msg)
	}); err != nil || allocs > 0 {
		t.Fatalf("encode: %v allocs/op (err %v), want 0", allocs, err)
	}
	b, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	var out Data
	if allocs := testing.AllocsPerRun(2000, func() {
		err = d.DecodeData(b, &out)
	}); err != nil || allocs > 0.05 {
		t.Fatalf("decode: %v allocs/op (err %v), want ~0", allocs, err)
	}
}

package wire

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestKinds(t *testing.T) {
	msgs := []Message{
		Data{}, Token{}, Join{}, Commit{}, CommitAck{}, Install{},
		Exchange{}, RecoveryDone{},
	}
	want := []string{
		"data", "token", "join", "commit", "commit_ack", "install",
		"exchange", "recovery_done",
	}
	for i, m := range msgs {
		if m.Kind() != want[i] {
			t.Errorf("Kind() = %q, want %q", m.Kind(), want[i])
		}
	}
}

func TestStrings(t *testing.T) {
	ring := model.RegularID(3, "p")
	tests := []struct {
		msg  Message
		want string
	}{
		{Data{ID: model.MessageID{Sender: "p", SenderSeq: 1}, Ring: ring, Seq: 7, Service: model.Safe}, "data(p:1 seq=7 safe reg(3@p))"},
		{Data{ID: model.MessageID{Sender: "p", SenderSeq: 1}, Ring: ring, Seq: 7, Service: model.Agreed, Retrans: true}, "retrans"},
		{Token{Ring: ring, TokenID: 4, Seq: 9, Aru: 8, Rtr: []SeqRange{{Lo: 5, Hi: 5}}}, "token(reg(3@p) id=4 seq=9 aru=8 rtr=1)"},
		{Join{Sender: "p", Attempt: 2}, "att=2"},
		{Commit{NewRing: ring, Attempt: 1}, "commit("},
		{CommitAck{Ring: ring, Sender: "q"}, "from q"},
		{Install{NewRing: ring}, "install("},
		{Exchange{Ring: ring, Sender: "p", OldRing: model.RegularID(1, "p")}, "old=reg(1@p)"},
		{RecoveryDone{Ring: ring, Sender: "p", OldRing: model.RegularID(1, "p")}, "recovery_done("},
	}
	for _, tt := range tests {
		s, ok := tt.msg.(interface{ String() string })
		if !ok {
			t.Fatalf("%T lacks String()", tt.msg)
		}
		if !strings.Contains(s.String(), tt.want) {
			t.Errorf("%T.String() = %q, missing %q", tt.msg, s.String(), tt.want)
		}
	}
}

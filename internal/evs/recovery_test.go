package evs

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/totem"
	"repro/internal/wire"
)

// world pumps recovery messages synchronously between a set of recovering
// processes (all proposing the same new ring).
type world struct {
	t     *testing.T
	procs map[model.ProcessID]*Recovery
	// results collects Finished outcomes.
	results map[model.ProcessID]Result
	// cut drops messages between processes when set.
	cut func(from, to model.ProcessID) bool
}

func newWorld(t *testing.T) *world {
	return &world{
		t:       t,
		procs:   make(map[model.ProcessID]*Recovery),
		results: make(map[model.ProcessID]Result),
	}
}

func (w *world) ids() []model.ProcessID {
	s := model.NewProcessSet()
	for id := range w.procs {
		s = s.Add(id)
	}
	return s.Members()
}

func (w *world) run() {
	type env struct {
		from model.ProcessID
		msg  wire.Message
	}
	var queue []env
	drain := func(from model.ProcessID, acts []Action) {
		for _, a := range acts {
			switch act := a.(type) {
			case Send:
				queue = append(queue, env{from: from, msg: act.Msg})
			case Finished:
				w.results[from] = act.Result
			}
		}
	}
	for _, id := range w.ids() {
		drain(id, w.procs[id].Start())
	}
	steps := 0
	for len(queue) > 0 {
		if steps++; steps > 100000 {
			w.t.Fatal("recovery message storm")
		}
		e := queue[0]
		queue = queue[1:]
		for _, to := range w.ids() {
			if w.cut != nil && w.cut(e.from, to) {
				continue
			}
			r := w.procs[to]
			switch m := e.msg.(type) {
			case wire.Exchange:
				drain(to, r.OnExchange(m))
			case wire.Data:
				drain(to, r.OnData(m))
			case wire.RecoveryDone:
				drain(to, r.OnDone(m))
			}
		}
	}
}

func mkData(sender model.ProcessID, sseq, seq uint64, ring model.ConfigID, svc model.Service) wire.Data {
	return wire.Data{
		ID:      model.MessageID{Sender: sender, SenderSeq: sseq},
		Ring:    ring,
		Seq:     seq,
		Service: svc,
		Payload: []byte(fmt.Sprintf("%s:%d", sender, seq)),
	}
}

func seqsOf(ds []wire.Data) []uint64 {
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Seq
	}
	return out
}

// Scenario shared by several tests: old ring {p,q,r} with p departed; q and
// r recover into new ring {q,r,s,t} alongside fresh processes s and t.
func figure6World(t *testing.T) (*world, model.Configuration, model.Configuration) {
	oldRing := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q", "r")}
	newRing := model.Configuration{ID: model.RegularID(2, "q"), Members: model.NewProcessSet("q", "r", "s", "t")}
	return newWorld(t), oldRing, newRing
}

func TestTransitionalSetSplitsByOldRing(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	w.procs["q"] = New("q", newRing, oldRing, totem.State{}, nil, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{}, nil, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	if len(w.results) != 4 {
		t.Fatalf("finished %d, want 4", len(w.results))
	}
	if got := w.procs["q"].Transitional(); !got.Equal(model.NewProcessSet("q", "r")) {
		t.Fatalf("q's transitional set %v, want {q,r}", got)
	}
	if got := w.procs["s"].Transitional(); !got.Equal(model.NewProcessSet("s", "t")) {
		t.Fatalf("s's transitional set %v, want {s,t}", got)
	}
	// q and r deliver a transitional configuration rooted at the old
	// ring; fresh s and t deliver none.
	qt := w.results["q"].Transitional
	if qt.ID.IsZero() || qt.ID.Prev() != oldRing.ID || !qt.Members.Equal(model.NewProcessSet("q", "r")) {
		t.Fatalf("q's transitional configuration %v", qt)
	}
	if !w.results["s"].Transitional.ID.IsZero() {
		t.Fatalf("fresh s should have no transitional configuration, got %v", w.results["s"].Transitional)
	}
}

func TestRebroadcastFillsPeersGaps(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m1 := mkData("p", 1, 1, oldRing.ID, model.Agreed)
	m2 := mkData("q", 1, 2, oldRing.ID, model.Agreed)
	m3 := mkData("r", 1, 3, oldRing.ID, model.Agreed)
	// q has 1,2; r has 1,3. Both should end with 1,2,3.
	qlog := map[uint64]wire.Data{1: m1, 2: m2}
	rlog := map[uint64]wire.Data{1: m1, 3: m3}
	w.procs["q"] = New("q", newRing, oldRing, totem.State{MyAru: 2, HighestSeen: 3}, qlog, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{MyAru: 1, Have: []uint64{3}, HighestSeen: 3}, rlog, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		res := w.results[id]
		all := append(seqsOf(res.OldRegular), seqsOf(res.Trans)...)
		if fmt.Sprint(all) != "[1 2 3]" {
			t.Fatalf("%s delivered %v, want [1 2 3]", id, all)
		}
	}
}

func TestSafeMessageAckedByTransitionalPeerDeliveredInTransitional(t *testing.T) {
	// Figure 6's message n: r sent n for safe delivery; q received it
	// but p (departed) never acknowledged. n cannot be safe in the old
	// regular configuration but is delivered in transitional {q,r}.
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	n := mkData("r", 1, 1, oldRing.ID, model.Safe)
	qlog := map[uint64]wire.Data{1: n}
	rlog := map[uint64]wire.Data{1: n}
	st := totem.State{MyAru: 1, SafeBound: 0, HighestSeen: 1}
	w.procs["q"] = New("q", newRing, oldRing, st, qlog, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, st, rlog, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		res := w.results[id]
		if len(res.OldRegular) != 0 {
			t.Fatalf("%s delivered %v in the old regular configuration; n was not safe there", id, seqsOf(res.OldRegular))
		}
		if len(res.Trans) != 1 || res.Trans[0].Seq != 1 {
			t.Fatalf("%s transitional deliveries %v, want [1]", id, seqsOf(res.Trans))
		}
	}
}

func TestSafeMessageWithinSafeBoundDeliveredInOldRegular(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m := mkData("q", 1, 1, oldRing.ID, model.Safe)
	st := totem.State{MyAru: 1, SafeBound: 1, HighestSeen: 1}
	w.procs["q"] = New("q", newRing, oldRing, st, map[uint64]wire.Data{1: m}, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, st, map[uint64]wire.Data{1: m}, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		res := w.results[id]
		if len(res.OldRegular) != 1 || res.OldRegular[0].Seq != 1 {
			t.Fatalf("%s old-regular deliveries %v, want [1]", id, seqsOf(res.OldRegular))
		}
	}
}

func TestSafeBoundLearnedFromPeerExchange(t *testing.T) {
	// r observed the message become safe before the partition; q did
	// not. q must learn the bound from r's exchange and deliver in the
	// old regular configuration too.
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m := mkData("q", 1, 1, oldRing.ID, model.Safe)
	w.procs["q"] = New("q", newRing, oldRing, totem.State{MyAru: 1, SafeBound: 0, HighestSeen: 1}, map[uint64]wire.Data{1: m}, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{MyAru: 1, SafeBound: 1, HighestSeen: 1}, map[uint64]wire.Data{1: m}, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		if got := seqsOf(w.results[id].OldRegular); fmt.Sprint(got) != "[1]" {
			t.Fatalf("%s old-regular deliveries %v, want [1]", id, got)
		}
	}
}

func TestHoleDiscardsFollowersExceptObligations(t *testing.T) {
	// Figure 6's messages l and m: p sent l (seq 2) then m (seq 3); l
	// never reached q or r, so m — causally dependent on l — must be
	// discarded. A message from q (seq 4, an obligation member) past
	// the hole is still delivered.
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m1 := mkData("q", 1, 1, oldRing.ID, model.Agreed)
	m3 := mkData("p", 2, 3, oldRing.ID, model.Agreed) // follows hole at 2
	m4 := mkData("q", 2, 4, oldRing.ID, model.Agreed)
	log := map[uint64]wire.Data{1: m1, 3: m3, 4: m4}
	st := totem.State{MyAru: 1, Have: []uint64{3, 4}, HighestSeen: 4}
	w.procs["q"] = New("q", newRing, oldRing, st, cloneLog(log), empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, st, cloneLog(log), empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		res := w.results[id]
		if fmt.Sprint(seqsOf(res.OldRegular)) != "[1]" {
			t.Fatalf("%s old-regular %v, want [1]", id, seqsOf(res.OldRegular))
		}
		if fmt.Sprint(seqsOf(res.Trans)) != "[4]" {
			t.Fatalf("%s transitional %v, want [4]: p's post-hole message discarded, q's delivered", id, seqsOf(res.Trans))
		}
		if fmt.Sprint(res.Discarded) != "[3]" {
			t.Fatalf("%s discarded %v, want [3]", id, res.Discarded)
		}
	}
}

func TestObligationSenderSurvivesHole(t *testing.T) {
	// A message from a process in the *incoming* obligation set (from a
	// previously interrupted recovery) is delivered past a hole even
	// though its sender is not in the transitional configuration.
	w, oldRing, newRing := figure6World(t)
	m1 := mkData("q", 1, 1, oldRing.ID, model.Agreed)
	m3 := mkData("p", 2, 3, oldRing.ID, model.Agreed)
	log := map[uint64]wire.Data{1: m1, 3: m3}
	st := totem.State{MyAru: 1, Have: []uint64{3}, HighestSeen: 3}
	obl := model.NewProcessSet("p")
	w.procs["q"] = New("q", newRing, oldRing, st, cloneLog(log), obl, nil)
	w.procs["r"] = New("r", newRing, oldRing, st, cloneLog(log), obl, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, model.NewProcessSet(), nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, model.NewProcessSet(), nil)
	w.run()

	for _, id := range []model.ProcessID{"q", "r"} {
		res := w.results[id]
		if fmt.Sprint(seqsOf(res.Trans)) != "[3]" {
			t.Fatalf("%s transitional %v, want [3] via obligation to p", id, seqsOf(res.Trans))
		}
	}
}

func TestObligationsExtendWithTransitionalMembers(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	w.procs["q"] = New("q", newRing, oldRing, totem.State{}, nil, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{}, nil, model.NewProcessSet("x"), nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	// Step 5.c: q's obligations should include the transitional members
	// and r's obligation to x.
	got := w.procs["q"].Obligations()
	want := model.NewProcessSet("q", "r", "x")
	if !got.Equal(want) {
		t.Fatalf("q's obligations %v, want %v", got, want)
	}
}

func TestFailureAtomicityIdenticalResults(t *testing.T) {
	// Members with different watermarks must deliver the same total set
	// per configuration.
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	msgs := make(map[uint64]wire.Data)
	for seq := uint64(1); seq <= 6; seq++ {
		svc := model.Agreed
		if seq%2 == 0 {
			svc = model.Safe
		}
		msgs[seq] = mkData("p", seq, seq, oldRing.ID, svc)
	}
	// q delivered up to 4 (observed safe bound 4); r only up to 1.
	qlog := cloneLog(msgs)
	rlog := map[uint64]wire.Data{1: msgs[1], 2: msgs[2], 3: msgs[3], 5: msgs[5]}
	w.procs["q"] = New("q", newRing, oldRing, totem.State{MyAru: 6, SafeBound: 4, DeliveredUpTo: 4, HighestSeen: 6}, qlog, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{MyAru: 3, Have: []uint64{5}, SafeBound: 2, DeliveredUpTo: 1, HighestSeen: 6}, rlog, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()

	q, r := w.results["q"], w.results["r"]
	// Union of operational deliveries (up to watermark) and recovery
	// deliveries must match per configuration.
	qOld := append(rangeSeqs(1, 4), seqsOf(q.OldRegular)...)
	rOld := append(rangeSeqs(1, 1), seqsOf(r.OldRegular)...)
	if fmt.Sprint(qOld) != fmt.Sprint(rOld) {
		t.Fatalf("old-regular sets differ: q=%v r=%v", qOld, rOld)
	}
	if fmt.Sprint(seqsOf(q.Trans)) != fmt.Sprint(seqsOf(r.Trans)) {
		t.Fatalf("transitional sets differ: q=%v r=%v", seqsOf(q.Trans), seqsOf(r.Trans))
	}
}

func TestFreshProcessesFinishWithNoDeliveries(t *testing.T) {
	w := newWorld(t)
	newRing := model.Configuration{ID: model.RegularID(1, "a"), Members: model.NewProcessSet("a", "b")}
	empty := model.NewProcessSet()
	w.procs["a"] = New("a", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["b"] = New("b", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()
	for _, id := range []model.ProcessID{"a", "b"} {
		res, ok := w.results[id]
		if !ok {
			t.Fatalf("%s did not finish", id)
		}
		if len(res.OldRegular) != 0 || len(res.Trans) != 0 || !res.Transitional.ID.IsZero() {
			t.Fatalf("%s fresh recovery delivered %+v", id, res)
		}
	}
}

func TestRetryMasksMessageLoss(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m1 := mkData("q", 1, 1, oldRing.ID, model.Agreed)
	w.procs["q"] = New("q", newRing, oldRing, totem.State{MyAru: 1, HighestSeen: 1}, map[uint64]wire.Data{1: m1}, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, totem.State{HighestSeen: 1}, nil, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	// Lose everything q sends the first time through.
	lost := map[string]bool{}
	w.cut = func(from, to model.ProcessID) bool {
		if from == "q" && to != "q" {
			k := fmt.Sprintf("%s->%s", from, to)
			if !lost[k] {
				lost[k] = true
				return true
			}
		}
		return false
	}
	w.run()
	if w.procs["q"].Finished() {
		t.Fatal("q cannot finish while peers lack its exchange")
	}
	// Fire the retry timer at q; the re-sent exchange completes the
	// exchange round everywhere.
	type env struct {
		from model.ProcessID
		acts []Action
	}
	retries := []env{{from: "q", acts: w.procs["q"].OnRetry()}}
	for _, e := range retries {
		for _, a := range e.acts {
			if s, ok := a.(Send); ok {
				for _, to := range w.ids() {
					r := w.procs[to]
					switch m := s.Msg.(type) {
					case wire.Exchange:
						pump(w, to, r.OnExchange(m))
					case wire.Data:
						pump(w, to, r.OnData(m))
					case wire.RecoveryDone:
						pump(w, to, r.OnDone(m))
					}
				}
			}
		}
	}
	w.cut = nil
	w.run() // drain any remaining traffic via fresh Start broadcasts
	// After retry, run to completion by pumping retries on all.
	for tries := 0; tries < 5 && len(w.results) < 4; tries++ {
		for _, id := range w.ids() {
			pumpActs(w, id, w.procs[id].OnRetry())
		}
	}
	if len(w.results) != 4 {
		t.Fatalf("finished %d of 4 after retries", len(w.results))
	}
}

// pump routes follow-up actions produced while handling a retry.
func pump(w *world, from model.ProcessID, acts []Action) {
	pumpActs(w, from, acts)
}

func pumpActs(w *world, from model.ProcessID, acts []Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case Send:
			for _, to := range w.ids() {
				if w.cut != nil && w.cut(from, to) {
					continue
				}
				r := w.procs[to]
				switch m := act.Msg.(type) {
				case wire.Exchange:
					pumpActs(w, to, r.OnExchange(m))
				case wire.Data:
					pumpActs(w, to, r.OnData(m))
				case wire.RecoveryDone:
					pumpActs(w, to, r.OnDone(m))
				}
			}
		case Finished:
			w.results[from] = act.Result
		}
	}
}

func TestStragglerOutsideNeededSetDropped(t *testing.T) {
	w, oldRing, newRing := figure6World(t)
	empty := model.NewProcessSet()
	m1 := mkData("q", 1, 1, oldRing.ID, model.Agreed)
	st := totem.State{MyAru: 1, HighestSeen: 1}
	w.procs["q"] = New("q", newRing, oldRing, st, map[uint64]wire.Data{1: m1}, empty, nil)
	w.procs["r"] = New("r", newRing, oldRing, st, map[uint64]wire.Data{1: m1}, empty, nil)
	w.procs["s"] = New("s", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.procs["t"] = New("t", newRing, model.Configuration{}, totem.State{}, nil, empty, nil)
	w.run()
	// A straggler with seq 7 (nobody claimed it) arrives at q after the
	// plan: it must be dropped, not delivered.
	straggler := mkData("p", 9, 7, oldRing.ID, model.Agreed)
	w.procs["q"].OnData(straggler) // finished already; no effect
	res := w.results["q"]
	for _, d := range append(res.OldRegular, res.Trans...) {
		if d.Seq == 7 {
			t.Fatal("straggler outside the needed set was delivered")
		}
	}
}

func cloneLog(in map[uint64]wire.Data) map[uint64]wire.Data {
	out := make(map[uint64]wire.Data, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func rangeSeqs(from, to uint64) []uint64 {
	var out []uint64
	for s := from; s <= to; s++ {
		out = append(out, s)
	}
	return out
}

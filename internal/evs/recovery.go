// Package evs implements the extended virtual synchrony recovery algorithm,
// Steps 2-6 of Section 3 of the paper. It is the paper's primary
// contribution: the machinery that, at each membership change, delivers the
// remaining messages of the prior regular configuration consistently across
// every process that survives into the new configuration, using transitional
// configurations and obligation sets.
//
// One Recovery value drives one attempt at installing one proposed new
// regular configuration. The node creates it when the membership algorithm
// forms a ring, feeds it received Exchange, rebroadcast Data and
// RecoveryDone messages, and applies the Result when the recovery finishes.
// If a further membership change interrupts the attempt, the node discards
// the Recovery — carrying forward the merged message log and the obligation
// set, exactly as the paper requires — and restarts at Step 2.
//
// Failure atomicity (Specification 4) rests on every transitional member
// computing Step 6 from identical inputs. To that end each process freezes
// its Exchange message when the attempt starts and resends it verbatim on
// retries, so the union of exchanged receipt claims — the "needed set" — is
// the same at every member; messages that surface later (stragglers from
// the operational phase) are admitted only if they fall inside the needed
// set, and are otherwise dropped as if lost by the network a moment
// earlier.
package evs

import (
	"sort"

	"repro/internal/model"
	"repro/internal/totem"
	"repro/internal/wire"
)

// Action is the sealed union of recovery outputs.
type Action interface{ isAction() }

// Send instructs the node to broadcast a message.
type Send struct{ Msg wire.Message }

func (Send) isAction() {}

// Finished carries the computed Step 6 outcome; it is always the last
// action of a recovery.
type Finished struct{ Result Result }

func (Finished) isAction() {}

// Result is the Step 6 outcome, applied atomically by the node: deliver
// OldRegular in the old regular configuration, deliver the configuration
// change initiating Transitional, deliver Trans in it, then deliver the
// configuration change installing the new regular configuration (with empty
// obligations, per Step 1).
type Result struct {
	// Transitional is the transitional configuration: the members of
	// the new regular configuration whose previous regular
	// configuration matches this process's (Step 4.a). Its ID is zero
	// when this process had no prior regular configuration (a fresh
	// process), in which case no transitional configuration change is
	// delivered.
	Transitional model.Configuration
	// OldRegular are messages delivered in the old regular
	// configuration (Step 6.b), in total order.
	OldRegular []wire.Data
	// Trans are messages delivered in the transitional configuration
	// (Step 6.d), in total order.
	Trans []wire.Data
	// Discarded are sequence numbers discarded by Step 6.a: messages
	// following the first unavailable message whose senders are outside
	// the obligation set.
	Discarded []uint64
	// SafeBound and HighestSeen are the final knowledge about the old
	// configuration, retained in case this process ever needs them
	// again (diagnostics; the old configuration is closed after 6.e).
	SafeBound   uint64
	HighestSeen uint64
}

// Recovery is one attempt of the recovery algorithm at one process.
type Recovery struct {
	self    model.ProcessID
	newRing model.Configuration
	oldRing model.Configuration // zero ID for a fresh process

	// log is the receipt state for the old configuration, merged across
	// restarts; owned by the caller.
	log           map[uint64]wire.Data
	deliveredUpTo uint64
	safeBound     uint64
	highestSeen   uint64
	// trimmed is the old ring's discarded log prefix: sequence numbers at
	// or below it were delivered locally and certified safe (received by
	// every old-ring member), so this process holds them in the formal
	// sense without the log being able to produce them. Receipt claims
	// and the Step 5 completion check treat the prefix as present.
	trimmed     uint64
	obligations model.ProcessSet

	frozen    wire.Exchange // this process's exchange, fixed per attempt
	exchanges map[model.ProcessID]wire.Exchange
	buffered  []wire.Data // old-ring data received before the plan exists
	done      map[model.ProcessID]bool
	sentDone  bool
	finished  bool

	// planned, trans and needed are computed once when exchanges from
	// every member of the new configuration have arrived (Step 4).
	planned bool
	trans   model.ProcessSet
	needed  map[uint64]bool
}

// New begins a recovery attempt. log is owned by the caller but mutated by
// the recovery (rebroadcasts merge into it); state carries the caller's
// receipt state for oldRing; obligations is the obligation set carried in
// from stable storage or a previous interrupted attempt; seen is the
// caller's highest-observed sender sequence per originator, copied into
// the frozen exchange as counter-healing evidence for peers.
func New(
	self model.ProcessID,
	newRing, oldRing model.Configuration,
	state totem.State,
	log map[uint64]wire.Data,
	obligations model.ProcessSet,
	seen map[model.ProcessID]uint64,
) *Recovery {
	if log == nil {
		log = make(map[uint64]wire.Data)
	}
	r := &Recovery{
		self:          self,
		newRing:       newRing,
		oldRing:       oldRing,
		log:           log,
		deliveredUpTo: state.DeliveredUpTo,
		safeBound:     state.SafeBound,
		highestSeen:   state.HighestSeen,
		trimmed:       state.Trimmed,
		obligations:   obligations,
		exchanges:     make(map[model.ProcessID]wire.Exchange),
		done:          make(map[model.ProcessID]bool),
	}
	st := r.currentState()
	r.frozen = wire.Exchange{
		Ring:          newRing.ID,
		Sender:        self,
		OldRing:       oldRing.ID,
		OldMembers:    oldRing.Members.Members(),
		MyAru:         st.MyAru,
		Have:          st.Have,
		SafeBound:     state.SafeBound,
		HighestSeen:   state.HighestSeen,
		DeliveredUpTo: state.DeliveredUpTo,
		Obligations:   obligations.Members(),
		SeenSeqs:      seenSlice(seen),
	}
	return r
}

// seenSlice renders a seen-sequence map as the canonical sorted wire
// form. The result is freshly allocated: the exchange must never alias
// the caller's live map.
func seenSlice(seen map[model.ProcessID]uint64) []wire.SeenSeq {
	if len(seen) == 0 {
		return nil
	}
	out := make([]wire.SeenSeq, 0, len(seen))
	for p, v := range seen {
		out = append(out, wire.SeenSeq{Proc: p, Seq: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}

// SeenSeqs merges the highest-observed sender sequences across every
// exchange received this attempt (including this process's own): the
// counter-healing evidence of the self-stabilization fault model. The
// caller adopts the per-originator maxima when the configuration is
// installed.
func (r *Recovery) SeenSeqs() map[model.ProcessID]uint64 {
	out := make(map[model.ProcessID]uint64)
	merge := func(ss []wire.SeenSeq) {
		for _, s := range ss {
			if s.Seq > out[s.Proc] {
				out[s.Proc] = s.Seq
			}
		}
	}
	merge(r.frozen.SeenSeqs)
	for _, e := range r.exchanges {
		merge(e.SeenSeqs)
	}
	return out
}

// Obligations returns the current obligation set, persisted by the node if
// the attempt is interrupted (Step 5.c obligations survive restarts).
func (r *Recovery) Obligations() model.ProcessSet { return r.obligations }

// State returns the merged receipt state, carried into a restart.
func (r *Recovery) State() totem.State {
	st := r.currentState()
	st.SafeBound = r.safeBound
	st.HighestSeen = r.highestSeen
	st.DeliveredUpTo = r.deliveredUpTo
	return st
}

// currentState derives the receipt watermarks from the log. The contiguity
// probe starts at the trimmed prefix, which is held by certificate rather
// than by the log.
func (r *Recovery) currentState() totem.State {
	var st totem.State
	st.Trimmed = r.trimmed
	st.MyAru = contiguousFrom(r.log, r.trimmed)
	for seq := range r.log {
		if seq > st.MyAru {
			st.Have = append(st.Have, seq)
		}
	}
	sort.Slice(st.Have, func(i, j int) bool { return st.Have[i] < st.Have[j] })
	return st
}

// Log returns the merged message log (caller-owned map).
func (r *Recovery) Log() map[uint64]wire.Data { return r.log }

// Watermarks returns the delivery/safety watermarks without scanning the
// log (State.MyAru and State.Have are left empty).
func (r *Recovery) Watermarks() totem.State {
	return totem.State{
		SafeBound:     r.safeBound,
		HighestSeen:   r.highestSeen,
		DeliveredUpTo: r.deliveredUpTo,
		Trimmed:       r.trimmed,
	}
}

// Finished reports whether the Step 6 result has been emitted.
func (r *Recovery) Finished() bool { return r.finished }

// Transitional returns the transitional member set (empty before Step 4).
func (r *Recovery) Transitional() model.ProcessSet { return r.trans }

// Planned reports whether Step 4 has computed the rebroadcast plan (every
// member's exchange has arrived).
func (r *Recovery) Planned() bool { return r.planned }

// SentDone reports whether this process has announced Step 5 completion.
func (r *Recovery) SentDone() bool { return r.sentDone }

// NeededCount returns the size of the needed set (zero before Step 4).
func (r *Recovery) NeededCount() int { return len(r.needed) }

// Start emits this process's Exchange broadcast (Step 3).
func (r *Recovery) Start() []Action {
	return []Action{Send{Msg: r.frozen}}
}

// OnExchange ingests a peer's Exchange (Step 3). When exchanges from every
// member of the proposed configuration have arrived, the transitional
// configuration and the rebroadcast plan are computed (Step 4) and initial
// rebroadcasts are emitted (Step 5.a).
func (r *Recovery) OnExchange(e wire.Exchange) []Action {
	if r.finished || e.Ring != r.newRing.ID || !r.newRing.Members.Contains(e.Sender) {
		return nil
	}
	if _, seen := r.exchanges[e.Sender]; seen {
		return r.step()
	}
	r.exchanges[e.Sender] = e
	if e.OldRing == r.oldRing.ID {
		if e.SafeBound > r.safeBound {
			r.safeBound = e.SafeBound
		}
		if e.HighestSeen > r.highestSeen {
			r.highestSeen = e.HighestSeen
		}
	}
	return r.step()
}

// OnData ingests a data message of the old configuration: a Step 5.a
// rebroadcast, or a straggler from the operational phase. Messages outside
// the agreed needed set are dropped to keep Step 6 inputs identical across
// the transitional configuration.
func (r *Recovery) OnData(d wire.Data) []Action {
	if r.finished || d.Ring != r.oldRing.ID || d.Seq == 0 {
		return nil
	}
	if !r.planned {
		r.buffered = append(r.buffered, d)
		return nil
	}
	r.admit(d)
	return r.step()
}

// admit merges one data message into the log if the plan allows it.
func (r *Recovery) admit(d wire.Data) {
	if !r.needed[d.Seq] || d.Seq <= r.trimmed {
		return
	}
	if _, ok := r.log[d.Seq]; ok {
		return
	}
	d.Retrans = false
	r.log[d.Seq] = d
}

// OnDone ingests a peer's announcement that it holds every needed message
// (Step 5.b).
func (r *Recovery) OnDone(d wire.RecoveryDone) []Action {
	if r.finished || d.Ring != r.newRing.ID || d.OldRing != r.oldRing.ID {
		return nil
	}
	if !r.newRing.Members.Contains(d.Sender) {
		return nil
	}
	r.done[d.Sender] = true
	return r.step()
}

// OnRetry handles the recovery retry timer: the frozen exchange, the done
// announcement and unsatisfied rebroadcasts are re-sent to mask message
// loss.
func (r *Recovery) OnRetry() []Action {
	if r.finished {
		return nil
	}
	out := []Action{Send{Msg: r.frozen}}
	if r.sentDone {
		out = append(out, Send{Msg: wire.RecoveryDone{
			Ring: r.newRing.ID, Sender: r.self, OldRing: r.oldRing.ID,
		}})
	}
	if r.planned {
		out = append(out, r.rebroadcasts(true)...)
	}
	return append(out, r.step()...)
}

// step advances the algorithm as far as current knowledge allows.
func (r *Recovery) step() []Action {
	if r.finished {
		return nil
	}
	var out []Action
	if !r.planned {
		// Step 4 needs exchanges from every member of the proposed
		// configuration: the transitional configuration is defined
		// over all members' previous regular configurations.
		for _, q := range r.newRing.Members.Members() {
			if _, ok := r.exchanges[q]; !ok {
				return nil
			}
		}
		r.computePlan()
		for _, d := range r.buffered {
			r.admit(d)
		}
		r.buffered = nil
		out = append(out, r.rebroadcasts(false)...)
	}

	if !r.sentDone && r.holdsAllNeeded() {
		// Step 5.c: on acknowledging receipt of all rebroadcast
		// messages, extend the obligation set with the transitional
		// members and their obligation sets.
		r.sentDone = true
		r.done[r.self] = true
		r.obligations = r.obligations.Union(r.trans)
		for _, q := range r.trans.Members() {
			r.obligations = r.obligations.Union(
				model.NewProcessSet(r.exchanges[q].Obligations...))
		}
		out = append(out, Send{Msg: wire.RecoveryDone{
			Ring: r.newRing.ID, Sender: r.self, OldRing: r.oldRing.ID,
		}})
	}

	if r.sentDone && r.allDone() {
		res := r.computeResult()
		r.finished = true
		out = append(out, Finished{Result: res})
	}
	return out
}

// computePlan performs Step 4.a — the transitional configuration members
// are the members of the new regular configuration whose previous regular
// configuration equals this process's — and Step 4.b — the needed set: the
// sequence numbers held, per the frozen exchanges, by anyone in the
// transitional configuration.
func (r *Recovery) computePlan() {
	ids := []model.ProcessID{r.self}
	for q, e := range r.exchanges {
		if e.OldRing == r.oldRing.ID {
			ids = append(ids, q)
		}
	}
	r.trans = model.NewProcessSet(ids...)

	r.needed = make(map[uint64]bool)
	for _, q := range r.trans.Members() {
		e := r.exchanges[q]
		for seq := uint64(1); seq <= e.MyAru; seq++ {
			r.needed[seq] = true
		}
		for _, seq := range e.Have {
			r.needed[seq] = true
		}
		if e.HighestSeen > r.highestSeen {
			r.highestSeen = e.HighestSeen
		}
	}
	for seq := range r.needed {
		if seq > r.highestSeen {
			r.highestSeen = seq
		}
	}
	r.planned = true
}

// neededSorted returns the needed sequence numbers in order.
func (r *Recovery) neededSorted() []uint64 {
	out := make([]uint64, 0, len(r.needed))
	for seq := range r.needed {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebroadcasts returns the Step 5.a rebroadcast messages this process is
// responsible for: for each needed message missing at some transitional
// member, the lowest-ordered holder rebroadcasts. With force, this process
// rebroadcasts every message some not-yet-done member is missing (retry
// path).
func (r *Recovery) rebroadcasts(force bool) []Action {
	var out []Action
	for _, seq := range r.neededSorted() {
		d, have := r.log[seq]
		if !have {
			continue
		}
		neededBy := false
		for _, q := range r.trans.Members() {
			if q == r.self {
				continue
			}
			if !holdsSeq(r.exchanges[q], seq) && !r.done[q] {
				neededBy = true
				break
			}
		}
		if !neededBy {
			continue
		}
		if !force {
			// Deterministic responsibility: the lowest-ordered
			// member that claimed the message in its exchange.
			// Every needed sequence number has at least one
			// claimer, since the needed set is the union of the
			// exchanged claims.
			var lowest model.ProcessID
			for _, q := range r.trans.Members() {
				if holdsSeq(r.exchanges[q], seq) {
					lowest = q
					break
				}
			}
			if lowest != r.self {
				continue
			}
		}
		d.Retrans = true
		out = append(out, Send{Msg: d})
	}
	return out
}

// holdsSeq reports whether an exchange claims receipt of seq.
func holdsSeq(e wire.Exchange, seq uint64) bool {
	if seq > 0 && seq <= e.MyAru {
		return true
	}
	for _, s := range e.Have {
		if s == seq {
			return true
		}
	}
	return false
}

// holdsAllNeeded reports whether this process holds every needed message.
// The trimmed prefix counts as held: it was delivered locally and certified
// received by every old-ring member before being discarded.
func (r *Recovery) holdsAllNeeded() bool {
	if !r.planned {
		return false
	}
	for seq := range r.needed {
		if seq <= r.trimmed {
			continue
		}
		if _, ok := r.log[seq]; !ok {
			return false
		}
	}
	return true
}

// allDone reports whether every transitional member announced completion.
func (r *Recovery) allDone() bool {
	for _, q := range r.trans.Members() {
		if !r.done[q] {
			return false
		}
	}
	return true
}

// computeResult performs Step 6 (excluding the actual deliveries, which the
// node applies atomically):
//
//	6.a discard messages following the first unavailable message unless
//	    sent by an obligation-set member (which includes the transitional
//	    members);
//	6.b deliver, in the old regular configuration, messages up to but not
//	    including the first hole or the first safe message not known
//	    received by every member of the old configuration;
//	6.d deliver, in the transitional configuration, the remaining
//	    messages in order, skipping post-hole messages from outside the
//	    obligation set.
func (r *Recovery) computeResult() Result {
	res := Result{
		SafeBound:   r.safeBound,
		HighestSeen: r.highestSeen,
	}
	if !r.oldRing.ID.IsZero() {
		res.Transitional = model.Configuration{
			ID:      model.TransitionalID(r.newRing.ID, r.oldRing.ID),
			Members: r.trans,
		}
	}

	// 6.b: regular deliveries, from this process's own watermark up to
	// the common stopping point. The watermark is at or above the
	// trimmed prefix by construction (trimming never outruns delivery);
	// the clamp guards against regressed persisted state.
	seq := r.deliveredUpTo
	if seq < r.trimmed {
		seq = r.trimmed
	}
	for {
		d, ok := r.log[seq+1]
		if !ok || !r.needed[seq+1] {
			break
		}
		if d.Service == model.Safe && d.Seq > r.safeBound {
			break
		}
		seq++
		res.OldRegular = append(res.OldRegular, d)
	}

	// 6.a + 6.d: transitional deliveries up to the highest sequence
	// number known assigned in the old configuration.
	holeSeen := false
	for s := seq + 1; s <= r.highestSeen; s++ {
		d, ok := r.log[s]
		if !ok || !r.needed[s] {
			holeSeen = true
			continue
		}
		if holeSeen && !r.obligations.Contains(d.ID.Sender) {
			res.Discarded = append(res.Discarded, s)
			continue
		}
		res.Trans = append(res.Trans, d)
	}
	return res
}

// contiguousFrom returns the highest seq such that every sequence number in
// (from, seq] is present in log.
func contiguousFrom(log map[uint64]wire.Data, from uint64) uint64 {
	seq := from
	for {
		if _, ok := log[seq+1]; !ok {
			return seq
		}
		seq++
	}
}

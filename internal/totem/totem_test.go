package totem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stable"
	"repro/internal/wire"
)

// harness drives a set of rings by hand, playing the network: tokens are
// forwarded to successors and broadcasts fanned out to all members,
// optionally with loss.
type harness struct {
	t     *testing.T
	rings map[model.ProcessID]*Ring
	order []model.ProcessID
	// delivered records payloads per process in delivery order.
	delivered map[model.ProcessID][]wire.Data
	// dropData, when set, decides whether a data broadcast copy is lost.
	dropData func(to model.ProcessID, d wire.Data) bool
	token    wire.Token
	holder   int // index into order of the process about to receive token
}

func newHarness(t *testing.T, ids ...model.ProcessID) *harness {
	return newHarnessOpts(t, DefaultOptions(), ids...)
}

func newHarnessOpts(t *testing.T, opts Options, ids ...model.ProcessID) *harness {
	cfg := model.Configuration{ID: model.RegularID(1, ids[0]), Members: model.NewProcessSet(ids...)}
	h := &harness{
		t:         t,
		rings:     make(map[model.ProcessID]*Ring),
		delivered: make(map[model.ProcessID][]wire.Data),
	}
	h.order = cfg.Members.Members()
	for _, id := range h.order {
		h.rings[id] = New(id, cfg, opts)
	}
	h.token = h.rings[h.order[0]].InitialToken()
	return h
}

// rotate performs one full token rotation.
func (h *harness) rotate() {
	for range h.order {
		id := h.order[h.holder]
		r := h.rings[id]
		res := r.OnToken(h.token)
		if !res.Accepted {
			h.t.Fatalf("%s rejected token %v", id, h.token)
		}
		h.record(id, res.Deliveries)
		for _, d := range res.Broadcasts {
			for _, to := range h.order {
				if to == id {
					continue // originator already holds it
				}
				if h.dropData != nil && h.dropData(to, d) {
					continue
				}
				h.record(to, h.rings[to].OnData(d))
			}
		}
		h.token = res.Forward
		h.holder = (h.holder + 1) % len(h.order)
	}
}

func (h *harness) record(id model.ProcessID, ds []wire.Data) {
	h.delivered[id] = append(h.delivered[id], ds...)
}

func (h *harness) submit(id model.ProcessID, n int, svc model.Service) {
	r := h.rings[id]
	for i := 0; i < n; i++ {
		r.Submit(Pending{
			ID:      model.MessageID{Sender: id, SenderSeq: uint64(len(h.delivered[id]) + i + 1000)},
			Service: svc,
			Payload: []byte(fmt.Sprintf("%s-%d", id, i)),
		})
	}
}

func payloads(ds []wire.Data) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = string(d.Payload)
	}
	return out
}

func TestAgreedDeliveryTotalOrder(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	h.submit("p", 3, model.Agreed)
	h.submit("q", 2, model.Agreed)
	for i := 0; i < 4; i++ {
		h.rotate()
	}
	ref := payloads(h.delivered["p"])
	if len(ref) != 5 {
		t.Fatalf("p delivered %v, want all 5", ref)
	}
	for _, id := range []model.ProcessID{"q", "r"} {
		got := payloads(h.delivered[id])
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("%s delivered %v, p delivered %v: total order violated", id, got, ref)
		}
	}
}

func TestSeqsAreContiguousFromOne(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 2, model.Agreed)
	h.submit("q", 2, model.Agreed)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	for i, d := range h.delivered["p"] {
		if d.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d", i, d.Seq)
		}
	}
}

func TestSafeDeliveryNeedsTwoVisits(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	h.submit("p", 1, model.Safe)
	h.rotate()
	// After one rotation the message is sequenced and received
	// everywhere but cannot yet be safe anywhere.
	for id, ds := range h.delivered {
		if len(ds) != 0 {
			t.Fatalf("%s delivered %v before message was safe", id, payloads(ds))
		}
	}
	h.rotate()
	h.rotate()
	for _, id := range h.order {
		if len(h.delivered[id]) != 1 {
			t.Fatalf("%s delivered %v, want the safe message", id, payloads(h.delivered[id]))
		}
	}
}

func TestBlockedSafeMessageBlocksSuccessors(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Safe)
	h.submit("q", 1, model.Agreed)
	h.rotate()
	// The agreed message is sequenced after the safe one and must not
	// jump the queue even though it needs no acknowledgment.
	for id, ds := range h.delivered {
		for _, d := range ds {
			if d.Service == model.Agreed {
				t.Fatalf("%s delivered agreed message before preceding safe message", id)
			}
		}
	}
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	got := payloads(h.delivered["q"])
	if len(got) != 2 || got[0] != "p-0" {
		t.Fatalf("q delivered %v, want safe first then agreed", got)
	}
}

func TestRetransmissionFillsGaps(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	// r loses every first copy of p's data.
	lost := map[uint64]bool{}
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		if to == "r" && !d.Retrans && !lost[d.Seq] {
			lost[d.Seq] = true
			return true
		}
		return false
	}
	h.submit("p", 5, model.Agreed)
	for i := 0; i < 5; i++ {
		h.rotate()
	}
	got := payloads(h.delivered["r"])
	if len(got) != 5 {
		t.Fatalf("r delivered %v, want all 5 after retransmission", got)
	}
	want := payloads(h.delivered["p"])
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("r delivered %v, p delivered %v", got, want)
	}
}

func TestSafeNotDeliveredWhileMemberMissingMessage(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	// r never receives seq 1 (not even retransmissions).
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		return to == "r" && d.Seq == 1
	}
	h.submit("p", 1, model.Safe)
	for i := 0; i < 6; i++ {
		h.rotate()
	}
	for _, id := range h.order {
		if n := len(h.delivered[id]); n != 0 {
			t.Fatalf("%s delivered %d messages although r never received seq 1", id, n)
		}
	}
}

func TestStaleTokenRejected(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.rotate()
	stale := wire.Token{Ring: h.rings["p"].Config().ID, TokenID: 1}
	if res := h.rings["p"].OnToken(stale); res.Accepted {
		t.Fatal("stale token must be rejected")
	}
	wrongRing := wire.Token{Ring: model.RegularID(99, "z"), TokenID: 100}
	if res := h.rings["p"].OnToken(wrongRing); res.Accepted {
		t.Fatal("token for another ring must be rejected")
	}
}

func TestDuplicateDataIgnored(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Agreed)
	h.rotate()
	d := h.rings["q"].Messages()[1]
	if got := h.rings["q"].OnData(d); got != nil {
		t.Fatalf("duplicate data redelivered: %v", got)
	}
	if h.rings["q"].Snapshot().MyAru != 1 {
		t.Fatal("aru should be unaffected by duplicates")
	}
}

func TestSingletonRingDeliversOwnSafeMessages(t *testing.T) {
	h := newHarness(t, "p")
	h.submit("p", 2, model.Safe)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	if got := payloads(h.delivered["p"]); len(got) != 2 {
		t.Fatalf("singleton delivered %v, want both", got)
	}
}

func TestFlowControlWindow(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p")}
	r := New("p", cfg, Options{MaxPerToken: 100, Window: 4})
	for i := 0; i < 50; i++ {
		r.Submit(Pending{ID: model.MessageID{Sender: "p", SenderSeq: uint64(i + 1)}, Service: model.Agreed})
	}
	res := r.OnToken(r.InitialToken())
	if len(res.Sent) != 4 {
		t.Fatalf("sequenced %d, want window of 4", len(res.Sent))
	}
	if r.PendingCount() != 46 {
		t.Fatalf("pending %d, want 46", r.PendingCount())
	}
}

func TestMaxPerTokenLimit(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p")}
	r := New("p", cfg, Options{MaxPerToken: 3, Window: 1000})
	for i := 0; i < 10; i++ {
		r.Submit(Pending{ID: model.MessageID{Sender: "p", SenderSeq: uint64(i + 1)}, Service: model.Agreed})
	}
	res := r.OnToken(r.InitialToken())
	if len(res.Sent) != 3 {
		t.Fatalf("sequenced %d, want 3", len(res.Sent))
	}
}

func TestSuccessorWrapsAround(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "a"), Members: model.NewProcessSet("a", "b", "c")}
	if s := New("c", cfg, DefaultOptions()).Successor(); s != "a" {
		t.Fatalf("successor of c = %s, want a", s)
	}
	if s := New("a", cfg, DefaultOptions()).Successor(); s != "b" {
		t.Fatalf("successor of a = %s, want b", s)
	}
}

func TestSnapshotReportsHaveBeyondAru(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	mk := func(seq uint64) wire.Data {
		return wire.Data{ID: model.MessageID{Sender: "q", SenderSeq: seq}, Ring: cfg.ID, Seq: seq, Service: model.Agreed}
	}
	r.OnData(mk(1))
	r.OnData(mk(3))
	r.OnData(mk(5))
	st := r.Snapshot()
	if st.MyAru != 1 {
		t.Fatalf("MyAru = %d, want 1", st.MyAru)
	}
	if fmt.Sprint(st.Have) != "[3 5]" {
		t.Fatalf("Have = %v, want [3 5]", st.Have)
	}
	if st.HighestSeen != 5 {
		t.Fatalf("HighestSeen = %d, want 5", st.HighestSeen)
	}
}

func TestRestoreSeedsState(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	log := map[uint64]wire.Data{
		1: {ID: model.MessageID{Sender: "q", SenderSeq: 1}, Ring: cfg.ID, Seq: 1, Service: model.Agreed},
		2: {ID: model.MessageID{Sender: "q", SenderSeq: 2}, Ring: cfg.ID, Seq: 2, Service: model.Agreed},
	}
	r.Restore(log, 1, 1, 2, 0)
	st := r.Snapshot()
	if st.MyAru != 2 || st.DeliveredUpTo != 1 || st.SafeBound != 1 || st.HighestSeen != 2 {
		t.Fatalf("restored snapshot %+v", st)
	}
}

// TestWindowExhaustionBlocksSequencingAcrossVisits pins the flow-control
// invariant token.Seq - token.Aru < Window over multiple visits: while a
// member's receipts stall the aru, the sender keeps retransmitting but
// sequences nothing new, and resumes only once the aru advances.
func TestWindowExhaustionBlocksSequencingAcrossVisits(t *testing.T) {
	h := newHarnessOpts(t, Options{MaxPerToken: 100, Window: 4}, "p", "q")
	h.dropData = func(to model.ProcessID, _ wire.Data) bool { return to == "q" }
	h.submit("p", 50, model.Agreed)
	for i := 0; i < 4; i++ {
		h.rotate()
	}
	// Window filled on the first visit, then exhausted: Seq stays at 4
	// because q's aru is pinned at 0.
	if h.token.Seq != 4 {
		t.Fatalf("token.Seq = %d, want 4 (window exhausted)", h.token.Seq)
	}
	if got := h.rings["p"].PendingCount(); got != 46 {
		t.Fatalf("pending = %d, want 46", got)
	}
	if len(h.delivered["q"]) != 0 {
		t.Fatalf("q delivered %d messages with all data dropped", len(h.delivered["q"]))
	}
	// Heal the link: retransmissions land, the aru advances, and
	// sequencing resumes.
	h.dropData = nil
	for i := 0; i < 4; i++ {
		h.rotate()
	}
	if h.token.Seq <= 4 {
		t.Fatalf("token.Seq = %d, want progress after heal", h.token.Seq)
	}
	if got := h.rings["p"].PendingCount(); got >= 46 {
		t.Fatalf("pending = %d, want sequencing resumed", got)
	}
	if len(h.delivered["q"]) == 0 {
		t.Fatal("q delivered nothing after heal")
	}
}

// TestAdaptiveBudgetGrowsWhenLossFree drives a saturated loss-free ring and
// checks the per-visit budget climbs from MaxPerToken to AdaptiveMax.
func TestAdaptiveBudgetGrowsWhenLossFree(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p")}
	r := New("p", cfg, Options{MaxPerToken: 4, Window: 8, Adaptive: true, AdaptiveMax: 32})
	for i := 0; i < 400; i++ {
		r.Submit(Pending{ID: model.MessageID{Sender: "p", SenderSeq: uint64(i + 1)}, Service: model.Agreed})
	}
	tok := r.InitialToken()
	first := -1
	last := 0
	for i := 0; i < 8; i++ {
		res := r.OnToken(tok)
		if !res.Accepted {
			t.Fatal("token rejected")
		}
		if first < 0 {
			first = len(res.Sent)
		}
		last = len(res.Sent)
		tok = res.Forward
	}
	if first != 4 {
		t.Fatalf("first visit sequenced %d, want the MaxPerToken floor 4", first)
	}
	if last != 32 {
		t.Fatalf("steady-state visit sequenced %d, want the AdaptiveMax cap 32", last)
	}
	if r.curMax != 32 {
		t.Fatalf("curMax = %d, want 32", r.curMax)
	}
}

// TestAdaptiveBudgetShrinksUnderPersistentLoss grows the budget, then cuts
// one member's data reception: once the missing messages are two rotations
// old the requests count as loss and the budget collapses to the floor.
func TestAdaptiveBudgetShrinksUnderPersistentLoss(t *testing.T) {
	opts := Options{MaxPerToken: 2, Window: 256, Adaptive: true, AdaptiveMax: 64}
	h := newHarnessOpts(t, opts, "p", "q")
	h.submit("p", 500, model.Agreed)
	for i := 0; i < 4; i++ {
		h.rotate()
	}
	grown := h.rings["p"].curMax
	if grown <= opts.MaxPerToken {
		t.Fatalf("budget did not grow while loss-free: curMax = %d", grown)
	}
	h.dropData = func(to model.ProcessID, _ wire.Data) bool { return to == "q" }
	for i := 0; i < 6; i++ {
		h.rotate()
	}
	if got := h.rings["p"].curMax; got != opts.MaxPerToken {
		t.Fatalf("curMax = %d after persistent loss, want the floor %d (was %d)", got, opts.MaxPerToken, grown)
	}
}

// TestTokenRtrListsExactlyTheGaps checks the retransmission request list is
// built from the gap ranges: exactly the missing sequence numbers, sorted.
func TestTokenRtrListsExactlyTheGaps(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		return to == "q" && (d.Seq == 2 || d.Seq == 4)
	}
	h.submit("p", 5, model.Agreed)
	h.rotate()
	// The token has completed q's visit: its requests are q's gaps.
	if fmt.Sprint(h.token.Rtr) != "[{2 2} {4 4}]" {
		t.Fatalf("token.Rtr = %v, want [{2 2} {4 4}]", h.token.Rtr)
	}
}

// TestTokenVisitMixesRetransmissionsAndFreshSends checks one visit's
// broadcast list carries requested retransmissions first, then newly
// sequenced messages — the mixed batch the transport packs into a single
// packet.
func TestTokenVisitMixesRetransmissionsAndFreshSends(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	p := New("p", cfg, DefaultOptions())
	q := New("q", cfg, DefaultOptions())
	sub := func(r *Ring, n int) {
		for i := 0; i < n; i++ {
			r.Submit(Pending{ID: model.MessageID{Sender: r.self, SenderSeq: uint64(100 + i)}, Service: model.Agreed})
		}
	}
	sub(p, 2)
	res := p.OnToken(p.InitialToken())
	if len(res.Sent) != 2 {
		t.Fatalf("sequenced %d, want 2", len(res.Sent))
	}
	// q never receives the data, only the token: it requests 1 and 2.
	res = q.OnToken(res.Forward)
	if fmt.Sprint(res.Forward.Rtr) != "[{1 2}]" {
		t.Fatalf("q requested %v, want [{1 2}]", res.Forward.Rtr)
	}
	sub(p, 2)
	res = p.OnToken(res.Forward)
	if len(res.Broadcasts) != 4 || len(res.Sent) != 2 {
		t.Fatalf("broadcasts %d sent %d, want 4 and 2", len(res.Broadcasts), len(res.Sent))
	}
	for i, d := range res.Broadcasts {
		wantRetrans := i < 2
		if d.Retrans != wantRetrans {
			t.Fatalf("broadcast %d (seq %d) Retrans = %v, want %v", i, d.Seq, d.Retrans, wantRetrans)
		}
	}
}

// TestRestoreWithGapsRequestsMissingTail checks a restored log with holes
// regenerates the gap ranges: the first forwarded token re-requests exactly
// the missing messages.
func TestRestoreWithGapsRequestsMissingTail(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	mk := func(seq uint64) wire.Data {
		return wire.Data{ID: model.MessageID{Sender: "q", SenderSeq: seq}, Ring: cfg.ID, Seq: seq, Service: model.Agreed}
	}
	r.Restore(map[uint64]wire.Data{1: mk(1), 3: mk(3), 6: mk(6)}, 1, 1, 7, 0)
	st := r.Snapshot()
	if st.MyAru != 1 || st.HighestSeen != 7 {
		t.Fatalf("restored snapshot %+v", st)
	}
	if fmt.Sprint(st.Have) != "[3 6]" {
		t.Fatalf("Have = %v, want [3 6]", st.Have)
	}
	res := r.OnToken(wire.Token{Ring: cfg.ID, TokenID: 1, Seq: 7, Aru: 1, AruID: "q"})
	if fmt.Sprint(res.Forward.Rtr) != "[{2 2} {4 5} {7 7}]" {
		t.Fatalf("token.Rtr = %v, want [{2 2} {4 5} {7 7}]", res.Forward.Rtr)
	}
}

func TestCausalOrderPreservedByVC(t *testing.T) {
	// q delivers p's message then sends its own: the VCs must order.
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Agreed)
	h.rotate()
	h.submit("q", 1, model.Agreed)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	ds := h.delivered["p"]
	if len(ds) != 2 {
		t.Fatalf("p delivered %d, want 2", len(ds))
	}
	if !ds[0].VC.HappenedBefore(ds[1].VC) {
		t.Fatalf("VC %v should precede %v", ds[0].VC, ds[1].VC)
	}
}

func TestRandomLossConvergesToSameOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHarness(t, "a", "b", "c", "d")
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		return rng.Float64() < 0.2
	}
	for round := 0; round < 10; round++ {
		for _, id := range h.order {
			h.rings[id].Submit(Pending{
				ID:      model.MessageID{Sender: id, SenderSeq: uint64(round + 1)},
				Service: model.Agreed,
				Payload: []byte(fmt.Sprintf("%s/%d", id, round)),
			})
		}
		h.rotate()
	}
	h.dropData = nil
	for i := 0; i < 10; i++ {
		h.rotate()
	}
	ref := payloads(h.delivered["a"])
	if len(ref) != 40 {
		t.Fatalf("a delivered %d, want 40", len(ref))
	}
	for _, id := range h.order[1:] {
		if fmt.Sprint(payloads(h.delivered[id])) != fmt.Sprint(ref) {
			t.Fatalf("%s order differs from a", id)
		}
	}
}

// TestRestoreAfterBitRotRequestsDroppedEntries is the end-to-end
// stable→totem regression for in-place log corruption: a bit-flipped
// entry in the middle of the persisted log is rejected by the store's
// checksums at LoadChecked, leaving a hole *below* the received
// watermark. Restore must regenerate the gap range, the next token must
// re-request exactly the dropped sequence number, and delivery must stay
// in order — everything below the hole delivers, nothing above it does
// until the retransmission arrives.
func TestRestoreAfterBitRotRequestsDroppedEntries(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	mk := func(seq uint64) wire.Data {
		return wire.Data{
			ID:   model.MessageID{Sender: "q", SenderSeq: seq},
			Ring: cfg.ID, Seq: seq, Service: model.Agreed,
			Payload: []byte{byte(seq)},
		}
	}
	st := &stable.Store{}
	for seq := uint64(1); seq <= 4; seq++ {
		st.PutLog(mk(seq))
	}
	// Rot the highest entry written so far (seq 4), then keep appending:
	// the damage ends up mid-log, below the eventual watermark.
	if n := st.FlipLogBits(1); n != 1 {
		t.Fatalf("FlipLogBits corrupted %d entries, want 1", n)
	}
	for seq := uint64(5); seq <= 8; seq++ {
		st.PutLog(mk(seq))
	}

	rec, errs := st.LoadChecked()
	if len(errs) != 1 {
		t.Fatalf("LoadChecked errors = %v, want exactly one rejection", errs)
	}
	if _, ok := rec.Log[4]; ok {
		t.Fatal("rotted entry seq 4 survived LoadChecked")
	}
	if len(rec.Log) != 7 {
		t.Fatalf("cleaned log holds %d entries, want 7", len(rec.Log))
	}

	// The process had delivered up to 1 before the crash; the hole at 4
	// is below the highest-seen watermark 8.
	r := New("p", cfg, DefaultOptions())
	r.Restore(rec.Log, 1, 1, 8, 0)
	res := r.OnToken(wire.Token{Ring: cfg.ID, TokenID: 1, Seq: 8, Aru: 1, AruID: "q"})
	if fmt.Sprint(res.Forward.Rtr) != "[{4 4}]" {
		t.Fatalf("token.Rtr = %v, want [{4 4}]", res.Forward.Rtr)
	}
	// Agreed delivery halts at the hole: 2 and 3 deliver, 5..8 must not.
	if got := seqsOf(res.Deliveries); fmt.Sprint(got) != "[2 3]" {
		t.Fatalf("deliveries after restore = %v, want [2 3]", got)
	}
	// The retransmission arrives: delivery resumes in order, no skips.
	delivered := seqsOf(r.OnData(mk(4)))
	if fmt.Sprint(delivered) != "[4 5 6 7 8]" {
		t.Fatalf("deliveries after retransmission = %v, want [4 5 6 7 8]", delivered)
	}
}

// seqsOf projects data messages onto their ring sequence numbers.
func seqsOf(ds []wire.Data) []uint64 {
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Seq
	}
	return out
}

package totem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// harness drives a set of rings by hand, playing the network: tokens are
// forwarded to successors and broadcasts fanned out to all members,
// optionally with loss.
type harness struct {
	t     *testing.T
	rings map[model.ProcessID]*Ring
	order []model.ProcessID
	// delivered records payloads per process in delivery order.
	delivered map[model.ProcessID][]wire.Data
	// dropData, when set, decides whether a data broadcast copy is lost.
	dropData func(to model.ProcessID, d wire.Data) bool
	token    wire.Token
	holder   int // index into order of the process about to receive token
}

func newHarness(t *testing.T, ids ...model.ProcessID) *harness {
	cfg := model.Configuration{ID: model.RegularID(1, ids[0]), Members: model.NewProcessSet(ids...)}
	h := &harness{
		t:         t,
		rings:     make(map[model.ProcessID]*Ring),
		delivered: make(map[model.ProcessID][]wire.Data),
	}
	h.order = cfg.Members.Members()
	for _, id := range h.order {
		h.rings[id] = New(id, cfg, DefaultOptions())
	}
	h.token = h.rings[h.order[0]].InitialToken()
	return h
}

// rotate performs one full token rotation.
func (h *harness) rotate() {
	for range h.order {
		id := h.order[h.holder]
		r := h.rings[id]
		res := r.OnToken(h.token)
		if !res.Accepted {
			h.t.Fatalf("%s rejected token %v", id, h.token)
		}
		h.record(id, res.Deliveries)
		for _, d := range res.Broadcasts {
			for _, to := range h.order {
				if to == id {
					continue // originator already holds it
				}
				if h.dropData != nil && h.dropData(to, d) {
					continue
				}
				h.record(to, h.rings[to].OnData(d))
			}
		}
		h.token = res.Forward
		h.holder = (h.holder + 1) % len(h.order)
	}
}

func (h *harness) record(id model.ProcessID, ds []wire.Data) {
	h.delivered[id] = append(h.delivered[id], ds...)
}

func (h *harness) submit(id model.ProcessID, n int, svc model.Service) {
	r := h.rings[id]
	for i := 0; i < n; i++ {
		r.Submit(Pending{
			ID:      model.MessageID{Sender: id, SenderSeq: uint64(len(h.delivered[id]) + i + 1000)},
			Service: svc,
			Payload: []byte(fmt.Sprintf("%s-%d", id, i)),
		})
	}
}

func payloads(ds []wire.Data) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = string(d.Payload)
	}
	return out
}

func TestAgreedDeliveryTotalOrder(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	h.submit("p", 3, model.Agreed)
	h.submit("q", 2, model.Agreed)
	for i := 0; i < 4; i++ {
		h.rotate()
	}
	ref := payloads(h.delivered["p"])
	if len(ref) != 5 {
		t.Fatalf("p delivered %v, want all 5", ref)
	}
	for _, id := range []model.ProcessID{"q", "r"} {
		got := payloads(h.delivered[id])
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("%s delivered %v, p delivered %v: total order violated", id, got, ref)
		}
	}
}

func TestSeqsAreContiguousFromOne(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 2, model.Agreed)
	h.submit("q", 2, model.Agreed)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	for i, d := range h.delivered["p"] {
		if d.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d", i, d.Seq)
		}
	}
}

func TestSafeDeliveryNeedsTwoVisits(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	h.submit("p", 1, model.Safe)
	h.rotate()
	// After one rotation the message is sequenced and received
	// everywhere but cannot yet be safe anywhere.
	for id, ds := range h.delivered {
		if len(ds) != 0 {
			t.Fatalf("%s delivered %v before message was safe", id, payloads(ds))
		}
	}
	h.rotate()
	h.rotate()
	for _, id := range h.order {
		if len(h.delivered[id]) != 1 {
			t.Fatalf("%s delivered %v, want the safe message", id, payloads(h.delivered[id]))
		}
	}
}

func TestBlockedSafeMessageBlocksSuccessors(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Safe)
	h.submit("q", 1, model.Agreed)
	h.rotate()
	// The agreed message is sequenced after the safe one and must not
	// jump the queue even though it needs no acknowledgment.
	for id, ds := range h.delivered {
		for _, d := range ds {
			if d.Service == model.Agreed {
				t.Fatalf("%s delivered agreed message before preceding safe message", id)
			}
		}
	}
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	got := payloads(h.delivered["q"])
	if len(got) != 2 || got[0] != "p-0" {
		t.Fatalf("q delivered %v, want safe first then agreed", got)
	}
}

func TestRetransmissionFillsGaps(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	// r loses every first copy of p's data.
	lost := map[uint64]bool{}
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		if to == "r" && !d.Retrans && !lost[d.Seq] {
			lost[d.Seq] = true
			return true
		}
		return false
	}
	h.submit("p", 5, model.Agreed)
	for i := 0; i < 5; i++ {
		h.rotate()
	}
	got := payloads(h.delivered["r"])
	if len(got) != 5 {
		t.Fatalf("r delivered %v, want all 5 after retransmission", got)
	}
	want := payloads(h.delivered["p"])
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("r delivered %v, p delivered %v", got, want)
	}
}

func TestSafeNotDeliveredWhileMemberMissingMessage(t *testing.T) {
	h := newHarness(t, "p", "q", "r")
	// r never receives seq 1 (not even retransmissions).
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		return to == "r" && d.Seq == 1
	}
	h.submit("p", 1, model.Safe)
	for i := 0; i < 6; i++ {
		h.rotate()
	}
	for _, id := range h.order {
		if n := len(h.delivered[id]); n != 0 {
			t.Fatalf("%s delivered %d messages although r never received seq 1", id, n)
		}
	}
}

func TestStaleTokenRejected(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.rotate()
	stale := wire.Token{Ring: h.rings["p"].Config().ID, TokenID: 1}
	if res := h.rings["p"].OnToken(stale); res.Accepted {
		t.Fatal("stale token must be rejected")
	}
	wrongRing := wire.Token{Ring: model.RegularID(99, "z"), TokenID: 100}
	if res := h.rings["p"].OnToken(wrongRing); res.Accepted {
		t.Fatal("token for another ring must be rejected")
	}
}

func TestDuplicateDataIgnored(t *testing.T) {
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Agreed)
	h.rotate()
	d := h.rings["q"].Messages()[1]
	if got := h.rings["q"].OnData(d); got != nil {
		t.Fatalf("duplicate data redelivered: %v", got)
	}
	if h.rings["q"].Snapshot().MyAru != 1 {
		t.Fatal("aru should be unaffected by duplicates")
	}
}

func TestSingletonRingDeliversOwnSafeMessages(t *testing.T) {
	h := newHarness(t, "p")
	h.submit("p", 2, model.Safe)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	if got := payloads(h.delivered["p"]); len(got) != 2 {
		t.Fatalf("singleton delivered %v, want both", got)
	}
}

func TestFlowControlWindow(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p")}
	r := New("p", cfg, Options{MaxPerToken: 100, Window: 4})
	for i := 0; i < 50; i++ {
		r.Submit(Pending{ID: model.MessageID{Sender: "p", SenderSeq: uint64(i + 1)}, Service: model.Agreed})
	}
	res := r.OnToken(r.InitialToken())
	if len(res.Sent) != 4 {
		t.Fatalf("sequenced %d, want window of 4", len(res.Sent))
	}
	if r.PendingCount() != 46 {
		t.Fatalf("pending %d, want 46", r.PendingCount())
	}
}

func TestMaxPerTokenLimit(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p")}
	r := New("p", cfg, Options{MaxPerToken: 3, Window: 1000})
	for i := 0; i < 10; i++ {
		r.Submit(Pending{ID: model.MessageID{Sender: "p", SenderSeq: uint64(i + 1)}, Service: model.Agreed})
	}
	res := r.OnToken(r.InitialToken())
	if len(res.Sent) != 3 {
		t.Fatalf("sequenced %d, want 3", len(res.Sent))
	}
}

func TestSuccessorWrapsAround(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "a"), Members: model.NewProcessSet("a", "b", "c")}
	if s := New("c", cfg, DefaultOptions()).Successor(); s != "a" {
		t.Fatalf("successor of c = %s, want a", s)
	}
	if s := New("a", cfg, DefaultOptions()).Successor(); s != "b" {
		t.Fatalf("successor of a = %s, want b", s)
	}
}

func TestSnapshotReportsHaveBeyondAru(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	mk := func(seq uint64) wire.Data {
		return wire.Data{ID: model.MessageID{Sender: "q", SenderSeq: seq}, Ring: cfg.ID, Seq: seq, Service: model.Agreed}
	}
	r.OnData(mk(1))
	r.OnData(mk(3))
	r.OnData(mk(5))
	st := r.Snapshot()
	if st.MyAru != 1 {
		t.Fatalf("MyAru = %d, want 1", st.MyAru)
	}
	if fmt.Sprint(st.Have) != "[3 5]" {
		t.Fatalf("Have = %v, want [3 5]", st.Have)
	}
	if st.HighestSeen != 5 {
		t.Fatalf("HighestSeen = %d, want 5", st.HighestSeen)
	}
}

func TestRestoreSeedsState(t *testing.T) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	log := map[uint64]wire.Data{
		1: {ID: model.MessageID{Sender: "q", SenderSeq: 1}, Ring: cfg.ID, Seq: 1, Service: model.Agreed},
		2: {ID: model.MessageID{Sender: "q", SenderSeq: 2}, Ring: cfg.ID, Seq: 2, Service: model.Agreed},
	}
	r.Restore(log, 1, 1, 2)
	st := r.Snapshot()
	if st.MyAru != 2 || st.DeliveredUpTo != 1 || st.SafeBound != 1 || st.HighestSeen != 2 {
		t.Fatalf("restored snapshot %+v", st)
	}
}

func TestCausalOrderPreservedByVC(t *testing.T) {
	// q delivers p's message then sends its own: the VCs must order.
	h := newHarness(t, "p", "q")
	h.submit("p", 1, model.Agreed)
	h.rotate()
	h.submit("q", 1, model.Agreed)
	for i := 0; i < 3; i++ {
		h.rotate()
	}
	ds := h.delivered["p"]
	if len(ds) != 2 {
		t.Fatalf("p delivered %d, want 2", len(ds))
	}
	if !ds[0].VC.HappenedBefore(ds[1].VC) {
		t.Fatalf("VC %v should precede %v", ds[0].VC, ds[1].VC)
	}
}

func TestRandomLossConvergesToSameOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHarness(t, "a", "b", "c", "d")
	h.dropData = func(to model.ProcessID, d wire.Data) bool {
		return rng.Float64() < 0.2
	}
	for round := 0; round < 10; round++ {
		for _, id := range h.order {
			h.rings[id].Submit(Pending{
				ID:      model.MessageID{Sender: id, SenderSeq: uint64(round + 1)},
				Service: model.Agreed,
				Payload: []byte(fmt.Sprintf("%s/%d", id, round)),
			})
		}
		h.rotate()
	}
	h.dropData = nil
	for i := 0; i < 10; i++ {
		h.rotate()
	}
	ref := payloads(h.delivered["a"])
	if len(ref) != 40 {
		t.Fatalf("a delivered %d, want 40", len(ref))
	}
	for _, id := range h.order[1:] {
		if fmt.Sprint(payloads(h.delivered[id])) != fmt.Sprint(ref) {
			t.Fatalf("%s order differs from a", id)
		}
	}
}

package totem

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// The gap list is the load-bearing data structure of the flattened data
// path: it backs the receipt watermark (advanceAru), the range-coded
// retransmission requests on the token (OnToken's Rtr copy) and the
// holey-log reconstruction after a crash (Restore). These tests fuzz the
// three mutators — store, noteAssigned, fillGap — against a trivial
// set-based reference model and check the representation invariants the
// wire format relies on after every step.

// gapRef is the reference model: the set of present sequence numbers and
// the highest number known assigned. Everything the gap list encodes is
// derivable from these two.
type gapRef struct {
	present map[uint64]bool
	high    uint64
	trimmed uint64
}

func (m *gapRef) missing() []uint64 {
	var out []uint64
	for s := m.trimmed + 1; s <= m.high; s++ {
		if !m.present[s] {
			out = append(out, s)
		}
	}
	return out
}

func (m *gapRef) aru() uint64 {
	for s := m.trimmed + 1; s <= m.high; s++ {
		if !m.present[s] {
			return s - 1
		}
	}
	return m.high
}

func propRing() *Ring {
	ids := []model.ProcessID{"p1", "p2", "p3"}
	cfg := model.Configuration{ID: model.RegularID(1, ids[0]), Members: model.NewProcessSet(ids...)}
	return New(ids[0], cfg, DefaultOptions())
}

func propData(seq uint64) wire.Data {
	return wire.Data{
		ID:      model.MessageID{Sender: "p1", SenderSeq: seq},
		Ring:    model.RegularID(1, "p1"),
		Seq:     seq,
		Service: model.Agreed,
		Payload: []byte{byte(seq)},
	}
}

// checkGapInvariants verifies the representation invariants of the gap
// list against the reference model:
//
//  1. ranges are non-empty, sorted and disjoint (with a filled number
//     between adjacent ranges, so no two ranges can be coalesced)
//  2. the union of the ranges is exactly the set of missing numbers in
//     (trimmedUpTo, highestSeen]
//  3. myAru is the number just below the first gap (highestSeen when
//     there is none) — the contiguous receipt watermark
//  4. present() agrees with the reference set
func checkGapInvariants(t *testing.T, r *Ring, ref *gapRef, step int) {
	t.Helper()
	for i, g := range r.gaps {
		if g.lo > g.hi {
			t.Fatalf("step %d: gap %d empty: [%d,%d]", step, i, g.lo, g.hi)
		}
		if g.lo <= r.trimmedUpTo {
			t.Fatalf("step %d: gap %d [%d,%d] reaches into trimmed prefix (trimmed=%d)", step, i, g.lo, g.hi, r.trimmedUpTo)
		}
		if i > 0 && r.gaps[i-1].hi+1 >= g.lo {
			t.Fatalf("step %d: gaps %d,%d not sorted/disjoint: [%d,%d] then [%d,%d]",
				step, i-1, i, r.gaps[i-1].lo, r.gaps[i-1].hi, g.lo, g.hi)
		}
	}
	if r.highestSeen != ref.high {
		t.Fatalf("step %d: highestSeen=%d want %d", step, r.highestSeen, ref.high)
	}
	var inGaps []uint64
	for _, g := range r.gaps {
		for s := g.lo; s <= g.hi; s++ {
			inGaps = append(inGaps, s)
		}
	}
	missing := ref.missing()
	if len(inGaps) != len(missing) {
		t.Fatalf("step %d: gap list covers %d numbers %v, reference misses %d %v",
			step, len(inGaps), inGaps, len(missing), missing)
	}
	for i := range missing {
		if inGaps[i] != missing[i] {
			t.Fatalf("step %d: gap list %v != reference missing set %v", step, inGaps, missing)
		}
	}
	if want := ref.aru(); r.myAru != want {
		t.Fatalf("step %d: myAru=%d want %d (gaps %v)", step, r.myAru, want, r.gaps)
	}
	for s := ref.trimmed + 1; s <= ref.high+2; s++ {
		if got, want := r.present(s), ref.present[s]; got != want {
			t.Fatalf("step %d: present(%d)=%v want %v", step, s, got, want)
		}
	}
}

// TestGapListPropertyRandomOps fuzzes interleaved store and noteAssigned
// calls (store exercises fillGap internally for every out-of-order
// receipt) against the reference model.
func TestGapListPropertyRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := propRing()
		ref := &gapRef{present: map[uint64]bool{}}
		for step := 0; step < 2000; step++ {
			switch rng.Intn(10) {
			case 0:
				// Token observation: numbers up to h are assigned.
				h := ref.high + uint64(rng.Intn(8))
				r.noteAssigned(h)
				if h > ref.high {
					ref.high = h
				}
			default:
				// Receipt, biased toward the open window but free to
				// land on duplicates and to leap past highestSeen.
				seq := uint64(1)
				if w := ref.high + 6; w > 1 {
					seq = 1 + uint64(rng.Intn(int(w)))
				}
				fresh := r.store(propData(seq))
				if want := !ref.present[seq]; fresh != want {
					t.Fatalf("seed %d step %d: store(%d) fresh=%v want %v", seed, step, seq, fresh, want)
				}
				ref.present[seq] = true
				if seq > ref.high {
					ref.high = seq
				}
			}
			checkGapInvariants(t, r, ref, step)
		}
	}
}

// TestRestoreHoleyLogProperty fuzzes Restore with randomly holey logs and
// random trimmed prefixes: the rebuilt gap list must request exactly the
// missing suffix numbers, and the trimmed prefix must be neither stored
// nor treated as missing.
func TestRestoreHoleyLogProperty(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		high := uint64(1 + rng.Intn(200))
		trimmed := uint64(0)
		if rng.Intn(2) == 0 {
			trimmed = uint64(rng.Intn(int(high)))
		}
		ref := &gapRef{present: map[uint64]bool{}, high: high, trimmed: trimmed}
		log := map[uint64]wire.Data{}
		for s := trimmed + 1; s <= high; s++ {
			if rng.Intn(3) > 0 {
				log[s] = propData(s)
				ref.present[s] = true
			}
		}
		delivered := trimmed + uint64(rng.Intn(int(high-trimmed)+1))
		r := propRing()
		r.Restore(log, delivered, delivered, high, trimmed)
		checkGapInvariants(t, r, ref, int(seed))
		if r.deliveredUpTo < trimmed {
			t.Fatalf("seed %d: deliveredUpTo=%d below trimmed=%d", seed, r.deliveredUpTo, trimmed)
		}
	}
}

// TestTokenRtrRangeCodedRoundTrip drives the range-coded retransmission
// request through a full wire round trip: a ring restored from a holey
// log must emit its missing set as sorted disjoint ranges on the
// forwarded token, a peer holding the full log must serve exactly the
// requested messages, and feeding those back must close every gap.
func TestTokenRtrRangeCodedRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		high := uint64(20 + rng.Intn(150))

		full := map[uint64]wire.Data{}
		holey := map[uint64]wire.Data{}
		missing := map[uint64]bool{}
		for s := uint64(1); s <= high; s++ {
			full[s] = propData(s)
			if rng.Intn(4) == 0 {
				missing[s] = true
			} else {
				holey[s] = propData(s)
			}
		}

		requester := propRing()
		requester.Restore(holey, 0, 0, high, 0)

		res := requester.OnToken(wire.Token{Ring: requester.cfg.ID, TokenID: 1, Seq: high, Aru: requester.myAru})
		if !res.Accepted {
			t.Fatalf("seed %d: requester rejected token", seed)
		}
		fwd := res.Forward

		// The wire form is range-coded: sorted, disjoint, non-empty, and
		// its expansion is exactly the missing set.
		var requested []uint64
		for i, g := range fwd.Rtr {
			if g.Lo > g.Hi {
				t.Fatalf("seed %d: empty wire range [%d,%d]", seed, g.Lo, g.Hi)
			}
			if i > 0 && fwd.Rtr[i-1].Hi+1 >= g.Lo {
				t.Fatalf("seed %d: wire ranges not sorted/disjoint: %v", seed, fwd.Rtr)
			}
			for s := g.Lo; s <= g.Hi; s++ {
				requested = append(requested, s)
			}
		}
		if uint64(len(requested)) != fwd.RtrCount() {
			t.Fatalf("seed %d: RtrCount=%d but expansion has %d", seed, fwd.RtrCount(), len(requested))
		}
		if len(requested) != len(missing) {
			t.Fatalf("seed %d: requested %d seqs, missing %d", seed, len(requested), len(missing))
		}
		for _, s := range requested {
			if !missing[s] {
				t.Fatalf("seed %d: requested %d which is not missing", seed, s)
			}
		}

		// A peer with the full log serves exactly the requested messages.
		peer := propRing()
		peer.Restore(full, 0, 0, high, 0)
		pres := peer.OnToken(fwd)
		if !pres.Accepted {
			t.Fatalf("seed %d: peer rejected forwarded token", seed)
		}
		served := map[uint64]bool{}
		for _, d := range pres.Broadcasts {
			if !d.Retrans {
				t.Fatalf("seed %d: served seq %d not marked Retrans", seed, d.Seq)
			}
			served[d.Seq] = true
		}
		if len(served) != len(missing) {
			t.Fatalf("seed %d: peer served %d seqs, requested %d", seed, len(served), len(missing))
		}

		// Closing the loop: the retransmissions fill every gap.
		for _, d := range pres.Broadcasts {
			requester.OnData(d)
		}
		if len(requester.gaps) != 0 || requester.myAru != high {
			t.Fatalf("seed %d: after retransmission gaps=%v myAru=%d want none/%d",
				seed, requester.gaps, requester.myAru, high)
		}
	}
}

package totem

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// benchRing drives a ring of n members synchronously (no network) with
// saturated senders and returns messages delivered per token rotation —
// the flow-control ablation DESIGN.md calls out: delivery rate is bounded
// by MaxPerToken × members per rotation, and the window caps outstanding
// unacknowledged messages.
func benchRing(b *testing.B, n int, opts Options) {
	ids := make([]model.ProcessID, n)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	cfg := model.Configuration{ID: model.RegularID(1, ids[0]), Members: model.NewProcessSet(ids...)}
	rings := make([]*Ring, n)
	for i, id := range ids {
		rings[i] = New(id, cfg, opts)
	}
	tok := rings[0].InitialToken()
	seq := uint64(0)
	delivered := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rings[i%n]
		// Keep the queue saturated.
		for r.PendingCount() < opts.MaxPerToken {
			seq++
			r.Submit(Pending{ID: model.MessageID{Sender: r.self, SenderSeq: seq}, Service: model.Safe})
		}
		res := r.OnToken(tok)
		if !res.Accepted {
			b.Fatal("token rejected")
		}
		for _, d := range res.Broadcasts {
			for j, other := range rings {
				if j != i%n {
					other.OnData(d)
				}
			}
		}
		delivered += len(res.Deliveries)
		tok = res.Forward
	}
	b.StopTimer()
	if b.N > n {
		b.ReportMetric(float64(delivered)/(float64(b.N)/float64(n)), "msgs/rotation")
	}
}

func BenchmarkRingSaturated(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			benchRing(b, n, DefaultOptions())
		})
	}
}

// BenchmarkRingAblationMaxPerToken shows the batching knob: msgs/rotation
// scales with MaxPerToken until the window binds.
func BenchmarkRingAblationMaxPerToken(b *testing.B) {
	for _, mpt := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("maxPerToken=%d", mpt), func(b *testing.B) {
			benchRing(b, 4, Options{MaxPerToken: mpt, Window: 1024})
		})
	}
}

// BenchmarkRingAblationWindow shows the flow-control window: a small
// window throttles sequencing regardless of batching.
func BenchmarkRingAblationWindow(b *testing.B) {
	for _, w := range []uint64{8, 64, 512} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			benchRing(b, 4, Options{MaxPerToken: 64, Window: w})
		})
	}
}

// BenchmarkOnData measures the per-message ingest cost.
func BenchmarkOnData(b *testing.B) {
	cfg := model.Configuration{ID: model.RegularID(1, "p"), Members: model.NewProcessSet("p", "q")}
	r := New("p", cfg, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnData(wire.Data{
			ID:      model.MessageID{Sender: "q", SenderSeq: uint64(i + 1)},
			Ring:    cfg.ID,
			Seq:     uint64(i + 1),
			Service: model.Agreed,
		})
	}
}

// Package totem implements the operational half of the Totem single-ring
// protocol: token-passing total ordering of broadcast messages within one
// regular configuration, with retransmission, flow control, and the
// aru-based acknowledgment mechanism from which both agreed and safe
// delivery are derived.
//
// A message is delivered in agreed order as soon as every message with a
// smaller sequence number has been delivered. A message is delivered in
// safe order once the process has observed the token's aru ("all received
// up to") at or above the message's sequence number on two successive token
// visits: between those visits the token made a full rotation, and because
// a process only ever forwards the token with an aru no greater than its
// own contiguous-receipt watermark, every ring member must have received
// the message. This is the acknowledgment described in Step 1 of the EVS
// algorithm (Section 3 of the paper).
//
// The receive log is a slice indexed by sequence number (the token assigns
// sequence numbers contiguously from 1, so the log is dense), with the
// missing numbers tracked as a short list of gap ranges. Receipt, the
// retransmission scan, aru advancement and delivery are all O(1) probes;
// a token visit is linear only in the work it actually performs.
//
// The Ring type is a pure state machine: it consumes received wire messages
// and emits messages to transmit and messages to deliver. Timers, the
// network, stable storage and the recovery algorithm live in other
// packages.
package totem

import (
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Options tune the ordering protocol.
type Options struct {
	// MaxPerToken bounds the number of new messages sequenced per token
	// visit. With Adaptive set it is the floor of the self-tuned budget.
	MaxPerToken int
	// Window bounds token.Seq - token.Aru: no new messages are
	// sequenced while more than Window messages are unacknowledged.
	// With Adaptive set the effective window also scales with the
	// current budget so a full rotation of sends always fits.
	Window uint64
	// Adaptive enables Totem-style self-tuning of the per-visit budget:
	// it grows multiplicatively while the ring is loss-free and the
	// backlog is budget-limited, and collapses back toward MaxPerToken
	// under retransmission pressure.
	Adaptive bool
	// AdaptiveMax caps the self-tuned budget (default 8×MaxPerToken).
	AdaptiveMax int
}

// DefaultOptions returns the tuning used by the test and benchmark
// harnesses.
func DefaultOptions() Options {
	return Options{MaxPerToken: 16, Window: 256, Adaptive: true, AdaptiveMax: 128}
}

// Pending is an application message awaiting sequencing.
type Pending struct {
	ID      model.MessageID
	Service model.Service
	Payload []byte
}

// TokenResult is everything a token visit produces.
//
// The Broadcasts, Sent and Deliveries slices are per-ring scratch buffers,
// valid only until the next call into the Ring: a caller that hands them to
// anything outliving the visit (an asynchronous transport, a retained
// trace) must copy them first. The wire.Data elements themselves are
// immutable and may be aliased freely.
type TokenResult struct {
	// Accepted is false when the token was stale or for another ring;
	// nothing else is set in that case.
	Accepted bool
	// Broadcasts are data messages to broadcast: retransmissions
	// requested via the token followed by newly sequenced messages.
	// The transport may pack them into a single packet (wire.DataBatch).
	Broadcasts []wire.Data
	// Sent are the newly sequenced messages (a subset of Broadcasts);
	// each is a send event of the formal model.
	Sent []wire.Data
	// Forward is the updated token to unicast to the ring successor.
	Forward wire.Token
	// Deliveries are messages that became deliverable, in total order.
	Deliveries []wire.Data
}

// seqRange is a closed range [Lo, Hi] of sequence numbers.
type seqRange struct {
	lo, hi uint64
}

// stampArenaChunk is how many stamps one arena allocation amortises.
const stampArenaChunk = 64

// Ring is the per-process ordering state for one regular configuration.
type Ring struct {
	self model.ProcessID
	cfg  model.Configuration
	opts Options

	// log[i] holds the message with sequence number trimmedUpTo+i+1; a
	// zero Seq marks an entry not yet received. Sequence numbers are
	// assigned contiguously from 1 by the token, so the log is dense.
	// The prefix at or below both the two-visit safe bound and the
	// delivery watermark is trimmed away (see maybeTrim): safety
	// certifies every member received it, so no operational
	// retransmission and no recovery rebroadcast (Step 5.a) can ever
	// name it — a merging peer's receipt watermark is at or above this
	// ring's safe bound by the same certificate. Live memory is thereby
	// bounded by the flow-control window, not the run length.
	log         []wire.Data
	trimmedUpTo uint64
	stored      int
	// gaps lists the missing sequence numbers in (myAru, highestSeen]
	// as sorted, disjoint, non-empty ranges.
	gaps          []seqRange
	myAru         uint64 // contiguous receipt watermark
	highestSeen   uint64 // highest sequence number known assigned
	deliveredUpTo uint64
	safeBound     uint64 // two-visit safe watermark
	lastFwdAru    uint64 // aru on the token this process last forwarded
	everForwarded bool
	lastTokenID   uint64
	pending       []Pending
	// prevHigh and prevPrevHigh are highestSeen at the last two token
	// forwards: sequence numbers at or below prevPrevHigh were assigned
	// two full rotations ago, so a message still missing from that range
	// was lost rather than merely overtaken by the token in flight. This
	// is the loss signal the adaptive flow control shrinks on.
	prevHigh, prevPrevHigh uint64

	// Causality witness: a dense working clock over the ring members,
	// snapshotted per send from an arena (one allocation per
	// stampArenaChunk sends instead of one map clone per send).
	uni     *vclock.Universe
	vc      vclock.Dense
	selfIdx int
	arena   []int32

	curMax int // adaptive per-visit sequencing budget

	// Scratch buffers backing TokenResult and collectDeliverable: reused
	// across token visits so a steady-state visit allocates nothing.
	// Contents are valid until the next call into the Ring.
	bcastScratch   []wire.Data
	sentScratch    []wire.Data
	deliverScratch []wire.Data
	freshScratch   []wire.Data

	// met is the process's observability scope (nil disables: every obs
	// call is a nil-safe no-op costing one branch and zero allocations).
	met *obs.Metrics
}

// New creates the ordering state for configuration cfg at process self.
// Received and delivered state may be seeded (recovered from stable
// storage) via the returned ring's Restore method.
func New(self model.ProcessID, cfg model.Configuration, opts Options) *Ring {
	if opts.MaxPerToken <= 0 {
		opts.MaxPerToken = DefaultOptions().MaxPerToken
	}
	if opts.Window == 0 {
		opts.Window = DefaultOptions().Window
	}
	if opts.Adaptive && opts.AdaptiveMax < opts.MaxPerToken {
		opts.AdaptiveMax = 8 * opts.MaxPerToken
	}
	uni := vclock.NewUniverse(cfg.Members.Members())
	return &Ring{
		self:    self,
		cfg:     cfg,
		opts:    opts,
		uni:     uni,
		vc:      uni.NewDense(),
		selfIdx: uni.Index(self),
		curMax:  opts.MaxPerToken,
	}
}

// SetMetrics attaches the process's observability scope (nil disables).
func (r *Ring) SetMetrics(m *obs.Metrics) { r.met = m }

// Config returns the ring's configuration.
func (r *Ring) Config() model.Configuration { return r.cfg }

// Successor returns the next process after self in ring order.
func (r *Ring) Successor() model.ProcessID {
	m := r.cfg.Members.Members()
	for i, id := range m {
		if id == r.self {
			return m[(i+1)%len(m)]
		}
	}
	// Self not a member: degenerate, return self.
	return r.self
}

// IsRepresentative reports whether self is the lowest-ordered member, the
// process that originates the first token.
func (r *Ring) IsRepresentative() bool {
	min, ok := r.cfg.Members.Min()
	return ok && min == r.self
}

// InitialToken returns the first token of the ring, originated by the
// representative.
func (r *Ring) InitialToken() wire.Token {
	return wire.Token{Ring: r.cfg.ID, TokenID: 1}
}

// Submit queues an application message for sequencing at the next token
// visit.
func (r *Ring) Submit(p Pending) {
	r.pending = append(r.pending, p)
}

// PendingCount returns the number of queued, not-yet-sequenced messages.
func (r *Ring) PendingCount() int { return len(r.pending) }

// TakePending removes and returns all queued messages; the EVS recovery
// algorithm carries them into the next regular configuration, where they
// are sequenced (and thus, in the formal model's terms, sent).
func (r *Ring) TakePending() []Pending {
	p := r.pending
	r.pending = nil
	return p
}

// present reports whether the message with the given sequence number is in
// the log (trimmed entries are no longer present).
func (r *Ring) present(seq uint64) bool {
	return seq > r.trimmedUpTo && seq-r.trimmedUpTo <= uint64(len(r.log)) &&
		r.log[seq-r.trimmedUpTo-1].Seq != 0
}

// get returns the logged message with the given sequence number.
func (r *Ring) get(seq uint64) (wire.Data, bool) {
	if !r.present(seq) {
		return wire.Data{}, false
	}
	return r.log[seq-r.trimmedUpTo-1], true
}

// growLog extends the log slice to cover sequence number seq.
func (r *Ring) growLog(seq uint64) {
	n := seq - r.trimmedUpTo
	if n <= uint64(cap(r.log)) {
		r.log = r.log[:n]
		return
	}
	newCap := 2 * cap(r.log)
	if uint64(newCap) < n {
		newCap = int(n)
	}
	grown := make([]wire.Data, n, newCap)
	copy(grown, r.log)
	r.log = grown
}

// trimChunk is the laziness threshold of maybeTrim: entries are discarded
// in batches so small test rings keep their full logs and the steady-state
// cost is an amortised copy, not per-visit work.
const trimChunk = 1024

// retainCushion is how far the trim bound stays behind the certified
// safe-and-delivered watermark: twice the flow-control window. The safe
// certificate proves every member *received* the prefix, but a member that
// crashes may have *delivered* less — its delivery watermark lags the
// certified bound by at most the in-flight window plus one rotation of
// assignments, both bounded by the flow-control window. Keeping two
// windows' worth of entries below the bound therefore guarantees that any
// entry a recovering member could still need to deliver (even one it lost
// to detected storage rot) survives at its peers.
func (r *Ring) retainCushion() uint64 {
	win := r.opts.Window
	if r.opts.Adaptive {
		if grown := 2 * uint64(r.cfg.Members.Size()) * uint64(r.opts.AdaptiveMax); grown > win {
			win = grown
		}
	}
	return 2 * win
}

// maybeTrim discards the log prefix that can never be needed again:
// sequence numbers a retention cushion below both the two-visit safe bound
// (certified received by every ring member, so neither an operational
// retransmission nor a recovery rebroadcast can name them — every member's
// own receipt watermark is at or above the bound) and the delivery
// watermark (never re-delivered locally). The retained window is compacted
// to the front of the same backing array, so steady state holds a
// flow-window of entries regardless of how long the ring runs.
func (r *Ring) maybeTrim() {
	bound := r.safeBound
	if r.deliveredUpTo < bound {
		bound = r.deliveredUpTo
	}
	if cushion := r.retainCushion(); bound > cushion {
		bound -= cushion
	} else {
		return
	}
	if bound <= r.trimmedUpTo || bound-r.trimmedUpTo < trimChunk {
		return
	}
	k := bound - r.trimmedUpTo
	n := copy(r.log, r.log[k:])
	tail := r.log[n:]
	for i := range tail {
		tail[i] = wire.Data{} // release payload/clock references
	}
	r.log = r.log[:n]
	r.stored -= int(k) // the trimmed prefix is below myAru: fully present
	r.trimmedUpTo = bound
}

// noteAssigned records that every sequence number up to h has been
// assigned; numbers above the previous highestSeen become (part of) the
// trailing gap until their messages arrive.
func (r *Ring) noteAssigned(h uint64) {
	if h <= r.highestSeen {
		return
	}
	lo := r.highestSeen + 1
	if n := len(r.gaps); n > 0 && r.gaps[n-1].hi+1 == lo {
		r.gaps[n-1].hi = h
	} else {
		r.gaps = append(r.gaps, seqRange{lo, h})
	}
	r.highestSeen = h
}

// fillGap removes seq from the gap list.
func (r *Ring) fillGap(seq uint64) {
	i := sort.Search(len(r.gaps), func(i int) bool { return r.gaps[i].hi >= seq })
	if i == len(r.gaps) || r.gaps[i].lo > seq {
		return
	}
	g := r.gaps[i]
	switch {
	case g.lo == seq && g.hi == seq:
		r.gaps = append(r.gaps[:i], r.gaps[i+1:]...)
	case g.lo == seq:
		r.gaps[i].lo = seq + 1
	case g.hi == seq:
		r.gaps[i].hi = seq - 1
	default:
		r.gaps = append(r.gaps, seqRange{})
		copy(r.gaps[i+1:], r.gaps[i:])
		r.gaps[i] = seqRange{g.lo, seq - 1}
		r.gaps[i+1] = seqRange{seq + 1, g.hi}
	}
}

// advanceAru derives the contiguous receipt watermark from the gap list.
func (r *Ring) advanceAru() {
	if len(r.gaps) > 0 {
		r.myAru = r.gaps[0].lo - 1
	} else {
		r.myAru = r.highestSeen
	}
}

// store inserts a received message into the log, maintaining the gap list
// and watermarks. It reports whether the message was new.
func (r *Ring) store(d wire.Data) bool {
	seq := d.Seq
	if seq <= r.trimmedUpTo || r.present(seq) {
		return false
	}
	switch {
	case seq == r.highestSeen+1:
		r.highestSeen = seq
	case seq > r.highestSeen:
		r.noteAssigned(seq - 1)
		r.highestSeen = seq
	default:
		r.fillGap(seq)
	}
	if seq-r.trimmedUpTo > uint64(len(r.log)) {
		r.growLog(seq)
	}
	r.log[seq-r.trimmedUpTo-1] = d
	r.stored++
	r.advanceAru()
	return true
}

// stamp ticks the working clock for a send and snapshots it from the
// arena: O(P) bytes copied, one allocation per stampArenaChunk sends.
//
//evs:arena
func (r *Ring) stamp() vclock.Stamp {
	if r.selfIdx >= 0 {
		r.vc[r.selfIdx]++
	}
	n := len(r.vc)
	if len(r.arena) < n {
		r.arena = make([]int32, n*stampArenaChunk)
	}
	d := vclock.Dense(r.arena[:n:n])
	r.arena = r.arena[n:]
	copy(d, r.vc)
	return vclock.Stamp{U: r.uni, D: d}
}

// mergeClock folds a delivered message's stamp into the working clock.
func (r *Ring) mergeClock(s vclock.Stamp) {
	switch {
	case s.U == nil:
	case s.U == r.uni:
		r.vc.Merge(s.D)
	default:
		// Stamp from another universe (a message restored across a
		// crash-recovery boundary): merge by identifier.
		for i, t := range s.D {
			if t == 0 {
				continue
			}
			if j := r.uni.Index(s.U.ID(i)); j >= 0 && t > r.vc[j] {
				r.vc[j] = t
			}
		}
	}
}

// OnData ingests a received data message for this ring and returns any
// messages that become deliverable, in total order. The returned slice is
// per-ring scratch, valid until the next call into the Ring.
//
//evs:arena
//evs:noalloc
func (r *Ring) OnData(d wire.Data) []wire.Data {
	if d.Ring != r.cfg.ID || d.Seq == 0 {
		return nil
	}
	if !r.store(d) {
		return nil
	}
	return r.collectDeliverable()
}

// OnDataBatch ingests every element of a received batch in one pass and
// returns the messages that became deliverable, in total order, plus the
// elements that were new to the log (the caller persists exactly those):
// one delivery scan and one persistence write per packet instead of one per
// message. Both returned slices are per-ring scratch, valid until the next
// call into the Ring.
//
//evs:arena
//evs:noalloc
func (r *Ring) OnDataBatch(ds []wire.Data) (deliveries, fresh []wire.Data) {
	fresh = r.freshScratch[:0]
	for _, d := range ds {
		if d.Ring != r.cfg.ID || d.Seq == 0 {
			continue
		}
		if r.store(d) {
			fresh = append(fresh, d)
		}
	}
	r.freshScratch = fresh
	if len(fresh) == 0 {
		return nil, nil
	}
	return r.collectDeliverable(), fresh
}

// budget returns the effective per-visit sequencing budget and flow
// window, shrinking the adaptive budget under retransmission pressure.
//
//evs:noalloc
func (r *Ring) budget(pressure bool) (int, uint64) {
	if !r.opts.Adaptive {
		return r.opts.MaxPerToken, r.opts.Window
	}
	if pressure {
		half := r.curMax / 2
		if half < r.opts.MaxPerToken {
			half = r.opts.MaxPerToken
		}
		if half != r.curMax {
			r.curMax = half
			r.met.Inc(obs.CBudgetShrinks)
			r.met.Event(obs.KBudget, uint64(r.curMax), 0)
		}
	}
	win := r.opts.Window
	if grown := 2 * uint64(r.cfg.Members.Size()) * uint64(r.curMax); grown > win {
		win = grown
	}
	return r.curMax, win
}

// growBudget raises the adaptive budget multiplicatively toward the cap.
//
//evs:noalloc
func (r *Ring) growBudget() {
	g := r.curMax + r.curMax/2
	if g <= r.curMax {
		g = r.curMax + 1
	}
	if g > r.opts.AdaptiveMax {
		g = r.opts.AdaptiveMax
	}
	if g != r.curMax {
		r.curMax = g
		r.met.Inc(obs.CBudgetGrows)
		r.met.Event(obs.KBudget, uint64(r.curMax), 0)
	}
}

// OnToken processes a token visit: it satisfies retransmission requests,
// sequences pending messages, updates the aru and the safe watermark,
// collects deliverable messages, and produces the token to forward.
//
//evs:arena
//evs:noalloc
func (r *Ring) OnToken(t wire.Token) TokenResult {
	if t.Ring != r.cfg.ID || t.TokenID <= r.lastTokenID {
		r.met.Inc(obs.CTokenStale)
		return TokenResult{}
	}
	r.lastTokenID = t.TokenID
	r.met.Inc(obs.CTokenRotations)
	res := TokenResult{
		Accepted:   true,
		Broadcasts: r.bcastScratch[:0],
		Sent:       r.sentScratch[:0],
	}

	r.noteAssigned(t.Seq)

	// Retransmission pressure collapses the adaptive budget (see
	// budget). Freshly assigned messages are routinely still in flight
	// when the token arrives — the token and the data leave a sender at
	// the same instant on independently delayed packets — so only
	// messages missing (here or at a requester) two visits after
	// assignment count as lost.
	pressure := (len(t.Rtr) > 0 && t.Rtr[0].Lo <= r.prevPrevHigh) ||
		(len(r.gaps) > 0 && r.gaps[0].lo <= r.prevPrevHigh)
	maxPer, win := r.budget(pressure)
	r.met.Observe(obs.HBudgetPerVisit, uint64(maxPer))
	r.met.Set(obs.GBudget, int64(maxPer))
	r.met.Set(obs.GWindow, int64(win))

	// Retransmit requested messages this process holds. Requests it
	// cannot satisfy name messages it is itself missing (they are ≤
	// token.Seq, so they are in the gap list) and are re-issued below.
	for _, g := range t.Rtr {
		for seq := g.Lo; seq <= g.Hi; seq++ {
			if d, ok := r.get(seq); ok {
				d.Retrans = true
				res.Broadcasts = append(res.Broadcasts, d)
				r.met.Inc(obs.CRetransServed)
			}
		}
	}

	// Sequence new messages within the flow-control window.
	for len(r.pending) > 0 && len(res.Sent) < maxPer && t.Seq-t.Aru < win {
		p := r.pending[0]
		r.pending = r.pending[1:]
		t.Seq++
		d := wire.Data{
			ID:      p.ID,
			Ring:    r.cfg.ID,
			Seq:     t.Seq,
			Service: p.Service,
			Payload: p.Payload, //lint:allow wireown Submit transfers payload ownership to the ring; the pending slot is dropped as the message is sequenced
			VC:      r.stamp(),
		}
		r.store(d)
		res.Sent = append(res.Sent, d)
		res.Broadcasts = append(res.Broadcasts, d)
	}
	if r.opts.Adaptive && !pressure && len(r.pending) > 0 &&
		len(res.Sent) == maxPer && t.Seq-t.Aru < win {
		// Loss-free and budget-limited with window headroom: grow.
		r.growBudget()
	}

	// Request retransmission of messages this process is missing: the
	// gap list is exactly the sorted, disjoint request-range list (it
	// subsumes any unsatisfied incoming requests), so the wire form is a
	// straight copy — a visit with a large hole costs two words, not one
	// per missing message. The copy is fresh because the token outlives
	// the visit on the wire (wireown: no aliasing of ring state).
	t.Rtr = nil
	if len(r.gaps) > 0 {
		rtr := make([]wire.SeqRange, len(r.gaps))
		n := uint64(0)
		for i, g := range r.gaps {
			rtr[i] = wire.SeqRange{Lo: g.lo, Hi: g.hi}
			n += g.hi - g.lo + 1
		}
		t.Rtr = rtr
		r.met.Add(obs.CRetransRequested, n)
	}

	// Two-visit safe watermark: messages acknowledged on both the
	// previously forwarded token and the incoming token are stable at
	// every member.
	if r.everForwarded {
		bound := t.Aru
		if r.lastFwdAru < bound {
			bound = r.lastFwdAru
		}
		if bound > r.safeBound {
			r.safeBound = bound
		}
	}

	// Aru update: lower to our watermark if we are missing messages;
	// raise if we set it previously (or it is unowned and current).
	switch {
	case r.myAru < t.Aru:
		t.Aru = r.myAru
		t.AruID = r.self
	case t.AruID == r.self || t.AruID == "":
		t.Aru = r.myAru
		t.AruID = ""
		if r.myAru < t.Seq {
			t.AruID = r.self
		}
	}

	r.met.Add(obs.CMsgsSequenced, uint64(len(res.Sent)))
	res.Deliveries = r.collectDeliverable()

	t.TokenID++
	r.lastFwdAru = t.Aru
	r.everForwarded = true
	r.prevPrevHigh = r.prevHigh
	r.prevHigh = r.highestSeen
	res.Forward = t
	r.bcastScratch = res.Broadcasts
	r.sentScratch = res.Sent
	r.maybeTrim()
	return res
}

// collectDeliverable returns, in order, received messages past the delivery
// watermark, stopping at a gap or at a safe-service message that is not yet
// safe. A blocked safe message blocks everything behind it: delivery is in
// total order. The returned slice is per-ring scratch, valid until the next
// call into the Ring.
//
//evs:arena
//evs:noalloc
func (r *Ring) collectDeliverable() []wire.Data {
	out := r.deliverScratch[:0]
	for r.present(r.deliveredUpTo + 1) {
		d := r.log[r.deliveredUpTo-r.trimmedUpTo]
		if d.Service == model.Safe && d.Seq > r.safeBound {
			break
		}
		r.deliveredUpTo++
		r.mergeClock(d.VC)
		out = append(out, d)
	}
	r.met.Add(obs.CMsgsDelivered, uint64(len(out)))
	r.deliverScratch = out
	return out
}

// State is the ring's receipt and delivery state, exchanged during recovery
// (Step 3) and persisted to stable storage.
type State struct {
	MyAru         uint64
	Have          []uint64 // received sequence numbers above MyAru
	SafeBound     uint64
	HighestSeen   uint64
	DeliveredUpTo uint64
	// Trimmed is the discarded log prefix: sequence numbers at or below
	// it were delivered locally and certified safe (received by every
	// member), so the recovery algorithm treats them as held without
	// requiring the log to produce them.
	Trimmed uint64
}

// Snapshot returns the ring's exchange state. Have is derived from the
// complement of the gap list within (myAru, highestSeen] — the gap list is
// exactly the missing set, so the received numbers are the runs between
// consecutive gaps — costing O(gaps + |Have|) rather than a presence probe
// per sequence number in the range.
func (r *Ring) Snapshot() State {
	var have []uint64
	for i, g := range r.gaps {
		lo := g.hi + 1
		hi := r.highestSeen
		if i+1 < len(r.gaps) {
			hi = r.gaps[i+1].lo - 1
		}
		for seq := lo; seq <= hi; seq++ {
			have = append(have, seq)
		}
	}
	st := r.Watermarks()
	st.Have = have
	return st
}

// Watermarks returns the receipt and delivery watermarks without scanning
// the receive log (State.Have is left empty).
func (r *Ring) Watermarks() State {
	return State{
		MyAru:         r.myAru,
		SafeBound:     r.safeBound,
		HighestSeen:   r.highestSeen,
		DeliveredUpTo: r.deliveredUpTo,
		Trimmed:       r.trimmedUpTo,
	}
}

// Len returns the number of messages in the receive log (trimmed entries
// excluded).
func (r *Ring) Len() int { return r.stored }

// Trimmed returns the discarded log prefix watermark.
func (r *Ring) Trimmed() uint64 { return r.trimmedUpTo }

// Messages materialises the receive log as a map keyed by sequence number
// (the representation the recovery algorithm exchanges and merges). The
// result is a fresh map; the log itself is not exposed.
func (r *Ring) Messages() map[uint64]wire.Data {
	out := make(map[uint64]wire.Data, r.stored)
	for _, d := range r.log {
		if d.Seq != 0 {
			out[d.Seq] = d
		}
	}
	return out
}

// DeliveredUpTo returns the delivery watermark.
func (r *Ring) DeliveredUpTo() uint64 { return r.deliveredUpTo }

// SafeBound returns the current two-visit safe watermark.
func (r *Ring) SafeBound() uint64 { return r.safeBound }

// VC returns a sparse copy of the ring's vector clock.
func (r *Ring) VC() vclock.VC { return r.uni.ToVC(r.vc) }

// Restore seeds the ring with state recovered from stable storage: the
// message log, delivery watermark, safe bound and trimmed prefix of a
// configuration this process was a member of before failing. Sequence
// numbers the process knows were assigned but whose messages it lacks
// become gaps, re-requested at the next token visit; numbers at or below
// trimmed were discarded as safe-and-delivered and are neither stored nor
// treated as missing.
func (r *Ring) Restore(log map[uint64]wire.Data, deliveredUpTo, safeBound, highestSeen, trimmed uint64) {
	if trimmed > 0 {
		r.trimmedUpTo = trimmed
		r.myAru = trimmed
		r.highestSeen = trimmed
		if deliveredUpTo < trimmed {
			// Trimming never outruns delivery; a lower persisted
			// watermark is storage damage. Delivery cannot resume
			// below the trimmed prefix, so clamp instead of stalling.
			deliveredUpTo = trimmed
		}
	}
	for _, d := range log {
		if d.Seq == 0 {
			continue
		}
		r.store(d)
	}
	r.deliveredUpTo = deliveredUpTo
	r.safeBound = safeBound
	r.noteAssigned(highestSeen)
	r.advanceAru()
}

// Package totem implements the operational half of the Totem single-ring
// protocol: token-passing total ordering of broadcast messages within one
// regular configuration, with retransmission, flow control, and the
// aru-based acknowledgment mechanism from which both agreed and safe
// delivery are derived.
//
// A message is delivered in agreed order as soon as every message with a
// smaller sequence number has been delivered. A message is delivered in
// safe order once the process has observed the token's aru ("all received
// up to") at or above the message's sequence number on two successive token
// visits: between those visits the token made a full rotation, and because
// a process only ever forwards the token with an aru no greater than its
// own contiguous-receipt watermark, every ring member must have received
// the message. This is the acknowledgment described in Step 1 of the EVS
// algorithm (Section 3 of the paper).
//
// The Ring type is a pure state machine: it consumes received wire messages
// and emits messages to transmit and messages to deliver. Timers, the
// network, stable storage and the recovery algorithm live in other
// packages.
package totem

import (
	"sort"

	"repro/internal/model"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Options tune the ordering protocol.
type Options struct {
	// MaxPerToken bounds the number of new messages sequenced per token
	// visit.
	MaxPerToken int
	// Window bounds token.Seq - token.Aru: no new messages are
	// sequenced while more than Window messages are unacknowledged.
	Window uint64
}

// DefaultOptions returns the tuning used by the test and benchmark
// harnesses.
func DefaultOptions() Options {
	return Options{MaxPerToken: 16, Window: 256}
}

// Pending is an application message awaiting sequencing.
type Pending struct {
	ID      model.MessageID
	Service model.Service
	Payload []byte
}

// TokenResult is everything a token visit produces.
type TokenResult struct {
	// Accepted is false when the token was stale or for another ring;
	// nothing else is set in that case.
	Accepted bool
	// Broadcasts are data messages to broadcast: retransmissions
	// requested via the token followed by newly sequenced messages.
	Broadcasts []wire.Data
	// Sent are the newly sequenced messages (a subset of Broadcasts);
	// each is a send event of the formal model.
	Sent []wire.Data
	// Forward is the updated token to unicast to the ring successor.
	Forward wire.Token
	// Deliveries are messages that became deliverable, in total order.
	Deliveries []wire.Data
}

// Ring is the per-process ordering state for one regular configuration.
type Ring struct {
	self model.ProcessID
	cfg  model.Configuration
	opts Options

	recv          map[uint64]wire.Data
	myAru         uint64 // contiguous receipt watermark
	highestSeen   uint64 // highest sequence number known assigned
	deliveredUpTo uint64
	safeBound     uint64 // two-visit safe watermark
	lastFwdAru    uint64 // aru on the token this process last forwarded
	everForwarded bool
	lastTokenID   uint64
	pending       []Pending
	vc            vclock.VC
}

// New creates the ordering state for configuration cfg at process self.
// Received and delivered state may be seeded (recovered from stable
// storage) via the returned ring's Restore method.
func New(self model.ProcessID, cfg model.Configuration, opts Options) *Ring {
	if opts.MaxPerToken <= 0 {
		opts.MaxPerToken = DefaultOptions().MaxPerToken
	}
	if opts.Window == 0 {
		opts.Window = DefaultOptions().Window
	}
	return &Ring{
		self: self,
		cfg:  cfg,
		opts: opts,
		recv: make(map[uint64]wire.Data),
		vc:   vclock.New(),
	}
}

// Config returns the ring's configuration.
func (r *Ring) Config() model.Configuration { return r.cfg }

// Successor returns the next process after self in ring order.
func (r *Ring) Successor() model.ProcessID {
	m := r.cfg.Members.Members()
	for i, id := range m {
		if id == r.self {
			return m[(i+1)%len(m)]
		}
	}
	// Self not a member: degenerate, return self.
	return r.self
}

// IsRepresentative reports whether self is the lowest-ordered member, the
// process that originates the first token.
func (r *Ring) IsRepresentative() bool {
	min, ok := r.cfg.Members.Min()
	return ok && min == r.self
}

// InitialToken returns the first token of the ring, originated by the
// representative.
func (r *Ring) InitialToken() wire.Token {
	return wire.Token{Ring: r.cfg.ID, TokenID: 1}
}

// Submit queues an application message for sequencing at the next token
// visit.
func (r *Ring) Submit(p Pending) {
	r.pending = append(r.pending, p)
}

// PendingCount returns the number of queued, not-yet-sequenced messages.
func (r *Ring) PendingCount() int { return len(r.pending) }

// TakePending removes and returns all queued messages; the EVS recovery
// algorithm carries them into the next regular configuration, where they
// are sequenced (and thus, in the formal model's terms, sent).
func (r *Ring) TakePending() []Pending {
	p := r.pending
	r.pending = nil
	return p
}

// OnData ingests a received data message for this ring and returns any
// messages that become deliverable, in total order.
func (r *Ring) OnData(d wire.Data) []wire.Data {
	if d.Ring != r.cfg.ID || d.Seq == 0 {
		return nil
	}
	if d.Seq > r.highestSeen {
		r.highestSeen = d.Seq
	}
	if d.Seq <= r.deliveredUpTo {
		return nil
	}
	if _, dup := r.recv[d.Seq]; dup {
		return nil
	}
	r.recv[d.Seq] = d
	r.advanceAru()
	return r.collectDeliverable()
}

// OnToken processes a token visit: it satisfies retransmission requests,
// sequences pending messages, updates the aru and the safe watermark,
// collects deliverable messages, and produces the token to forward.
func (r *Ring) OnToken(t wire.Token) TokenResult {
	if t.Ring != r.cfg.ID || t.TokenID <= r.lastTokenID {
		return TokenResult{}
	}
	r.lastTokenID = t.TokenID
	res := TokenResult{Accepted: true}

	if t.Seq > r.highestSeen {
		r.highestSeen = t.Seq
	}

	// Retransmit requested messages this process holds.
	remaining := t.Rtr[:0:0]
	for _, seq := range t.Rtr {
		if d, ok := r.recv[seq]; ok {
			d.Retrans = true
			res.Broadcasts = append(res.Broadcasts, d)
		} else if seq > r.deliveredUpTo {
			remaining = append(remaining, seq)
		}
		// Requests at or below our delivery watermark that we no
		// longer hold are dropped: the requester will re-request and
		// someone holding the message will answer. (We retain
		// delivered messages in recv, so this arm is defensive.)
	}
	t.Rtr = remaining

	// Sequence new messages within the flow-control window.
	for len(r.pending) > 0 &&
		len(res.Sent) < r.opts.MaxPerToken &&
		t.Seq-t.Aru < r.opts.Window {
		p := r.pending[0]
		r.pending = r.pending[1:]
		t.Seq++
		r.vc.Tick(r.self)
		d := wire.Data{
			ID:      p.ID,
			Ring:    r.cfg.ID,
			Seq:     t.Seq,
			Service: p.Service,
			Payload: p.Payload,
			VC:      r.vc.Clone(),
		}
		r.recv[d.Seq] = d
		if d.Seq > r.highestSeen {
			r.highestSeen = d.Seq
		}
		res.Sent = append(res.Sent, d)
		res.Broadcasts = append(res.Broadcasts, d)
	}
	r.advanceAru()

	// Request retransmission of messages this process is missing.
	have := make(map[uint64]bool, len(t.Rtr))
	for _, seq := range t.Rtr {
		have[seq] = true
	}
	for seq := r.myAru + 1; seq <= t.Seq; seq++ {
		if _, ok := r.recv[seq]; !ok && !have[seq] {
			t.Rtr = append(t.Rtr, seq)
		}
	}
	sort.Slice(t.Rtr, func(i, j int) bool { return t.Rtr[i] < t.Rtr[j] })

	// Two-visit safe watermark: messages acknowledged on both the
	// previously forwarded token and the incoming token are stable at
	// every member.
	if r.everForwarded {
		bound := t.Aru
		if r.lastFwdAru < bound {
			bound = r.lastFwdAru
		}
		if bound > r.safeBound {
			r.safeBound = bound
		}
	}

	// Aru update: lower to our watermark if we are missing messages;
	// raise if we set it previously (or it is unowned and current).
	switch {
	case r.myAru < t.Aru:
		t.Aru = r.myAru
		t.AruID = r.self
	case t.AruID == r.self || t.AruID == "":
		t.Aru = r.myAru
		t.AruID = ""
		if r.myAru < t.Seq {
			t.AruID = r.self
		}
	}

	res.Deliveries = r.collectDeliverable()

	t.TokenID++
	r.lastFwdAru = t.Aru
	r.everForwarded = true
	res.Forward = t
	return res
}

// advanceAru advances the contiguous receipt watermark.
func (r *Ring) advanceAru() {
	for {
		if _, ok := r.recv[r.myAru+1]; !ok {
			return
		}
		r.myAru++
	}
}

// collectDeliverable returns, in order, received messages past the delivery
// watermark, stopping at a gap or at a safe-service message that is not yet
// safe. A blocked safe message blocks everything behind it: delivery is in
// total order.
func (r *Ring) collectDeliverable() []wire.Data {
	var out []wire.Data
	for {
		d, ok := r.recv[r.deliveredUpTo+1]
		if !ok {
			return out
		}
		if d.Service == model.Safe && d.Seq > r.safeBound {
			return out
		}
		r.deliveredUpTo++
		r.vc.Merge(d.VC)
		out = append(out, d)
	}
}

// State is the ring's receipt and delivery state, exchanged during recovery
// (Step 3) and persisted to stable storage.
type State struct {
	MyAru         uint64
	Have          []uint64 // received sequence numbers above MyAru
	SafeBound     uint64
	HighestSeen   uint64
	DeliveredUpTo uint64
}

// Snapshot returns the ring's exchange state.
func (r *Ring) Snapshot() State {
	var have []uint64
	for seq := range r.recv {
		if seq > r.myAru {
			have = append(have, seq)
		}
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	return State{
		MyAru:         r.myAru,
		Have:          have,
		SafeBound:     r.safeBound,
		HighestSeen:   r.highestSeen,
		DeliveredUpTo: r.deliveredUpTo,
	}
}

// Watermarks returns the receipt and delivery watermarks without scanning
// the receive buffer (State.Have is left empty).
func (r *Ring) Watermarks() State {
	return State{
		MyAru:         r.myAru,
		SafeBound:     r.safeBound,
		HighestSeen:   r.highestSeen,
		DeliveredUpTo: r.deliveredUpTo,
	}
}

// Messages returns the ring's received message log (shared map; callers
// must not mutate).
func (r *Ring) Messages() map[uint64]wire.Data { return r.recv }

// DeliveredUpTo returns the delivery watermark.
func (r *Ring) DeliveredUpTo() uint64 { return r.deliveredUpTo }

// SafeBound returns the current two-visit safe watermark.
func (r *Ring) SafeBound() uint64 { return r.safeBound }

// VC returns a copy of the ring's vector clock.
func (r *Ring) VC() vclock.VC { return r.vc.Clone() }

// Restore seeds the ring with state recovered from stable storage: the
// message log, delivery watermark and safe bound of a configuration this
// process was a member of before failing.
func (r *Ring) Restore(log map[uint64]wire.Data, deliveredUpTo, safeBound, highestSeen uint64) {
	for seq, d := range log {
		r.recv[seq] = d
	}
	r.deliveredUpTo = deliveredUpTo
	r.safeBound = safeBound
	if highestSeen > r.highestSeen {
		r.highestSeen = highestSeen
	}
	r.advanceAru()
}

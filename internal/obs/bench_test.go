package obs

import "testing"

// The acceptance bar for the whole layer: a nil *Metrics (instrumentation
// disabled) must add zero allocations per operation, so un-instrumented
// stacks pay only the nil check.
func BenchmarkDisabledCounterInc(b *testing.B) {
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Inc(CTokenRotations)
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe(HBatchFill, uint64(i))
	}
}

func BenchmarkDisabledEvent(b *testing.B) {
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Event(KBudget, uint64(i), 0)
	}
}

// The enabled hot path (counters, gauges, histograms) must also be
// allocation-free: instruments are fixed-index atomics.
func BenchmarkEnabledCounterInc(b *testing.B) {
	m := New("p1", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Inc(CTokenRotations)
	}
}

func BenchmarkEnabledObserve(b *testing.B) {
	m := New("p1", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe(HBatchFill, uint64(i))
	}
}

func BenchmarkEnabledEvent(b *testing.B) {
	m := New("p1", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Event(KBudget, uint64(i), 0)
	}
}

// TestDisabledPathAllocs pins the zero-alloc contract as a test, so CI
// fails (not just a benchmark drifting) if the disabled path ever
// allocates.
func TestDisabledPathAllocs(t *testing.T) {
	var m *Metrics
	if n := testing.AllocsPerRun(1000, func() {
		m.Inc(CTokenRotations)
		m.Add(CMsgsDelivered, 3)
		m.Set(GBudget, 9)
		m.Observe(HBatchFill, 4)
		m.Event(KBudget, 1, 2)
	}); n != 0 {
		t.Fatalf("disabled metrics path allocates %.1f allocs/op, want 0", n)
	}
}

// TestEnabledHotPathAllocs pins the enabled instrument path (not the trace
// ring, whose events are value-typed but take a lock) to zero allocations.
func TestEnabledHotPathAllocs(t *testing.T) {
	m := New("p1", nil)
	if n := testing.AllocsPerRun(1000, func() {
		m.Inc(CTokenRotations)
		m.Add(CMsgsDelivered, 3)
		m.Set(GBudget, 9)
		m.Observe(HBatchFill, 4)
	}); n != 0 {
		t.Fatalf("enabled metrics hot path allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		m.Event(KBudget, 1, 2)
	}); n != 0 {
		t.Fatalf("trace ring event allocates %.1f allocs/op, want 0", n)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders a cluster snapshot in the Prometheus text
// exposition format (version 0.0.4). Every series carries a proc label
// naming its scope; histograms are emitted with cumulative _bucket series
// and power-of-two le bounds, plus _sum and _count. Series order is
// deterministic: metric name, then scope.
func WritePrometheus(w io.Writer, cs ClusterSnapshot) error {
	bw := bufio.NewWriter(w)
	procs := cs.ProcNames()

	for c := Counter(0); c < numCounters; c++ {
		name := counterNames[c]
		fmt.Fprintf(bw, "# TYPE evs_%s counter\n", name)
		for _, p := range procs {
			fmt.Fprintf(bw, "evs_%s{proc=%q} %d\n", name, p, cs.Procs[p].Counters[name])
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		name := gaugeNames[g]
		fmt.Fprintf(bw, "# TYPE evs_%s gauge\n", name)
		for _, p := range procs {
			fmt.Fprintf(bw, "evs_%s{proc=%q} %d\n", name, p, cs.Procs[p].Gauges[name])
		}
	}
	for h := Hist(0); h < numHists; h++ {
		name := histNames[h]
		fmt.Fprintf(bw, "# TYPE evs_%s histogram\n", name)
		for _, p := range procs {
			hs := cs.Procs[p].Histograms[name]
			cum := uint64(0)
			for i, b := range hs.Buckets {
				cum += b
				if b == 0 && i < len(hs.Buckets)-1 {
					// Sparse output: only materialised bounds and the
					// terminal +Inf bucket; cumulative counts make the
					// omitted buckets recoverable.
					continue
				}
				le := "+Inf"
				if i < len(hs.Buckets)-1 {
					le = fmt.Sprintf("%d", BucketBound(i))
				}
				fmt.Fprintf(bw, "evs_%s_bucket{proc=%q,le=%q} %d\n", name, p, le, cum)
			}
			fmt.Fprintf(bw, "evs_%s_sum{proc=%q} %d\n", name, p, hs.Sum)
			fmt.Fprintf(bw, "evs_%s_count{proc=%q} %d\n", name, p, hs.Count)
		}
	}
	return bw.Flush()
}

// ExpvarMap renders a cluster snapshot as the nested map expvar expects
// from an expvar.Func: stable JSON-marshalable plain data. Keys are scope
// names; each scope maps metric name to value (histograms appear as
// {count, sum, mean}).
func ExpvarMap(cs ClusterSnapshot) map[string]any {
	out := make(map[string]any, len(cs.Procs)+1)
	render := func(s Snapshot) map[string]any {
		sm := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
		for k, v := range s.Counters {
			sm[k] = v
		}
		for k, v := range s.Gauges {
			sm[k] = v
		}
		for k, h := range s.Histograms {
			sm[k] = map[string]any{"count": h.Count, "sum": h.Sum, "mean": h.Mean()}
		}
		return sm
	}
	for p, s := range cs.Procs {
		out[p] = render(s)
	}
	out["total"] = render(cs.Total)
	return out
}

// CounterNames returns the full sorted counter catalog (for parity tests
// and documentation generators).
func CounterNames() []string {
	out := make([]string, 0, int(numCounters))
	for c := Counter(0); c < numCounters; c++ {
		out = append(out, counterNames[c])
	}
	sort.Strings(out)
	return out
}

// GaugeNames returns the full sorted gauge catalog.
func GaugeNames() []string {
	out := make([]string, 0, int(numGauges))
	for g := Gauge(0); g < numGauges; g++ {
		out = append(out, gaugeNames[g])
	}
	sort.Strings(out)
	return out
}

// HistNames returns the full sorted histogram catalog.
func HistNames() []string {
	out := make([]string, 0, int(numHists))
	for h := Hist(0); h < numHists; h++ {
		out = append(out, histNames[h])
	}
	sort.Strings(out)
	return out
}

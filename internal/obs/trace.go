package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind identifies a protocol trace event.
type Kind uint8

const (
	// KBudget: the adaptive flow-control budget changed; A is the new
	// budget. The sequence of KBudget events is the budget trajectory.
	KBudget Kind = iota + 1
	// KGatherEnter: the process left operational/recovering mode for
	// membership gathering; A is a GatherCause.
	KGatherEnter
	// KConfigRegular: a regular configuration was installed; A is the
	// ring sequence number, B the member count.
	KConfigRegular
	// KConfigTransitional: a transitional configuration change was
	// delivered; B is the member count.
	KConfigTransitional
	// KRecoveryStart: recovery (Step 2) began for ring A with B members.
	KRecoveryStart
	// KRecoveryPlan: Step 4 computed the rebroadcast plan; A is the
	// needed-set size.
	KRecoveryPlan
	// KRecoveryDone: this process announced Step 5 completion.
	KRecoveryDone
	// KRecoveryFinish: Step 6 applied; A is the new ring sequence.
	KRecoveryFinish
	// KRecoveryAbort: the attempt was interrupted and discarded.
	KRecoveryAbort
	// KCrash and KRecover: process failure and restart.
	KCrash
	KRecover
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KBudget:
		return "budget"
	case KGatherEnter:
		return "gather_enter"
	case KConfigRegular:
		return "config_regular"
	case KConfigTransitional:
		return "config_transitional"
	case KRecoveryStart:
		return "recovery_start"
	case KRecoveryPlan:
		return "recovery_plan"
	case KRecoveryDone:
		return "recovery_done"
	case KRecoveryFinish:
		return "recovery_finish"
	case KRecoveryAbort:
		return "recovery_abort"
	case KCrash:
		return "crash"
	case KRecover:
		return "recover"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// GatherCause enumerates why a process entered membership gathering,
// carried in a KGatherEnter event's A field.
type GatherCause uint64

const (
	CauseStart GatherCause = iota + 1
	CauseTokenLoss
	CauseForeign
	CauseJoin
	CauseRecoveryTimeout
)

// String names the cause.
func (c GatherCause) String() string {
	switch c {
	case CauseStart:
		return "start"
	case CauseTokenLoss:
		return "token_loss"
	case CauseForeign:
		return "foreign"
	case CauseJoin:
		return "join"
	case CauseRecoveryTimeout:
		return "recovery_timeout"
	default:
		return fmt.Sprintf("cause(%d)", uint64(c))
	}
}

// GatherCounter returns the catalog counter for a gather cause.
func (c GatherCause) GatherCounter() Counter {
	switch c {
	case CauseTokenLoss:
		return CGatherTokenLoss
	case CauseForeign:
		return CGatherForeign
	case CauseJoin:
		return CGatherJoin
	case CauseRecoveryTimeout:
		return CGatherRecoveryTimeout
	default:
		return CGatherStart
	}
}

// Event is one structured protocol trace event. It is a fixed-size value
// type: recording one writes into a preallocated ring slot and allocates
// nothing.
type Event struct {
	// At is the scope clock's time when the event was recorded.
	At time.Duration `json:"at_ns"`
	// Proc is the scope name.
	Proc string `json:"proc"`
	// Kind classifies the event; A and B are kind-specific payloads.
	Kind Kind   `json:"kind"`
	A    uint64 `json:"a,omitempty"`
	B    uint64 `json:"b,omitempty"`
}

// String renders the event for reports.
func (e Event) String() string {
	return fmt.Sprintf("%12s %-4s %-20s a=%d b=%d", e.At, e.Proc, e.Kind, e.A, e.B)
}

// Sink observes trace events as they are recorded. Implementations must
// be fast and must not call back into the Metrics scope; they run on the
// protocol path under the trace lock.
type Sink interface {
	ObserveEvent(e Event)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(e Event)

// ObserveEvent implements Sink.
func (f SinkFunc) ObserveEvent(e Event) { f(e) }

// DefaultTraceDepth is the trace ring capacity per scope. At one budget
// change or configuration event every few token rotations this covers
// minutes of protocol history; older events are overwritten.
const DefaultTraceDepth = 4096

// traceRing is a fixed-capacity circular event buffer plus the sink list.
type traceRing struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever recorded
	sinks []Sink
}

func (r *traceRing) init(depth int) {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	r.buf = make([]Event, depth)
}

// Event records a protocol trace event and fans it out to the sinks.
// Nil-safe; allocation-free (the ring slot is reused).
//
//evs:noalloc
func (m *Metrics) Event(k Kind, a, b uint64) {
	if m == nil {
		return
	}
	e := Event{At: m.Now(), Proc: m.proc, Kind: k, A: a, B: b}
	r := &m.trace
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	sinks := r.sinks
	for _, s := range sinks {
		s.ObserveEvent(e)
	}
	r.mu.Unlock()
}

// AddSink registers an additional trace sink. Nil-safe.
func (m *Metrics) AddSink(s Sink) {
	if m == nil || s == nil {
		return
	}
	m.trace.mu.Lock()
	m.trace.sinks = append(m.trace.sinks, s)
	m.trace.mu.Unlock()
}

// Events returns the retained trace events in chronological order.
// Nil-safe: a nil scope has no events.
func (m *Metrics) Events() []Event {
	if m == nil {
		return nil
	}
	r := &m.trace
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	depth := uint64(len(r.buf))
	start := uint64(0)
	if n > depth {
		start = n - depth
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		out = append(out, r.buf[i%depth])
	}
	return out
}

// EventsDropped returns how many events have been overwritten. Nil-safe.
func (m *Metrics) EventsDropped() uint64 {
	if m == nil {
		return 0
	}
	r := &m.trace
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// MergeEvents interleaves several scopes' retained events into one
// time-ordered stream (stable across scopes at equal times).
func MergeEvents(scopes ...*Metrics) []Event {
	var out []Event
	for _, m := range scopes {
		out = append(out, m.Events()...)
	}
	sortEventsByTime(out)
	return out
}

// sortEventsByTime orders events by time, stably, so same-time events
// keep scope registration order.
func sortEventsByTime(es []Event) {
	sort.SliceStable(es, func(i, j int) bool { return es[i].At < es[j].At })
}

// Package obs is the protocol observability layer: per-process counters,
// gauges and histograms plus a structured protocol-event trace, threaded
// through every layer of the EVS stack (internal/totem, internal/node,
// internal/membership, internal/netsim) and surfaced by both runtimes —
// Group.Metrics() snapshots in the simulator and a Prometheus-text /
// expvar HTTP endpoint on LiveGroup.
//
// Design constraints, in order:
//
//  1. Zero allocation on the data hot path. Every instrument is identified
//     by a small integer from a fixed catalog, so an update is an index
//     into a preallocated array; the trace ring is a preallocated circular
//     buffer of value-typed events. A nil *Metrics disables the whole
//     layer: every method is nil-safe and a no-op, so un-instrumented
//     stacks pay a single predictable branch per update and zero
//     allocations (see bench_test.go).
//  2. Safe under real concurrency. The simulator is single-threaded but
//     LiveGroup is not, and snapshots race with updates; counters, gauges
//     and histogram buckets are atomics, and the trace ring takes a short
//     mutex only on the (much colder) protocol-event path.
//  3. One catalog for every runtime. Metric names are fixed at compile
//     time and identical between Group and LiveGroup, so dashboards and
//     parity tests can compare the two runtimes series-for-series.
//
// Time is virtual or wall according to the clock the harness supplies:
// the simulator passes its scheduler's Now, the live runtime passes
// wall-clock time since the group started. Durations recorded in
// histograms are in microseconds of that clock.
package obs

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Counter identifies a monotone counter in the catalog.
type Counter int

// The counter catalog. Names (see CounterName) follow Prometheus
// conventions: a subsystem prefix and a _total suffix.
const (
	// Totem ordering layer.

	// CTokenRotations counts accepted token visits at this process.
	CTokenRotations Counter = iota
	// CTokenStale counts rejected (stale or foreign) tokens.
	CTokenStale
	// CRetransServed counts Rtr requests this process satisfied by
	// rebroadcasting a message it held.
	CRetransServed
	// CRetransRequested counts retransmission requests this process
	// placed on the token.
	CRetransRequested
	// CMsgsSequenced counts messages this process sequenced (sent).
	CMsgsSequenced
	// CMsgsDelivered counts messages delivered in total order.
	CMsgsDelivered
	// CBudgetGrows and CBudgetShrinks count adaptive flow-control budget
	// adjustments.
	CBudgetGrows
	CBudgetShrinks
	// CBatchesSent counts data packets broadcast (batched or lone).
	CBatchesSent

	// Node layer.

	// CSubmits counts accepted application submissions.
	CSubmits
	// CSubmitBacklog counts submissions shed by backpressure.
	CSubmitBacklog
	// CConfigsRegular and CConfigsTransitional count configuration
	// changes delivered to the application, by configuration kind.
	CConfigsRegular
	CConfigsTransitional
	// CGather* count transitions into the membership gather phase by
	// cause: token loss, foreign traffic, a received join, a recovery
	// timeout, a commit conflict, or process start.
	CGatherTokenLoss
	CGatherForeign
	CGatherJoin
	CGatherRecoveryTimeout
	CGatherStart
	// CRecoveryStarted, CRecoveryAborted and CRecoveryFinished count
	// recovery attempts (Steps 2-6) and their outcomes.
	CRecoveryStarted
	CRecoveryAborted
	CRecoveryFinished

	// Membership layer.

	// CMemJoinsSent and CMemJoinsRecv count Join broadcasts emitted and
	// fresh Joins accepted.
	CMemJoinsSent
	CMemJoinsRecv
	// CMemConsensus counts gather rounds that reached membership
	// consensus; CMemCommits counts ring proposals made as
	// representative; CMemInstalls counts rings formed.
	CMemConsensus
	CMemCommits
	CMemInstalls
	// CMemJoinTimeouts counts gather retry expirations;
	// CMemFailuresDeclared counts processes declared failed.
	CMemJoinTimeouts
	CMemFailuresDeclared

	// Self-stabilization (transient state corruption healing).

	// CSeqHeals counts sender sequence counters healed from SeenSeqs
	// observation evidence (local or exchanged); CRingSeqHeals counts
	// configuration freshness counters clamped back up from installed
	// evidence; CStateRejects counts corrupted stable-state elements
	// rejected at load or recovery start (checksum-failed log entries,
	// ghost obligations).
	CSeqHeals
	CRingSeqHeals
	CStateRejects

	// Network (cluster-scoped: the simulated medium).

	// CNetBroadcasts counts broadcast sends; CNetDelivered counts packet
	// deliveries (one per receiver); CNetDropped, CNetCut and
	// CNetDuplicated count loss, partition/down loss and duplication.
	CNetBroadcasts
	CNetDelivered
	CNetDropped
	CNetCut
	CNetDuplicated

	// Group layer (lightweight process groups over the ring).

	// CGroupsFiltered counts group data messages dropped at this process
	// by the membership-filtered fast path: the header peek said no local
	// subscriber, so the payload was never decoded.
	CGroupsFiltered
	// CGroupsEncodeErrors counts group-layer payloads that failed to
	// encode at submission (oversized names, unknown kinds); the message
	// is dropped and counted, never panicked.
	CGroupsEncodeErrors

	// Wire transport (real network media: UDP, TCP mesh; also the
	// simulator's encoded-frame mode).

	// CWirePacketsOut and CWirePacketsIn count frames handed to /
	// received from the medium; CWireBytesOut and CWireBytesIn count
	// their encoded sizes.
	CWirePacketsOut
	CWirePacketsIn
	CWireBytesOut
	CWireBytesIn
	// CWireEncodeErrors and CWireDecodeErrors count codec failures at
	// the transport boundary; the frame is dropped and counted, never
	// panicked.
	CWireEncodeErrors
	CWireDecodeErrors
	// CWireDrops counts frames the transport itself shed: oversize
	// datagrams, full peer queues, sends after close.
	CWireDrops

	numCounters
)

var counterNames = [numCounters]string{
	CTokenRotations:        "totem_token_rotations_total",
	CTokenStale:            "totem_token_stale_total",
	CRetransServed:         "totem_retrans_served_total",
	CRetransRequested:      "totem_retrans_requested_total",
	CMsgsSequenced:         "totem_msgs_sequenced_total",
	CMsgsDelivered:         "totem_msgs_delivered_total",
	CBudgetGrows:           "totem_budget_grows_total",
	CBudgetShrinks:         "totem_budget_shrinks_total",
	CBatchesSent:           "totem_batches_sent_total",
	CSubmits:               "node_submits_total",
	CSubmitBacklog:         "node_submit_backlog_total",
	CConfigsRegular:        "node_configs_regular_total",
	CConfigsTransitional:   "node_configs_transitional_total",
	CGatherTokenLoss:       "node_gather_token_loss_total",
	CGatherForeign:         "node_gather_foreign_total",
	CGatherJoin:            "node_gather_join_total",
	CGatherRecoveryTimeout: "node_gather_recovery_timeout_total",
	CGatherStart:           "node_gather_start_total",
	CRecoveryStarted:       "node_recovery_started_total",
	CRecoveryAborted:       "node_recovery_aborted_total",
	CRecoveryFinished:      "node_recovery_finished_total",
	CMemJoinsSent:          "membership_joins_sent_total",
	CMemJoinsRecv:          "membership_joins_recv_total",
	CMemConsensus:          "membership_consensus_total",
	CMemCommits:            "membership_commits_total",
	CMemInstalls:           "membership_installs_total",
	CMemJoinTimeouts:       "membership_join_timeouts_total",
	CMemFailuresDeclared:   "membership_failures_declared_total",
	CSeqHeals:              "node_seq_heals_total",
	CRingSeqHeals:          "node_ringseq_heals_total",
	CStateRejects:          "node_state_rejects_total",
	CNetBroadcasts:         "net_broadcasts_total",
	CNetDelivered:          "net_packets_delivered_total",
	CNetDropped:            "net_packets_dropped_total",
	CNetCut:                "net_packets_cut_total",
	CNetDuplicated:         "net_packets_duplicated_total",
	CGroupsFiltered:        "groups_filtered_total",
	CGroupsEncodeErrors:    "groups_encode_errors_total",
	CWirePacketsOut:        "wire_packets_out_total",
	CWirePacketsIn:         "wire_packets_in_total",
	CWireBytesOut:          "wire_bytes_out_total",
	CWireBytesIn:           "wire_bytes_in_total",
	CWireEncodeErrors:      "wire_encode_errors_total",
	CWireDecodeErrors:      "wire_decode_errors_total",
	CWireDrops:             "wire_drops_total",
}

// CounterName returns the catalog name of a counter.
func CounterName(c Counter) string { return counterNames[c] }

// Gauge identifies an instantaneous value in the catalog.
type Gauge int

const (
	// GBudget is the current adaptive per-token sequencing budget.
	GBudget Gauge = iota
	// GWindow is the current effective flow-control window.
	GWindow
	// GPendingDepth is the send backlog (submitted, not yet sequenced).
	GPendingDepth
	numGauges
)

var gaugeNames = [numGauges]string{
	GBudget:       "totem_budget",
	GWindow:       "totem_window",
	GPendingDepth: "node_pending_depth",
}

// GaugeName returns the catalog name of a gauge.
func GaugeName(g Gauge) string { return gaugeNames[g] }

// Hist identifies a histogram in the catalog.
type Hist int

const (
	// HBatchFill records the number of data messages per broadcast
	// packet: how full the transport's batches run.
	HBatchFill Hist = iota
	// HBudgetPerVisit records the flow-control budget observed at each
	// accepted token visit: its distribution is the budget trajectory in
	// aggregate (the exact trajectory is in the event trace).
	HBudgetPerVisit
	// HRecoveryTotalUs records recovery duration from Step 2 (ring
	// formed) to Step 6 (new configuration installed), in clock
	// microseconds (virtual in the simulator, wall in LiveGroup).
	HRecoveryTotalUs
	// HRecoveryExchangeUs records Step 3-4 duration: ring formed until
	// the rebroadcast plan is computed from all members' exchanges.
	HRecoveryExchangeUs
	// HRecoveryFlushUs records Step 5-6 duration: plan computed until
	// the new regular configuration is installed.
	HRecoveryFlushUs
	numHists
)

var histNames = [numHists]string{
	HBatchFill:          "totem_batch_fill",
	HBudgetPerVisit:     "totem_budget_per_visit",
	HRecoveryTotalUs:    "node_recovery_total_us",
	HRecoveryExchangeUs: "node_recovery_exchange_us",
	HRecoveryFlushUs:    "node_recovery_flush_us",
}

// HistName returns the catalog name of a histogram.
func HistName(h Hist) string { return histNames[h] }

// HistBuckets is the number of histogram buckets. Bucket i counts
// observations v with v < 2^i (the last bucket is unbounded), so the
// bucket layout covers 1 microsecond to ~1 hour without configuration.
const HistBuckets = 32

// BucketBound returns the exclusive upper bound of bucket i (the last
// bucket is unbounded and returns ^uint64(0)).
func BucketBound(i int) uint64 {
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return 1 << uint(i)
}

// histogram is a power-of-two bucketed distribution.
type histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketIndex returns the bucket for value v: the smallest i with v < 2^i,
// clamped to the unbounded last bucket.
//
//evs:noalloc
func bucketIndex(v uint64) int {
	i := bits.Len64(v)
	if i > HistBuckets-1 {
		return HistBuckets - 1
	}
	return i
}

//evs:noalloc
func (h *histogram) observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Metrics is one scope's instrument set: one per process, plus one
// cluster-level instance for the shared medium. The zero value is not
// usable; construct with New. A nil *Metrics is the disabled layer: every
// method no-ops.
type Metrics struct {
	proc  string
	clock func() time.Duration

	counters [numCounters]atomic.Uint64
	gauges   [numGauges]atomic.Int64
	hists    [numHists]histogram

	trace traceRing
}

// New creates a Metrics scope. proc names the scope ("p01", or "net" for
// the cluster-level medium scope); clock supplies the current time
// (virtual or wall) for trace events and is called only on the cold
// protocol-event path. A nil clock records zero times.
func New(proc string, clock func() time.Duration) *Metrics {
	m := &Metrics{proc: proc, clock: clock}
	m.trace.init(DefaultTraceDepth)
	return m
}

// Proc returns the scope name.
func (m *Metrics) Proc() string {
	if m == nil {
		return ""
	}
	return m.proc
}

// Now returns the scope's current time (zero without a clock). Nil-safe.
//
//evs:noalloc
func (m *Metrics) Now() time.Duration {
	if m == nil || m.clock == nil {
		return 0
	}
	return m.clock()
}

// Inc adds one to a counter. Nil-safe, allocation-free.
//
//evs:noalloc
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.counters[c].Add(1)
}

// Add adds n to a counter. Nil-safe, allocation-free.
//
//evs:noalloc
func (m *Metrics) Add(c Counter, n uint64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// Counter returns a counter's current value. Nil-safe.
func (m *Metrics) Counter(c Counter) uint64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// Set stores a gauge. Nil-safe, allocation-free.
//
//evs:noalloc
func (m *Metrics) Set(g Gauge, v int64) {
	if m == nil {
		return
	}
	m.gauges[g].Store(v)
}

// Gauge returns a gauge's current value. Nil-safe.
func (m *Metrics) Gauge(g Gauge) int64 {
	if m == nil {
		return 0
	}
	return m.gauges[g].Load()
}

// Observe records a histogram observation. Nil-safe, allocation-free.
//
//evs:noalloc
func (m *Metrics) Observe(h Hist, v uint64) {
	if m == nil {
		return
	}
	m.hists[h].observe(v)
}

// ObserveSince records the elapsed clock time since start, in
// microseconds. Nil-safe.
//
//evs:noalloc
func (m *Metrics) ObserveSince(h Hist, start time.Duration) {
	if m == nil {
		return
	}
	d := m.Now() - start
	if d < 0 {
		d = 0
	}
	m.hists[h].observe(uint64(d / time.Microsecond))
}

// HistSnapshot is a histogram's frozen state.
type HistSnapshot struct {
	// Count and Sum are the observation count and value sum.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Buckets[i] counts observations v with v < 2^i; the last bucket is
	// unbounded.
	Buckets []uint64 `json:"buckets"`
}

// Mean returns the mean observation (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge folds another snapshot into this one.
func (h *HistSnapshot) merge(o HistSnapshot) {
	h.Count += o.Count
	h.Sum += o.Sum
	if h.Buckets == nil {
		h.Buckets = make([]uint64, HistBuckets)
	}
	for i, b := range o.Buckets {
		h.Buckets[i] += b
	}
}

// Snapshot is one scope's frozen metric state. Every catalog name is
// present (zero-valued instruments included), so the name set is identical
// across scopes and runtimes.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot freezes the scope's instruments. Nil-safe: a nil scope yields
// an all-zero snapshot with the full catalog.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, int(numCounters)),
		Gauges:     make(map[string]int64, int(numGauges)),
		Histograms: make(map[string]HistSnapshot, int(numHists)),
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[counterNames[c]] = m.Counter(c)
	}
	for g := Gauge(0); g < numGauges; g++ {
		s.Gauges[gaugeNames[g]] = m.Gauge(g)
	}
	for h := Hist(0); h < numHists; h++ {
		hs := HistSnapshot{Buckets: make([]uint64, HistBuckets)}
		if m != nil {
			hist := &m.hists[h]
			hs.Count = hist.count.Load()
			hs.Sum = hist.sum.Load()
			for i := range hs.Buckets {
				hs.Buckets[i] = hist.buckets[i].Load()
			}
		}
		s.Histograms[histNames[h]] = hs
	}
	return s
}

// merge folds another snapshot into this one: counters and gauges add,
// histograms merge. (Gauges add because the cluster-level reading of a
// per-process level — total pending depth, total budget — is the sum.)
func (s *Snapshot) merge(o Snapshot) {
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	for k, v := range o.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range o.Histograms {
		h := s.Histograms[k]
		h.merge(v)
		s.Histograms[k] = h
	}
}

// ClusterSnapshot is a whole deployment's frozen metric state: one
// Snapshot per scope plus the cross-scope total.
type ClusterSnapshot struct {
	Procs map[string]Snapshot `json:"procs"`
	Total Snapshot            `json:"total"`
}

// Cluster snapshots a set of scopes and computes their total.
func Cluster(scopes ...*Metrics) ClusterSnapshot {
	cs := ClusterSnapshot{
		Procs: make(map[string]Snapshot, len(scopes)),
		Total: (*Metrics)(nil).Snapshot(),
	}
	for _, m := range scopes {
		if m == nil {
			continue
		}
		s := m.Snapshot()
		cs.Procs[m.Proc()] = s
		cs.Total.merge(s)
	}
	return cs
}

// ProcNames returns the scope names in sorted order.
func (cs ClusterSnapshot) ProcNames() []string {
	out := make([]string, 0, len(cs.Procs))
	for p := range cs.Procs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

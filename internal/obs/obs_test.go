package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCatalogNamesComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if counterNames[c] == "" {
			t.Errorf("counter %d has no name", c)
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		if gaugeNames[g] == "" {
			t.Errorf("gauge %d has no name", g)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		if histNames[h] == "" {
			t.Errorf("histogram %d has no name", h)
		}
	}
	// Names must be unique across the whole catalog: a collision would
	// silently merge series in every exporter.
	seen := make(map[string]bool)
	for _, n := range append(append(CounterNames(), GaugeNames()...), HistNames()...) {
		if seen[n] {
			t.Errorf("duplicate catalog name %q", n)
		}
		seen[n] = true
	}
}

func TestCountersGaugesHists(t *testing.T) {
	m := New("p1", nil)
	m.Inc(CTokenRotations)
	m.Add(CTokenRotations, 4)
	if got := m.Counter(CTokenRotations); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	m.Set(GBudget, 42)
	if got := m.Gauge(GBudget); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	m.Observe(HBatchFill, 3)
	m.Observe(HBatchFill, 5)
	s := m.Snapshot()
	h := s.Histograms[HistName(HBatchFill)]
	if h.Count != 2 || h.Sum != 8 {
		t.Fatalf("hist count=%d sum=%d, want 2/8", h.Count, h.Sum)
	}
}

func TestNilMetricsIsDisabledLayer(t *testing.T) {
	var m *Metrics
	// Every method must be a safe no-op on the nil scope.
	m.Inc(CSubmits)
	m.Add(CSubmits, 7)
	m.Set(GBudget, 9)
	m.Observe(HBatchFill, 1)
	m.ObserveSince(HRecoveryTotalUs, 0)
	m.Event(KBudget, 1, 2)
	m.AddSink(SinkFunc(func(Event) {}))
	if m.Counter(CSubmits) != 0 || m.Gauge(GBudget) != 0 {
		t.Fatal("nil scope must read zero")
	}
	if m.Now() != 0 || m.Proc() != "" || m.Events() != nil || m.EventsDropped() != 0 {
		t.Fatal("nil scope accessors must return zero values")
	}
	// A nil scope still snapshots the full catalog (all zeros), so name
	// sets stay identical across enabled and disabled deployments.
	s := m.Snapshot()
	if len(s.Counters) != int(numCounters) || len(s.Gauges) != int(numGauges) ||
		len(s.Histograms) != int(numHists) {
		t.Fatalf("nil snapshot catalog incomplete: %d/%d/%d",
			len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		// The invariant the exporter relies on: v < BucketBound(i) for
		// every bounded bucket (the last bucket is unbounded).
		if i := bucketIndex(c.v); i < HistBuckets-1 && c.v >= BucketBound(i) {
			t.Errorf("value %d not below its bucket bound", c.v)
		}
	}
}

func TestClockDrivesNowAndObserveSince(t *testing.T) {
	now := 250 * time.Microsecond
	m := New("p1", func() time.Duration { return now })
	if m.Now() != now {
		t.Fatalf("Now = %s", m.Now())
	}
	m.ObserveSince(HRecoveryTotalUs, 50*time.Microsecond)
	h := m.Snapshot().Histograms[HistName(HRecoveryTotalUs)]
	if h.Count != 1 || h.Sum != 200 {
		t.Fatalf("ObserveSince recorded count=%d sum=%d, want 1/200µs", h.Count, h.Sum)
	}
	// A start after now must clamp to zero, not underflow.
	m.ObserveSince(HRecoveryTotalUs, 400*time.Microsecond)
	h = m.Snapshot().Histograms[HistName(HRecoveryTotalUs)]
	if h.Sum != 200 {
		t.Fatalf("negative elapsed must clamp to 0, sum=%d", h.Sum)
	}
}

func TestTraceRingRetainsAndDrops(t *testing.T) {
	now := time.Duration(0)
	m := New("p1", func() time.Duration { return now })
	total := DefaultTraceDepth + 10
	for i := 0; i < total; i++ {
		now = time.Duration(i) * time.Millisecond
		m.Event(KBudget, uint64(i), 0)
	}
	evs := m.Events()
	if len(evs) != DefaultTraceDepth {
		t.Fatalf("retained %d events, want %d", len(evs), DefaultTraceDepth)
	}
	if m.EventsDropped() != 10 {
		t.Fatalf("dropped = %d, want 10", m.EventsDropped())
	}
	// Oldest retained event is number 10; order is chronological.
	if evs[0].A != 10 || evs[len(evs)-1].A != uint64(total-1) {
		t.Fatalf("ring window wrong: first=%d last=%d", evs[0].A, evs[len(evs)-1].A)
	}
}

func TestSinksObserveEvents(t *testing.T) {
	m := New("p1", nil)
	var got []Event
	m.AddSink(SinkFunc(func(e Event) { got = append(got, e) }))
	m.Event(KCrash, 0, 0)
	m.Event(KRecover, 0, 0)
	if len(got) != 2 || got[0].Kind != KCrash || got[1].Kind != KRecover {
		t.Fatalf("sink saw %v", got)
	}
}

func TestMergeEventsOrdersAcrossScopes(t *testing.T) {
	clock := func(at *time.Duration) func() time.Duration {
		return func() time.Duration { return *at }
	}
	var ta, tb time.Duration
	a := New("a", clock(&ta))
	b := New("b", clock(&tb))
	ta = 2 * time.Millisecond
	a.Event(KBudget, 1, 0)
	tb = 1 * time.Millisecond
	b.Event(KBudget, 2, 0)
	tb = 3 * time.Millisecond
	b.Event(KBudget, 3, 0)
	merged := MergeEvents(a, b, nil)
	if len(merged) != 3 {
		t.Fatalf("merged %d events", len(merged))
	}
	if merged[0].A != 2 || merged[1].A != 1 || merged[2].A != 3 {
		t.Fatalf("merge order wrong: %v", merged)
	}
}

func TestClusterSnapshotTotals(t *testing.T) {
	a := New("a", nil)
	b := New("b", nil)
	a.Add(CSubmits, 3)
	b.Add(CSubmits, 4)
	a.Set(GPendingDepth, 5)
	b.Set(GPendingDepth, 6)
	a.Observe(HBatchFill, 2)
	b.Observe(HBatchFill, 2)
	cs := Cluster(a, b, nil)
	if len(cs.Procs) != 2 {
		t.Fatalf("procs = %d", len(cs.Procs))
	}
	if got := cs.Total.Counters[CounterName(CSubmits)]; got != 7 {
		t.Fatalf("total counter = %d, want 7", got)
	}
	if got := cs.Total.Gauges[GaugeName(GPendingDepth)]; got != 11 {
		t.Fatalf("total gauge = %d, want 11 (levels sum)", got)
	}
	if h := cs.Total.Histograms[HistName(HBatchFill)]; h.Count != 2 || h.Sum != 4 {
		t.Fatalf("total hist = %+v", h)
	}
	if names := cs.ProcNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("proc names = %v", names)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := New("p1", nil)
	m.Add(CTokenRotations, 12)
	m.Observe(HBatchFill, 3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, Cluster(m)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE evs_totem_token_rotations_total counter",
		`evs_totem_token_rotations_total{proc="p1"} 12`,
		`evs_totem_batch_fill_bucket{proc="p1",le="4"} 1`,
		`evs_totem_batch_fill_bucket{proc="p1",le="+Inf"} 1`,
		`evs_totem_batch_fill_sum{proc="p1"} 3`,
		`evs_totem_batch_fill_count{proc="p1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, Cluster(m)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("prometheus rendering is not deterministic")
	}
}

func TestExpvarMapShape(t *testing.T) {
	m := New("p1", nil)
	m.Inc(CSubmits)
	out := ExpvarMap(Cluster(m))
	scope, ok := out["p1"].(map[string]any)
	if !ok {
		t.Fatalf("scope p1 missing: %v", out)
	}
	if scope["node_submits_total"] != uint64(1) {
		t.Fatalf("scope counter = %v", scope["node_submits_total"])
	}
	if _, ok := out["total"]; !ok {
		t.Fatal("total scope missing")
	}
}

// TestConcurrentUpdatesAndSnapshots exercises the atomics under real
// concurrency (run with -race): updates, trace events and snapshots from
// many goroutines must neither race nor lose counts.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	m := New("p1", nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Inc(CSubmits)
				m.Observe(HBatchFill, uint64(i%7))
				m.Set(GBudget, int64(i))
				if i%100 == 0 {
					m.Event(KBudget, uint64(i), 0)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = m.Snapshot()
				_ = m.Events()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := m.Counter(CSubmits); got != workers*perWorker {
		t.Fatalf("lost updates: %d, want %d", got, workers*perWorker)
	}
	h := m.Snapshot().Histograms[HistName(HBatchFill)]
	if h.Count != workers*perWorker {
		t.Fatalf("lost observations: %d", h.Count)
	}
}

func TestGatherCauseCounters(t *testing.T) {
	cases := map[GatherCause]Counter{
		CauseStart:           CGatherStart,
		CauseTokenLoss:       CGatherTokenLoss,
		CauseForeign:         CGatherForeign,
		CauseJoin:            CGatherJoin,
		CauseRecoveryTimeout: CGatherRecoveryTimeout,
	}
	for cause, want := range cases {
		if got := cause.GatherCounter(); got != want {
			t.Errorf("%s -> counter %d, want %d", cause, got, want)
		}
		if cause.String() == "" || strings.HasPrefix(cause.String(), "cause(") {
			t.Errorf("cause %d unnamed", cause)
		}
	}
}

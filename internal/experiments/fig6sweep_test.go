package experiments

import (
	"strings"
	"testing"

	evs "repro"
)

// TestFig6Sweep runs the Figure 6 scenario across many seeds. Every run
// must be specification-clean and end in the paper's final configuration;
// the exact single-step merge shape (transitional {q,r} directly into
// {q,r,s,t}) reproduces in the vast majority of runs, but a membership
// race can legally split the merge into several rounds (e.g. q meets s and
// t before r), which is churn, not a violation.
func TestFig6Sweep(t *testing.T) {
	exact := 0
	const seeds = 28
	for seed := int64(1); seed <= seeds; seed++ {
		res := Figure6(seed)
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations %v", seed, res.Violations)
		}
		if !res.PIsolated {
			t.Fatalf("seed %d: p not isolated via singleton transitional: %v", seed, res.ConfigSeqs["p"])
		}
		// Every run must converge on the merged configuration.
		for _, id := range []evs.ProcessID{"q", "r", "s", "t"} {
			seq := res.ConfigSeqs[id]
			if len(seq) == 0 {
				t.Fatalf("seed %d: %s installed nothing", seed, id)
			}
			if last := seq[len(seq)-1]; !strings.HasSuffix(last, "{q,r,s,t}") {
				t.Fatalf("seed %d: %s final configuration %s", seed, id, last)
			}
		}
		if res.QRTransitional {
			exact++
		}
	}
	if exact*10 < seeds*9 {
		t.Fatalf("exact single-step merges %d/%d, want >= 90%%", exact, seeds)
	}
}

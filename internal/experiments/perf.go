package experiments

import (
	"fmt"
	"runtime"
	"time"

	evs "repro"
)

// ThroughputRow is one point of the ordering-throughput series (T1).
type ThroughputRow struct {
	GroupSize int
	// Delivered is the number of message deliveries completed at every
	// member within the measurement window.
	Delivered int
	// VirtualSeconds is the measurement window in virtual time.
	VirtualSeconds float64
	// MsgsPerSec is Delivered / VirtualSeconds.
	MsgsPerSec float64
	// TokenRotations during the window.
	TokenRotations int
	// Broadcasts is the total wire broadcasts (protocol overhead).
	Broadcasts uint64
	// Packets is the number of simulated packet deliveries during the
	// window (every broadcast counts once per receiver).
	Packets uint64
	// PacketsPerMsg is Packets divided by the per-member stream length:
	// how many wire packets the ring spent per fully ordered message.
	PacketsPerMsg float64
}

// Throughput measures ordering throughput for one group size: every member
// keeps the send queue saturated for the window and the row reports
// messages fully delivered per virtual second.
func Throughput(size int, seed int64, window time.Duration) ThroughputRow {
	g := evs.NewGroup(evs.Options{NumProcesses: size, Seed: seed})
	ids := g.IDs()
	tokens := 0
	g.OnWire(func(_ evs.ProcessID, kind string) {
		if kind == "token" {
			tokens++
		}
	})
	warm := 300 * time.Millisecond
	g.Run(warm)
	// Offer a fixed per-process load of 15k msgs/s (75 messages every
	// 5ms): at small group sizes the measured rate is demand-limited and
	// scales with the number of senders, while at large sizes it
	// approaches the ring's ordering capacity under adaptive flow
	// control. The backlog stays well below the node's MaxPending bound,
	// so no submissions are shed.
	payload := make([]byte, 64)
	var refill func()
	refill = func() {
		if g.Now() >= warm+window {
			return
		}
		for _, id := range ids {
			for k := 0; k < 75; k++ {
				g.Send(g.Now(), id, payload, evs.Safe)
			}
		}
		g.At(g.Now()+5*time.Millisecond, refill)
	}
	g.At(warm, refill)

	startDelivered := countDeliveries(g, ids)
	startTokens := tokens
	startPackets := g.NetStats().Delivered
	g.Run(warm + window)
	delivered := countDeliveries(g, ids) - startDelivered
	packets := g.NetStats().Delivered - startPackets
	secs := window.Seconds()
	row := ThroughputRow{
		GroupSize:      size,
		Delivered:      delivered / size, // per-member stream length
		VirtualSeconds: secs,
		MsgsPerSec:     float64(delivered/size) / secs,
		TokenRotations: (tokens - startTokens) / size,
		Broadcasts:     g.NetStats().Broadcasts,
		Packets:        packets,
	}
	if row.Delivered > 0 {
		row.PacketsPerMsg = float64(packets) / float64(row.Delivered)
	}
	return row
}

// OrderingBenchRow extends a throughput point with host-side cost metrics:
// wall-clock nanoseconds, heap bytes, and allocations per ordered message.
// These are measured over the whole simulated run, so they charge the
// ordering path together with the simulator driving it — comparable across
// revisions of this repo, not across machines.
type OrderingBenchRow struct {
	GroupSize      int     `json:"procs"`
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	NsPerMsg       float64 `json:"ns_per_msg"`
	BytesPerMsg    float64 `json:"bytes_per_msg"`
	AllocsPerMsg   float64 `json:"allocs_per_msg"`
	PacketsPerMsg  float64 `json:"packets_per_msg"`
	TokenRotations int     `json:"token_rotations"`
	Delivered      int     `json:"delivered"`
}

// OrderingBench runs Throughput under wall-clock and allocation
// instrumentation. It is a benchmark helper, not a deterministic
// experiment: NsPerMsg depends on the host.
func OrderingBench(size int, seed int64, window time.Duration) OrderingBenchRow {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	//lint:allow determinism wall-clock measures benchmark runtime only; NsPerMsg is documented host-dependent and never feeds protocol state
	start := time.Now()
	row := Throughput(size, seed, window)
	//lint:allow determinism wall-clock measures benchmark runtime only; NsPerMsg is documented host-dependent and never feeds protocol state
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	out := OrderingBenchRow{
		GroupSize:      row.GroupSize,
		MsgsPerSec:     row.MsgsPerSec,
		PacketsPerMsg:  row.PacketsPerMsg,
		TokenRotations: row.TokenRotations,
		Delivered:      row.Delivered,
	}
	if row.Delivered > 0 {
		n := float64(row.Delivered)
		out.NsPerMsg = float64(elapsed.Nanoseconds()) / n
		out.BytesPerMsg = float64(m1.TotalAlloc-m0.TotalAlloc) / n
		out.AllocsPerMsg = float64(m1.Mallocs-m0.Mallocs) / n
	}
	return out
}

func countDeliveries(g *evs.Group, ids []evs.ProcessID) int {
	n := 0
	for _, id := range ids {
		n += len(g.Deliveries(id))
	}
	return n
}

// LatencyRow compares agreed and safe delivery latency (T1b).
type LatencyRow struct {
	GroupSize int
	// AgreedMs and SafeMs are mean submit-to-delivery latencies at the
	// sender, in virtual milliseconds.
	AgreedMs float64
	SafeMs   float64
	// SafeOverAgreed is the latency ratio.
	SafeOverAgreed float64
}

// Latency measures submit-to-self-delivery latency for isolated messages
// (no queuing) of both service levels.
func Latency(size int, seed int64, samples int) LatencyRow {
	measure := func(svc evs.Service) float64 {
		g := evs.NewGroup(evs.Options{NumProcesses: size, Seed: seed})
		ids := g.IDs()
		g.Run(300 * time.Millisecond)
		var total time.Duration
		for i := 0; i < samples; i++ {
			at := g.Now() + 20*time.Millisecond
			sender := ids[i%size]
			g.Send(at, sender, []byte{byte(i)}, svc)
			before := len(g.Deliveries(sender))
			g.Run(at + 150*time.Millisecond)
			ds := g.Deliveries(sender)
			if len(ds) <= before {
				continue
			}
			total += ds[len(ds)-1].Time - at
		}
		return float64(total.Microseconds()) / float64(samples) / 1000.0
	}
	agreed := measure(evs.Agreed)
	safe := measure(evs.Safe)
	ratio := 0.0
	if agreed > 0 {
		ratio = safe / agreed
	}
	return LatencyRow{GroupSize: size, AgreedMs: agreed, SafeMs: safe, SafeOverAgreed: ratio}
}

// RecoveryRow is one point of the recovery-cost series (T2).
type RecoveryRow struct {
	// Backlog is the number of messages still undelivered (blocked
	// behind an unacknowledgeable safe message) when the partition
	// strikes.
	Backlog int
	// RecoveryMs is the virtual time from the partition to the
	// surviving component's installation of its new regular
	// configuration.
	RecoveryMs float64
	// Rebroadcasts counts recovery rebroadcast traffic.
	Rebroadcasts int
}

// RecoveryMedian runs Recovery over several seeds and returns the row with
// the median recovery time, damping failure-detection timing outliers.
func RecoveryMedian(backlog int, seeds int) RecoveryRow {
	rows := make([]RecoveryRow, 0, seeds)
	for s := 0; s < seeds; s++ {
		r := Recovery(backlog, int64(s+1))
		if r.RecoveryMs > 0 {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return RecoveryRow{Backlog: backlog, RecoveryMs: -1}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].RecoveryMs < rows[i].RecoveryMs {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return rows[len(rows)/2]
}

// Recovery measures reconfiguration latency as a function of the message
// backlog outstanding at partition time. The backlog is created by
// partitioning one member away abruptly while traffic is in flight:
// messages queued behind unacknowledged safe messages must be exchanged
// and re-delivered during recovery.
func Recovery(backlog int, seed int64) RecoveryRow {
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: seed})
	ids := g.IDs()
	g.Run(300 * time.Millisecond)
	// Submit the backlog as a burst, then partition immediately so much
	// of it is still undelivered at the cut.
	at := g.Now() + 10*time.Millisecond
	for i := 0; i < backlog; i++ {
		g.Send(at, ids[i%3], make([]byte, 32), evs.Safe)
	}
	cut := at + 2*time.Millisecond
	g.Partition(cut, []evs.ProcessID{ids[0], ids[1], ids[2]}, []evs.ProcessID{ids[3]})

	rebroadcasts := 0
	g.OnWire(func(_ evs.ProcessID, kind string) {
		if kind == "data" && g.Now() > cut {
			rebroadcasts++
		}
	})
	g.Run(cut + 2*time.Second)

	// Find the surviving majority's new regular configuration install
	// time.
	var installed time.Duration
	for _, ce := range g.ConfigEvents(ids[0]) {
		if ce.Time > cut && ce.Config.ID.IsRegular() &&
			ce.Config.Members.Equal(evs.NewProcessSet(ids[0], ids[1], ids[2])) {
			installed = ce.Time
			break
		}
	}
	if installed == 0 {
		return RecoveryRow{Backlog: backlog, RecoveryMs: -1}
	}
	return RecoveryRow{
		Backlog:      backlog,
		RecoveryMs:   float64((installed - cut).Microseconds()) / 1000.0,
		Rebroadcasts: rebroadcasts,
	}
}

// AvailabilityRow is one point of the EVS-versus-VS availability series
// (T3).
type AvailabilityRow struct {
	// Split is the size of the larger component out of five processes.
	Split int
	// EVSActive is the fraction of live processes able to send and
	// deliver new messages during the partition under EVS.
	EVSActive float64
	// VSActive is the same fraction under the virtual synchrony filter
	// (primary component only).
	VSActive float64
}

// Availability partitions a five-process group into components of sizes
// (split, 5-split) with traffic everywhere, and measures which processes'
// applications make progress during the partition at each layer.
func Availability(split int, seed int64) AvailabilityRow {
	const n = 5
	g := evs.NewGroup(evs.Options{NumProcesses: n, Seed: seed, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:split], ids[split:])
	// Every process sends during the partition.
	for i, id := range ids {
		g.Send(time.Duration(800+10*i)*time.Millisecond, id, []byte(fmt.Sprintf("m%d", i)), evs.Safe)
	}
	g.Run(1800 * time.Millisecond)

	evsActive, vsActive := 0, 0
	for _, id := range ids {
		// EVS progress: the process delivered a message sent after
		// the partition.
		for _, d := range g.Deliveries(id) {
			if d.Time > 800*time.Millisecond && len(d.Payload) > 0 && d.Payload[0] == 'm' {
				evsActive++
				break
			}
		}
		for _, e := range g.VSEvents(id) {
			if e.Deliver != nil && e.Time > 800*time.Millisecond && len(e.Deliver.Payload) > 0 && e.Deliver.Payload[0] == 'm' {
				vsActive++
				break
			}
		}
	}
	return AvailabilityRow{
		Split:     split,
		EVSActive: float64(evsActive) / n,
		VSActive:  float64(vsActive) / n,
	}
}

// PrimaryRow summarises the primary-history experiment (P1).
type PrimaryRow struct {
	Seed       int64
	Reconfigs  int
	Primaries  int
	Violations int
}

// PrimaryHistory drives a five-process group through a partition/merge
// storm with the primary layer enabled and checks Uniqueness and
// Continuity.
func PrimaryHistory(seed int64) PrimaryRow {
	g := evs.NewGroup(evs.Options{NumProcesses: 5, Seed: seed, EnablePrimary: true})
	ids := g.IDs()
	g.Partition(250*time.Millisecond, ids[:3], ids[3:])
	g.Partition(500*time.Millisecond, ids[:2], ids[2:4], ids[4:])
	g.Merge(750 * time.Millisecond)
	g.Partition(1000*time.Millisecond, ids[1:], ids[:1])
	g.Merge(1250 * time.Millisecond)
	g.Partition(1500*time.Millisecond, ids[:4], ids[4:])
	g.Merge(1750 * time.Millisecond)
	g.Run(2500 * time.Millisecond)

	row := PrimaryRow{Seed: seed}
	seen := map[string]bool{}
	for _, id := range ids {
		row.Reconfigs += len(g.ConfigEvents(id))
		for _, pe := range g.PrimaryEvents(id) {
			if pe.Primary && !seen[pe.Config.ID.String()] {
				seen[pe.Config.ID.String()] = true
				row.Primaries++
			}
		}
	}
	row.Violations = len(g.Check(true))
	return row
}

package experiments

import (
	"fmt"
	"runtime"
	"time"

	evs "repro"
	"repro/internal/node"
)

// ThroughputRow is one point of the ordering-throughput series (T1).
type ThroughputRow struct {
	GroupSize int
	// Delivered is the number of message deliveries completed at every
	// member within the measurement window.
	Delivered int
	// TotalDeliveries is the total number of delivery events during the
	// window across all members (≈ Delivered × GroupSize): the unit the
	// host-side cost metrics are normalised by.
	TotalDeliveries int
	// VirtualSeconds is the measurement window in virtual time.
	VirtualSeconds float64
	// MsgsPerSec is Delivered / VirtualSeconds.
	MsgsPerSec float64
	// TokenRotations during the window.
	TokenRotations int
	// Broadcasts is the total wire broadcasts (protocol overhead).
	Broadcasts uint64
	// Packets is the number of simulated packet deliveries during the
	// window (every broadcast counts once per receiver).
	Packets uint64
	// PacketsPerMsg is Packets divided by the per-member stream length:
	// how many wire packets the ring spent per fully ordered message.
	PacketsPerMsg float64
	// PeakPending is the high-water mark of the simulator's event queue
	// over the run: the scheduler-side memory footprint of the row.
	PeakPending int
}

// benchNodeConfig is the protocol configuration the throughput rows run
// under: the adaptive flow-control ceiling and the send backlog are raised
// so the ring reaches its ordering capacity instead of the interactive
// defaults' shallow limits. Every other parameter is the default.
func benchNodeConfig() *node.Config {
	cfg := node.DefaultConfig()
	cfg.Totem.AdaptiveMax = 256
	cfg.MaxPending = 8192
	return &cfg
}

// aggregateOffered is the fixed aggregate offered load of the throughput
// rows: messages per 5ms refill tick, split evenly across the group
// (≈1.2M msgs/s total). Keeping the offered load constant while varying
// the group size is the paper's design point — the interesting curve is
// per-message cost at fixed load, not demand scaling with sender count.
const aggregateOffered = 6000

// Throughput measures ordering throughput for one group size: the group
// runs in discard mode (no retained histories) while a fixed aggregate
// offered load saturates the ring, and the row reports messages fully
// delivered per virtual second.
func Throughput(size int, seed int64, window time.Duration) ThroughputRow {
	return throughputRun(size, seed, window, nil)
}

// throughputRun is Throughput with a steady-state hook: onSteady (if
// non-nil) fires once the group has booted and warmed, immediately before
// the loaded measurement window. OrderingBench anchors its wall-clock and
// allocation baselines there so ring formation (a one-time join storm that
// grows with group size) is not charged to the per-message costs.
func throughputRun(size int, seed int64, window time.Duration, onSteady func()) ThroughputRow {
	g := evs.NewGroup(evs.Options{
		NumProcesses:   size,
		Seed:           seed,
		Node:           benchNodeConfig(),
		DiscardHistory: true,
	})
	ids := g.IDs()
	tokens := 0
	g.OnWire(func(_ evs.ProcessID, kind string) {
		if kind == "token" {
			tokens++
		}
	})
	warm := 300 * time.Millisecond
	g.Run(warm)
	if onSteady != nil {
		onSteady()
	}
	// Refill the send backlogs every 5ms, splitting the aggregate load
	// evenly across members. Submissions beyond a node's MaxPending bound
	// are shed by backpressure (counted, not queued), so the backlog —
	// and the scheduler's event queue — stay bounded however far offered
	// load exceeds ring capacity.
	payload := make([]byte, 64)
	per := (aggregateOffered + size - 1) / size
	var refill func()
	refill = func() {
		if g.Now() >= warm+window {
			return
		}
		for _, id := range ids {
			for k := 0; k < per; k++ {
				_ = g.Submit(id, payload, evs.Safe)
			}
		}
		g.At(g.Now()+5*time.Millisecond, refill)
	}
	g.At(warm, refill)

	startDelivered := countDeliveries(g, ids)
	startTokens := tokens
	startPackets := g.NetStats().Delivered
	g.Run(warm + window)
	delivered := countDeliveries(g, ids) - startDelivered
	packets := g.NetStats().Delivered - startPackets
	secs := window.Seconds()
	row := ThroughputRow{
		GroupSize:       size,
		Delivered:       delivered / size, // per-member stream length
		TotalDeliveries: delivered,
		VirtualSeconds:  secs,
		MsgsPerSec:      float64(delivered/size) / secs,
		TokenRotations:  (tokens - startTokens) / size,
		Broadcasts:      g.NetStats().Broadcasts,
		Packets:         packets,
		PeakPending:     g.PeakPending(),
	}
	if row.Delivered > 0 {
		row.PacketsPerMsg = float64(packets) / float64(row.Delivered)
	}
	return row
}

// OrderingBenchRow extends a throughput point with host-side cost metrics:
// wall-clock nanoseconds, heap bytes, and allocations per message
// *delivery* (ordered message × member) over the loaded steady-state
// window. Per-delivery is the per-node cost a deployment pays — the
// quantity Totem's design point says is ~flat in ring size — whereas
// charging all N simulated nodes' work to each ordered message would grow
// linearly in N by construction. The metrics charge the ordering path
// together with the simulator driving it: comparable across revisions of
// this repo, not across machines.
type OrderingBenchRow struct {
	GroupSize      int     `json:"procs"`
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	NsPerMsg       float64 `json:"ns_per_msg"`
	BytesPerMsg    float64 `json:"bytes_per_msg"`
	AllocsPerMsg   float64 `json:"allocs_per_msg"`
	PacketsPerMsg  float64 `json:"packets_per_msg"`
	TokenRotations int     `json:"token_rotations"`
	Delivered      int     `json:"delivered"`
	PeakPending    int     `json:"peak_pending"`
}

// OrderingBench runs Throughput under wall-clock and allocation
// instrumentation, anchored at steady state (after ring formation and
// warm-up). It is a benchmark helper, not a deterministic experiment:
// NsPerMsg depends on the host.
func OrderingBench(size int, seed int64, window time.Duration) OrderingBenchRow {
	var m0, m1 runtime.MemStats
	var start time.Time
	row := throughputRun(size, seed, window, func() {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		//lint:allow determinism wall-clock measures benchmark runtime only; NsPerMsg is documented host-dependent and never feeds protocol state
		start = time.Now()
	})
	//lint:allow determinism wall-clock measures benchmark runtime only; NsPerMsg is documented host-dependent and never feeds protocol state
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	out := OrderingBenchRow{
		GroupSize:      row.GroupSize,
		MsgsPerSec:     row.MsgsPerSec,
		PacketsPerMsg:  row.PacketsPerMsg,
		TokenRotations: row.TokenRotations,
		Delivered:      row.Delivered,
		PeakPending:    row.PeakPending,
	}
	if row.TotalDeliveries > 0 {
		n := float64(row.TotalDeliveries)
		out.NsPerMsg = float64(elapsed.Nanoseconds()) / n
		out.BytesPerMsg = float64(m1.TotalAlloc-m0.TotalAlloc) / n
		out.AllocsPerMsg = float64(m1.Mallocs-m0.Mallocs) / n
	}
	return out
}

func countDeliveries(g *evs.Group, ids []evs.ProcessID) int {
	n := 0
	for _, id := range ids {
		n += int(g.DeliveryCount(id))
	}
	return n
}

// LatencyRow compares agreed and safe delivery latency (T1b).
type LatencyRow struct {
	GroupSize int
	// AgreedMs and SafeMs are mean submit-to-delivery latencies at the
	// sender, in virtual milliseconds.
	AgreedMs float64
	SafeMs   float64
	// SafeOverAgreed is the latency ratio.
	SafeOverAgreed float64
}

// Latency measures submit-to-self-delivery latency for isolated messages
// (no queuing) of both service levels.
func Latency(size int, seed int64, samples int) LatencyRow {
	measure := func(svc evs.Service) float64 {
		g := evs.NewGroup(evs.Options{NumProcesses: size, Seed: seed})
		ids := g.IDs()
		g.Run(300 * time.Millisecond)
		var total time.Duration
		for i := 0; i < samples; i++ {
			at := g.Now() + 20*time.Millisecond
			sender := ids[i%size]
			g.Send(at, sender, []byte{byte(i)}, svc)
			before := len(g.Deliveries(sender))
			g.Run(at + 150*time.Millisecond)
			ds := g.Deliveries(sender)
			if len(ds) <= before {
				continue
			}
			total += ds[len(ds)-1].Time - at
		}
		return float64(total.Microseconds()) / float64(samples) / 1000.0
	}
	agreed := measure(evs.Agreed)
	safe := measure(evs.Safe)
	ratio := 0.0
	if agreed > 0 {
		ratio = safe / agreed
	}
	return LatencyRow{GroupSize: size, AgreedMs: agreed, SafeMs: safe, SafeOverAgreed: ratio}
}

// RecoveryRow is one point of the recovery-cost series (T2).
type RecoveryRow struct {
	// Backlog is the number of messages still undelivered (blocked
	// behind an unacknowledgeable safe message) when the partition
	// strikes.
	Backlog int
	// RecoveryMs is the virtual time from the partition to the
	// surviving component's installation of its new regular
	// configuration.
	RecoveryMs float64
	// Rebroadcasts counts recovery rebroadcast traffic.
	Rebroadcasts int
}

// RecoveryMedian runs Recovery over several seeds and returns the row with
// the median recovery time, damping failure-detection timing outliers.
func RecoveryMedian(backlog int, seeds int) RecoveryRow {
	rows := make([]RecoveryRow, 0, seeds)
	for s := 0; s < seeds; s++ {
		r := Recovery(backlog, int64(s+1))
		if r.RecoveryMs > 0 {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return RecoveryRow{Backlog: backlog, RecoveryMs: -1}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].RecoveryMs < rows[i].RecoveryMs {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return rows[len(rows)/2]
}

// Recovery measures reconfiguration latency as a function of the message
// backlog outstanding at partition time. The backlog is created by
// partitioning one member away abruptly while traffic is in flight:
// messages queued behind unacknowledged safe messages must be exchanged
// and re-delivered during recovery.
func Recovery(backlog int, seed int64) RecoveryRow {
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: seed})
	ids := g.IDs()
	g.Run(300 * time.Millisecond)
	// Submit the backlog as a burst, then partition immediately so much
	// of it is still undelivered at the cut.
	at := g.Now() + 10*time.Millisecond
	for i := 0; i < backlog; i++ {
		g.Send(at, ids[i%3], make([]byte, 32), evs.Safe)
	}
	cut := at + 2*time.Millisecond
	g.Partition(cut, []evs.ProcessID{ids[0], ids[1], ids[2]}, []evs.ProcessID{ids[3]})

	rebroadcasts := 0
	g.OnWire(func(_ evs.ProcessID, kind string) {
		if kind == "data" && g.Now() > cut {
			rebroadcasts++
		}
	})
	g.Run(cut + 2*time.Second)

	// Find the surviving majority's new regular configuration install
	// time.
	var installed time.Duration
	for _, ce := range g.ConfigEvents(ids[0]) {
		if ce.Time > cut && ce.Config.ID.IsRegular() &&
			ce.Config.Members.Equal(evs.NewProcessSet(ids[0], ids[1], ids[2])) {
			installed = ce.Time
			break
		}
	}
	if installed == 0 {
		return RecoveryRow{Backlog: backlog, RecoveryMs: -1}
	}
	return RecoveryRow{
		Backlog:      backlog,
		RecoveryMs:   float64((installed - cut).Microseconds()) / 1000.0,
		Rebroadcasts: rebroadcasts,
	}
}

// AvailabilityRow is one point of the EVS-versus-VS availability series
// (T3).
type AvailabilityRow struct {
	// Split is the size of the larger component out of five processes.
	Split int
	// EVSActive is the fraction of live processes able to send and
	// deliver new messages during the partition under EVS.
	EVSActive float64
	// VSActive is the same fraction under the virtual synchrony filter
	// (primary component only).
	VSActive float64
}

// Availability partitions a five-process group into components of sizes
// (split, 5-split) with traffic everywhere, and measures which processes'
// applications make progress during the partition at each layer.
func Availability(split int, seed int64) AvailabilityRow {
	const n = 5
	g := evs.NewGroup(evs.Options{NumProcesses: n, Seed: seed, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:split], ids[split:])
	// Every process sends during the partition.
	for i, id := range ids {
		g.Send(time.Duration(800+10*i)*time.Millisecond, id, []byte(fmt.Sprintf("m%d", i)), evs.Safe)
	}
	g.Run(1800 * time.Millisecond)

	evsActive, vsActive := 0, 0
	for _, id := range ids {
		// EVS progress: the process delivered a message sent after
		// the partition.
		for _, d := range g.Deliveries(id) {
			if d.Time > 800*time.Millisecond && len(d.Payload) > 0 && d.Payload[0] == 'm' {
				evsActive++
				break
			}
		}
		for _, e := range g.VSEvents(id) {
			if e.Deliver != nil && e.Time > 800*time.Millisecond && len(e.Deliver.Payload) > 0 && e.Deliver.Payload[0] == 'm' {
				vsActive++
				break
			}
		}
	}
	return AvailabilityRow{
		Split:     split,
		EVSActive: float64(evsActive) / n,
		VSActive:  float64(vsActive) / n,
	}
}

// PrimaryRow summarises the primary-history experiment (P1).
type PrimaryRow struct {
	Seed       int64
	Reconfigs  int
	Primaries  int
	Violations int
}

// PrimaryHistory drives a five-process group through a partition/merge
// storm with the primary layer enabled and checks Uniqueness and
// Continuity.
func PrimaryHistory(seed int64) PrimaryRow {
	g := evs.NewGroup(evs.Options{NumProcesses: 5, Seed: seed, EnablePrimary: true})
	ids := g.IDs()
	g.Partition(250*time.Millisecond, ids[:3], ids[3:])
	g.Partition(500*time.Millisecond, ids[:2], ids[2:4], ids[4:])
	g.Merge(750 * time.Millisecond)
	g.Partition(1000*time.Millisecond, ids[1:], ids[:1])
	g.Merge(1250 * time.Millisecond)
	g.Partition(1500*time.Millisecond, ids[:4], ids[4:])
	g.Merge(1750 * time.Millisecond)
	g.Run(2500 * time.Millisecond)

	row := PrimaryRow{Seed: seed}
	seen := map[string]bool{}
	for _, id := range ids {
		row.Reconfigs += len(g.ConfigEvents(id))
		for _, pe := range g.PrimaryEvents(id) {
			if pe.Primary && !seen[pe.Config.ID.String()] {
				seen[pe.Config.ID.String()] = true
				row.Primaries++
			}
		}
	}
	row.Violations = len(g.Check(true))
	return row
}

package experiments

import (
	"testing"
	"time"
)

// groupsAllocBudget is the pinned allocation budget per group-layer
// member delivery in the loaded cluster scenario — the acceptance bound
// of the lightweight-group work ("allocs/group-delivery at members is a
// small constant (≤ 2)"). The measured value is ~0.04 (amortised arena
// chunk refills plus the transport's own amortised costs underneath);
// the budget sits far above that so host jitter cannot flake it, while
// one stray per-delivery allocation in the decode→filter→fan-out path
// (≥1.0 here) still trips the gate immediately.
const groupsAllocBudget = 2.0

// TestGroupsAllocBudget is the dynamic half of the group-layer
// zero-alloc enforcement pair (the "Groups alloc gate" CI step): the
// //evs:noalloc analyzer run by the "Invariant lint" step proves the
// annotated encode/peek/deliver functions avoid allocating construct
// classes, and this gate measures the end-to-end truth the analyzer
// cannot see — a mid-sized cluster scenario with clients, filtering,
// and Zipf traffic, charged per member delivery.
func TestGroupsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loaded steady-state measurement")
	}
	cfg := GroupsBenchConfig{
		Procs: 8, Groups: 500, Clients: 5000, Seed: 1,
		Window: 150 * time.Millisecond, BatchOps: 256, ZipfS: 1.2, LayerMsgs: 0,
	}
	row, err := GroupsCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.MemberDeliveries == 0 {
		t.Fatal("no group deliveries in measurement window")
	}
	if row.Filtered == 0 {
		t.Fatal("scenario produced no filtered drops; the gate must cover the fast path")
	}
	t.Logf("%d procs, %d groups, %d clients: %.0f group msgs/s, %.3f allocs/group-delivery (budget %.2f), %.0f B/group-delivery, %.0f%% filtered",
		row.Procs, row.Groups, row.Clients, row.GroupMsgsPerSec,
		row.AllocsPerGroupDelivery, groupsAllocBudget, row.BytesPerGroupDelivery, 100*row.FilteredShare)
	if row.AllocsPerGroupDelivery > groupsAllocBudget {
		t.Errorf("allocs per group delivery %.3f exceeds pinned budget %.2f",
			row.AllocsPerGroupDelivery, groupsAllocBudget)
	}
}

// Wire codec benchmark (W1): per-kind encode/decode cost of the flat
// binary codec the real transports put on the wire. The report feeds
// BENCH_wire.json; the data-path rows double as an allocation gate —
// steady-state encode and decode of the Data hot path must stay at zero
// allocations per operation, mirroring the static //evs:noalloc proof
// and the TestWireDataCodecZeroAlloc dynamic check in internal/wire.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// WireBenchRow is one message kind's measured codec cost.
type WireBenchRow struct {
	Kind         string  `json:"kind"`
	Bytes        int     `json:"bytes"` // encoded frame size
	EncodeNsOp   float64 `json:"encode_ns_op"`
	EncodeAllocs float64 `json:"encode_allocs_op"`
	DecodeNsOp   float64 `json:"decode_ns_op"`
	DecodeAllocs float64 `json:"decode_allocs_op"`
}

// WireBenchReport is the BENCH_wire.json document.
type WireBenchReport struct {
	Iters int            `json:"iters"`
	Rows  []WireBenchRow `json:"rows"`
}

// wireBenchMessages returns one representatively-shaped message per wire
// kind: payload sizes, batch widths and set sizes are the steady-state
// shapes a loaded 8-process ring produces, so the per-kind costs are the
// ones a deployment actually pays.
func wireBenchMessages() []wire.Message {
	ids := make([]model.ProcessID, 8)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i+1))
	}
	u := vclock.NewUniverse(ids)
	d := u.NewDense()
	for i := range d {
		d[i] = int32(40 + i)
	}
	stamp := vclock.Stamp{U: u, D: d}
	ring := model.ConfigID{Kind: model.Regular, Seq: 17, Rep: ids[0], PrevSeq: 12, PrevRep: ids[3]}
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	data := wire.Data{
		ID:      model.MessageID{Sender: ids[2], SenderSeq: 905},
		Ring:    ring,
		Seq:     4242,
		Service: model.Agreed,
		Payload: payload,
		VC:      stamp,
	}
	batch := wire.DataBatch{Ring: ring, Msgs: make([]wire.Data, 16)}
	for i := range batch.Msgs {
		m := data
		m.Seq = data.Seq + uint64(i)
		m.ID.SenderSeq = data.ID.SenderSeq + uint64(i)
		batch.Msgs[i] = m
	}
	return []wire.Message{
		data,
		batch,
		wire.Token{Ring: ring, TokenID: 9001, Seq: 4257, Aru: 4240, AruID: ids[5],
			Rtr: []wire.SeqRange{{Lo: 4241, Hi: 4243}, {Lo: 4250, Hi: 4250}}},
		wire.Join{Sender: ids[1], Alive: ids[:6], Failed: ids[6:], MaxRingSeq: 4257, Attempt: 3},
		wire.Commit{NewRing: ring, Members: ids, Attempt: 3},
		wire.CommitAck{Ring: ring, Sender: ids[4], Attempt: 3},
		wire.Install{NewRing: ring, Members: ids, Attempt: 3},
		wire.Exchange{Ring: ring, Sender: ids[2], OldRing: ring, OldMembers: ids,
			MyAru: 4240, Have: []uint64{4245, 4247}, SafeBound: 4238, HighestSeen: 4257,
			DeliveredUpTo: 4240, Obligations: ids[:4],
			SeenSeqs: []wire.SeenSeq{{Proc: ids[0], Seq: 900}, {Proc: ids[2], Seq: 905}}},
		wire.RecoveryDone{Ring: ring, Sender: ids[7], OldRing: ring},
	}
}

// benchOp times fn over iters runs and returns (ns/op, allocs/op).
// Mallocs deltas need a single-goroutine steady state, which the bench
// runner guarantees.
func benchOp(iters int, fn func()) (float64, float64) {
	fn() // warm caches, arenas, interning tables
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//lint:allow determinism wall-clock measures benchmark runtime only; codec ns are documented host-dependent and never feed protocol state
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	//lint:allow determinism wall-clock measures benchmark runtime only; codec ns are documented host-dependent and never feed protocol state
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(m1.Mallocs-m0.Mallocs) / float64(iters)
}

// WireBench measures steady-state encode and decode cost for every wire
// message kind. Encode appends into a reused buffer and decode reuses
// one Decoder, exactly as the transports do, so the rows report the
// amortised per-frame cost rather than cold-start arena growth.
func WireBench(iters int) (WireBenchReport, error) {
	rep := WireBenchReport{Iters: iters}
	for _, msg := range wireBenchMessages() {
		frame, err := wire.Encode(msg)
		if err != nil {
			return rep, fmt.Errorf("encode %s: %w", msg.Kind(), err)
		}
		buf := make([]byte, 0, 2*len(frame))
		encNs, encAllocs := benchOp(iters, func() {
			buf, err = wire.AppendMessage(buf[:0], msg)
		})
		if err != nil {
			return rep, fmt.Errorf("append %s: %w", msg.Kind(), err)
		}
		dec := wire.NewDecoder()
		var derr error
		var decNs, decAllocs float64
		if msg.Kind() == "data" {
			// DecodeData into a reused struct is the codec's zero-alloc
			// data path and the subject of the alloc gate; the generic
			// Decode below boxes its result, an interface allocation
			// that is not a codec cost.
			var out wire.Data
			decNs, decAllocs = benchOp(iters, func() {
				derr = dec.DecodeData(frame, &out)
			})
		} else {
			decNs, decAllocs = benchOp(iters, func() {
				_, derr = dec.Decode(frame)
			})
		}
		if derr != nil {
			return rep, fmt.Errorf("decode %s: %w", msg.Kind(), derr)
		}
		rep.Rows = append(rep.Rows, WireBenchRow{
			Kind:         msg.Kind(),
			Bytes:        len(frame),
			EncodeNsOp:   encNs,
			EncodeAllocs: encAllocs,
			DecodeNsOp:   decNs,
			DecodeAllocs: decAllocs,
		})
	}
	return rep, nil
}

// WireAllocGate enforces the zero-alloc contract on the hot rows of a
// report: Data encode must not allocate at all, and Data decode must
// amortise below a small epsilon (the decoder's arena refills at chunk
// boundaries). Returns nil when the contract holds.
func WireAllocGate(rep WireBenchReport) error {
	for _, r := range rep.Rows {
		if r.Kind != "data" {
			continue
		}
		if r.EncodeAllocs > 0 {
			return fmt.Errorf("wire alloc gate: data encode %.3f allocs/op, want 0", r.EncodeAllocs)
		}
		if r.DecodeAllocs > 0.05 {
			return fmt.Errorf("wire alloc gate: data decode %.3f allocs/op, want ~0", r.DecodeAllocs)
		}
		return nil
	}
	return fmt.Errorf("wire alloc gate: no data row in report")
}

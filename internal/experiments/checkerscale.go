package experiments

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

// CheckerScaleRow is one point of the checker scaling curve: a conforming
// synthetic history of Events events checked end-to-end by CheckAll.
type CheckerScaleRow struct {
	Procs     int
	Msgs      int
	Events    int
	CheckMs   float64
	NsPerEvt  float64
	EvtPerSec float64
}

// CheckerScale measures CheckAll wall-clock on conforming full-delivery
// histories of increasing size (procs processes, each message delivered
// by everyone). The checker's vector-timestamp core keeps this
// near-linear; the row series makes regressions visible in the report.
// A violation on the synthetic history means the checker (or the
// generator) regressed; it is returned as an error, not panicked.
func CheckerScale(procs int, msgsSeries []int) ([]CheckerScaleRow, error) {
	rows := make([]CheckerScaleRow, 0, len(msgsSeries))
	for _, msgs := range msgsSeries {
		events := fullDeliveryHistory(procs, msgs)
		//lint:allow determinism wall-clock measures checker runtime only; timings are labelled host-dependent and never feed protocol state
		start := time.Now()
		c := spec.NewChecker(events, spec.Options{Settled: true})
		if vs := c.CheckAll(); len(vs) != 0 {
			return nil, fmt.Errorf("experiments: conforming synthetic history flagged: %v", vs)
		}
		//lint:allow determinism wall-clock measures checker runtime only; timings are labelled host-dependent and never feed protocol state
		elapsed := time.Since(start)
		n := len(events)
		rows = append(rows, CheckerScaleRow{
			Procs:     procs,
			Msgs:      msgs,
			Events:    n,
			CheckMs:   float64(elapsed.Microseconds()) / 1000,
			NsPerEvt:  float64(elapsed.Nanoseconds()) / float64(n),
			EvtPerSec: float64(n) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// fullDeliveryHistory builds a conforming single-configuration history
// with msgs messages, each delivered by all procs processes.
func fullDeliveryHistory(procs, msgs int) []model.Event {
	ids := make([]model.ProcessID, procs)
	for i := range ids {
		ids[i] = model.ProcessID(fmt.Sprintf("p%02d", i))
	}
	members := model.NewProcessSet(ids...)
	cfg := model.RegularID(1, ids[0])
	events := make([]model.Event, 0, procs+msgs*(1+procs))
	for _, id := range ids {
		events = append(events, model.Event{
			Type: model.EventDeliverConf, Proc: id, Config: cfg, Members: members,
		})
	}
	for m := 0; m < msgs; m++ {
		sender := ids[m%procs]
		msg := model.MessageID{Sender: sender, SenderSeq: uint64(m/procs + 1)}
		events = append(events, model.Event{
			Type: model.EventSend, Proc: sender, Config: cfg, Members: members,
			Msg: msg, Service: model.Safe,
		})
		for _, id := range ids {
			events = append(events, model.Event{
				Type: model.EventDeliver, Proc: id, Config: cfg, Members: members,
				Msg: msg, Service: model.Safe,
			})
		}
	}
	return events
}

package experiments

import (
	"testing"
	"time"
)

func TestSmokeAll(t *testing.T) {
	rows := Figures1to5(1)
	for _, r := range rows {
		if !r.Pass() {
			t.Errorf("checker row failed: %+v", r)
		}
	}
	f6 := Figure6(6)
	if !f6.QRTransitional || !f6.PIsolated || len(f6.Violations) != 0 {
		t.Errorf("figure 6: %+v", f6)
	}
	f7 := Figure7(7)
	if f7.EVSDeliveriesMinority == 0 || f7.VSDeliveriesMinority != 0 ||
		len(f7.VSViolations) != 0 || len(f7.EVSViolations) != 0 {
		t.Errorf("figure 7: %+v", f7)
	}
	tr := Throughput(3, 1, 500*time.Millisecond)
	if tr.Delivered == 0 {
		t.Errorf("throughput: %+v", tr)
	}
	lat := Latency(3, 1, 5)
	if lat.AgreedMs <= 0 || lat.SafeMs <= lat.AgreedMs {
		t.Errorf("latency: %+v", lat)
	}
	rec := Recovery(50, 1)
	if rec.RecoveryMs <= 0 {
		t.Errorf("recovery: %+v", rec)
	}
	av := Availability(3, 1)
	if av.EVSActive != 1.0 || av.VSActive >= av.EVSActive {
		t.Errorf("availability: %+v", av)
	}
	pr := PrimaryHistory(1)
	if pr.Violations != 0 || pr.Primaries == 0 {
		t.Errorf("primary history: %+v", pr)
	}
}

package experiments

import (
	"testing"
	"time"
)

// orderingAllocBudget is the pinned per-delivery allocation budget for
// the loaded 16-process steady state. The measured value after the
// arena/pool work is ~0.02 allocs per delivery (amortised chunk refills
// and packet headers); the seed implementation paid ~18. The budget sits
// an order of magnitude above the measured value so host jitter cannot
// flake it, and two orders below the seed so any per-message allocation
// sneaking back into the submit→order→deliver path (one alloc/msg ⇒
// ~1.0 here) trips the gate immediately.
const orderingAllocBudget = 0.25

// TestOrderingAllocBudget16 is the dynamic half of the zero-alloc
// enforcement pair (the "Ordering alloc gate (16 procs)" CI step): the
// //evs:noalloc analyzer run by the "Invariant lint" step proves the
// annotated functions avoid allocating construct classes, and this gate
// measures the end-to-end truth the analyzer cannot see. A failure here
// with a clean lint means an unannotated function on the hot path
// regressed — profile with -sample_index=alloc_objects, fix, and extend
// the //evs:noalloc coverage to it.
func TestOrderingAllocBudget16(t *testing.T) {
	if testing.Short() {
		t.Skip("loaded steady-state measurement")
	}
	row := OrderingBench(16, 1, 300*time.Millisecond)
	if row.Delivered == 0 {
		t.Fatal("no deliveries in measurement window")
	}
	t.Logf("16 procs: %.0f msgs/s, %.3f allocs/delivery (budget %.2f), %.0f B/delivery",
		row.MsgsPerSec, row.AllocsPerMsg, orderingAllocBudget, row.BytesPerMsg)
	if row.AllocsPerMsg > orderingAllocBudget {
		t.Errorf("allocs per delivery %.3f exceeds pinned budget %.2f",
			row.AllocsPerMsg, orderingAllocBudget)
	}
}

// Package experiments regenerates the paper's figures and the protocol
// characterisation series. The ICDCS 1994 paper has no quantitative
// evaluation tables — its figures are the formal specifications (Figures
// 1-5), a worked partition/merge scenario (Figure 6) and the layered
// virtual-synchrony architecture (Figure 7) — so reproduction means
// executable conformance: protocol executions that pass the specification
// checker, deliberately violating traces that the checker flags, the exact
// Figure 6 scenario, the Figure 7 layering validated against Birman's
// model, plus the performance characterisation the Totem companion papers
// report (ordering throughput, safe-versus-agreed latency, recovery cost)
// and the paper's availability claim (all components make progress, versus
// the primary component only under virtual synchrony).
//
// Both cmd/evsbench and the repository's benchmark suite call into this
// package, so the printed report and the testing.B measurements stay in
// agreement.
package experiments

import (
	"fmt"
	"time"

	evs "repro"
	"repro/internal/model"
	"repro/internal/spec"
)

// CheckerRow is one conformance row of the Figure 1-5 reproduction.
type CheckerRow struct {
	Spec string // which specification clause
	Case string // "conforming" or the violation scenario
	// WantViolation is whether the checker must flag the trace.
	WantViolation bool
	// Flagged is whether it did.
	Flagged bool
}

// Pass reports whether the checker behaved as required.
func (r CheckerRow) Pass() bool { return r.WantViolation == r.Flagged }

// Figures1to5 exercises the specification checker in both directions: a
// conforming protocol execution per specification cluster, and a
// deliberately violating hand-built trace per clause (the scenarios drawn
// in Figures 1-5).
func Figures1to5(seed int64) []CheckerRow {
	var rows []CheckerRow

	// Conforming executions: one churny run checked per cluster.
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: seed})
	ids := g.IDs()
	for i := 0; i < 12; i++ {
		svc := evs.Safe
		if i%2 == 0 {
			svc = evs.Agreed
		}
		g.Send(time.Duration(150+i*20)*time.Millisecond, ids[i%4], []byte{byte(i)}, svc)
	}
	g.Partition(250*time.Millisecond, ids[:2], ids[2:])
	g.Merge(550 * time.Millisecond)
	g.Run(1500 * time.Millisecond)
	flagged := map[string]bool{}
	for _, v := range g.Check(true) {
		flagged[v.Spec] = true
	}
	for _, cl := range []string{"1.3", "1.4", "2.1", "2.2", "3", "4", "5", "6.1/6.2", "6.3", "7.1", "7.2"} {
		rows = append(rows, CheckerRow{
			Spec:          cl,
			Case:          "conforming protocol execution",
			WantViolation: false,
			Flagged:       flagged[cl],
		})
	}

	// Violating traces, one per clause (Figure 1-5 scenarios).
	rows = append(rows, violatingTraces()...)
	return rows
}

// violatingTraces builds one minimal violating trace per specification
// clause and reports whether the checker flags it.
func violatingTraces() []CheckerRow {
	cfg1 := model.RegularID(1, "p")
	cfg2 := model.RegularID(2, "p")
	pqr := model.NewProcessSet("p", "q", "r")
	pq := model.NewProcessSet("p", "q")
	m1 := model.MessageID{Sender: "p", SenderSeq: 1}
	m2 := model.MessageID{Sender: "q", SenderSeq: 1}
	conf := func(p model.ProcessID, c model.ConfigID, mem model.ProcessSet) model.Event {
		return model.Event{Type: model.EventDeliverConf, Proc: p, Config: c, Members: mem}
	}
	send := func(p model.ProcessID, m model.MessageID, c model.ConfigID, svc model.Service) model.Event {
		return model.Event{Type: model.EventSend, Proc: p, Msg: m, Config: c, Service: svc}
	}
	deliver := func(p model.ProcessID, m model.MessageID, c model.ConfigID, svc model.Service) model.Event {
		return model.Event{Type: model.EventDeliver, Proc: p, Msg: m, Config: c, Members: pqr, Service: svc}
	}
	base := []model.Event{conf("p", cfg1, pqr), conf("q", cfg1, pqr), conf("r", cfg1, pqr)}

	cases := []struct {
		spec   string
		name   string
		events []model.Event
	}{
		{"1.3", "delivery without a send (Figure 1)",
			append(append([]model.Event{}, base...), deliver("q", m1, cfg1, model.Agreed))},
		{"1.4", "same message sent twice (Figure 1)",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), send("p", m1, cfg1, model.Agreed))},
		{"2.2", "event outside the current configuration (Figure 2)",
			append(append([]model.Event{}, base...), send("p", m1, cfg2, model.Agreed))},
		{"3", "sender moved on without self-delivery (Figure 3)",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), conf("p", cfg2, pq))},
		{"4", "joint successors, different delivery sets (Figure 4)",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), deliver("p", m1, cfg1, model.Agreed),
				conf("p", cfg2, pq), conf("q", cfg2, pq))},
		{"5", "causal predecessor missing (Figure 5)",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), deliver("q", m1, cfg1, model.Agreed),
				send("q", m2, cfg1, model.Agreed), deliver("r", m2, cfg1, model.Agreed))},
		{"6.1/6.2", "conflicting delivery orders",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), send("q", m2, cfg1, model.Agreed),
				deliver("p", m1, cfg1, model.Agreed), deliver("p", m2, cfg1, model.Agreed),
				deliver("q", m2, cfg1, model.Agreed), deliver("q", m1, cfg1, model.Agreed))},
		{"6.3", "delivery prefix broken",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Agreed), send("q", m2, cfg1, model.Agreed),
				deliver("p", m1, cfg1, model.Agreed), deliver("p", m2, cfg1, model.Agreed),
				deliver("r", m2, cfg1, model.Agreed))},
		{"7.1", "safe delivery without counterpart",
			append(append([]model.Event{}, base...),
				send("p", m1, cfg1, model.Safe),
				deliver("p", m1, cfg1, model.Safe), deliver("q", m1, cfg1, model.Safe),
				conf("r", model.RegularID(5, "r"), model.NewProcessSet("r")))},
		{"7.2", "safe delivery in uninstalled configuration",
			[]model.Event{
				conf("p", cfg1, pqr), conf("q", cfg1, pqr),
				send("p", m1, cfg1, model.Safe), deliver("p", m1, cfg1, model.Safe),
			}},
	}
	var rows []CheckerRow
	for _, c := range cases {
		vs := spec.NewChecker(c.events, spec.Options{Settled: true}).CheckAll()
		hit := false
		for _, v := range vs {
			if v.Spec == c.spec {
				hit = true
			}
		}
		rows = append(rows, CheckerRow{
			Spec:          c.spec,
			Case:          c.name,
			WantViolation: true,
			Flagged:       hit,
		})
	}
	return rows
}

// Fig6Result captures the Figure 6 reproduction.
type Fig6Result struct {
	// ConfigSeqs is the configuration sequence delivered at each
	// process, rendered.
	ConfigSeqs map[evs.ProcessID][]string
	// QRTransitional reports whether q and r delivered the two
	// configuration changes of Figure 6: transitional {q,r} then
	// regular {q,r,s,t}.
	QRTransitional bool
	// PIsolated reports whether p finished in the singleton regular
	// configuration via a singleton transitional configuration.
	PIsolated bool
	// Violations from the specification checker (empty on success).
	Violations []evs.Violation
}

// Figure6 reproduces the paper's worked example: a regular configuration
// {p,q,r} partitions; p becomes isolated while q and r merge with the
// separate component {s,t}.
func Figure6(seed int64) Fig6Result {
	ids := []evs.ProcessID{"p", "q", "r", "s", "t"}
	g := evs.NewGroup(evs.Options{Processes: ids, Seed: seed})
	g.Partition(0, []evs.ProcessID{"p", "q", "r"}, []evs.ProcessID{"s", "t"})
	for i := 0; i < 6; i++ {
		g.Send(time.Duration(150+i*8)*time.Millisecond, ids[i%3], []byte{byte(i)}, evs.Safe)
	}
	g.Partition(300*time.Millisecond, []evs.ProcessID{"p"}, []evs.ProcessID{"q", "r", "s", "t"})
	g.Run(900 * time.Millisecond)

	res := Fig6Result{ConfigSeqs: make(map[evs.ProcessID][]string)}
	for _, id := range ids {
		for _, ce := range g.ConfigEvents(id) {
			res.ConfigSeqs[id] = append(res.ConfigSeqs[id], ce.Config.String())
		}
	}
	qr := func(id evs.ProcessID) bool {
		seq := g.ConfigEvents(id)
		if len(seq) < 3 {
			return false
		}
		last := seq[len(seq)-1].Config
		tr := seq[len(seq)-2].Config
		old := seq[len(seq)-3].Config
		return old.ID.IsRegular() && old.Members.Equal(evs.NewProcessSet("p", "q", "r")) &&
			tr.ID.IsTransitional() && tr.Members.Equal(evs.NewProcessSet("q", "r")) &&
			tr.ID.Prev() == old.ID &&
			last.ID.IsRegular() && last.Members.Equal(evs.NewProcessSet("q", "r", "s", "t"))
	}
	res.QRTransitional = qr("q") && qr("r")
	pseq := g.ConfigEvents("p")
	if n := len(pseq); n >= 2 {
		last, tr := pseq[n-1].Config, pseq[n-2].Config
		res.PIsolated = last.ID.IsRegular() && last.Members.Equal(evs.NewProcessSet("p")) &&
			tr.ID.IsTransitional() && tr.Members.Equal(evs.NewProcessSet("p"))
	}
	res.Violations = g.Check(true)
	return res
}

// Fig7Result captures the Figure 7 reproduction: virtual synchrony layered
// over extended virtual synchrony.
type Fig7Result struct {
	// EVSDeliveriesMinority counts EVS-layer deliveries in the minority
	// component after the partition (nonzero: EVS keeps going).
	EVSDeliveriesMinority int
	// VSDeliveriesMinority counts VS-layer deliveries there (zero: the
	// filter blocks non-primary components).
	VSDeliveriesMinority int
	// VSViolations from Birman's model checker (empty on success).
	VSViolations []evs.VSViolation
	// EVSViolations from the EVS checker (empty on success).
	EVSViolations []evs.Violation
}

// Figure7 runs the layered stack through a partition with traffic on both
// sides and validates the filter output against the virtual synchrony
// model.
func Figure7(seed int64) Fig7Result {
	g := evs.NewGroup(evs.Options{NumProcesses: 5, Seed: seed, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:3], ids[3:])
	for i := 0; i < 6; i++ {
		g.Send(time.Duration(700+i*15)*time.Millisecond, ids[0], []byte("maj"), evs.Safe)
		g.Send(time.Duration(700+i*15)*time.Millisecond, ids[3], []byte("min"), evs.Safe)
	}
	g.Merge(1100 * time.Millisecond)
	g.Run(2 * time.Second)

	var res Fig7Result
	for _, id := range ids[3:] {
		res.EVSDeliveriesMinority += len(g.Deliveries(id))
		for _, e := range g.VSEvents(id) {
			if e.Deliver != nil && string(e.Deliver.Payload) == "min" {
				res.VSDeliveriesMinority++
			}
		}
	}
	res.VSViolations = g.CheckVS(true)
	res.EVSViolations = g.Check(true)
	return res
}

// Format helpers for the text report.

// FormatCheckerRows renders the Figure 1-5 table.
func FormatCheckerRows(rows []CheckerRow) string {
	out := fmt.Sprintf("%-8s %-45s %-10s %s\n", "spec", "case", "expected", "result")
	for _, r := range rows {
		want := "clean"
		if r.WantViolation {
			want = "violation"
		}
		verdict := "PASS"
		if !r.Pass() {
			verdict = "FAIL"
		}
		out += fmt.Sprintf("%-8s %-45s %-10s %s\n", r.Spec, r.Case, want, verdict)
	}
	return out
}

package experiments

// Lightweight-group scale benchmark (G1): the ROADMAP scenario of
// thousands of groups and 100k+ client endpoints multiplexed over one
// small daemon ring, with skewed (Zipf) topic traffic.
//
// The benchmark has two parts, because they answer different questions:
//
//   - The cluster scenario runs the full stack — ring, ordering, group
//     layer, client fan-out — with 10k groups and 100k clients on a
//     16-process ring, and reports virtual throughput plus host-side
//     cost per group delivery. This shows the layer at scale inside
//     the system, but its wall-clock numbers are dominated by the
//     transport underneath the group layer.
//
//   - The layer rig replays an identical pre-generated message stream
//     directly through the group multiplexers of all processes — once
//     through the binary Mux, once through the preserved JSON
//     LegacyMux — with no transport underneath. That is the
//     apples-to-apples measurement the ≥5× criterion is pinned to:
//     same stream, same membership, same rig; the codec and its
//     routing tables are the only variable.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	evs "repro"
	"repro/internal/groups"
	"repro/internal/model"
)

// GroupsBenchConfig sizes the groups benchmark.
type GroupsBenchConfig struct {
	Procs   int   `json:"procs"`
	Groups  int   `json:"groups"`
	Clients int   `json:"clients"`
	Seed    int64 `json:"seed"`
	// Window is the loaded measurement window (virtual time) of the
	// cluster scenario.
	Window time.Duration `json:"window_ns"`
	// BatchOps is how many client subscription ops ride one safe
	// message during the join phase.
	BatchOps int `json:"batch_ops"`
	// ZipfS is the skew of the topic-traffic distribution.
	ZipfS float64 `json:"zipf_s"`
	// LayerMsgs is the replayed stream length per layer-rig phase.
	LayerMsgs int `json:"layer_msgs"`
}

// GroupsConfig returns the flagship (10k groups / 100k clients / 16
// procs) configuration, or a CI-sized quick one.
func GroupsConfig(quick bool) GroupsBenchConfig {
	if quick {
		return GroupsBenchConfig{
			Procs: 8, Groups: 200, Clients: 2000, Seed: 1,
			Window: 100 * time.Millisecond, BatchOps: 256, ZipfS: 1.2, LayerMsgs: 20000,
		}
	}
	return GroupsBenchConfig{
		Procs: 16, Groups: 10000, Clients: 100000, Seed: 1,
		Window: 300 * time.Millisecond, BatchOps: 512, ZipfS: 1.2, LayerMsgs: 200000,
	}
}

// GroupsClusterRow is the full-stack scenario's result.
type GroupsClusterRow struct {
	Procs   int `json:"procs"`
	Groups  int `json:"groups"`
	Clients int `json:"clients"`
	// OrderedMsgs is the number of group data messages fully ordered
	// during the window; GroupMsgsPerSec is that per virtual second.
	OrderedMsgs     int     `json:"ordered_msgs"`
	GroupMsgsPerSec float64 `json:"group_msgs_per_sec"`
	// MemberDeliveries counts host-level group deliveries (ordered
	// message × subscribed host) in the window; ClientDeliveries counts
	// the fan-out into client endpoints.
	MemberDeliveries int `json:"member_deliveries"`
	ClientDeliveries int `json:"client_deliveries"`
	// Filtered counts messages dropped on the header peek at non-member
	// hosts; FilteredShare is Filtered over all host-level routing
	// decisions (delivered + filtered).
	Filtered      int     `json:"filtered"`
	FilteredShare float64 `json:"filtered_share"`
	// NsPerGroupDelivery / Bytes / Allocs charge the whole loaded
	// steady-state window (transport included — this is the full stack)
	// to member deliveries. Host-dependent.
	NsPerGroupDelivery     float64 `json:"ns_per_group_delivery"`
	BytesPerGroupDelivery  float64 `json:"bytes_per_group_delivery"`
	AllocsPerGroupDelivery float64 `json:"allocs_per_group_delivery"`
	PeakPending            int     `json:"peak_pending"`
}

// GroupsLayerRow is one codec leg of the layer rig.
type GroupsLayerRow struct {
	Codec string `json:"codec"`
	// Msgs is the replayed stream length per phase; Deliveries the
	// member deliveries the mixed phase produced (identical across
	// codecs by construction).
	Msgs       int `json:"msgs"`
	Deliveries int `json:"deliveries"`
	// LayerMsgsPerSec is mixed-stream messages through the whole layer
	// (encode once, route at every process) per wall second.
	LayerMsgsPerSec float64 `json:"layer_msgs_per_sec"`
	// NsPerDelivery / AllocsPerDelivery charge the mixed-traffic replay
	// to its member deliveries.
	NsPerDelivery     float64 `json:"ns_per_delivery"`
	AllocsPerDelivery float64 `json:"allocs_per_delivery"`
	// NsPerFilteredDrop / AllocsPerFilteredDrop come from a dedicated
	// single-member stream where P-1 of P routing decisions are drops:
	// the cost of saying "not mine" (binary: header peek; JSON: a full
	// unmarshal), including the drop's share of the phase's encode and
	// single member delivery.
	NsPerFilteredDrop     float64 `json:"ns_per_filtered_drop"`
	AllocsPerFilteredDrop float64 `json:"allocs_per_filtered_drop"`
}

// GroupsBenchReport is the whole G1 result (BENCH_groups.json).
type GroupsBenchReport struct {
	Config  GroupsBenchConfig `json:"config"`
	Cluster GroupsClusterRow  `json:"cluster"`
	Layer   []GroupsLayerRow  `json:"layer"`
	// SpeedupVsJSON is binary layer msgs/s over JSON layer msgs/s in
	// the same rig: the acceptance criterion's number.
	SpeedupVsJSON float64 `json:"speedup_vs_json"`
}

// GroupsBench runs both parts and assembles the report.
func GroupsBench(cfg GroupsBenchConfig) (GroupsBenchReport, error) {
	cluster, err := GroupsCluster(cfg)
	if err != nil {
		return GroupsBenchReport{}, err
	}
	bin, err := GroupsLayer(cfg, "binary")
	if err != nil {
		return GroupsBenchReport{}, err
	}
	js, err := GroupsLayer(cfg, "json")
	if err != nil {
		return GroupsBenchReport{}, err
	}
	rep := GroupsBenchReport{
		Config:  cfg,
		Cluster: cluster,
		Layer:   []GroupsLayerRow{bin, js},
	}
	if js.LayerMsgsPerSec > 0 {
		rep.SpeedupVsJSON = bin.LayerMsgsPerSec / js.LayerMsgsPerSec
	}
	return rep, nil
}

// groupName renders the dense bench group names ("g000042").
func groupName(i int) string { return fmt.Sprintf("g%06d", i) }

// GroupsCluster runs the full-stack scenario: clients spread round-robin
// over the ring's hosts, every group covered, surplus clients subscribed
// uniformly at random (so each group's subscribers scatter across hosts,
// exercising member delivery and the filtered fast path on every
// message), traffic Zipf-skewed over groups, the whole thing in discard
// mode with costs anchored at steady state after ring formation and the
// join storm.
func GroupsCluster(cfg GroupsBenchConfig) (GroupsClusterRow, error) {
	g := evs.NewGroup(evs.Options{
		NumProcesses:   cfg.Procs,
		Seed:           cfg.Seed,
		Node:           benchNodeConfig(),
		DiscardHistory: true,
	})
	top, err := evs.NewTopicsWith(g, evs.TopicsOptions{DiscardHistory: true})
	if err != nil {
		return GroupsClusterRow{}, err
	}
	ids := g.IDs()
	rng := rand.New(rand.NewSource(cfg.Seed))

	names := make([]string, cfg.Groups)
	for i := range names {
		names[i] = groupName(i)
	}
	hostClients := make([][]evs.ClientID, cfg.Procs)
	ops := make([][]evs.ClientOp, cfg.Procs)
	for c := 1; c <= cfg.Clients; c++ {
		h := (c - 1) % cfg.Procs
		gi := c - 1
		if gi >= cfg.Groups {
			gi = rng.Intn(cfg.Groups)
		}
		hostClients[h] = append(hostClients[h], evs.ClientID(c))
		ops[h] = append(ops[h], evs.ClientOp{Client: evs.ClientID(c), Group: names[gi]})
	}

	// Join phase: batches of BatchOps subscription ops per safe message,
	// spaced so the send backlog never sheds a join.
	joinStart := 350 * time.Millisecond
	joinEnd := joinStart
	for h := range ops {
		at := joinStart
		for lo := 0; lo < len(ops[h]); lo += cfg.BatchOps {
			hi := lo + cfg.BatchOps
			if hi > len(ops[h]) {
				hi = len(ops[h])
			}
			top.ClientBatch(at, ids[h], ops[h][lo:hi])
			at += 2 * time.Millisecond
		}
		if at > joinEnd {
			joinEnd = at
		}
	}
	settle := joinEnd + 300*time.Millisecond
	g.Run(settle)

	// Every client must be joined before measurement starts; a shed join
	// would silently skew the row.
	totalClients := 0
	for _, name := range names {
		totalClients += top.View(ids[0], name).Clients
	}
	if totalClients != cfg.Clients {
		return GroupsClusterRow{}, fmt.Errorf("join phase incomplete: %d of %d clients joined", totalClients, cfg.Clients)
	}

	// Pre-resolve the traffic schedule: per host, a cycle of (sender
	// client, target GroupID) pairs with Zipf-skewed targets, so the
	// loaded loop does no name hashing and no allocation.
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Groups-1))
	type sendSlot struct {
		client evs.ClientID
		gid    evs.GroupID
	}
	const scheduleLen = 4096
	sched := make([][]sendSlot, cfg.Procs)
	for h := 0; h < cfg.Procs; h++ {
		sched[h] = make([]sendSlot, scheduleLen)
		for k := range sched[h] {
			gi := int(zipf.Uint64())
			gid, ok := top.Resolve(ids[h], names[gi])
			if !ok {
				return GroupsClusterRow{}, fmt.Errorf("group %s not interned at %s", names[gi], ids[h])
			}
			sched[h][k] = sendSlot{
				client: hostClients[h][k%len(hostClients[h])],
				gid:    gid,
			}
		}
	}

	// Steady-state anchor, then the same fixed aggregate offered load the
	// ordering bench uses (backpressure sheds the excess).
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	//lint:allow determinism wall-clock measures benchmark runtime only; per-delivery ns are documented host-dependent and never feed protocol state
	start := time.Now()

	startDelivered := sumGroupDeliveries(top, ids)
	startClient := sumClientDeliveries(top, ids)
	startFiltered := sumFiltered(top, ids)

	payload := make([]byte, 64)
	per := (aggregateOffered + cfg.Procs - 1) / cfg.Procs
	cursor := make([]int, cfg.Procs)
	windowEnd := settle + cfg.Window
	var refill func()
	refill = func() {
		if g.Now() >= windowEnd {
			return
		}
		for h, id := range ids {
			for k := 0; k < per; k++ {
				s := sched[h][cursor[h]%scheduleLen]
				cursor[h]++
				_ = top.SubmitClientSend(id, s.client, s.gid, payload)
			}
		}
		g.At(g.Now()+5*time.Millisecond, refill)
	}
	g.At(settle, refill)
	g.Run(windowEnd)

	//lint:allow determinism wall-clock measures benchmark runtime only; per-delivery ns are documented host-dependent and never feed protocol state
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	memberDeliveries := sumGroupDeliveries(top, ids) - startDelivered
	clientDeliveries := sumClientDeliveries(top, ids) - startClient
	filtered := sumFiltered(top, ids) - startFiltered
	// Every ordered data message produces exactly one routing decision per
	// host: a member delivery or a filtered drop.
	ordered := (memberDeliveries + filtered) / cfg.Procs

	row := GroupsClusterRow{
		Procs:            cfg.Procs,
		Groups:           cfg.Groups,
		Clients:          cfg.Clients,
		OrderedMsgs:      ordered,
		GroupMsgsPerSec:  float64(ordered) / cfg.Window.Seconds(),
		MemberDeliveries: memberDeliveries,
		ClientDeliveries: clientDeliveries,
		Filtered:         filtered,
		PeakPending:      g.PeakPending(),
	}
	if memberDeliveries+filtered > 0 {
		row.FilteredShare = float64(filtered) / float64(memberDeliveries+filtered)
	}
	if memberDeliveries > 0 {
		n := float64(memberDeliveries)
		row.NsPerGroupDelivery = float64(elapsed.Nanoseconds()) / n
		row.BytesPerGroupDelivery = float64(m1.TotalAlloc-m0.TotalAlloc) / n
		row.AllocsPerGroupDelivery = float64(m1.Mallocs-m0.Mallocs) / n
	}
	return row, nil
}

func sumGroupDeliveries(top *evs.Topics, ids []evs.ProcessID) int {
	n := 0
	for _, id := range ids {
		n += int(top.DeliveryCount(id))
	}
	return n
}

func sumClientDeliveries(top *evs.Topics, ids []evs.ProcessID) int {
	n := 0
	for _, id := range ids {
		n += int(top.ClientDeliveryCount(id))
	}
	return n
}

func sumFiltered(top *evs.Topics, ids []evs.ProcessID) int {
	n := 0
	for _, id := range ids {
		n += int(top.Filtered(id))
	}
	return n
}

// layerMsg is one replayed stream entry: which process sends, to which
// group index.
type layerMsg struct {
	sender int
	group  int
}

// layerSink counts member deliveries at one process of the layer rig.
type layerSink struct{ n int }

func (s *layerSink) OnGroupData(groups.Deliver) { s.n++ }

// layerReplay pushes one stream through the rig and reports wall time,
// heap allocations, and member deliveries produced.
type layerReplay func(stream []layerMsg) (time.Duration, uint64, int)

// GroupsLayer replays pre-generated streams straight through the group
// layer of all processes — no transport — for one codec ("binary" or
// "json"). The streams, the membership, and the rig are identical across
// codecs; only the codec and its routing tables differ.
func GroupsLayer(cfg GroupsBenchConfig, codec string) (GroupsLayerRow, error) {
	procs := make([]model.ProcessID, cfg.Procs)
	for i := range procs {
		procs[i] = model.ProcessID(fmt.Sprintf("p%02d", i+1))
	}
	mcfg := model.Configuration{ID: model.RegularID(1, procs[0]), Members: model.NewProcessSet(procs...)}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	// Group count capped so rig setup stays proportionate to the replay
	// length; membership mirrors the cluster scenario's scatter (each
	// group subscribed by a uniform nonempty subset of hosts).
	nGroups := cfg.Groups
	if nGroups > cfg.LayerMsgs/10 {
		nGroups = cfg.LayerMsgs / 10
	}
	if nGroups < 2 {
		nGroups = 2
	}
	memberHosts := make([][]int, nGroups)
	for gi := range memberHosts {
		k := 1 + rng.Intn(cfg.Procs)
		perm := rng.Perm(cfg.Procs)
		memberHosts[gi] = perm[:k]
	}

	mixed := make([]layerMsg, cfg.LayerMsgs)
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(nGroups-1))
	for i := range mixed {
		mixed[i] = layerMsg{sender: rng.Intn(cfg.Procs), group: int(zipf.Uint64())}
	}
	// The filtered-drop stream: every message to a group subscribed at
	// exactly one host, so P-1 of P routing decisions are drops.
	loneGroup := nGroups
	drops := make([]layerMsg, cfg.LayerMsgs)
	for i := range drops {
		drops[i] = layerMsg{sender: rng.Intn(cfg.Procs), group: loneGroup}
	}
	body := make([]byte, 64)

	var replay layerReplay
	switch codec {
	case "binary":
		muxes := make([]*groups.Mux, cfg.Procs)
		sinks := make([]*layerSink, cfg.Procs)
		for i, p := range procs {
			muxes[i] = groups.New(p)
			sinks[i] = &layerSink{}
			muxes[i].SetSink(sinks[i])
			if _, _, err := muxes[i].OnConfig(mcfg); err != nil {
				return GroupsLayerRow{}, err
			}
		}
		join := func(host, gi int) error {
			payload, err := muxes[host].Join(groupName(gi))
			if err != nil {
				return err
			}
			for _, m := range muxes {
				m.OnDeliver(procs[host], payload)
			}
			return nil
		}
		for gi, hosts := range memberHosts {
			for _, h := range hosts {
				if err := join(h, gi); err != nil {
					return GroupsLayerRow{}, err
				}
			}
		}
		if err := join(0, loneGroup); err != nil {
			return GroupsLayerRow{}, err
		}
		gids := make([]groups.GroupID, nGroups+1)
		for gi := range gids {
			id, ok := muxes[0].Resolve(groupName(gi))
			if !ok {
				return GroupsLayerRow{}, fmt.Errorf("layer rig group %s not interned", groupName(gi))
			}
			gids[gi] = id
		}
		replay = func(stream []layerMsg) (time.Duration, uint64, int) {
			before := 0
			for _, s := range sinks {
				before += s.n
			}
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			//lint:allow determinism wall-clock measures benchmark runtime only; layer ns are documented host-dependent and never feed protocol state
			t0 := time.Now()
			for _, mg := range stream {
				payload := muxes[mg.sender].SendTo(0, gids[mg.group], body)
				for _, m := range muxes {
					m.OnDeliver(procs[mg.sender], payload)
				}
			}
			//lint:allow determinism wall-clock measures benchmark runtime only; layer ns are documented host-dependent and never feed protocol state
			el := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			after := 0
			for _, s := range sinks {
				after += s.n
			}
			return el, ms1.Mallocs - ms0.Mallocs, after - before
		}
	default: // "json"
		muxes := make([]*groups.LegacyMux, cfg.Procs)
		counts := make([]int, cfg.Procs)
		for i, p := range procs {
			muxes[i] = groups.NewLegacy(p)
			if _, _, err := muxes[i].OnConfig(mcfg); err != nil {
				return GroupsLayerRow{}, err
			}
		}
		join := func(host, gi int) error {
			payload, err := muxes[host].Join(groupName(gi))
			if err != nil {
				return err
			}
			for _, m := range muxes {
				m.OnDeliver(procs[host], payload)
			}
			return nil
		}
		for gi, hosts := range memberHosts {
			for _, h := range hosts {
				if err := join(h, gi); err != nil {
					return GroupsLayerRow{}, err
				}
			}
		}
		if err := join(0, loneGroup); err != nil {
			return GroupsLayerRow{}, err
		}
		replay = func(stream []layerMsg) (time.Duration, uint64, int) {
			before := 0
			for _, c := range counts {
				before += c
			}
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			//lint:allow determinism wall-clock measures benchmark runtime only; layer ns are documented host-dependent and never feed protocol state
			t0 := time.Now()
			for _, mg := range stream {
				// Send of a valid short name to a JSON envelope cannot
				// fail; a nil payload simply routes nothing.
				payload, _ := muxes[mg.sender].Send(groupName(mg.group), body)
				for i, m := range muxes {
					for _, e := range m.OnDeliver(procs[mg.sender], payload) {
						if _, ok := e.(groups.Deliver); ok {
							counts[i]++
						}
					}
				}
			}
			//lint:allow determinism wall-clock measures benchmark runtime only; layer ns are documented host-dependent and never feed protocol state
			el := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			after := 0
			for _, c := range counts {
				after += c
			}
			return el, ms1.Mallocs - ms0.Mallocs, after - before
		}
	}

	mixedEl, mixedAllocs, mixedDeliv := replay(mixed)
	dropEl, dropAllocs, _ := replay(drops)

	row := GroupsLayerRow{
		Codec:      codec,
		Msgs:       len(mixed),
		Deliveries: mixedDeliv,
	}
	if mixedEl > 0 {
		row.LayerMsgsPerSec = float64(len(mixed)) / mixedEl.Seconds()
	}
	if mixedDeliv > 0 {
		row.NsPerDelivery = float64(mixedEl.Nanoseconds()) / float64(mixedDeliv)
		row.AllocsPerDelivery = float64(mixedAllocs) / float64(mixedDeliv)
	}
	if dropCount := len(drops) * (cfg.Procs - 1); dropCount > 0 {
		row.NsPerFilteredDrop = float64(dropEl.Nanoseconds()) / float64(dropCount)
		row.AllocsPerFilteredDrop = float64(dropAllocs) / float64(dropCount)
	}
	return row, nil
}

package primary

import (
	"testing"

	"repro/internal/model"
)

var universe = model.NewProcessSet("p", "q", "r", "s", "t")

func cfg(seq uint64, rep model.ProcessID, members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(seq, rep), Members: model.NewProcessSet(members...)}
}

// drive runs one configuration round across a set of protocols connected by
// a synchronous safe-order bus, returning each process's Decided outcome.
func drive(t *testing.T, procs map[model.ProcessID]*Protocol, c model.Configuration) map[model.ProcessID]*Decided {
	t.Helper()
	decided := make(map[model.ProcessID]*Decided)
	var bus [][]byte
	collect := func(id model.ProcessID, acts []Action) {
		for _, a := range acts {
			switch act := a.(type) {
			case Broadcast:
				b, err := Encode(act.Msg)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				bus = append(bus, b)
			case Decided:
				d := act
				decided[id] = &d
			}
		}
	}
	for _, id := range c.Members.Members() {
		collect(id, procs[id].OnConfig(c))
	}
	// Safe total order: every process sees the same payload sequence.
	for i := 0; i < len(bus); i++ {
		m, err := Decode(bus[i])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for _, id := range c.Members.Members() {
			collect(id, procs[id].OnMessage(m))
		}
	}
	return decided
}

func newProcs(ids ...model.ProcessID) map[model.ProcessID]*Protocol {
	procs := make(map[model.ProcessID]*Protocol)
	for _, id := range ids {
		procs[id] = New(id, universe, model.Configuration{}, model.Configuration{})
	}
	return procs
}

func TestBootstrapMajorityOfUniverse(t *testing.T) {
	procs := newProcs("p", "q", "r", "s", "t")
	c := cfg(1, "p", "p", "q", "r")
	decided := drive(t, procs, c)
	for id, d := range decided {
		if d == nil || !d.Primary {
			t.Fatalf("%s: 3 of 5 universe members should form the first primary, got %+v", id, d)
		}
	}
	if len(decided) != 3 {
		t.Fatalf("decided count %d, want 3", len(decided))
	}
}

func TestBootstrapMinorityIsNotPrimary(t *testing.T) {
	procs := newProcs("p", "q", "r", "s", "t")
	c := cfg(1, "p", "p", "q")
	decided := drive(t, procs, c)
	for id, d := range decided {
		if d == nil || d.Primary {
			t.Fatalf("%s: 2 of 5 must not be primary, got %+v", id, d)
		}
	}
}

func TestMajorityOfPreviousPrimary(t *testing.T) {
	procs := newProcs("p", "q", "r", "s", "t")
	first := cfg(1, "p", "p", "q", "r")
	drive(t, procs, first)
	// {q,r} is a majority of the previous primary {p,q,r} even though it
	// is a minority of the universe.
	second := cfg(2, "q", "q", "r")
	decided := drive(t, procs, second)
	for id, d := range decided {
		if d == nil || !d.Primary {
			t.Fatalf("%s: majority of previous primary should win, got %+v", id, d)
		}
	}
}

func TestMinorityOfPreviousPrimaryBlocked(t *testing.T) {
	procs := newProcs("p", "q", "r", "s", "t")
	drive(t, procs, cfg(1, "p", "p", "q", "r"))
	// {r,s,t} contains only one member of the previous primary {p,q,r}:
	// not a majority of it, despite being a majority of the universe.
	decided := drive(t, procs, cfg(2, "r", "r", "s", "t"))
	for id, d := range decided {
		if d == nil || d.Primary {
			t.Fatalf("%s: minority of previous primary must not be primary, got %+v", id, d)
		}
	}
}

func TestAttemptKnowledgePropagates(t *testing.T) {
	// p attempted primary {p,q} (seq 5) but the installation was
	// interrupted. A later configuration containing p must treat the
	// attempt as the newest primary knowledge.
	attempted := cfg(5, "p", "p", "q")
	procs := map[model.ProcessID]*Protocol{
		"p": New("p", universe, cfg(1, "p", "p", "q", "r"), attempted),
		"r": New("r", universe, cfg(1, "p", "p", "q", "r"), model.Configuration{}),
		"s": New("s", universe, model.Configuration{}, model.Configuration{}),
	}
	c := cfg(6, "p", "p", "r", "s")
	decided := drive(t, procs, c)
	// Baseline is the attempted {p,q}: {p,r,s} ∩ {p,q} = {p}, not a
	// majority of 2 — blocked.
	for id, d := range decided {
		if d == nil || d.Primary {
			t.Fatalf("%s: attempt knowledge must block, got %+v", id, d)
		}
	}
}

func TestUniquenessUnderDisjointRounds(t *testing.T) {
	// After primary {p,q,r}, the partition {p,q} | {r,s,t} runs both
	// sides: {p,q} has a 2/3 majority of the previous primary; {r,s,t}
	// has 1/3. Exactly one side may be primary.
	procs := newProcs("p", "q", "r", "s", "t")
	drive(t, procs, cfg(1, "p", "p", "q", "r"))
	left := drive(t, procs, cfg(2, "p", "p", "q"))
	right := drive(t, procs, cfg(2, "r", "r", "s", "t"))
	leftPrimary := left["p"] != nil && left["p"].Primary
	rightPrimary := right["r"] != nil && right["r"].Primary
	if leftPrimary == rightPrimary {
		t.Fatalf("exactly one side must be primary: left=%v right=%v", leftPrimary, rightPrimary)
	}
	if !leftPrimary {
		t.Fatal("the side with the majority of the previous primary should win")
	}
}

func TestTransitionalConfigAbandonsRound(t *testing.T) {
	p := New("p", universe, model.Configuration{}, model.Configuration{})
	c := cfg(1, "p", "p", "q", "r")
	acts := p.OnConfig(c)
	if len(acts) != 1 {
		t.Fatalf("expected proposal broadcast, got %v", acts)
	}
	tr := model.Configuration{
		ID:      model.TransitionalID(model.RegularID(2, "p"), c.ID),
		Members: model.NewProcessSet("p"),
	}
	if acts := p.OnConfig(tr); len(acts) != 0 {
		t.Fatalf("transitional configuration should produce no actions, got %v", acts)
	}
	// Messages for the abandoned round are ignored.
	m := Message{Kind: KindProposal, Sender: "q", Config: c.ID}
	if acts := p.OnMessage(m); len(acts) != 0 {
		t.Fatalf("stale round message should be ignored, got %v", acts)
	}
}

func TestPersistActionsEmitted(t *testing.T) {
	procs := newProcs("p", "q", "r")
	universeSmall := model.NewProcessSet("p", "q", "r")
	for id := range procs {
		procs[id] = New(id, universeSmall, model.Configuration{}, model.Configuration{})
	}
	c := cfg(1, "p", "p", "q")
	var attempts, primaries int
	var bus [][]byte
	collect := func(acts []Action) {
		for _, a := range acts {
			switch act := a.(type) {
			case Broadcast:
				b, err := Encode(act.Msg)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				bus = append(bus, b)
			case PersistAttempt:
				attempts++
				if act.Cfg.ID != c.ID {
					t.Fatalf("attempt for %v, want %v", act.Cfg.ID, c.ID)
				}
			case PersistPrimary:
				primaries++
			}
		}
	}
	for _, id := range c.Members.Members() {
		collect(procs[id].OnConfig(c))
	}
	for i := 0; i < len(bus); i++ {
		m, _ := Decode(bus[i])
		for _, id := range c.Members.Members() {
			collect(procs[id].OnMessage(m))
		}
	}
	if attempts != 2 || primaries != 2 {
		t.Fatalf("attempts=%d primaries=%d, want 2 each", attempts, primaries)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Message{
		Kind:        KindCommit,
		Sender:      "p",
		Config:      model.RegularID(7, "q"),
		BestSeq:     3,
		BestRep:     "r",
		BestMembers: []model.ProcessID{"r", "s"},
	}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Sender != m.Sender || got.Config != m.Config ||
		got.BestSeq != 3 || len(got.BestMembers) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

package primary

import "testing"

// FuzzDecode ensures arbitrary bytes never panic the decoder and that
// encode/decode round-trips are stable.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if seed, err := Encode(Message{Kind: KindProposal, Sender: "p", BestSeq: 3}); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode identically.
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(b)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != m.Kind || again.Sender != m.Sender || again.Config != m.Config {
			t.Fatalf("round trip mismatch: %+v vs %+v", m, again)
		}
	})
}

// Package primary implements the primary component algorithm of Section 5
// of the paper: a layer above extended virtual synchrony that marks, for
// each regular configuration, whether it is the primary component, while
// maintaining the two properties of Section 2.2 — Uniqueness (the history
// of primary components is totally ordered) and Continuity (consecutive
// primary components share a member).
//
// The algorithm is a two-phase agreement carried over safe messages within
// the new regular configuration:
//
//  1. On installing a regular configuration C, every member broadcasts (as
//     a safe message) a Proposal carrying the most recent primary component
//     it knows: the one it last installed, or the one it last *attempted*.
//  2. When a member has delivered proposals from every member of C, it
//     evaluates the majority rule: C may be primary iff C's members include
//     a strict majority of the members of the most recent known primary
//     (or of the static universe, when no primary has ever existed). If
//     so, it durably records "attempting C" and broadcasts a Commit.
//  3. When a member has delivered Commits from every member of C, it
//     durably records C as the last primary and reports C primary.
//
// The attempt record is what preserves Uniqueness across interrupted
// installations: if any process completes step 3, then every member of C
// delivered every Commit (they are safe messages), so every member passed
// through step 2 and durably recorded the attempt; any later component
// claiming primacy must include a majority of C's members and will
// therefore learn of C (or of something newer) through their proposals.
// Continuity follows from the majority rule directly: a new primary
// contains a majority — in particular at least one — of the previous
// primary's members.
package primary

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/model"
)

// Kind tags primary-layer messages.
type Kind int

const (
	// KindProposal is the phase-1 knowledge exchange.
	KindProposal Kind = iota + 1
	// KindCommit is the phase-2 agreement to install a primary.
	KindCommit
)

// Message is the primary-layer payload carried inside a safe EVS message.
type Message struct {
	Kind   Kind
	Sender model.ProcessID
	// Config is the regular configuration this message is about.
	Config model.ConfigID
	// Best is the sender's most recent known primary: the later of its
	// last installed primary and its last attempted primary.
	BestSeq     uint64
	BestRep     model.ProcessID
	BestMembers []model.ProcessID
}

// Encode serialises a primary-layer message.
func Encode(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("primary: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a primary-layer message.
func Decode(b []byte) (Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return Message{}, fmt.Errorf("primary: decode: %w", err)
	}
	return m, nil
}

// Action is the sealed union of protocol outputs.
type Action interface{ isAction() }

// Broadcast asks the caller to send the message as a safe message in the
// current configuration. The caller encodes it at the transport boundary
// (and owns the handling of encoding or submission failures), keeping the
// protocol itself free of serialisation concerns.
type Broadcast struct{ Msg Message }

func (Broadcast) isAction() {}

// PersistAttempt asks the caller to durably record that this process is
// attempting to install cfg as primary (before any Commit is sent).
type PersistAttempt struct{ Cfg model.Configuration }

func (PersistAttempt) isAction() {}

// PersistPrimary asks the caller to durably record cfg as the last
// installed primary (the attempt record may be cleared).
type PersistPrimary struct{ Cfg model.Configuration }

func (PersistPrimary) isAction() {}

// Decided reports the outcome for a regular configuration. Prev is the
// most recent primary known across the membership at evaluation time (zero
// when none existed); it is the same at every member, which the virtual
// synchrony filter relies on to split merges deterministically (Rule 3 of
// Section 5).
type Decided struct {
	Cfg     model.Configuration
	Primary bool
	Prev    model.Configuration
}

func (Decided) isAction() {}

// Protocol is the per-process primary-component state machine.
type Protocol struct {
	self     model.ProcessID
	universe model.ProcessSet // static universe for the bootstrap majority

	last    model.Configuration // last installed primary (persisted)
	attempt model.Configuration // last attempted primary (persisted)

	cur       model.Configuration // regular configuration under evaluation
	proposals map[model.ProcessID]model.Configuration
	commits   map[model.ProcessID]bool
	newest    model.Configuration // most recent primary known at evaluation
	committed bool
	decided   bool
}

// New creates the protocol. universe is the static process universe used
// for the very first primary (majority bootstrap); last and attempt come
// from stable storage.
func New(self model.ProcessID, universe model.ProcessSet, last, attempt model.Configuration) *Protocol {
	return &Protocol{
		self:     self,
		universe: universe,
		last:     last,
		attempt:  attempt,
	}
}

// Last returns the last installed primary known to this process.
func (p *Protocol) Last() model.Configuration { return p.last }

// best returns the most recent primary this process knows of: the later of
// last and attempt.
func (p *Protocol) best() model.Configuration {
	if p.attempt.ID.Seq > p.last.ID.Seq {
		return p.attempt
	}
	return p.last
}

// OnConfig ingests a configuration change from the EVS layer. Transitional
// configurations abandon any round in progress without deciding; regular
// configurations start a new round.
func (p *Protocol) OnConfig(cfg model.Configuration) []Action {
	if cfg.ID.IsTransitional() {
		p.abandon()
		return nil
	}
	p.abandon()
	p.cur = cfg
	p.proposals = make(map[model.ProcessID]model.Configuration)
	p.commits = make(map[model.ProcessID]bool)
	best := p.best()
	msg := Message{
		Kind:        KindProposal,
		Sender:      p.self,
		Config:      cfg.ID,
		BestSeq:     best.ID.Seq,
		BestRep:     best.ID.Rep,
		BestMembers: best.Members.Members(),
	}
	return []Action{Broadcast{Msg: msg}}
}

// abandon drops the round in progress (the attempt record, if persisted,
// stays: that is the point).
func (p *Protocol) abandon() {
	p.cur = model.Configuration{}
	p.proposals = nil
	p.commits = nil
	p.committed = false
	p.decided = false
}

// OnMessage ingests a delivered primary-layer message (already decoded).
// The message must have been delivered by the EVS layer in the current
// configuration, in safe order.
func (p *Protocol) OnMessage(m Message) []Action {
	if p.cur.ID.IsZero() || m.Config != p.cur.ID || p.decided {
		return nil
	}
	switch m.Kind {
	case KindProposal:
		best := model.Configuration{
			ID:      model.RegularID(m.BestSeq, m.BestRep),
			Members: model.NewProcessSet(m.BestMembers...),
		}
		if m.BestSeq == 0 {
			best = model.Configuration{}
		}
		p.proposals[m.Sender] = best
		return p.evaluate()
	case KindCommit:
		p.commits[m.Sender] = true
		return p.finalize()
	default:
		return nil
	}
}

// evaluate runs the majority rule once every member's proposal is in.
func (p *Protocol) evaluate() []Action {
	if p.committed {
		return nil
	}
	for _, q := range p.cur.Members.Members() {
		if _, ok := p.proposals[q]; !ok {
			return nil
		}
	}
	// The most recent known primary across the membership.
	var newest model.Configuration
	for _, b := range p.proposals {
		if b.ID.Seq > newest.ID.Seq ||
			(b.ID.Seq == newest.ID.Seq && b.ID.Rep < newest.ID.Rep) {
			newest = b
		}
	}
	p.newest = newest
	baseline := newest.Members
	if newest.ID.IsZero() {
		baseline = p.universe
	}
	if 2*p.cur.Members.Intersect(baseline).Size() <= baseline.Size() {
		p.decided = true
		return []Action{Decided{Cfg: p.cur, Primary: false, Prev: newest}}
	}
	p.committed = true
	msg := Message{Kind: KindCommit, Sender: p.self, Config: p.cur.ID}
	return []Action{
		PersistAttempt{Cfg: p.cur},
		Broadcast{Msg: msg},
	}
}

// finalize installs the primary once every member committed.
func (p *Protocol) finalize() []Action {
	if !p.committed || p.decided {
		return nil
	}
	for _, q := range p.cur.Members.Members() {
		if !p.commits[q] {
			return nil
		}
	}
	p.decided = true
	prev := p.newest
	p.last = p.cur
	p.attempt = model.Configuration{}
	return []Action{
		PersistPrimary{Cfg: p.cur},
		Decided{Cfg: p.cur, Primary: true, Prev: prev},
	}
}

// Package fixture exercises the determinism analyzer: each flagged line
// carries a want expectation; unflagged lines are the sanctioned
// alternatives and must stay silent.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// clock stands in for the injected clock the zone is supposed to use.
type clock func() time.Duration

func wallClock(c clock) time.Duration {
	t := time.Now()              // want `time.Now is nondeterministic`
	_ = time.Since(t)            // want `time.Since is nondeterministic`
	_ = time.Until(t)            // want `time.Until is nondeterministic`
	time.Sleep(time.Millisecond) // want `time.Sleep is nondeterministic`
	_ = time.After(time.Second)  // want `time.After is nondeterministic`
	d := c()                     // the injected clock is the alternative; no diagnostic
	return d
}

func timers() {
	_ = time.NewTimer(time.Second)         // want `time.NewTimer is nondeterministic`
	_ = time.NewTicker(time.Second)        // want `time.NewTicker is nondeterministic`
	time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc is nondeterministic`
}

// durationArithmetic shows that time the *type* is fine: only wall-clock
// reads and timers are forbidden.
func durationArithmetic(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}

func globalRand() int {
	n := rand.Intn(10)                 // want `global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand source`
	_ = rand.Float64()                 // want `global math/rand source`
	return n
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded generator: allowed
	return rng.Intn(10)                   // method on *rand.Rand: allowed
}

func printDuringIteration(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output call inside map iteration`
	}
}

func sendDuringIteration(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

func unsortedAccumulation(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys accumulates map-ordered elements`
	}
	return keys
}

func sortedAccumulation(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: no diagnostic
	}
	sort.Strings(keys)
	return keys
}

// freshCopyPerIteration deep-copies each value into a fresh slice and a
// per-iteration local: neither append accumulates across iterations, so
// map order does not escape.
func freshCopyPerIteration(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		var buf []byte
		buf = append(buf, v...)
		out[k] = append([]byte(nil), buf...)
	}
	return out
}

// orderInsensitiveFold reduces over a map without emitting order: fine.
func orderInsensitiveFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// allowedWithReason shows an annotated, documented exception.
func allowedWithReason(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow determinism fixture demonstrates a documented exception
	}
	return out
}

// Package fixture holds constructs the determinism analyzer forbids in
// the deterministic zone; loaded under an out-of-zone import path it
// must produce no diagnostics at all (the zone gate, not the rule set,
// is under test).
package fixture

import "time"

func wallClockIsFineOutsideTheZone() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}

package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestZoneFixture(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/zone", "repro/internal/sim/fixture")
}

// TestOutOfZone: the same construct classes outside the deterministic
// zone produce nothing — AppliesTo gates the analyzer entirely.
func TestOutOfZone(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/outofzone", "repro/internal/analysis/fixture")
}

func TestInZone(t *testing.T) {
	for _, p := range []string{
		"repro/internal/sim",
		"repro/internal/spec/refcheck",
		"repro/internal/totem",
		"repro/internal/experiments",
	} {
		if !determinism.InZone(p) {
			t.Errorf("InZone(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"repro", "repro/internal/obs", "repro/internal/harness",
		"repro/cmd/evschaos", "repro/internal/simulator",
	} {
		if determinism.InZone(p) {
			t.Errorf("InZone(%q) = true, want false", p)
		}
	}
}

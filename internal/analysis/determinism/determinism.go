// Package determinism enforces the repo's deterministic-zone invariant:
// the simulator, protocol state machines, and checker must compute the
// same execution from the same seed, byte for byte, or chaos reproducers
// and the differential oracle are worthless.
//
// Inside the zone the analyzer forbids:
//
//   - wall-clock reads: time.Now, time.Since, time.Until
//   - wall-clock scheduling: time.Sleep, time.After, time.AfterFunc,
//     time.Tick, time.NewTimer, time.NewTicker (protocol timers go
//     through the injected environment clock; the simulator owns time)
//   - the global math/rand source (rand.Intn and friends): randomness
//     must come from a seeded rand.New(rand.NewSource(seed))
//   - unordered map iteration that feeds output: a range over a map
//     whose body prints, sends on a channel, or accumulates a slice
//     that is not canonicalised (sorted) afterwards. Iteration order
//     would then leak into traces, wire messages, or checker verdicts.
//
// Where a flagged construct is provably harmless (order-independent
// accumulation, measurement-only timing in the experiments package),
// the site carries a //lint:allow determinism <reason> annotation: the
// reason documents the argument, and the analyzer keeps every new site
// honest.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock, global randomness, and order-leaking map iteration in the deterministic zone",
	AppliesTo: InZone,
	Run:       run,
}

// zone lists the deterministic packages: everything executed under the
// simulator or the checker, where a replayed seed must reproduce the
// original execution exactly. experiments is included so its
// measurement-only wall-clock reads stay explicitly annotated, and so
// are transport and daemon: they run against real time by nature, but
// every wall-clock read there must be annotated with why it cannot leak
// into protocol state the simulator would replay differently.
var zone = []string{
	"sim", "netsim", "totem", "node", "membership", "spec",
	"chaos", "vclock", "wire", "stable", "causal", "experiments",
	"transport", "daemon",
}

// InZone reports whether the import path is in the deterministic zone.
func InZone(path string) bool {
	for _, z := range zone {
		if analysis.PathHasPrefix(path, "repro/internal/"+z) {
			return true
		}
	}
	return false
}

// forbiddenTime are the package-level time functions that read or
// schedule against the wall clock.
var forbiddenTime = map[string]string{
	"Now":       "use the injected clock (sim.Scheduler.Now / obs clock)",
	"Since":     "compute durations from the injected clock",
	"Until":     "compute durations from the injected clock",
	"Sleep":     "schedule through the simulator or the environment timer",
	"After":     "schedule through the simulator or the environment timer",
	"AfterFunc": "schedule through the simulator or the environment timer",
	"Tick":      "schedule through the simulator or the environment timer",
	"NewTimer":  "schedule through the simulator or the environment timer",
	"NewTicker": "schedule through the simulator or the environment timer",
}

// allowedRand are the math/rand constructors that build an explicitly
// seeded generator — the sanctioned alternative to the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, v)
		case *ast.RangeStmt:
			if t := pass.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkMapRange(pass, fd, v)
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if hint, bad := forbiddenTime[f.Name()]; bad {
			pass.Reportf(call.Pos(),
				"time.%s is nondeterministic in the deterministic zone; %s", f.Name(), hint)
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[f.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand source (rand.%s) is nondeterministic under concurrency; use a seeded rand.New(rand.NewSource(seed))", f.Name())
		}
	}
}

// checkMapRange flags map iterations whose body feeds output whose
// order the iteration decides.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	// appended collects the objects of slice variables grown inside the
	// loop; each must be canonicalised after the loop or it carries map
	// order outward.
	appended := map[types.Object]token.Pos{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // deferred/alternative control flow; not this loop's output
		case *ast.SendStmt:
			pass.Reportf(v.Pos(),
				"channel send inside map iteration leaks nondeterministic order; iterate a sorted key slice")
		case *ast.CallExpr:
			if isOutputCall(pass, v) {
				pass.Reportf(v.Pos(),
					"output call inside map iteration leaks nondeterministic order; iterate a sorted key slice")
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(v.Lhs) || len(call.Args) == 0 {
					continue
				}
				id := analysis.RootIdent(v.Lhs[i])
				if id == nil {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil {
					continue
				}
				// Only self-appends accumulate across iterations; a copy
				// into a fresh slice (x = append([]T(nil), src...)) does
				// not carry map order outward.
				if first := analysis.RootIdent(call.Args[0]); first == nil || pass.ObjectOf(first) != obj {
					continue
				}
				// A per-iteration local is rebuilt each key; its order
				// within one iteration is map-independent.
				if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
					continue
				}
				if _, seen := appended[obj]; !seen {
					appended[obj] = v.Pos()
				}
			}
		}
		return true
	})
	for obj, pos := range appended {
		if !canonicalizedAfter(pass, fd, rng, obj) {
			pass.Reportf(pos,
				"slice %s accumulates map-ordered elements and is not sorted afterwards; sort it (or the keys) before use", obj.Name())
		}
	}
}

// isOutputCall reports whether the call writes directly to an output
// sink: fmt printing, or a Write*/Printf-style method on any receiver
// (io.Writer, strings.Builder, bufio.Writer, ...).
func isOutputCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		if f.Pkg() == nil || f.Pkg().Path() != "fmt" {
			return false
		}
		name := f.Name()
		return len(name) >= 5 && (name[:5] == "Print" || name[:6] == "Fprint")
	}
	switch f.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Printf":
		return true
	}
	return false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// canonicalizedAfter reports whether obj is passed to a sorting
// (canonicalising) call somewhere after the range statement in the
// enclosing function: sort.*, slices.Sort*, a Sort method, or
// model.NewProcessSet (which sorts and dedups its arguments).
func canonicalizedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !isCanonicalizer(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil && pass.ObjectOf(id) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isCanonicalizer(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil {
		return false
	}
	if f.Name() == "Sort" || f.Name() == "NewProcessSet" {
		return true
	}
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return len(f.Name()) >= 4 && f.Name()[:4] == "Sort"
	}
	return false
}

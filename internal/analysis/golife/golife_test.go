package golife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/golife"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, golife.Analyzer, "testdata/fixture", "repro/internal/transport/fixture")
}

func TestAppliesTo(t *testing.T) {
	for path, want := range map[string]bool{
		"repro":                           true,
		"repro/live":                      true,
		"repro/internal/transport":        true,
		"repro/internal/transport/extra":  true,
		"repro/internal/daemon":           true,
		"repro/internal/totem":            false,
		"repro/internal/sim":              false,
		"repro/internal/transportmetrics": false,
	} {
		if got := golife.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}

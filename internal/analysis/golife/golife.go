// Package golife polices goroutine lifecycle in the live runtime, the
// real transports and the daemon: every spawned goroutine must have a
// shutdown path that Close can drive. A goroutine with neither a join
// nor a cancel leaks past Close — in tests it trips the race detector
// long after the transport is gone, and in evsd it holds sockets and
// file handles a restarting process needs back. The contract a spawn
// must meet (any one suffices):
//
//   - joined: the goroutine's body calls Done on a sync.WaitGroup that
//     some function in the package Waits on (Close, in practice). The
//     WaitGroup is identified structurally — a struct field, a
//     package-level variable, or a *sync.WaitGroup parameter resolved
//     through the go statement's argument binding (the
//     `go p.receive(ch, &g.wg)` idiom) — via the internal/analysis/ssa
//     layer's one-level call indirection.
//   - cancelled: the body receives from (or ranges over, or selects on)
//     a channel that some function in the package close()s, so Close
//     can make the goroutine observe shutdown.
//
// The body is resolved through one level of same-package calls: a
// `go t.drain(id, s)` is checked against drain's body, and helpers
// drain itself calls are expanded one level further. Deliberate
// fire-and-forget goroutines carry //lint:allow golife <reason>.
//
// The companion invariant — no blocking channel sends while holding a
// lock — lives in lockheld, which shares the same SSA blocking
// summaries.
package golife

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/ssa"
)

// Analyzer is the goroutine-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name:      "golife",
	Doc:       "every goroutine in the live runtime, transports and daemon must be joined or cancellable by Close",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo covers the live runtime (root package), the real transports
// and the daemon — the packages whose goroutines outlive a test or a
// process unless Close reaps them. Fixtures load under the transport
// zone.
func AppliesTo(path string) bool {
	return path == "repro" ||
		analysis.PathHasPrefix(path, "repro/live") ||
		analysis.PathHasPrefix(path, "repro/internal/transport") ||
		analysis.PathHasPrefix(path, "repro/internal/daemon")
}

func run(pass *analysis.Pass) error {
	p := ssa.Build(pass, nil)
	ev := collectEvidence(pass)
	for _, f := range p.Funcs() {
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(p, f, g, ev)
			return true
		})
	}
	return nil
}

// evidence is the package-wide shutdown machinery: which WaitGroups are
// Waited on, and which channels are closed.
type evidence struct {
	waited map[types.Object]bool
	closed map[types.Object]bool
}

func collectEvidence(pass *analysis.Pass) *evidence {
	ev := &evidence{waited: map[types.Object]bool{}, closed: map[types.Object]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if obj := resolveTarget(pass, call.Args[0], nil); obj != nil {
						ev.closed[obj] = true
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Wait" && isWaitGroup(pass.TypeOf(sel.X)) {
				if obj := resolveTarget(pass, sel.X, nil); obj != nil {
					ev.waited[obj] = true
				}
			}
			return true
		})
	}
	return ev
}

func isWaitGroup(t types.Type) bool {
	n := analysis.NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// frame carries the parameter bindings of one resolved call body, so a
// Done on a *sync.WaitGroup parameter maps back through the go
// statement's arguments to the WaitGroup the caller actually passed.
type frame struct {
	fn *ssa.Func
	pm map[types.Object]bound
}

type bound struct {
	e ast.Expr
	f *frame
}

// resolveTarget maps an expression to the stable object identifying its
// storage: a struct field (the same *types.Var in every function that
// touches it), a package-level or local variable, or — through frame
// bindings — the object behind a parameter.
func resolveTarget(pass *analysis.Pass, e ast.Expr, fr *frame) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if v.Op.String() != "&" {
				return nil
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			if sel := pass.TypesInfo.Selections[v]; sel != nil {
				if sel.Kind() == types.FieldVal {
					return sel.Obj()
				}
				return nil
			}
			return pass.TypesInfo.Uses[v.Sel] // qualified package-level var
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(v)
			if fr != nil {
				if b, ok := fr.pm[obj]; ok {
					return resolveTarget(pass, b.e, b.f)
				}
			}
			return obj
		default:
			return nil
		}
	}
}

// shutdown is what a goroutine body offers as exit paths.
type shutdown struct {
	done []types.Object // WaitGroups the body signals Done on
	recv []types.Object // channels the body receives from
}

func checkSpawn(p *ssa.Package, f *ssa.Func, g *ast.GoStmt, ev *evidence) {
	var sd shutdown
	seen := map[*ast.BlockStmt]bool{}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		scanBody(p, fun.Body, &frame{fn: f}, &sd, seen, 0)
	default:
		if callee := p.Pass.CalleeFunc(g.Call); callee != nil {
			if cf := p.FuncOf(callee); cf != nil {
				scanBody(p, cf.Decl.Body, bindFrame(p, cf, g.Call, &frame{fn: f}), &sd, seen, 0)
			}
		}
	}
	for _, o := range sd.done {
		if ev.waited[o] {
			return // joined
		}
	}
	for _, o := range sd.recv {
		if ev.closed[o] {
			return // cancellable
		}
	}
	switch {
	case len(sd.done) > 0:
		p.Pass.Reportf(g.Pos(),
			"goroutine signals %s.Done but nothing in the package Waits on it, so Close cannot join it",
			sd.done[0].Name())
	case len(sd.recv) > 0:
		p.Pass.Reportf(g.Pos(),
			"goroutine only waits on %s, which nothing in the package closes, so Close cannot cancel it",
			sd.recv[0].Name())
	default:
		p.Pass.Reportf(g.Pos(),
			"goroutine has no shutdown path: no WaitGroup.Done with a package-level Wait, and no receive on a channel the package closes; join or cancel it in Close")
	}
}

// bindFrame builds the parameter→argument bindings for a resolved call.
func bindFrame(p *ssa.Package, callee *ssa.Func, call *ast.CallExpr, caller *frame) *frame {
	fr := &frame{fn: callee, pm: map[types.Object]bound{}}
	params := callee.Params()
	var args [][]ast.Expr
	if callee.Obj != nil {
		args = p.BindArgs(callee.Obj, call)
	}
	for i, obj := range params {
		if i < len(args) && len(args[i]) == 1 {
			fr.pm[obj] = bound{e: args[i][0], f: caller}
		}
	}
	return fr
}

// scanBody collects Done calls and channel receives from a goroutine
// body, expanding same-package calls one extra level so helpers that
// carry the defer wg.Done() are seen.
func scanBody(p *ssa.Package, body *ast.BlockStmt, fr *frame, sd *shutdown, seen map[*ast.BlockStmt]bool, depth int) {
	if body == nil || seen[body] || depth > 2 {
		return
	}
	seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			return false // a nested spawn is its own obligation
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				if t := p.Pass.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if obj := resolveTarget(p.Pass, v.X, fr); obj != nil {
							sd.recv = append(sd.recv, obj)
						}
					}
				}
			}
		case *ast.RangeStmt:
			if t := p.Pass.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if obj := resolveTarget(p.Pass, v.X, fr); obj != nil {
						sd.recv = append(sd.recv, obj)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Done" && isWaitGroup(p.Pass.TypeOf(sel.X)) {
				if obj := resolveTarget(p.Pass, sel.X, fr); obj != nil {
					sd.done = append(sd.done, obj)
				}
				return true
			}
			if callee := p.Pass.CalleeFunc(v); callee != nil {
				if cf := p.FuncOf(callee); cf != nil {
					scanBody(p, cf.Decl.Body, bindFrame(p, cf, v, fr), sd, seen, depth+1)
				}
			}
		}
		return true
	})
}

// Package fixture exercises the golife analyzer: every goroutine needs
// a shutdown path Close can drive — a WaitGroup.Done joined by a
// package-level Wait, or a receive on a channel the package closes.
// Joined and cancelled spawns stay silent, including through the
// one-level call resolution and the *sync.WaitGroup parameter-binding
// idiom; orphaned Done, unclosed channels and bare infinite loops are
// flagged at the go statement.
package fixture

import "sync"

// good joins one goroutine and cancels another; Close reaps both.
type good struct {
	wg   sync.WaitGroup
	quit chan struct{}
	work chan int
}

func (g *good) start() {
	g.wg.Add(1)
	go g.run()
	go g.loop()
}

// run is joined: its deferred Done pairs with Close's Wait.
func (g *good) run() {
	defer g.wg.Done()
}

// loop is cancelled: it selects on quit, which Close closes.
func (g *good) loop() {
	for {
		select {
		case <-g.quit:
			return
		case v := <-g.work:
			_ = v
		}
	}
}

func (g *good) Close() {
	close(g.quit)
	g.wg.Wait()
}

// pool exercises the `go p.work(&p.wg)` parameter-binding idiom: the
// WaitGroup reaches the body as a *sync.WaitGroup argument.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.work(&p.wg)
	}
}

func (p *pool) work(wg *sync.WaitGroup) {
	defer wg.Done()
}

func (p *pool) Close() {
	p.wg.Wait()
}

// mesh exercises helper expansion: the spawned body reaches Done and
// the cancel receive one call level down.
type mesh struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (m *mesh) start() {
	m.wg.Add(1)
	go m.outer()
}

func (m *mesh) outer() {
	defer m.finish()
	<-m.done
}

func (m *mesh) finish() {
	m.wg.Done()
}

func (m *mesh) Close() {
	close(m.done)
	m.wg.Wait()
}

// leak spawns a goroutine with no shutdown path at all: no Done, no
// channel to cancel it through.
type leak struct {
	n int
}

func (l *leak) start() {
	go func() { // want `goroutine has no shutdown path: no WaitGroup.Done with a package-level Wait, and no receive on a channel the package closes; join or cancel it in Close`
		for {
			l.n++
		}
	}()
}

// orphan signals a WaitGroup nothing in the package Waits on: the Done
// is dead evidence, so Close cannot join the goroutine.
type orphan struct {
	wg sync.WaitGroup
}

func (o *orphan) start() {
	o.wg.Add(1)
	go func() { // want `goroutine signals wg.Done but nothing in the package Waits on it, so Close cannot join it`
		defer o.wg.Done()
	}()
}

// unclosed waits on a channel nothing in the package ever closes, so
// Close cannot make the goroutine observe shutdown.
type unclosed struct {
	stop chan struct{}
}

func (u *unclosed) start() {
	go func() { // want `goroutine only waits on stop, which nothing in the package closes, so Close cannot cancel it`
		<-u.stop
	}()
}

// notifier documents a deliberate fire-and-forget: the allow
// suppresses the finding.
type notifier struct{}

func (n *notifier) start(ch chan string) {
	//lint:allow golife one-shot best-effort notifier; process exit reaps it
	go func() {
		for s := range ch {
			_ = s
		}
	}()
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. Export is the compiler export-data file `go list -export`
// produces in the build cache; it is how dependencies are resolved
// without source type-checking (and without any network or module
// downloads — the same mechanism `go vet` uses).
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` over the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"-deps",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves import paths
// from the export-data files go list reported. One importer is shared
// across every target package so common dependencies are decoded once.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists, parses, and type-checks the packages matching the
// patterns, resolving their dependencies from compiler export data.
// dir is the directory to run `go list` from (the module root or any
// directory inside it). Test files are not loaded: the suite encodes
// production-path invariants, and several analyzers (nopanic in
// particular) explicitly exempt tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every non-test .go file in one directory as a single
// package and type-checks it under the given import path, resolving
// imports from export data produced for the surrounding module. It is
// the analysistest entry point: fixtures live in testdata directories
// (invisible to ./... builds) but may import real repo and standard
// library packages, and the import path chosen decides which zone-scoped
// analyzers consider the fixture in scope.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	// Parse first to learn the fixture's imports, then ask go list for
	// exactly that dependency closure's export data.
	fset := token.NewFileSet()
	var asts []*ast.File
	imports := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, spec := range f.Imports {
			imports[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheckFiles(fset, exportImporter(fset, exports), importPath, asts)
}

// LoadFiles parses and type-checks an explicit file list as one package
// under the given import path, resolving imports through lookup (which
// returns a package's compiler export data by import path, after any
// import-map canonicalisation the caller wants). It is the vettool entry
// point: cmd/go's unitchecker protocol hands evslint exactly this — a
// file list plus an export-data map — per package.
func LoadFiles(importPath string, filenames []string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return typeCheckFiles(fset, imp, importPath, asts)
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	pkg, err := typeCheckFiles(fset, imp, importPath, asts)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func typeCheckFiles(fset *token.FileSet, imp types.Importer, importPath string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
	}, nil
}

package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// A Summary abstracts one function for its same-package callers: where
// each parameter's memory may flow, whether the results carry arena
// memory, and whether calling it may block. Summaries are computed to a
// fixed point, so flows compose transitively through helper chains
// within the package.
type Summary struct {
	// Flows is indexed receiver-first, matching Func.Params.
	Flows []ParamFlow
	// ReturnsArena reports that some result may alias //evs:arena
	// memory.
	ReturnsArena bool
	// MayBlock reports that calling the function may block the caller:
	// channel operations, waits, sleeps, or I/O — directly or through a
	// same-package callee.
	MayBlock bool
	// BlockReason is the first blocking construct found ("channel send
	// blocks", "net.Dial performs I/O", "drain may block: ...").
	BlockReason string
}

// ParamFlow records where one parameter's memory may escape to.
type ParamFlow struct {
	// ToResult: the parameter may alias a result value.
	ToResult bool
	// ToGlobal: the parameter may be stored into package-level state.
	ToGlobal bool
	// ToGoroutine: the parameter may be captured by a spawned goroutine.
	ToGoroutine bool
	// ToChan: the parameter may be sent on a channel.
	ToChan bool
	// StoredInto is a bitset of receiver-first parameter indices whose
	// memory may receive this parameter (p stored into recv state sets
	// bit 0 on methods).
	StoredInto uint64
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil || s.ReturnsArena != o.ReturnsArena || s.MayBlock != o.MayBlock {
		return false
	}
	if len(s.Flows) != len(o.Flows) {
		return false
	}
	for i := range s.Flows {
		if s.Flows[i] != o.Flows[i] {
			return false
		}
	}
	return true
}

// computeSummaries iterates summarize over every function until no
// summary changes. All facts are monotone (booleans and bitsets only
// turn on), so the loop terminates; the round cap is a safety net.
func (p *Package) computeSummaries() {
	for _, f := range p.order {
		p.summaries[f.Obj] = &Summary{Flows: make([]ParamFlow, len(f.params))}
	}
	for round := 0; round < 16; round++ {
		changed := false
		for _, f := range p.order {
			s := p.summarize(f)
			if !s.equal(p.summaries[f.Obj]) {
				p.summaries[f.Obj] = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func (p *Package) summarize(f *Func) *Summary {
	s := &Summary{Flows: make([]ParamFlow, len(f.params))}

	// Stores, sends and goroutine captures — function literals included:
	// a literal may run, so its effects are the function's effects for a
	// may-analysis.
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			p.summarizeAssign(f, v, s)
		case *ast.SendStmt:
			for _, r := range f.Roots(v.Value) {
				if j := paramIdx(f, r); j >= 0 {
					s.Flows[j].ToChan = true
				}
			}
		case *ast.GoStmt:
			for _, e := range p.GoCaptured(f, v) {
				for _, r := range f.Roots(e) {
					if j := paramIdx(f, r); j >= 0 {
						s.Flows[j].ToGoroutine = true
					}
				}
			}
		case *ast.CallExpr:
			p.propagateCall(f, v, s)
		}
		return true
	})

	// Returns — outer function only; a literal's return feeds the
	// literal's caller, not ours.
	walkSkippingFuncLits(f.Decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		exprs := ret.Results
		if len(exprs) == 0 {
			exprs = namedResults(f)
		}
		for _, e := range exprs {
			for _, r := range f.Roots(e) {
				switch r.Kind {
				case Param:
					if j := f.ParamIndex(r.Obj); j >= 0 {
						s.Flows[j].ToResult = true
					}
				case Arena:
					s.ReturnsArena = true
				}
			}
		}
	})

	s.MayBlock, s.BlockReason = p.mayBlock(f)
	return s
}

func paramIdx(f *Func, r Root) int {
	if r.Kind != Param {
		return -1
	}
	return f.ParamIndex(r.Obj)
}

// namedResults returns the identifier list of a function's named results
// (the values a naked return yields).
func namedResults(f *Func) []ast.Expr {
	if f.Decl.Type.Results == nil {
		return nil
	}
	var out []ast.Expr
	for _, fl := range f.Decl.Type.Results.List {
		for _, name := range fl.Names {
			out = append(out, name)
		}
	}
	return out
}

// summarizeAssign records parameter escapes through stores: assignments
// whose target is global state or memory rooted at another parameter.
// Plain local (re)definitions are def-use edges, not stores.
func (p *Package) summarizeAssign(f *Func, as *ast.AssignStmt, s *Summary) {
	for i, lhs := range as.Lhs {
		rhs := pairedRhs(as, i)
		if rhs == nil {
			continue
		}
		if t := p.Pass.TypeOf(rhs); t == nil || !SharesMemory(t) {
			continue
		}
		containers := p.storeContainers(f, lhs)
		if len(containers) == 0 {
			continue
		}
		for _, r := range f.Roots(rhs) {
			j := paramIdx(f, r)
			if j < 0 {
				continue
			}
			for _, c := range containers {
				switch c.Kind {
				case Global:
					s.Flows[j].ToGlobal = true
				case Param:
					if k := f.ParamIndex(c.Obj); k >= 0 && k < 64 {
						s.Flows[j].StoredInto |= 1 << uint(k)
					}
				}
			}
		}
	}
}

// pairedRhs returns the right-hand side feeding as.Lhs[i], handling both
// the pairwise and the single-call (x, y := f()) forms; nil for forms
// that cannot carry memory (x++, x += y over numerics).
func pairedRhs(as *ast.AssignStmt, i int) ast.Expr {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return nil
	}
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 {
		return as.Rhs[0]
	}
	return nil
}

// storeContainers resolves an assignment target to the roots of the
// memory being written: x.f = v writes x's memory, m[k] = v writes m's,
// *p = v writes where p points, G = v writes a global. A plain local
// target returns nil — that is a definition, not a store.
func (p *Package) storeContainers(f *Func, lhs ast.Expr) []Root {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := p.Pass.TypesInfo.ObjectOf(v).(*types.Var); ok &&
			obj.Parent() == p.Pass.Pkg.Scope() {
			return []Root{{Kind: Global, Obj: obj}}
		}
		if obj := p.Pass.TypesInfo.ObjectOf(v); obj != nil {
			if j := f.ParamIndex(obj); j >= 0 {
				// Rebinding a parameter variable itself is local; the
				// caller's memory is untouched.
				return nil
			}
		}
		return nil
	case *ast.SelectorExpr:
		return f.Roots(v.X)
	case *ast.IndexExpr:
		return f.Roots(v.X)
	case *ast.StarExpr:
		return f.Roots(v.X)
	}
	return nil
}

// SharesMemory reports whether values of t can alias backing storage:
// anything but booleans, numerics and strings (immutable) — structs
// count, since a struct value carries its slice/map/pointer fields.
func SharesMemory(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) == 0
	}
	return true
}

// GoCaptured returns every expression whose value a go statement hands
// to the spawned goroutine: call arguments, the method receiver, and —
// for function literals — each free variable of the enclosing function
// referenced in the body.
func (p *Package) GoCaptured(f *Func, g *ast.GoStmt) []ast.Expr {
	out := append([]ast.Expr{}, g.Call.Args...)
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.SelectorExpr:
		out = append(out, fun.X)
	case *ast.FuncLit:
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := p.Pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if f.ParamIndex(obj) >= 0 || f.defs[obj] != nil {
				out = append(out, id)
			}
			return true
		})
	}
	return out
}

// propagateCall folds a same-package callee's summary into the caller's:
// if the callee leaks its i-th parameter somewhere, whatever we pass in
// position i leaks the same way.
func (p *Package) propagateCall(f *Func, call *ast.CallExpr, s *Summary) {
	callee := p.Pass.CalleeFunc(call)
	if callee == nil {
		return
	}
	sum := p.summaries[callee]
	if sum == nil {
		return
	}
	args := p.BindArgs(callee, call)
	for i, fl := range sum.Flows {
		if i >= len(args) {
			break
		}
		if !fl.ToGlobal && !fl.ToGoroutine && !fl.ToChan && fl.StoredInto == 0 {
			continue
		}
		for _, a := range args[i] {
			for _, r := range f.Roots(a) {
				j := paramIdx(f, r)
				if j < 0 {
					continue
				}
				if fl.ToGlobal {
					s.Flows[j].ToGlobal = true
				}
				if fl.ToGoroutine {
					s.Flows[j].ToGoroutine = true
				}
				if fl.ToChan {
					s.Flows[j].ToChan = true
				}
				for k := 0; k < len(args) && k < 64; k++ {
					if fl.StoredInto&(1<<uint(k)) == 0 {
						continue
					}
					for _, c := range args[k] {
						for _, cr := range f.Roots(c) {
							switch cr.Kind {
							case Global:
								s.Flows[j].ToGlobal = true
							case Param:
								if kj := f.ParamIndex(cr.Obj); kj >= 0 && kj < 64 {
									s.Flows[j].StoredInto |= 1 << uint(kj)
								}
							}
						}
					}
				}
			}
		}
	}
}

// mayBlock scans a function body for blocking constructs, consulting
// same-package summaries for transitive blocking. Function literals, go
// statements and deferred calls are skipped — they run elsewhere or
// after the region of interest, mirroring lockheld's lexical model. A
// select with a default case is the sanctioned non-blocking idiom; its
// clause bodies are still scanned.
func (p *Package) mayBlock(f *Func) (bool, string) {
	var reason string
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reason = "select without default blocks"
				return false
			}
			for _, c := range v.Body.List {
				for _, st := range c.(*ast.CommClause).Body {
					ast.Inspect(st, inspect)
				}
			}
			return false
		case *ast.SendStmt:
			reason = "channel send blocks"
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				reason = "channel receive blocks"
			}
		case *ast.RangeStmt:
			if t := p.Pass.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					reason = "range over channel blocks"
				}
			}
		case *ast.CallExpr:
			if r := BlockReason(p.Pass, v); r != "" {
				reason = r
				return false
			}
			if callee := p.Pass.CalleeFunc(v); callee != nil && callee != f.Obj {
				if sum := p.summaries[callee]; sum != nil && sum.MayBlock {
					reason = fmt.Sprintf("%s may block: %s", callee.Name(), sum.BlockReason)
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(f.Decl.Body, inspect)
	return reason != "", reason
}

// BlockReason classifies a call to a function outside the package as
// blocking: sleeps, waits, and network/file I/O. The returned text
// matches the historical lockheld diagnostics ("time.Sleep blocks",
// "net.Dial performs I/O"); "" means not known to block.
func BlockReason(pass *analysis.Pass, call *ast.CallExpr) string {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	pkg, name := f.Pkg().Path(), f.Name()
	sig := f.Type().(*types.Signature)
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep blocks"
	case pkg == "sync" && name == "Wait" && sig.Recv() != nil:
		return fmt.Sprintf("sync %s.Wait blocks",
			analysis.NamedOf(sig.Recv().Type()).Obj().Name())
	case (pkg == "net" || pkg == "net/http") && !netPure[name]:
		return fmt.Sprintf("%s.%s performs I/O", lastSeg(pkg), name)
	case pkg == "os" && sig.Recv() == nil && osIOFuncs[name]:
		return fmt.Sprintf("os.%s performs I/O", name)
	case pkg == "os" && sig.Recv() != nil && osFileMethods[name]:
		if n := analysis.NamedOf(sig.Recv().Type()); n != nil && n.Obj().Name() == "File" {
			return fmt.Sprintf("os.File.%s performs I/O", name)
		}
	}
	return ""
}

// netPure are net/net-http names that neither block nor touch the
// network: accessors (Addr, String), address arithmetic and parsing.
// Everything else in those packages is presumed to perform I/O.
var netPure = map[string]bool{
	"Addr": true, "LocalAddr": true, "RemoteAddr": true, "String": true,
	"Network": true, "Error": true, "Timeout": true, "Temporary": true,
	"Unwrap": true, "ParseIP": true, "ParseCIDR": true, "ParseMAC": true,
	"JoinHostPort": true, "SplitHostPort": true, "IPv4": true,
	"CIDRMask": true, "CanonicalHeaderKey": true, "StatusText": true,
	// http mux assembly: constructors and route registration mutate
	// in-process tables, no sockets involved.
	"NewServeMux": true, "Handle": true, "HandleFunc": true,
	"NotFoundHandler": true, "StripPrefix": true, "NewRequest": true,
}

// osIOFuncs are the file-touching package-level os functions.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"Rename": true, "Stat": true, "Lstat": true, "Truncate": true,
}

// osFileMethods are the blocking *os.File methods.
var osFileMethods = map[string]bool{
	"Read": true, "Write": true, "WriteString": true, "ReadAt": true,
	"WriteAt": true, "Sync": true, "Close": true,
}

func lastSeg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// walkSkippingFuncLits runs fn over every node of body except those
// inside function literals.
func walkSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// Package ssa is the suite's interprocedural dataflow layer: a pruned
// def-use SSA form built over one type-checked package, plus per-function
// summaries computed to a fixed point across the package's call graph.
//
// Values are definition sites — every assignment's right-hand side, every
// allocation, every call result is a distinct value — and a variable's
// uses join over all of its reaching definitions, which is exactly the
// information a φ node at every join point would carry. The layer is
// deliberately flow-insensitive: it answers MAY questions (may this
// expression alias a parameter? may arena memory reach this store? may
// this function block?), and for a may-analysis joining over all defs is
// sound. What it buys over the AST-level walks the first-generation
// analyzers used:
//
//   - aliases through locals: `tmp := p; msg.F = tmp` resolves tmp to p
//   - aliases through calls, one level deep and transitively within the
//     package: a helper that returns its own parameter, stores it into
//     receiver state, or hands it to a goroutine is summarised, and the
//     caller's analyzer sees through the call
//   - arena provenance: values carved by an //evs:arena allocator carry
//     the allocator and its owner path, so escape rules can distinguish
//     "stored back into the arena's owner" from "leaked elsewhere"
//   - blocking behaviour: MayBlock summarises channel operations, waits
//     and I/O transitively, extending lockheld beyond one function body
//
// The representation never materialises instructions: the AST is the
// instruction stream, the types.Info maps are the use-def edges, and
// Roots is the transitive-closure query over them. That keeps the layer
// a few hundred lines, dependency-free, and cheap enough to rebuild per
// analyzer pass — the same economy the rest of internal/analysis makes.
package ssa

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// ArenaDirective tags an arena/pool allocator function: its results are
// carved from storage whose lifetime the allocator's owner controls
// (reset, trim, reuse), which the arenaesc analyzer polices.
const ArenaDirective = "evs:arena"

// RootKind classifies where a value's backing memory comes from.
type RootKind uint8

const (
	// Fresh memory is allocated inside the function being analyzed
	// (literals, make/new, zero values) and owned by it.
	Fresh RootKind = iota
	// Param memory belongs to a parameter or the receiver: the caller
	// (or the state machine) owns it and may go on mutating it.
	Param
	// Global memory is rooted at a package-level variable.
	Global
	// Arena memory was carved by an //evs:arena allocator; Fn is the
	// allocator and Owner its receiver path at the carve site.
	Arena
	// External memory is the result of a call the layer cannot see into
	// (cross-package, dynamic): fresh as far as the caller can tell —
	// the callee's contract, not this function's aliasing.
	External
)

// A Root is one possible origin of an expression's backing memory.
type Root struct {
	Kind RootKind
	// Obj is the parameter/receiver or package-level variable (Param,
	// Global).
	Obj types.Object
	// Call is the allocation or call site (Arena, External).
	Call *ast.CallExpr
	// Fn is the allocator or callee (Arena, External; nil for dynamic
	// calls).
	Fn *types.Func
	// Owner is the lexical path of the arena allocator's receiver at
	// the carve site ("s", "n.ring"); "" when the allocator is a plain
	// function or the receiver is not a stable path.
	Owner string
	// OwnerObj is the object at the root of the allocator's receiver
	// path (the s in s.ring.carve()): storing carved memory back into
	// structures rooted at the same object stays inside the arena's
	// lifetime domain.
	OwnerObj types.Object
}

// Package is the dataflow view of one analysis pass: every function
// declaration indexed by its object, with interprocedural summaries.
type Package struct {
	Pass *analysis.Pass

	funcs     map[*types.Func]*Func
	order     []*Func // deterministic iteration order
	summaries map[*types.Func]*Summary

	// IsArena reports whether a callee outside this package is a known
	// arena allocator (the registry hook arenaesc installs); same-package
	// allocators are recognised by their //evs:arena directive.
	IsArena func(*types.Func) bool
}

// Func is one function declaration with its local def-use index.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	pkg  *Package

	// params holds the receiver (if any) first, then the declared
	// parameters, in order.
	params []types.Object
	index  map[types.Object]int

	// defs maps each local object to every expression assigned to it —
	// the variable's definition sites. Function-literal bodies are
	// indexed with their enclosing declaration, so captured locals
	// resolve naturally.
	defs map[types.Object][]ast.Expr
}

// Build indexes the pass's functions and computes summaries to a fixed
// point. isArena may be nil.
func Build(pass *analysis.Pass, isArena func(*types.Func) bool) *Package {
	p := &Package{
		Pass:      pass,
		funcs:     make(map[*types.Func]*Func),
		summaries: make(map[*types.Func]*Summary),
		IsArena:   isArena,
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn := &Func{Obj: obj, Decl: fd, pkg: p}
			fn.collectParams()
			fn.collectDefs()
			p.funcs[obj] = fn
			p.order = append(p.order, fn)
		}
	}
	sort.Slice(p.order, func(i, j int) bool {
		return p.order[i].Decl.Pos() < p.order[j].Decl.Pos()
	})
	p.computeSummaries()
	return p
}

// Funcs returns every indexed function in source order.
func (p *Package) Funcs() []*Func { return p.order }

// FuncOf returns the indexed function for obj, or nil (cross-package,
// interface method, no body).
func (p *Package) FuncOf(obj *types.Func) *Func { return p.funcs[obj] }

// Summary returns obj's interprocedural summary, or nil for functions
// the layer cannot see into.
func (p *Package) Summary(obj *types.Func) *Summary { return p.summaries[obj] }

func (f *Func) collectParams() {
	f.index = make(map[types.Object]int)
	add := func(fl *ast.Field) {
		for _, name := range fl.Names {
			if obj := f.pkg.Pass.TypesInfo.Defs[name]; obj != nil {
				f.index[obj] = len(f.params)
				f.params = append(f.params, obj)
			}
		}
	}
	if f.Decl.Recv != nil {
		for _, fl := range f.Decl.Recv.List {
			add(fl)
		}
	}
	for _, fl := range f.Decl.Type.Params.List {
		add(fl)
	}
}

// Pkg returns the dataflow package the function belongs to.
func (f *Func) Pkg() *Package { return f.pkg }

// Recv returns the receiver object, or nil.
func (f *Func) Recv() types.Object {
	if f.Decl.Recv == nil || len(f.params) == 0 {
		return nil
	}
	return f.params[0]
}

// Params returns the receiver-first parameter objects.
func (f *Func) Params() []types.Object { return f.params }

// ParamIndex returns obj's receiver-first position, or -1.
func (f *Func) ParamIndex(obj types.Object) int {
	if i, ok := f.index[obj]; ok {
		return i
	}
	return -1
}

// collectDefs records every definition site of every local object in the
// function body, function literals included.
func (f *Func) collectDefs() {
	f.defs = make(map[types.Object][]ast.Expr)
	info := f.pkg.Pass.TypesInfo
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		f.defs[obj] = append(f.defs[obj], rhs)
	}
	// Field stores (c.Payload = x) are deliberately NOT recorded as defs
	// of the base: a struct local is typically both container and scratch
	// (decode targets, TokenResult builders), and folding every stored
	// value's roots into the whole struct makes each such struct alias
	// everything it ever held — drowning real findings. The cost is a
	// known MAY-analysis gap: a value carved into a struct-value field
	// and escaping via the whole struct is not tracked (see
	// IsValueStructLocal).
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i, lhs := range v.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, v.Rhs[i])
					}
				}
			} else if len(v.Rhs) == 1 {
				// x, y := f() — every target is defined by the call;
				// Roots collapses a call's results, which over-
				// approximates per-position flow soundly.
				for _, lhs := range v.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, v.Rhs[0])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range v.Names {
				if i < len(v.Values) {
					record(id, v.Values[i])
				} else if len(v.Values) == 1 {
					record(id, v.Values[0])
				}
			}
		case *ast.RangeStmt:
			// Keys and values of a range derive from the ranged
			// container's memory (true for slices and maps; a harmless
			// over-approximation for channels and ints).
			if id, ok := v.Key.(*ast.Ident); ok && v.Key != nil {
				record(id, v.X)
			}
			if id, ok := v.Value.(*ast.Ident); ok && v.Value != nil {
				record(id, v.X)
			}
		case *ast.TypeSwitchStmt:
			// switch y := x.(type): each clause's implicit object is
			// defined by x.
			if as, ok := v.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
					for _, c := range v.Body.List {
						if obj := info.Implicits[c]; obj != nil {
							f.defs[obj] = append(f.defs[obj], ta.X)
						}
					}
				}
			}
		}
		return true
	})
}

// Roots resolves an expression to its possible memory origins, chasing
// local definitions transitively and same-package calls through their
// summaries.
func (f *Func) Roots(e ast.Expr) []Root {
	rs := &rootCollector{seen: make(map[rootKey]bool)}
	f.roots(e, rs, make(map[types.Object]bool))
	return rs.list
}

type rootKey struct {
	kind RootKind
	obj  types.Object
	call *ast.CallExpr
}

type rootCollector struct {
	seen map[rootKey]bool
	list []Root
}

func (rs *rootCollector) add(r Root) {
	k := rootKey{r.Kind, r.Obj, r.Call}
	if rs.seen[k] {
		return
	}
	rs.seen[k] = true
	rs.list = append(rs.list, r)
}

func (f *Func) roots(e ast.Expr, rs *rootCollector, visiting map[types.Object]bool) {
	info := f.pkg.Pass.TypesInfo
	// A value that cannot alias backing storage (a byte read out of a
	// buffer, a sequence number, a name string) carries no memory with
	// it, whatever it was loaded from: without this cut, Kind(b[0]) in a
	// composite literal would taint the whole struct with b's roots.
	if t := info.TypeOf(e); t != nil && !SharesMemory(t) {
		rs.add(Root{Kind: Fresh})
		return
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[v]
		if obj == nil {
			obj = info.Defs[v]
		}
		switch obj := obj.(type) {
		case *types.Var:
			if f.ParamIndex(obj) >= 0 {
				rs.add(Root{Kind: Param, Obj: obj})
				return
			}
			if obj.Parent() == f.pkg.Pass.Pkg.Scope() {
				rs.add(Root{Kind: Global, Obj: obj})
				return
			}
			if visiting[obj] {
				return // def cycle (x = append(x, ...)); other defs cover it
			}
			visiting[obj] = true
			defs := f.defs[obj]
			if len(defs) == 0 {
				rs.add(Root{Kind: Fresh}) // zero value, or a literal's own parameter
				return
			}
			for _, d := range defs {
				f.roots(d, rs, visiting)
			}
		default:
			rs.add(Root{Kind: Fresh}) // const, nil, func value, type
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[v]; sel != nil {
			if sel.Kind() == types.FieldVal {
				f.roots(v.X, rs, visiting) // field memory belongs to its struct
			} else {
				rs.add(Root{Kind: Fresh}) // method value
			}
			return
		}
		// Qualified identifier: pkg.Var / pkg.Func / pkg.Const.
		if obj, ok := info.Uses[v.Sel].(*types.Var); ok {
			rs.add(Root{Kind: Global, Obj: obj})
			return
		}
		rs.add(Root{Kind: Fresh})
	case *ast.IndexExpr:
		f.roots(v.X, rs, visiting)
	case *ast.SliceExpr:
		f.roots(v.X, rs, visiting)
	case *ast.StarExpr:
		f.roots(v.X, rs, visiting)
	case *ast.TypeAssertExpr:
		f.roots(v.X, rs, visiting)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			f.roots(v.X, rs, visiting)
			return
		}
		rs.add(Root{Kind: Fresh}) // <-ch, -x, ...
	case *ast.CompositeLit:
		// The literal itself is fresh, but its elements' memory rides
		// inside it: {F: p} carries p's backing array.
		rs.add(Root{Kind: Fresh})
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				f.roots(kv.Value, rs, visiting)
			} else {
				f.roots(elt, rs, visiting)
			}
		}
	case *ast.CallExpr:
		f.callRoots(v, rs, visiting)
	default:
		rs.add(Root{Kind: Fresh}) // literals, func lits, binary exprs
	}
}

// callRoots resolves the memory a call's results may alias.
func (f *Func) callRoots(call *ast.CallExpr, rs *rootCollector, visiting map[types.Object]bool) {
	info := f.pkg.Pass.TypesInfo
	// Type conversion: []byte(s), Dense(v) — same memory, new type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			f.roots(call.Args[0], rs, visiting)
		}
		return
	}
	// Builtins: append may return its first argument's backing array;
	// everything else yields fresh (or scalar) results.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				f.roots(call.Args[0], rs, visiting)
			}
			rs.add(Root{Kind: Fresh})
			return
		}
	}
	callee := f.pkg.Pass.CalleeFunc(call)
	if callee == nil {
		rs.add(Root{Kind: External, Call: call})
		return
	}
	if f.pkg.isArenaFunc(callee) {
		owner, obj := f.pkg.recvInfo(call)
		rs.add(Root{Kind: Arena, Call: call, Fn: callee, Owner: owner, OwnerObj: obj})
		return
	}
	sum := f.pkg.summaries[callee]
	if sum == nil {
		rs.add(Root{Kind: External, Call: call, Fn: callee})
		return
	}
	rs.add(Root{Kind: Fresh})
	if sum.ReturnsArena {
		owner, obj := f.pkg.recvInfo(call)
		rs.add(Root{Kind: Arena, Call: call, Fn: callee, Owner: owner, OwnerObj: obj})
	}
	args := f.pkg.BindArgs(callee, call)
	for i, fl := range sum.Flows {
		if !fl.ToResult || i >= len(args) {
			continue
		}
		for _, a := range args[i] {
			f.roots(a, rs, visiting)
		}
	}
}

// isArenaFunc reports whether callee is an //evs:arena allocator: by
// directive for same-package functions, by registry for the rest.
func (p *Package) isArenaFunc(callee *types.Func) bool {
	if fn := p.funcs[callee]; fn != nil {
		return analysis.HasDirective(fn.Decl.Doc, ArenaDirective)
	}
	return p.IsArena != nil && p.IsArena(callee)
}

// IsArenaAllocator reports whether obj is recognised as an arena
// allocator (directive or registry) — the arenaesc entry point.
func (p *Package) IsArenaAllocator(obj *types.Func) bool { return p.isArenaFunc(obj) }

// BindArgs maps receiver-first parameter positions to the argument
// expressions bound to them at a call site (the variadic tail binds every
// trailing argument to the last parameter).
func (p *Package) BindArgs(callee *types.Func, call *ast.CallExpr) [][]ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out [][]ast.Expr
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, []ast.Expr{sel.X})
		} else {
			out = append(out, nil)
		}
	}
	n := sig.Params().Len()
	for i := 0; i < n; i++ {
		if sig.Variadic() && i == n-1 {
			if i < len(call.Args) {
				out = append(out, call.Args[i:])
			} else {
				out = append(out, nil)
			}
			break
		}
		if i < len(call.Args) {
			out = append(out, []ast.Expr{call.Args[i]})
		} else {
			out = append(out, nil)
		}
	}
	return out
}

// recvInfo returns the lexical path of a method call's receiver ("s",
// "n.ring") and the object at its root, or "" and nil for plain
// functions and unstable receivers.
func (p *Package) recvInfo(call *ast.CallExpr) (string, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	var obj types.Object
	if id := analysis.RootIdent(sel.X); id != nil {
		obj = p.Pass.TypesInfo.ObjectOf(id)
	}
	return PathOf(sel.X), obj
}

// PathOf renders an expression as a stable lexical path — a chain of
// selectors over an identifier ("g", "t.hub.mu") — or "" when the
// expression involves calls, indexing or literals. Paths are how the
// analyzers compare "the same storage" across sites, the way lockheld
// keys critical sections.
func PathOf(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := PathOf(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.StarExpr:
		return PathOf(v.X)
	}
	return ""
}

// SamePathOwner reports whether a store to path `dst` stays within the
// storage rooted at `owner`: equal paths, or one extending the other at
// a selector boundary ("s" owns "s.log"; "n.ring" does not own
// "n.cache").
func SamePathOwner(owner, dst string) bool {
	if owner == "" || dst == "" {
		return false
	}
	if owner == dst {
		return true
	}
	if len(dst) > len(owner) && dst[:len(owner)] == owner && dst[len(owner)] == '.' {
		return true
	}
	if len(owner) > len(dst) && owner[:len(dst)] == dst && owner[len(dst)] == '.' {
		return true
	}
	return false
}

// ExprString renders an expression for diagnostics.
func ExprString(e ast.Expr) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}

// IsValueStructLocal reports whether e is a plain identifier naming a
// function-local variable — including a by-value parameter — of struct
// type. A store through such a base (c.Payload = x after c := d) writes
// the local's own copy, not whatever memory the local's initializer
// aliased: the struct was copied at its definition. Such stores are not
// folded back into the local's defs either (see collectDefs), so a
// value that escapes only via the whole struct is a known gap.
func IsValueStructLocal(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == pass.Pkg.Scope() {
		return false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, isStruct := t.Underlying().(*types.Struct)
	return isStruct
}

package ssa_test

import (
	"go/ast"
	"go/types"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/ssa"
)

// load builds the dataflow view of the test fixture. The Pass is
// constructed by hand: Build only reads the exported fields, and the
// ssa layer itself never reports.
func load(t *testing.T) *ssa.Package {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/fixture", "repro/internal/analysis/ssa/fixture")
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "ssatest"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return ssa.Build(pass, nil)
}

func fn(t *testing.T, p *ssa.Package, name string) *ssa.Func {
	t.Helper()
	for _, f := range p.Funcs() {
		if f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil
}

// retExpr returns the first result expression of f's first return.
func retExpr(t *testing.T, f *ssa.Func) ast.Expr {
	t.Helper()
	var e ast.Expr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && e == nil && len(r.Results) > 0 {
			e = r.Results[0]
		}
		return e == nil
	})
	if e == nil {
		t.Fatalf("%s has no return expression", f.Obj.Name())
	}
	return e
}

func hasRoot(roots []ssa.Root, kind ssa.RootKind, objName string) bool {
	for _, r := range roots {
		if r.Kind != kind {
			continue
		}
		if objName == "" || (r.Obj != nil && r.Obj.Name() == objName) {
			return true
		}
	}
	return false
}

func TestRootsThroughLocalsAndCalls(t *testing.T) {
	p := load(t)
	f := fn(t, p, "throughLocal")
	roots := f.Roots(retExpr(t, f))
	if !hasRoot(roots, ssa.Param, "b") {
		t.Errorf("throughLocal's result should root at parameter b through tmp := identity(b); got %v", roots)
	}
}

func TestRootsFieldLoad(t *testing.T) {
	p := load(t)
	f := fn(t, p, "fieldLoad")
	roots := f.Roots(retExpr(t, f))
	if !hasRoot(roots, ssa.Param, "n") {
		t.Errorf("fieldLoad's result should root at receiver n; got %v", roots)
	}
}

func TestRootsArena(t *testing.T) {
	p := load(t)
	f := fn(t, p, "wrapCarve")
	roots := f.Roots(retExpr(t, f))
	found := false
	for _, r := range roots {
		if r.Kind == ssa.Arena {
			found = true
			if r.Owner != "n" {
				t.Errorf("arena root owner = %q, want n", r.Owner)
			}
			if r.Fn == nil || r.Fn.Name() != "carve" {
				t.Errorf("arena root Fn = %v, want carve", r.Fn)
			}
		}
	}
	if !found {
		t.Errorf("wrapCarve's result should carry an Arena root; got %v", roots)
	}
	if carve := fn(t, p, "carve"); !p.IsArenaAllocator(carve.Obj) {
		t.Error("carve carries //evs:arena but IsArenaAllocator is false")
	}
}

func TestSummaries(t *testing.T) {
	p := load(t)
	sum := func(name string) *ssa.Summary {
		s := p.Summary(fn(t, p, name).Obj)
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		return s
	}

	if !sum("identity").Flows[0].ToResult {
		t.Error("identity: parameter b should flow to the result")
	}
	if !sum("parkGlobal").Flows[0].ToGlobal {
		t.Error("parkGlobal: parameter b should flow to package state")
	}
	if !sum("spawn").Flows[0].ToGoroutine {
		t.Error("spawn: parameter b should be goroutine-captured")
	}
	// ship(ch, b): no receiver, so b is Flows[1].
	if !sum("ship").Flows[1].ToChan {
		t.Error("ship: parameter b should flow to a channel send")
	}
	// retain is a method: Flows[0] is the receiver, Flows[1] is b, and
	// bit 0 of StoredInto marks memory reachable from the receiver.
	if sum("retain").Flows[1].StoredInto&1 == 0 {
		t.Error("retain: parameter b should be recorded as stored into the receiver")
	}
	if !sum("wrapCarve").ReturnsArena {
		t.Error("wrapCarve should summarize as ReturnsArena")
	}

	for _, name := range []string{"blockSend", "callsBlocking"} {
		s := sum(name)
		if !s.MayBlock {
			t.Errorf("%s should summarize as MayBlock", name)
		} else if s.BlockReason == "" {
			t.Errorf("%s blocks but has no BlockReason", name)
		}
	}
	if sum("identity").MayBlock {
		t.Error("identity should not summarize as MayBlock")
	}
}

func TestSharesMemory(t *testing.T) {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	for _, tc := range []struct {
		t    types.Type
		want bool
	}{
		{types.Typ[types.Int], false},
		{types.Typ[types.Bool], false},
		{types.Typ[types.String], false},
		{byteSlice, true},
		{types.NewMap(types.Typ[types.String], byteSlice), true},
		{types.NewPointer(types.Typ[types.Int]), true},
	} {
		if got := ssa.SharesMemory(tc.t); got != tc.want {
			t.Errorf("SharesMemory(%s) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestIsValueStructLocal(t *testing.T) {
	p := load(t)
	f := fn(t, p, "valueLocal")
	// Collect the base expressions of the two field stores: p.a = src
	// (struct-typed local value) and q.b = src (pointer).
	var bases []ast.Expr
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok.String() == "=" {
			if sel, ok := as.Lhs[0].(*ast.SelectorExpr); ok {
				bases = append(bases, sel.X)
			}
		}
		return true
	})
	if len(bases) != 2 {
		t.Fatalf("expected 2 field stores in valueLocal, found %d", len(bases))
	}
	if !ssa.IsValueStructLocal(p.Pass, bases[0]) {
		t.Error("p (struct-typed local value) should be a value-struct local")
	}
	if ssa.IsValueStructLocal(p.Pass, bases[1]) {
		t.Error("q (*pair) should not be a value-struct local")
	}
}

func TestPathHelpers(t *testing.T) {
	for _, tc := range []struct {
		owner, dst string
		want       bool
	}{
		{"s", "s", true},
		{"s", "s.log", true},
		{"s", "sx", false},
		{"n.ring", "n.ring.buf", true},
		{"n.ring", "n.rings", false},
		// Extension is symmetric: storing into the structure the owner
		// path is rooted at also stays inside the lifetime domain.
		{"s.log", "s", true},
		{"s.log", "sx", false},
	} {
		if got := ssa.SamePathOwner(tc.owner, tc.dst); got != tc.want {
			t.Errorf("SamePathOwner(%q, %q) = %v, want %v", tc.owner, tc.dst, got, tc.want)
		}
	}
}

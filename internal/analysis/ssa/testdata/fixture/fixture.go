// Package fixture gives the ssa layer's unit tests concrete shapes:
// parameter flows through locals and same-package calls, field loads,
// arena carving, blocking callees and struct-value locals.
package fixture

type node struct {
	buf   []byte
	links [][]byte
}

var global []byte

// identity returns its parameter unchanged.
func identity(b []byte) []byte { return b }

// throughLocal flows a parameter through a local binding and a
// same-package call before returning it.
func throughLocal(b []byte) []byte {
	tmp := identity(b)
	return tmp
}

// fieldLoad returns memory loaded out of the receiver.
func (n *node) fieldLoad() []byte { return n.buf }

// parkGlobal stores its parameter into package-level state.
func parkGlobal(b []byte) { global = b }

// spawn captures its parameter in a goroutine.
func spawn(b []byte) {
	go func() { _ = b[0] }()
}

// ship sends its parameter on a channel.
func ship(ch chan []byte, b []byte) { ch <- b }

// retain stores its parameter into receiver state.
func (n *node) retain(b []byte) { n.links[0] = b }

// carve cuts sz bytes out of the receiver's buffer arena.
//
//evs:arena
func (n *node) carve(sz int) []byte {
	out := n.buf[:sz:sz]
	n.buf = n.buf[sz:]
	return out
}

// wrapCarve returns carved memory from an untagged function, so its
// summary must report ReturnsArena.
func (n *node) wrapCarve(sz int) []byte { return n.carve(sz) }

// blockSend may block the caller on an unbuffered channel.
func blockSend(ch chan int) { ch <- 1 }

// callsBlocking blocks only through a same-package callee.
func callsBlocking(ch chan int) { blockSend(ch) }

type pair struct {
	a, b []byte
}

// valueLocal stores through a struct-typed local value (p) and through
// a pointer (q) — only the former is a local-copy write.
func valueLocal(src []byte) int {
	var p pair
	p.a = src
	q := &pair{}
	q.b = src
	return len(p.a) + len(q.b)
}

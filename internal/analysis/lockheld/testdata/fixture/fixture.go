// Package fixture exercises the lockheld analyzer: blocking channel
// operations and I/O inside mutex critical sections are flagged; the
// hub's select-with-default lossy send and work done after Unlock stay
// silent.
package fixture

import (
	"net"
	"os"
	"sync"
	"time"
)

type envelope struct{ from string }

// hub mirrors the live hub: a mutex guarding per-process inboxes.
type hub struct {
	mu    sync.Mutex
	inbox map[string]chan envelope
	wg    sync.WaitGroup
}

// blockingSend is the bug class: one full inbox stalls every process.
func (h *hub) blockingSend(from string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, in := range h.inbox {
		in <- envelope{from: from} // want `channel send blocks while holding h.mu`
	}
}

// lossySend is the sanctioned idiom: select with default never blocks.
func (h *hub) lossySend(from string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, in := range h.inbox {
		select {
		case in <- envelope{from: from}:
		default: // medium is lossy; retransmission recovers
		}
	}
}

// blockingReceive waits on a channel under the lock.
func (h *hub) blockingReceive(id string) envelope {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.inbox[id] // want `channel receive blocks while holding h.mu`
}

// selectNoDefault blocks as a whole even with several cases.
func (h *hub) selectNoDefault(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want `select without default blocks while holding h.mu`
	case <-h.inbox[id]:
	case <-time.After(time.Second):
	}
}

// rangeChannel drains a channel under the lock.
func (h *hub) rangeChannel(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for range h.inbox[id] { // want `range over channel blocks while holding h.mu`
	}
}

// waitUnderLock joins goroutines that may themselves need the lock.
func (h *hub) waitUnderLock() {
	h.mu.Lock()
	h.wg.Wait() // want `sync WaitGroup.Wait blocks while holding h.mu`
	h.mu.Unlock()
}

// sleepUnderLock stalls the whole hub.
func (h *hub) sleepUnderLock() {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep blocks while holding h.mu`
	h.mu.Unlock()
}

// ioUnderLock performs network and file I/O inside the critical section.
func (h *hub) ioUnderLock(addr, path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	ln, err := net.Listen("tcp", addr) // want `net.Listen performs I/O while holding h.mu`
	if err != nil {
		return err
	}
	defer ln.Close()
	_, err = os.Stat(path) // want `os.Stat performs I/O while holding h.mu`
	return err
}

// accessorUnderLock reads pure accessors on net types inside the
// critical section — no I/O, no diagnostic.
func (h *hub) accessorUnderLock(ln net.Listener) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return ln.Addr().String()
}

// unlockFirst does the blocking work outside the critical section: the
// region model must see the Unlock.
func (h *hub) unlockFirst(id string, out chan envelope) {
	h.mu.Lock()
	env := envelope{from: id}
	h.mu.Unlock()
	out <- env
	time.Sleep(time.Millisecond)
}

// branchLock holds only within the branch that took it.
func (h *hub) branchLock(cond bool, out chan envelope) {
	if cond {
		h.mu.Lock()
		out <- envelope{} // want `channel send blocks while holding h.mu`
		h.mu.Unlock()
	}
	out <- envelope{} // lock released in every path reaching here
}

// goroutineEscapes shows a function literal is not charged to this
// region: it runs later, on its own stack, without the lock.
func (h *hub) goroutineEscapes(out chan envelope) func() {
	h.mu.Lock()
	defer h.mu.Unlock()
	return func() { out <- envelope{} }
}

// notAMutex: Lock/Unlock on a non-sync type opens no region.
type fakeLock struct{}

func (fakeLock) Lock()   {}
func (fakeLock) Unlock() {}

func notAMutex(out chan envelope) {
	var l fakeLock
	l.Lock()
	out <- envelope{}
	l.Unlock()
}

// allowedSetup documents a cold-path exception.
func (h *hub) allowedSetup(addr string) (net.Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:allow lockheld fixture: one-time setup on a cold path
	return net.Listen("tcp", addr)
}

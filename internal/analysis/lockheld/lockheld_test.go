package lockheld_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockheld"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "testdata/fixture", "repro/live/fixture")
}

func TestAppliesTo(t *testing.T) {
	for _, p := range []string{"repro", "repro/live/fixture"} {
		if !lockheld.AppliesTo(p) {
			t.Errorf("AppliesTo(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"repro/internal/totem", "repro/cmd/evschaos", "other"} {
		if lockheld.AppliesTo(p) {
			t.Errorf("AppliesTo(%q) = true, want false", p)
		}
	}
}

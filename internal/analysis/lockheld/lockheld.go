// Package lockheld forbids blocking operations while a sync mutex is
// held, in the live runtime (the root package's LiveGroup and its hub).
// The live hub fans every broadcast out under its lock; one blocking
// channel send or network call inside that critical section stalls every
// process of the group at once, and — because receiver goroutines take
// the process lock before calling back into the hub — is one hop from a
// deadlock. The simulator never hits this (it is single-threaded), so
// only the live runtime carries the invariant.
//
// While a sync.Mutex or sync.RWMutex is held the analyzer flags:
//
//   - blocking channel sends and receives (a send inside a select with a
//     default case is non-blocking and allowed — that is the hub's
//     sanctioned lossy-send idiom)
//   - select statements without a default case
//   - sync.WaitGroup.Wait and sync.Cond.Wait
//   - time.Sleep
//   - network and file I/O: any net or net/http call, file-touching os
//     functions, and *os.File methods
//
// Lock tracking is lexical and per-function: a region begins at a
// mu.Lock()/mu.RLock() statement and ends at the matching Unlock in the
// same block (a deferred Unlock holds to function end). Calls are
// resolved through the internal/analysis/ssa layer's MayBlock summaries,
// so a same-package helper that blocks — a channel send three calls
// down, a wg.Wait inside a teardown helper — is flagged at the
// under-lock call site, not just where the blocking statement sits.
// Cold-path exceptions (one-time setup I/O under the group lock) carry
// //lint:allow lockheld <reason>.
package lockheld

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ssa"
)

// Analyzer is the blocking-under-lock checker.
var Analyzer = &analysis.Analyzer{
	Name:      "lockheld",
	Doc:       "forbid blocking channel operations and I/O while holding a mutex in the live runtime, transports and daemon",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo covers the root package (the live runtime), the real
// transports and the daemon — every package where goroutines contend on
// mutexes around network fan-out. Fixtures load under repro/live/....
func AppliesTo(path string) bool {
	return path == "repro" ||
		analysis.PathHasPrefix(path, "repro/live") ||
		analysis.PathHasPrefix(path, "repro/internal/transport") ||
		analysis.PathHasPrefix(path, "repro/internal/daemon")
}

func run(pass *analysis.Pass) error {
	sp := ssa.Build(pass, nil)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, sp: sp, self: pass.TypesInfo.Defs[fd.Name]}
			w.block(fd.Body.List, map[string]bool{})
			// Function literals are walked where they appear only when a
			// lock is held at that point; a literal stored for later runs
			// with its own (empty) lock state, handled by the recursion in
			// check/block.
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
	sp   *ssa.Package
	self types.Object // the function being walked, to skip self-recursion
}

// block walks one statement list, threading the set of held locks
// (keyed by the printed lock expression, e.g. "g.mu"). Branch bodies get
// a copy: a lock taken inside an if holds only within it.
func (w *walker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch v := s.(type) {
		case *ast.ExprStmt:
			if key, kind := w.lockCall(v.X); kind != 0 {
				if kind > 0 {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
			w.check(v, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() pins the lock to function end: keep it
			// held. Any other deferred call runs after the region; skip.
			continue
		case *ast.GoStmt:
			// The spawned goroutine does not block the caller.
			continue
		case *ast.BlockStmt:
			w.block(v.List, copyHeld(held))
		case *ast.IfStmt:
			w.check(v.Cond, held)
			w.block(v.Body.List, copyHeld(held))
			if v.Else != nil {
				w.block([]ast.Stmt{v.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			w.check(v.Cond, held)
			w.block(v.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t := w.pass.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						w.reportf(v.Pos(), held, "range over channel blocks")
					}
				}
			}
			w.block(v.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			w.check(v.Tag, held)
			for _, c := range v.Body.List {
				w.block(c.(*ast.CaseClause).Body, copyHeld(held))
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				w.block(c.(*ast.CaseClause).Body, copyHeld(held))
			}
		case *ast.SelectStmt:
			w.selectStmt(v, held)
		default:
			w.check(s, held)
		}
	}
}

// selectStmt handles the one sanctioned non-blocking idiom: a select
// with a default case never blocks, so its communication clauses are
// exempt (their bodies are still walked under the lock).
func (w *walker) selectStmt(sel *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && len(held) > 0 {
		w.reportf(sel.Pos(), held, "select without default blocks")
	}
	for _, c := range sel.Body.List {
		w.block(c.(*ast.CommClause).Body, copyHeld(held))
	}
}

// check inspects a non-structural node for blocking constructs while any
// lock is held.
func (w *walker) check(n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			return false // runs later, not under this lock
		case *ast.SelectStmt:
			w.selectStmt(v, held)
			return false
		case *ast.SendStmt:
			w.reportf(v.Pos(), held, "channel send blocks")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				w.reportf(v.Pos(), held, "channel receive blocks")
			}
		case *ast.CallExpr:
			w.checkCall(v, held)
		}
		return true
	})
}

// checkCall flags calls that may block: standard-library sleeps, waits
// and I/O directly (ssa.BlockReason), and same-package helpers through
// their MayBlock summaries — the SSA extension that sees a blocking
// statement behind one or more call hops.
func (w *walker) checkCall(call *ast.CallExpr, held map[string]bool) {
	if r := ssa.BlockReason(w.pass, call); r != "" {
		w.reportf(call.Pos(), held, "%s", r)
		return
	}
	f := w.pass.CalleeFunc(call)
	if f == nil || (w.self != nil && types.Object(f) == w.self) {
		return
	}
	if sum := w.sp.Summary(f); sum != nil && sum.MayBlock {
		w.reportf(call.Pos(), held, "call to %s may block (%s)", f.Name(), sum.BlockReason)
	}
}

func (w *walker) reportf(pos token.Pos, held map[string]bool, format string, args ...any) {
	locks := make([]string, 0, len(held))
	for k := range held {
		locks = append(locks, k)
	}
	// Deterministic diagnostic text under multiple held locks.
	sortStrings(locks)
	w.pass.Reportf(pos, format+" while holding %s", append(args, strings.Join(locks, ", "))...)
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// lockCall classifies expr: +1 for mutex Lock/RLock, -1 for
// Unlock/RUnlock, 0 otherwise; key identifies the mutex expression.
func (w *walker) lockCall(expr ast.Expr) (key string, kind int) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return "", 0
	}
	n := analysis.NamedOf(w.pass.TypeOf(sel.X))
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return "", 0
	}
	if name := n.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", 0
	}
	return exprString(sel.X), kind
}

// exprString renders the lock expression for region matching and
// diagnostics ("g.mu", "p.g.hub.mu").
func exprString(e ast.Expr) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}

func lastSeg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

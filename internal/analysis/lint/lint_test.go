package lint_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lint"
)

// TestRegistry: the suite is complete, uniquely named, and documented —
// the names are the //lint:allow vocabulary.
func TestRegistry(t *testing.T) {
	as := lint.Analyzers()
	want := []string{"determinism", "noalloc", "nopanic", "wireown", "lockheld", "arenaesc", "golife"}
	if len(as) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(as), len(want))
	}
	seen := map[string]bool{}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestAllowSuppression runs the whole suite over the allow fixture: a
// correctly targeted //lint:allow silences exactly its analyzer's
// diagnostic on its line; everything unsuppressed still fires. The
// fixture loads under a deterministic-zone import path so both the
// determinism and noalloc analyzers are in scope.
func TestAllowSuppression(t *testing.T) {
	analysistest.RunAll(t, lint.Analyzers(), "testdata/allow", "repro/internal/sim/fixture")
}

// TestAllowValidation: malformed directives are themselves diagnostics
// — an unknown analyzer name, a missing reason, and a missing name must
// each be reported, and a reasonless allow must not suppress.
func TestAllowValidation(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/validate", "repro/internal/sim/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Check([]*analysis.Package{pkg}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	find := func(analyzer, substr string) *analysis.Diagnostic {
		t.Helper()
		for i := range diags {
			d := &diags[i]
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				return d
			}
		}
		t.Errorf("no %q diagnostic containing %q in:\n%s", analyzer, substr, render(diags))
		return nil
	}

	// The three malformed directives are each reported, at the directive.
	find("allow", `unknown analyzer "determinsm"`)
	find("allow", "carries no reason")
	find("allow", "names no analyzer")

	// None of the malformed directives suppresses: all three time.Now
	// calls still produce determinism diagnostics.
	nows := 0
	for _, d := range diags {
		if d.Analyzer == "determinism" && strings.Contains(d.Message, "time.Now") {
			nows++
		}
	}
	if nows != 3 {
		t.Errorf("got %d unsuppressed time.Now diagnostics, want 3 (malformed allows must not suppress):\n%s",
			nows, render(diags))
	}
}

// TestTreeClean is the regression gate the analyzers exist for: the
// whole repository, audited for stale waivers too, produces zero
// diagnostics. A finding here means either a real contract violation
// slipped in or an //lint:allow went stale — fix the code or the
// waiver, never this test.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks every package in the module")
	}
	diags, err := lint.CheckAudit("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		t.Errorf("lint suite is not clean over the tree:\n%s", render(diags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

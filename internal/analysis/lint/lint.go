// Package lint assembles the repo's analyzer suite: the registry every
// driver runs (cmd/evslint directly, go vet through the vettool shim)
// and the shared load-and-check entry point. The suite's seven analyzers
// each encode one invariant the repo's correctness story rests on:
//
//	determinism  no wall clock, global randomness, or order-leaking
//	             map iteration in the simulator/checker zone
//	noalloc      no allocating construct classes in //evs:noalloc
//	             hot-path functions
//	nopanic      no panic/log.Fatal/os.Exit in protocol packages
//	wireown      no wire messages aliasing caller- or state-owned
//	             slices; no handlers retaining message slices
//	lockheld     no blocking operations while holding a mutex in the
//	             live runtime, transports and daemon (SSA-transitive)
//	arenaesc     no //evs:arena-carved memory escaping its allocator's
//	             reset point (returns, globals, cross-owner stores,
//	             goroutine captures, channel sends)
//	golife       every goroutine in the live runtime, transports and
//	             daemon joined or cancellable by Close
//
// The last three ride the internal/analysis/ssa dataflow layer, which
// resolves aliases through locals and same-package calls.
//
// Suppression is per-site and audited: //lint:allow <analyzer> <reason>
// (see the analysis package). The registry is also the vocabulary the
// allow validator accepts — an allow naming anything else is itself a
// diagnostic.
package lint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/arenaesc"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/golife"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/wireown"
)

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		noalloc.Analyzer,
		nopanic.Analyzer,
		wireown.Analyzer,
		lockheld.Analyzer,
		arenaesc.Analyzer,
		golife.Analyzer,
	}
}

// Check loads the packages matching the patterns (from dir) and runs the
// whole suite, returning the surviving diagnostics.
func Check(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Check(pkgs, Analyzers())
}

// CheckAudit is Check plus the stale-waiver audit: it additionally
// reports every well-formed //lint:allow that suppressed nothing.
func CheckAudit(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.CheckAudit(pkgs, Analyzers())
}

// Package fixture exercises //lint:allow suppression end to end against
// the full analyzer suite: a correctly targeted allow silences exactly
// its analyzer's diagnostic on its line, while everything unsuppressed
// still fires — including a different analyzer on the same line as a
// suppressed one.
package fixture

import (
	"fmt"
	"time"
)

// unsuppressed: the baseline — diagnostics fire without an allow.
func unsuppressed() time.Time {
	return time.Now() // want `time.Now is nondeterministic`
}

// suppressedTrailing: an allow as a trailing comment covers its line.
func suppressedTrailing() time.Time {
	return time.Now() //lint:allow determinism fixture: measurement-only wall-clock read
}

// suppressedAbove: an allow on its own line covers the line below.
func suppressedAbove() time.Time {
	//lint:allow determinism fixture: measurement-only wall-clock read
	return time.Now()
}

// wrongAnalyzer: an allow for analyzer A does not silence analyzer B on
// the same line — suppression is per-analyzer, not per-line.
//
//evs:noalloc
func wrongAnalyzer(id int) string {
	//lint:allow determinism fixture: names the wrong analyzer
	return fmt.Sprintf("p%02d", id) // want `fmt.Sprintf allocates`
}

// onlyNamedAnalyzer: on a line tripping two analyzers, one allow per
// analyzer is required; the named one is silenced, the other fires.
//
//evs:noalloc
func onlyNamedAnalyzer() string {
	//lint:allow determinism fixture: measurement-only wall-clock read
	return fmt.Sprintf("%d", time.Now().Unix()) // want `fmt.Sprintf allocates`
}

// outOfRange: an allow covers its own line and the next, nothing more.
func outOfRange() time.Time {
	//lint:allow determinism fixture: covers only the blank line below

	return time.Now() // want `time.Now is nondeterministic`
}

// Package fixture holds malformed //lint:allow directives for the
// validator tests: an unknown analyzer name, a missing reason, and a
// missing analyzer. Each must produce an "allow" diagnostic — none may
// rot into a silent dead suppression. (Expectations live in lint_test.go
// rather than in want comments: the diagnostics are reported at the
// directive comments themselves, and a comment cannot carry a second
// comment.)
package fixture

import "time"

// deadSuppression names an analyzer that does not exist; the typo would
// otherwise suppress nothing forever while looking intentional.
func deadSuppression() time.Time {
	//lint:allow determinsm typo in the analyzer name
	return time.Now()
}

// reasonless names a real analyzer but gives no justification; the
// suppression does not take effect without one.
func reasonless() time.Time {
	//lint:allow determinism
	return time.Now()
}

// nameless is an allow with no analyzer at all.
func nameless() time.Time {
	//lint:allow
	return time.Now()
}

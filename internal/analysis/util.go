package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for builtins, function
// values, and type conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		if sel := p.TypesInfo.Selections[fn]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = p.TypesInfo.Uses[fn.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsPkgFunc reports whether the call invokes the named package-level
// function of the package with the given import path.
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	f := p.CalleeFunc(call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// FuncDoc returns the doc comment group of the innermost function
// declaration enclosing pos-bearing node n within file f, or nil.
// (Helper for directive-driven analyzers like noalloc.)
func FuncDoc(decl *ast.FuncDecl) *ast.CommentGroup { return decl.Doc }

// HasDirective reports whether a comment group contains the given
// machine directive on a line of its own (e.g. "//evs:noalloc").
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// RootIdent walks selector/index/slice/star/paren chains down to the
// base identifier of an expression: the x in x.f[i][a:b]. It returns
// nil when the base is not a plain identifier (e.g. a call result,
// whose value is freshly owned by the caller).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// IsSliceOrMap reports whether t's underlying type aliases backing
// storage that two values can share (slice or map).
func IsSliceOrMap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// NamedOf unwraps pointers and returns the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// PathHasPrefix reports whether an import path is the given path or a
// subpackage of it.
func PathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

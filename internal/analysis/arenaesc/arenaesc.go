// Package arenaesc polices the lifetime of arena-carved memory. The
// zero-alloc data path (DESIGN.md §13) works by carving values out of
// reusable storage — the stable store's payload/vclock/entry chunk
// arenas, the simulator's pooled event slots, the wire decoder's
// dense-stamp arena, Group.wrapApp's envelope arena, the totem ring's
// per-visit scratch buffers — and each of those arenas has a reset
// point: a trim, a free-list release, a reuse of the chunk, the next
// call into the ring. A carved value that outlives the reset point is a
// use-after-reuse bug that no test reliably catches, because the
// corruption lands wherever the arena's next tenant happens to be.
//
// The contract: a function is an arena allocator iff its doc comment
// carries the //evs:arena directive (or it appears in the cross-package
// registry below, mirroring tags the per-package loader cannot see).
// Values rooted in an allocator's results — resolved through locals,
// field loads and same-package calls by the internal/analysis/ssa
// layer — must not, outside the allocator's own package machinery:
//
//   - escape via return from an untagged function (tag the function to
//     extend the contract to its callers, or copy out)
//   - be stored into package-level state
//   - be stored into memory owned by anything other than the arena's
//     own owner (the receiver path at the carve site: carving from s
//     and storing into s.log stays inside s's lifetime domain; storing
//     into a different structure leaks)
//   - be captured by a spawned goroutine or sent on a channel (the
//     goroutine races the reset point)
//
// Passing a carved value as a plain call argument is allowed: a call
// returns before control can reach the arena's reset point, and the
// callee's own retention behaviour is policed where the callee lives.
// Functions tagged //evs:arena are exempt inside their own bodies —
// they are the arena machinery. Deliberate handoffs that are safe for a
// documented reason carry //lint:allow arenaesc <reason>.
package arenaesc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/ssa"
)

// Analyzer is the arena-escape checker.
var Analyzer = &analysis.Analyzer{
	Name: "arenaesc",
	Doc:  "forbid arena/pool-carved memory escaping its allocator's reset point",
	Run:  run,
}

// crossPkgArenas mirrors //evs:arena tags across package boundaries:
// analyzers see dependencies as compiler export data, never as syntax,
// so a tag on an exported allocator is invisible to its importers. Keys
// are types.Func.FullName strings.
var crossPkgArenas = map[string]bool{
	// totem's per-visit results alias ring scratch, valid until the
	// next call into the Ring (see the OnData/OnToken doc contracts).
	"(*repro/internal/totem.Ring).OnData":      true,
	"(*repro/internal/totem.Ring).OnDataBatch": true,
	"(*repro/internal/totem.Ring).OnToken":     true,
	// The wire decoder's results alias its intern tables and dense-stamp
	// arena, valid until the decoder is reused for another message.
	"(*repro/internal/wire.Decoder).Decode":     true,
	"(*repro/internal/wire.Decoder).DecodeData": true,
}

// IsArena reports whether callee is a registered cross-package arena
// allocator (the ssa.Build hook).
func IsArena(callee *types.Func) bool {
	return crossPkgArenas[callee.FullName()]
}

func run(pass *analysis.Pass) error {
	p := ssa.Build(pass, IsArena)
	for _, f := range p.Funcs() {
		if analysis.HasDirective(f.Decl.Doc, ssa.ArenaDirective) {
			continue // the arena machinery manages its own memory
		}
		check(p, f)
	}
	return nil
}

func check(p *ssa.Package, f *ssa.Func) {
	// Returns: outer function only (a literal returns to its own caller,
	// which the store/capture rules cover at the use site).
	outerReturns(f.Decl.Body, func(ret *ast.ReturnStmt) {
		for _, e := range ret.Results {
			if r, ok := arenaRoot(f, e); ok {
				p.Pass.Reportf(e.Pos(),
					"arena memory carved by %s escapes via return; copy out or tag this function //evs:arena",
					carverName(r))
			}
		}
	})

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			checkStores(p, f, v)
		case *ast.SendStmt:
			if r, ok := arenaRoot(f, v.Value); ok {
				p.Pass.Reportf(v.Pos(),
					"arena memory carved by %s is sent on a channel, escaping the arena's reset point",
					carverName(r))
			}
		case *ast.GoStmt:
			for _, e := range p.GoCaptured(f, v) {
				if r, ok := arenaRoot(f, e); ok {
					p.Pass.Reportf(v.Pos(),
						"arena memory carved by %s is captured by a goroutine racing the arena's reset point",
						carverName(r))
					break
				}
			}
		}
		return true
	})
}

// checkStores flags assignments that put arena-carved memory somewhere
// longer-lived than the arena's owner.
func checkStores(p *ssa.Package, f *ssa.Func, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		rhs := pairedRhs(as, i)
		if rhs == nil {
			continue
		}
		r, ok := arenaRoot(f, rhs)
		if !ok {
			continue
		}
		containers := storeContainers(p, f, lhs)
		for _, c := range containers {
			switch c.Kind {
			case ssa.Arena:
				// Wiring arena memory into arena memory (free lists,
				// entry links) stays inside the lifetime domain.
				continue
			case ssa.Global:
				p.Pass.Reportf(as.Pos(),
					"arena memory carved by %s is stored into package-level %s, outliving the arena's reset point",
					carverName(r), c.Obj.Name())
			case ssa.Param:
				if ownedBy(f, r, c, lhs) {
					continue
				}
				p.Pass.Reportf(as.Pos(),
					"arena memory carved by %s is stored into %s, which is not the arena's owner (%s) and outlives its reset point",
					carverName(r), ssa.ExprString(storeBase(lhs)), ownerName(r))
			}
		}
	}
}

// ownedBy reports whether a store into container c keeps carved memory
// inside the arena owner's lifetime domain: the store path extends the
// owner path ("s" owns "s.log[i]"), or the container is rooted at the
// very object the carve's receiver was rooted at (covers aliases like
// e := s.log[seq]; e.Payload = s.carve(n)).
func ownedBy(f *ssa.Func, r ssa.Root, c ssa.Root, lhs ast.Expr) bool {
	if r.Owner != "" {
		if base := ssa.PathOf(storeBase(lhs)); base != "" && ssa.SamePathOwner(r.Owner, base) {
			return true
		}
	}
	return r.OwnerObj != nil && c.Obj == r.OwnerObj
}

// storeBase returns the expression whose memory an assignment target
// writes into: x for x.f, x[i] and *x; lhs itself otherwise.
func storeBase(lhs ast.Expr) ast.Expr {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return v.X
	case *ast.IndexExpr:
		return v.X
	case *ast.StarExpr:
		return v.X
	}
	return lhs
}

// storeContainers resolves an assignment target to the roots of the
// written memory; package-level idents count, plain locals do not
// (rebinding a local is a def, not a store).
func storeContainers(p *ssa.Package, f *ssa.Func, lhs ast.Expr) []ssa.Root {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := p.Pass.TypesInfo.ObjectOf(v).(*types.Var); ok &&
			obj.Parent() == p.Pass.Pkg.Scope() {
			return []ssa.Root{{Kind: ssa.Global, Obj: obj}}
		}
		return nil
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		base := storeBase(lhs)
		// A store through a struct-typed VALUE (c.Payload = x after
		// c := d) writes the local's own copy, not the memory its
		// initializer aliased; the carved root flows into the local's
		// defs instead, so escapes of the whole struct stay visible.
		if _, isSel := lhs.(*ast.SelectorExpr); isSel && ssa.IsValueStructLocal(p.Pass, base) {
			return nil
		}
		return f.Roots(base)
	}
	return nil
}

func pairedRhs(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 {
		return as.Rhs[0]
	}
	return nil
}

// arenaRoot resolves e and returns its arena root, if any. Expressions
// whose values cannot alias backing storage (numerics, bools, strings —
// a sequence number loaded from an arena entry) never carry arena
// memory out.
func arenaRoot(f *ssa.Func, e ast.Expr) (ssa.Root, bool) {
	if t := f.Pkg().Pass.TypeOf(e); t != nil && !ssa.SharesMemory(t) {
		return ssa.Root{}, false
	}
	for _, r := range f.Roots(e) {
		if r.Kind == ssa.Arena {
			return r, true
		}
	}
	return ssa.Root{}, false
}

func carverName(r ssa.Root) string {
	if r.Fn == nil {
		return "an //evs:arena allocator"
	}
	if r.Owner != "" {
		return r.Owner + "." + r.Fn.Name()
	}
	return r.Fn.Name()
}

func ownerName(r ssa.Root) string {
	if r.Owner != "" {
		return r.Owner
	}
	return "the allocator's receiver"
}

// outerReturns visits every return statement of the function body that
// is not inside a function literal.
func outerReturns(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(v)
		}
		return true
	})
}

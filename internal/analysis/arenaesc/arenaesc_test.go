package arenaesc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenaesc"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, arenaesc.Analyzer, "testdata/fixture", "repro/internal/stable/fixture")
}

// Package fixture exercises the arenaesc analyzer: memory carved by an
// //evs:arena allocator must not outlive the arena's reset point via
// return, package-level state, foreign-owner stores, channel sends or
// goroutine capture — while owner-path stores, call-argument handoffs,
// scalar loads and tagged machinery stay silent.
package fixture

import "repro/internal/wire"

// store is a stand-in arena owner: carve cuts from arena, and the
// reset point is whatever reuses arena's backing chunk.
type store struct {
	arena []byte
	log   [][]byte
	spare []byte
}

// carve cuts n bytes from the arena; the result is valid until the
// chunk is reused.
//
//evs:arena
func (s *store) carve(n int) []byte {
	out := s.arena[:n:n]
	s.arena = s.arena[n:]
	return out
}

// carvePair is arena machinery layered on carve: tagged functions are
// exempt inside their own bodies, including on their returns.
//
//evs:arena
func (s *store) carvePair(n int) ([]byte, []byte) {
	return s.carve(n), s.carve(n)
}

// escapes leaks carved memory to an untagged function's caller.
func (s *store) escapes(n int) []byte {
	return s.carve(n) // want `arena memory carved by s.carve escapes via return; copy out or tag this function //evs:arena`
}

// escapesViaLocal leaks the same way through a local binding.
func (s *store) escapesViaLocal(n int) []byte {
	chunk := s.carve(n)
	return chunk // want `arena memory carved by s.carve escapes via return`
}

var lastChunk []byte

// parks stores carved memory into package-level state, which outlives
// every reset point by definition.
func (s *store) parks(n int) {
	lastChunk = s.carve(n) // want `arena memory carved by s.carve is stored into package-level lastChunk, outliving the arena's reset point`
}

// sink is some other long-lived structure, not the arena's owner.
type sink struct {
	buf []byte
}

// leaks stores carved memory into memory the arena owner does not
// control: the sink keeps the slice after s.arena's chunk is reused.
func (s *store) leaks(dst *sink, n int) {
	dst.buf = s.carve(n) // want `arena memory carved by s.carve is stored into dst, which is not the arena's owner \(s\) and outlives its reset point`
}

// keeps stores carved memory back into the owner's own state: s.log
// lives exactly as long as s.arena, so the lifetime domain is intact.
func (s *store) keeps(n int) {
	s.log[0] = s.carve(n)
}

// keepsField stores carved memory into another field of the owner.
func (s *store) keepsField(n int) {
	s.spare = s.carve(n)
}

// ships sends carved memory on a channel; the receiver races the
// arena's reset point.
func (s *store) ships(ch chan []byte, n int) {
	ch <- s.carve(n) // want `arena memory carved by s.carve is sent on a channel, escaping the arena's reset point`
}

// races captures carved memory in a goroutine.
func (s *store) races(n int) {
	chunk := s.carve(n)
	go func() { // want `arena memory carved by s.carve is captured by a goroutine racing the arena's reset point`
		_ = chunk[0]
	}()
}

// consume models a callee that only reads its argument.
func consume(b []byte) int { return len(b) }

// hands passes carved memory as a plain call argument: the call
// returns before control can reach the arena's reset point.
func (s *store) hands(n int) int {
	return consume(s.carve(n))
}

// scalarOut loads a scalar out of carved memory; numerics cannot alias
// the backing array, so nothing escapes.
func (s *store) scalarOut(n int) byte {
	return s.carve(n)[0]
}

// msg is a plain struct value used as local scratch.
type msg struct {
	payload []byte
	seq     uint64
}

// localScratch writes carved memory into a field of a struct-typed
// local VALUE: the store lands in the local's own copy, not in any
// longer-lived container.
func (s *store) localScratch(n int) int {
	var m msg
	m.payload = s.carve(n)
	m.seq = 7
	return len(m.payload) + int(m.seq)
}

var audited []byte

// waived documents a deliberate park: the allow suppresses it.
func (s *store) waived(n int) {
	//lint:allow arenaesc fixture arena is built once and never reset, so the park cannot dangle
	audited = s.carve(n)
}

var lastMsg wire.Message

// parksDecoded exercises the cross-package registry: wire.Decoder.Decode
// is an arena allocator by registration, not by visible tag.
func parksDecoded(dec *wire.Decoder, b []byte) {
	m, err := dec.Decode(b)
	if err != nil {
		return
	}
	lastMsg = m // want `arena memory carved by dec.Decode is stored into package-level lastMsg, outliving the arena's reset point`
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression annotation recognised by the driver:
//
//	//lint:allow <analyzer> <reason>
//
// It silences diagnostics of the named analyzer reported on the same
// line as the comment, or on the line directly below a comment that
// stands on its own line. The reason is part of the contract: an allow
// without one is reported, as is an allow naming an analyzer that does
// not exist.
const allowPrefix = "lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Pos
	position token.Position
	analyzer string
	reason   string
	// used records that the directive suppressed at least one diagnostic
	// in this run — the allow-audit signal. Directives are shared between
	// their two covered lines, so the flag sticks whichever line fired.
	used bool
}

// allowSet is every directive of one package.
type allowSet struct {
	// byLine maps filename:line to the directives in force on that line.
	byLine map[string][]*allowDirective
	all    []*allowDirective
}

func lineKey(filename string, line int) string {
	return filename + ":" + itoa(line)
}

// itoa avoids pulling strconv into the hot diagnostic path for no
// reason other than symmetry; lines are small positive numbers.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// collectAllows parses every //lint:allow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{byLine: make(map[string][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				d := &allowDirective{
					pos:      c.Pos(),
					position: fset.Position(c.Pos()),
				}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				s.all = append(s.all, d)
				// The directive covers its own line and the next one,
				// so it works both as a trailing comment and as a
				// standalone comment above the offending statement.
				k := lineKey(d.position.Filename, d.position.Line)
				s.byLine[k] = append(s.byLine[k], d)
				k = lineKey(d.position.Filename, d.position.Line+1)
				s.byLine[k] = append(s.byLine[k], d)
			}
		}
	}
	return s
}

// suppresses reports whether a diagnostic of the named analyzer at the
// given position is covered by a directive.
func (s *allowSet) suppresses(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		if d.analyzer == analyzer && d.reason != "" {
			d.used = true
			hit = true
			// Keep marking: stacked directives for the same analyzer on
			// one line all covered the diagnostic.
		}
	}
	return hit
}

// stale reports well-formed directives that suppressed nothing in this
// run: waivers whose violation has since been fixed (or whose analyzer
// no longer covers the package) rot into misleading documentation, so
// the audit digs them out. Malformed directives (no reason, unknown
// analyzer) are validate()'s business, not stale's.
func (s *allowSet) stale(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		if d.analyzer == "" || d.reason == "" || d.used || !known[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Position: d.position,
			Analyzer: "allow",
			Message:  "lint:allow " + d.analyzer + " suppresses no diagnostic; remove the stale waiver",
		})
	}
	return out
}

// validate reports malformed directives: unknown analyzer names and
// missing reasons. Both would otherwise be silent dead suppressions.
func (s *allowSet) validate(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Position: d.position,
				Analyzer: "allow",
				Message:  "lint:allow directive names no analyzer (want //lint:allow <analyzer> <reason>)",
			})
		case !known[d.analyzer]:
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Position: d.position,
				Analyzer: "allow",
				Message:  "lint:allow names unknown analyzer " + quote(d.analyzer) + " (dead suppression)",
			})
		case d.reason == "":
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Position: d.position,
				Analyzer: "allow",
				Message:  "lint:allow " + d.analyzer + " carries no reason; write why the violation is acceptable",
			})
		}
	}
	return out
}

func quote(s string) string { return "\"" + s + "\"" }

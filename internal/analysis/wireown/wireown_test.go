package wireown_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireown"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, wireown.Analyzer, "testdata/fixture", "repro/internal/totem/fixture")
}

// Package wireown enforces copy-ownership of wire message storage: a
// wire.Message must not share backing arrays with memory its builder or
// its receiver goes on mutating. The medium hands one message value to
// every receiver of a broadcast without deep-copying (that is what makes
// the batching path cheap), so the whole stack leans on a convention —
// messages are immutable after handoff — that nothing used to check.
// The deep-copy rules in the batching path were hand-audited; this
// analyzer mechanises the audit at the sites where aliases are created.
//
// Two alias-creating shapes are flagged:
//
//   - construction: a composite literal (or field assignment) of a wire
//     message type whose slice- or map-typed field is filled from an
//     expression rooted at a function parameter or at receiver state.
//     The caller (or the state machine) still holds that memory and may
//     mutate it after the message is handed to the medium. Fresh values
//     — call results, literals, make/append products — are silent.
//
//   - retention: a handler storing a slice/map reached through a wire
//     message parameter into receiver state or a package variable. The
//     message's arrays are shared with every other receiver of the same
//     broadcast; retaining one without copying couples the processes.
//
// A site where the aliasing is deliberate and audited (the batch is
// broadcast and never touched again, the log entry is immutable by
// construction) carries //lint:allow wireown <reason> — the reason is
// the audit.
package wireown

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// wirePaths are the packages whose message types carry the copy-ownership
// convention, each with a filter selecting the types that actually cross
// a process boundary. Everything in internal/wire is a message; in
// internal/groups only the envelopes and the values handed to every
// member (deliveries, views, the structures riding inside envelopes)
// carry the convention — the Mux and SymbolTable are per-process state
// machines whose internal aliasing is their own business.
var wirePaths = map[string]func(name string) bool{
	"repro/internal/wire": func(string) bool { return true },
	"repro/internal/groups": func(name string) bool {
		switch name {
		case "Envelope", "LegacyEnvelope", "Deliver", "ViewChange", "ClientSub", "ClientOp":
			return true
		}
		return false
	},
}

// Analyzer is the copy-ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "wireown",
	Doc:  "forbid wire messages aliasing caller- or state-owned slices/maps, and handlers retaining message slices",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// owned classifies the identifiers whose storage outlives the call in a
// way the function does not control: parameters (caller-owned) and the
// receiver (state-owned).
type owned struct {
	params map[types.Object]bool // includes the receiver
	recv   types.Object          // nil for plain functions
	// wireParams maps parameters whose type is a wire message (value or
	// pointer) to that message type's name — the handler-retention rule's
	// sources.
	wireParams map[types.Object]string
}

func collectOwned(pass *analysis.Pass, fd *ast.FuncDecl) *owned {
	o := &owned{params: map[types.Object]bool{}, wireParams: map[types.Object]string{}}
	addField := func(fl *ast.Field, recv bool) {
		for _, name := range fl.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			o.params[obj] = true
			if recv {
				o.recv = obj
			}
			if n := wireNamed(obj.Type()); n != "" {
				o.wireParams[obj] = n
			}
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			addField(fl, true)
		}
	}
	for _, fl := range fd.Type.Params.List {
		addField(fl, false)
	}
	return o
}

// wireNamed returns the package-qualified type name ("wire.Token",
// "groups.Envelope") if t (or its pointee) is a named type declared in
// one of the policed message packages, else "".
func wireNamed(t types.Type) string {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	filter := wirePaths[n.Obj().Pkg().Path()]
	if filter == nil || !filter(n.Obj().Name()) {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	own := collectOwned(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			checkConstruction(pass, own, v)
		case *ast.AssignStmt:
			checkAssign(pass, own, v)
		}
		return true
	})
}

// checkConstruction flags slice/map fields of a wire composite literal
// filled from parameter- or receiver-rooted memory.
func checkConstruction(pass *analysis.Pass, own *owned, cl *ast.CompositeLit) {
	name := wireNamed(pass.TypeOf(cl))
	if name == "" {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := pass.ObjectOf(key).(*types.Var)
		if !ok || !analysis.IsSliceOrMap(field.Type()) {
			continue
		}
		reportAliased(pass, own, kv.Value, name, field.Name())
	}
}

// checkAssign flags two shapes: writing owned memory into a slice/map
// field of an existing wire message value (construction by mutation),
// and storing a wire parameter's slice/map field into receiver state or
// a package variable (retention).
func checkAssign(pass *analysis.Pass, own *owned, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y := f() — call results are fresh
		}
		rhs := as.Rhs[i]

		// Construction by mutation: msg.Field = <owned memory>.
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if name := wireNamed(pass.TypeOf(sel.X)); name != "" {
				if t := pass.TypeOf(lhs); t != nil && analysis.IsSliceOrMap(t) {
					reportAliased(pass, own, rhs, name, sel.Sel.Name)
				}
			}
		}

		// Retention: state = msg.Field where msg is a wire parameter.
		t := pass.TypeOf(rhs)
		if t == nil || !analysis.IsSliceOrMap(t) {
			continue
		}
		src := analysis.RootIdent(rhs)
		if src == nil {
			continue
		}
		msgName, isWireParam := own.wireParams[pass.ObjectOf(src)]
		if !isWireParam || ast.Unparen(rhs) == ast.Unparen(ast.Expr(src)) {
			// The whole message (not a field of it) being copied around
			// is the normal value-semantics flow.
			continue
		}
		if retains(pass, own, lhs) {
			pass.Reportf(as.Pos(),
				"handler retains slice/map from %s parameter %s; the backing array is shared with every receiver of the broadcast — copy it",
				msgName, src.Name)
		}
	}
}

// reportAliased reports value if it is rooted at a parameter or at
// receiver state.
func reportAliased(pass *analysis.Pass, own *owned, value ast.Expr, msg, field string) {
	root := analysis.RootIdent(value)
	if root == nil {
		return // call result, literal, make/append: freshly owned
	}
	obj := pass.ObjectOf(root)
	if obj == nil || !own.params[obj] {
		return
	}
	who := "caller-owned (parameter " + root.Name + ")"
	if obj == own.recv {
		who = "state-owned (receiver " + root.Name + ")"
	}
	pass.Reportf(value.Pos(),
		"%s field %s aliases %s memory; the message escapes to the medium uncopied — copy the slice/map or annotate the audited handoff",
		msg, field, who)
}

// retains reports whether the assignment target outlives the call:
// anything rooted at the receiver or at a package-level variable.
func retains(pass *analysis.Pass, own *owned, lhs ast.Expr) bool {
	root := analysis.RootIdent(lhs)
	if root == nil {
		return false
	}
	obj := pass.ObjectOf(root)
	if obj == nil {
		return false
	}
	if obj == own.recv {
		return true
	}
	// Package-level variable: its scope is the package scope.
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}

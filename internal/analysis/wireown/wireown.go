// Package wireown enforces copy-ownership of wire message storage: a
// wire.Message must not share backing arrays with memory its builder or
// its receiver goes on mutating. The medium hands one message value to
// every receiver of a broadcast without deep-copying (that is what makes
// the batching path cheap), so the whole stack leans on a convention —
// messages are immutable after handoff — that nothing used to check.
// The deep-copy rules in the batching path were hand-audited; this
// analyzer mechanises the audit at the sites where aliases are created.
//
// Two alias-creating shapes are flagged:
//
//   - construction: a composite literal (or field assignment) of a wire
//     message type whose slice- or map-typed field is filled from an
//     expression rooted at a function parameter or at receiver state.
//     The caller (or the state machine) still holds that memory and may
//     mutate it after the message is handed to the medium. Fresh values
//     — call results, literals, make/append products — are silent.
//
//   - retention: a handler storing a slice/map reached through a wire
//     message parameter into receiver state or a package variable. The
//     message's arrays are shared with every other receiver of the same
//     broadcast; retaining one without copying couples the processes.
//
// Aliases are resolved by the internal/analysis/ssa dataflow layer, so
// both shapes are caught through local variables and through
// same-package helpers: a message field filled from `clip(p)` where clip
// returns its parameter is flagged the same as one filled from p
// directly, and a handler that launders a message slice through a local
// before retaining it no longer slips past.
//
// A site where the aliasing is deliberate and audited (the batch is
// broadcast and never touched again, the log entry is immutable by
// construction) carries //lint:allow wireown <reason> — the reason is
// the audit.
package wireown

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/ssa"
)

// wirePaths are the packages whose message types carry the copy-ownership
// convention, each with a filter selecting the types that actually cross
// a process boundary. Everything in internal/wire is a message; in
// internal/groups only the envelopes and the values handed to every
// member (deliveries, views, the structures riding inside envelopes)
// carry the convention — the Mux and SymbolTable are per-process state
// machines whose internal aliasing is their own business.
var wirePaths = map[string]func(name string) bool{
	"repro/internal/wire": func(string) bool { return true },
	"repro/internal/groups": func(name string) bool {
		switch name {
		case "Envelope", "LegacyEnvelope", "Deliver", "ViewChange", "ClientSub", "ClientOp":
			return true
		}
		return false
	},
}

// Analyzer is the copy-ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "wireown",
	Doc:  "forbid wire messages aliasing caller- or state-owned slices/maps, and handlers retaining message slices",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	p := ssa.Build(pass, nil)
	for _, f := range p.Funcs() {
		checkFunc(p, f)
	}
	return nil
}

// owned classifies the parameters whose type is a wire message (value or
// pointer), mapped to that message type's name — the handler-retention
// rule's sources.
type owned struct {
	recv       types.Object
	wireParams map[types.Object]string
}

func collectOwned(f *ssa.Func) *owned {
	o := &owned{recv: f.Recv(), wireParams: map[types.Object]string{}}
	for _, obj := range f.Params() {
		if n := wireNamed(obj.Type()); n != "" {
			o.wireParams[obj] = n
		}
	}
	return o
}

// wireNamed returns the package-qualified type name ("wire.Token",
// "groups.Envelope") if t (or its pointee) is a named type declared in
// one of the policed message packages, else "".
func wireNamed(t types.Type) string {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	filter := wirePaths[n.Obj().Pkg().Path()]
	if filter == nil || !filter(n.Obj().Name()) {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

func checkFunc(p *ssa.Package, f *ssa.Func) {
	own := collectOwned(f)
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			checkConstruction(p, f, v)
		case *ast.AssignStmt:
			checkAssign(p, f, own, v)
		}
		return true
	})
}

// checkConstruction flags slice/map fields of a wire composite literal
// filled from parameter- or receiver-rooted memory.
func checkConstruction(p *ssa.Package, f *ssa.Func, cl *ast.CompositeLit) {
	name := wireNamed(p.Pass.TypeOf(cl))
	if name == "" {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field, ok := p.Pass.ObjectOf(key).(*types.Var)
		if !ok || !analysis.IsSliceOrMap(field.Type()) {
			continue
		}
		reportAliased(p, f, kv.Value, name, field.Name())
	}
}

// checkAssign flags two shapes: writing owned memory into a slice/map
// field of an existing wire message value (construction by mutation),
// and storing a wire parameter's slice/map field into receiver state or
// a package variable (retention).
func checkAssign(p *ssa.Package, f *ssa.Func, own *owned, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y := f() — call results are fresh
		}
		rhs := as.Rhs[i]

		// Construction by mutation: msg.Field = <owned memory>.
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if name := wireNamed(p.Pass.TypeOf(sel.X)); name != "" {
				if t := p.Pass.TypeOf(lhs); t != nil && analysis.IsSliceOrMap(t) {
					reportAliased(p, f, rhs, name, sel.Sel.Name)
				}
			}
		}

		// Retention: state = <memory rooted at a wire parameter's field>.
		t := p.Pass.TypeOf(rhs)
		if t == nil || !analysis.IsSliceOrMap(t) {
			continue
		}
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
			if _, whole := own.wireParams[p.Pass.ObjectOf(id)]; whole {
				// The whole message (not a field of it) being copied around
				// is the normal value-semantics flow.
				continue
			}
		}
		if !retains(p, f, own, lhs) {
			continue
		}
		for _, r := range f.Roots(rhs) {
			if r.Kind != ssa.Param {
				continue
			}
			msgName, isWireParam := own.wireParams[r.Obj]
			if !isWireParam {
				continue
			}
			p.Pass.Reportf(as.Pos(),
				"handler retains slice/map from %s parameter %s; the backing array is shared with every receiver of the broadcast — copy it",
				msgName, r.Obj.Name())
			break
		}
	}
}

// reportAliased reports value if its memory may be rooted at a parameter
// or at receiver state — resolved through locals and same-package calls
// by the dataflow layer. Fresh values (literals, make/append products,
// external call results) are silent.
func reportAliased(p *ssa.Package, f *ssa.Func, value ast.Expr, msg, field string) {
	for _, r := range f.Roots(value) {
		if r.Kind != ssa.Param {
			continue
		}
		who := "caller-owned (parameter " + r.Obj.Name() + ")"
		if r.Obj == f.Recv() {
			who = "state-owned (receiver " + r.Obj.Name() + ")"
		}
		p.Pass.Reportf(value.Pos(),
			"%s field %s aliases %s memory; the message escapes to the medium uncopied — copy the slice/map or annotate the audited handoff",
			msg, field, who)
		return
	}
}

// retains reports whether the assignment target outlives the call:
// a package-level variable, or memory rooted at the receiver or at
// package state (resolved through aliases — a map loaded from receiver
// state into a local still retains).
func retains(p *ssa.Package, f *ssa.Func, own *owned, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj, ok := p.Pass.ObjectOf(v).(*types.Var)
		return ok && obj.Parent() == p.Pass.Pkg.Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		var base ast.Expr
		switch b := v.(type) {
		case *ast.SelectorExpr:
			base = b.X
		case *ast.IndexExpr:
			base = b.X
		case *ast.StarExpr:
			base = b.X
		}
		for _, r := range f.Roots(base) {
			switch r.Kind {
			case ssa.Global:
				return true
			case ssa.Param:
				if r.Obj == own.recv {
					return true
				}
			}
		}
	}
	return false
}

// Package fixture exercises the wireown analyzer: wire messages whose
// slice fields alias caller- or state-owned memory are flagged at the
// construction site, handlers retaining message slices are flagged at
// the assignment, and fresh (copied) values stay silent.
package fixture

import (
	"repro/internal/groups"
	"repro/internal/model"
	"repro/internal/wire"
)

// ring is a stand-in protocol state machine.
type ring struct {
	cfg     model.Configuration
	rtr     []wire.SeqRange
	held    []uint64
	byProc  map[string]uint64
	lastRtr []wire.SeqRange
}

// aliasParam hands a caller's slice straight into a token.
func aliasParam(r *ring, missing []wire.SeqRange) wire.Token {
	return wire.Token{
		Ring: r.cfg.ID,
		Rtr:  missing, // want `wire.Token field Rtr aliases caller-owned \(parameter missing\) memory`
	}
}

// aliasReceiverState puts the ring's own mutable request list on the wire.
func (r *ring) aliasReceiverState() wire.Token {
	return wire.Token{
		Ring: r.cfg.ID,
		Rtr:  r.rtr, // want `wire.Token field Rtr aliases state-owned \(receiver r\) memory`
	}
}

// aliasSubslice shows that reslicing does not change the owner.
func (r *ring) batch(ds []wire.Data, max int) wire.DataBatch {
	return wire.DataBatch{
		Ring: r.cfg.ID,
		Msgs: ds[:max:max], // want `wire.DataBatch field Msgs aliases caller-owned \(parameter ds\) memory`
	}
}

// aliasByMutation constructs the message first and fills the field after.
func (r *ring) aliasByMutation(missing []wire.SeqRange) wire.Token {
	t := wire.Token{Ring: r.cfg.ID}
	t.Rtr = missing // want `wire.Token field Rtr aliases caller-owned \(parameter missing\) memory`
	return t
}

// copies is the sanctioned shape: the message owns fresh storage.
func (r *ring) copies(missing []wire.SeqRange) wire.Token {
	rtr := make([]wire.SeqRange, len(missing))
	copy(rtr, missing)
	return wire.Token{Ring: r.cfg.ID, Rtr: rtr}
}

// callResult shows that freshly returned values are silent: the callee
// built them for this message.
func (r *ring) callResult() wire.Token {
	return wire.Token{Ring: r.cfg.ID, Rtr: r.snapshotRtr()}
}

func (r *ring) snapshotRtr() []wire.SeqRange {
	out := make([]wire.SeqRange, len(r.rtr))
	copy(out, r.rtr)
	return out
}

// scalarFields shows that non-slice fields are never flagged: value
// copies cannot alias.
func scalarFields(r *ring, seq uint64) wire.Token {
	return wire.Token{Ring: r.cfg.ID, Seq: seq, AruID: "p01"}
}

// retainToken stores a received token's request list into ring state.
func (r *ring) retainToken(t wire.Token) {
	r.lastRtr = t.Rtr // want `handler retains slice/map from wire.Token parameter t`
}

// retainViaPackageVar parks message memory in a package variable.
var lastSeenRtr []wire.SeqRange

func observeToken(t wire.Token) {
	lastSeenRtr = t.Rtr // want `handler retains slice/map from wire.Token parameter t`
}

// retainCopy is the sanctioned shape for handlers.
func (r *ring) retainCopy(t wire.Token) {
	r.lastRtr = append(r.lastRtr[:0], t.Rtr...)
}

// localUse shows that message slices may be read freely: only retention
// into state is flagged.
func (r *ring) localUse(t wire.Token) uint64 {
	var sum uint64
	reqs := t.Rtr // local alias dies with the call
	for _, s := range reqs {
		sum += s.Count()
	}
	return sum
}

// valueFlow shows whole-message copies are the normal flow.
func (r *ring) valueFlow(t wire.Token) wire.Token {
	u := t
	u.Seq++
	return u
}

// allowedHandoff documents an audited alias.
func (r *ring) allowedHandoff(ds []wire.Data) wire.DataBatch {
	//lint:allow wireown fixture: batch is broadcast and never touched again
	return wire.DataBatch{Ring: r.cfg.ID, Msgs: ds}
}

// The binary codec sharpens the ownership convention on wire.Data: an
// encoded frame views the message's Payload at encode time, and a
// decoded message's Payload views the received datagram's bytes. Both
// directions are safe only because messages own fresh storage and
// handlers never retain message memory — the rules below.

// aliasPayload puts caller-owned bytes on the wire.
func aliasPayload(r *ring, seq uint64, body []byte) wire.Data {
	return wire.Data{
		Ring:    r.cfg.ID,
		Seq:     seq,
		Payload: body, // want `wire.Data field Payload aliases caller-owned \(parameter body\) memory`
	}
}

// copyPayload is the sanctioned shape: the message owns its bytes, so
// the encoder may view them and the sender may reuse body immediately.
func copyPayload(r *ring, seq uint64, body []byte) wire.Data {
	p := make([]byte, len(body))
	copy(p, body)
	return wire.Data{Ring: r.cfg.ID, Seq: seq, Payload: p}
}

// retainDecoded stores a received (decoded) message's payload view into
// state; the view aliases the datagram buffer, which the transport will
// reuse, so retention without a copy is flagged.
func (r *ring) retainDecoded(d wire.Data) {
	r.byProc[string(d.ID.Sender)] = d.Seq
	lastPayload = d.Payload // want `handler retains slice/map from wire.Data parameter d`
}

var lastPayload []byte

// retainDecodedCopy is the sanctioned handler shape for the decode side.
func (r *ring) retainDecodedCopy(d wire.Data) {
	lastPayload = append([]byte(nil), d.Payload...)
}

// Group-layer envelopes carry the same convention as wire messages:
// Envelope.Data views payload memory, and group payloads are handed to
// every member of the configuration, so aliasing caller memory into one
// is flagged unless the handoff is audited.
type router struct {
	lastData []byte
}

func buildEnvelope(gid uint32, payload []byte) groups.Envelope {
	return groups.Envelope{
		Kind:    groups.KindData,
		GroupID: groups.GroupID(gid),
		Data:    payload, // want `groups.Envelope field Data aliases caller-owned \(parameter payload\) memory`
	}
}

// retainEnvelope stores a received envelope's data view into state.
func (r *router) retainEnvelope(e groups.Envelope) {
	r.lastData = e.Data // want `handler retains slice/map from groups.Envelope parameter e`
}

// decodeView is the audited decode shape: the envelope views the
// delivered payload's tail, which is immutable after handoff.
func decodeView(payload []byte) groups.Envelope {
	//lint:allow wireown fixture: decode output views the immutable delivered payload
	return groups.Envelope{Kind: groups.KindData, Data: payload}
}

// muxState shows that the group layer's state machines are not message
// types: their internal aliasing is their own business.
type muxState struct {
	names []string
}

func (s *muxState) grow(name string) {
	s.names = append(s.names, name)
}

// passThrough returns its parameter unchanged: the SSA summary marks
// the result as aliasing it, so construction sites see through the
// call.
func passThrough(s []wire.SeqRange) []wire.SeqRange { return s }

// aliasThroughCall hands caller-owned memory into a token through one
// level of call indirection.
func aliasThroughCall(r *ring, missing []wire.SeqRange) wire.Token {
	return wire.Token{
		Ring: r.cfg.ID,
		Rtr:  passThrough(missing), // want `wire.Token field Rtr aliases caller-owned \(parameter missing\) memory`
	}
}

// liveRtr forwards the ring's own mutable request list uncopied.
func (r *ring) liveRtr() []wire.SeqRange { return r.rtr }

// aliasStateThroughCall puts state-owned memory on the wire through a
// helper that merely forwards it.
func (r *ring) aliasStateThroughCall() wire.Token {
	return wire.Token{
		Ring: r.cfg.ID,
		Rtr:  r.liveRtr(), // want `wire.Token field Rtr aliases state-owned \(receiver r\) memory`
	}
}

// Package analysis is the core of the repo's static-analysis suite
// (evslint): a deliberately small, offline reimplementation of the
// golang.org/x/tools/go/analysis surface the analyzers need.
//
// The repo's correctness story rests on invariants no stock tool can see —
// deterministic simulator executions, zero-allocation observability hot
// paths, no-panic error propagation in protocol layers, copy-ownership of
// wire message slices, and no blocking operations under the live hub's
// locks. Each invariant is encoded as an Analyzer; the cmd/evslint
// multichecker runs them over every package and fails CI on a violation.
//
// The x/tools module is intentionally not a dependency: the build must
// work from the Go toolchain alone. Packages are loaded with `go list
// -export` (see load.go), so dependencies are resolved from compiler
// export data exactly the way `go vet` resolves them, with no network
// access and no third-party code.
//
// Suppression: a diagnostic is silenced by an explicit annotation
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory, and an allow comment naming an analyzer that does
// not exist is itself reported (no silent dead suppressions). See
// allow.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// AppliesTo reports whether the analyzer runs over the package with
	// the given import path. A nil AppliesTo runs everywhere. The
	// analysistest harness bypasses this via an explicit fixture import
	// path, so zone-scoped analyzers are tested by loading fixtures under
	// an in-zone path.
	AppliesTo func(importPath string) bool

	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package: syntax, type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits a diagnostic, stamping it with the pass's analyzer.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression (nil if untyped).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf resolves an identifier to its object (nil if unresolved).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Position is the resolved source position, filled by Check.
	Position token.Position
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Check runs every applicable analyzer over every package, applies
// //lint:allow suppression, validates the allow annotations themselves,
// and returns the surviving diagnostics sorted by position. Analyzer
// runtime errors are returned after the diagnostics of the analyzers
// that did succeed.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return check(pkgs, analyzers, false)
}

// CheckAudit is Check plus the allow audit: every well-formed
// //lint:allow directive that suppressed no diagnostic in this run is
// itself reported, so stale waivers rot out of the tree instead of
// lingering as misleading documentation. Run it with the full analyzer
// registry — a directive is only fairly judged stale when its analyzer
// actually ran.
func CheckAudit(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return check(pkgs, analyzers, true)
}

func check(pkgs []*Package, analyzers []*Analyzer, audit bool) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var firstErr error
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
		for _, d := range raw {
			d.Position = pkg.Fset.Position(d.Pos)
			if allows.suppresses(d.Analyzer, d.Position) {
				continue
			}
			diags = append(diags, d)
		}
		// The allow annotations themselves are checked unconditionally:
		// a directive naming an unknown analyzer, or carrying no reason,
		// would otherwise rot into a silent dead suppression.
		diags = append(diags, allows.validate(known)...)
		if audit {
			diags = append(diags, allows.stale(known)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, firstErr
}

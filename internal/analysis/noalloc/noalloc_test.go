package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "testdata/fixture", "repro/internal/analysis/fixture")
}

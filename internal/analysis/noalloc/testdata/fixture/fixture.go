// Package fixture exercises the noalloc analyzer. Only functions
// carrying the //evs:noalloc directive are checked; everything else may
// allocate freely.
package fixture

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

type sink interface{ observe(v uint64) }

type counter struct{ n atomic.Uint64 }

func (c *counter) observe(v uint64) { c.n.Add(v) }

// inc is a conforming hot-path function: branches, atomics, arithmetic,
// fixed-size writes.
//
//evs:noalloc
func inc(c *counter, v uint64) {
	if c == nil {
		return
	}
	c.n.Add(v)
}

// sprintfInHotPath trips the fmt rule.
//
//evs:noalloc
func sprintfInHotPath(id int) string {
	return fmt.Sprintf("p%02d", id) // want `fmt.Sprintf allocates`
}

// concatInHotPath trips the string-concatenation rule; the constant
// fold below it must stay silent.
//
//evs:noalloc
func concatInHotPath(name string) string {
	const prefix = "evs_" + "totem_" // constant-folded: no diagnostic
	return prefix + name             // want `string concatenation allocates`
}

// boxingInHotPath trips the interface-conversion rule in all three
// positions: call argument, assignment, return.
//
//evs:noalloc
func boxingInHotPath(c *counter, s sink, v uint64) interface{} {
	use(v)     // want `interface conversion boxes uint64`
	var x sink // declared interface
	x = c      // pointer-shaped: fills the interface word, no allocation
	x.observe(v)
	s.observe(v) // interface method call on existing interface: no box
	return v     // want `interface conversion boxes uint64`
}

func use(v interface{}) { _ = v }

type big struct{ a, b, c uint64 }

// pointerShapedBoxes stays silent: pointers, maps, channels and named
// funcs occupy exactly one pointer word, so converting them to an
// interface copies the pointer rather than allocating. A multi-word
// struct still trips the rule.
//
//evs:noalloc
func pointerShapedBoxes(c *counter, m map[string]int, ch chan int, f func(), b big) {
	use(c)
	use(m)
	use(ch)
	use(f)
	use(b) // want `interface conversion boxes fixture.big`
}

// closureInHotPath trips the closure rule.
//
//evs:noalloc
func closureInHotPath(c *counter) func() {
	return func() { c.n.Add(1) } // want `function literal allocates a closure`
}

// notAnnotated allocates at will: the directive opts functions in.
func notAnnotated(id int) string {
	f := func() string { return fmt.Sprintf("p%02d", id) }
	return "x" + f()
}

// allowedBox documents a deliberate exception.
//
//evs:noalloc
func allowedBox(v uint64) {
	use(v) //lint:allow noalloc fixture demonstrates a documented exception
}

// Group-layer codec shapes: the binary envelope hot path appends a kind
// byte and varints into a caller-provided buffer — branches, appends,
// and fixed-size arithmetic only — and stays silent.
//
//evs:noalloc
func appendHeader(dst []byte, kind byte, gid uint64) []byte {
	dst = append(dst, kind)
	return binary.AppendUvarint(dst, gid)
}

// lookupBytes relies on the compiler's map-index string-conversion
// elision: m[string(b)] never materialises the string, so the interned
// routing lookup is allocation-free and silent here.
//
//evs:noalloc
func lookupBytes(m map[string]uint32, b []byte) (uint32, bool) {
	id, ok := m[string(b)]
	return id, ok
}

// debugPeek trips the fmt rule the way a tempting envelope dump in the
// header-peek fast path would.
//
//evs:noalloc
func debugPeek(kind byte, gid uint64) string {
	return fmt.Sprintf("kind=%d gid=%d", kind, gid) // want `fmt.Sprintf allocates`
}

// Package noalloc enforces the zero-allocation contract of functions
// annotated with the //evs:noalloc directive — the observability hot
// paths (obs counter/gauge/histogram/trace updates) and the instrumented
// sections of the totem/node data path, whose per-message cost budget is
// pinned by the benchmark allocation gates in CI.
//
// The analyzer flags the construct classes that reliably allocate and
// reliably sneak in during review:
//
//   - any fmt call (Sprintf and friends format into fresh strings, and
//     their variadic ...any parameters box every argument)
//   - string concatenation with + (unless constant-folded)
//   - interface boxing: a concrete value assigned, passed, or returned
//     as an interface value
//   - function literals (closures capture by reference and escape)
//
// It is a construct-level check, not an escape analysis: it catches the
// classes above at review time, while the obs benchmark gate
// (TestDisabledPathAllocs / TestEnabledHotPathAllocs, the "Metrics
// zero-alloc gate (cross-checked by evslint noalloc)" CI step) measures
// the end-to-end truth at bench time. The two point at each other: a
// bench-gate failure says "look for what the analyzer cannot see", an
// analyzer failure says "this would have failed the gate".
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive marks a function as belonging to a zero-allocation hot
// path, placed on its own line in the function's doc comment.
const Directive = "evs:noalloc"

// Analyzer is the zero-allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating construct classes inside //evs:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, Directive) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	sig, _ := pass.TypeOf(fd.Name).(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "function literal allocates a closure in //evs:noalloc function %s", fd.Name.Name)
			return false
		case *ast.CallExpr:
			checkCall(pass, fd, v)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isNonConstString(pass, v) {
				pass.Reportf(v.Pos(), "string concatenation allocates in //evs:noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if v.Tok == token.ASSIGN {
				for i, lhs := range v.Lhs {
					if i < len(v.Rhs) {
						checkConversion(pass, fd, pass.TypeOf(lhs), v.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil {
				dst := pass.TypeOf(v.Type)
				for _, val := range v.Values {
					checkConversion(pass, fd, dst, val)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(v.Results) == sig.Results().Len() {
				for i, res := range v.Results {
					checkConversion(pass, fd, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

// checkCall flags fmt calls and boxing at call arguments.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if f := pass.CalleeFunc(call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in //evs:noalloc function %s", f.Name(), fd.Name.Name)
		return // the boxing of its arguments is subsumed
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // builtins; explicit slice... passes no new boxes
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			dst = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			dst = sig.Params().At(i).Type()
		}
		checkConversion(pass, fd, dst, arg)
	}
}

// checkConversion flags a concrete value converted to an interface.
func checkConversion(pass *analysis.Pass, fd *ast.FuncDecl, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if tv.Value != nil {
		return // constants box to compiler-laid-out static data
	}
	if isPointerShaped(tv.Type) {
		return // fits the interface data word directly; boxing copies the
		// pointer, it does not allocate
	}
	short := types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	pass.Reportf(src.Pos(), "interface conversion boxes %s in //evs:noalloc function %s", short, fd.Name.Name)
}

// isPointerShaped reports whether values of t occupy exactly one pointer
// word: pointers, channels, maps, funcs (named, not literals — literals
// are flagged separately as closures) and unsafe.Pointer. The runtime
// stores such values directly in the interface data word, so converting
// them to an interface never allocates.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// Package analysistest runs an analyzer over a fixture directory and
// compares its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	time.Now() // want "time.Now is nondeterministic"
//
// Every `// want "regexp"` comment must be matched by a diagnostic on
// its line, and every diagnostic must be matched by a want — missing
// and unexpected diagnostics both fail the test. A comment may carry
// several quoted patterns when one line trips several rules.
//
// Fixtures are ordinary Go packages under testdata (invisible to
// ./... builds) and may import standard-library and repro packages;
// the import path the fixture is loaded under decides which zone-scoped
// analyzers consider it in scope, so positive and negative zone cases
// are both expressible. Diagnostics flow through the same driver as
// cmd/evslint, so fixtures also exercise //lint:allow suppression
// end to end.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted patterns of a // want comment: either
// backquoted (the conventional x/tools form, no escaping) or
// double-quoted.
var wantRe = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture directory as a package with the given import
// path and checks the analyzer's diagnostics against the fixture's
// // want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	RunAll(t, []*analysis.Analyzer{a}, dir, importPath)
}

// RunAll is Run over several analyzers at once: the whole suite's
// diagnostics (suppression and allow-validation included) are matched
// against the fixture's want comments. This is how cross-analyzer
// interactions — a //lint:allow naming one analyzer while another fires
// on the same line — are fixtured.
func RunAll(t *testing.T, as []*analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Check([]*analysis.Package{pkg}, as)
	if err != nil {
		t.Fatalf("running over %s: %v", dir, err)
	}

	expects := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation that covers the
// diagnostic and reports whether one existed.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Position.Filename || e.line != d.Position.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return out
}

// MustZonePath builds an import path inside the deterministic zone for
// fixtures of zone-scoped analyzers (any path under the zone package
// works; the path need not exist on disk).
func MustZonePath(sub string) string {
	return fmt.Sprintf("repro/internal/%s", sub)
}

// Package fixture exercises the nopanic analyzer.
package fixture

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type envelope struct {
	Kind string `json:"kind"`
}

// encodePanics is the bug class the analyzer exists for: a marshal
// failure taken down the whole process instead of the one operation.
func encodePanics(e envelope) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("marshal: %v", err)) // want `panic in protocol package`
	}
	return b
}

// encodePropagates is the required shape.
func encodePropagates(e envelope) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	return b, nil
}

func fatals(err error) {
	log.Fatalf("giving up: %v", err) // want `log.Fatalf terminates the process`
	log.Panicln(err)                 // want `log.Panicln terminates the process`
	os.Exit(1)                       // want `os.Exit terminates the process`
}

// catalog is built at init time; a malformed catalog may crash the
// process before any protocol state exists.
var catalog map[string]int

func init() {
	catalog = map[string]int{"a": 1}
	if len(catalog) == 0 {
		panic("empty catalog") // init functions are exempt
	}
}

// mustSize documents a deliberately-kept invariant crash.
func mustSize(n int) int {
	if n < 0 {
		panic("negative size") //lint:allow nopanic fixture demonstrates a documented exception
	}
	return n
}

package nopanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nopanic"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, nopanic.Analyzer, "testdata/fixture", "repro/internal/groups/fixture")
}

func TestAppliesTo(t *testing.T) {
	for _, p := range []string{"repro", "repro/internal/groups", "repro/internal/totem"} {
		if !nopanic.AppliesTo(p) {
			t.Errorf("AppliesTo(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"repro/cmd/evschaos", "repro/examples/chat", "other/module"} {
		if nopanic.AppliesTo(p) {
			t.Errorf("AppliesTo(%q) = true, want false", p)
		}
	}
}

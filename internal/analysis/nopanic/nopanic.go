// Package nopanic enforces no-panic error propagation in the protocol
// layers: a reproduction of a fault-tolerance paper must not itself fall
// over on the errors it models. PR 1 replaced marshal panics with
// propagated errors across apps/primary, yet internal/groups grew the
// same panic again — proof that convention alone does not hold; this
// analyzer holds it mechanically.
//
// Inside library packages (everything except cmd/ binaries, examples,
// and test files, which the loader never feeds to analyzers) the
// analyzer forbids:
//
//   - panic(...)
//   - log.Fatal / log.Fatalf / log.Fatalln / log.Panic* (and the
//     corresponding *log.Logger methods)
//   - os.Exit
//
// Errors must propagate to the caller instead. Exemptions: init
// functions (catalog construction that fails at process start, before
// any protocol state exists, is an acceptable crash), and sites
// carrying an explicit //lint:allow nopanic <reason>.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the no-panic checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nopanic",
	Doc:       "forbid panic/log.Fatal/os.Exit in protocol library packages; errors must propagate",
	AppliesTo: AppliesTo,
	Run:       run,
}

// AppliesTo covers every package of the module except the command-line
// binaries and the runnable examples, whose top-level error handling
// legitimately terminates the process.
func AppliesTo(path string) bool {
	if !analysis.PathHasPrefix(path, "repro") {
		return false
	}
	return !analysis.PathHasPrefix(path, "repro/cmd") &&
		!analysis.PathHasPrefix(path, "repro/examples")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // init-time construction may crash the process
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok {
					checkCall(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
			pass.Reportf(call.Pos(), "panic in protocol package; propagate an error instead")
			return
		}
	}
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "log":
		if strings.HasPrefix(f.Name(), "Fatal") || strings.HasPrefix(f.Name(), "Panic") {
			pass.Reportf(call.Pos(), "log.%s terminates the process from a protocol package; propagate an error instead", f.Name())
		}
	case "os":
		if f.Name() == "Exit" && f.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "os.Exit terminates the process from a protocol package; propagate an error instead")
		}
	}
}

package groups

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// must unwraps an encoded payload; Envelope has no unmarshalable fields,
// so an encode error in a test is a bug.
func must(payload []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return payload
}

func regCfg(seq uint64, members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(seq, members[0]), Members: model.NewProcessSet(members...)}
}

// bus replays a payload to every mux in total order.
type bus struct {
	muxes  map[model.ProcessID]*Mux
	events map[model.ProcessID][]Event
}

func newBus(ids ...model.ProcessID) *bus {
	b := &bus{
		muxes:  make(map[model.ProcessID]*Mux),
		events: make(map[model.ProcessID][]Event),
	}
	for _, id := range ids {
		b.muxes[id] = New(id)
	}
	return b
}

func (b *bus) broadcast(sender model.ProcessID, payload []byte) {
	if payload == nil {
		return
	}
	for id, m := range b.muxes {
		b.events[id] = append(b.events[id], m.OnDeliver(sender, payload)...)
	}
}

func (b *bus) config(cfg model.Configuration) {
	type ann struct {
		id      model.ProcessID
		payload []byte
	}
	var anns []ann
	for id, m := range b.muxes {
		a, _, _ := m.OnConfig(cfg)
		anns = append(anns, ann{id, a})
	}
	for _, a := range anns {
		b.broadcast(a.id, a.payload)
	}
}

func deliveries(evs []Event) []Deliver {
	var out []Deliver
	for _, e := range evs {
		if d, ok := e.(Deliver); ok {
			out = append(out, d)
		}
	}
	return out
}

func lastView(evs []Event, group string) *ViewChange {
	var out *ViewChange
	for _, e := range evs {
		if v, ok := e.(ViewChange); ok && v.Group == group {
			v := v
			out = &v
		}
	}
	return out
}

func TestJoinCreatesConsistentViews(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	b.broadcast("a", must(b.muxes["a"].Join("chat")))
	b.broadcast("b", must(b.muxes["b"].Join("chat")))

	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(b.events[id], "chat")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s view %+v, want {a,b}", id, v)
		}
	}
	// c never joined: it sees no view events for chat.
	if v := lastView(b.events["c"], "chat"); v != nil {
		t.Fatalf("non-member c saw view %+v", v)
	}
}

func TestDataOnlyToMembers(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	b.broadcast("a", must(b.muxes["a"].Join("chat")))
	b.broadcast("b", must(b.muxes["b"].Join("chat")))
	b.broadcast("a", must(b.muxes["a"].Send("chat", []byte("hi"))))

	for _, id := range []model.ProcessID{"a", "b"} {
		ds := deliveries(b.events[id])
		if len(ds) != 1 || string(ds[0].Payload) != "hi" || ds[0].Group != "chat" {
			t.Fatalf("%s deliveries %+v", id, ds)
		}
	}
	if ds := deliveries(b.events["c"]); len(ds) != 0 {
		t.Fatalf("non-member c received %+v", ds)
	}
}

func TestLeaveShrinksView(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	b.broadcast("a", must(b.muxes["a"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Leave("g")))

	v := lastView(b.events["a"], "g")
	if v == nil || !v.Members.Equal(model.NewProcessSet("a")) {
		t.Fatalf("view after leave %+v, want {a}", v)
	}
	if b.muxes["b"].Member("g") {
		t.Fatal("b should no longer be a member")
	}
	// Data no longer reaches b.
	b.broadcast("a", must(b.muxes["a"].Send("g", []byte("x"))))
	if ds := deliveries(b.events["b"]); len(ds) != 0 {
		t.Fatalf("left member received %+v", ds)
	}
}

func TestConfigChangeReannounces(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	b.broadcast("a", must(b.muxes["a"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Join("g")))

	// New configuration: table resets, announcements rebuild it.
	b.config(regCfg(2, "a", "b"))
	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(b.events[id], "g")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s post-reconfig view %+v, want {a,b}", id, v)
		}
		if v.Config != model.RegularID(2, "a") {
			t.Fatalf("%s view config %v, want new configuration", id, v.Config)
		}
	}
}

func TestPartitionShrinksGroupViews(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	for _, id := range []model.ProcessID{"a", "b", "c"} {
		b.broadcast(id, must(b.muxes[id].Join("g")))
	}
	// a partitions away: the {b,c} side installs a new configuration;
	// only b and c announce there.
	bc := newBusFrom(b, "b", "c")
	bc.config(regCfg(2, "b", "c"))
	v := lastView(bc.events["b"], "g")
	if v == nil || !v.Members.Equal(model.NewProcessSet("b", "c")) {
		t.Fatalf("partitioned view %+v, want {b,c}", v)
	}
}

// newBusFrom carves a sub-bus reusing a subset of muxes (simulating the
// component that retains b and c).
func newBusFrom(old *bus, ids ...model.ProcessID) *bus {
	b := &bus{
		muxes:  make(map[model.ProcessID]*Mux),
		events: make(map[model.ProcessID][]Event),
	}
	for _, id := range ids {
		b.muxes[id] = old.muxes[id]
	}
	return b
}

func TestViewsIdenticalAcrossMembers(t *testing.T) {
	b := newBus("a", "b", "c", "d")
	b.config(regCfg(1, "a", "b", "c", "d"))
	joins := []model.ProcessID{"a", "c", "d"}
	for _, id := range joins {
		b.broadcast(id, must(b.muxes[id].Join("g")))
	}
	b.broadcast("c", must(b.muxes["c"].Leave("g")))
	want := model.NewProcessSet("a", "d")
	for _, id := range []model.ProcessID{"a", "d"} {
		v := lastView(b.events[id], "g")
		if v == nil || !v.Members.Equal(want) {
			t.Fatalf("%s view %+v, want %v", id, v, want)
		}
	}
}

func TestGarbageAndUnknownKind(t *testing.T) {
	m := New("a")
	m.OnConfig(regCfg(1, "a"))
	if evs := m.OnDeliver("a", []byte("{bad")); evs != nil {
		t.Fatalf("garbage produced %v", evs)
	}
	if evs := m.OnDeliver("a", must(Encode(Envelope{Kind: "bogus"}))); evs != nil {
		t.Fatalf("unknown kind produced %v", evs)
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestGroupsSorted(t *testing.T) {
	m := New("a")
	m.Join("zebra")
	m.Join("alpha")
	got := m.Groups()
	if fmt.Sprint(got) != "[alpha zebra]" {
		t.Fatalf("Groups() = %v", got)
	}
}

func TestAnnounceOnlyWhenSubscribed(t *testing.T) {
	m := New("a")
	ann, _, _ := m.OnConfig(regCfg(1, "a"))
	if ann != nil {
		t.Fatal("no subscriptions: no announcement")
	}
	m.Join("g")
	ann, _, _ = m.OnConfig(regCfg(2, "a"))
	if ann == nil {
		t.Fatal("subscribed process must announce on reconfiguration")
	}
	env, err := Decode(ann)
	if err != nil || env.Kind != KindAnnounce || len(env.Groups) != 1 {
		t.Fatalf("announcement %+v (%v)", env, err)
	}
}
